// Mitigation demo (paper §4): Brave-style fingerprint randomization
// ("farbling") applied to the Web Audio read surfaces, and its effect on
// the paper's attack measured with the paper's own methodology.
//
//	go run ./examples/mitigation
package main

import (
	"fmt"
	"log"

	"repro/internal/defense"
	"repro/internal/vectors"
	"repro/internal/webaudio"
)

func main() {
	base := webaudio.DefaultTraits()

	// One machine, two browsing sessions, no defense: the DC fingerprint is
	// bit-identical — a perfect tracking cookie.
	plain := func() string {
		fp, err := vectors.NewRunner(base, 0).Run(vectors.DC, 0)
		if err != nil {
			log.Fatal(err)
		}
		return fp.Hash
	}
	fmt.Println("undefended DC fingerprint, session 1:", plain()[:16], "…")
	fmt.Println("undefended DC fingerprint, session 2:", plain()[:16], "…")

	// With session-keyed farbling the two sessions stop matching, while
	// repeated reads inside one session still agree (sites keep working).
	session := func(seed uint64) string {
		tr := defense.Protect(base, defense.SessionKeyed, seed)
		fp, err := vectors.NewRunner(tr, 0).Run(vectors.DC, 0)
		if err != nil {
			log.Fatal(err)
		}
		return fp.Hash
	}
	fmt.Println("\ndefended, session A (read 1):        ", session(1001)[:16], "…")
	fmt.Println("defended, session A (read 2):        ", session(1001)[:16], "…")
	fmt.Println("defended, session B:                 ", session(1002)[:16], "…")

	// Population-scale evaluation with the paper's methodology.
	fmt.Println("\npopulation-scale evaluation (Hybrid vector, 80 users, 2 sessions):")
	for _, mode := range []struct {
		name string
		m    defense.Mode
	}{{"off", defense.Off}, {"session-keyed farbling", defense.SessionKeyed}} {
		ev, err := defense.Evaluate(mode.m, vectors.Hybrid, 80, 99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %s\n", mode.name+":", ev)
	}
	fmt.Println("\nWith the defense on, cross-session tracking drops to zero and every")
	fmt.Println("first-session fingerprint is unique — collisions (the anonymity the")
	fmt.Println("paper measures) are gone, but so is linkability.")
}
