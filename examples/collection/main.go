// Collection demo: the full backend loop in one process — start the
// collection server, run simulated participants against it over real HTTP,
// export the dataset, and analyze it.
//
//	go run ./examples/collection
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"

	"repro/internal/collectclient"
	"repro/internal/collectserver"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/storage"
	"repro/internal/study"
	"repro/internal/vectors"
)

func main() {
	dir, err := filepath.Abs(".")
	if err != nil {
		log.Fatal(err)
	}
	storePath := filepath.Join(dir, "collection-demo.ndjson")

	st, err := storage.Open(storePath, storage.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	srv, err := collectserver.New(collectserver.Config{Store: st, AdminToken: "demo"})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("collection server listening at %s\n", ts.URL)

	// Simulated participants visit and submit over HTTP.
	devices := population.Sample(population.Config{Seed: 11, N: 25})
	jitter := platform.DefaultJitter()
	cache := vectors.NewCache()
	client := collectclient.New(ts.URL)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(2))

	const iterations = 5
	for _, d := range devices {
		sess, err := client.StartSession(ctx, d.ID, d.UserAgent())
		if err != nil {
			log.Fatal(err)
		}
		runner := vectors.NewRunner(d.AudioTraits(), d.SampleRate)
		var recs []collectserver.FPRecord
		for it := 0; it < iterations; it++ {
			for _, v := range vectors.All {
				fp, err := cache.Run(d.AudioStackKey(), runner, v, jitter.Offset(rng, d.Load, v))
				if err != nil {
					log.Fatal(err)
				}
				rec := collectserver.FPRecord{Vector: v.String(), Iteration: it, Hash: fp.Hash}
				if it == 0 && v == vectors.DC {
					rec.Surfaces = map[string]string{
						study.SurfaceCanvas:   d.CanvasFingerprint(),
						study.SurfaceFonts:    d.FontsFingerprint(),
						study.SurfaceMathJS:   d.MathJSFingerprint(),
						study.SurfacePlatform: d.Platform(),
					}
				}
				recs = append(recs, rec)
			}
		}
		if err := sess.SubmitChunked(ctx, recs, 100); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("collected %d records from %d participants → %s\n",
		st.Count(), len(devices), storePath)

	// Re-analyze the collected data exactly as fpanalyze would.
	recs, err := st.All()
	if err != nil {
		log.Fatal(err)
	}
	ds, err := study.FromRecords(recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := core.WriteExperiment(os.Stdout, ds, core.ExpTable2); err != nil {
		log.Fatal(err)
	}
}
