// Quickstart: fingerprint two simulated browsers with all seven Web Audio
// vectors and see which ones tell them apart.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/vectors"
	"repro/internal/webaudio"
)

func main() {
	// Machine A: a mainstream desktop stack (libm math, Blink-like).
	machineA := core.NewFingerprinter(webaudio.DefaultTraits(), 48000)

	// Machine B: identical except its audio stack computes sine through a
	// lookup table — the kind of difference a phone SoC's DSP library has.
	traitsB := webaudio.DefaultTraits()
	traitsB.Kernel = mathx.Lut1024
	machineB := core.NewFingerprinter(traitsB, 48000)

	fpsA, err := machineA.FingerprintAll(0)
	if err != nil {
		log.Fatal(err)
	}
	fpsB, err := machineB.FingerprintAll(0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("vector           machine A        machine B        distinguishes?")
	for i, v := range vectors.All {
		same := "YES"
		if fpsA[i].Hash == fpsB[i].Hash {
			same = "no"
		}
		fmt.Printf("%-16s %s… %s… %s\n", v, fpsA[i].Hash[:12], fpsB[i].Hash[:12], same)
	}

	// The same machine fingerprinted twice is indistinguishable from itself
	// (when idle — capture offset 0):
	again, err := machineA.FingerprintAll(0)
	if err != nil {
		log.Fatal(err)
	}
	stable := true
	for i := range again {
		if again[i].Hash != fpsA[i].Hash {
			stable = false
		}
	}
	fmt.Printf("\nmachine A re-fingerprinted identically: %t\n", stable)

	// Under load, the live-context vectors drift (the paper's fickleness) —
	// but the offline DC vector never does:
	loaded, err := machineA.FingerprintAll(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nunder load (capture offset 3):")
	for i, v := range vectors.All {
		changed := loaded[i].Hash != fpsA[i].Hash
		fmt.Printf("%-16s changed=%t\n", v, changed)
	}
}
