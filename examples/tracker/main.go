// Tracker demo: the paper's §3.2 graph-based collation as a deployable
// visitor-identification system, including the fully-dynamic variant that
// retires observations under a data-retention window.
//
//	go run ./examples/tracker
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/vectors"
)

func main() {
	// A small population visits a fingerprinting site several times each.
	devices := population.Sample(population.Config{Seed: 7, N: 40})
	jitter := platform.DefaultJitter()
	cache := vectors.NewCache()
	tracker := core.NewTracker()
	rng := rand.New(rand.NewSource(1))

	// Enrollment: every device visits 5 times, leaving Hybrid fingerprints.
	for _, d := range devices {
		runner := vectors.NewRunner(d.AudioTraits(), d.SampleRate)
		for visit := 0; visit < 5; visit++ {
			off := jitter.Offset(rng, d.Load, vectors.Hybrid)
			fp, err := cache.Run(d.AudioStackKey(), runner, vectors.Hybrid, off)
			if err != nil {
				log.Fatal(err)
			}
			tracker.Observe(d.ID, fp.Hash)
		}
	}
	st := tracker.Stats()
	fmt.Printf("enrolled %d visitors → %d identities (%d unique, %d elementary fingerprints)\n",
		st.Visitors, st.Identities, st.Unique, st.Fingerprints)

	// Recognition: each device returns anonymously; can we place it in its
	// original identity cluster?
	recognized := 0
	for _, d := range devices {
		runner := vectors.NewRunner(d.AudioTraits(), d.SampleRate)
		off := jitter.Offset(rng, d.Load, vectors.Hybrid)
		fp, err := cache.Run(d.AudioStackKey(), runner, vectors.Hybrid, off)
		if err != nil {
			log.Fatal(err)
		}
		want, _ := tracker.IdentityOf(d.ID)
		if got, ok := tracker.Identify([]string{fp.Hash}); ok && got == want {
			recognized++
		}
	}
	fmt.Printf("returning visitors recognized: %d/%d\n", recognized, len(devices))

	// Retention-limited tracking: the ExpiringGraph retires observations in
	// O(log² n) via fully-dynamic connectivity (the paper's [11]).
	eg := collate.NewExpiringGraph()
	eg.AddObservation("alice", "fpX")
	eg.AddObservation("alice", "fpShared")
	eg.AddObservation("bob", "fpShared")
	fmt.Printf("\nretention demo: alice and bob share a cluster: %t\n", eg.SameCluster("alice", "bob"))
	split := eg.RemoveObservation("alice", "fpShared") // retention window expires
	fmt.Printf("after retiring the shared observation (split=%t): share a cluster: %t\n",
		split, eg.SameCluster("alice", "bob"))
}
