// Additive-value demo (paper §4): how much identification power does Web
// Audio fingerprinting add on top of Canvas or User-Agent fingerprinting?
//
//	go run ./examples/additive
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/diversity"
	"repro/internal/study"
)

func main() {
	// A mid-sized simulated study (scale up -users for paper-scale numbers).
	ds, err := core.RunStudy(study.Config{Seed: core.MainStudySeed, Users: 600, Iterations: 12})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("population: %d users\n\n", len(ds.Users))
	audio := diversity.Summarize(ds.CombinedLabels())
	fmt.Printf("combined audio fingerprint alone: %d distinct, %.3f bits (e_norm %.3f)\n\n",
		audio.Distinct, audio.EntropyBits, audio.Normalized)

	for _, base := range []struct {
		name   string
		values []string
	}{
		{"Canvas", ds.Canvas},
		{"User-Agent", ds.UA},
		{"Fonts", ds.Fonts},
	} {
		r := ds.AdditiveValue(base.name, base.values)
		fmt.Printf("%-11s alone: %.3f bits → with audio: %.3f bits  (e_norm +%.1f%%)\n",
			base.name, r.Base.EntropyBits, r.WithAudio.EntropyBits, 100*r.NormIncrease)
	}

	fmt.Println("\nThe paper's headline: audio is weak alone (95 distinct values in 2093")
	fmt.Println("users) yet adds ~9.6% normalized entropy to Canvas fingerprinting —")
	fmt.Println("and the same additive structure appears in this simulation.")
}
