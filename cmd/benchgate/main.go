// Command benchgate compares a fresh benchmark snapshot against a
// checked-in trajectory and fails on regression, turning the BENCH_*.json
// files from passive history into an enforced floor.
//
// Usage:
//
//	go test -run '^$' -bench 'Kernel|RenderVectors' -benchmem -count 3 . \
//	    | go run ./cmd/benchjson > /tmp/fresh.json
//	go run ./cmd/benchgate -base BENCH_render.json -new /tmp/fresh.json
//
// Noise handling: when a benchmark name appears multiple times across the
// -new files (e.g. from -count 3), the minimum ns/op is compared — for a
// CPU-bound benchmark the fastest sample is the least contaminated by
// scheduler noise, so min-of-N is the stable estimator. A regression is
// new_min > base × (1 + tolerance); the default tolerance absorbs
// machine-to-machine variance and can be tightened per benchmark with
// -override. Benchmarks whose baseline reports 0 allocs/op must stay at 0
// — allocation counts are deterministic, so any increase is a real
// regression regardless of timing noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult mirrors cmd/benchjson's output shape.
type benchResult struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the gate and returns the process exit code: 0 pass,
// 1 regression (unless reportOnly). Usage/IO problems come back as errors.
func run(args []string, outw, errw io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		base       = fs.String("base", "", "committed trajectory JSON (required)")
		newFiles   stringList
		tolerance  = fs.Float64("tolerance", 0.30, "allowed relative ns/op slowdown vs base (0.30 = +30%)")
		overrides  stringList
		reportOnly = fs.Bool("report-only", false, "print the comparison but always exit 0")
	)
	fs.Var(&newFiles, "new", "fresh snapshot JSON (repeatable; duplicate benchmark names take min ns/op)")
	fs.Var(&overrides, "override", "per-benchmark tolerance, name=fraction (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if *base == "" || len(newFiles) == 0 {
		return 0, fmt.Errorf("both -base and at least one -new are required")
	}
	perBench := map[string]float64{}
	for _, ov := range overrides {
		name, val, ok := strings.Cut(ov, "=")
		if !ok {
			return 0, fmt.Errorf("bad -override %q (want name=fraction)", ov)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return 0, fmt.Errorf("bad -override tolerance %q", val)
		}
		perBench[name] = f
	}

	baseline, err := loadResults(*base)
	if err != nil {
		return 0, err
	}
	if len(baseline) == 0 {
		return 0, fmt.Errorf("%s holds no benchmarks", *base)
	}
	fresh := map[string]*benchResult{}
	for _, path := range newFiles {
		results, err := loadResults(path)
		if err != nil {
			return 0, err
		}
		for name, r := range results {
			if have, ok := fresh[name]; !ok || r.NsPerOp < have.NsPerOp {
				fresh[name] = r
			}
		}
	}
	if len(fresh) == 0 {
		return 0, fmt.Errorf("no benchmarks in the -new snapshots")
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		b := baseline[name]
		n, ok := fresh[name]
		if !ok {
			fmt.Fprintf(outw, "SKIP  %-44s not present in the fresh snapshot\n", name)
			continue
		}
		tol := *tolerance
		if t, ok := perBench[name]; ok {
			tol = t
		}
		limit := b.NsPerOp * (1 + tol)
		ratio := n.NsPerOp / b.NsPerOp
		verdict := "ok   "
		if n.NsPerOp > limit {
			verdict = "SLOW "
			regressions++
		}
		fmt.Fprintf(outw, "%s %-44s base %12.1f ns/op  new %12.1f ns/op  (%.2fx, limit %.2fx)\n",
			verdict, name, b.NsPerOp, n.NsPerOp, ratio, 1+tol)
		if b.AllocsPerOp != nil && *b.AllocsPerOp == 0 &&
			n.AllocsPerOp != nil && *n.AllocsPerOp > 0 {
			fmt.Fprintf(outw, "ALLOC %-44s base 0 allocs/op  new %.0f allocs/op\n",
				name, *n.AllocsPerOp)
			regressions++
		}
	}
	for name := range fresh {
		if _, ok := baseline[name]; !ok {
			fmt.Fprintf(outw, "NEW   %-44s not in the baseline (add it via make bench-render)\n", name)
		}
	}

	if regressions > 0 {
		fmt.Fprintf(outw, "benchgate: %d regression(s) against %s\n", regressions, *base)
		if *reportOnly {
			fmt.Fprintln(outw, "benchgate: report-only mode, not failing")
			return 0, nil
		}
		return 1, nil
	}
	fmt.Fprintf(outw, "benchgate: %d benchmark(s) within tolerance of %s\n", len(baseline), *base)
	return 0, nil
}

// loadResults reads one benchjson array, keeping the minimum ns/op per
// benchmark name (a -count N run emits N lines per benchmark).
func loadResults(path string) (map[string]*benchResult, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []benchResult
	if err := json.Unmarshal(raw, &list); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]*benchResult, len(list))
	for i := range list {
		r := &list[i]
		if have, ok := out[r.Name]; !ok || r.NsPerOp < have.NsPerOp {
			out[r.Name] = r
		}
	}
	return out, nil
}
