package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnapshot(t *testing.T, dir, name string, results []benchResult) string {
	t.Helper()
	raw, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fptr(v float64) *float64 { return &v }

func gate(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code, err := run(args, &out, &errb)
	if err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return code, out.String()
}

// TestCommittedTrajectoryPassesAgainstItself is the acceptance criterion:
// the checked-in BENCH_render.json gated against itself must pass.
func TestCommittedTrajectoryPassesAgainstItself(t *testing.T) {
	base := filepath.Join("..", "..", "BENCH_render.json")
	if _, err := os.Stat(base); err != nil {
		t.Skipf("no committed trajectory: %v", err)
	}
	code, out := gate(t, "-base", base, "-new", base)
	if code != 0 {
		t.Fatalf("self-comparison failed (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "within tolerance") {
		t.Fatalf("missing pass summary:\n%s", out)
	}
}

// TestSyntheticRegressionFails is the other acceptance criterion: inflating
// every ns/op 2× must trip the gate.
func TestSyntheticRegressionFails(t *testing.T) {
	dir := t.TempDir()
	baseline := []benchResult{
		{Name: "BenchmarkKernelOscillator/block", Iterations: 1000, NsPerOp: 800},
		{Name: "BenchmarkRenderVectors/block", Iterations: 100, NsPerOp: 14000000},
	}
	inflated := make([]benchResult, len(baseline))
	for i, r := range baseline {
		r.NsPerOp *= 2
		inflated[i] = r
	}
	basePath := writeSnapshot(t, dir, "base.json", baseline)
	newPath := writeSnapshot(t, dir, "new.json", inflated)

	code, out := gate(t, "-base", basePath, "-new", newPath)
	if code != 1 {
		t.Fatalf("2x regression passed (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "SLOW") || !strings.Contains(out, "2 regression(s)") {
		t.Fatalf("report did not flag both benchmarks:\n%s", out)
	}

	// -report-only demotes the same failure to exit 0.
	code, out = gate(t, "-base", basePath, "-new", newPath, "-report-only")
	if code != 0 || !strings.Contains(out, "report-only") {
		t.Fatalf("report-only still failed (exit %d):\n%s", code, out)
	}
}

// TestMinOfNAcrossFilesAbsorbsNoise: one noisy sample among N clean ones
// must not fail the gate — min-of-N picks the clean sample.
func TestMinOfNAcrossFilesAbsorbsNoise(t *testing.T) {
	dir := t.TempDir()
	basePath := writeSnapshot(t, dir, "base.json", []benchResult{
		{Name: "BenchmarkKernelBiquad/block", NsPerOp: 1700},
	})
	// -count 2 style duplicates in one file: first run was preempted.
	noisy := writeSnapshot(t, dir, "noisy.json", []benchResult{
		{Name: "BenchmarkKernelBiquad/block", NsPerOp: 9500},
		{Name: "BenchmarkKernelBiquad/block", NsPerOp: 1750},
	})
	// A second -new file, entirely noisy.
	worse := writeSnapshot(t, dir, "worse.json", []benchResult{
		{Name: "BenchmarkKernelBiquad/block", NsPerOp: 8800},
	})
	code, out := gate(t, "-base", basePath, "-new", noisy, "-new", worse)
	if code != 0 {
		t.Fatalf("min-of-N did not absorb noise (exit %d):\n%s", code, out)
	}
}

// TestPerBenchmarkOverride: a benchmark allowed to regress via -override
// passes while the default tolerance would have failed it.
func TestPerBenchmarkOverride(t *testing.T) {
	dir := t.TempDir()
	basePath := writeSnapshot(t, dir, "base.json", []benchResult{
		{Name: "BenchmarkKernelCompressor/block", NsPerOp: 1000},
	})
	newPath := writeSnapshot(t, dir, "new.json", []benchResult{
		{Name: "BenchmarkKernelCompressor/block", NsPerOp: 1600},
	})
	if code, out := gate(t, "-base", basePath, "-new", newPath); code != 1 {
		t.Fatalf("default tolerance admitted +60%% (exit %d):\n%s", code, out)
	}
	code, out := gate(t, "-base", basePath, "-new", newPath,
		"-override", "BenchmarkKernelCompressor/block=0.75")
	if code != 0 {
		t.Fatalf("override did not widen the gate (exit %d):\n%s", code, out)
	}
}

// TestZeroAllocPin: a baseline at 0 allocs/op must fail on any allocation
// even when timing improves.
func TestZeroAllocPin(t *testing.T) {
	dir := t.TempDir()
	basePath := writeSnapshot(t, dir, "base.json", []benchResult{
		{Name: "BenchmarkRenderVectors/block", NsPerOp: 14000000, AllocsPerOp: fptr(0)},
	})
	newPath := writeSnapshot(t, dir, "new.json", []benchResult{
		{Name: "BenchmarkRenderVectors/block", NsPerOp: 12000000, AllocsPerOp: fptr(3)},
	})
	code, out := gate(t, "-base", basePath, "-new", newPath)
	if code != 1 || !strings.Contains(out, "ALLOC") {
		t.Fatalf("alloc regression passed (exit %d):\n%s", code, out)
	}
}

// TestMissingAndNewBenchmarksReported: absent benchmarks are SKIP (not a
// failure), unknown fresh benchmarks are NEW.
func TestMissingAndNewBenchmarksReported(t *testing.T) {
	dir := t.TempDir()
	basePath := writeSnapshot(t, dir, "base.json", []benchResult{
		{Name: "BenchmarkKernelAMGain/block", NsPerOp: 2400},
		{Name: "BenchmarkKernelAMGain/reference", NsPerOp: 11000},
	})
	newPath := writeSnapshot(t, dir, "new.json", []benchResult{
		{Name: "BenchmarkKernelAMGain/block", NsPerOp: 2500},
		{Name: "BenchmarkKernelWaveShaper/block", NsPerOp: 900},
	})
	code, out := gate(t, "-base", basePath, "-new", newPath)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "SKIP") || !strings.Contains(out, "BenchmarkKernelAMGain/reference") {
		t.Fatalf("missing benchmark not reported:\n%s", out)
	}
	if !strings.Contains(out, "NEW") || !strings.Contains(out, "BenchmarkKernelWaveShaper/block") {
		t.Fatalf("new benchmark not reported:\n%s", out)
	}
}

// TestUsageErrors: structural problems surface as errors (exit 2 path),
// not silent passes.
func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"-new", "x.json"}, &out, &out); err == nil {
		t.Fatal("missing -base accepted")
	}
	if _, err := run([]string{"-base", "x.json"}, &out, &out); err == nil {
		t.Fatal("missing -new accepted")
	}
	if _, err := run([]string{"-base", "a", "-new", "b", "-override", "nope"}, &out, &out); err == nil {
		t.Fatal("malformed -override accepted")
	}
	dir := t.TempDir()
	empty := writeSnapshot(t, dir, "empty.json", []benchResult{})
	if _, err := run([]string{"-base", empty, "-new", empty}, &out, &out); err == nil {
		t.Fatal("empty baseline accepted")
	}
}
