package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/study"
)

// writeFixtureDataset simulates a small study and persists it the way
// fpstudy -out does.
func writeFixtureDataset(t *testing.T) string {
	t.Helper()
	ds, err := study.Run(study.Config{Seed: 7, Users: 10, Iterations: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.ndjson")
	st, err := storage.Open(path, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(ds.ToRecords(time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC))...); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunSingleExperiment re-analyzes a stored dataset in-process.
func TestRunSingleExperiment(t *testing.T) {
	path := writeFixtureDataset(t)
	var stdout, logs bytes.Buffer
	err := run(context.Background(), []string{"-data", path, "-exp", "table2"}, &stdout, &logs)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, logs.String())
	}
	if !strings.Contains(stdout.String(), "Table 2") {
		t.Errorf("table 2 missing from output:\n%s", stdout.String())
	}
}

// TestRunList prints the experiment catalogue without needing data.
func TestRunList(t *testing.T) {
	var stdout, logs bytes.Buffer
	if err := run(context.Background(), []string{"-list"}, &stdout, &logs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "table2", "ablation"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

// TestRunRecoverFlag salvages a dataset with a torn tail before analysis.
func TestRunRecoverFlag(t *testing.T) {
	path := writeFixtureDataset(t)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"session_id":"s","user_id":"torn","vector":"DC","iter`)
	f.Close()

	var stdout, logs bytes.Buffer
	err = run(context.Background(), []string{"-data", path, "-exp", "table2", "-recover"}, &stdout, &logs)
	if err != nil {
		t.Fatalf("run with -recover: %v\n%s", err, logs.String())
	}
	if !strings.Contains(logs.String(), "recovery dropped") {
		t.Errorf("recovery log missing:\n%s", logs.String())
	}
}

// TestRunExportTelemetry: -export writes the analysis span tree plus at
// least one registry snapshot as NDJSON — the same parity fpstudy and
// fpserver have, consumable by the series/exemplar tooling.
func TestRunExportTelemetry(t *testing.T) {
	path := writeFixtureDataset(t)
	exportPath := filepath.Join(t.TempDir(), "telemetry.ndjson")
	var stdout, logs bytes.Buffer
	err := run(context.Background(),
		[]string{"-data", path, "-exp", "table2", "-export", exportPath}, &stdout, &logs)
	if err != nil {
		t.Fatalf("run with -export: %v\n%s", err, logs.String())
	}
	raw, err := os.ReadFile(exportPath)
	if err != nil {
		t.Fatal(err)
	}
	spans, metrics := 0, 0
	var sawRoot, sawLoad bool
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec struct {
			Type    string `json:"type"`
			Service string `json:"service"`
			Name    string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON telemetry line %q: %v", line, err)
		}
		if rec.Service != "fpanalyze" {
			t.Fatalf("line service = %q, want fpanalyze", rec.Service)
		}
		switch rec.Type {
		case "span":
			spans++
			sawRoot = sawRoot || rec.Name == "fpanalyze"
			sawLoad = sawLoad || rec.Name == "load-dataset"
		case "metrics":
			metrics++
		default:
			t.Fatalf("unknown telemetry line type %q", rec.Type)
		}
	}
	if spans < 2 || !sawRoot || !sawLoad {
		t.Fatalf("span lines = %d (root %v, load %v), want the analysis tree", spans, sawRoot, sawLoad)
	}
	if metrics == 0 {
		t.Fatal("no metrics snapshot in the export")
	}
}

// TestRunErrors: missing -data and unknown flags fail cleanly.
func TestRunErrors(t *testing.T) {
	var stdout, logs bytes.Buffer
	if err := run(context.Background(), nil, &stdout, &logs); err == nil {
		t.Error("missing -data accepted")
	}
	if err := run(context.Background(), []string{"-nope"}, &stdout, &logs); err == nil {
		t.Error("unknown flag accepted")
	}
}
