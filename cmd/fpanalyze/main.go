// Command fpanalyze re-runs the paper's analyses over a stored fingerprint
// dataset (an fpserver export or an fpstudy -out file). Each table/figure
// can be produced individually or all at once.
//
// Usage:
//
//	fpanalyze -data main.ndjson                  # everything derivable
//	fpanalyze -data main.ndjson -exp table2      # one experiment
//	fpanalyze -data main.ndjson -trace-json t.json   # with stage timings
//	fpanalyze -list                              # show experiment ids
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/study"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.New(os.Stderr, "fpanalyze ", log.LstdFlags|log.Lmsgprefix).Fatal(err)
	}
}

// run re-analyzes a stored dataset with flags parsed from args, tables on
// outw and logs on errw — in-process testable.
func run(runCtx context.Context, args []string, outw, errw io.Writer) error {
	fs := flag.NewFlagSet("fpanalyze", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		dataPath  = fs.String("data", "", "NDJSON dataset (fpserver export / fpstudy -out)")
		exp       = fs.String("exp", "", "single experiment id to run (default: all)")
		list      = fs.Bool("list", false, "list experiment ids and exit")
		recover_  = fs.Bool("recover", false, "salvage the dataset up to the first torn write before analyzing")
		traceJSON = fs.String("trace-json", "", "write the analysis span tree as JSON to this path")
		export    = fs.String("export", "", "write telemetry (analysis spans + periodic metrics snapshots) to this NDJSON file")
		traceText = fs.Bool("trace", false, "print the analysis span tree to stderr on exit")
		pprofAddr = fs.String("pprof", "", "serve /debug/pprof and /metrics on this address")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(errw, "fpanalyze ", log.LstdFlags|log.Lmsgprefix)

	if *list {
		fmt.Fprintln(outw, "main-study experiments:")
		for _, id := range core.MainExperiments {
			fmt.Fprintln(outw, "  "+id)
		}
		fmt.Fprintln(outw, "follow-up experiments (need a follow-up dataset):")
		for _, id := range core.FollowUpExperiments {
			fmt.Fprintln(outw, "  "+id)
		}
		fmt.Fprintln(outw, "extensions:")
		for _, id := range []string{"ablation", "anonymity", "demographics"} {
			fmt.Fprintln(outw, "  "+id)
		}
		return nil
	}
	if *dataPath == "" {
		return fmt.Errorf("-data is required (or -list)")
	}

	if *pprofAddr != "" {
		go func() {
			logger.Printf("debug endpoints on http://%s/debug/pprof", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, obs.DebugMux(obs.Default)); err != nil {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}
	if *pprofAddr != "" || *export != "" {
		// runtime_* gauges for whoever is watching the telemetry.
		sampler := diag.NewSampler(diag.SamplerConfig{Registry: obs.Default})
		sampler.Start()
		defer sampler.Close()
	}
	var exporter *obs.Exporter
	if *export != "" {
		var err error
		exporter, err = obs.NewExporter(obs.ExportConfig{
			Path:     *export,
			Registry: obs.Default,
			Service:  "fpanalyze",
		})
		if err != nil {
			return err
		}
		defer exporter.Close()
		logger.Printf("telemetry export to %s", *export)
	}
	root := obs.NewTrace("fpanalyze")
	ctx := obs.ContextWithSpan(runCtx, root)

	st, err := storage.Open(*dataPath, storage.Options{})
	if err != nil {
		return fmt.Errorf("open dataset: %w", err)
	}
	if *recover_ {
		rep, err := st.Recover()
		if err != nil {
			st.Close()
			return fmt.Errorf("recover dataset: %w", err)
		}
		if rep.DroppedBytes > 0 {
			logger.Printf("recovery dropped %d bytes of torn tail", rep.DroppedBytes)
		}
	}
	recs, err := st.All()
	closeErr := st.Close()
	if err != nil {
		return fmt.Errorf("read dataset: %w", err)
	}
	if closeErr != nil {
		return fmt.Errorf("close dataset: %w", closeErr)
	}
	logger.Printf("loaded %d records", len(recs))

	_, loadSpan := obs.Start(ctx, "load-dataset")
	ds, err := study.FromRecords(recs)
	loadSpan.End()
	if err != nil {
		return fmt.Errorf("reconstruct dataset: %w", err)
	}
	logger.Printf("dataset: %d users × %d iterations", len(ds.Users), ds.Iterations)

	render := func(id string) error {
		switch id {
		case "ablation":
			return core.WriteAblationContext(ctx, outw, ds, 3)
		case "anonymity":
			return core.WriteAnonymityContext(ctx, outw, ds)
		case "demographics":
			return core.WriteDemographicsContext(ctx, outw, ds)
		default:
			return core.WriteExperimentContext(ctx, outw, ds, id)
		}
	}
	finish := func() {
		root.End()
		if exporter != nil {
			exporter.ExportSpan(root)
		}
		if *traceJSON != "" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				logger.Printf("trace-json: %v", err)
			} else {
				if err := root.WriteJSON(f); err != nil {
					logger.Printf("trace-json: %v", err)
				}
				f.Close()
				logger.Printf("trace written to %s", *traceJSON)
			}
		}
		if *traceText {
			if err := root.WriteText(errw); err != nil {
				logger.Printf("trace: %v", err)
			}
		}
	}
	if *exp != "" {
		if err := render(*exp); err != nil {
			return fmt.Errorf("experiment %s: %w", *exp, err)
		}
		finish()
		return nil
	}
	ids := append([]string{}, core.MainExperiments...)
	ids = append(ids, core.FollowUpExperiments...)
	ids = append(ids, "ablation", "anonymity", "demographics")
	for _, id := range ids {
		if err := render(id); err != nil {
			logger.Printf("experiment %s skipped: %v", id, err)
			continue
		}
		fmt.Fprintln(outw)
	}
	finish()
	return nil
}
