// Command fpanalyze re-runs the paper's analyses over a stored fingerprint
// dataset (an fpserver export or an fpstudy -out file). Each table/figure
// can be produced individually or all at once.
//
// Usage:
//
//	fpanalyze -data main.ndjson                  # everything derivable
//	fpanalyze -data main.ndjson -exp table2      # one experiment
//	fpanalyze -data main.ndjson -trace-json t.json   # with stage timings
//	fpanalyze -list                              # show experiment ids
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/study"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "NDJSON dataset (fpserver export / fpstudy -out)")
		exp       = flag.String("exp", "", "single experiment id to run (default: all)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		traceJSON = flag.String("trace-json", "", "write the analysis span tree as JSON to this path")
		traceText = flag.Bool("trace", false, "print the analysis span tree to stderr on exit")
		pprofAddr = flag.String("pprof", "", "serve /debug/pprof and /metrics on this address")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "fpanalyze ", log.LstdFlags|log.Lmsgprefix)

	if *list {
		fmt.Println("main-study experiments:")
		for _, id := range core.MainExperiments {
			fmt.Println("  " + id)
		}
		fmt.Println("follow-up experiments (need a follow-up dataset):")
		for _, id := range core.FollowUpExperiments {
			fmt.Println("  " + id)
		}
		fmt.Println("extensions:")
		for _, id := range []string{"ablation", "anonymity", "demographics"} {
			fmt.Println("  " + id)
		}
		return
	}
	if *dataPath == "" {
		logger.Fatal("-data is required (or -list)")
	}

	if *pprofAddr != "" {
		go func() {
			logger.Printf("debug endpoints on http://%s/debug/pprof", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, obs.DebugMux(obs.Default)); err != nil {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}
	root := obs.NewTrace("fpanalyze")
	ctx := obs.ContextWithSpan(context.Background(), root)

	st, err := storage.Open(*dataPath, storage.Options{})
	if err != nil {
		logger.Fatalf("open dataset: %v", err)
	}
	recs, err := st.All()
	closeErr := st.Close()
	if err != nil {
		logger.Fatalf("read dataset: %v", err)
	}
	if closeErr != nil {
		logger.Fatalf("close dataset: %v", closeErr)
	}
	logger.Printf("loaded %d records", len(recs))

	_, loadSpan := obs.Start(ctx, "load-dataset")
	ds, err := study.FromRecords(recs)
	loadSpan.End()
	if err != nil {
		logger.Fatalf("reconstruct dataset: %v", err)
	}
	logger.Printf("dataset: %d users × %d iterations", len(ds.Users), ds.Iterations)

	render := func(id string) error {
		switch id {
		case "ablation":
			return core.WriteAblationContext(ctx, os.Stdout, ds, 3)
		case "anonymity":
			return core.WriteAnonymityContext(ctx, os.Stdout, ds)
		case "demographics":
			return core.WriteDemographicsContext(ctx, os.Stdout, ds)
		default:
			return core.WriteExperimentContext(ctx, os.Stdout, ds, id)
		}
	}
	finish := func() {
		root.End()
		if *traceJSON != "" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				logger.Printf("trace-json: %v", err)
			} else {
				if err := root.WriteJSON(f); err != nil {
					logger.Printf("trace-json: %v", err)
				}
				f.Close()
				logger.Printf("trace written to %s", *traceJSON)
			}
		}
		if *traceText {
			if err := root.WriteText(os.Stderr); err != nil {
				logger.Printf("trace: %v", err)
			}
		}
	}
	if *exp != "" {
		if err := render(*exp); err != nil {
			logger.Fatalf("experiment %s: %v", *exp, err)
		}
		finish()
		return
	}
	ids := append([]string{}, core.MainExperiments...)
	ids = append(ids, core.FollowUpExperiments...)
	ids = append(ids, "ablation", "anonymity", "demographics")
	for _, id := range ids {
		if err := render(id); err != nil {
			logger.Printf("experiment %s skipped: %v", id, err)
			continue
		}
		fmt.Println()
	}
	finish()
}
