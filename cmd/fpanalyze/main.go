// Command fpanalyze re-runs the paper's analyses over a stored fingerprint
// dataset (an fpserver export or an fpstudy -out file). Each table/figure
// can be produced individually or all at once.
//
// Usage:
//
//	fpanalyze -data main.ndjson                  # everything derivable
//	fpanalyze -data main.ndjson -exp table2      # one experiment
//	fpanalyze -list                              # show experiment ids
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/study"
)

func main() {
	var (
		dataPath = flag.String("data", "", "NDJSON dataset (fpserver export / fpstudy -out)")
		exp      = flag.String("exp", "", "single experiment id to run (default: all)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "fpanalyze ", log.LstdFlags|log.Lmsgprefix)

	if *list {
		fmt.Println("main-study experiments:")
		for _, id := range core.MainExperiments {
			fmt.Println("  " + id)
		}
		fmt.Println("follow-up experiments (need a follow-up dataset):")
		for _, id := range core.FollowUpExperiments {
			fmt.Println("  " + id)
		}
		fmt.Println("extensions:")
		for _, id := range []string{"ablation", "anonymity", "demographics"} {
			fmt.Println("  " + id)
		}
		return
	}
	if *dataPath == "" {
		logger.Fatal("-data is required (or -list)")
	}

	st, err := storage.Open(*dataPath, storage.Options{})
	if err != nil {
		logger.Fatalf("open dataset: %v", err)
	}
	recs, err := st.All()
	closeErr := st.Close()
	if err != nil {
		logger.Fatalf("read dataset: %v", err)
	}
	if closeErr != nil {
		logger.Fatalf("close dataset: %v", closeErr)
	}
	logger.Printf("loaded %d records", len(recs))

	ds, err := study.FromRecords(recs)
	if err != nil {
		logger.Fatalf("reconstruct dataset: %v", err)
	}
	logger.Printf("dataset: %d users × %d iterations", len(ds.Users), ds.Iterations)

	render := func(id string) error {
		switch id {
		case "ablation":
			return core.WriteAblation(os.Stdout, ds, 3)
		case "anonymity":
			return core.WriteAnonymity(os.Stdout, ds)
		case "demographics":
			return core.WriteDemographics(os.Stdout, ds)
		default:
			return core.WriteExperiment(os.Stdout, ds, id)
		}
	}
	if *exp != "" {
		if err := render(*exp); err != nil {
			logger.Fatalf("experiment %s: %v", *exp, err)
		}
		return
	}
	ids := append([]string{}, core.MainExperiments...)
	ids = append(ids, core.FollowUpExperiments...)
	ids = append(ids, "ablation", "anonymity", "demographics")
	for _, id := range ids {
		if err := render(id); err != nil {
			logger.Printf("experiment %s skipped: %v", id, err)
			continue
		}
		fmt.Println()
	}
}
