// Command fpagent simulates a participant population: it samples devices,
// runs all seven Web Audio fingerprinting vectors against each device's
// simulated audio stack for the configured number of iterations, and
// submits the fingerprints to a collection server over HTTP — the
// counterpart of the study site's in-browser code, driven at scale.
//
// Usage (against a running fpserver):
//
//	fpagent -server http://localhost:8080 -users 100 -iterations 30
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/collectclient"
	"repro/internal/collectserver"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/study"
	"repro/internal/vectors"
)

func main() {
	var (
		server     = flag.String("server", "http://localhost:8080", "collection server base URL")
		users      = flag.Int("users", 50, "number of simulated participants")
		iterations = flag.Int("iterations", 30, "fingerprinting iterations per vector")
		seed       = flag.Int64("seed", 20220325, "population and jitter seed")
		parallel   = flag.Int("parallel", 8, "concurrent participants")
		followUp   = flag.Bool("followup", false, "use the §5 follow-up demographic mix")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "fpagent ", log.LstdFlags|log.Lmsgprefix)

	cfg := population.Config{Seed: *seed, N: *users}
	if *followUp {
		cfg.Mix = population.FollowUpMix()
		cfg.IDPrefix = "f"
	}
	devices := population.Sample(cfg)
	jitter := platform.DefaultJitter()
	cache := vectors.NewCache()
	client := collectclient.New(*server)
	ctx := context.Background()

	if _, err := client.StudyInfo(ctx); err != nil {
		logger.Fatalf("server unreachable: %v", err)
	}

	// Per-device jitter seeds, pre-derived for determinism.
	seedRng := rand.New(rand.NewSource(*seed ^ 0x6a75747465726d6c))
	seeds := make([]int64, len(devices))
	for i := range seeds {
		seeds[i] = seedRng.Int63()
	}

	sem := make(chan struct{}, max(1, *parallel))
	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := 0

	start := time.Now()
	for i, d := range devices {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, d *platform.Device) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := runParticipant(ctx, client, cache, jitter, d, *iterations, seeds[i]); err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
				logger.Printf("participant %s: %v", d.ID, err)
			}
		}(i, d)
	}
	wg.Wait()
	reportTelemetry(logger, client, len(devices), max(1, *parallel), time.Since(start))
	if failures > 0 {
		logger.Fatalf("%d of %d participants failed", failures, len(devices))
	}
	logger.Printf("submitted %d participants × %d iterations × %d vectors",
		len(devices), *iterations, len(vectors.All))
}

// reportTelemetry prints the client's submission throughput and retry
// behaviour, so operators see how the collection run actually went on the
// wire (not just that it finished).
func reportTelemetry(logger *log.Logger, client *collectclient.Client, participants, workers int, elapsed time.Duration) {
	tel := client.Telemetry()
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	logger.Printf("telemetry: %d HTTP requests (%d retries, %d failures), %.1f KiB sent, %s backing off",
		tel.Requests, tel.Retries, tel.Failures, float64(tel.BytesSent)/1024, tel.BackoffTotal.Round(time.Millisecond))
	logger.Printf("telemetry: %.1f requests/s, %.1f participants/s overall, %.2f participants/s per worker",
		float64(tel.Requests)/secs, float64(participants)/secs, float64(participants)/secs/float64(workers))
}

// runParticipant performs one device's full study visit: consent, render,
// submit in batches.
func runParticipant(ctx context.Context, client *collectclient.Client, cache *vectors.Cache,
	jitter *platform.JitterModel, d *platform.Device, iterations int, seed int64) error {

	sess, err := client.StartSession(ctx, d.ID, d.UserAgent())
	if err != nil {
		return err
	}
	runner := vectors.NewRunner(d.AudioTraits(), d.SampleRate)
	stack := d.AudioStackKey()
	rng := rand.New(rand.NewSource(seed))

	recs := make([]collectserver.FPRecord, 0, iterations*len(vectors.All))
	for it := 0; it < iterations; it++ {
		for _, v := range vectors.All {
			off := jitter.Offset(rng, d.Load, v)
			fp, err := cache.Run(stack, runner, v, off)
			if err != nil {
				return fmt.Errorf("render %v: %w", v, err)
			}
			rec := collectserver.FPRecord{Vector: v.String(), Iteration: it, Hash: fp.Hash, Sum: fp.Sum}
			if it == 0 && v == vectors.DC {
				rec.Surfaces = map[string]string{
					study.SurfaceCanvas:   d.CanvasFingerprint(),
					study.SurfaceFonts:    d.FontsFingerprint(),
					study.SurfaceMathJS:   d.MathJSFingerprint(),
					study.SurfacePlatform: d.Platform(),
				}
			}
			recs = append(recs, rec)
		}
	}
	return sess.SubmitChunked(ctx, recs, 128)
}
