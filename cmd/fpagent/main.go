// Command fpagent simulates a participant population: it samples devices,
// runs all seven Web Audio fingerprinting vectors against each device's
// simulated audio stack for the configured number of iterations, and
// submits the fingerprints to a collection server over HTTP — the
// counterpart of the study site's in-browser code, driven at scale.
//
// Usage (against a running fpserver):
//
//	fpagent -server http://localhost:8080 -users 100 -iterations 30
//	fpagent -faults "seed=7,drop=0.05,http500=0.05"   # chaos rehearsal
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/collectclient"
	"repro/internal/collectserver"
	"repro/internal/diag"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/study"
	"repro/internal/vectors"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stderr); err != nil {
		log.New(os.Stderr, "fpagent ", log.LstdFlags|log.Lmsgprefix).Fatal(err)
	}
}

// run drives the full agent lifecycle with flags parsed from args and logs
// on errw, so tests exercise the binary in-process.
func run(ctx context.Context, args []string, errw io.Writer) error {
	fs := flag.NewFlagSet("fpagent", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		server      = fs.String("server", "http://localhost:8080", "collection server base URL")
		users       = fs.Int("users", 50, "number of simulated participants")
		iterations  = fs.Int("iterations", 30, "fingerprinting iterations per vector")
		seed        = fs.Int64("seed", 20220325, "population and jitter seed")
		parallel    = fs.Int("parallel", 8, "concurrent participants")
		followUp    = fs.Bool("followup", false, "use the §5 follow-up demographic mix")
		idempotency = fs.Bool("idempotency", true, "attach idempotency keys so retried submissions never double-store")
		brkThresh   = fs.Int("breaker-threshold", 0, "consecutive failures before the circuit breaker opens (0 disables)")
		brkCooldown = fs.Duration("breaker-cooldown", 5*time.Second, "how long an open circuit breaker fails fast")
		faults      = fs.String("faults", "", "fault-injection spec for chaos rehearsal, e.g. \"seed=7,drop=0.05,delay=0.1:10ms,http500=0.05\"")
		export      = fs.String("export", "", "write telemetry (per-participant trace spans + periodic metrics snapshots) to this NDJSON file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(errw, "fpagent ", log.LstdFlags|log.Lmsgprefix)

	var exporter *obs.Exporter
	if *export != "" {
		var err error
		exporter, err = obs.NewExporter(obs.ExportConfig{
			Path:     *export,
			Registry: obs.Default,
			Service:  "fpagent",
		})
		if err != nil {
			return err
		}
		defer exporter.Close()
		logger.Printf("telemetry export to %s", *export)
		// runtime_* gauges land in the exported metrics snapshots.
		sampler := diag.NewSampler(diag.SamplerConfig{Registry: obs.Default})
		sampler.Start()
		defer sampler.Close()
	}

	cfg := population.Config{Seed: *seed, N: *users}
	if *followUp {
		cfg.Mix = population.FollowUpMix()
		cfg.IDPrefix = "f"
	}
	devices := population.Sample(cfg)
	jitter := platform.DefaultJitter()
	cache := vectors.NewCache()

	opts := []collectclient.Option{collectclient.WithIdempotency(*idempotency)}
	if *brkThresh > 0 {
		opts = append(opts, collectclient.WithBreaker(*brkThresh, *brkCooldown))
	}
	var sched *faultinject.Schedule
	if *faults != "" {
		var err error
		sched, err = faultinject.ParseSpec(*faults, nil)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		logger.Printf("fault injection active: %s", *faults)
		opts = append(opts, collectclient.WithHTTPClient(&http.Client{
			Timeout:   30 * time.Second,
			Transport: &faultinject.Transport{Base: http.DefaultTransport, Schedule: sched},
		}))
	}
	client := collectclient.New(*server, opts...)

	if _, err := client.StudyInfo(ctx); err != nil {
		return fmt.Errorf("server unreachable: %w", err)
	}

	// Per-device jitter seeds, pre-derived for determinism.
	seedRng := rand.New(rand.NewSource(*seed ^ 0x6a75747465726d6c))
	seeds := make([]int64, len(devices))
	for i := range seeds {
		seeds[i] = seedRng.Int63()
	}

	sem := make(chan struct{}, max(1, *parallel))
	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := 0

	start := time.Now()
	for i, d := range devices {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, d *platform.Device) {
			defer wg.Done()
			defer func() { <-sem }()
			// One trace per participant visit: the client stamps its
			// traceparent onto every submission, so a trace-exporting
			// server stitches its ingest spans onto this root.
			pctx := ctx
			var sp *obs.Span
			if exporter != nil {
				sp = obs.NewTrace("agent.participant")
				sp.SetAttr("user", d.ID)
				pctx = obs.ContextWithSpan(ctx, sp)
			}
			err := runParticipant(pctx, client, cache, jitter, d, *iterations, seeds[i])
			if sp != nil {
				sp.SetAttr("failed", err != nil)
				sp.End()
				exporter.ExportSpan(sp)
			}
			if err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
				logger.Printf("participant %s: %v", d.ID, err)
			}
		}(i, d)
	}
	wg.Wait()
	reportTelemetry(logger, client, len(devices), max(1, *parallel), time.Since(start))
	if sched != nil {
		logger.Printf("faults injected: %s", sched)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d participants failed", failures, len(devices))
	}
	logger.Printf("submitted %d participants × %d iterations × %d vectors",
		len(devices), *iterations, len(vectors.All))
	return nil
}

// reportTelemetry prints the client's submission throughput and retry
// behaviour, so operators see how the collection run actually went on the
// wire (not just that it finished).
func reportTelemetry(logger *log.Logger, client *collectclient.Client, participants, workers int, elapsed time.Duration) {
	tel := client.Telemetry()
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	logger.Printf("telemetry: %d HTTP requests (%d retries, %d failures, %d breaker opens), %.1f KiB sent, %s backing off",
		tel.Requests, tel.Retries, tel.Failures, tel.BreakerOpens, float64(tel.BytesSent)/1024, tel.BackoffTotal.Round(time.Millisecond))
	if tel.LastErrorCode != "" || tel.BreakerState != collectclient.BreakerClosed {
		logger.Printf("telemetry: breaker %s, last error code %q", tel.BreakerState, tel.LastErrorCode)
	}
	logger.Printf("telemetry: %.1f requests/s, %.1f participants/s overall, %.2f participants/s per worker",
		float64(tel.Requests)/secs, float64(participants)/secs, float64(participants)/secs/float64(workers))
}

// runParticipant performs one device's full study visit: consent, render,
// submit in batches.
func runParticipant(ctx context.Context, client *collectclient.Client, cache *vectors.Cache,
	jitter *platform.JitterModel, d *platform.Device, iterations int, seed int64) error {

	sess, err := client.StartSession(ctx, d.ID, d.UserAgent())
	if err != nil {
		return err
	}
	runner := vectors.NewRunner(d.AudioTraits(), d.SampleRate)
	stack := d.AudioStackKey()
	rng := rand.New(rand.NewSource(seed))

	recs := make([]collectserver.FPRecord, 0, iterations*len(vectors.All))
	for it := 0; it < iterations; it++ {
		for _, v := range vectors.All {
			off := jitter.Offset(rng, d.Load, v)
			fp, err := cache.Run(stack, runner, v, off)
			if err != nil {
				return fmt.Errorf("render %v: %w", v, err)
			}
			rec := collectserver.FPRecord{Vector: v.String(), Iteration: it, Hash: fp.Hash, Sum: fp.Sum}
			if it == 0 && v == vectors.DC {
				rec.Surfaces = map[string]string{
					study.SurfaceCanvas:   d.CanvasFingerprint(),
					study.SurfaceFonts:    d.FontsFingerprint(),
					study.SurfaceMathJS:   d.MathJSFingerprint(),
					study.SurfacePlatform: d.Platform(),
				}
			}
			recs = append(recs, rec)
		}
	}
	return sess.SubmitChunked(ctx, recs, 128)
}
