package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/collectserver"
	"repro/internal/storage"
)

// startCollector runs an in-process collection backend for the agent to
// talk to.
func startCollector(t *testing.T) (*httptest.Server, *storage.Store) {
	t.Helper()
	st, err := storage.Open(filepath.Join(t.TempDir(), "fp.ndjson"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := collectserver.New(collectserver.Config{
		Store:             st,
		SubmitRatePerSec:  1e6,
		SessionRatePerMin: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); st.Close() })
	return ts, st
}

// TestRunSmoke drives the whole agent — sample, render, submit — against a
// real in-process server and checks every record landed.
func TestRunSmoke(t *testing.T) {
	ts, st := startCollector(t)
	var logs bytes.Buffer
	err := run(context.Background(), []string{
		"-server", ts.URL,
		"-users", "3",
		"-iterations", "2",
		"-parallel", "2",
	}, &logs)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, logs.String())
	}
	want := 3 * 2 * 7 // users × iterations × vectors
	if got := st.Count(); got != want {
		t.Errorf("stored %d records, want %d", got, want)
	}
	if !strings.Contains(logs.String(), "telemetry:") {
		t.Errorf("telemetry report missing:\n%s", logs.String())
	}
}

// TestRunWithFaults rehearses chaos through the -faults flag: with drops
// and 5xx injected, retries still land every record exactly once.
func TestRunWithFaults(t *testing.T) {
	ts, st := startCollector(t)
	var logs bytes.Buffer
	err := run(context.Background(), []string{
		"-server", ts.URL,
		"-users", "2",
		"-iterations", "2",
		"-parallel", "1",
		"-faults", "seed=3,drop=0.05,http500=0.05",
	}, &logs)
	if err != nil {
		t.Fatalf("run under faults: %v\n%s", err, logs.String())
	}
	want := 2 * 2 * 7
	if got := st.Count(); got != want {
		t.Errorf("stored %d records under faults, want %d", got, want)
	}
	if !strings.Contains(logs.String(), "fault injection active") {
		t.Errorf("fault banner missing:\n%s", logs.String())
	}
}

// TestRunFlagErrors: bad flags and bad fault specs are clean errors.
func TestRunFlagErrors(t *testing.T) {
	var logs bytes.Buffer
	if err := run(context.Background(), []string{"-not-a-flag"}, &logs); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-faults", "garbage==1"}, &logs); err == nil {
		t.Error("bad fault spec accepted")
	}
}

// TestRunIdempotencyDisabled: the -idempotency=false escape hatch still
// completes a clean (fault-free) run.
func TestRunIdempotencyDisabled(t *testing.T) {
	ts, st := startCollector(t)
	var logs bytes.Buffer
	err := run(context.Background(), []string{
		"-server", ts.URL,
		"-users", "1",
		"-iterations", "1",
		"-idempotency=false",
	}, &logs)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, logs.String())
	}
	if got := st.Count(); got != 7 {
		t.Errorf("stored %d records, want 7", got)
	}
}
