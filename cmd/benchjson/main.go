// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON array of benchmark results, one object per benchmark line:
//
//	go test -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH.json
//
// Non-benchmark lines (package headers, PASS/ok, logs) are ignored, so the
// raw test output can be piped through unfiltered. Used by `make bench-json`
// to keep machine-readable performance snapshots alongside the repo.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. NsPerOp is always present;
// BytesPerOp/AllocsPerOp are present only when -benchmem was given
// (omitted from the JSON otherwise, rather than emitting a false 0).
type Result struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// parseLine parses a single `go test -bench` result line, e.g.
//
//	BenchmarkFigure5-8   16   73848520 ns/op   21862984 B/op   25274 allocs/op
//
// returning ok=false for anything that isn't a benchmark result.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// Remaining fields come in "<value> <unit>" pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			sawNs = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		}
	}
	return r, sawNs
}

func run(in io.Reader, out io.Writer) error {
	results := []Result{} // non-nil so zero benchmarks encodes as [], not null
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
