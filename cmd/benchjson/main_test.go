package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkFigure5-8   \t      16\t  73848520 ns/op\t 21862984 B/op\t   25274 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if r.Name != "BenchmarkFigure5-8" || r.Iterations != 16 || r.NsPerOp != 73848520 {
		t.Errorf("parsed %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 21862984 {
		t.Errorf("bytes_per_op = %v", r.BytesPerOp)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 25274 {
		t.Errorf("allocs_per_op = %v", r.AllocsPerOp)
	}

	// Without -benchmem the memory fields must be absent, not zero.
	r, ok = parseLine("BenchmarkSubsetRanking-8	1556	771473 ns/op")
	if !ok || r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Errorf("plain line parsed as %+v ok=%v", r, ok)
	}

	for _, line := range []string{
		"ok  	repro/internal/study	27.1s",
		"PASS",
		"goos: linux",
		"BenchmarkBroken notanumber 5 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-benchmark line accepted: %q", line)
		}
	}
}

func TestRunEmitsJSONArray(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkA-4	100	50 ns/op	8 B/op	1 allocs/op",
		"some log output",
		"BenchmarkB/sub-4	200	25 ns/op",
		"PASS",
	}, "\n")
	var out bytes.Buffer
	if err := run(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Name != "BenchmarkA-4" || results[1].Name != "BenchmarkB/sub-4" {
		t.Errorf("results = %+v", results)
	}

	// Zero benchmarks must encode as an empty array, not null.
	out.Reset()
	if err := run(strings.NewReader("PASS\n"), &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("empty input encodes as %q, want []", got)
	}
}
