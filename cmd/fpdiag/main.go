// Command fpdiag inspects the diagnostic bundles a -diag fpserver (or a
// manual POST /api/v1/obs/bundles) captured: list the ring, show one
// bundle's manifest and heap top-N, and diff the heap between two bundles
// to see what grew between captures.
//
// Usage:
//
//	fpdiag [-dir diag] list
//	fpdiag [-dir diag] show <bundle-id> [-top 10]
//	fpdiag [-dir diag] diff <bundle-a> <bundle-b> [-top 10]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"

	"repro/internal/diag"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fpdiag:", err)
		os.Exit(1)
	}
}

// run is the CLI behind a testable seam.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("fpdiag", flag.ContinueOnError)
	fs.SetOutput(errw)
	dir := fs.String("dir", "diag", "bundle ring directory (fpserver's -diag-dir)")
	top := fs.Int("top", 10, "rows in heap top-N tables (show/diff)")
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: fpdiag [-dir DIR] [-top N] <list | show ID | diff A B>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch cmd, rest := fs.Arg(0), fs.Args(); cmd {
	case "list":
		return runList(out, *dir)
	case "show":
		if len(rest) != 2 {
			return fmt.Errorf("show wants exactly one bundle ID, got %d args", len(rest)-1)
		}
		return runShow(out, *dir, rest[1], *top)
	case "diff":
		if len(rest) != 3 {
			return fmt.Errorf("diff wants exactly two bundle IDs, got %d args", len(rest)-1)
		}
		return runDiff(out, *dir, rest[1], rest[2], *top)
	case "":
		fs.Usage()
		return fmt.Errorf("a command is required")
	default:
		return fmt.Errorf("unknown command %q (want list, show or diff)", cmd)
	}
}

func runList(out io.Writer, dir string) error {
	mans, err := diag.ListBundles(dir)
	if err != nil {
		return err
	}
	if len(mans) == 0 {
		fmt.Fprintf(out, "no bundles under %s\n", dir)
		return nil
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tCAPTURED\tREASON\tRULE\tFILES\tBYTES")
	for _, m := range mans {
		rule := m.Rule
		if rule == "" {
			rule = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%d\n",
			m.ID, m.CapturedAt.Format("2006-01-02 15:04:05Z"), m.Reason, rule,
			len(m.Files), m.TotalBytes)
	}
	return tw.Flush()
}

func runShow(out io.Writer, dir, id string, top int) error {
	m, err := diag.ReadManifest(dir, id)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "bundle %s\n", m.ID)
	fmt.Fprintf(out, "  captured: %s  reason: %s\n", m.CapturedAt.Format("2006-01-02 15:04:05Z"), m.Reason)
	if m.Rule != "" {
		fmt.Fprintf(out, "  rule: %s\n", m.Rule)
	}
	if m.Alert != nil {
		fmt.Fprintf(out, "  alert: %s value=%.4f threshold=%.4f at record %d\n",
			m.Alert.State, m.Alert.Value, m.Alert.Threshold, m.Alert.FiredAtRecords)
		if m.Alert.Message != "" {
			fmt.Fprintf(out, "  message: %s\n", m.Alert.Message)
		}
	}
	fmt.Fprintf(out, "  go: %s  pid: %d", m.GoVersion, m.PID)
	if m.Hostname != "" {
		fmt.Fprintf(out, "  host: %s", m.Hostname)
	}
	fmt.Fprintln(out)
	if m.Runtime != nil {
		fmt.Fprintf(out, "  runtime: goroutines=%d heap_inuse=%d last_gc_pause=%.6fs\n",
			m.Runtime.Goroutines, m.Runtime.HeapInuseBytes, m.Runtime.LastGCPauseSeconds)
	}
	if len(m.Shards) > 0 {
		fmt.Fprintf(out, "  shards: %d (ingest skew %.2f)\n", len(m.Shards), m.ShardSkew)
	}
	fmt.Fprintf(out, "  files (%d bytes total):\n", m.TotalBytes)
	for _, f := range m.Files {
		fmt.Fprintf(out, "    %-16s %d\n", f.Name, f.Bytes)
	}

	heap, err := readHeapProfile(dir, id)
	if err != nil {
		fmt.Fprintf(out, "  heap profile unreadable: %v\n", err)
		return nil
	}
	fmt.Fprintf(out, "  heap inuse_space top %d by function:\n", top)
	tw := tabwriter.NewWriter(out, 4, 4, 2, ' ', 0)
	for _, ft := range diag.TopByType(heap, "inuse_space", top) {
		fmt.Fprintf(tw, "    %d\t%s\n", ft.Value, ft.Func)
	}
	return tw.Flush()
}

// runDiff prints the per-function inuse_space delta between bundle a
// (before) and bundle b (after), largest absolute change first — "what
// grew between these two captures".
func runDiff(out io.Writer, dir, a, b string, top int) error {
	before, err := readHeapProfile(dir, a)
	if err != nil {
		return fmt.Errorf("bundle %s: %w", a, err)
	}
	after, err := readHeapProfile(dir, b)
	if err != nil {
		return fmt.Errorf("bundle %s: %w", b, err)
	}
	delta := map[string]int64{}
	for _, ft := range diag.TopByType(before, "inuse_space", 0) {
		delta[ft.Func] -= ft.Value
	}
	for _, ft := range diag.TopByType(after, "inuse_space", 0) {
		delta[ft.Func] += ft.Value
	}
	rows := make([]diag.FuncTotal, 0, len(delta))
	for f, v := range delta {
		if v != 0 {
			rows = append(rows, diag.FuncTotal{Func: f, Value: v})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		ai, aj := abs(rows[i].Value), abs(rows[j].Value)
		if ai != aj {
			return ai > aj
		}
		return rows[i].Func < rows[j].Func
	})
	if top > 0 && len(rows) > top {
		rows = rows[:top]
	}
	fmt.Fprintf(out, "heap inuse_space delta %s -> %s (top %d by |change|):\n", a, b, top)
	if len(rows) == 0 {
		fmt.Fprintln(out, "  no per-function changes")
		return nil
	}
	tw := tabwriter.NewWriter(out, 4, 4, 2, ' ', 0)
	for _, r := range rows {
		fmt.Fprintf(tw, "  %+d\t%s\n", r.Value, r.Func)
	}
	return tw.Flush()
}

func readHeapProfile(dir, id string) (*diag.Profile, error) {
	if !diag.ValidBundleID(id) {
		return nil, diag.ErrUnknownBundle
	}
	f, err := os.Open(filepath.Join(dir, id, diag.FileHeap))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return diag.ParsePprof(f)
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
