package main

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/obs"
)

// fpdiagSink retains allocations between the two captures so the heap
// diff has a real per-function delta to report.
var fpdiagSink [][]byte

//go:noinline
func retainForDiff(mb int) {
	for i := 0; i < mb; i++ {
		fpdiagSink = append(fpdiagSink, make([]byte, 1<<20))
	}
}

// TestFpdiagListShowDiff captures two real bundles and drives every
// subcommand through the run() seam.
func TestFpdiagListShowDiff(t *testing.T) {
	dir := t.TempDir()
	capt, err := diag.NewCapturer(diag.CaptureConfig{
		Dir:      dir,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	first, err := capt.Capture()
	if err != nil {
		t.Fatal(err)
	}
	retainForDiff(6)
	defer func() { fpdiagSink = nil }()
	runtime.GC() // heap profiles report post-GC live data
	second, err := capt.Capture()
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "list"}, &out, &out); err != nil {
		t.Fatalf("list: %v", err)
	}
	text := out.String()
	for _, want := range []string{"ID", first.ID, second.ID, diag.ReasonManual} {
		if !strings.Contains(text, want) {
			t.Errorf("list output missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if err := run([]string{"-dir", dir, "show", second.ID}, &out, &out); err != nil {
		t.Fatalf("show: %v", err)
	}
	text = out.String()
	for _, want := range []string{
		"bundle " + second.ID,
		diag.FileHeap,
		diag.FileGoroutines,
		"heap inuse_space top",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("show output missing %q:\n%s", want, text)
		}
	}

	out.Reset()
	if err := run([]string{"-dir", dir, "diff", first.ID, second.ID}, &out, &out); err != nil {
		t.Fatalf("diff: %v", err)
	}
	text = out.String()
	if !strings.Contains(text, "heap inuse_space delta") {
		t.Errorf("diff output missing header:\n%s", text)
	}
	// The retained megabytes must show up as growth attributed to the
	// retaining function.
	if !strings.Contains(text, "retainForDiff") {
		t.Errorf("diff output does not attribute growth to retainForDiff:\n%s", text)
	}

	// Error paths: unknown command, missing args, unknown bundle.
	if err := run([]string{"-dir", dir, "bogus"}, &out, &out); err == nil {
		t.Error("unknown command did not error")
	}
	if err := run([]string{"-dir", dir, "show"}, &out, &out); err == nil {
		t.Error("show without ID did not error")
	}
	if err := run([]string{"-dir", dir, "diff", first.ID, "nope"}, &out, &out); err == nil {
		t.Error("diff with unknown bundle did not error")
	}
	if err := run([]string{"-dir", dir}, &out, &out); err == nil {
		t.Error("missing command did not error")
	}
}
