package main

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/diag"
)

// TestRunDiagSmoke boots the binary with -diag, takes an on-demand capture
// over HTTP, and checks both the API surface and the on-disk ring — the
// exact flow an operator follows when something looks off.
func TestRunDiagSmoke(t *testing.T) {
	dir := t.TempDir()
	bundles := filepath.Join(dir, "ring")
	base, logs, cancel, done := startServer(t, filepath.Join(dir, "fp.ndjson"),
		"-diag", "-diag-dir", bundles)
	defer cancel()

	// The always-on sampler feeds /debug/health and /metrics.
	resp, err := http.Get(base + "/debug/health")
	if err != nil {
		t.Fatal(err)
	}
	health, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(health), "runtime goroutines: ") {
		t.Errorf("/debug/health missing runtime section:\n%s", health)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "runtime_heap_inuse_bytes") {
		t.Errorf("/metrics missing runtime_heap_inuse_bytes")
	}

	// Manual capture through the API lands in the ring.
	presp, err := http.Post(base+"/api/v1/obs/bundles", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	pbody, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusCreated {
		t.Fatalf("POST bundles: %d %s", presp.StatusCode, pbody)
	}
	var env struct {
		Data diag.Manifest `json:"data"`
	}
	if err := json.Unmarshal(pbody, &env); err != nil {
		t.Fatal(err)
	}
	if env.Data.ID == "" || env.Data.Reason != diag.ReasonManual {
		t.Fatalf("capture manifest = %+v", env.Data)
	}
	mans, err := diag.ListBundles(bundles)
	if err != nil || len(mans) != 1 || mans[0].ID != env.Data.ID {
		t.Fatalf("on-disk ring = %v, %v", mans, err)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}
	if !strings.Contains(logs.String(), "diag bundles to ") {
		t.Errorf("startup log missing diag line:\n%s", logs.String())
	}
}

// TestDiagFlagValidation pins -diag-cpu-seconds requiring -diag.
func TestDiagFlagValidation(t *testing.T) {
	err := run(t.Context(), []string{
		"-addr", "127.0.0.1:0",
		"-store", filepath.Join(t.TempDir(), "fp.ndjson"),
		"-diag-cpu-seconds", "1",
	}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-diag-cpu-seconds requires -diag") {
		t.Fatalf("err = %v, want -diag-cpu-seconds requires -diag", err)
	}
}
