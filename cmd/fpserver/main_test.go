package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRunSmoke boots the real server on an ephemeral port, probes it over
// HTTP, and shuts it down through context cancellation — the binary's whole
// lifecycle in-process.
func TestRunSmoke(t *testing.T) {
	store := filepath.Join(t.TempDir(), "fp.ndjson")
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	defer func() { onListen = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	var logs bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-store", store,
			"-max-inflight", "64",
			"-rate", "1000",
			"-max-segment", "65536",
			"-analytics",
		}, &logs)
	}()

	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited before listening: %v\n%s", err, logs.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never started listening")
	}

	base := fmt.Sprintf("http://%s", addr)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics = %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/api/v1/analytics/entropy")
	if err != nil {
		t.Fatalf("analytics: %v", err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("analytics entropy = %d %s", resp.StatusCode, body.String())
	}
	if v := resp.Header.Get("X-API-Version"); v != "1" {
		t.Errorf("analytics X-API-Version = %q", v)
	}
	if !strings.Contains(body.String(), `"data"`) {
		t.Errorf("analytics body not enveloped: %s", body.String())
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down after cancel")
	}
	if !strings.Contains(logs.String(), "listening on") {
		t.Errorf("startup log missing: %s", logs.String())
	}
}

// TestRunFlagError: an unknown flag is a clean error, not an os.Exit.
func TestRunFlagError(t *testing.T) {
	var logs bytes.Buffer
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &logs); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunBadStorePath: an unopenable store path surfaces as an error.
func TestRunBadStorePath(t *testing.T) {
	var logs bytes.Buffer
	err := run(context.Background(), []string{
		"-store", filepath.Join(t.TempDir(), "no", "such", "dir", "fp.ndjson"),
	}, &logs)
	if err == nil {
		t.Fatal("bad store path accepted")
	}
}
