package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRunSmoke boots the real server on an ephemeral port, probes it over
// HTTP, and shuts it down through context cancellation — the binary's whole
// lifecycle in-process.
func TestRunSmoke(t *testing.T) {
	store := filepath.Join(t.TempDir(), "fp.ndjson")
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	defer func() { onListen = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	var logs bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-store", store,
			"-max-inflight", "64",
			"-rate", "1000",
			"-max-segment", "65536",
			"-analytics",
		}, &logs)
	}()

	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("server exited before listening: %v\n%s", err, logs.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never started listening")
	}

	base := fmt.Sprintf("http://%s", addr)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics = %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/api/v1/analytics/entropy")
	if err != nil {
		t.Fatalf("analytics: %v", err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("analytics entropy = %d %s", resp.StatusCode, body.String())
	}
	if v := resp.Header.Get("X-API-Version"); v != "1" {
		t.Errorf("analytics X-API-Version = %q", v)
	}
	if !strings.Contains(body.String(), `"data"`) {
		t.Errorf("analytics body not enveloped: %s", body.String())
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down after cancel")
	}
	if !strings.Contains(logs.String(), "listening on") {
		t.Errorf("startup log missing: %s", logs.String())
	}
}

// syncBuf is a mutex-guarded log buffer: tests read it while the server
// goroutine is still logging (e.g. right after startServer returns, before
// the "listening on" line lands).
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startServer boots run() on an ephemeral port with the given extra flags
// and returns the base URL, the log buffer, a cancel func, and the done
// channel carrying run's error.
func startServer(t *testing.T, store string, extra ...string) (string, *syncBuf, context.CancelFunc, chan error) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	t.Cleanup(func() { onListen = nil })

	ctx, cancel := context.WithCancel(context.Background())
	logs := &syncBuf{}
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-store", store}, extra...)
	go func() { done <- run(ctx, args, logs) }()

	select {
	case a := <-addrCh:
		return fmt.Sprintf("http://%s", a), logs, cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("server exited before listening: %v\n%s", err, logs.String())
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("server never started listening")
	}
	return "", nil, nil, nil
}

func postJSON(t *testing.T, url string, req, resp any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer r.Body.Close()
	var env struct {
		Data json.RawMessage `json:"data"`
	}
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	if r.StatusCode >= 300 {
		t.Fatalf("POST %s = %d", url, r.StatusCode)
	}
	if resp != nil {
		if err := json.Unmarshal(env.Data, resp); err != nil {
			t.Fatalf("POST %s: decode data: %v", url, err)
		}
	}
}

// TestRunShardedSmoke exercises the full sharded lifecycle: boot with
// -shards 3 -analytics, ingest fingerprints for users that land on
// different shards through the real consent/session/submit API, read the
// merged analytics, shut down, verify the per-shard store files landed on
// disk, then restart over the same files and check every record survived
// into both the store count and the rebuilt analytics plane.
func TestRunShardedSmoke(t *testing.T) {
	store := filepath.Join(t.TempDir(), "fp.ndjson")

	base, _, cancel, done := startServer(t, store, "-shards", "3", "-analytics")
	users := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	for i, uid := range users {
		var sess struct {
			Token string `json:"token"`
		}
		postJSON(t, base+"/api/v1/sessions", map[string]any{
			"user_id": uid, "user_agent": "smoke", "consent": true,
		}, &sess)
		var ack struct {
			Accepted int `json:"accepted"`
		}
		postJSON(t, base+"/api/v1/fingerprints", map[string]any{
			"token": sess.Token,
			"records": []map[string]any{
				{"vector": "DC", "iteration": 1, "hash": fmt.Sprintf("aa%d", i%2)},
				{"vector": "FFT", "iteration": 1, "hash": fmt.Sprintf("bb%d", i)},
			},
		}, &ack)
		if ack.Accepted != 2 {
			t.Fatalf("user %s: accepted = %d, want 2", uid, ack.Accepted)
		}
	}

	resp, err := http.Get(base + "/api/v1/analytics/status")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analytics status = %d %s", resp.StatusCode, body.String())
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down after cancel")
	}

	populated := 0
	for i := 0; i < 3; i++ {
		fi, err := os.Stat(fmt.Sprintf("%s.shard%d", store, i))
		if err != nil {
			t.Fatalf("shard %d store file missing: %v", i, err)
		}
		if fi.Size() > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Errorf("only %d of 3 shard files populated; routing did not spread %d users", populated, len(users))
	}
	if _, err := os.Stat(store); err == nil {
		t.Errorf("unsharded store file %s exists in sharded mode", store)
	}

	// Restart over the same files: every record must come back.
	base, logs, cancel, done := startServer(t, store, "-shards", "3", "-analytics")
	defer cancel()
	want := fmt.Sprintf("3 shards, %d existing records", 2*len(users))
	if !strings.Contains(logs.String(), want) {
		t.Errorf("restart log missing %q:\n%s", want, logs.String())
	}
	resp, err = http.Get(base + "/api/v1/analytics/status")
	if err != nil {
		t.Fatal(err)
	}
	body.Reset()
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analytics status after restart = %d", resp.StatusCode)
	}
	wantRecs := fmt.Sprintf(`"records":%d`, 2*len(users))
	if !strings.Contains(body.String(), wantRecs) {
		t.Errorf("restarted analytics status missing %s: %s", wantRecs, body.String())
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("restarted run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("restarted server never shut down")
	}
}

// TestRunShardsFlagErrors: invalid shard configurations fail fast.
func TestRunShardsFlagErrors(t *testing.T) {
	var logs bytes.Buffer
	if err := run(context.Background(), []string{"-shards", "0"}, &logs); err == nil {
		t.Error("-shards 0 accepted")
	}
	if err := run(context.Background(), []string{"-shards", "2", "-watch"}, &logs); err == nil {
		t.Error("-shards 2 -watch accepted")
	}
}

// TestRunFlagError: an unknown flag is a clean error, not an os.Exit.
func TestRunFlagError(t *testing.T) {
	var logs bytes.Buffer
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &logs); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunBadStorePath: an unopenable store path surfaces as an error.
func TestRunBadStorePath(t *testing.T) {
	var logs bytes.Buffer
	err := run(context.Background(), []string{
		"-store", filepath.Join(t.TempDir(), "no", "such", "dir", "fp.ndjson"),
	}, &logs)
	if err == nil {
		t.Fatal("bad store path accepted")
	}
}
