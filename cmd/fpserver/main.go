// Command fpserver runs the fingerprint-collection backend: the consent-
// gated HTTP API participants submit Web Audio fingerprints to, persisting
// them in an append-only NDJSON store.
//
// Usage:
//
//	fpserver -addr :8080 -store fingerprints.ndjson -admin-token secret
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collectserver"
	"repro/internal/diag"
	"repro/internal/obs"
	"repro/internal/obs/series"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/streaming"
	"repro/internal/verify"
	"repro/internal/watch"
)

// loadCalibration reads a calibration file: either a bare verify.Calibration
// or a full fpstudy verify-sweep result wrapping one under "calibration".
func loadCalibration(path string) (*verify.Calibration, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var wrapped struct {
		Calibration *verify.Calibration `json:"calibration"`
	}
	if err := json.Unmarshal(raw, &wrapped); err == nil &&
		wrapped.Calibration != nil && len(wrapped.Calibration.Points) > 0 {
		return wrapped.Calibration, nil
	}
	var cal verify.Calibration
	if err := json.Unmarshal(raw, &cal); err != nil {
		return nil, err
	}
	if len(cal.Points) == 0 {
		return nil, fmt.Errorf("%s carries no sweep points", path)
	}
	return &cal, nil
}

// onListen, when set by tests, receives the bound listener address so an
// in-process run on ":0" can be probed.
var onListen func(net.Addr)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		log.New(os.Stderr, "fpserver ", log.LstdFlags|log.Lmsgprefix).Fatal(err)
	}
}

// run is the whole server lifecycle behind a testable seam: flags are
// parsed from args, logs go to errw, and cancelling ctx triggers the same
// graceful shutdown a SIGTERM does.
func run(ctx context.Context, args []string, errw io.Writer) error {
	fs := flag.NewFlagSet("fpserver", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		storePath  = fs.String("store", "fingerprints.ndjson", "NDJSON store path")
		adminToken = fs.String("admin-token", "", "bearer token authorizing /api/v1/export (empty disables export)")
		syncWrites = fs.Bool("sync", false, "fsync after every accepted batch")
		maxBatch   = fs.Int("max-batch", 256, "max records per submission")
		sessRate   = fs.Float64("session-rate", 600, "session creations per client IP per minute")
		maxInFly   = fs.Int("max-inflight", 256, "concurrently served requests before shedding with 503 (negative disables)")
		subRate    = fs.Float64("rate", 50, "fingerprint submissions per client IP per second before shedding with 429")
		segBytes   = fs.Int64("max-segment", 0, "rotate the store file beyond this many bytes (0 disables)")
		shards     = fs.Int("shards", 1, "partition ingest+analytics by user-id hash into this many shards (1 = single store/engine, bit-for-bit the unsharded behavior)")
		recover_   = fs.Bool("recover", true, "salvage the store's active file up to the first torn write on startup")
		debug      = fs.Bool("debug", false, "mount /debug/pprof and /debug/vars (operational detail — keep off on public listeners)")
		analytics  = fs.Bool("analytics", false, "serve live incremental analytics on /api/v1/analytics/* (rebuilt from the store on startup)")
		watchFlag  = fs.Bool("watch", false, "run measurement-health watchers over the live analytics (implies -analytics); alerts on /api/v1/analytics/alerts and /debug/health")
		export     = fs.String("export", "", "write telemetry (request/ingest/apply spans + periodic metrics snapshots) to this NDJSON file")
		seriesFlag = fs.Bool("series", false, "retain metric time-series in memory and serve them on /api/v1/obs/query and /api/v1/obs/series")
		seriesTick = fs.Duration("series-interval", 5*time.Second, "series snapshot interval (with -series)")
		seriesCap  = fs.Int("series-capacity", 720, "retained points per series (with -series)")
		verifyFlag = fs.Bool("verify", false, "serve authentication decisions on POST /api/v1/verify (history bootstrapped from the store, kept current by accepted submissions)")
		verifyThr  = fs.Float64("verify-threshold", 0, "accept threshold override in (0,1]; 0 takes the calibration's EER threshold, else the built-in default (with -verify)")
		verifyCal  = fs.String("verify-calibration", "", "calibration JSON from 'fpstudy -verify-sweep' supplying the threshold and served on /api/v1/analytics/verify (with -verify)")
		diagFlag   = fs.Bool("diag", false, "capture diagnostic bundles (goroutines, heap, metrics, series window) when a watch alert fires, and on demand via POST /api/v1/obs/bundles")
		diagDir    = fs.String("diag-dir", "diag", "bundle ring directory (with -diag)")
		diagCPU    = fs.Int("diag-cpu-seconds", 0, "also record a CPU profile of this many seconds per bundle (with -diag; 0 disables)")
		diagCool   = fs.Duration("diag-cooldown", 10*time.Minute, "minimum gap between alert-triggered captures of the same rule (with -diag)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(errw, "fpserver ", log.LstdFlags|log.Lmsgprefix)

	// The runtime sampler is always on: runtime_* gauges cost one
	// runtime/metrics read per interval and feed /metrics, /debug/health,
	// -series retention, and diagnostic bundles.
	sampler := diag.NewSampler(diag.SamplerConfig{Registry: obs.Default})
	sampler.Start()
	defer sampler.Close()

	var err error
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", *shards)
	}
	if *shards > 1 && *watchFlag {
		// The watch monitor evaluates rules from a single engine's apply
		// hook; it has no merged-state equivalent yet.
		return errors.New("-watch is not supported with -shards > 1")
	}

	opts := storage.Options{
		SyncEveryAppend: *syncWrites,
		MaxSegmentBytes: *segBytes,
	}
	// st is the single-store path (shards == 1, bit-for-bit the unsharded
	// behavior: same file, no seq stamping); sst the partitioned one.
	var st *storage.Store
	var sst *shard.Stores
	var store collectserver.RecordStore
	if *shards == 1 {
		st, err = storage.Open(*storePath, opts)
		if err != nil {
			return err
		}
		defer st.Close()
		store = st
		if *recover_ {
			rep, err := st.Recover()
			if err != nil {
				return err
			}
			if rep.DroppedBytes > 0 {
				logger.Printf("recovery dropped %d bytes of torn tail at offset %d",
					rep.DroppedBytes, rep.TruncatedAt)
			}
		}
		logger.Printf("store %s opened with %d existing records", st.Path(), st.Count())
	} else {
		sst, err = shard.OpenStores(*storePath, *shards, opts)
		if err != nil {
			return err
		}
		defer sst.Close()
		store = sst
		if *recover_ {
			reps, err := sst.Recover()
			if err != nil {
				return err
			}
			for i, rep := range reps {
				if rep.DroppedBytes > 0 {
					logger.Printf("shard %d recovery dropped %d bytes of torn tail at offset %d",
						i, rep.DroppedBytes, rep.TruncatedAt)
				}
			}
		}
		logger.Printf("sharded store %s opened: %d shards, %d existing records",
			sst.Path(), sst.Shards(), sst.Count())
	}

	var exporter *obs.Exporter
	if *export != "" {
		exporter, err = obs.NewExporter(obs.ExportConfig{
			Path:     *export,
			Registry: obs.Default,
			Service:  "fpserver",
		})
		if err != nil {
			return err
		}
		defer exporter.Close()
		logger.Printf("telemetry export to %s", *export)
	}

	var eng *streaming.Engine
	var analyticsPlane collectserver.Analytics
	if *analytics || *watchFlag {
		// Same registry as the server so engine gauges land on /metrics;
		// same exporter so apply spans land in the trace file.
		cfg := streaming.Config{Registry: obs.Default}
		if exporter != nil {
			cfg.Spans = exporter
		}
		recs, err := store.All()
		if err != nil {
			return err
		}
		start := time.Now()
		if *shards == 1 {
			eng = streaming.New(cfg)
			defer eng.Close()
			eng.Bootstrap(recs)
			analyticsPlane = eng
		} else {
			rt, err := shard.NewRouter(shard.Config{Shards: *shards, Engine: cfg})
			if err != nil {
				return err
			}
			defer rt.Close()
			rt.Bootstrap(recs) // recs arrive seq-ordered from Stores.All
			analyticsPlane = rt
		}
		logger.Printf("analytics plane (%d shard(s)) rebuilt from %d records in %v",
			*shards, len(recs), time.Since(start).Round(time.Millisecond))
	}

	var ts *series.Store
	if *seriesFlag {
		ts = series.New(series.Config{
			Registry: obs.Default,
			Interval: *seriesTick,
			Capacity: *seriesCap,
		})
		ts.Start()
		defer ts.Close()
		logger.Printf("series store ticking every %v, %d points per series", *seriesTick, *seriesCap)
	}

	var verifier collectserver.Verifier
	if *verifyFlag {
		vcfg := verify.Config{Threshold: *verifyThr, Registry: obs.Default}
		if *verifyCal != "" {
			cal, err := loadCalibration(*verifyCal)
			if err != nil {
				return fmt.Errorf("-verify-calibration: %w", err)
			}
			vcfg.Calibration = cal
			logger.Printf("verify calibration loaded from %s (EER %.4f at threshold %.2f over %d+%d trials)",
				*verifyCal, cal.EER, cal.EERThreshold, cal.GenuineTrials, cal.ImpostorTrials)
		}
		recs, err := store.All()
		if err != nil {
			return err
		}
		start := time.Now()
		if *shards == 1 {
			e := verify.New(vcfg)
			e.Enroll(recs)
			verifier = e
		} else {
			vs, err := shard.NewVerifiers(*shards, vcfg)
			if err != nil {
				return err
			}
			vs.Enroll(recs)
			verifier = vs
		}
		st := verifier.Stats()
		logger.Printf("verify plane (%d shard(s)) enrolled %d users from %d records in %v, threshold %.2f",
			*shards, st.Users, len(recs), time.Since(start).Round(time.Millisecond), st.Threshold)
	} else if *verifyThr != 0 || *verifyCal != "" {
		return errors.New("-verify-threshold/-verify-calibration require -verify")
	}

	var mon *watch.Monitor
	if *watchFlag {
		mon, err = watch.New(watch.Config{
			Engine:   eng,
			Registry: obs.Default,
			Logger:   obs.NewLogger(obs.LogConfig{W: errw, Component: "watch"}),
		})
		if err != nil {
			return err
		}
		logger.Printf("watch monitor running %d rules", len(watch.DefaultRules()))
	}

	var capt *diag.Capturer
	if *diagFlag {
		dcfg := diag.CaptureConfig{
			Dir:        *diagDir,
			CPUSeconds: *diagCPU,
			Cooldown:   *diagCool,
			Registry:   obs.Default,
			Series:     ts,
			Sampler:    sampler,
			Logger:     obs.NewLogger(obs.LogConfig{W: errw, Component: "diag"}),
		}
		if mon != nil {
			dcfg.Alerts = mon.Snapshot
			dcfg.RuleLookup = mon.RuleByName
		}
		capt, err = diag.NewCapturer(dcfg)
		if err != nil {
			return err
		}
		defer capt.Flush() // let an in-flight alert capture finish writing
		if mon != nil {
			mon.SetTransitionHook(capt.OnTransition)
		}
		logger.Printf("diag bundles to %s (cooldown %v, cpu %ds)", *diagDir, *diagCool, *diagCPU)
	} else if *diagCPU != 0 {
		return errors.New("-diag-cpu-seconds requires -diag")
	}

	srvCfg := collectserver.Config{
		Store:             store,
		AdminToken:        *adminToken,
		MaxBatch:          *maxBatch,
		Logger:            logger,
		SessionRatePerMin: *sessRate,
		MaxInFlight:       *maxInFly,
		SubmitRatePerSec:  *subRate,
		EnableDebug:       *debug,
		Analytics:         analyticsPlane, // nil interface when analytics is off (typed-nil-safe)
		Watch:             mon,
		Series:            ts,
		Verifier:          verifier, // nil interface without -verify (typed-nil-safe)
		Diag:              capt,
		Runtime:           sampler,
	}
	if exporter != nil {
		srvCfg.Trace = exporter
	}
	srv, err := collectserver.New(srvCfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}()

	logger.Printf("listening on %s", ln.Addr())
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("stopped; %d records stored", store.Count())
	return nil
}
