// Command fpserver runs the fingerprint-collection backend: the consent-
// gated HTTP API participants submit Web Audio fingerprints to, persisting
// them in an append-only NDJSON store.
//
// Usage:
//
//	fpserver -addr :8080 -store fingerprints.ndjson -admin-token secret
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/collectserver"
	"repro/internal/storage"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		storePath  = flag.String("store", "fingerprints.ndjson", "NDJSON store path")
		adminToken = flag.String("admin-token", "", "bearer token authorizing /api/v1/export (empty disables export)")
		syncWrites = flag.Bool("sync", false, "fsync after every accepted batch")
		maxBatch   = flag.Int("max-batch", 256, "max records per submission")
		sessRate   = flag.Float64("session-rate", 600, "session creations per client IP per minute")
		debug      = flag.Bool("debug", false, "mount /debug/pprof and /debug/vars (operational detail — keep off on public listeners)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "fpserver ", log.LstdFlags|log.Lmsgprefix)

	st, err := storage.Open(*storePath, storage.Options{SyncEveryAppend: *syncWrites})
	if err != nil {
		logger.Fatalf("open store: %v", err)
	}
	defer st.Close()
	logger.Printf("store %s opened with %d existing records", st.Path(), st.Count())

	srv, err := collectserver.New(collectserver.Config{
		Store:             st,
		AdminToken:        *adminToken,
		MaxBatch:          *maxBatch,
		Logger:            logger,
		SessionRatePerMin: *sessRate,
		EnableDebug:       *debug,
	})
	if err != nil {
		logger.Fatalf("configure server: %v", err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}()

	logger.Printf("listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("serve: %v", err)
	}
	logger.Printf("stopped; %d records stored", st.Count())
}
