package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// postEnvelope POSTs req and returns the HTTP status plus the raw v1
// envelope halves, without failing on error statuses — verify tests assert
// on both.
func postEnvelope(t *testing.T, url string, req any) (status int, data json.RawMessage, errCode string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer r.Body.Close()
	var env struct {
		Data  json.RawMessage `json:"data"`
		Error *struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	if env.Error != nil {
		errCode = env.Error.Code
	}
	return r.StatusCode, env.Data, errCode
}

// enrollUsers drives the real consent/session/submit API to store a fixed
// history: each user gets a stable per-user DC hash plus an FFT hash shared
// across the whole population (a fingerprint collision, like a default
// audio stack).
func enrollUsers(t *testing.T, base string, users []string) {
	t.Helper()
	for i, uid := range users {
		var sess struct {
			Token string `json:"token"`
		}
		postJSON(t, base+"/api/v1/sessions", map[string]any{
			"user_id": uid, "user_agent": "smoke", "consent": true,
		}, &sess)
		postJSON(t, base+"/api/v1/fingerprints", map[string]any{
			"token": sess.Token,
			"records": []map[string]any{
				{"vector": "DC", "iteration": 0, "hash": fmt.Sprintf("dc%02d", i)},
				{"vector": "FFT", "iteration": 0, "hash": "feedc0de"},
			},
		}, nil)
	}
}

// verifyProbes runs a fixed probe set against a running server and returns
// each probe's outcome as a comparable string (status + decision payload or
// error code).
func verifyProbes(t *testing.T, base string, users []string) map[string]string {
	t.Helper()
	out := map[string]string{}
	probe := func(key, claimed string, samples []map[string]any) {
		status, data, code := postEnvelope(t, base+"/api/v1/verify", map[string]any{
			"user_id": claimed, "samples": samples,
		})
		out[key] = fmt.Sprintf("%d %s %s", status, code, data)
	}
	for i, uid := range users {
		// Genuine: the user's own stored hashes.
		probe("genuine/"+uid, uid, []map[string]any{
			{"vector": "DC", "hash": fmt.Sprintf("dc%02d", i)},
			{"vector": "FFT", "hash": "feedc0de"},
		})
		// Impostor: the next user's DC hash plus the shared FFT hash — a
		// partial collision that must score identically on every topology.
		probe("impostor/"+uid, uid, []map[string]any{
			{"vector": "DC", "hash": fmt.Sprintf("dc%02d", (i+1)%len(users))},
			{"vector": "FFT", "hash": "feedc0de"},
		})
	}
	probe("unknown", "nobody", []map[string]any{{"vector": "DC", "hash": "dc00"}})
	return out
}

// TestRunVerifySmoke boots `fpserver -verify`, enrolls history through the
// real submission API, and checks one accept, one reject, and the stable
// error codes — the ci.yml smoke in-process.
func TestRunVerifySmoke(t *testing.T) {
	store := filepath.Join(t.TempDir(), "fp.ndjson")
	base, logs, cancel, done := startServer(t, store, "-verify")
	users := []string{"alice", "bob"}
	enrollUsers(t, base, users)

	status, data, _ := postEnvelope(t, base+"/api/v1/verify", map[string]any{
		"user_id": "alice",
		"samples": []map[string]any{{"vector": "DC", "hash": "dc00"}, {"vector": "FFT", "hash": "feedc0de"}},
	})
	if status != http.StatusOK || !strings.Contains(string(data), `"accept":true`) {
		t.Errorf("genuine verify = %d %s", status, data)
	}
	status, data, _ = postEnvelope(t, base+"/api/v1/verify", map[string]any{
		"user_id": "alice",
		"samples": []map[string]any{{"vector": "DC", "hash": "9999"}, {"vector": "FFT", "hash": "8888"}},
	})
	if status != http.StatusOK || !strings.Contains(string(data), `"accept":false`) {
		t.Errorf("impostor verify = %d %s", status, data)
	}
	status, _, code := postEnvelope(t, base+"/api/v1/verify", map[string]any{
		"user_id": "nobody", "samples": []map[string]any{{"vector": "DC", "hash": "dc00"}},
	})
	if status != http.StatusNotFound || code != "unknown_user" {
		t.Errorf("unknown user = %d %q", status, code)
	}
	status, _, code = postEnvelope(t, base+"/api/v1/verify", map[string]any{
		"user_id": "alice", "samples": []map[string]any{},
	})
	if status != http.StatusBadRequest || code != "bad_request" {
		t.Errorf("empty samples = %d %q", status, code)
	}

	// The analytics route reflects the decisions.
	resp, err := http.Get(base + "/api/v1/analytics/verify")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		!strings.Contains(body.String(), `"accepted":1`) ||
		!strings.Contains(body.String(), `"rejected":1`) {
		t.Errorf("analytics/verify = %d %s", resp.StatusCode, body.String())
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}
	if !strings.Contains(logs.String(), "verify plane (1 shard(s))") {
		t.Errorf("verify bootstrap log missing:\n%s", logs.String())
	}

	// Restart over the same store: the history must bootstrap from disk and
	// keep answering the same accept.
	base, logs, cancel, done = startServer(t, store, "-verify")
	defer cancel()
	if !strings.Contains(logs.String(), "enrolled 2 users from 4 records") {
		t.Errorf("restart bootstrap log missing:\n%s", logs.String())
	}
	status, data, _ = postEnvelope(t, base+"/api/v1/verify", map[string]any{
		"user_id": "alice",
		"samples": []map[string]any{{"vector": "DC", "hash": "dc00"}, {"vector": "FFT", "hash": "feedc0de"}},
	})
	if status != http.StatusOK || !strings.Contains(string(data), `"accept":true`) {
		t.Errorf("restarted genuine verify = %d %s", status, data)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("restarted run returned %v\n%s", err, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("restarted server never shut down")
	}
}

// TestRunVerifyShardedDifferential: the binary-level acceptance gate — the
// same enrolled history answers byte-identical verification envelopes with
// -shards 1 and -shards 3.
func TestRunVerifyShardedDifferential(t *testing.T) {
	users := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	results := map[string]map[string]string{}
	for _, shards := range []string{"1", "3"} {
		store := filepath.Join(t.TempDir(), "fp"+shards+".ndjson")
		base, _, cancel, done := startServer(t, store, "-shards", shards, "-verify")
		enrollUsers(t, base, users)
		results[shards] = verifyProbes(t, base, users)
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("-shards %s run returned %v", shards, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("server never shut down")
		}
	}
	for key, want := range results["1"] {
		if got := results["3"][key]; got != want {
			t.Errorf("probe %s diverges:\n -shards 1: %s\n -shards 3: %s", key, want, got)
		}
	}
}

// TestRunVerifyCalibrationFlag: a sweep calibration file supplies the
// engine's threshold and is served back on the analytics route.
func TestRunVerifyCalibrationFlag(t *testing.T) {
	cal := filepath.Join(t.TempDir(), "cal.json")
	if err := os.WriteFile(cal, []byte(`{"calibration":{
		"points":[{"threshold":0,"far":1,"frr":0},{"threshold":0.6,"far":0.1,"frr":0.1}],
		"eer":0.1,"eer_threshold":0.6,"genuine_trials":10,"impostor_trials":10},
		"users":5,"epochs":4,"enroll_epochs":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(t.TempDir(), "fp.ndjson")
	base, logs, cancel, done := startServer(t, store, "-verify", "-verify-calibration", cal)
	resp, err := http.Get(base + "/api/v1/analytics/verify")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(body.String(), `"threshold":0.6`) ||
		!strings.Contains(body.String(), `"eer":0.1`) {
		t.Errorf("calibrated analytics/verify = %s", body.String())
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v\n%s", err, logs.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}

	// The calibration flags demand -verify.
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-verify-threshold", "0.5"}, &buf); err == nil {
		t.Error("-verify-threshold without -verify accepted")
	}
}
