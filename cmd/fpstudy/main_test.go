package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke runs a miniature end-to-end study — simulate, analyze,
// persist, checkpoint — entirely in-process.
func TestRunSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "main.ndjson")
	ckpt := filepath.Join(dir, "ckpt.ndjson")
	var stdout, logs bytes.Buffer
	err := run(context.Background(), []string{
		"-users", "12",
		"-iterations", "2",
		"-followup-users", "0",
		"-evolution-users", "0",
		"-ablation=false",
		"-out", out,
		"-checkpoint", ckpt,
	}, &stdout, &logs)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, logs.String())
	}
	for _, want := range []string{"Table 1", "Table 2"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Errorf("dataset not written: %v", err)
	}
	if fi, err := os.Stat(ckpt); err != nil || fi.Size() == 0 {
		t.Errorf("checkpoint not written: %v", err)
	}
	if !strings.Contains(logs.String(), "main study complete") {
		t.Errorf("log missing completion line:\n%s", logs.String())
	}
}

// TestRunFlagError: an unknown flag is a clean error, not an os.Exit.
func TestRunFlagError(t *testing.T) {
	var stdout, logs bytes.Buffer
	if err := run(context.Background(), []string{"-nope"}, &stdout, &logs); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunRejectsNonPositivePopulation: study.Config validation surfaces as
// an error instead of a crash.
func TestRunRejectsNonPositivePopulation(t *testing.T) {
	var stdout, logs bytes.Buffer
	err := run(context.Background(), []string{"-users", "0"}, &stdout, &logs)
	if err == nil {
		t.Fatal("zero users accepted")
	}
}
