package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke runs a miniature end-to-end study — simulate, analyze,
// persist, checkpoint — entirely in-process.
func TestRunSmoke(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "main.ndjson")
	ckpt := filepath.Join(dir, "ckpt.ndjson")
	var stdout, logs bytes.Buffer
	err := run(context.Background(), []string{
		"-users", "12",
		"-iterations", "2",
		"-followup-users", "0",
		"-evolution-users", "0",
		"-ablation=false",
		"-out", out,
		"-checkpoint", ckpt,
	}, &stdout, &logs)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, logs.String())
	}
	for _, want := range []string{"Table 1", "Table 2"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Errorf("dataset not written: %v", err)
	}
	if fi, err := os.Stat(ckpt); err != nil || fi.Size() == 0 {
		t.Errorf("checkpoint not written: %v", err)
	}
	if !strings.Contains(logs.String(), "main study complete") {
		t.Errorf("log missing completion line:\n%s", logs.String())
	}
}

// TestRunFlagError: an unknown flag is a clean error, not an os.Exit.
func TestRunFlagError(t *testing.T) {
	var stdout, logs bytes.Buffer
	if err := run(context.Background(), []string{"-nope"}, &stdout, &logs); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunRejectsNonPositivePopulation: study.Config validation surfaces as
// an error instead of a crash.
func TestRunRejectsNonPositivePopulation(t *testing.T) {
	var stdout, logs bytes.Buffer
	err := run(context.Background(), []string{"-users", "0"}, &stdout, &logs)
	if err == nil {
		t.Fatal("zero users accepted")
	}
}

// TestRunVerifySweep runs the -verify-sweep mode at miniature scale and
// checks the printed operating curve plus the persisted calibration JSON.
func TestRunVerifySweep(t *testing.T) {
	out := filepath.Join(t.TempDir(), "cal.json")
	var stdout, logs bytes.Buffer
	err := run(context.Background(), []string{
		"-verify-sweep",
		"-users", "40",
		"-verify-epochs", "4",
		"-verify-samples", "1",
		"-verify-enroll", "2",
		"-verify-out", out,
	}, &stdout, &logs)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, logs.String())
	}
	for _, want := range []string{"Verification threshold sweep", "FAR", "FRR", "EER "} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("output missing %q:\n%s", want, stdout.String())
		}
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("calibration not written: %v", err)
	}
	var res struct {
		Calibration struct {
			Points       []struct{ Threshold float64 }
			EERThreshold float64 `json:"eer_threshold"`
		} `json:"calibration"`
		Users int `json:"users"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("calibration JSON: %v", err)
	}
	if res.Users != 40 || len(res.Calibration.Points) != 101 {
		t.Errorf("calibration = users %d, %d points", res.Users, len(res.Calibration.Points))
	}
	if !strings.Contains(logs.String(), "calibration written to") {
		t.Errorf("log missing calibration line:\n%s", logs.String())
	}
}
