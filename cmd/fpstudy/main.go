// Command fpstudy simulates the paper's two measurement campaigns end to
// end — the 2093-user main study and the 528-user Math-JS follow-up — and
// regenerates every table and figure of the evaluation. Optionally persists
// the raw datasets as NDJSON for later re-analysis with fpanalyze.
//
// Usage:
//
//	fpstudy                          # full-scale run, all experiments
//	fpstudy -users 500 -iterations 10 -out main.ndjson
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/storage"
	"repro/internal/study"
)

func main() {
	var (
		users      = flag.Int("users", 2093, "main-study participants")
		fuUsers    = flag.Int("followup-users", 528, "follow-up participants (0 skips the follow-up)")
		iterations = flag.Int("iterations", 30, "iterations per vector")
		seed       = flag.Int64("seed", core.MainStudySeed, "main-study seed")
		fuSeed     = flag.Int64("followup-seed", core.FollowUpSeed, "follow-up seed")
		out        = flag.String("out", "", "write the main dataset as NDJSON to this path")
		fuOut      = flag.String("followup-out", "", "write the follow-up dataset as NDJSON to this path")
		ablation   = flag.Bool("ablation", true, "render the graph-vs-naive collation ablation")
		evolution  = flag.Int("evolution-users", 800, "users for the §6 era comparison (0 skips it)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "fpstudy ", log.LstdFlags|log.Lmsgprefix)

	start := time.Now()
	logger.Printf("simulating main study: %d users × %d iterations × 7 vectors", *users, *iterations)
	main, err := study.Run(study.Config{Seed: *seed, Users: *users, Iterations: *iterations})
	if err != nil {
		logger.Fatalf("main study: %v", err)
	}
	logger.Printf("main study complete in %s", time.Since(start).Round(time.Millisecond))

	var followUp *study.Dataset
	if *fuUsers > 0 {
		followUp, err = study.Run(study.Config{
			Seed: *fuSeed, Users: *fuUsers, Iterations: *iterations,
			Mix: population.FollowUpMix(), IDPrefix: "f",
		})
		if err != nil {
			logger.Fatalf("follow-up study: %v", err)
		}
	}

	for path, ds := range map[string]*study.Dataset{*out: main, *fuOut: followUp} {
		if path == "" || ds == nil {
			continue
		}
		if err := writeDataset(path, ds); err != nil {
			logger.Fatalf("write %s: %v", path, err)
		}
		logger.Printf("dataset written to %s", path)
	}

	if err := core.WriteDemographics(os.Stdout, main); err != nil {
		logger.Fatalf("render demographics: %v", err)
	}
	fmt.Println()
	if err := core.WriteAllExperiments(os.Stdout, main, followUp); err != nil {
		logger.Fatalf("render experiments: %v", err)
	}
	if *ablation {
		if err := core.WriteAblation(os.Stdout, main, 3); err != nil {
			logger.Fatalf("render ablation: %v", err)
		}
		fmt.Println()
	}
	if err := core.WriteAnonymity(os.Stdout, main); err != nil {
		logger.Fatalf("render anonymity: %v", err)
	}
	fmt.Println()
	if *evolution > 0 {
		if err := core.WriteEvolution(os.Stdout, *seed, *evolution, min(*iterations, 10)); err != nil {
			logger.Fatalf("render evolution: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "total runtime: %s\n", time.Since(start).Round(time.Millisecond))
}

func writeDataset(path string, ds *study.Dataset) error {
	st, err := storage.Open(path, storage.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	return st.Append(ds.ToRecords(time.Now().UTC())...)
}
