// Command fpstudy simulates the paper's two measurement campaigns end to
// end — the 2093-user main study and the 528-user Math-JS follow-up — and
// regenerates every table and figure of the evaluation. Optionally persists
// the raw datasets as NDJSON for later re-analysis with fpanalyze.
//
// Usage:
//
//	fpstudy                          # full-scale run, all experiments
//	fpstudy -users 500 -iterations 10 -out main.ndjson
//	fpstudy -progress -trace-json trace.json   # stage-timing telemetry
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/storage"
	"repro/internal/study"
	"repro/internal/vectors"
	"repro/internal/verify"
	"repro/internal/webaudio"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.New(os.Stderr, "fpstudy ", log.LstdFlags|log.Lmsgprefix).Fatal(err)
	}
}

// run executes the whole simulation-and-analysis pipeline with flags from
// args, tables on outw and logs on errw — in-process testable.
func run(runCtx context.Context, args []string, outw, errw io.Writer) error {
	fs := flag.NewFlagSet("fpstudy", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		users      = fs.Int("users", 2093, "main-study participants")
		fuUsers    = fs.Int("followup-users", 528, "follow-up participants (0 skips the follow-up)")
		iterations = fs.Int("iterations", 30, "iterations per vector")
		seed       = fs.Int64("seed", core.MainStudySeed, "main-study seed")
		fuSeed     = fs.Int64("followup-seed", core.FollowUpSeed, "follow-up seed")
		out        = fs.String("out", "", "write the main dataset as NDJSON to this path")
		fuOut      = fs.String("followup-out", "", "write the follow-up dataset as NDJSON to this path")
		checkpoint = fs.String("checkpoint", "", "record rendering progress to this file and resume an interrupted run from it")
		ablation   = fs.Bool("ablation", true, "render the graph-vs-naive collation ablation")
		evolution  = fs.Int("evolution-users", 800, "users for the §6 era comparison (0 skips it)")
		traceJSON  = fs.String("trace-json", "", "write the pipeline span tree as JSON to this path")
		export     = fs.String("export", "", "write telemetry (pipeline spans + periodic metrics snapshots) to this NDJSON file")
		traceText  = fs.Bool("trace", false, "print the pipeline span tree to stderr on exit")
		progress   = fs.Bool("progress", false, "report rendering progress to stderr")
		pprofAddr  = fs.String("pprof", "", "serve /debug/pprof and /metrics on this address (e.g. localhost:6060)")
		engine     = fs.String("render-engine", "block", "DSP engine: block (compiled render programs) or reference (per-sample); outputs are bit-identical")
		shadow     = fs.Int("shadow", 0, "audit 1 in N cache-miss renders by re-rendering through both engines in lockstep (0 disables)")
		shadowOut  = fs.String("shadow-out", "", "write the shadow auditor's flight-record summary as JSON to this path (with -shadow)")
		kernelTime = fs.Bool("kernel-timing", false, "record per-kernel block timing histograms with trace exemplars (adds clock overhead per op)")
		vSweep     = fs.Bool("verify-sweep", false, "run the offline verification FAR/FRR/EER sweep over the evolved population instead of the measurement campaigns (uses -users and -seed)")
		vEpochs    = fs.Int("verify-epochs", 6, "evolved-population epochs for the sweep (with -verify-sweep)")
		vSamples   = fs.Int("verify-samples", 2, "samples per user per vector per epoch (with -verify-sweep)")
		vEnroll    = fs.Int("verify-enroll", 3, "leading epochs enrolled as stored history; the rest supply trials (with -verify-sweep)")
		vOut       = fs.String("verify-out", "", "write the sweep result as JSON — loadable by 'fpserver -verify-calibration' (with -verify-sweep)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(errw, "fpstudy ", log.LstdFlags|log.Lmsgprefix)

	switch *engine {
	case "block":
		webaudio.SetDefaultEngine(webaudio.EngineBlock)
	case "reference":
		webaudio.SetDefaultEngine(webaudio.EngineReference)
	default:
		return fmt.Errorf("unknown -render-engine %q (want block or reference)", *engine)
	}

	if *pprofAddr != "" {
		go func() {
			logger.Printf("debug endpoints on http://%s/debug/pprof", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, obs.DebugMux(obs.Default)); err != nil {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}
	if *pprofAddr != "" || *export != "" {
		// runtime_* gauges for whoever is watching the telemetry.
		sampler := diag.NewSampler(diag.SamplerConfig{Registry: obs.Default})
		sampler.Start()
		defer sampler.Close()
	}

	var exporter *obs.Exporter
	if *export != "" {
		var err error
		exporter, err = obs.NewExporter(obs.ExportConfig{
			Path:     *export,
			Registry: obs.Default,
			Service:  "fpstudy",
		})
		if err != nil {
			return err
		}
		defer exporter.Close()
		logger.Printf("telemetry export to %s", *export)
	}

	root := obs.NewTrace("fpstudy")
	ctx := obs.ContextWithSpan(runCtx, root)

	if *kernelTime {
		webaudio.SetKernelTiming(true)
		defer webaudio.SetKernelTiming(false)
		// Kernel-timing exemplars carry the run's trace id, so a slow kernel
		// seen on a scrape links back to this campaign's span tree.
		webaudio.SetRenderTraceID(root.TraceID())
		defer webaudio.SetRenderTraceID("")
	}

	// One render cache across both campaigns: platform classes shared
	// between the main and follow-up mixes render once for the whole run.
	renderCache := vectors.NewCache()

	if *vSweep {
		return runVerifySweep(outw, logger, renderCache, verifySweepOpts{
			seed: *seed, users: *users, epochs: *vEpochs,
			samples: *vSamples, enroll: *vEnroll, out: *vOut,
		})
	}

	var auditor *vectors.ShadowAuditor
	if *shadow > 0 {
		auditor = vectors.NewShadowAuditor(vectors.ShadowConfig{Every: *shadow})
		renderCache.SetShadow(auditor)
		logger.Printf("shadow audit: lockstep-comparing 1 in %d cache-miss renders", *shadow)
	}

	start := time.Now()
	logger.Printf("simulating main study: %d users × %d iterations × 7 vectors", *users, *iterations)
	mainDS, err := study.RunContext(ctx, study.Config{
		Seed: *seed, Users: *users, Iterations: *iterations,
		Progress:       progressFunc(*progress, logger, "main study", renderCache),
		CheckpointPath: *checkpoint,
		RenderCache:    renderCache,
	})
	if err != nil {
		return fmt.Errorf("main study: %w", err)
	}
	logger.Printf("main study complete in %s", time.Since(start).Round(time.Millisecond))

	var followUp *study.Dataset
	if *fuUsers > 0 {
		followUp, err = study.RunContext(ctx, study.Config{
			Seed: *fuSeed, Users: *fuUsers, Iterations: *iterations,
			Mix: population.FollowUpMix(), IDPrefix: "f",
			Progress:    progressFunc(*progress, logger, "follow-up", renderCache),
			RenderCache: renderCache,
		})
		if err != nil {
			return fmt.Errorf("follow-up study: %w", err)
		}
	}

	for path, ds := range map[string]*study.Dataset{*out: mainDS, *fuOut: followUp} {
		if path == "" || ds == nil {
			continue
		}
		if err := writeDataset(path, ds); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		logger.Printf("dataset written to %s", path)
	}

	if err := core.WriteDemographicsContext(ctx, outw, mainDS); err != nil {
		return fmt.Errorf("render demographics: %w", err)
	}
	fmt.Fprintln(outw)
	if err := core.WriteAllExperimentsContext(ctx, outw, mainDS, followUp); err != nil {
		return fmt.Errorf("render experiments: %w", err)
	}
	if *ablation {
		if err := core.WriteAblationContext(ctx, outw, mainDS, 3); err != nil {
			return fmt.Errorf("render ablation: %w", err)
		}
		fmt.Fprintln(outw)
	}
	if err := core.WriteAnonymityContext(ctx, outw, mainDS); err != nil {
		return fmt.Errorf("render anonymity: %w", err)
	}
	fmt.Fprintln(outw)
	if *evolution > 0 {
		_, sp := obs.Start(ctx, "analyze/evolution")
		err := core.WriteEvolution(outw, *seed, *evolution, min(*iterations, 10))
		sp.End()
		if err != nil {
			return fmt.Errorf("render evolution: %w", err)
		}
	}
	root.End()
	if exporter != nil {
		exporter.ExportSpan(root)
	}
	if auditor != nil {
		sum := auditor.Summary()
		logger.Printf("shadow audit: %d checks, %d divergences, %d errors",
			sum.Checks, sum.Divergences, sum.Errors)
		if sum.Divergences > 0 {
			logger.Printf("WARNING: engine divergence detected — fingerprints from this run are suspect; see -shadow-out")
		}
		if *shadowOut != "" {
			if err := writeShadowSummary(*shadowOut, sum); err != nil {
				return fmt.Errorf("shadow-out: %w", err)
			}
			logger.Printf("shadow audit summary written to %s", *shadowOut)
		}
	}
	writeTrace(logger, root, *traceJSON, *traceText)
	fmt.Fprintf(errw, "total runtime: %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// verifySweepOpts carries the -verify-sweep knobs.
type verifySweepOpts struct {
	seed                           int64
	users, epochs, samples, enroll int
	out                            string
}

// runVerifySweep is the -verify-sweep mode: build the evolved population,
// sweep the verification threshold over genuine and impostor trials, print
// the FAR/FRR operating curve with its equal-error-rate point, and
// optionally persist the calibration for `fpserver -verify-calibration`.
func runVerifySweep(outw io.Writer, logger *log.Logger, cache *vectors.Cache, o verifySweepOpts) error {
	start := time.Now()
	logger.Printf("verify sweep: %d users × %d epochs × %d samples × %d vectors, enrolling %d epochs",
		o.users, o.epochs, o.samples, len(vectors.All), o.enroll)
	res, err := verify.Sweep(verify.SweepConfig{
		Evolved: study.EvolvedConfig{
			LongitudinalConfig: study.LongitudinalConfig{
				Seed: o.seed, Users: o.users, Epochs: o.epochs, SamplesPerEpoch: o.samples,
			},
			Vectors:     vectors.All,
			Churn:       population.DefaultChurn(),
			RenderCache: cache,
			Parallelism: 8,
		},
		EnrollEpochs: o.enroll,
	})
	if err != nil {
		return fmt.Errorf("verify sweep: %w", err)
	}
	cal := res.Calibration

	fmt.Fprintf(outw, "== Verification threshold sweep (evolved population) ==\n")
	fmt.Fprintf(outw, "users %d · epochs %d (enroll %d) · browser upgrades %d · OS upgrades %d · fingerprint shifts %d\n",
		res.Users, res.Epochs, res.EnrollEpochs, res.Upgrades, res.OSUpgrades, res.FingerprintShifts)
	fmt.Fprintf(outw, "trials: %d genuine, %d impostor\n\n", cal.GenuineTrials, cal.ImpostorTrials)
	fmt.Fprintf(outw, "%10s %8s %8s\n", "threshold", "FAR", "FRR")
	for _, p := range cal.Points {
		// The full grid is in -verify-out; print every 5th row.
		if int(p.Threshold*100+0.5)%5 == 0 {
			fmt.Fprintf(outw, "%10.2f %8.4f %8.4f\n", p.Threshold, p.FAR, p.FRR)
		}
	}
	fmt.Fprintf(outw, "\nEER %.4f at threshold %.2f\n", cal.EER, cal.EERThreshold)

	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		logger.Printf("calibration written to %s", o.out)
	}
	logger.Printf("verify sweep complete in %s", time.Since(start).Round(time.Millisecond))
	return nil
}

// progressFunc returns a goroutine-safe study.Config.Progress callback that
// logs at most ~20 updates per run (each with the render cache's state), or
// nil when reporting is off.
func progressFunc(enabled bool, logger *log.Logger, stage string, cache *vectors.Cache) func(done, total int) {
	if !enabled {
		return nil
	}
	return func(done, total int) {
		step := total / 20
		if step == 0 {
			step = 1
		}
		if done%step == 0 || done == total {
			st := cache.Stats()
			logger.Printf("%s: rendered %d/%d participants (render cache: %d entries, %.1f%% hits)",
				stage, done, total, st.Entries, 100*st.HitRatio())
		}
	}
}

// writeTrace exports the finished span tree as requested by the flags.
func writeTrace(logger *log.Logger, root *obs.Span, jsonPath string, text bool) {
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			logger.Printf("trace-json: %v", err)
		} else {
			if err := root.WriteJSON(f); err != nil {
				logger.Printf("trace-json: %v", err)
			}
			f.Close()
			logger.Printf("trace written to %s", jsonPath)
		}
	}
	if text {
		if err := root.WriteText(os.Stderr); err != nil {
			logger.Printf("trace: %v", err)
		}
	}
}

// writeShadowSummary persists the flight-record dump for postmortems.
func writeShadowSummary(path string, sum vectors.ShadowSummary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeDataset(path string, ds *study.Dataset) error {
	st, err := storage.Open(path, storage.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	return st.Append(ds.ToRecords(time.Now().UTC())...)
}
