package collate

import "sort"

// Graph is the bipartite user↔fingerprint collation graph. Observations are
// added incrementally, as they would stream into a fingerprinter's backend;
// connectivity is maintained by a disjoint-set forest, so cluster queries
// are effectively O(α(n)).
type Graph struct {
	uf      *UnionFind
	users   map[string]int // user id → element
	fps     map[string]int // fingerprint hash → element
	userIDs []string       // insertion-ordered user ids
}

// NewGraph returns an empty collation graph.
func NewGraph() *Graph {
	return &Graph{
		uf:    NewUnionFind(0),
		users: make(map[string]int),
		fps:   make(map[string]int),
	}
}

// NumUsers returns the number of distinct users observed.
func (g *Graph) NumUsers() int { return len(g.users) }

// NumFingerprints returns the number of distinct elementary fingerprints.
func (g *Graph) NumFingerprints() int { return len(g.fps) }

// AddObservation records that user emitted the elementary fingerprint hash,
// creating nodes as needed and merging components. It reports whether the
// edge changed connectivity (i.e. merged two previously distinct collated
// fingerprints — the "new collisions can pop up" dynamic of §3.2).
func (g *Graph) AddObservation(user, hash string) bool {
	un, ok := g.users[user]
	if !ok {
		un = g.uf.Add()
		g.users[user] = un
		g.userIDs = append(g.userIDs, user)
	}
	fn, ok := g.fps[hash]
	if !ok {
		fn = g.uf.Add()
		g.fps[hash] = fn
	}
	return g.uf.Union(un, fn)
}

// HasUser reports whether the user has been observed.
func (g *Graph) HasUser(user string) bool {
	_, ok := g.users[user]
	return ok
}

// ClusterOf returns a canonical identifier of the user's collated
// fingerprint (its connected component). The identifier is stable only for
// the graph's current state. ok is false for unknown users.
func (g *Graph) ClusterOf(user string) (id int, ok bool) {
	n, ok := g.users[user]
	if !ok {
		return 0, false
	}
	return g.uf.Find(n), true
}

// NumClusters returns the number of collated fingerprints: connected
// components containing at least one user.
func (g *Graph) NumClusters() int {
	seen := make(map[int]struct{}, len(g.users))
	for _, n := range g.users {
		seen[g.uf.Find(n)] = struct{}{}
	}
	return len(seen)
}

// Clusters returns the users of each component, keyed by canonical id, each
// list sorted for determinism.
func (g *Graph) Clusters() map[int][]string {
	out := make(map[int][]string)
	for u, n := range g.users {
		root := g.uf.Find(n)
		out[root] = append(out[root], u)
	}
	for _, us := range out {
		sort.Strings(us)
	}
	return out
}

// ClusterSizes returns the user-count of every cluster, descending.
func (g *Graph) ClusterSizes() []int {
	counts := make(map[int]int)
	for _, n := range g.users {
		counts[g.uf.Find(n)]++
	}
	sizes := make([]int, 0, len(counts))
	for _, c := range counts {
		sizes = append(sizes, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// UniqueClusters returns how many clusters contain exactly one user (the
// "Unique" column of the paper's Tables 2–4).
func (g *Graph) UniqueClusters() int {
	n := 0
	for _, s := range g.ClusterSizes() {
		if s == 1 {
			n++
		}
	}
	return n
}

// Labels returns, for each user id in users, the canonical id of its
// cluster; unknown users get -1. The result is a clustering assignment
// suitable for agreement metrics.
func (g *Graph) Labels(users []string) []int {
	out := make([]int, len(users))
	for i, u := range users {
		if id, ok := g.ClusterOf(u); ok {
			out[i] = id
		} else {
			out[i] = -1
		}
	}
	return out
}

// Users returns all observed user ids in insertion order. The returned
// slice is shared; callers must not modify it.
func (g *Graph) Users() []string { return g.userIDs }

// MatchResult is the outcome of matching a returning visitor's fingerprints
// against a training graph (the §3.3 "fingerprint match score" primitive).
type MatchResult int

const (
	// MatchNone means fingerprints were submitted but none was ever seen —
	// the visitor presented evidence and it matched nothing.
	MatchNone MatchResult = iota
	// MatchUnique means all recognized fingerprints point to one cluster.
	MatchUnique
	// MatchAmbiguous means recognized fingerprints span several clusters —
	// which cannot persist: inserting them would merge those clusters.
	MatchAmbiguous
	// MatchNoEvidence means the submitted set was empty: there was nothing
	// to match. Distinct from MatchNone, where evidence existed but was
	// unrecognized — a verification layer treats the former as a malformed
	// query and the latter as a (weak) rejection signal.
	MatchNoEvidence
)

// String renders the result for logs and decision payloads.
func (r MatchResult) String() string {
	switch r {
	case MatchNone:
		return "none"
	case MatchUnique:
		return "unique"
	case MatchAmbiguous:
		return "ambiguous"
	case MatchNoEvidence:
		return "no_evidence"
	}
	return "invalid"
}

// HasFingerprint reports whether the elementary fingerprint hash has been
// observed by this graph.
func (g *Graph) HasFingerprint(hash string) bool {
	_, ok := g.fps[hash]
	return ok
}

// Match looks up a set of elementary fingerprints without inserting them
// and returns which existing cluster they identify. An empty set returns
// MatchNoEvidence; a non-empty set in which nothing is recognized returns
// MatchNone.
func (g *Graph) Match(hashes []string) (cluster int, res MatchResult) {
	if len(hashes) == 0 {
		return 0, MatchNoEvidence
	}
	found := make(map[int]struct{})
	var first int
	for _, h := range hashes {
		n, ok := g.fps[h]
		if !ok {
			continue
		}
		root := g.uf.Find(n)
		if _, dup := found[root]; !dup {
			found[root] = struct{}{}
			first = root
		}
	}
	switch len(found) {
	case 0:
		return 0, MatchNone
	case 1:
		return first, MatchUnique
	default:
		return 0, MatchAmbiguous
	}
}
