// Package collate implements the paper's graph-based fingerprint collation
// (§3.2): an undirected bipartite graph with one node per user and one node
// per elementary fingerprint, an edge whenever a user's browser emitted that
// fingerprint, and connected components as the collated fingerprints. Users
// in one component share a collated fingerprint; a component with a single
// user is a unique fingerprint.
//
// Two connectivity backends are provided, mirroring the paper's §3.2
// discussion of fingerprinter data structures: a disjoint-set forest
// (incremental-only, near-O(1) amortized — the Seidel–Sharir analysis the
// paper cites) and a fully-dynamic Holm–de Lichtenberg–Thorup structure
// supporting deletions in O(log² n) amortized (the paper's [11]).
package collate

// UnionFind is a disjoint-set forest with union by rank and path
// compression, growable by Add.
type UnionFind struct {
	parent []int
	rank   []byte
	size   []int
	sets   int
}

// NewUnionFind creates a forest with n singleton sets (elements 0..n-1).
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{
		parent: make([]int, n),
		rank:   make([]byte, n),
		size:   make([]int, n),
		sets:   n,
	}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

// Add appends a new singleton element and returns its index.
func (u *UnionFind) Add() int {
	i := len(u.parent)
	u.parent = append(u.parent, i)
	u.rank = append(u.rank, 0)
	u.size = append(u.size, 1)
	u.sets++
	return i
}

// Len returns the number of elements.
func (u *UnionFind) Len() int { return len(u.parent) }

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b and reports whether a merge happened
// (false when already joined).
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.sets--
	return true
}

// SameSet reports whether a and b share a set.
func (u *UnionFind) SameSet(a, b int) bool { return u.Find(a) == u.Find(b) }

// SizeOf returns the number of elements in x's set.
func (u *UnionFind) SizeOf(x int) int { return u.size[u.Find(x)] }
