package collate

// Euler-tour trees over randomized treaps: the balanced-forest primitive
// underneath the Holm–de Lichtenberg–Thorup dynamic-connectivity structure
// (dynconn.go). Each spanning tree is stored as its circular Euler tour,
// flattened into a treap whose in-order traversal is the tour. A tree with
// n vertices occupies 3n−2 treap nodes: one self-loop node per vertex and
// two arc nodes per tree edge.
//
// Aggregates maintained per subtree let HDT find, in O(log n), a vertex
// with level-i non-tree edges or a level-i tree edge inside a component.

type ettNode struct {
	left, right, parent *ettNode
	prio                uint64
	size                int

	u, v int // arc endpoints; u == v marks a vertex loop

	// hasAdjSelf marks a vertex loop whose vertex carries non-tree edges at
	// this forest's level; isLevelEdge marks the canonical arc of a tree
	// edge whose level equals this forest's level. The *Sub fields are the
	// subtree ORs.
	hasAdjSelf   bool
	hasAdjSub    bool
	isLevelEdge  bool
	levelEdgeSub bool
}

// pull recomputes size and aggregates from children and self.
func (x *ettNode) pull() {
	x.size = 1
	x.hasAdjSub = x.hasAdjSelf
	x.levelEdgeSub = x.isLevelEdge
	if x.left != nil {
		x.size += x.left.size
		x.hasAdjSub = x.hasAdjSub || x.left.hasAdjSub
		x.levelEdgeSub = x.levelEdgeSub || x.left.levelEdgeSub
	}
	if x.right != nil {
		x.size += x.right.size
		x.hasAdjSub = x.hasAdjSub || x.right.hasAdjSub
		x.levelEdgeSub = x.levelEdgeSub || x.right.levelEdgeSub
	}
}

// bubble re-pulls x and every ancestor.
func bubble(x *ettNode) {
	for ; x != nil; x = x.parent {
		x.pull()
	}
}

// rootOf returns the treap root of x's tour.
func rootOf(x *ettNode) *ettNode {
	for x.parent != nil {
		x = x.parent
	}
	return x
}

// indexOf returns x's 1-based position in its tour.
func indexOf(x *ettNode) int {
	idx := 1
	if x.left != nil {
		idx += x.left.size
	}
	for ; x.parent != nil; x = x.parent {
		if x == x.parent.right {
			idx += 1
			if x.parent.left != nil {
				idx += x.parent.left.size
			}
		}
	}
	return idx
}

// mergeETT concatenates tours a then b.
func mergeETT(a, b *ettNode) *ettNode {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	if a.prio >= b.prio {
		r := mergeETT(a.right, b)
		a.right = r
		if r != nil {
			r.parent = a
		}
		a.pull()
		return a
	}
	l := mergeETT(a, b.left)
	b.left = l
	if l != nil {
		l.parent = b
	}
	b.pull()
	return b
}

// splitETT splits t into its first k nodes and the rest.
func splitETT(t *ettNode, k int) (l, r *ettNode) {
	if t == nil {
		return nil, nil
	}
	leftSize := 0
	if t.left != nil {
		leftSize = t.left.size
	}
	if k <= leftSize {
		ll, lr := splitETT(t.left, k)
		t.left = lr
		if lr != nil {
			lr.parent = t
		}
		if ll != nil {
			ll.parent = nil
		}
		t.pull()
		return ll, t
	}
	rl, rr := splitETT(t.right, k-leftSize-1)
	t.right = rl
	if rl != nil {
		rl.parent = t
	}
	if rr != nil {
		rr.parent = nil
	}
	t.pull()
	return t, rr
}

// findAdjVertex returns a vertex-loop node with hasAdjSelf in t's subtree,
// or nil.
func findAdjVertex(t *ettNode) *ettNode {
	for t != nil {
		switch {
		case t.hasAdjSelf:
			return t
		case t.left != nil && t.left.hasAdjSub:
			t = t.left
		case t.right != nil && t.right.hasAdjSub:
			t = t.right
		default:
			return nil
		}
	}
	return nil
}

// findLevelEdge returns an arc node with isLevelEdge in t's subtree, or nil.
func findLevelEdge(t *ettNode) *ettNode {
	for t != nil {
		switch {
		case t.isLevelEdge:
			return t
		case t.left != nil && t.left.levelEdgeSub:
			t = t.left
		case t.right != nil && t.right.levelEdgeSub:
			t = t.right
		default:
			return nil
		}
	}
	return nil
}

// arcKey identifies a directed arc.
type arcKey struct{ u, v int }

// ettForest is one level's spanning forest.
type ettForest struct {
	loops []*ettNode
	arcs  map[arcKey]*ettNode
	seed  uint64
}

func newETTForest() *ettForest {
	return &ettForest{arcs: make(map[arcKey]*ettNode), seed: 0x9e3779b97f4a7c15}
}

// nextPrio is a SplitMix64 stream: deterministic treap priorities.
func (f *ettForest) nextPrio() uint64 {
	f.seed += 0x9e3779b97f4a7c15
	z := f.seed
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ensureVertex grows the forest to hold vertex v.
func (f *ettForest) ensureVertex(v int) {
	for len(f.loops) <= v {
		id := len(f.loops)
		n := &ettNode{prio: f.nextPrio(), u: id, v: id}
		n.pull()
		f.loops = append(f.loops, n)
	}
}

// connected reports whether u and v share a tour.
func (f *ettForest) connected(u, v int) bool {
	return rootOf(f.loops[u]) == rootOf(f.loops[v])
}

// treeSize returns the number of vertices in v's tree: a tour of n vertices
// has 3n−2 nodes.
func (f *ettForest) treeSize(v int) int {
	return (rootOf(f.loops[v]).size + 2) / 3
}

// reroot rotates v's circular tour so it begins at v's loop, returning the
// new treap root.
func (f *ettForest) reroot(v int) *ettNode {
	x := f.loops[v]
	t := rootOf(x)
	i := indexOf(x)
	a, b := splitETT(t, i-1)
	return mergeETT(b, a)
}

// link joins the trees of u and v with the tree edge (u, v). The caller
// guarantees they are in different trees.
func (f *ettForest) link(u, v int, levelEdge bool) {
	tu := f.reroot(u)
	tv := f.reroot(v)
	au := &ettNode{prio: f.nextPrio(), u: u, v: v, isLevelEdge: levelEdge}
	au.pull()
	av := &ettNode{prio: f.nextPrio(), u: v, v: u}
	av.pull()
	f.arcs[arcKey{u, v}] = au
	f.arcs[arcKey{v, u}] = av
	mergeETT(mergeETT(tu, au), mergeETT(tv, av))
}

// cut removes the tree edge (u, v), splitting the tour into two trees.
func (f *ettForest) cut(u, v int) {
	a1 := f.arcs[arcKey{u, v}]
	a2 := f.arcs[arcKey{v, u}]
	delete(f.arcs, arcKey{u, v})
	delete(f.arcs, arcKey{v, u})
	i1, i2 := indexOf(a1), indexOf(a2)
	if i1 > i2 {
		a1, a2 = a2, a1
		i1, i2 = i2, i1
	}
	t := rootOf(a1)
	left, rest := splitETT(t, i1-1)
	_, rest2 := splitETT(rest, 1) // drop a1
	middle, rest3 := splitETT(rest2, i2-i1-1)
	_, right := splitETT(rest3, 1) // drop a2
	mergeETT(left, right)
	_ = middle // middle is the split-off component's tour
}

// setLevelEdgeFlag toggles the level-edge marker on the canonical arc of
// tree edge (u, v).
func (f *ettForest) setLevelEdgeFlag(u, v int, on bool) {
	a := f.arcs[arcKey{u, v}]
	a.isLevelEdge = on
	bubble(a)
}

// setAdjFlag toggles the has-non-tree-edges marker on vertex v's loop.
func (f *ettForest) setAdjFlag(v int, on bool) {
	x := f.loops[v]
	if x.hasAdjSelf == on {
		return
	}
	x.hasAdjSelf = on
	bubble(x)
}
