package collate

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestGraphSaveLoadRoundTrip: a restored graph answers every query like the
// original and keeps evolving correctly.
func TestGraphSaveLoadRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		for i := 0; i < 100; i++ {
			g.AddObservation(fmt.Sprintf("u%d", rng.Intn(15)), fmt.Sprintf("h%d", rng.Intn(25)))
		}
		var buf bytes.Buffer
		if err := g.Save(&buf); err != nil {
			return false
		}
		back, err := LoadGraph(&buf)
		if err != nil {
			return false
		}
		if back.NumUsers() != g.NumUsers() ||
			back.NumFingerprints() != g.NumFingerprints() ||
			back.NumClusters() != g.NumClusters() {
			return false
		}
		users := g.Users()
		backUsers := back.Users()
		for i := range users {
			if users[i] != backUsers[i] {
				return false
			}
		}
		// Pairwise cluster relations preserved.
		for i := 0; i < len(users); i++ {
			for j := i + 1; j < len(users); j++ {
				gi, _ := g.ClusterOf(users[i])
				gj, _ := g.ClusterOf(users[j])
				bi, _ := back.ClusterOf(users[i])
				bj, _ := back.ClusterOf(users[j])
				if (gi == gj) != (bi == bj) {
					return false
				}
			}
		}
		// The restored graph keeps merging correctly.
		before := back.NumClusters()
		if before >= 2 {
			// Bridge two arbitrary clusters through a fresh user.
			var c1, c2 string
			for _, u := range users {
				id, _ := back.ClusterOf(u)
				first, _ := back.ClusterOf(users[0])
				if id != first {
					c1, c2 = users[0], u
					break
				}
			}
			if c1 != "" {
				// Find any fingerprint of each user via Match over the
				// original observation space is unavailable; just link via
				// two new observations sharing a hash.
				back.AddObservation(c1, "bridge-hash")
				back.AddObservation(c2, "bridge-hash")
				if back.NumClusters() != before-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLoadGraphRejectsCorruptState(t *testing.T) {
	cases := []string{
		`not json`,
		`{"version":2}`,
		`{"version":1,"users":{"u":0},"fps":{},"user_ids":["u"],"parent":[0,0],"rank":[0],"size":[1,1],"sets":2}`,
		`{"version":1,"users":{"u":0},"fps":{"h":0},"user_ids":["u"],"parent":[0,1],"rank":[0,0],"size":[1,1],"sets":2}`,
		`{"version":1,"users":{"u":5},"fps":{},"user_ids":["u"],"parent":[0],"rank":[0],"size":[1],"sets":1}`,
		`{"version":1,"users":{"u":0},"fps":{},"user_ids":[],"parent":[0],"rank":[0],"size":[1],"sets":1}`,
		`{"version":1,"users":{"u":0},"fps":{"h":1},"user_ids":["u"],"parent":[0,9],"rank":[0,0],"size":[1,1],"sets":2}`,
	}
	for i, c := range cases {
		if _, err := LoadGraph(strings.NewReader(c)); err == nil {
			t.Errorf("corrupt state %d accepted", i)
		}
	}
}

func TestSaveLoadEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := NewGraph().Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumUsers() != 0 || g.NumClusters() != 0 {
		t.Errorf("restored empty graph: %d users, %d clusters", g.NumUsers(), g.NumClusters())
	}
	g.AddObservation("u", "h")
	if g.NumClusters() != 1 {
		t.Error("restored empty graph cannot grow")
	}
}
