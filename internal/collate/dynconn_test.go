package collate

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveConn is the quadratic oracle: adjacency sets + BFS.
type naiveConn struct {
	n   int
	adj map[int]map[int]bool
}

func newNaive(n int) *naiveConn {
	return &naiveConn{n: n, adj: make(map[int]map[int]bool)}
}

func (c *naiveConn) add(u, v int) {
	if c.adj[u] == nil {
		c.adj[u] = map[int]bool{}
	}
	if c.adj[v] == nil {
		c.adj[v] = map[int]bool{}
	}
	c.adj[u][v] = true
	c.adj[v][u] = true
}

func (c *naiveConn) remove(u, v int) {
	delete(c.adj[u], v)
	delete(c.adj[v], u)
}

func (c *naiveConn) connected(u, v int) bool {
	if u == v {
		return true
	}
	seen := map[int]bool{u: true}
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for y := range c.adj[x] {
			if y == v {
				return true
			}
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return false
}

func (c *naiveConn) components() int {
	seen := map[int]bool{}
	comps := 0
	for v := 0; v < c.n; v++ {
		if seen[v] {
			continue
		}
		comps++
		queue := []int{v}
		seen[v] = true
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for y := range c.adj[x] {
				if !seen[y] {
					seen[y] = true
					queue = append(queue, y)
				}
			}
		}
	}
	return comps
}

func TestDynamicBasics(t *testing.T) {
	d := NewDynamic(5)
	if d.Components() != 5 || d.NumVertices() != 5 {
		t.Fatalf("fresh: comps=%d n=%d", d.Components(), d.NumVertices())
	}
	if !d.AddEdge(0, 1) {
		t.Error("first edge did not join")
	}
	if d.AddEdge(0, 1) {
		t.Error("duplicate edge joined again")
	}
	if d.AddEdge(0, 0) {
		t.Error("self-loop joined")
	}
	d.AddEdge(1, 2)
	if !d.Connected(0, 2) || d.Connected(0, 3) {
		t.Error("connectivity wrong after path 0-1-2")
	}
	if d.Components() != 3 {
		t.Errorf("components = %d, want 3", d.Components())
	}
	if d.ComponentSize(1) != 3 || d.ComponentSize(4) != 1 {
		t.Errorf("sizes = %d/%d", d.ComponentSize(1), d.ComponentSize(4))
	}
	if !d.HasEdge(1, 0) || d.HasEdge(2, 3) {
		t.Error("HasEdge wrong")
	}
}

func TestDynamicCutAndReplace(t *testing.T) {
	// Cycle 0-1-2-3-0: cutting one edge must keep it connected via the
	// replacement (non-tree) edge; cutting a second must split.
	d := NewDynamic(4)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 3)
	d.AddEdge(3, 0) // closes the cycle as a non-tree edge
	if d.Components() != 1 {
		t.Fatalf("cycle components = %d", d.Components())
	}
	if split := d.RemoveEdge(1, 2); split {
		t.Error("removing a cycle edge reported a split")
	}
	if !d.Connected(1, 2) {
		t.Error("replacement edge not found: 1 and 2 disconnected")
	}
	if split := d.RemoveEdge(3, 0); !split {
		t.Error("removing bridge did not report a split")
	}
	if d.Connected(0, 2) {
		t.Error("0 and 2 still connected after both cuts")
	}
	if d.Components() != 2 {
		t.Errorf("components = %d, want 2", d.Components())
	}
	if d.RemoveEdge(1, 2) {
		t.Error("removing absent edge reported a split")
	}
}

func TestDynamicAddVertex(t *testing.T) {
	d := NewDynamic(2)
	d.AddEdge(0, 1)
	id := d.AddVertex()
	if id != 2 || d.Components() != 2 {
		t.Fatalf("AddVertex: id=%d comps=%d", id, d.Components())
	}
	d.AddEdge(2, 0)
	if !d.Connected(2, 1) {
		t.Error("new vertex not connectable")
	}
}

func TestComponentIDStability(t *testing.T) {
	d := NewDynamic(6)
	d.AddEdge(0, 1)
	d.AddEdge(2, 3)
	a1, a2 := d.ComponentID(0), d.ComponentID(1)
	if a1 != a2 {
		t.Error("same component, different IDs")
	}
	if d.ComponentID(2) == a1 {
		t.Error("different components share an ID")
	}
}

// TestDynamicAgainstOracle drives random interleaved insertions/deletions
// and cross-checks connectivity and component counts against BFS.
func TestDynamicAgainstOracle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 24
		d := NewDynamic(n)
		naive := newNaive(n)
		type edge struct{ u, v int }
		var present []edge

		for op := 0; op < 160; op++ {
			if len(present) == 0 || rng.Float64() < 0.6 {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v || naive.adj[u][v] {
					continue
				}
				d.AddEdge(u, v)
				naive.add(u, v)
				present = append(present, edge{u, v})
			} else {
				i := rng.Intn(len(present))
				e := present[i]
				present[i] = present[len(present)-1]
				present = present[:len(present)-1]
				d.RemoveEdge(e.u, e.v)
				naive.remove(e.u, e.v)
			}
			// Spot-check connectivity.
			for q := 0; q < 6; q++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if d.Connected(u, v) != naive.connected(u, v) {
					t.Logf("seed %d op %d: Connected(%d,%d) mismatch", seed, op, u, v)
					return false
				}
			}
			if d.Components() != naive.components() {
				t.Logf("seed %d op %d: components %d vs %d", seed, op, d.Components(), naive.components())
				return false
			}
		}
		// Final exhaustive check.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if d.Connected(u, v) != naive.connected(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestDynamicDeleteAll builds a dense graph then deletes every edge,
// checking the structure unwinds to n singletons.
func TestDynamicDeleteAll(t *testing.T) {
	const n = 16
	d := NewDynamic(n)
	type edge struct{ u, v int }
	var edges []edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if (u+v)%3 != 0 {
				continue
			}
			d.AddEdge(u, v)
			edges = append(edges, edge{u, v})
		}
	}
	rng := rand.New(rand.NewSource(9))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		d.RemoveEdge(e.u, e.v)
	}
	if d.Components() != n {
		t.Errorf("after deleting all edges: %d components, want %d", d.Components(), n)
	}
	for v := 0; v < n; v++ {
		if d.ComponentSize(v) != 1 {
			t.Errorf("vertex %d component size %d", v, d.ComponentSize(v))
		}
	}
}

func TestDynamicOutOfRangePanics(t *testing.T) {
	d := NewDynamic(3)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range vertex did not panic")
		}
	}()
	d.Connected(0, 7)
}

func BenchmarkDynamicAddEdge(b *testing.B) {
	d := NewDynamic(b.N + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.AddEdge(i, i+1)
	}
}

func BenchmarkDynamicChurn(b *testing.B) {
	const n = 4096
	d := NewDynamic(n)
	rng := rand.New(rand.NewSource(4))
	type edge struct{ u, v int }
	var present []edge
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && d.AddEdge(u, v) {
			present = append(present, edge{u, v})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(present) > 0 && i%2 == 0 {
			e := present[rng.Intn(len(present))]
			d.RemoveEdge(e.u, e.v)
			d.AddEdge(e.u, e.v)
		} else {
			d.Connected(rng.Intn(n), rng.Intn(n))
		}
	}
}
