package collate

// IntGraph is the dense, int-keyed fast path of the bipartite collation
// graph: users and elementary fingerprints are identified by dense int32
// IDs assigned up front (see study.Index), so AddObservation performs no
// map probes and no string hashing — just two array reads and a union-find
// merge. It produces exactly the same connected components as Graph over
// the equivalent string observations; the analysis sweeps (Fig. 5,
// Table 6, Fig. 9, §5) build thousands of these per run.
//
// Element layout: userElem maps a dense user ID to its union-find element;
// fingerprints are appended lazily as they are first observed, with
// fpElem mapping a dense fingerprint ID from the interning universe to
// its element (or -1 when not yet seen by this graph). size counts the
// users in a component (fingerprint elements weigh zero), which lets the
// online path report exact component sizes without a sweep.
//
// Two construction styles share the same representation: the batch path
// (NewIntGraph with the population and universe fixed up front) and the
// online path (start empty, AddUser/EnsureUniverse as the stream reveals
// new users and values, Observe per record). Both yield identical
// partitions and labels for the same observation multiset.
type IntGraph struct {
	numUsers int
	numFPs   int     // distinct fingerprints observed by this graph
	userElem []int32 // user ID → element
	fpElem   []int32 // fingerprint ID → element, -1 = absent
	parent   []int32
	size     []int32 // users per component root (fp elements weigh 0)
}

// NewIntGraph returns an empty graph over a fixed population of numUsers
// users and an interning universe of fpUniverse distinct fingerprint IDs.
// Both may be zero: the online path grows users with AddUser and the
// universe with EnsureUniverse.
func NewIntGraph(numUsers, fpUniverse int) *IntGraph {
	g := &IntGraph{
		numUsers: numUsers,
		userElem: make([]int32, numUsers),
		fpElem:   make([]int32, fpUniverse),
		parent:   make([]int32, numUsers, numUsers+fpUniverse),
		size:     make([]int32, numUsers, numUsers+fpUniverse),
	}
	for i := range g.fpElem {
		g.fpElem[i] = -1
	}
	for i := range g.parent {
		g.userElem[i] = int32(i)
		g.parent[i] = int32(i)
		g.size[i] = 1
	}
	return g
}

// NumUsers returns the current population size.
func (g *IntGraph) NumUsers() int { return g.numUsers }

// NumFingerprints returns the number of distinct fingerprints observed.
func (g *IntGraph) NumFingerprints() int { return g.numFPs }

// AddUser grows the population by one singleton user and returns its dense
// ID — the online counterpart of sizing the population in NewIntGraph.
func (g *IntGraph) AddUser() int32 {
	e := int32(len(g.parent))
	g.parent = append(g.parent, e)
	g.size = append(g.size, 1)
	g.userElem = append(g.userElem, e)
	g.numUsers++
	return int32(g.numUsers - 1)
}

// EnsureUniverse grows the fingerprint interning universe so IDs in [0, n)
// are addressable. Newly covered IDs are absent until first observed.
func (g *IntGraph) EnsureUniverse(n int) {
	for len(g.fpElem) < n {
		g.fpElem = append(g.fpElem, -1)
	}
}

func (g *IntGraph) find(x int32) int32 {
	for g.parent[x] != x {
		g.parent[x] = g.parent[g.parent[x]] // path halving
		x = g.parent[x]
	}
	return x
}

// union merges the components of elements a and b. When it merges two
// distinct components it reports their pre-merge user counts.
func (g *IntGraph) union(a, b int32) (aUsers, bUsers int32, merged bool) {
	ra, rb := g.find(a), g.find(b)
	if ra == rb {
		return 0, 0, false
	}
	ua, ub := g.size[ra], g.size[rb]
	if ua < ub {
		ra, rb = rb, ra
	}
	g.parent[rb] = ra
	g.size[ra] = ua + ub
	return ua, ub, true
}

// AddObservation records that user (a dense ID in [0, NumUsers)) emitted
// fingerprint fp (a dense ID in [0, fpUniverse)). It reports whether the
// edge merged two previously distinct components.
func (g *IntGraph) AddObservation(user, fp int32) bool {
	_, _, merged := g.Observe(user, fp)
	return merged
}

// Observe is AddObservation with merge bookkeeping for incremental
// consumers: when the edge merges two union-find components, aUsers and
// bUsers are the user counts of the user's and the fingerprint's
// component immediately before the merge. A freshly created fingerprint
// element reports merged=true with bUsers == 0 — an attachment to the
// user's component, not a merge of two user clusters. Two user clusters
// merged exactly when merged && bUsers > 0; a caller maintaining a
// cluster-size histogram then applies hist[aUsers]--, hist[bUsers]--,
// hist[aUsers+bUsers]++.
func (g *IntGraph) Observe(user, fp int32) (aUsers, bUsers int32, merged bool) {
	return g.union(g.userElem[user], g.fpNode(fp))
}

// fpNode returns fp's union-find element, materializing it as a fresh
// zero-weight singleton on first sight.
func (g *IntGraph) fpNode(fp int32) int32 {
	fn := g.fpElem[fp]
	if fn < 0 {
		fn = int32(len(g.parent))
		g.parent = append(g.parent, fn)
		g.size = append(g.size, 0)
		g.fpElem[fp] = fn
		g.numFPs++
	}
	return fn
}

// Clone returns a deep copy of g sharing no state with the original — the
// building block snapshot/merge consumers use to work on a frozen graph
// while the live one keeps growing.
func (g *IntGraph) Clone() *IntGraph {
	return &IntGraph{
		numUsers: g.numUsers,
		numFPs:   g.numFPs,
		userElem: append([]int32(nil), g.userElem...),
		fpElem:   append([]int32(nil), g.fpElem...),
		parent:   append([]int32(nil), g.parent...),
		size:     append([]int32(nil), g.size...),
	}
}

// Merge folds other's connected components into g — the cross-shard union
// of the collation graph, and the one place the "single dense universe
// built at intern time" assumption is deliberately crossed.
//
// The remap contract: g and other were built over *different* dense
// universes (each shard interns users and fingerprints independently), so
// the caller supplies the translation. userMap[u] is the g-user every
// other-user u maps to; it must be injective and every mapped ID must
// already exist in g (AddUser / NewIntGraph population). fpMap[f] is the
// g-universe fingerprint ID for other's fingerprint f; mapped IDs must be
// addressable in g (EnsureUniverse), and entries for IDs other never
// observed are ignored. The fingerprint maps of two shards may overlap —
// two shards interning the same hash to the same g-ID is exactly how
// cross-shard clusters join — or be disjoint, in which case Merge is a
// plain disjoint union of partitions.
//
// After Merge, g's partition is the join of the two partitions under the
// mapping: ClusterSizes/Labels/NumClusters over g are identical to a graph
// built from the union of both observation multisets, which is what makes
// a sharded replay bit-identical to the single-engine result. Merging an
// empty graph is a no-op; merging g into itself under identity maps leaves
// the partition unchanged. Merge may path-compress other's forest (no
// observable change). O((users+fps)·α) — no per-edge replay.
func (g *IntGraph) Merge(other *IntGraph, userMap, fpMap []int32) {
	if len(userMap) < other.numUsers {
		panic("collate: Merge userMap shorter than other's population")
	}
	if len(fpMap) < len(other.fpElem) {
		panic("collate: Merge fpMap shorter than other's fingerprint universe")
	}
	// gElem translates other's element index into g's element index.
	gElem := make([]int32, len(other.parent))
	for i := range gElem {
		gElem[i] = -1
	}
	for u := 0; u < other.numUsers; u++ {
		gElem[other.userElem[u]] = g.userElem[userMap[u]]
	}
	for f, e := range other.fpElem {
		if e >= 0 {
			gElem[e] = g.fpNode(fpMap[f])
		}
	}
	// Union every element with its root, translated. This transfers the
	// full partition without knowing the original edges.
	for e := range gElem {
		if gElem[e] < 0 {
			continue
		}
		root := other.find(int32(e))
		g.union(gElem[e], gElem[root])
	}
}

// ClusterOf returns the canonical element of the user's component. Valid
// only for the graph's current state.
func (g *IntGraph) ClusterOf(user int32) int32 { return g.find(g.userElem[user]) }

// ComponentUsers returns the number of users in the user's component.
func (g *IntGraph) ComponentUsers(user int32) int32 { return g.size[g.find(g.userElem[user])] }

// Labels returns each user's cluster label as a dense int32 in
// [0, NumClusters), canonicalized by first appearance in user order — the
// same ordering Graph.Labels induces through cluster.indexLabels, so AMI
// computed over these labels is bit-identical to the string path.
func (g *IntGraph) Labels() []int32 {
	return g.LabelsInto(make([]int32, g.numUsers), make([]int32, len(g.parent)))
}

// LabelsInto is Labels with caller-provided buffers: dst must have length
// NumUsers; canon must have length ≥ len(parent) (total elements) and is
// used as scratch. It returns dst. The number of clusters is
// max(dst)+1 (or 0 for an empty population).
func (g *IntGraph) LabelsInto(dst, canon []int32) []int32 {
	if len(dst) < g.numUsers || len(canon) < len(g.parent) {
		panic("collate: LabelsInto buffers too short")
	}
	canon = canon[:len(g.parent)]
	for i := range canon {
		canon[i] = -1
	}
	var next int32
	for u := 0; u < g.numUsers; u++ {
		root := g.find(g.userElem[u])
		if canon[root] < 0 {
			canon[root] = next
			next++
		}
		dst[u] = canon[root]
	}
	return dst[:g.numUsers]
}

// NumClusters returns the number of components containing at least one
// user.
func (g *IntGraph) NumClusters() int { return len(g.ClusterSizes()) }

// ClusterSizes returns the user count of every cluster in first-appearance
// order (not sorted).
func (g *IntGraph) ClusterSizes() []int {
	canon := make([]int32, len(g.parent))
	for i := range canon {
		canon[i] = -1
	}
	var sizes []int
	for u := 0; u < g.numUsers; u++ {
		root := g.find(g.userElem[u])
		if canon[root] < 0 {
			canon[root] = int32(len(sizes))
			sizes = append(sizes, 0)
		}
		sizes[canon[root]]++
	}
	return sizes
}

// UniqueClusters returns how many clusters contain exactly one user.
func (g *IntGraph) UniqueClusters() int {
	n := 0
	for _, s := range g.ClusterSizes() {
		if s == 1 {
			n++
		}
	}
	return n
}

// Match looks up a set of fingerprint IDs without inserting them and
// reports which existing cluster they identify — the int-keyed equivalent
// of Graph.Match. An empty fps slice returns MatchNoEvidence (nothing was
// submitted); a non-empty slice of IDs this graph never observed returns
// MatchNone (evidence was submitted and recognized nothing). It allocates
// nothing for the common ≤ 16-distinct-root case.
func (g *IntGraph) Match(fps []int32) (cluster int32, res MatchResult) {
	if len(fps) == 0 {
		return 0, MatchNoEvidence
	}
	var roots [16]int32
	found := roots[:0]
	for _, fp := range fps {
		if int(fp) >= len(g.fpElem) {
			continue
		}
		n := g.fpElem[fp]
		if n < 0 {
			continue
		}
		root := g.find(n)
		dup := false
		for _, r := range found {
			if r == root {
				dup = true
				break
			}
		}
		if !dup {
			found = append(found, root)
		}
	}
	switch len(found) {
	case 0:
		return 0, MatchNone
	case 1:
		return found[0], MatchUnique
	default:
		return 0, MatchAmbiguous
	}
}
