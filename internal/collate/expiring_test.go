package collate

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpiringGraphMirrorsGraph(t *testing.T) {
	// Insert-only workloads must agree exactly with the union-find Graph.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		e := NewExpiringGraph()
		for i := 0; i < 120; i++ {
			u := fmt.Sprintf("u%d", rng.Intn(20))
			h := fmt.Sprintf("h%d", rng.Intn(30))
			g.AddObservation(u, h)
			e.AddObservation(u, h)
		}
		if g.NumClusters() != e.NumClusters() {
			return false
		}
		users := g.Users()
		for i := 0; i < len(users); i++ {
			for j := i + 1; j < len(users); j++ {
				gi, _ := g.ClusterOf(users[i])
				gj, _ := g.ClusterOf(users[j])
				if (gi == gj) != e.SameCluster(users[i], users[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestExpiringGraphRetirement(t *testing.T) {
	e := NewExpiringGraph()
	// U1 and U2 share eFP3 (the paper's Fig. 4 cluster 1).
	e.AddObservation("U1", "eFP1")
	e.AddObservation("U1", "eFP3")
	merged := e.AddObservation("U2", "eFP3")
	if !merged {
		t.Error("shared fingerprint did not merge")
	}
	e.AddObservation("U2", "eFP5")
	if e.NumClusters() != 1 || !e.SameCluster("U1", "U2") {
		t.Fatal("U1 and U2 should share a cluster")
	}

	// Retiring U1's link to the shared fingerprint splits them.
	if split := e.RemoveObservation("U1", "eFP3"); !split {
		t.Error("retirement did not report a split")
	}
	if e.SameCluster("U1", "U2") {
		t.Error("U1 and U2 still merged after retirement")
	}
	if e.NumClusters() != 2 {
		t.Errorf("clusters = %d, want 2", e.NumClusters())
	}

	// Unknown removals are no-ops.
	if e.RemoveObservation("U9", "eFP3") || e.RemoveObservation("U1", "nope") {
		t.Error("unknown removal reported a split")
	}
}

func TestExpiringGraphDuplicateObservations(t *testing.T) {
	e := NewExpiringGraph()
	e.AddObservation("U1", "fp")
	e.AddObservation("U2", "fp")
	// U2 sees fp again (as happens across iterations).
	if e.AddObservation("U2", "fp") {
		t.Error("duplicate observation reported a merge")
	}
	// One removal must NOT split: a second observation still holds the edge.
	if e.RemoveObservation("U2", "fp") {
		t.Error("split despite remaining duplicate observation")
	}
	if !e.SameCluster("U1", "U2") {
		t.Error("U1/U2 split while one observation remains")
	}
	if !e.RemoveObservation("U2", "fp") {
		t.Error("final removal did not split")
	}
	if e.SameCluster("U1", "U2") {
		t.Error("still merged after all observations retired")
	}
}

func TestExpiringGraphAccessors(t *testing.T) {
	e := NewExpiringGraph()
	e.AddObservation("a", "h1")
	e.AddObservation("b", "h2")
	if e.NumUsers() != 2 {
		t.Errorf("NumUsers = %d", e.NumUsers())
	}
	labels := e.Labels([]string{"a", "b", "zz"})
	if labels[0] == labels[1] || labels[2] != -1 {
		t.Errorf("labels = %v", labels)
	}
	if _, ok := e.ClusterOf("zz"); ok {
		t.Error("unknown user resolved")
	}
	if got := e.Users(); len(got) != 2 || got[0] != "a" {
		t.Errorf("Users = %v", got)
	}
	if e.SameCluster("a", "zz") || e.SameCluster("zz", "a") {
		t.Error("SameCluster with unknown user")
	}
}

// TestExpiringSlidingWindow simulates a retention-limited fingerprinter:
// a sliding window of observations over a churning population, cross-checked
// against a rebuilt-from-scratch union-find graph at every step.
func TestExpiringSlidingWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	type obs struct{ u, h string }
	var window []obs
	e := NewExpiringGraph()
	const windowSize = 60

	for step := 0; step < 300; step++ {
		o := obs{
			u: fmt.Sprintf("u%d", rng.Intn(15)),
			h: fmt.Sprintf("h%d", rng.Intn(25)),
		}
		e.AddObservation(o.u, o.h)
		window = append(window, o)
		if len(window) > windowSize {
			old := window[0]
			window = window[1:]
			e.RemoveObservation(old.u, old.h)
		}
		if step%25 != 0 {
			continue
		}
		// Rebuild the reference graph from the current window.
		ref := NewGraph()
		for _, o := range window {
			ref.AddObservation(o.u, o.h)
		}
		users := ref.Users()
		for i := 0; i < len(users); i++ {
			for j := i + 1; j < len(users); j++ {
				ri, _ := ref.ClusterOf(users[i])
				rj, _ := ref.ClusterOf(users[j])
				if (ri == rj) != e.SameCluster(users[i], users[j]) {
					t.Fatalf("step %d: window graph disagrees for %s/%s", step, users[i], users[j])
				}
			}
		}
	}
}

func BenchmarkExpiringGraphChurn(b *testing.B) {
	e := NewExpiringGraph()
	rng := rand.New(rand.NewSource(5))
	type obs struct{ u, h string }
	var window []obs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o := obs{u: fmt.Sprintf("u%d", rng.Intn(2000)), h: fmt.Sprintf("h%d", rng.Intn(500))}
		e.AddObservation(o.u, o.h)
		window = append(window, o)
		if len(window) > 5000 {
			old := window[0]
			window = window[1:]
			e.RemoveObservation(old.u, old.h)
		}
	}
}
