package collate

import "fmt"

// Dynamic is a fully-dynamic connectivity structure after Holm, de
// Lichtenberg & Thorup (J. ACM 2001) — the algorithm the paper's §3.2 cites
// for fingerprinters that must *retire* observations (user deletions, data
// retention limits) as well as add them: edge insertion and deletion in
// O(log² n) amortized, connectivity queries in O(log n).
//
// Structure: every edge has a level ℓ ∈ [0, log₂ n]. Forest F_i spans the
// graph restricted to edges of level ≥ i; F_0 is the spanning forest.
// Deleting a tree edge of level ℓ searches levels ℓ…0 for a replacement
// among same-level non-tree edges incident to the smaller side, promoting
// inspected edges one level up to pay for future searches.
type Dynamic struct {
	n       int
	forests []*ettForest
	// adj[i][v] = set of non-tree level-i edges incident to v.
	adj   []map[int]map[int]struct{}
	edges map[arcKey]*edgeInfo
	comps int
}

type edgeInfo struct {
	level int
	tree  bool
}

// NewDynamic creates a structure over n initial vertices (0 … n−1).
func NewDynamic(n int) *Dynamic {
	d := &Dynamic{n: n, edges: make(map[arcKey]*edgeInfo), comps: n}
	d.addLevel()
	d.forests[0].ensureVertex(n - 1)
	return d
}

func (d *Dynamic) addLevel() {
	f := newETTForest()
	if d.n > 0 {
		f.ensureVertex(d.n - 1)
	}
	d.forests = append(d.forests, f)
	d.adj = append(d.adj, make(map[int]map[int]struct{}))
}

// AddVertex appends an isolated vertex and returns its id.
func (d *Dynamic) AddVertex() int {
	id := d.n
	d.n++
	for _, f := range d.forests {
		f.ensureVertex(id)
	}
	d.comps++
	return id
}

// NumVertices returns the vertex count.
func (d *Dynamic) NumVertices() int { return d.n }

// Components returns the number of connected components.
func (d *Dynamic) Components() int { return d.comps }

// Connected reports whether u and v are in one component.
func (d *Dynamic) Connected(u, v int) bool {
	d.check(u)
	d.check(v)
	if u == v {
		return true
	}
	return d.forests[0].connected(u, v)
}

// ComponentSize returns the number of vertices in v's component.
func (d *Dynamic) ComponentSize(v int) int {
	d.check(v)
	return d.forests[0].treeSize(v)
}

// ComponentID returns a canonical identifier of v's component, stable until
// the next update.
func (d *Dynamic) ComponentID(v int) int {
	d.check(v)
	r := rootOf(d.forests[0].loops[v])
	// The root's smallest endpoint is not canonical; use the tour's first
	// node's vertex after normalization: walk to leftmost node.
	for r.left != nil {
		r = r.left
	}
	return r.u
}

func (d *Dynamic) check(v int) {
	if v < 0 || v >= d.n {
		panic(fmt.Sprintf("collate: vertex %d out of range [0,%d)", v, d.n))
	}
}

func key(u, v int) arcKey {
	if u > v {
		u, v = v, u
	}
	return arcKey{u, v}
}

// HasEdge reports whether edge (u, v) is present.
func (d *Dynamic) HasEdge(u, v int) bool {
	_, ok := d.edges[key(u, v)]
	return ok
}

// AddEdge inserts edge (u, v). Inserting an existing edge or a self-loop is
// a no-op. It reports whether the edge joined two components.
func (d *Dynamic) AddEdge(u, v int) bool {
	d.check(u)
	d.check(v)
	if u == v || d.HasEdge(u, v) {
		return false
	}
	k := key(u, v)
	if !d.forests[0].connected(u, v) {
		d.edges[k] = &edgeInfo{level: 0, tree: true}
		d.forests[0].link(u, v, true)
		d.comps--
		return true
	}
	d.edges[k] = &edgeInfo{level: 0, tree: false}
	d.addNonTree(0, u, v)
	return false
}

// addNonTree registers (u, v) as a level-i non-tree edge.
func (d *Dynamic) addNonTree(i, u, v int) {
	for _, x := range [2]int{u, v} {
		m := d.adj[i][x]
		if m == nil {
			m = make(map[int]struct{})
			d.adj[i][x] = m
		}
	}
	d.adj[i][u][v] = struct{}{}
	d.adj[i][v][u] = struct{}{}
	d.forests[i].setAdjFlag(u, true)
	d.forests[i].setAdjFlag(v, true)
}

// removeNonTree unregisters (u, v) at level i, clearing flags when empty.
func (d *Dynamic) removeNonTree(i, u, v int) {
	delete(d.adj[i][u], v)
	delete(d.adj[i][v], u)
	if len(d.adj[i][u]) == 0 {
		delete(d.adj[i], u)
		d.forests[i].setAdjFlag(u, false)
	}
	if len(d.adj[i][v]) == 0 {
		delete(d.adj[i], v)
		d.forests[i].setAdjFlag(v, false)
	}
}

// RemoveEdge deletes edge (u, v). Removing an absent edge is a no-op. It
// reports whether the deletion split a component.
func (d *Dynamic) RemoveEdge(u, v int) bool {
	d.check(u)
	d.check(v)
	k := key(u, v)
	info, ok := d.edges[k]
	if !ok {
		return false
	}
	delete(d.edges, k)
	if !info.tree {
		d.removeNonTree(info.level, u, v)
		return false
	}
	// Tree edge: cut at every forest it participates in.
	for i := 0; i <= info.level; i++ {
		d.forests[i].cut(u, v)
	}
	// Search for a replacement from the edge's level downward.
	for i := info.level; i >= 0; i-- {
		if d.replace(i, u, v) {
			return false
		}
	}
	d.comps++
	return true
}

// replace searches level i for a non-tree edge reconnecting the two sides
// of the removed (u, v) tree edge, per HDT: promote the smaller side's
// level-i tree edges, then scan its level-i non-tree edges, promoting those
// that stay inside and reconnecting with the first that crosses.
func (d *Dynamic) replace(i, u, v int) bool {
	f := d.forests[i]
	// Work on the smaller side to amortize.
	su, sv := f.treeSize(u), f.treeSize(v)
	small := u
	if sv < su {
		small = v
	}
	if i+1 >= len(d.forests) {
		d.addLevel()
	}

	// Promote every level-i tree edge inside the small side to level i+1.
	root := rootOf(f.loops[small])
	for {
		arc := findLevelEdge(root)
		if arc == nil {
			break
		}
		a, b := arc.u, arc.v
		f.setLevelEdgeFlag(a, b, false)
		d.edges[key(a, b)].level = i + 1
		d.forests[i+1].link(a, b, true)
		root = rootOf(f.loops[small])
	}

	// Scan level-i non-tree edges incident to the small side.
	for {
		root = rootOf(f.loops[small])
		loop := findAdjVertex(root)
		if loop == nil {
			return false
		}
		x := loop.u
		for y := range d.adj[i][x] {
			if f.connected(x, y) {
				// Internal edge: promote to level i+1.
				d.removeNonTree(i, x, y)
				d.addNonTree(i+1, x, y)
				d.edges[key(x, y)].level = i + 1
			} else {
				// Crossing edge: the replacement. It becomes a tree edge of
				// level i, present in forests 0..i with its flag at level i.
				d.removeNonTree(i, x, y)
				info := d.edges[key(x, y)]
				info.tree = true
				info.level = i
				for j := 0; j < i; j++ {
					d.forests[j].link(x, y, false)
				}
				d.forests[i].link(x, y, true)
				return true
			}
			break // adj set mutated; re-fetch via flags
		}
	}
}
