package collate

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// buildBoth streams the same random observation sequence into a string
// Graph and an IntGraph, asserting the per-edge merge reports agree.
func buildBoth(t *testing.T, rng *rand.Rand, users, universe, edges int) (*Graph, *IntGraph) {
	t.Helper()
	g := NewGraph()
	// Pre-register users in index order so Graph's user set matches the
	// dense population (a user with no observation stays a singleton).
	for u := 0; u < users; u++ {
		g.AddObservation(userName(u), fmt.Sprintf("seed-h%d", u))
	}
	// Universe layout: [0, universe) shared hashes, [universe,
	// universe+users) per-user seed fingerprints, then head-room for
	// never-inserted probe IDs.
	ig := NewIntGraph(users, universe+users+64)
	for u := 0; u < users; u++ {
		ig.AddObservation(int32(u), int32(universe+u))
	}
	for e := 0; e < edges; e++ {
		u := rng.Intn(users)
		h := rng.Intn(universe)
		want := g.AddObservation(userName(u), fmt.Sprintf("h%d", h))
		got := ig.AddObservation(int32(u), int32(h))
		if got != want {
			t.Fatalf("edge %d (u%d, h%d): IntGraph merge=%v, Graph merge=%v", e, u, h, got, want)
		}
	}
	return g, ig
}

func userName(u int) string { return fmt.Sprintf("u%d", u) }

// canonicalize maps arbitrary labels to first-appearance-dense int32s.
func canonicalize(labels []int) []int32 {
	seen := map[int]int32{}
	out := make([]int32, len(labels))
	for i, l := range labels {
		id, ok := seen[l]
		if !ok {
			id = int32(len(seen))
			seen[l] = id
		}
		out[i] = id
	}
	return out
}

// TestIntGraphMatchesGraph: the dense fast path must produce exactly the
// same components, labels (up to canonical renaming), cluster statistics
// and match results as the string graph over the same observations.
func TestIntGraphMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const users, universe, edges = 200, 80, 3000
	g, ig := buildBoth(t, rng, users, universe, edges)

	names := make([]string, users)
	for u := range names {
		names[u] = userName(u)
	}
	want := canonicalize(g.Labels(names))
	got := ig.Labels()
	if !reflect.DeepEqual(got, want) {
		t.Fatal("IntGraph labels differ from canonicalized Graph labels")
	}
	if ig.NumClusters() != g.NumClusters() {
		t.Errorf("NumClusters: IntGraph %d, Graph %d", ig.NumClusters(), g.NumClusters())
	}
	if ig.UniqueClusters() != g.UniqueClusters() {
		t.Errorf("UniqueClusters: IntGraph %d, Graph %d", ig.UniqueClusters(), g.UniqueClusters())
	}
	igSizes := append([]int(nil), ig.ClusterSizes()...)
	sort.Sort(sort.Reverse(sort.IntSlice(igSizes)))
	if !reflect.DeepEqual(igSizes, g.ClusterSizes()) {
		t.Errorf("ClusterSizes: IntGraph %v, Graph %v", igSizes, g.ClusterSizes())
	}

	// Match equivalence over random probe sets (including unseen IDs).
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(5)
		hashes := make([]string, n)
		ids := make([]int32, n)
		for i := 0; i < n; i++ {
			h := rng.Intn(universe + 20) // some misses
			hashes[i] = fmt.Sprintf("h%d", h)
			if h < universe {
				ids[i] = int32(h)
			} else {
				// "h80".."h99" were never observed; map them to the
				// never-inserted tail of the ID universe.
				ids[i] = int32(universe + users + (h - universe))
			}
		}
		wantCluster, wantRes := g.Match(hashes)
		gotCluster, gotRes := ig.Match(ids)
		if gotRes != wantRes {
			t.Fatalf("trial %d: Match result IntGraph=%v, Graph=%v", trial, gotRes, wantRes)
		}
		if wantRes != MatchUnique {
			continue
		}
		// The matched clusters must contain the same users.
		var wantUsers, gotUsers []int
		for u := 0; u < users; u++ {
			if id, ok := g.ClusterOf(userName(u)); ok && id == wantCluster {
				wantUsers = append(wantUsers, u)
			}
			if ig.ClusterOf(int32(u)) == gotCluster {
				gotUsers = append(gotUsers, u)
			}
		}
		if !reflect.DeepEqual(gotUsers, wantUsers) {
			t.Fatalf("trial %d: matched cluster users differ: %v vs %v", trial, gotUsers, wantUsers)
		}
	}
}

// TestIntGraphMatchManyRoots: Match must stay correct past its no-alloc
// fast path of 16 distinct roots.
func TestIntGraphMatchManyRoots(t *testing.T) {
	const users = 40
	ig := NewIntGraph(users, users)
	for u := 0; u < users; u++ {
		ig.AddObservation(int32(u), int32(u)) // 40 singleton clusters
	}
	all := make([]int32, users)
	for i := range all {
		all[i] = int32(i)
	}
	if _, res := ig.Match(all); res != MatchAmbiguous {
		t.Errorf("40-root probe: result %v, want MatchAmbiguous", res)
	}
	if c, res := ig.Match(all[3:4]); res != MatchUnique || ig.ClusterOf(3) != c {
		t.Errorf("single probe: cluster %d result %v, want unique cluster of user 3", c, res)
	}
	if _, res := ig.Match(nil); res != MatchNoEvidence {
		t.Error("empty probe must be MatchNoEvidence")
	}
}

// TestIntGraphMatchEvidence: the no-evidence / no-match distinction. An
// empty probe set carries no evidence at all; a non-empty probe set whose
// IDs are out of universe or never observed is evidence that matched
// nothing. Both graph flavors must agree.
func TestIntGraphMatchEvidence(t *testing.T) {
	ig := NewIntGraph(2, 4)
	ig.AddObservation(0, 0)
	ig.AddObservation(1, 1)

	if _, res := ig.Match(nil); res != MatchNoEvidence {
		t.Errorf("nil probe: %v, want MatchNoEvidence", res)
	}
	if _, res := ig.Match([]int32{}); res != MatchNoEvidence {
		t.Errorf("empty probe: %v, want MatchNoEvidence", res)
	}
	// In-universe but never observed.
	if _, res := ig.Match([]int32{2, 3}); res != MatchNone {
		t.Errorf("unobserved IDs: %v, want MatchNone", res)
	}
	// Entirely out of the interning universe.
	if _, res := ig.Match([]int32{99, 1000}); res != MatchNone {
		t.Errorf("out-of-universe IDs: %v, want MatchNone", res)
	}
	// A mix of unknown and known still identifies the known cluster.
	if c, res := ig.Match([]int32{99, 0}); res != MatchUnique || c != ig.ClusterOf(0) {
		t.Errorf("mixed probe: cluster %d result %v, want unique cluster of user 0", c, res)
	}

	// The string graph agrees on every case.
	g := NewGraph()
	g.AddObservation("u0", "h0")
	g.AddObservation("u1", "h1")
	if _, res := g.Match(nil); res != MatchNoEvidence {
		t.Errorf("string graph nil probe: %v, want MatchNoEvidence", res)
	}
	if _, res := g.Match([]string{"nope", "also-nope"}); res != MatchNone {
		t.Errorf("string graph unknown hashes: %v, want MatchNone", res)
	}
	for res, want := range map[MatchResult]string{
		MatchNone: "none", MatchUnique: "unique",
		MatchAmbiguous: "ambiguous", MatchNoEvidence: "no_evidence",
		MatchResult(42): "invalid",
	} {
		if got := res.String(); got != want {
			t.Errorf("MatchResult(%d).String() = %q, want %q", res, got, want)
		}
	}
}

// TestIntGraphLabelsInto: the pooled-buffer variant must equal Labels and
// reject short buffers.
func TestIntGraphLabelsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, ig := buildBoth(t, rng, 50, 30, 300)
	dst := make([]int32, 50)
	canon := make([]int32, 50+ig.NumFingerprints()+50)
	if !reflect.DeepEqual(ig.LabelsInto(dst, canon), ig.Labels()) {
		t.Error("LabelsInto differs from Labels")
	}
	defer func() {
		if recover() == nil {
			t.Error("short buffer did not panic")
		}
	}()
	ig.LabelsInto(make([]int32, 1), canon)
}

// TestIntGraphOnlineGrowth: a graph grown online (AddUser/EnsureUniverse/
// Observe, stream order) must equal a batch-constructed graph over the same
// observations, and Observe's merge reports must keep an incremental
// cluster-size histogram consistent with ClusterSizes at every step.
func TestIntGraphOnlineGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const users, universe, edges = 120, 60, 2000

	batch := NewIntGraph(users, universe)
	online := NewIntGraph(0, 0)
	hist := map[int32]int64{} // component user-count → number of components
	added := 0
	addUser := func(u int) {
		for added <= u {
			if got := online.AddUser(); got != int32(added) {
				t.Fatalf("AddUser returned %d, want %d", got, added)
			}
			hist[1]++
			added++
		}
	}
	for e := 0; e < edges; e++ {
		u := rng.Intn(users)
		h := rng.Intn(universe)
		addUser(u)
		online.EnsureUniverse(h + 1)
		want := batch.AddObservation(int32(u), int32(h))
		a, b, merged := online.Observe(int32(u), int32(h))
		if merged != want {
			t.Fatalf("edge %d (u%d, h%d): online merge=%v, batch merge=%v", e, u, h, merged, want)
		}
		if merged && b > 0 {
			if a < 1 {
				t.Fatalf("edge %d: merge reported user-side component size %d, want ≥1", e, a)
			}
			hist[a]--
			if hist[a] == 0 {
				delete(hist, a)
			}
			hist[b]--
			if hist[b] == 0 {
				delete(hist, b)
			}
			hist[a+b]++
		}
	}
	addUser(users - 1) // any stragglers never observed
	wantHist := map[int32]int64{}
	for _, s := range online.ClusterSizes() {
		wantHist[int32(s)]++
	}
	if !reflect.DeepEqual(hist, wantHist) {
		t.Errorf("incremental histogram %v differs from ClusterSizes tally %v", hist, wantHist)
	}

	// Online labels cover only users seen so far; compare the full set.
	got, want := online.Labels(), batch.Labels()
	if !reflect.DeepEqual(got, want) {
		t.Error("online labels differ from batch labels")
	}
	if online.NumClusters() != batch.NumClusters() || online.UniqueClusters() != batch.UniqueClusters() {
		t.Errorf("cluster stats differ: online (%d, %d) vs batch (%d, %d)",
			online.NumClusters(), online.UniqueClusters(), batch.NumClusters(), batch.UniqueClusters())
	}
	sizes, labels := batch.ClusterSizes(), batch.Labels()
	for u := int32(0); u < users; u++ {
		if got, want := online.ComponentUsers(u), int32(sizes[labels[u]]); got != want {
			t.Fatalf("ComponentUsers(%d) = %d, want %d", u, got, want)
		}
	}
}
