package collate

import (
	"math/rand"
	"reflect"
	"testing"
)

// buildFromEdges constructs an IntGraph over nUsers users and a universe
// of fpUniverse fingerprints from an explicit edge list.
func buildFromEdges(nUsers, fpUniverse int, edges [][2]int32) *IntGraph {
	g := NewIntGraph(nUsers, fpUniverse)
	for _, e := range edges {
		g.AddObservation(e[0], e[1])
	}
	return g
}

// partitionSignature canonicalizes a graph's user partition: label per
// user by first appearance. Two graphs with equal signatures over the same
// user order collate identically.
func partitionSignature(g *IntGraph) []int32 {
	return g.Labels()
}

// TestMergeDisjointUniverses merges two shards whose fingerprint universes
// do not overlap at all: the result must be the disjoint union of the two
// partitions.
func TestMergeDisjointUniverses(t *testing.T) {
	// Shard A: users 0,1 joined by fp 0; user 2 alone on fp 1.
	a := buildFromEdges(3, 2, [][2]int32{{0, 0}, {1, 0}, {2, 1}})
	// Shard B: users 0,1 joined by fp 0.
	b := buildFromEdges(2, 1, [][2]int32{{0, 0}, {1, 0}})

	// Global layout: A's users at 0,1,2; B's at 3,4. A's fps at 0,1; B's
	// fp at 2.
	g := NewIntGraph(5, 3)
	g.Merge(a, []int32{0, 1, 2}, []int32{0, 1})
	g.Merge(b, []int32{3, 4}, []int32{2})

	want := []int32{0, 0, 1, 2, 2}
	if got := partitionSignature(g); !reflect.DeepEqual(got, want) {
		t.Fatalf("disjoint merge labels = %v, want %v", got, want)
	}
	if g.NumFingerprints() != 3 {
		t.Fatalf("NumFingerprints = %d, want 3", g.NumFingerprints())
	}
	if got, want := g.ClusterSizes(), []int{2, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ClusterSizes = %v, want %v", got, want)
	}
}

// TestMergeOverlappingUniverses is the cross-shard join case: both shards
// observed the same global fingerprint, so their clusters must fuse.
func TestMergeOverlappingUniverses(t *testing.T) {
	// Shard A: users 0,1 share local fp 0 (global fp 7).
	a := buildFromEdges(2, 1, [][2]int32{{0, 0}, {1, 0}})
	// Shard B: user 0 has local fp 0 (global fp 7 again!), user 1 has
	// local fp 1 (global fp 3).
	b := buildFromEdges(2, 2, [][2]int32{{0, 0}, {1, 1}})

	g := NewIntGraph(4, 8)
	g.Merge(a, []int32{0, 1}, []int32{7})
	g.Merge(b, []int32{2, 3}, []int32{7, 3})

	// Users 0,1 (from A) and 2 (from B) all touch global fp 7 → one
	// cluster; user 3 is alone.
	want := []int32{0, 0, 0, 1}
	if got := partitionSignature(g); !reflect.DeepEqual(got, want) {
		t.Fatalf("overlapping merge labels = %v, want %v", got, want)
	}
	if g.NumFingerprints() != 2 {
		t.Fatalf("NumFingerprints = %d, want 2 (fp 7 shared)", g.NumFingerprints())
	}
	if got, want := g.ClusterSizes(), []int{3, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ClusterSizes = %v, want %v", got, want)
	}
}

// TestMergeEmptyGraph checks both directions of the identity: merging an
// empty graph changes nothing, and merging into an empty-population graph
// transfers the partition.
func TestMergeEmptyGraph(t *testing.T) {
	a := buildFromEdges(3, 2, [][2]int32{{0, 0}, {1, 0}, {2, 1}})
	before := partitionSignature(a)

	empty := NewIntGraph(0, 0)
	a.Merge(empty, nil, nil)
	if got := partitionSignature(a); !reflect.DeepEqual(got, before) {
		t.Fatalf("merge of empty graph changed labels: %v → %v", before, got)
	}
	if a.NumFingerprints() != 2 || a.NumUsers() != 3 {
		t.Fatalf("merge of empty graph changed counts: users=%d fps=%d", a.NumUsers(), a.NumFingerprints())
	}

	// Other direction: fold a into a fresh graph with the same layout.
	g := NewIntGraph(3, 2)
	g.Merge(a, []int32{0, 1, 2}, []int32{0, 1})
	if got := partitionSignature(g); !reflect.DeepEqual(got, before) {
		t.Fatalf("merge into empty graph: labels = %v, want %v", got, before)
	}
}

// TestMergeSelfIdentity merges a clone of g into g under identity maps:
// the partition must not change (idempotence of the union pass).
func TestMergeSelfIdentity(t *testing.T) {
	g := buildFromEdges(5, 4, [][2]int32{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}})
	before := partitionSignature(g)
	beforeSizes := g.ClusterSizes()

	userMap := []int32{0, 1, 2, 3, 4}
	fpMap := []int32{0, 1, 2, 3}
	g.Merge(g.Clone(), userMap, fpMap)

	if got := partitionSignature(g); !reflect.DeepEqual(got, before) {
		t.Fatalf("self-merge changed labels: %v → %v", before, got)
	}
	if got := g.ClusterSizes(); !reflect.DeepEqual(got, beforeSizes) {
		t.Fatalf("self-merge changed sizes: %v → %v", beforeSizes, got)
	}
	if g.NumFingerprints() != 3 {
		t.Fatalf("self-merge changed NumFingerprints: %d, want 3", g.NumFingerprints())
	}
}

// TestMergeMatchesReplay is the randomized contract check: splitting a
// random observation multiset across two shard-local graphs and merging
// must equal building one graph from all observations.
func TestMergeMatchesReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(20220808))
	for trial := 0; trial < 100; trial++ {
		nUsers := 2 + rng.Intn(30)
		universe := 1 + rng.Intn(12) // small → heavy fp sharing
		nObs := rng.Intn(80)
		type obs struct{ u, fp int32 }
		all := make([]obs, nObs)
		for i := range all {
			all[i] = obs{int32(rng.Intn(nUsers)), int32(rng.Intn(universe))}
		}

		// Reference: single graph over everything.
		ref := NewIntGraph(nUsers, universe)
		for _, o := range all {
			ref.AddObservation(o.u, o.fp)
		}

		// Shards: users assigned randomly; each shard interns its own
		// dense users and fingerprints in arrival order.
		type shard struct {
			g       *IntGraph
			userMap []int32 // local user → global
			userIdx map[int32]int32
			fpMap   []int32 // local fp → global
			fpIdx   map[int32]int32
		}
		shards := [2]*shard{}
		for i := range shards {
			shards[i] = &shard{
				g:       NewIntGraph(0, 0),
				userIdx: map[int32]int32{},
				fpIdx:   map[int32]int32{},
			}
		}
		owner := make([]int, nUsers)
		for u := range owner {
			owner[u] = rng.Intn(2)
		}
		for _, o := range all {
			sh := shards[owner[o.u]]
			lu, ok := sh.userIdx[o.u]
			if !ok {
				lu = sh.g.AddUser()
				sh.userIdx[o.u] = lu
				sh.userMap = append(sh.userMap, o.u)
			}
			lf, ok := sh.fpIdx[o.fp]
			if !ok {
				lf = int32(len(sh.fpMap))
				sh.fpIdx[o.fp] = lf
				sh.fpMap = append(sh.fpMap, o.fp)
				sh.g.EnsureUniverse(int(lf) + 1)
			}
			sh.g.AddObservation(lu, lf)
		}

		merged := NewIntGraph(nUsers, universe)
		for _, sh := range shards {
			merged.Merge(sh.g, sh.userMap, sh.fpMap)
		}

		if got, want := partitionSignature(merged), partitionSignature(ref); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged labels %v != replay labels %v", trial, got, want)
		}
		if merged.NumFingerprints() != ref.NumFingerprints() {
			t.Fatalf("trial %d: merged fps %d != replay fps %d",
				trial, merged.NumFingerprints(), ref.NumFingerprints())
		}
	}
}

// TestCloneIndependence ensures Clone shares no mutable state.
func TestCloneIndependence(t *testing.T) {
	g := buildFromEdges(3, 3, [][2]int32{{0, 0}, {1, 1}})
	c := g.Clone()
	g.AddObservation(1, 0) // merges users 0 and 1 in g only
	if got := partitionSignature(c); !reflect.DeepEqual(got, []int32{0, 1, 2}) {
		t.Fatalf("clone mutated by original: labels = %v", got)
	}
	c.AddObservation(2, 0)
	if got := partitionSignature(g); !reflect.DeepEqual(got, []int32{0, 0, 1}) {
		t.Fatalf("original mutated by clone: labels = %v", got)
	}
}
