package collate

import (
	"encoding/json"
	"fmt"
	"io"
)

// Graph persistence: a fingerprinter's identity state must survive process
// restarts. The serialized form captures the node maps and the disjoint-set
// forest; loading restores clusters, match behaviour and future-merge
// semantics exactly.

// graphState is the serialized form (version-tagged for forward evolution).
type graphState struct {
	Version int            `json:"version"`
	Users   map[string]int `json:"users"`
	Fps     map[string]int `json:"fps"`
	UserIDs []string       `json:"user_ids"`
	Parent  []int          `json:"parent"`
	Rank    []byte         `json:"rank"`
	Size    []int          `json:"size"`
	Sets    int            `json:"sets"`
}

// Save serializes the graph to w as JSON.
func (g *Graph) Save(w io.Writer) error {
	st := graphState{
		Version: 1,
		Users:   g.users,
		Fps:     g.fps,
		UserIDs: g.userIDs,
		Parent:  g.uf.parent,
		Rank:    g.uf.rank,
		Size:    g.uf.size,
		Sets:    g.uf.sets,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&st)
}

// LoadGraph restores a graph saved with Save, validating structural
// invariants before accepting it.
func LoadGraph(r io.Reader) (*Graph, error) {
	var st graphState
	dec := json.NewDecoder(r)
	if err := dec.Decode(&st); err != nil {
		return nil, fmt.Errorf("collate: decode graph: %w", err)
	}
	if st.Version != 1 {
		return nil, fmt.Errorf("collate: unsupported graph version %d", st.Version)
	}
	n := len(st.Parent)
	if len(st.Rank) != n || len(st.Size) != n {
		return nil, fmt.Errorf("collate: inconsistent forest arrays (%d/%d/%d)",
			n, len(st.Rank), len(st.Size))
	}
	if len(st.Users)+len(st.Fps) != n {
		return nil, fmt.Errorf("collate: %d nodes for %d users + %d fingerprints",
			n, len(st.Users), len(st.Fps))
	}
	if len(st.UserIDs) != len(st.Users) {
		return nil, fmt.Errorf("collate: user order length %d != user count %d",
			len(st.UserIDs), len(st.Users))
	}
	seen := make(map[int]struct{}, n)
	check := func(m map[string]int) error {
		for k, idx := range m {
			if idx < 0 || idx >= n {
				return fmt.Errorf("collate: node %d for %q out of range", idx, k)
			}
			if _, dup := seen[idx]; dup {
				return fmt.Errorf("collate: node %d mapped twice", idx)
			}
			seen[idx] = struct{}{}
		}
		return nil
	}
	if err := check(st.Users); err != nil {
		return nil, err
	}
	if err := check(st.Fps); err != nil {
		return nil, err
	}
	for i, p := range st.Parent {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("collate: parent[%d] = %d out of range", i, p)
		}
	}
	if st.Users == nil {
		st.Users = map[string]int{}
	}
	if st.Fps == nil {
		st.Fps = map[string]int{}
	}
	g := &Graph{
		uf: &UnionFind{
			parent: st.Parent,
			rank:   st.Rank,
			size:   st.Size,
			sets:   st.Sets,
		},
		users:   st.Users,
		fps:     st.Fps,
		userIDs: st.UserIDs,
	}
	return g, nil
}
