package collate

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(5)
	if u.Sets() != 5 || u.Len() != 5 {
		t.Fatalf("fresh forest: sets=%d len=%d", u.Sets(), u.Len())
	}
	if !u.Union(0, 1) {
		t.Error("first union reported no merge")
	}
	if u.Union(1, 0) {
		t.Error("repeated union reported a merge")
	}
	u.Union(2, 3)
	u.Union(1, 3)
	if u.Sets() != 2 {
		t.Errorf("sets = %d, want 2", u.Sets())
	}
	if !u.SameSet(0, 2) {
		t.Error("0 and 2 should be joined")
	}
	if u.SameSet(0, 4) {
		t.Error("0 and 4 should be disjoint")
	}
	if u.SizeOf(0) != 4 {
		t.Errorf("SizeOf(0) = %d, want 4", u.SizeOf(0))
	}
	idx := u.Add()
	if idx != 5 || u.Sets() != 3 {
		t.Errorf("Add: idx=%d sets=%d", idx, u.Sets())
	}
}

// TestUnionFindAgainstNaive cross-checks random union sequences against a
// quadratic reference implementation.
func TestUnionFindAgainstNaive(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 40
		u := NewUnionFind(n)
		label := make([]int, n) // naive: component label per element
		for i := range label {
			label[i] = i
		}
		for op := 0; op < 60; op++ {
			a, b := rng.Intn(n), rng.Intn(n)
			u.Union(a, b)
			la, lb := label[a], label[b]
			if la != lb {
				for i := range label {
					if label[i] == lb {
						label[i] = la
					}
				}
			}
		}
		// Compare pairwise connectivity.
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if u.SameSet(a, b) != (label[a] == label[b]) {
					return false
				}
			}
		}
		// Compare set counts.
		distinct := map[int]struct{}{}
		for _, l := range label {
			distinct[l] = struct{}{}
		}
		return len(distinct) == u.Sets()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPaperFigure4 reproduces the paper's worked example (Fig. 4): 9
// elementary fingerprints across 4 users collate into 3 clusters — one
// shared by U1,U2 and two unique — and a fifth user bridging eFP6/eFP9
// merges the second and third clusters.
func TestPaperFigure4(t *testing.T) {
	g := NewGraph()
	// U1: eFP1..eFP3; U2: eFP3..eFP5; U3: eFP6,eFP7; U4: eFP8,eFP9.
	obs := map[string][]string{
		"U1": {"eFP1", "eFP2", "eFP3"},
		"U2": {"eFP3", "eFP4", "eFP5"},
		"U3": {"eFP6", "eFP7"},
		"U4": {"eFP8", "eFP9"},
	}
	for _, u := range []string{"U1", "U2", "U3", "U4"} {
		for _, h := range obs[u] {
			g.AddObservation(u, h)
		}
	}
	if got := g.NumClusters(); got != 3 {
		t.Fatalf("clusters = %d, want 3", got)
	}
	c1, _ := g.ClusterOf("U1")
	c2, _ := g.ClusterOf("U2")
	c3, _ := g.ClusterOf("U3")
	c4, _ := g.ClusterOf("U4")
	if c1 != c2 {
		t.Error("U1 and U2 should share a cluster")
	}
	if c3 == c4 || c3 == c1 || c4 == c1 {
		t.Error("U3 and U4 should be unique clusters")
	}
	if got := g.UniqueClusters(); got != 2 {
		t.Errorf("unique clusters = %d, want 2", got)
	}

	// New user U5 bridges eFP6 and eFP9: merges U3's and U4's clusters.
	merged := false
	g.AddObservation("U5", "eFP6")
	if g.AddObservation("U5", "eFP9") {
		merged = true
	}
	if !merged {
		t.Error("bridging observation did not report a merge")
	}
	if got := g.NumClusters(); got != 2 {
		t.Fatalf("after merge: clusters = %d, want 2", got)
	}
	c3, _ = g.ClusterOf("U3")
	c4, _ = g.ClusterOf("U4")
	c5, _ := g.ClusterOf("U5")
	if c3 != c4 || c4 != c5 {
		t.Error("U3, U4, U5 should share one cluster after bridging")
	}
}

func TestGraphAccessors(t *testing.T) {
	g := NewGraph()
	g.AddObservation("a", "h1")
	g.AddObservation("a", "h2")
	g.AddObservation("b", "h3")
	if g.NumUsers() != 2 || g.NumFingerprints() != 3 {
		t.Fatalf("users=%d fps=%d", g.NumUsers(), g.NumFingerprints())
	}
	if !g.HasUser("a") || g.HasUser("zz") {
		t.Error("HasUser wrong")
	}
	if _, ok := g.ClusterOf("zz"); ok {
		t.Error("ClusterOf unknown user reported ok")
	}
	labels := g.Labels([]string{"a", "b", "zz"})
	if labels[0] == labels[1] {
		t.Error("a and b should have different labels")
	}
	if labels[2] != -1 {
		t.Error("unknown user label should be -1")
	}
	sizes := g.ClusterSizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 1 {
		t.Errorf("sizes = %v", sizes)
	}
	cl := g.Clusters()
	if len(cl) != 2 {
		t.Errorf("Clusters() returned %d components", len(cl))
	}
	if got := g.Users(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Users() = %v", got)
	}
}

func TestMatchSemantics(t *testing.T) {
	g := NewGraph()
	g.AddObservation("u1", "h1")
	g.AddObservation("u1", "h2")
	g.AddObservation("u2", "h3")

	c1, _ := g.ClusterOf("u1")
	if c, res := g.Match([]string{"h2"}); res != MatchUnique || c != c1 {
		t.Errorf("Match(h2) = (%d,%v), want (%d,unique)", c, res, c1)
	}
	if _, res := g.Match([]string{"nope"}); res != MatchNone {
		t.Errorf("Match(unknown) = %v, want none", res)
	}
	if _, res := g.Match([]string{"h1", "h3"}); res != MatchAmbiguous {
		t.Errorf("Match(h1,h3) = %v, want ambiguous", res)
	}
	if c, res := g.Match([]string{"h1", "nope", "h2"}); res != MatchUnique || c != c1 {
		t.Errorf("Match with partial unknowns = (%d,%v)", c, res)
	}
}

// TestClusterCountInvariant: for any observation stream, the number of
// clusters equals users minus the merging edges among user-reachable parts —
// verified against a naive recomputation.
func TestClusterCountInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph()
		type edge struct{ u, h string }
		var edges []edge
		for i := 0; i < 80; i++ {
			u := fmt.Sprintf("u%d", rng.Intn(15))
			h := fmt.Sprintf("h%d", rng.Intn(25))
			g.AddObservation(u, h)
			edges = append(edges, edge{u, h})
		}
		// Naive recount via label propagation.
		labels := map[string]string{}
		var find func(x string) string
		find = func(x string) string {
			if labels[x] == x {
				return x
			}
			labels[x] = find(labels[x])
			return labels[x]
		}
		for _, e := range edges {
			for _, k := range []string{"U:" + e.u, "H:" + e.h} {
				if _, ok := labels[k]; !ok {
					labels[k] = k
				}
			}
			ra, rb := find("U:"+e.u), find("H:"+e.h)
			if ra != rb {
				labels[rb] = ra
			}
		}
		distinct := map[string]struct{}{}
		for k := range labels {
			if k[0] == 'U' {
				distinct[find(k)] = struct{}{}
			}
		}
		return g.NumClusters() == len(distinct)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGraphInsert(b *testing.B) {
	g := NewGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.AddObservation(fmt.Sprintf("u%d", i%10000), fmt.Sprintf("h%d", i%3000))
	}
}

func BenchmarkGraphClusterOf(b *testing.B) {
	g := NewGraph()
	for i := 0; i < 10000; i++ {
		g.AddObservation(fmt.Sprintf("u%d", i), fmt.Sprintf("h%d", i%500))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ClusterOf(fmt.Sprintf("u%d", i%10000))
	}
}
