package collate

// ExpiringGraph is the collation graph with observation *retirement*: a
// fingerprinter subject to data-retention limits (or user deletion
// requests) must drop old (user, fingerprint) edges, which can split
// collated clusters — exactly the fully-dynamic setting for which the paper
// points at Holm–de Lichtenberg–Thorup [11]. Built on Dynamic, updates cost
// O(log² n) amortized and queries O(log n).
type ExpiringGraph struct {
	dyn   *Dynamic
	users map[string]int
	fps   map[string]int
	// refs counts duplicate observations per (user node, fp node) pair so
	// an edge disappears only when its last observation is retired.
	refs    map[arcKey]int
	userIDs []string
}

// NewExpiringGraph returns an empty graph.
func NewExpiringGraph() *ExpiringGraph {
	return &ExpiringGraph{
		dyn:   NewDynamic(0),
		users: make(map[string]int),
		fps:   make(map[string]int),
		refs:  make(map[arcKey]int),
	}
}

func (g *ExpiringGraph) userNode(user string) int {
	n, ok := g.users[user]
	if !ok {
		n = g.dyn.AddVertex()
		g.users[user] = n
		g.userIDs = append(g.userIDs, user)
	}
	return n
}

func (g *ExpiringGraph) fpNode(hash string) int {
	n, ok := g.fps[hash]
	if !ok {
		n = g.dyn.AddVertex()
		g.fps[hash] = n
	}
	return n
}

// AddObservation records one (user, fingerprint) observation. It reports
// whether the observation merged two previously distinct clusters.
func (g *ExpiringGraph) AddObservation(user, hash string) bool {
	un := g.userNode(user)
	fn := g.fpNode(hash)
	k := key(un, fn)
	g.refs[k]++
	if g.refs[k] > 1 {
		return false
	}
	return g.dyn.AddEdge(un, fn)
}

// RemoveObservation retires one observation. It reports whether the removal
// split a cluster. Removing an unrecorded observation is a no-op.
func (g *ExpiringGraph) RemoveObservation(user, hash string) bool {
	un, ok := g.users[user]
	if !ok {
		return false
	}
	fn, ok := g.fps[hash]
	if !ok {
		return false
	}
	k := key(un, fn)
	if g.refs[k] == 0 {
		return false
	}
	g.refs[k]--
	if g.refs[k] > 0 {
		return false
	}
	delete(g.refs, k)
	return g.dyn.RemoveEdge(un, fn)
}

// NumUsers returns the number of distinct users ever observed.
func (g *ExpiringGraph) NumUsers() int { return len(g.users) }

// ClusterOf returns a canonical identifier of the user's current cluster
// (stable until the next update). ok is false for unknown users.
func (g *ExpiringGraph) ClusterOf(user string) (int, bool) {
	n, ok := g.users[user]
	if !ok {
		return 0, false
	}
	return g.dyn.ComponentID(n), true
}

// SameCluster reports whether two known users currently share a collated
// fingerprint.
func (g *ExpiringGraph) SameCluster(a, b string) bool {
	na, ok := g.users[a]
	if !ok {
		return false
	}
	nb, ok := g.users[b]
	if !ok {
		return false
	}
	return g.dyn.Connected(na, nb)
}

// NumClusters returns the number of components containing ≥ 1 user.
func (g *ExpiringGraph) NumClusters() int {
	seen := make(map[int]struct{}, len(g.users))
	for _, n := range g.users {
		seen[g.dyn.ComponentID(n)] = struct{}{}
	}
	return len(seen)
}

// Labels returns cluster labels for the given users (-1 for unknown).
func (g *ExpiringGraph) Labels(users []string) []int {
	out := make([]int, len(users))
	for i, u := range users {
		if id, ok := g.ClusterOf(u); ok {
			out[i] = id
		} else {
			out[i] = -1
		}
	}
	return out
}

// Users returns observed user ids in insertion order (shared slice).
func (g *ExpiringGraph) Users() []string { return g.userIDs }
