package watch

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/streaming"
)

// Alert states. Lifecycle: a breaching evaluation opens a pending alert;
// Rule.For consecutive breaches promote it to firing; a clean evaluation
// cancels a pending alert silently and resolves a firing one into the
// bounded resolved history.
const (
	StatePending  = "pending"
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Alert is one detector verdict, JSON-shaped for the
// /api/v1/analytics/alerts payload. Record indices — not timestamps —
// anchor the lifecycle so seeded replays produce identical alerts.
type Alert struct {
	Rule      string  `json:"rule"`
	Kind      string  `json:"kind"`
	Subject   string  `json:"subject"`
	State     string  `json:"state"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Message   string  `json:"message"`
	// PendingAtRecords is the applied-record count at the first breach.
	PendingAtRecords int64 `json:"pending_at_records"`
	// FiredAtRecords is set once the alert reaches firing.
	FiredAtRecords int64 `json:"fired_at_records,omitempty"`
	// ResolvedAtRecords is set once a firing alert clears.
	ResolvedAtRecords int64 `json:"resolved_at_records,omitempty"`
}

// Snapshot is the full monitor state served by the alerts route.
type Snapshot struct {
	Records  int64   `json:"records"`
	Evals    int64   `json:"evals"`
	Rules    int     `json:"rules"`
	Firing   int     `json:"firing"`
	Pending  int     `json:"pending"`
	Resolved int     `json:"resolved"`
	Alerts   []Alert `json:"alerts"`
}

// Config parameterizes New.
type Config struct {
	// Engine supplies the live analytics snapshots and the per-batch
	// observer hook that drives evaluation. Required.
	Engine *streaming.Engine
	// Registry is both the source error-budget rules read from and the
	// sink the monitor's own watch_* metrics register on; nil uses
	// obs.Default.
	Registry *obs.Registry
	// Rules is the rule table; nil uses DefaultRules().
	Rules []Rule
	// History bounds the resolved-alert history (default 32).
	History int
	// Logger receives fire/resolve events; nil disables logging.
	Logger *slog.Logger
	// OnTransition, when set, receives every user-visible alert state
	// change: (alert, "", "pending") when a breach opens an alert,
	// (alert, "pending", "firing") on promotion, and (alert, "firing",
	// "resolved") when a firing alert clears. Cancelled pending alerts
	// stay silent, matching the lifecycle. The hook runs on the observing
	// goroutine but outside the monitor's lock, after the evaluation pass
	// that produced the transition — calling back into Snapshot/Alerts
	// from the hook is safe. Heavy work should still be handed off to
	// another goroutine to keep the ingest path fast.
	OnTransition func(alert Alert, from, to string)
}

// ewmaState is one subject's running mean/variance.
type ewmaState struct {
	n    int
	mean float64
	vari float64
}

// churnState is one subject's previous cluster/user/record position.
type churnState struct {
	seen     bool
	clusters int
	users    int
	records  int64
}

// budgetState is one rule's previous counter sums.
type budgetState struct {
	seen   bool
	errors float64
	total  float64
}

// divState is one render-divergence rule's previous counter position. The
// baseline starts at zero (not "unseen"): divergences that happened before
// the monitor attached still fire on the first evaluation.
type divState struct {
	prev float64
}

// alertState is one live (pending or firing) alert plus its breach run.
type alertState struct {
	alert    Alert
	breaches int
}

// transition is one queued OnTransition delivery: state changes are
// collected under the lock and delivered after it is released.
type transition struct {
	alert    Alert
	from, to string
}

// ruleState is one rule's evaluation cursor and per-subject detectors.
type ruleState struct {
	rule     Rule
	lastEval int64
	ewma     map[string]*ewmaState
	churn    map[string]*churnState
	budget   budgetState
	div      divState
}

// sigmaFloor keeps the z-score finite on flat history: a perfectly
// stable series (variance 0) still needs a meaningful "how far below"
// denominator, and 0.005 normalized-entropy units is well under any real
// population's jitter.
const sigmaFloor = 0.005

// Monitor evaluates the rule table against the engine and registry.
// Create with New; it installs itself as the engine's batch observer, so
// evaluation rides the applying goroutine — deterministic under Apply
// replays. All methods are safe for concurrent use.
type Monitor struct {
	engine *streaming.Engine
	reg    *obs.Registry
	logger *slog.Logger
	hist   int

	mEvals *obs.Counter

	// nFiring/nPending shadow the active-alert states as atomics so the
	// registry's GaugeFuncs can read them without m.mu — the registry is
	// snapshotted by evalBudget while m.mu is held, and a mutex-taking
	// gauge would deadlock against it.
	nFiring  atomic.Int64
	nPending atomic.Int64

	// hook is the OnTransition callback; atomic so SetTransitionHook can
	// install it after construction without racing Observe.
	hook atomic.Pointer[func(Alert, string, string)]

	mu       sync.Mutex
	rules    []*ruleState
	active   map[string]*alertState // key: rule "\x00" subject
	resolved []Alert                // oldest first, bounded by hist
	records  int64
	evals    int64
	// trans queues state changes produced under mu; Observe drains and
	// delivers them after unlocking, so a hook that calls back into the
	// monitor cannot deadlock.
	trans []transition
}

// New builds a Monitor over cfg.Engine and installs it as the engine's
// observer. Rules are validated (a name and a known kind are required);
// the returned monitor is already live.
func New(cfg Config) (*Monitor, error) {
	if cfg.Engine == nil {
		return nil, errors.New("watch: Config.Engine is required")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	rules := cfg.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	hist := cfg.History
	if hist <= 0 {
		hist = 32
	}
	m := &Monitor{
		engine: cfg.Engine,
		reg:    reg,
		logger: cfg.Logger,
		hist:   hist,
		active: make(map[string]*alertState),
	}
	for _, r := range rules {
		if r.Name == "" {
			return nil, errors.New("watch: rule without a name")
		}
		switch r.Kind {
		case KindEntropyCollapse, KindClusterChurn, KindErrorBudget, KindRenderDivergence:
		default:
			return nil, fmt.Errorf("watch: rule %q has unknown kind %q", r.Name, r.Kind)
		}
		r.normalize()
		m.rules = append(m.rules, &ruleState{
			rule:  r,
			ewma:  make(map[string]*ewmaState),
			churn: make(map[string]*churnState),
		})
	}
	m.mEvals = reg.Counter("watch_evals_total",
		"Rule evaluations run by the watch monitor.", nil)
	reg.GaugeFunc("watch_alerts_firing",
		"Alerts currently in the firing state.", nil,
		func() float64 { return float64(m.nFiring.Load()) })
	reg.GaugeFunc("watch_alerts_pending",
		"Alerts currently in the pending state.", nil,
		func() float64 { return float64(m.nPending.Load()) })
	if cfg.OnTransition != nil {
		m.SetTransitionHook(cfg.OnTransition)
	}
	cfg.Engine.SetObserver(m.Observe)
	return m, nil
}

// SetTransitionHook installs (or, with nil, removes) the OnTransition
// callback after construction. This breaks the chicken-and-egg between the
// monitor and a diag.Capturer that needs the monitor's snapshot: build the
// monitor first, then hand its hook to the capturer. Safe for concurrent
// use.
func (m *Monitor) SetTransitionHook(fn func(alert Alert, from, to string)) {
	if fn == nil {
		m.hook.Store(nil)
		return
	}
	m.hook.Store(&fn)
}

// RuleByName returns the named rule (normalized form) from the monitor's
// table. The table is immutable after New.
func (m *Monitor) RuleByName(name string) (Rule, bool) {
	for _, rs := range m.rules {
		if rs.rule.Name == name {
			return rs.rule, true
		}
	}
	return Rule{}, false
}

// Observe is the engine's per-batch hook: records is the total applied
// record count. Each rule whose Every-interval has elapsed since its last
// evaluation is evaluated once at this record index. State transitions
// produced by the pass are delivered to the OnTransition hook after the
// lock is released.
func (m *Monitor) Observe(records int64) {
	trans := m.observeLocked(records)
	if len(trans) == 0 {
		return
	}
	if fn := m.hook.Load(); fn != nil {
		for _, t := range trans {
			(*fn)(t.alert, t.from, t.to)
		}
	}
}

func (m *Monitor) observeLocked(records int64) []transition {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.records = records
	for _, rs := range m.rules {
		if records-rs.lastEval < int64(rs.rule.Every) {
			continue
		}
		rs.lastEval = records
		m.evals++
		m.mEvals.Inc()
		switch rs.rule.Kind {
		case KindEntropyCollapse:
			m.evalEntropy(rs, records)
		case KindClusterChurn:
			m.evalChurn(rs, records)
		case KindErrorBudget:
			m.evalBudget(rs, records)
		case KindRenderDivergence:
			m.evalDivergence(rs, records)
		}
	}
	trans := m.trans
	m.trans = nil
	return trans
}

// evalEntropy z-scores each watched diversity row against its EWMA.
// Caller holds m.mu.
func (m *Monitor) evalEntropy(rs *ruleState, records int64) {
	snap := m.engine.Diversity()
	for _, row := range snap.Rows {
		if rs.rule.Vector != "" && row.Name != rs.rule.Vector {
			continue
		}
		if row.Users < 2 {
			continue // a 0/1-user row has no entropy to collapse
		}
		st, ok := rs.ewma[row.Name]
		if !ok {
			st = &ewmaState{}
			rs.ewma[row.Name] = st
		}
		x := row.Normalized
		breach := false
		var z float64
		if st.n >= rs.rule.MinSamples {
			sigma := math.Sqrt(st.vari)
			if sigma < sigmaFloor {
				sigma = sigmaFloor
			}
			z = (st.mean - x) / sigma
			breach = z > rs.rule.ZMax
		}
		if breach {
			m.breach(rs.rule, row.Name, records, z, rs.rule.ZMax, fmt.Sprintf(
				"normalized entropy %.4f fell %.1f floored sigma below EWMA %.4f",
				x, z, st.mean))
			// A collapsing value must not drag the baseline down with it:
			// the EWMA only absorbs evaluations it did not flag, so the
			// alert resolves when the series recovers, not when the mean
			// catches up with the failure.
			continue
		}
		m.clear(rs.rule, row.Name, records)
		diff := x - st.mean
		incr := rs.rule.Alpha * diff
		st.mean += incr
		st.vari = (1 - rs.rule.Alpha) * (st.vari + diff*incr)
		st.n++
	}
}

// evalChurn compares each watched cluster row against its previous
// position. Caller holds m.mu.
func (m *Monitor) evalChurn(rs *ruleState, records int64) {
	snap := m.engine.Clusters()
	for _, row := range snap.Rows {
		if rs.rule.Vector != "" && row.Vector != rs.rule.Vector {
			continue
		}
		st, ok := rs.churn[row.Vector]
		if !ok {
			st = &churnState{}
			rs.churn[row.Vector] = st
		}
		if st.seen {
			dRecords := snap.Records - st.records
			if dRecords < 1 {
				dRecords = 1
			}
			moves := math.Abs(float64(row.Clusters-st.clusters) - float64(row.Users-st.users))
			churn := moves / float64(dRecords)
			if churn > rs.rule.MaxChurn {
				m.breach(rs.rule, row.Vector, records, churn, rs.rule.MaxChurn, fmt.Sprintf(
					"cluster churn %.3f moves/record over last %d records (clusters %d, users %d)",
					churn, dRecords, row.Clusters, row.Users))
			} else {
				m.clear(rs.rule, row.Vector, records)
			}
		}
		st.seen = true
		st.clusters = row.Clusters
		st.users = row.Users
		st.records = snap.Records
	}
}

// evalBudget compares the registry's error/total counter deltas against
// the SLO burn-rate threshold. Caller holds m.mu.
func (m *Monitor) evalBudget(rs *ruleState, records int64) {
	var errSum, totSum float64
	for _, s := range m.reg.Snapshot() {
		if s.Name == rs.rule.ErrorMetric && labelsMatch(s.Labels, rs.rule.ErrorLabels) {
			errSum += s.Value
		}
		if s.Name == rs.rule.TotalMetric && labelsMatch(s.Labels, rs.rule.TotalLabels) {
			totSum += s.Value
		}
	}
	st := &rs.budget
	if st.seen {
		dErr := errSum - st.errors
		dTot := totSum - st.total
		if dTot > 0 {
			burn := (dErr / dTot) / (1 - rs.rule.SLO)
			if burn > rs.rule.MaxBurn {
				m.breach(rs.rule, rs.rule.Name, records, burn, rs.rule.MaxBurn, fmt.Sprintf(
					"error budget burning at %.1fx: %.0f errors over %.0f requests against SLO %.3g",
					burn, dErr, dTot, rs.rule.SLO))
			} else {
				m.clear(rs.rule, rs.rule.Name, records)
			}
		} else {
			m.clear(rs.rule, rs.rule.Name, records)
		}
	}
	st.seen = true
	st.errors = errSum
	st.total = totSum
}

// evalDivergence compares the shadow auditor's divergence counter against
// its previous position and breaches on any increase beyond the rule's
// tolerance (default 0: one confirmed mismatch fires). Caller holds m.mu.
func (m *Monitor) evalDivergence(rs *ruleState, records int64) {
	var sum float64
	for _, s := range m.reg.Snapshot() {
		if s.Name == rs.rule.DivergenceMetric {
			sum += s.Value
		}
	}
	st := &rs.div
	d := sum - st.prev
	if d < 0 {
		d = sum // counter reset: the new value bounds the new divergences
	}
	if d > rs.rule.MaxDivergences {
		m.breach(rs.rule, rs.rule.Name, records, d, rs.rule.MaxDivergences, fmt.Sprintf(
			"%.0f new engine divergences since last evaluation (%s total %.0f)",
			d, rs.rule.DivergenceMetric, sum))
	} else {
		m.clear(rs.rule, rs.rule.Name, records)
	}
	st.prev = sum
}

// queueTransition records one state change for post-unlock delivery.
// Caller holds m.mu. Nothing is queued when no hook is installed, so the
// hookless path stays allocation-free.
func (m *Monitor) queueTransition(a Alert, from, to string) {
	if m.hook.Load() == nil {
		return
	}
	m.trans = append(m.trans, transition{alert: a, from: from, to: to})
}

// labelsMatch reports whether have contains every key=value of want.
func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// breach records one breaching evaluation for (rule, subject), advancing
// the pending→firing lifecycle. Caller holds m.mu.
func (m *Monitor) breach(r Rule, subject string, records int64, value, threshold float64, msg string) {
	key := r.Name + "\x00" + subject
	as, ok := m.active[key]
	if !ok {
		as = &alertState{alert: Alert{
			Rule: r.Name, Kind: r.Kind, Subject: subject,
			State: StatePending, PendingAtRecords: records,
		}}
		m.active[key] = as
		m.nPending.Add(1)
	}
	opened := !ok
	as.breaches++
	as.alert.Value = value
	as.alert.Threshold = threshold
	as.alert.Message = msg
	if opened {
		m.queueTransition(as.alert, "", StatePending)
	}
	if as.alert.State == StatePending && as.breaches >= r.For {
		as.alert.State = StateFiring
		as.alert.FiredAtRecords = records
		m.queueTransition(as.alert, StatePending, StateFiring)
		m.nPending.Add(-1)
		m.nFiring.Add(1)
		m.reg.Counter("watch_alerts_total",
			"Alerts that reached the firing state, by rule.",
			obs.Labels{"rule": r.Name}).Inc()
		if m.logger != nil {
			m.logger.Warn("alert firing", "rule", r.Name, "subject", subject,
				"value", value, "threshold", threshold, "records", records)
		}
	}
}

// clear records one clean evaluation for (rule, subject): a pending alert
// is cancelled, a firing one resolves into the history. Caller holds m.mu.
func (m *Monitor) clear(r Rule, subject string, records int64) {
	key := r.Name + "\x00" + subject
	as, ok := m.active[key]
	if !ok {
		return
	}
	delete(m.active, key)
	if as.alert.State != StateFiring {
		m.nPending.Add(-1)
		return // pending alerts cancel silently
	}
	m.nFiring.Add(-1)
	as.alert.State = StateResolved
	as.alert.ResolvedAtRecords = records
	m.queueTransition(as.alert, StateFiring, StateResolved)
	m.resolved = append(m.resolved, as.alert)
	if len(m.resolved) > m.hist {
		m.resolved = m.resolved[len(m.resolved)-m.hist:]
	}
	if m.logger != nil {
		m.logger.Info("alert resolved", "rule", r.Name, "subject", subject,
			"records", records)
	}
}

// Alerts returns the live alerts (sorted by rule then subject) followed
// by the resolved history, oldest first.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alertsLocked()
}

func (m *Monitor) alertsLocked() []Alert {
	out := make([]Alert, 0, len(m.active)+len(m.resolved))
	for _, as := range m.active {
		out = append(out, as.alert)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Subject < out[j].Subject
	})
	return append(out, m.resolved...)
}

// Snapshot returns the monitor's full served state.
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := Snapshot{
		Records:  m.records,
		Evals:    m.evals,
		Rules:    len(m.rules),
		Resolved: len(m.resolved),
		Alerts:   m.alertsLocked(),
	}
	for _, as := range m.active {
		switch as.alert.State {
		case StateFiring:
			snap.Firing++
		case StatePending:
			snap.Pending++
		}
	}
	return snap
}

// HealthText renders the plain-text /debug/health payload: a one-line
// verdict followed by one line per live alert.
func (m *Monitor) HealthText() string {
	snap := m.Snapshot()
	verdict := "ok"
	switch {
	case snap.Firing > 0:
		verdict = "firing"
	case snap.Pending > 0:
		verdict = "pending"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "status: %s\nrecords: %d\nevals: %d\nrules: %d\nfiring: %d\npending: %d\nresolved: %d\n",
		verdict, snap.Records, snap.Evals, snap.Rules, snap.Firing, snap.Pending, snap.Resolved)
	for _, a := range snap.Alerts {
		if a.State == StateResolved {
			continue
		}
		fmt.Fprintf(&b, "alert state=%s rule=%s subject=%q value=%.4f threshold=%.4f at=%d\n",
			a.State, a.Rule, a.Subject, a.Value, a.Threshold, a.PendingAtRecords)
	}
	return b.String()
}
