package watch_test

// End-to-end monitoring tests that exercise the full wired pipeline —
// collectclient → collectserver → storage/streaming → watch — so they
// live in an external test package (watch itself must not import
// collectserver; collectserver imports watch).

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/collectclient"
	"repro/internal/collectserver"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/streaming"
	"repro/internal/vectors"
	"repro/internal/watch"
)

// exportedSpan is the subset of the exporter's NDJSON span line the tests
// assert on.
type exportedSpan struct {
	Type         string         `json:"type"`
	Name         string         `json:"name"`
	TraceID      string         `json:"traceId"`
	SpanID       string         `json:"spanId"`
	ParentSpanID string         `json:"parentSpanId"`
	Attributes   map[string]any `json:"attributes"`
}

func readSpans(t *testing.T, path string) []exportedSpan {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []exportedSpan
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var sp exportedSpan
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if sp.Type == "span" {
			out = append(out, sp)
		}
	}
	return out
}

// TestTraceFollowsRecordEndToEnd proves one trace id minted by the
// submitting client appears on the server-side request, ingest and
// store-append spans AND on the streaming engine's asynchronous apply
// span — the record is traceable across the process boundary and across
// the queue hand-off.
func TestTraceFollowsRecordEndToEnd(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(filepath.Join(dir, "store.ndjson"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	exportPath := filepath.Join(dir, "telemetry.ndjson")
	exp, err := obs.NewExporter(obs.ExportConfig{
		Path: exportPath, Registry: obs.NewRegistry(), Interval: -1, Service: "e2e",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	eng := streaming.New(streaming.Config{
		Registry: obs.NewRegistry(), Spans: exp, AMIRefreshEvery: -1,
	})
	defer eng.Close()
	srv, err := collectserver.New(collectserver.Config{
		Store: st, Registry: obs.NewRegistry(), Analytics: eng, Trace: exp,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The agent side: one root span for the visit; the client stamps its
	// traceparent on every outgoing request.
	root := obs.NewTrace("agent.submit")
	ctx := obs.ContextWithSpan(context.Background(), root)
	client := collectclient.New(ts.URL)
	sess, err := client.StartSession(ctx, "user-1", "test-agent")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(ctx, []collectserver.FPRecord{
		{Vector: vectors.DC.String(), Iteration: 0, Hash: "00ff00ff"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	root.End()
	exp.ExportSpan(root)

	// The server's request span is exported by deferred middleware that
	// can run after the client saw the response: poll the file.
	want := map[string]bool{
		"agent.submit": false, "http.request": false, "ingest": false,
		"store.append": false, "streaming.apply": false,
	}
	deadline := time.Now().Add(5 * time.Second)
	var spans []exportedSpan
	for {
		spans = readSpans(t, exportPath)
		for k := range want {
			want[k] = false
		}
		for _, sp := range spans {
			if _, ok := want[sp.Name]; ok && sp.TraceID == root.TraceID() {
				want[sp.Name] = true
			}
		}
		all := true
		for _, seen := range want {
			all = all && seen
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("exported spans never completed; have %v, spans: %+v", want, spans)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The apply span's remote parent is the ingest span of the same trace.
	byName := map[string]exportedSpan{}
	for _, sp := range spans {
		if sp.TraceID == root.TraceID() && sp.Name != "http.request" {
			byName[sp.Name] = sp
		}
		// Several http.request spans share the trace (session + submit);
		// any of them proves propagation, checked above.
	}
	if got := byName["streaming.apply"].ParentSpanID; got != byName["ingest"].SpanID {
		t.Fatalf("streaming.apply parent %q, want ingest span %q", got, byName["ingest"].SpanID)
	}
	if got := byName["store.append"].ParentSpanID; got != byName["ingest"].SpanID {
		t.Fatalf("store.append parent %q, want ingest span %q", got, byName["ingest"].SpanID)
	}
}

// alertRule is the deterministic entropy rule shared with the in-package
// golden test (watch.TestEntropyCollapseGolden pins the same index).
func alertRule() watch.Rule {
	return watch.Rule{
		Name: "entropy", Kind: watch.KindEntropyCollapse, Vector: vectors.DC.String(),
		Every: 10, For: 2, MinSamples: 5, Alpha: 0.3, ZMax: 3,
	}
}

// TestAlertsServedInEnvelope replays the seeded low-diversity stream and
// reads the resulting entropy-collapse alert back through the public
// GET /api/v1/analytics/alerts route in the v1 envelope.
func TestAlertsServedInEnvelope(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(filepath.Join(dir, "store.ndjson"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := obs.NewRegistry()
	eng := streaming.New(streaming.Config{Registry: reg, AMIRefreshEvery: -1})
	defer eng.Close()
	mon, err := watch.New(watch.Config{Engine: eng, Registry: reg, Rules: []watch.Rule{alertRule()}})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := collectserver.New(collectserver.Config{
		Store: st, Registry: reg, Analytics: eng, Watch: mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Seeded stream: 300 healthy records then a low-diversity tail, one
	// record per batch so the evaluation sequence is deterministic.
	for i := 0; i < 300; i++ {
		eng.Apply([]storage.Record{{UserID: fmt.Sprintf("u%03d", i),
			Vector: vectors.DC.String(), Hash: fmt.Sprintf("%08x", i)}})
	}
	for i := 0; i < 300; i++ {
		eng.Apply([]storage.Record{{UserID: fmt.Sprintf("t%03d", i),
			Vector: vectors.DC.String(), Hash: "deadbeef"}})
	}

	resp, err := http.Get(ts.URL + "/api/v1/analytics/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alerts route status %d", resp.StatusCode)
	}
	if v := resp.Header.Get("X-API-Version"); v != "1" {
		t.Fatalf("X-API-Version %q", v)
	}
	var envelope struct {
		Data watch.Snapshot `json:"data"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	snap := envelope.Data
	if snap.Records != 600 || snap.Firing != 1 {
		t.Fatalf("snapshot records=%d firing=%d, want 600/1", snap.Records, snap.Firing)
	}
	var firing *watch.Alert
	for i, a := range snap.Alerts {
		if a.State == watch.StateFiring {
			firing = &snap.Alerts[i]
		}
	}
	if firing == nil {
		t.Fatalf("no firing alert in %+v", snap.Alerts)
	}
	if firing.Rule != "entropy" || firing.Subject != vectors.DC.String() {
		t.Fatalf("unexpected alert %+v", *firing)
	}
	// Same golden record index the in-package test pins.
	if firing.FiredAtRecords != 330 {
		t.Fatalf("alert fired at %d, golden 330", firing.FiredAtRecords)
	}

	// The plain-text health endpoint agrees.
	hresp, err := http.Get(ts.URL + "/debug/health")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var buf [4096]byte
	n, _ := hresp.Body.Read(buf[:])
	if got := string(buf[:n]); !containsLine(got, "status: firing") {
		t.Fatalf("/debug/health = %q, want status: firing", got)
	}
}

func containsLine(s, line string) bool {
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		if s[:i] == line {
			return true
		}
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return false
}

// TestAlertsRouteWithoutWatch pins the stable disabled code.
func TestAlertsRouteWithoutWatch(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(filepath.Join(dir, "store.ndjson"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := collectserver.New(collectserver.Config{Store: st, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/api/v1/analytics/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != collectserver.CodeWatchDisabled {
		t.Fatalf("error code %q, want %q", envelope.Error.Code, collectserver.CodeWatchDisabled)
	}
}

// TestWedgedExporterNeverBlocksIngestion wedges the telemetry sink with a
// faultinject writer that torn-writes every line and proves (a) ingestion
// still completes promptly and every submission is accepted, and (b) the
// exporter's drop counters account for every lost span tree.
func TestWedgedExporterNeverBlocksIngestion(t *testing.T) {
	const n = 50
	dir := t.TempDir()
	st, err := storage.Open(filepath.Join(dir, "store.ndjson"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := obs.NewRegistry()
	sched := faultinject.NewSchedule(7, map[faultinject.Class]float64{faultinject.TornWrite: 1}, 0, reg)
	exp, err := obs.NewExporter(obs.ExportConfig{
		Sink:     &faultinject.Writer{W: new(discardWriter), Schedule: sched},
		Registry: reg, Interval: -1, Service: "wedged",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	eng := streaming.New(streaming.Config{Registry: reg, Spans: exp, AMIRefreshEvery: -1})
	defer eng.Close()
	srv, err := collectserver.New(collectserver.Config{
		Store: st, Registry: reg, Analytics: eng, Trace: exp,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	root := obs.NewTrace("agent.submit")
	ctx := obs.ContextWithSpan(context.Background(), root)
	client := collectclient.New(ts.URL)
	sess, err := client.StartSession(ctx, "user-1", "test-agent")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := sess.Submit(ctx, []collectserver.FPRecord{
			{Vector: vectors.DC.String(), Iteration: 0, Hash: fmt.Sprintf("%08x", i)},
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	if elapsed > 15*time.Second {
		t.Fatalf("ingestion against wedged sink took %v", elapsed)
	}
	if got := st.Count(); got != n {
		t.Fatalf("store holds %d records, want %d", got, n)
	}

	// Every exported tree — 1 session request + n submit requests + n
	// apply spans — must be accounted as written or dropped once the
	// worker has drained. The request spans export from deferred
	// middleware, so poll briefly.
	written := reg.Counter("obs_export_batches_written_total", "", nil)
	dropFull := reg.Counter("obs_export_batches_dropped_total", "", obs.Labels{"reason": "buffer_full"})
	dropWrite := reg.Counter("obs_export_batches_dropped_total", "", obs.Labels{"reason": "write_error"})
	wantTrees := int64(1 + n + n)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if written.Value()+dropFull.Value()+dropWrite.Value() >= wantTrees {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounted %d+%d+%d trees, want %d",
				written.Value(), dropFull.Value(), dropWrite.Value(), wantTrees)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if written.Value() != 0 {
		t.Fatalf("wedged sink still wrote %d trees", written.Value())
	}
	if total := dropFull.Value() + dropWrite.Value(); total != wantTrees {
		t.Fatalf("drops %d, want every tree (%d) accounted", total, wantTrees)
	}
}

// discardWriter is io.Discard as a concrete type the faultinject writer
// can wrap.
type discardWriter struct{}

func (*discardWriter) Write(p []byte) (int, error) { return len(p), nil }
