package watch

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
	"repro/internal/vectors"
	"repro/internal/webaudio"
)

// TestRenderDivergenceEndToEnd is the acceptance path for the shadow
// auditor: a deliberately broken block kernel must (1) increment
// vectors_render_divergence_total through the production cache-miss path,
// (2) drive the render_divergence watch rule to firing, and (3) leave a
// flight record naming the offending op on the divergence dump.
func TestRenderDivergenceEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	_, mon := newTestMonitor(t, reg, []Rule{{
		Name: "render-divergence", Kind: KindRenderDivergence, Every: 1,
	}})

	auditor := vectors.NewShadowAuditor(vectors.ShadowConfig{Every: 1, Registry: reg})
	cache := vectors.NewCache()
	cache.SetShadow(auditor)
	runner := vectors.NewRunner(webaudio.DefaultTraits(), 44100)

	// Healthy render first: the counter stays at zero and the rule's first
	// evaluation is clean.
	if _, err := cache.Run("stack-healthy", runner, vectors.DC, 0); err != nil {
		t.Fatal(err)
	}
	mon.Observe(1)
	if snap := mon.Snapshot(); snap.Firing != 0 || snap.Pending != 0 {
		t.Fatalf("healthy engines raised an alert: %+v", snap)
	}

	// Break the compressor's block kernel and render through the production
	// path (new cache key → miss → audit).
	webaudio.SetBlockFault("compressor", 9, 1<<21)
	defer webaudio.SetBlockFault("", 0, 0)
	if _, err := cache.Run("stack-broken", runner, vectors.DC, 1); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("vectors_render_divergence_total", "", nil).Value(); got != 1 {
		t.Fatalf("vectors_render_divergence_total = %d, want 1", got)
	}

	mon.Observe(2)
	snap := mon.Snapshot()
	if snap.Firing != 1 {
		t.Fatalf("render_divergence alert not firing: %+v", snap)
	}
	var alert *Alert
	for i := range snap.Alerts {
		if snap.Alerts[i].Rule == "render-divergence" && snap.Alerts[i].State == StateFiring {
			alert = &snap.Alerts[i]
		}
	}
	if alert == nil {
		t.Fatalf("no firing render-divergence alert in %+v", snap.Alerts)
	}
	if alert.Kind != KindRenderDivergence || alert.Value != 1 {
		t.Fatalf("alert = %+v", alert)
	}

	// The flight-recorder dump names the offending op.
	srv := httptest.NewServer(auditor.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum vectors.ShadowSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Records) != 1 {
		t.Fatalf("flight records = %d, want 1", len(sum.Records))
	}
	rec := sum.Records[0]
	if rec.Divergence.Op != "compressor" || rec.Divergence.Sample != 9 {
		t.Fatalf("flight record did not name the broken kernel: %+v", rec.Divergence)
	}
	if rec.StackKey != "stack-broken" || rec.Vector != "DC" {
		t.Fatalf("flight record context: %+v", rec)
	}
	if rec.Divergence.OpIndex < 0 {
		t.Fatalf("op index missing: %+v", rec.Divergence)
	}

	// Fixing the kernel (clearing the fault) resolves the alert on the next
	// clean evaluation.
	webaudio.SetBlockFault("", 0, 0)
	mon.Observe(3)
	snap = mon.Snapshot()
	if snap.Firing != 0 || snap.Resolved != 1 {
		t.Fatalf("alert did not resolve after fix: %+v", snap)
	}
}
