package watch

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/streaming"
	"repro/internal/vectors"
)

// TestTransitionHookLifecycle drives a divergence rule through
// open→fire→resolve and asserts the hook sees each user-visible state
// change exactly once, outside the monitor lock (the hook calls Snapshot,
// which would deadlock if delivery happened under m.mu).
func TestTransitionHookLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	eng := streaming.New(streaming.Config{Registry: reg, AMIRefreshEvery: -1})
	defer eng.Close()

	type seen struct {
		rule, from, to string
		firing         int
	}
	var got []seen
	mon, err := New(Config{
		Engine:   eng,
		Registry: reg,
		Rules: []Rule{{
			Name: "render-divergence", Kind: KindRenderDivergence,
			Every: 1, For: 2,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.SetTransitionHook(func(a Alert, from, to string) {
		// Calling back into the monitor must not deadlock.
		snap := mon.Snapshot()
		got = append(got, seen{a.Rule, from, to, snap.Firing})
	})

	div := reg.Counter("vectors_render_divergence_total", "", nil)

	div.Inc()
	mon.Observe(1) // breach 1: opens pending
	mon.Observe(2) // clean: cancels pending silently
	div.Inc()
	mon.Observe(3) // breach 1: opens pending again
	div.Inc()
	mon.Observe(4) // breach 2: promotes to firing
	mon.Observe(5) // clean: resolves

	// Expected sequence: open, (silent cancel), open, fire, resolve.
	exp := []struct{ from, to string }{
		{"", StatePending},
		{"", StatePending},
		{StatePending, StateFiring},
		{StateFiring, StateResolved},
	}
	if len(got) != len(exp) {
		t.Fatalf("hook saw %d transitions %+v, want %d", len(got), got, len(exp))
	}
	for i, e := range exp {
		if got[i].from != e.from || got[i].to != e.to {
			t.Errorf("transition %d = %s->%s, want %s->%s",
				i, got[i].from, got[i].to, e.from, e.to)
		}
		if got[i].rule != "render-divergence" {
			t.Errorf("transition %d rule = %q", i, got[i].rule)
		}
	}
	// The firing transition must be observable via Snapshot from inside
	// the hook (delivery happens after the evaluation pass commits).
	if got[2].firing != 1 {
		t.Errorf("Snapshot inside firing hook reports %d firing, want 1", got[2].firing)
	}
}

func TestRuleByName(t *testing.T) {
	reg := obs.NewRegistry()
	eng := streaming.New(streaming.Config{Registry: reg, AMIRefreshEvery: -1})
	defer eng.Close()
	mon, err := New(Config{Engine: eng, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := mon.RuleByName("render-divergence")
	if !ok {
		t.Fatal("RuleByName(render-divergence) not found in DefaultRules")
	}
	if r.Kind != KindRenderDivergence {
		t.Errorf("kind = %q", r.Kind)
	}
	if r.DivergenceMetric == "" {
		t.Error("rule not normalized: DivergenceMetric empty")
	}
	if _, ok := mon.RuleByName("no-such-rule"); ok {
		t.Error("RuleByName(no-such-rule) = true")
	}
}

// TestConfigOnTransition checks the Config-field form of the hook wiring.
func TestConfigOnTransition(t *testing.T) {
	reg := obs.NewRegistry()
	eng := streaming.New(streaming.Config{Registry: reg, AMIRefreshEvery: -1})
	defer eng.Close()
	var fired int
	_, err := New(Config{
		Engine:   eng,
		Registry: reg,
		Rules: []Rule{{
			Name: "render-divergence", Kind: KindRenderDivergence,
			Every: 1, For: 1,
		}},
		OnTransition: func(a Alert, from, to string) {
			if to == StateFiring {
				fired++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg.Counter("vectors_render_divergence_total", "", nil).Inc()
	// The observer evaluates rules at the applied-record count, so drive a
	// real record through the engine.
	eng.Apply([]storage.Record{{UserID: "u0", Vector: vectors.DC.String(), Hash: "cafe"}})
	if fired != 1 {
		t.Fatalf("firing transitions = %d, want 1", fired)
	}
}
