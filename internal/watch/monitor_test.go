package watch

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/streaming"
	"repro/internal/vectors"
)

// goldenEntropyFireAt pins the exact applied-record index at which the
// entropy-collapse watcher fires on the seeded stream below. The stream,
// the rule table, and the record-driven evaluation are all deterministic,
// so this index is a golden value: a drift here means the detector (or
// the engine's entropy math) changed behaviour.
const goldenEntropyFireAt = 330

// rec builds one DC-vector record.
func rec(user, hash string) storage.Record {
	return storage.Record{UserID: user, Vector: vectors.DC.String(), Hash: hash}
}

// lowDiversityStream is the seeded scenario of the golden test: 300
// healthy records (every user unique) followed by a tail where every new
// user submits the same fingerprint — the population's entropy collapses.
func lowDiversityStream() []storage.Record {
	recs := make([]storage.Record, 0, 600)
	for i := 0; i < 300; i++ {
		recs = append(recs, rec(fmt.Sprintf("u%03d", i), fmt.Sprintf("%08x", i)))
	}
	for i := 0; i < 300; i++ {
		recs = append(recs, rec(fmt.Sprintf("t%03d", i), "deadbeef"))
	}
	return recs
}

func newTestMonitor(t *testing.T, reg *obs.Registry, rules []Rule) (*streaming.Engine, *Monitor) {
	t.Helper()
	eng := streaming.New(streaming.Config{Registry: reg, AMIRefreshEvery: -1})
	t.Cleanup(eng.Close)
	mon, err := New(Config{Engine: eng, Registry: reg, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	return eng, mon
}

// TestEntropyCollapseGolden replays the seeded low-diversity stream one
// record at a time and asserts the watcher fires at exactly the golden
// record index, twice over to prove the whole path is deterministic.
func TestEntropyCollapseGolden(t *testing.T) {
	rule := Rule{
		Name: "entropy", Kind: KindEntropyCollapse, Vector: vectors.DC.String(),
		Every: 10, For: 2, MinSamples: 5, Alpha: 0.3, ZMax: 3,
	}
	for round := 0; round < 2; round++ {
		reg := obs.NewRegistry()
		eng, mon := newTestMonitor(t, reg, []Rule{rule})
		firedAt := int64(-1)
		for _, r := range lowDiversityStream() {
			eng.Apply([]storage.Record{r})
			if firedAt < 0 {
				for _, a := range mon.Alerts() {
					if a.State == StateFiring {
						firedAt = a.FiredAtRecords
					}
				}
			}
		}
		if firedAt != goldenEntropyFireAt {
			t.Fatalf("round %d: entropy alert fired at record %d, golden %d",
				round, firedAt, goldenEntropyFireAt)
		}
		snap := mon.Snapshot()
		if snap.Firing != 1 {
			t.Fatalf("round %d: snapshot firing = %d, want 1", round, snap.Firing)
		}
		var alert Alert
		for _, a := range snap.Alerts {
			if a.State == StateFiring {
				alert = a
			}
		}
		if alert.Rule != "entropy" || alert.Kind != KindEntropyCollapse ||
			alert.Subject != vectors.DC.String() {
			t.Fatalf("round %d: unexpected firing alert %+v", round, alert)
		}
		if alert.PendingAtRecords >= alert.FiredAtRecords {
			t.Fatalf("pending at %d not before firing at %d",
				alert.PendingAtRecords, alert.FiredAtRecords)
		}
		if reg.Counter("watch_alerts_total", "", obs.Labels{"rule": "entropy"}).Value() != 1 {
			t.Fatalf("round %d: watch_alerts_total{rule=entropy} != 1", round)
		}
	}
}

// TestClusterChurnFiresAndResolves drives the churn watcher through a
// merge storm (existing users converging on one shared hash) and then a
// calm stretch, checking the full pending→firing→resolved lifecycle.
func TestClusterChurnFiresAndResolves(t *testing.T) {
	rule := Rule{
		Name: "churn", Kind: KindClusterChurn, Vector: vectors.DC.String(),
		Every: 10, For: 1, MaxChurn: 0.5,
	}
	eng, mon := newTestMonitor(t, obs.NewRegistry(), []Rule{rule})

	// 20 users, all unique: baseline evaluation sees no movement.
	for i := 0; i < 20; i++ {
		eng.Apply([]storage.Record{rec(fmt.Sprintf("u%02d", i), fmt.Sprintf("%08x", i))})
	}
	// Merge storm: 10 existing users converge on one hash — 9 cluster
	// merges in 10 records, churn 0.9 > 0.5.
	for i := 0; i < 10; i++ {
		eng.Apply([]storage.Record{rec(fmt.Sprintf("u%02d", i), "beefbeef")})
	}
	var firing *Alert
	for _, a := range mon.Alerts() {
		if a.State == StateFiring && a.Rule == "churn" {
			firing = &a
		}
	}
	if firing == nil {
		t.Fatalf("churn alert did not fire; alerts: %+v", mon.Alerts())
	}
	if firing.Value <= rule.MaxChurn {
		t.Fatalf("firing value %f not above threshold %f", firing.Value, rule.MaxChurn)
	}

	// Calm stretch: one new unique user per record — clusters track users,
	// churn 0 — resolves the alert into the history.
	for i := 0; i < 10; i++ {
		eng.Apply([]storage.Record{rec(fmt.Sprintf("v%02d", i), fmt.Sprintf("aa%06x", i))})
	}
	snap := mon.Snapshot()
	if snap.Firing != 0 {
		t.Fatalf("alert still firing after calm stretch: %+v", snap.Alerts)
	}
	found := false
	for _, a := range snap.Alerts {
		if a.State == StateResolved && a.Rule == "churn" {
			found = true
			if a.ResolvedAtRecords <= a.FiredAtRecords {
				t.Fatalf("resolved at %d not after fired at %d",
					a.ResolvedAtRecords, a.FiredAtRecords)
			}
		}
	}
	if !found {
		t.Fatalf("no resolved churn alert in history: %+v", snap.Alerts)
	}
}

// TestErrorBudgetBurn drives the SLO watcher from registry counters: an
// inter-evaluation error rate far above the budget fires, a clean window
// resolves.
func TestErrorBudgetBurn(t *testing.T) {
	reg := obs.NewRegistry()
	errs := reg.Counter("ingest_errors_total", "", nil)
	total := reg.Counter("ingest_requests_total", "", nil)
	rule := Rule{
		Name: "budget", Kind: KindErrorBudget,
		ErrorMetric: "ingest_errors_total", TotalMetric: "ingest_requests_total",
		SLO: 0.9, MaxBurn: 1, Every: 10, For: 1,
	}
	eng, mon := newTestMonitor(t, reg, []Rule{rule})

	feed := func(n int) {
		for i := 0; i < n; i++ {
			eng.Apply([]storage.Record{rec(fmt.Sprintf("w%08d", i), "0f0f")})
		}
	}
	feed(10) // baseline evaluation
	// 5 errors over 10 requests against a 10% budget: burn 5x.
	errs.Add(5)
	total.Add(10)
	feed(10)
	snap := mon.Snapshot()
	if snap.Firing != 1 {
		t.Fatalf("budget alert not firing: %+v", snap.Alerts)
	}
	// Clean window resolves.
	total.Add(10)
	feed(10)
	if snap = mon.Snapshot(); snap.Firing != 0 || snap.Resolved != 1 {
		t.Fatalf("budget alert not resolved: %+v", snap)
	}
}

// TestPendingCancelsSilently checks a single breach under For=2 never
// fires and leaves no trace once the series recovers.
func TestPendingCancelsSilently(t *testing.T) {
	reg := obs.NewRegistry()
	errs := reg.Counter("e_total", "", nil)
	total := reg.Counter("t_total", "", nil)
	rule := Rule{
		Name: "budget", Kind: KindErrorBudget,
		ErrorMetric: "e_total", TotalMetric: "t_total",
		SLO: 0.9, MaxBurn: 1, Every: 5, For: 2,
	}
	eng, mon := newTestMonitor(t, reg, []Rule{rule})
	feed := func() {
		for i := 0; i < 5; i++ {
			eng.Apply([]storage.Record{rec("u0", "00")})
		}
	}
	feed() // baseline
	errs.Add(9)
	total.Add(10)
	feed() // breach #1 → pending
	if snap := mon.Snapshot(); snap.Pending != 1 || snap.Firing != 0 {
		t.Fatalf("want one pending alert, got %+v", snap)
	}
	total.Add(10)
	feed() // clean → pending cancels
	snap := mon.Snapshot()
	if len(snap.Alerts) != 0 || snap.Resolved != 0 {
		t.Fatalf("pending alert left residue: %+v", snap)
	}
}

// TestHealthText pins the plain-text shape /debug/health serves.
func TestHealthText(t *testing.T) {
	_, mon := newTestMonitor(t, obs.NewRegistry(), DefaultRules())
	txt := mon.HealthText()
	if !strings.HasPrefix(txt, "status: ok\n") {
		t.Fatalf("fresh monitor health = %q", txt)
	}
	for _, want := range []string{"records: 0", "rules: 5", "firing: 0"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("health text missing %q:\n%s", want, txt)
		}
	}
}

// TestRuleValidation checks New rejects bad rule tables.
func TestRuleValidation(t *testing.T) {
	eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer eng.Close()
	if _, err := New(Config{Engine: eng, Registry: obs.NewRegistry(),
		Rules: []Rule{{Name: "x", Kind: "nope"}}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := New(Config{Engine: eng, Registry: obs.NewRegistry(),
		Rules: []Rule{{Kind: KindClusterChurn}}}); err == nil {
		t.Fatal("unnamed rule accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil engine accepted")
	}
}

// TestAlertRefiresAfterResolve: the lifecycle is cyclic, not one-shot — a
// rule whose alert resolved must go pending→firing again on a fresh
// breach, with each firing counted on watch_alerts_total and each
// resolution kept in the history.
func TestAlertRefiresAfterResolve(t *testing.T) {
	rule := Rule{
		Name: "churn", Kind: KindClusterChurn, Vector: vectors.DC.String(),
		Every: 10, For: 1, MaxChurn: 0.5,
	}
	reg := obs.NewRegistry()
	eng, mon := newTestMonitor(t, reg, []Rule{rule})

	calm := func(prefix string) {
		for i := 0; i < 10; i++ {
			eng.Apply([]storage.Record{rec(fmt.Sprintf("%s%02d", prefix, i), fmt.Sprintf("%s%06x", prefix, i))})
		}
	}
	storm := func(prefix, hash string) {
		for i := 0; i < 10; i++ {
			eng.Apply([]storage.Record{rec(fmt.Sprintf("%s%02d", prefix, i), hash)})
		}
	}
	firedTotal := func() int64 {
		return reg.Counter("watch_alerts_total", "", obs.Labels{"rule": "churn"}).Value()
	}

	// Baseline, first storm (users a* converge), first calm stretch.
	calm("aa")
	calm("ab")
	storm("aa", "beefbeef")
	if snap := mon.Snapshot(); snap.Firing != 1 {
		t.Fatalf("first storm did not fire: %+v", snap.Alerts)
	}
	calm("ac")
	snap := mon.Snapshot()
	if snap.Firing != 0 || snap.Resolved != 1 {
		t.Fatalf("first storm did not resolve: %+v", snap)
	}
	if got := firedTotal(); got != 1 {
		t.Fatalf("watch_alerts_total = %d after first cycle, want 1", got)
	}

	// Second storm: the ac* users converge — the same rule must re-fire.
	storm("ac", "cafecafe")
	snap = mon.Snapshot()
	if snap.Firing != 1 {
		t.Fatalf("rule did not re-fire after resolving: %+v", snap)
	}
	if got := firedTotal(); got != 2 {
		t.Fatalf("watch_alerts_total = %d after re-fire, want 2", got)
	}

	// Second calm stretch: both cycles end up in the resolved history.
	calm("ad")
	snap = mon.Snapshot()
	if snap.Firing != 0 || snap.Resolved != 2 {
		t.Fatalf("second cycle did not resolve into history: %+v", snap)
	}
	resolved := 0
	for _, a := range snap.Alerts {
		if a.Rule == "churn" && a.State == StateResolved {
			resolved++
			if a.ResolvedAtRecords <= a.FiredAtRecords {
				t.Fatalf("history entry out of order: %+v", a)
			}
		}
	}
	if resolved != 2 {
		t.Fatalf("resolved history entries = %d, want 2", resolved)
	}
}
