// Package watch is the measurement-health layer over the live pipeline:
// streaming detectors that watch the incremental analytics (internal/
// streaming) and the metrics registry (internal/obs) for the failure
// modes that silently ruin a fingerprinting study — a vector's entropy
// collapsing (a browser update flattening a fingerprint surface, or a
// stuck renderer submitting one hash for everyone), the collation graph
// churning (cluster structure thrashing instead of stabilizing), and the
// ingest error budget burning (the server turning away the population).
//
// A Monitor evaluates a declarative rule table at fixed applied-record
// intervals, driven by the engine's per-batch observer hook rather than
// wall-clock timers, so a seeded replay produces the identical alert
// sequence every run — the property the golden tests pin.
package watch

// Rule kinds: each selects one detector in monitor.go.
const (
	// KindEntropyCollapse tracks per-row normalized entropy from the
	// engine's live diversity table with an EWMA mean/variance and fires
	// when a value falls more than ZMax floored standard deviations below
	// the smoothed mean — the "everyone suddenly hashes alike" failure.
	KindEntropyCollapse = "entropy_collapse"
	// KindClusterChurn tracks per-vector cluster-count movement between
	// evaluations and fires when merges outpace population growth:
	// |Δclusters − Δusers| per applied record above MaxChurn.
	KindClusterChurn = "cluster_churn"
	// KindErrorBudget reads two counter series from the metrics registry
	// (errors and totals) and fires when the inter-evaluation error rate
	// burns the SLO's budget faster than MaxBurn — the standard
	// burn-rate alert, driven by record progress instead of wall time.
	KindErrorBudget = "error_budget"
	// KindRenderDivergence watches the shadow auditor's divergence counter
	// and fires the moment new block-vs-reference engine mismatches appear
	// — a confirmed divergence means every fingerprint rendered since is
	// suspect, so the threshold defaults to zero tolerance.
	KindRenderDivergence = "render_divergence"
)

// Rule is one declarative watcher. Zero fields take the documented
// defaults in normalize(); unused fields for a kind are ignored.
type Rule struct {
	// Name identifies the rule in alerts, metrics and logs. Required.
	Name string
	// Kind selects the detector (Kind* constants). Required.
	Kind string
	// Vector restricts entropy/churn rules to one diversity/cluster row
	// by name ("" watches every row, one alert subject per row).
	Vector string
	// Every evaluates the rule once per Every applied records
	// (default 64).
	Every int
	// For requires this many consecutive breaching evaluations before a
	// pending alert fires (default 1: fire on first breach).
	For int

	// MinSamples is how many evaluations the EWMA must absorb before
	// z-scores are trusted (entropy rules only; default 8).
	MinSamples int
	// Alpha is the EWMA smoothing factor in (0,1] (default 0.3).
	Alpha float64
	// ZMax is the collapse threshold in floored standard deviations
	// (default 4).
	ZMax float64

	// MaxChurn is the churn-rate threshold in cluster moves per applied
	// record (churn rules only; default 0.5).
	MaxChurn float64

	// ErrorMetric / TotalMetric name the registry counter families an
	// error-budget rule reads; series are summed over every sample whose
	// labels contain ErrorLabels / TotalLabels as a subset.
	ErrorMetric string
	TotalMetric string
	ErrorLabels map[string]string
	TotalLabels map[string]string
	// SLO is the success objective in (0,1), e.g. 0.99 (default 0.99);
	// the error budget is 1−SLO.
	SLO float64
	// MaxBurn is the burn-rate threshold: 1.0 means errors arrive exactly
	// at the rate that exhausts the budget (default 1).
	MaxBurn float64

	// DivergenceMetric names the counter a render-divergence rule watches
	// (default "vectors_render_divergence_total"). The rule breaches when
	// the counter's inter-evaluation increase exceeds MaxDivergences —
	// which defaults to 0, so a single confirmed mismatch fires.
	DivergenceMetric string
	MaxDivergences   float64
}

// normalize fills a rule's defaulted fields in place.
func (r *Rule) normalize() {
	if r.Every <= 0 {
		r.Every = 64
	}
	if r.For <= 0 {
		r.For = 1
	}
	if r.MinSamples <= 0 {
		r.MinSamples = 8
	}
	if r.Alpha <= 0 || r.Alpha > 1 {
		r.Alpha = 0.3
	}
	if r.ZMax <= 0 {
		r.ZMax = 4
	}
	if r.MaxChurn <= 0 {
		r.MaxChurn = 0.5
	}
	if r.SLO <= 0 || r.SLO >= 1 {
		r.SLO = 0.99
	}
	if r.MaxBurn <= 0 {
		r.MaxBurn = 1
	}
	if r.DivergenceMetric == "" {
		r.DivergenceMetric = "vectors_render_divergence_total"
	}
}

// DefaultRules is the stock rule table a `fpserver -watch` run uses: one
// entropy watcher over every diversity row, one churn watcher over every
// vector, and an ingest error-budget watcher over the server's request
// counters (5xx responses against all responses on the submission route).
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "entropy-collapse",
			Kind: KindEntropyCollapse,
			For:  2,
		},
		{
			Name: "cluster-churn",
			Kind: KindClusterChurn,
			For:  2,
		},
		{
			Name:        "ingest-error-budget",
			Kind:        KindErrorBudget,
			ErrorMetric: "fpserver_requests_total",
			ErrorLabels: map[string]string{"route": "/api/v1/fingerprints", "class": "5xx"},
			TotalMetric: "fpserver_requests_total",
			TotalLabels: map[string]string{"route": "/api/v1/fingerprints"},
		},
		{
			Name: "render-divergence",
			Kind: KindRenderDivergence,
		},
		{
			// Burn-rate alert over the verification decision latency SLO:
			// fpserver increments the slow counter for every decision served
			// over Config.VerifySLO, so a sustained slow fraction above 1%
			// (SLO 0.99) burns the budget and fires. Inert without -verify —
			// both series then stay absent and the rule never breaches.
			Name:        "verify-latency",
			Kind:        KindErrorBudget,
			ErrorMetric: "fpserver_verify_slow_total",
			TotalMetric: "fpserver_verify_requests_total",
			SLO:         0.99,
		},
	}
}
