package faultinject

import "io"

// Writer wraps an io.Writer with the storage fault classes: TornWrite
// persists a prefix of the buffer and then fails (a crash mid write),
// Corrupt flips a byte before it reaches disk. Wrapping a store's backing
// file with it produces exactly the torn-tail artifacts storage.Recover
// must salvage.
type Writer struct {
	// W receives the (possibly mangled) bytes. Required.
	W io.Writer
	// Schedule decides which writes fault. Required.
	Schedule *Schedule
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.Schedule.Hit(TornWrite) {
		n := len(p) / 2
		if n > 0 {
			if m, err := w.W.Write(p[:n]); err != nil {
				return m, err
			}
		}
		return n, &InjectedError{Class: TornWrite}
	}
	if w.Schedule.Hit(Corrupt) && len(p) > 0 {
		q := append([]byte(nil), p...)
		q[len(q)/2] ^= 0xff
		return w.W.Write(q)
	}
	return w.W.Write(p)
}
