package faultinject

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Transport is an http.RoundTripper that injects the schedule's transport
// fault classes around a base transport. Drop, Delay and HTTP500 fire
// before the request reaches the server; DropResponse, Truncate and Corrupt
// fire after the server has already processed it — the cases that force the
// pipeline to prove exactly-once ingestion.
type Transport struct {
	// Base performs real round trips (nil = http.DefaultTransport).
	Base http.RoundTripper
	// Schedule decides which calls fault. Required.
	Schedule *Schedule
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	s := t.Schedule
	if s.Hit(Delay) {
		select {
		case <-time.After(s.delay):
		case <-req.Context().Done():
			closeBody(req)
			return nil, req.Context().Err()
		}
	}
	if s.Hit(Drop) {
		closeBody(req)
		return nil, &InjectedError{Class: Drop}
	}
	if s.Hit(HTTP500) {
		// Consume the body like a real proxy would before erroring out.
		closeBody(req)
		return syntheticResponse(req, http.StatusServiceUnavailable,
			`{"error":"injected upstream failure"}`), nil
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if s.Hit(DropResponse) {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &InjectedError{Class: DropResponse}
	}
	if s.Hit(Truncate) {
		return mangleBody(resp, func(b []byte) []byte { return b[:len(b)/2] }), nil
	}
	if s.Hit(Corrupt) {
		return mangleBody(resp, func(b []byte) []byte {
			if len(b) > 0 {
				b[len(b)/2] ^= 0xff
			}
			return b
		}), nil
	}
	return resp, nil
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
}

// syntheticResponse fabricates a response that never touched the server.
func syntheticResponse(req *http.Request, code int, body string) *http.Response {
	return &http.Response{
		Status:        strconv.Itoa(code) + " " + http.StatusText(code),
		StatusCode:    code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// mangleBody reads the full response body, applies f, and hands back the
// response with the mangled body. The original Content-Length header is
// kept, so truncation looks like a connection cut mid-transfer.
func mangleBody(resp *http.Response, f func([]byte) []byte) *http.Response {
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	b = f(append([]byte(nil), b...))
	resp.Body = io.NopCloser(bytes.NewReader(b))
	return resp
}

// Listener wraps a net.Listener: accepted connections may be reset
// immediately (the Drop class), simulating clients or middleboxes cutting
// fresh connections.
type Listener struct {
	net.Listener
	// Schedule decides which accepted connections are reset. Required.
	Schedule *Schedule
}

// Accept implements net.Listener, transparently resetting doomed
// connections and accepting the next one.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return c, err
		}
		if !l.Schedule.Hit(Drop) {
			return c, nil
		}
		c.Close()
	}
}
