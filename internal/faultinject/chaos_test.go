package faultinject_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/collectclient"
	"repro/internal/collectserver"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/streaming"
	"repro/internal/study"
	"repro/internal/vectors"
)

// The chaos suite drives the full pipeline — fpagent-style client →
// collectserver → storage → study analysis — in-process while a seeded
// fault schedule drops, delays, truncates, corrupts, and 5xxes the
// traffic, and a simulated process kill tears the store's active segment
// mid-write. The pipeline must come out exactly-once on disk and the
// analysis byte-identical to a fault-free run.

const (
	chaosSeed  = 20210301
	chaosUsers = 8
	chaosIters = 3
	chunkSize  = 7
)

// chaosDataset renders the deterministic population every pipeline run
// submits.
func chaosDataset(t *testing.T) *study.Dataset {
	t.Helper()
	ds, err := study.Run(study.Config{
		Seed: chaosSeed, Users: chaosUsers, Iterations: chaosIters,
		Parallelism: 1, IDPrefix: "chaos",
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// userBatches groups the dataset's records per user, in dataset order, so
// every pipeline run submits the same bytes in the same order.
func userBatches(ds *study.Dataset) (users []string, batches map[string][]collectserver.FPRecord) {
	recs := ds.ToRecords(time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC))
	batches = make(map[string][]collectserver.FPRecord)
	for _, r := range recs {
		if _, ok := batches[r.UserID]; !ok {
			users = append(users, r.UserID)
		}
		batches[r.UserID] = append(batches[r.UserID], collectserver.FPRecord{
			Vector:    r.Vector,
			Iteration: r.Iteration,
			Hash:      r.Hash,
			Sum:       r.Sum,
			Surfaces:  r.Surfaces,
		})
	}
	return users, batches
}

// pipeline is one running collection stack whose client traffic passes
// through an optional fault schedule.
type pipeline struct {
	store  *storage.Store
	ts     *httptest.Server
	client *collectclient.Client
}

func startPipeline(t *testing.T, path string, sched *faultinject.Schedule) *pipeline {
	t.Helper()
	st, err := storage.Open(path, storage.Options{MaxSegmentBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := collectserver.New(collectserver.Config{
		Store: st,
		// The chaos run hammers one IP with retries; shedding stays on but
		// far from the deterministic schedule's traffic so the faults under
		// test are the injected ones.
		SubmitRatePerSec:  1e6,
		SessionRatePerMin: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	var rt http.RoundTripper = http.DefaultTransport
	if sched != nil {
		rt = &faultinject.Transport{Base: rt, Schedule: sched}
	}
	client := collectclient.New(ts.URL,
		collectclient.WithHTTPClient(&http.Client{Transport: rt, Timeout: 10 * time.Second}),
		collectclient.WithRetries(10),
		collectclient.WithBackoff(time.Millisecond),
	)
	return &pipeline{store: st, ts: ts, client: client}
}

func (p *pipeline) stop() {
	p.ts.Close()
	p.store.Close()
}

// submitUsers pushes each listed user's records through the client in
// fixed chunks, behaving like a real agent: an auth failure (a corrupted
// session token, an expired session) triggers a fresh consent handshake,
// any other failure retries the same chunk in the same session, where the
// content-derived idempotency key guarantees at-most-once storage.
func submitUsers(t *testing.T, p *pipeline, users []string, batches map[string][]collectserver.FPRecord) {
	t.Helper()
	ctx := context.Background()
	for _, u := range users {
		var sess *collectclient.Session
		recs := batches[u]
		attempts := 0
		for off := 0; off < len(recs); {
			if attempts++; attempts > 100 {
				t.Fatalf("user %s: stuck after %d attempts", u, attempts)
			}
			if sess == nil {
				s, err := p.client.StartSession(ctx, u, "chaos-agent/1.0")
				if err != nil {
					continue // transient: handshake again
				}
				sess = s
			}
			n := chunkSize
			if rest := len(recs) - off; rest < n {
				n = rest
			}
			err := sess.Submit(ctx, recs[off:off+n])
			switch {
			case err == nil:
				off += n
			case collectclient.StatusCode(err) == http.StatusUnauthorized:
				sess = nil // garbled or lost session: re-handshake
			default:
				// transient: retry the chunk; the idempotency key keeps a
				// half-landed batch from double-storing
			}
		}
	}
}

// analysisBytes renders the downstream analyses the paper's evaluation
// rests on into a deterministic byte string.
func analysisBytes(t *testing.T, recs []storage.Record) []byte {
	t.Helper()
	ds, err := study.FromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	ds.Parallelism = 1
	var buf bytes.Buffer
	for _, v := range vectors.All {
		fmt.Fprintf(&buf, "labels[%s]=%v\n", v, ds.Labels(v))
	}
	for _, row := range ds.Table2() {
		fmt.Fprintf(&buf, "table2 %+v\n", row)
	}
	ami, err := ds.PairwiseVectorAMI()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "ami=%v\n", ami)
	return buf.Bytes()
}

// recordKey identifies a logical observation; exactly-once means no key
// repeats and every expected key is present.
func recordKey(r storage.Record) string {
	return fmt.Sprintf("%s|%s|%d|%s", r.UserID, r.Vector, r.Iteration, r.Hash)
}

func sortedKeys(recs []storage.Record) []string {
	keys := make([]string, len(recs))
	for i, r := range recs {
		keys[i] = recordKey(r)
	}
	sort.Strings(keys)
	return keys
}

func TestChaosPipelineExactlyOnce(t *testing.T) {
	ds := chaosDataset(t)
	users, batches := userBatches(ds)

	// Fault-free reference run.
	cleanPath := filepath.Join(t.TempDir(), "clean.ndjson")
	clean := startPipeline(t, cleanPath, nil)
	submitUsers(t, clean, users, batches)
	cleanRecs, err := clean.store.All()
	if err != nil {
		t.Fatal(err)
	}
	clean.stop()
	wantKeys := sortedKeys(cleanRecs)
	wantAnalysis := analysisBytes(t, cleanRecs)

	// Chaotic run: every network fault class live, plus a process kill
	// between the two halves of the population that tears the store file.
	reg := obs.NewRegistry()
	sched, err := faultinject.ParseSpec(
		"seed=11,drop=0.08,dropresp=0.06,delay=0.08:1ms,http500=0.08,truncate=0.05,corrupt=0.05",
		reg)
	if err != nil {
		t.Fatal(err)
	}
	chaosPath := filepath.Join(t.TempDir(), "chaos.ndjson")
	p := startPipeline(t, chaosPath, sched)
	half := len(users) / 2
	submitUsers(t, p, users[:half], batches)
	p.stop() // "kill" the process between acked batches

	// The kill interrupted an append whose ack never reached the client:
	// tear a half-record onto the active segment through the fault writer.
	f, err := os.OpenFile(chaosPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn, err := faultinject.ParseSpec("seed=1,torn=1.0", reg)
	if err != nil {
		t.Fatal(err)
	}
	tw := &faultinject.Writer{W: f, Schedule: torn}
	if _, err := tw.Write([]byte(`{"session_id":"s","user_id":"lost","vector":"DC","iteration":0,` +
		`"hash":"deadbeef","received_at":"2021-03-01T00:00:00Z"}` + "\n")); !faultinject.IsInjected(err) {
		t.Fatalf("torn write not injected: %v", err)
	}
	f.Close()

	// Restart: recovery must drop the torn tail, then the remaining users
	// (and the batch whose ack was lost) are resubmitted.
	p2 := startPipeline(t, chaosPath, sched)
	rep, err := p2.store.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedBytes == 0 {
		t.Error("recovery dropped no bytes despite the torn tail")
	}
	submitUsers(t, p2, users[half:], batches)
	chaosRecs, err := p2.store.All()
	if err != nil {
		t.Fatal(err)
	}
	p2.stop()

	// Exactly-once: the chaotic store holds precisely the reference set.
	gotKeys := sortedKeys(chaosRecs)
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("chaotic store has %d records, clean run has %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("record set diverges at %d: got %q want %q", i, gotKeys[i], wantKeys[i])
		}
	}
	seen := make(map[string]bool, len(gotKeys))
	for _, k := range gotKeys {
		if seen[k] {
			t.Fatalf("record %q stored twice", k)
		}
		seen[k] = true
	}

	// Byte-identical analysis: the faults must be invisible downstream.
	gotAnalysis := analysisBytes(t, chaosRecs)
	if !bytes.Equal(gotAnalysis, wantAnalysis) {
		t.Errorf("analysis output diverges under faults:\nclean:\n%s\nchaos:\n%s",
			wantAnalysis, gotAnalysis)
	}

	// Every fault class must actually have fired, and be observable
	// through the obs registry the schedules were registered on.
	classes := []faultinject.Class{
		faultinject.Drop, faultinject.DropResponse, faultinject.Delay,
		faultinject.HTTP500, faultinject.Truncate, faultinject.Corrupt,
	}
	for _, c := range classes {
		if sched.Injected(c) < 1 {
			t.Errorf("fault class %v never fired; widen the schedule", c)
		}
	}
	if torn.Injected(faultinject.TornWrite) < 1 {
		t.Error("torn-write fault never fired")
	}

	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	exp, err := obs.ParseExposition(rr.Body)
	if err != nil {
		t.Fatalf("exposition rejected: %v", err)
	}
	for _, c := range classes {
		if v := expositionValue(exp, "faultinject_injected_total", c.String()); v < 1 {
			t.Errorf("faultinject_injected_total{fault=%q} = %v, want ≥ 1", c.String(), v)
		}
	}
	if v := expositionValue(exp, "faultinject_injected_total", faultinject.TornWrite.String()); v < 1 {
		t.Errorf("faultinject_injected_total{fault=\"torn-write\"} = %v, want ≥ 1", v)
	}
}

// shardedPipeline is one running collection stack persisting into a
// user-partitioned shard.Stores instead of a single store file.
type shardedPipeline struct {
	stores *shard.Stores
	ts     *httptest.Server
	client *collectclient.Client
}

func startShardedPipeline(t *testing.T, base string, n int, sched *faultinject.Schedule) *shardedPipeline {
	t.Helper()
	sst, err := shard.OpenStores(base, n, storage.Options{MaxSegmentBytes: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := collectserver.New(collectserver.Config{
		Store:             sst,
		SubmitRatePerSec:  1e6,
		SessionRatePerMin: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	var rt http.RoundTripper = http.DefaultTransport
	if sched != nil {
		rt = &faultinject.Transport{Base: rt, Schedule: sched}
	}
	client := collectclient.New(ts.URL,
		collectclient.WithHTTPClient(&http.Client{Transport: rt, Timeout: 10 * time.Second}),
		collectclient.WithRetries(10),
		collectclient.WithBackoff(time.Millisecond),
	)
	return &shardedPipeline{stores: sst, ts: ts, client: client}
}

func (p *shardedPipeline) stop() {
	p.ts.Close()
	p.stores.Close()
}

func (p *shardedPipeline) submit(t *testing.T, users []string, batches map[string][]collectserver.FPRecord) {
	t.Helper()
	submitUsers(t, &pipeline{ts: p.ts, client: p.client}, users, batches)
}

// TestChaosShardedPipelineExactlyOnce runs the chaos pipeline against a
// 3-shard store: the same network fault classes, a process kill with a
// torn append on one specific shard's active file, a second kill midway
// through the replayed submissions, and per-shard Recover() on every
// restart. The partitioned store must come out exactly-once and the
// router-merged analytics byte-identical to a fault-free single engine.
func TestChaosShardedPipelineExactlyOnce(t *testing.T) {
	const nShards = 3
	ds := chaosDataset(t)
	users, batches := userBatches(ds)

	// Fault-free single-store reference run.
	cleanPath := filepath.Join(t.TempDir(), "clean.ndjson")
	clean := startPipeline(t, cleanPath, nil)
	submitUsers(t, clean, users, batches)
	cleanRecs, err := clean.store.All()
	if err != nil {
		t.Fatal(err)
	}
	clean.stop()
	wantKeys := sortedKeys(cleanRecs)
	wantAnalysis := analysisBytes(t, cleanRecs)

	reg := obs.NewRegistry()
	sched, err := faultinject.ParseSpec(
		"seed=13,drop=0.08,dropresp=0.06,delay=0.08:1ms,http500=0.08,truncate=0.05,corrupt=0.05",
		reg)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "chaos.ndjson")
	p := startShardedPipeline(t, base, nShards, sched)
	half := len(users) / 2
	p.submit(t, users[:half], batches)
	p.stop() // first "kill": between acked batches

	// The kill interrupted an append to shard 1 whose ack never reached
	// the client: tear a half-record onto that shard's active file.
	tornShard := 1
	f, err := os.OpenFile(shard.StorePath(base, tornShard), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn, err := faultinject.ParseSpec("seed=2,torn=1.0", reg)
	if err != nil {
		t.Fatal(err)
	}
	tw := &faultinject.Writer{W: f, Schedule: torn}
	if _, err := tw.Write([]byte(`{"session_id":"s","user_id":"lost","vector":"DC","iteration":0,` +
		`"hash":"deadbeef","received_at":"2021-03-01T00:00:00Z","seq":999999}` + "\n")); !faultinject.IsInjected(err) {
		t.Fatalf("torn write not injected: %v", err)
	}
	f.Close()

	// Restart: per-shard recovery must drop exactly the torn shard's tail.
	p2 := startShardedPipeline(t, base, nShards, sched)
	reps, err := p2.stores.Recover()
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if i == tornShard && rep.DroppedBytes == 0 {
			t.Errorf("shard %d recovery dropped no bytes despite the torn tail", i)
		}
		if i != tornShard && rep.DroppedBytes != 0 {
			t.Errorf("shard %d recovery dropped %d bytes from an untorn file", i, rep.DroppedBytes)
		}
	}

	// Second "kill": the replayed submission itself dies midway.
	threeQ := half + (len(users)-half)/2
	p2.submit(t, users[half:threeQ], batches)
	p2.stop()

	p3 := startShardedPipeline(t, base, nShards, sched)
	if _, err := p3.stores.Recover(); err != nil {
		t.Fatal(err)
	}
	p3.submit(t, users[threeQ:], batches)
	chaosRecs, err := p3.stores.All()
	if err != nil {
		t.Fatal(err)
	}

	// Every record must live on the shard that owns its user.
	for i := 0; i < nShards; i++ {
		recs, err := p3.stores.Shard(i).All()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if shard.Of(r.UserID, nShards) != i {
				t.Fatalf("shard %d holds record for user %s owned by shard %d",
					i, r.UserID, shard.Of(r.UserID, nShards))
			}
		}
	}
	p3.stop()

	// Exactly-once across all shards: precisely the reference record set.
	gotKeys := sortedKeys(chaosRecs)
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("sharded chaotic store has %d records, clean run has %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("record set diverges at %d: got %q want %q", i, gotKeys[i], wantKeys[i])
		}
	}
	seen := make(map[string]bool, len(gotKeys))
	for _, k := range gotKeys {
		if seen[k] {
			t.Fatalf("record %q stored twice", k)
		}
		seen[k] = true
	}

	// Byte-identical batch analysis downstream of the partitioned store.
	gotAnalysis := analysisBytes(t, chaosRecs)
	if !bytes.Equal(gotAnalysis, wantAnalysis) {
		t.Errorf("analysis output diverges under sharded faults:\nclean:\n%s\nchaos:\n%s",
			wantAnalysis, gotAnalysis)
	}

	// Byte-identical merged streaming analytics: a router rebuilt from the
	// chaotic sharded store must serve what a single engine over the clean
	// run serves.
	eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer eng.Close()
	eng.Apply(cleanRecs)
	eng.RefreshAMI()
	rt, err := shard.NewRouter(shard.Config{
		Shards: nShards,
		Engine: streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Bootstrap(chaosRecs)
	rt.RefreshAMI()
	for _, pair := range []struct {
		name           string
		single, merged any
	}{
		{"diversity", eng.Diversity(), rt.Diversity()},
		{"clusters", eng.Clusters(), rt.Clusters()},
		{"stability", eng.Stability(), rt.Stability()},
		{"ami", eng.AMI(), rt.AMI()},
	} {
		sb, err := json.Marshal(pair.single)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := json.Marshal(pair.merged)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sb, mb) {
			t.Errorf("merged %s diverges from clean single engine:\nclean: %s\nchaos: %s",
				pair.name, sb, mb)
		}
	}

	if torn.Injected(faultinject.TornWrite) < 1 {
		t.Error("torn-write fault never fired")
	}
}

// expositionValue extracts one labelled counter from a parsed exposition.
func expositionValue(exp *obs.Exposition, name, fault string) float64 {
	for _, s := range exp.Samples {
		if s.Name == name && s.Labels["fault"] == fault {
			return s.Value
		}
	}
	return -1
}
