// Package faultinject is a seeded, deterministic fault-injection layer for
// exercising the collection pipeline under failure: an http.RoundTripper
// that drops, delays, truncates, corrupts, and 5xxs requests, a net.Listener
// that resets fresh connections, and an io.Writer that tears and corrupts
// writes — all according to a reproducible schedule.
//
// Determinism: every fault decision is a pure function of (seed, fault
// class, per-class call index), so the nth Drop decision is identical across
// runs regardless of goroutine interleaving. That makes chaos failures
// replayable: re-running with the same spec re-injects the same faults at
// the same points of each class's call sequence.
//
// Every injected fault increments the faultinject_injected_total{fault=...}
// counter on the schedule's obs registry, so a /metrics scrape shows exactly
// which failures a run survived.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Class identifies one fault class of a schedule.
type Class int

const (
	// Drop fails the request before it reaches the server (connection lost).
	Drop Class = iota
	// DropResponse delivers the request but loses the response — the
	// duplicate-maker: the server did the work, the client can't know.
	DropResponse
	// Delay sleeps before forwarding the request.
	Delay
	// HTTP500 returns a synthetic 503 without reaching the server (an
	// upstream proxy or load balancer failing).
	HTTP500
	// Truncate cuts the response body short mid-stream.
	Truncate
	// Corrupt flips a byte of the payload (response body or written bytes).
	Corrupt
	// TornWrite persists a prefix of the buffer, then fails (a crash mid
	// write).
	TornWrite
	numClasses
)

var classNames = [numClasses]string{
	"drop", "drop-response", "delay", "http500", "truncate", "corrupt", "torn-write",
}

func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return "unknown"
	}
	return classNames[c]
}

// InjectedError is the error returned for transport-level injected faults.
type InjectedError struct {
	// Class is the fault class that fired.
	Class Class
}

func (e *InjectedError) Error() string {
	return "faultinject: injected " + e.Class.String()
}

// IsInjected reports whether err was produced by this package.
func IsInjected(err error) bool {
	_, ok := err.(*InjectedError)
	return ok
}

// Schedule decides, deterministically, which calls a fault fires on. The
// zero probability for every class makes a Schedule a no-op. Safe for
// concurrent use.
type Schedule struct {
	seed     int64
	probs    [numClasses]float64
	delay    time.Duration
	calls    [numClasses]atomic.Uint64
	injected [numClasses]atomic.Uint64
	counters [numClasses]*obs.Counter
}

// NewSchedule builds a schedule with the given seed and per-class
// probabilities. Metrics register on reg (nil = obs.Default).
func NewSchedule(seed int64, probs map[Class]float64, delay time.Duration, reg *obs.Registry) *Schedule {
	s := &Schedule{seed: seed, delay: delay}
	for c, p := range probs {
		if c >= 0 && c < numClasses {
			s.probs[c] = p
		}
	}
	if s.delay <= 0 {
		s.delay = 5 * time.Millisecond
	}
	if reg == nil {
		reg = obs.Default
	}
	for c := Class(0); c < numClasses; c++ {
		s.counters[c] = reg.Counter("faultinject_injected_total",
			"Faults injected by the chaos schedule, by class.",
			obs.Labels{"fault": c.String()})
	}
	return s
}

// ParseSpec parses a fault schedule from its textual form:
//
//	seed=7,drop=0.1,dropresp=0.05,delay=0.1:20ms,http500=0.1,truncate=0.05,corrupt=0.02,torn=0.5
//
// Every field is optional; unknown keys are errors. Probabilities are in
// [0,1]. The delay field takes prob:duration. Metrics register on reg
// (nil = obs.Default).
func ParseSpec(spec string, reg *obs.Registry) (*Schedule, error) {
	var (
		seed  int64 = 1
		delay time.Duration
		probs = map[Class]float64{}
	)
	keys := map[string]Class{
		"drop": Drop, "dropresp": DropResponse, "delay": Delay,
		"http500": HTTP500, "truncate": Truncate, "corrupt": Corrupt,
		"torn": TornWrite,
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: field %q is not key=value", field)
		}
		if k == "seed" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			seed = n
			continue
		}
		c, ok := keys[k]
		if !ok {
			return nil, fmt.Errorf("faultinject: unknown fault class %q", k)
		}
		pStr := v
		if c == Delay {
			if p, d, ok := strings.Cut(v, ":"); ok {
				dur, err := time.ParseDuration(d)
				if err != nil {
					return nil, fmt.Errorf("faultinject: bad delay duration %q: %v", d, err)
				}
				delay, pStr = dur, p
			}
		}
		p, err := strconv.ParseFloat(pStr, 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("faultinject: probability %q for %s out of [0,1]", pStr, c)
		}
		probs[c] = p
	}
	return NewSchedule(seed, probs, delay, reg), nil
}

// Hit consumes one decision for class c and reports whether the fault
// fires. The outcome depends only on (seed, c, how many times c was asked
// before), never on timing.
func (s *Schedule) Hit(c Class) bool {
	n := s.calls[c].Add(1) - 1
	if s.probs[c] <= 0 {
		return false
	}
	x := splitmix64(uint64(s.seed) ^ (uint64(c)+1)*0x9e3779b97f4a7c15 ^ splitmix64(n))
	if float64(x>>11)/(1<<53) >= s.probs[c] {
		return false
	}
	s.injected[c].Add(1)
	s.counters[c].Inc()
	return true
}

// DelayDuration returns the sleep applied when Delay fires.
func (s *Schedule) DelayDuration() time.Duration { return s.delay }

// Injected returns how many faults of class c have fired so far.
func (s *Schedule) Injected(c Class) uint64 { return s.injected[c].Load() }

// TotalInjected sums fired faults across every class.
func (s *Schedule) TotalInjected() uint64 {
	var total uint64
	for c := Class(0); c < numClasses; c++ {
		total += s.injected[c].Load()
	}
	return total
}

// String summarizes injected-fault counts, for logs and test failure
// messages.
func (s *Schedule) String() string {
	parts := make([]string, 0, numClasses)
	for c := Class(0); c < numClasses; c++ {
		if n := s.injected[c].Load(); n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, n))
		}
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "no faults injected"
	}
	return strings.Join(parts, " ")
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash that
// turns (seed, class, index) into an independent uniform draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
