package faultinject

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestScheduleDeterminism(t *testing.T) {
	spec := "seed=42,drop=0.3,dropresp=0.1,http500=0.2,truncate=0.15,corrupt=0.05,torn=0.5"
	draw := func() []bool {
		s, err := ParseSpec(spec, obs.NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 200; i++ {
			for c := Class(0); c < numClasses; c++ {
				out = append(out, s.Hit(c))
			}
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical schedules", i)
		}
	}
	var any bool
	for _, v := range a {
		any = any || v
	}
	if !any {
		t.Fatal("schedule with high probabilities injected nothing in 200 rounds")
	}
}

func TestScheduleRates(t *testing.T) {
	s := NewSchedule(7, map[Class]float64{Drop: 0.25}, 0, obs.NewRegistry())
	const n = 10000
	for i := 0; i < n; i++ {
		s.Hit(Drop)
	}
	got := float64(s.Injected(Drop)) / n
	if got < 0.2 || got > 0.3 {
		t.Errorf("drop rate %.3f, want ≈0.25", got)
	}
	if s.Injected(Corrupt) != 0 {
		t.Error("zero-probability class fired")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"drop", "drop=2", "drop=-0.1", "wibble=0.5", "seed=xyz", "delay=0.5:notadur",
	} {
		if _, err := ParseSpec(spec, obs.NewRegistry()); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	s, err := ParseSpec(" seed=3 , delay=1:7ms ,drop=0.5", obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if s.DelayDuration() != 7*time.Millisecond {
		t.Errorf("delay = %v", s.DelayDuration())
	}
}

func TestTransportFaults(t *testing.T) {
	var served int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		io.WriteString(w, `{"ok":true}`)
	}))
	defer ts.Close()

	t.Run("drop never reaches server", func(t *testing.T) {
		served = 0
		s := NewSchedule(1, map[Class]float64{Drop: 1}, 0, obs.NewRegistry())
		c := &http.Client{Transport: &Transport{Schedule: s}}
		_, err := c.Get(ts.URL)
		if err == nil {
			t.Fatal("dropped request succeeded")
		}
		if served != 0 {
			t.Errorf("dropped request reached the server %d times", served)
		}
	})

	t.Run("http500 synthetic", func(t *testing.T) {
		served = 0
		s := NewSchedule(1, map[Class]float64{HTTP500: 1}, 0, obs.NewRegistry())
		c := &http.Client{Transport: &Transport{Schedule: s}}
		resp, err := c.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || served != 0 {
			t.Errorf("code=%d served=%d", resp.StatusCode, served)
		}
	})

	t.Run("drop-response reaches server", func(t *testing.T) {
		served = 0
		s := NewSchedule(1, map[Class]float64{DropResponse: 1}, 0, obs.NewRegistry())
		c := &http.Client{Transport: &Transport{Schedule: s}}
		_, err := c.Get(ts.URL)
		if err == nil {
			t.Fatal("drop-response delivered a response")
		}
		if served != 1 {
			t.Errorf("server saw %d requests, want 1", served)
		}
	})

	t.Run("truncate halves body", func(t *testing.T) {
		s := NewSchedule(1, map[Class]float64{Truncate: 1}, 0, obs.NewRegistry())
		c := &http.Client{Transport: &Transport{Schedule: s}}
		resp, err := c.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if len(b) >= len(`{"ok":true}`) {
			t.Errorf("body not truncated: %q", b)
		}
	})

	t.Run("corrupt flips a byte", func(t *testing.T) {
		s := NewSchedule(1, map[Class]float64{Corrupt: 1}, 0, obs.NewRegistry())
		c := &http.Client{Transport: &Transport{Schedule: s}}
		resp, err := c.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(b) == `{"ok":true}` {
			t.Error("body unchanged")
		}
	})
}

func TestWriterTornAndCorrupt(t *testing.T) {
	var buf bytes.Buffer
	s := NewSchedule(1, map[Class]float64{TornWrite: 1}, 0, obs.NewRegistry())
	w := &Writer{W: &buf, Schedule: s}
	n, err := w.Write([]byte("0123456789"))
	var inj *InjectedError
	if !errors.As(err, &inj) || inj.Class != TornWrite {
		t.Fatalf("err = %v", err)
	}
	if n != 5 || buf.String() != "01234" {
		t.Errorf("torn write persisted %d bytes (%q), want the 5-byte prefix", n, buf.String())
	}

	buf.Reset()
	s = NewSchedule(1, map[Class]float64{Corrupt: 1}, 0, obs.NewRegistry())
	w = &Writer{W: &buf, Schedule: s}
	if _, err := w.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if buf.String() == "0123456789" {
		t.Error("corrupting writer left bytes intact")
	}
}

func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSchedule(1, map[Class]float64{Drop: 1, TornWrite: 1}, 0, reg)
	s.Hit(Drop)
	s.Hit(TornWrite)
	s.Hit(TornWrite)
	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := obs.ParseExposition(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	want := map[string]float64{"drop": 1, "torn-write": 2}
	found := 0
	for _, sm := range exp.Samples {
		if sm.Name != "faultinject_injected_total" {
			continue
		}
		if v, ok := want[sm.Labels["fault"]]; ok && sm.Value == v {
			found++
		}
	}
	if found != len(want) {
		t.Errorf("fault counters missing from exposition:\n%s", buf.String())
	}
	if got := s.String(); !strings.Contains(got, "torn-write=2") {
		t.Errorf("String() = %q", got)
	}
}
