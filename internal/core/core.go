// Package core is the library's public facade. It exposes the paper's
// primary contribution as adoptable components:
//
//   - Fingerprinter — runs the seven Web Audio fingerprinting vectors
//     against an audio stack and returns elementary fingerprints.
//   - Tracker — the fingerprinter-side identity system built on the §3.2
//     graph-based collation: feed it elementary fingerprints, ask it which
//     returning visitor they identify.
//   - RunMainStudy / RunFollowUpStudy — the paper's two measurement
//     campaigns, simulated end to end.
//   - WriteAllExperiments — renders every table and figure of the paper's
//     evaluation from a dataset pair.
package core

import (
	"fmt"
	"io"

	"repro/internal/collate"
	"repro/internal/population"
	"repro/internal/study"
	"repro/internal/vectors"
	"repro/internal/webaudio"
)

// Fingerprinter runs audio fingerprinting vectors against one audio stack.
type Fingerprinter struct {
	runner *vectors.Runner
}

// NewFingerprinter creates a fingerprinter for the given engine traits and
// device sample rate (0 means 44100 Hz).
func NewFingerprinter(traits webaudio.Traits, sampleRate float64) *Fingerprinter {
	return &Fingerprinter{runner: vectors.NewRunner(traits, sampleRate)}
}

// Fingerprint runs one vector at the given capture offset.
func (f *Fingerprinter) Fingerprint(v vectors.ID, captureOffset int) (vectors.Fingerprint, error) {
	return f.runner.Run(v, captureOffset)
}

// FingerprintAll runs all seven vectors at the given capture offset.
func (f *Fingerprinter) FingerprintAll(captureOffset int) ([]vectors.Fingerprint, error) {
	return f.runner.RunAll(captureOffset)
}

// Tracker is an online visitor-identification system: the bipartite
// collation graph of §3.2 behind a small API. It is what a fingerprinting
// party would deploy; its accuracy is what Tables 2 and 6 measure.
type Tracker struct {
	g *collate.Graph
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{g: collate.NewGraph()} }

// Observe records elementary fingerprints emitted by a known visitor,
// merging identities as collisions appear. It returns how many previously
// distinct identities this observation merged together.
func (t *Tracker) Observe(visitorID string, hashes ...string) int {
	merges := 0
	for _, h := range hashes {
		before := t.g.NumClusters()
		t.g.AddObservation(visitorID, h)
		if after := t.g.NumClusters(); after < before {
			merges += before - after
		}
	}
	return merges
}

// Identify matches a set of elementary fingerprints from an unknown visitor
// against the known identities. ok is false when nothing (or something
// ambiguous) matches.
func (t *Tracker) Identify(hashes []string) (cluster int, ok bool) {
	c, res := t.g.Match(hashes)
	return c, res == collate.MatchUnique
}

// IdentityOf returns the identity cluster of a previously observed visitor.
func (t *Tracker) IdentityOf(visitorID string) (cluster int, ok bool) {
	return t.g.ClusterOf(visitorID)
}

// TrackerStats summarizes a tracker's state.
type TrackerStats struct {
	// Visitors is the number of distinct visitor IDs observed.
	Visitors int
	// Fingerprints is the number of distinct elementary fingerprints.
	Fingerprints int
	// Identities is the number of collated identities (clusters).
	Identities int
	// Unique is how many identities contain exactly one visitor.
	Unique int
}

// Stats reports the tracker's current state.
func (t *Tracker) Stats() TrackerStats {
	return TrackerStats{
		Visitors:     t.g.NumUsers(),
		Fingerprints: t.g.NumFingerprints(),
		Identities:   t.g.NumClusters(),
		Unique:       t.g.UniqueClusters(),
	}
}

// Graph exposes the underlying collation graph for analysis code.
func (t *Tracker) Graph() *collate.Graph { return t.g }

// MainStudySeed and FollowUpSeed are the default seeds of the two
// simulated campaigns; all documented numbers use them.
const (
	MainStudySeed = 20220325
	FollowUpSeed  = 20210601
)

// RunMainStudy simulates the paper's primary campaign: 2093 users × 30
// iterations × 7 vectors.
func RunMainStudy(seed int64) (*study.Dataset, error) {
	return study.Run(study.Config{Seed: seed, Users: 2093, Iterations: 30})
}

// RunFollowUpStudy simulates the §5 follow-up campaign: 528 users with the
// Table 5 platform mix.
func RunFollowUpStudy(seed int64) (*study.Dataset, error) {
	return study.Run(study.Config{
		Seed: seed, Users: 528, Iterations: 30,
		Mix: population.FollowUpMix(), IDPrefix: "f",
	})
}

// RunStudy exposes arbitrary study configurations (smaller populations for
// examples and benchmarks).
func RunStudy(cfg study.Config) (*study.Dataset, error) { return study.Run(cfg) }

// WriteDataset exports a dataset's observations as "user vector iteration
// hash" lines (diagnostics; the storage package handles the durable form).
func WriteDataset(w io.Writer, ds *study.Dataset) error {
	for _, v := range vectors.All {
		for ui, user := range ds.Users {
			for it, h := range ds.Obs[v][ui] {
				if _, err := fmt.Fprintf(w, "%s\t%s\t%d\t%s\n", user, v, it, h); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Save serializes the tracker's identity state (for restart persistence).
func (t *Tracker) Save(w io.Writer) error { return t.g.Save(w) }

// LoadTracker restores a tracker saved with Save.
func LoadTracker(r io.Reader) (*Tracker, error) {
	g, err := collate.LoadGraph(r)
	if err != nil {
		return nil, err
	}
	return &Tracker{g: g}, nil
}
