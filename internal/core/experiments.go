package core

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/study"
	"repro/internal/vectors"
)

// Experiment identifiers, one per table/figure in the paper's evaluation.
const (
	ExpTable1   = "table1"   // stability: distinct fingerprints per user
	ExpFigure3  = "figure3"  // distribution of distinct Hybrid fingerprints
	ExpFigure5  = "figure5"  // cluster agreement vs subset size
	ExpTable6   = "table6"   // fingerprint match scores
	ExpTable2   = "table2"   // diversity of audio vectors
	ExpTable3   = "table3"   // diversity of Canvas/Fonts/UA
	ExpUASpan   = "uaspan"   // §4 W3C refutation
	ExpAdditive = "additive" // §4 additive value
	ExpFigure9  = "figure9"  // cross-vector AMI heatmap
	ExpRanking  = "ranking"  // §5 subset-ranking robustness
	ExpTable4   = "table4"   // follow-up diversity incl. Math-JS
	ExpTable5   = "table5"   // follow-up per-platform DC vs Math-JS
)

// MainExperiments lists the experiments computed from the main dataset.
var MainExperiments = []string{
	ExpTable1, ExpFigure3, ExpFigure5, ExpTable6, ExpTable2, ExpTable3,
	ExpUASpan, ExpAdditive, ExpFigure9, ExpRanking,
}

// FollowUpExperiments lists the experiments computed from the follow-up
// dataset.
var FollowUpExperiments = []string{ExpTable4, ExpTable5}

// expPhase maps an experiment id to the pipeline phase its span is named
// after (the span-naming convention is "phase/detail"; see DESIGN.md §8).
func expPhase(id string) string {
	switch id {
	case ExpTable2, ExpTable3, ExpTable4, ExpAdditive, "anonymity":
		return "diversity"
	case ExpFigure5, ExpFigure9:
		return "cluster-agreement"
	case ExpTable6, ExpTable5, "ablation":
		return "match-score"
	case ExpRanking:
		return "ranking"
	default:
		return "analyze"
	}
}

// withExperimentSpan runs fn under a phase-named span and routes the
// dataset's analysis-stage spans (collation, sweeps) beneath it, so a
// trace shows which experiment triggered which collation.
func withExperimentSpan(ctx context.Context, ds *study.Dataset, id string, fn func() error) error {
	if obs.SpanFromContext(ctx) == nil {
		return fn() // untraced
	}
	_, sp := obs.Start(ctx, expPhase(id)+"/"+id)
	defer sp.End()
	prev := ds.Tracer()
	ds.SetTracer(sp)
	defer ds.SetTracer(prev)
	return fn()
}

// WriteExperiment renders one experiment from the dataset to w.
func WriteExperiment(w io.Writer, ds *study.Dataset, id string) error {
	return WriteExperimentContext(context.Background(), w, ds, id)
}

// WriteExperimentContext renders one experiment, recording its stage
// timing under the context's trace span (no-op tracing otherwise).
func WriteExperimentContext(ctx context.Context, w io.Writer, ds *study.Dataset, id string) error {
	return withExperimentSpan(ctx, ds, id, func() error {
		return writeExperiment(w, ds, id)
	})
}

func writeExperiment(w io.Writer, ds *study.Dataset, id string) error {
	switch id {
	case ExpTable1:
		tb := report.NewTable("Table 1 — # distinct fingerprints across iterations per user",
			"Vector", "Min", "Max", "Mean")
		for _, r := range ds.Table1() {
			tb.AddRow(r.Vector.String(), r.Min, r.Max, r.Mean)
		}
		_, err := tb.WriteTo(w)
		return err

	case ExpFigure3:
		h := ds.Figure3(vectors.Hybrid)
		labels, freqs := h.SortedBins()
		_, cdf := h.CDF()
		_, err := io.WriteString(w, report.Histogram(
			"Figure 3 — distribution of distinct Hybrid (DC+FFT) fingerprints",
			labels, freqs, cdf, 50))
		return err

	case ExpFigure5:
		sValues := []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 15}
		points, err := ds.AgreementScores(sValues)
		if err != nil {
			return err
		}
		series := map[string][]float64{}
		var xs []int
		seen := map[int]bool{}
		for _, p := range points {
			series[p.Vector.String()] = append(series[p.Vector.String()], p.MeanAMI)
			if !seen[p.S] {
				seen[p.S] = true
				xs = append(xs, p.S)
			}
		}
		order := make([]string, len(vectors.All))
		for i, v := range vectors.All {
			order[i] = v.String()
		}
		_, err = io.WriteString(w, report.Series(
			"Figure 5 — mean cluster agreement (AMI) vs subset size s",
			xs, series, order))
		return err

	case ExpTable6:
		// Subset sizes larger than half the iteration count leave no
		// held-out subset; render those columns as n/a.
		var sValues []int
		headers := []string{"Vector"}
		for _, s := range []int{15, 10, 3} {
			headers = append(headers, fmt.Sprintf("s=%d", s))
			if s <= ds.Iterations/2 {
				sValues = append(sValues, s)
			}
		}
		tb := report.NewTable("Table 6 — fingerprint match scores", headers...)
		rows := ds.MatchScores(sValues)
		byVec := map[vectors.ID]map[int]float64{}
		for _, r := range rows {
			if byVec[r.Vector] == nil {
				byVec[r.Vector] = map[int]float64{}
			}
			byVec[r.Vector][r.S] = r.Score
		}
		for _, v := range vectors.All {
			m := byVec[v]
			cells := []any{v.String()}
			for _, s := range []int{15, 10, 3} {
				if score, ok := m[s]; ok {
					cells = append(cells, fmt.Sprintf("%.4f", score))
				} else {
					cells = append(cells, "n/a")
				}
			}
			tb.AddRow(cells...)
		}
		_, err := tb.WriteTo(w)
		return err

	case ExpTable2:
		tb := report.NewTable("Table 2 — diversity of audio fingerprints",
			"Vector", "Distinct", "Unique", "Entropy", "e_norm")
		for _, r := range ds.Table2() {
			tb.AddRow(r.Name, r.Distinct, r.Unique, r.EntropyBits, r.Normalized)
		}
		_, err := tb.WriteTo(w)
		return err

	case ExpTable3:
		tb := report.NewTable("Table 3 — diversity of other vectors",
			"Vector", "Distinct", "Unique", "Entropy", "e_norm")
		for _, r := range ds.Table3() {
			tb.AddRow(r.Name, r.Distinct, r.Unique, r.EntropyBits, r.Normalized)
		}
		_, err := tb.WriteTo(w)
		return err

	case ExpUASpan:
		res := ds.UASpan(vectors.MergedSignals)
		_, err := fmt.Fprintf(w, `§4 User-Agent span analysis (vector: %s)
multi-user UA strings:           %d (covering %d users)
UAs spanning ≥2 audio clusters:  %d (covering %d users)
UAs with ≥5 audio clusters:      %d
max audio clusters under one UA: %d
⇒ one UA string frequently hides many audio fingerprints, contradicting the
  W3C claim that Web Audio only reveals UA-derivable information.
`, res.Vector, res.MultiUserUAs, res.MultiUserUAUsers, res.SpanningUAs,
			res.SpanningUAUsers, res.UAsWith5Plus, res.MaxClustersPerUA)
		return err

	case ExpAdditive:
		tb := report.NewTable("§4 additive value of audio fingerprinting",
			"Base vector", "Base entropy", "With audio", "Δ e_norm")
		for _, r := range []study.AdditiveResult{
			ds.AdditiveValue("Canvas", ds.Canvas),
			ds.AdditiveValue("User-Agent", ds.UA),
		} {
			tb.AddRow(r.Name, r.Base.EntropyBits, r.WithAudio.EntropyBits,
				fmt.Sprintf("+%.1f%%", 100*r.NormIncrease))
		}
		_, err := tb.WriteTo(w)
		return err

	case ExpFigure9:
		m, err := ds.PairwiseVectorAMI()
		if err != nil {
			return err
		}
		labels := make([]string, len(vectors.All))
		for i, v := range vectors.All {
			labels[i] = v.String()
		}
		_, err = io.WriteString(w, report.Heatmap(
			"Figure 9 — cluster agreement (AMI) between audio vectors", labels, m))
		return err

	case ExpRanking:
		res := ds.SubsetRanking(4)
		fmt.Fprintf(w, "§5 e_norm ranking across 4 disjoint user subsets (consistent: %t)\n", res.Consistent)
		for i, r := range res.Rankings {
			fmt.Fprintf(w, "subset %d: %v\n", i, r)
		}
		return nil

	case ExpTable4:
		tb := report.NewTable("Table 4 — comparison with Math JS fingerprinting",
			"Vector", "Distinct", "Unique", "Entropy", "e_norm")
		for _, r := range ds.Table4() {
			tb.AddRow(r.Name, r.Distinct, r.Unique, r.EntropyBits, r.Normalized)
		}
		_, err := tb.WriteTo(w)
		return err

	case ExpTable5:
		tb := report.NewTable("Table 5 — distinct DC vs Math JS fingerprints per platform",
			"Platform", "#Users", "DC", "MathJS")
		for _, r := range ds.Table5(10) {
			tb.AddRow(r.Platform, r.Users, r.DC, r.MathJS)
		}
		_, err := tb.WriteTo(w)
		return err
	}
	return fmt.Errorf("core: unknown experiment %q", id)
}

// WriteAllExperiments renders the full evaluation: the ten main-study
// artifacts from main, then the two follow-up artifacts from followUp (if
// non-nil).
func WriteAllExperiments(w io.Writer, main, followUp *study.Dataset) error {
	return WriteAllExperimentsContext(context.Background(), w, main, followUp)
}

// WriteAllExperimentsContext is WriteAllExperiments with per-experiment
// stage tracing under the context's span.
func WriteAllExperimentsContext(ctx context.Context, w io.Writer, main, followUp *study.Dataset) error {
	for _, id := range MainExperiments {
		if err := WriteExperimentContext(ctx, w, main, id); err != nil {
			return fmt.Errorf("core: experiment %s: %w", id, err)
		}
		fmt.Fprintln(w)
	}
	if followUp != nil {
		for _, id := range FollowUpExperiments {
			if err := WriteExperimentContext(ctx, w, followUp, id); err != nil {
				return fmt.Errorf("core: experiment %s: %w", id, err)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// WriteAblation renders the §3.2 ablation: match scores with graph
// collation versus the naive exact-hash identity baseline, at subset size s.
func WriteAblation(w io.Writer, ds *study.Dataset, s int) error {
	return WriteAblationContext(context.Background(), w, ds, s)
}

// WriteAblationContext is WriteAblation with stage tracing.
func WriteAblationContext(ctx context.Context, w io.Writer, ds *study.Dataset, s int) error {
	return withExperimentSpan(ctx, ds, "ablation", func() error {
		return writeAblation(w, ds, s)
	})
}

func writeAblation(w io.Writer, ds *study.Dataset, s int) error {
	graph := ds.MatchScores([]int{s})
	naive := ds.NaiveMatchScores([]int{s})
	byVec := func(rows []study.MatchScoreRow) map[vectors.ID]float64 {
		m := map[vectors.ID]float64{}
		for _, r := range rows {
			m[r.Vector] = r.Score
		}
		return m
	}
	g, n := byVec(graph), byVec(naive)
	tb := report.NewTable(
		fmt.Sprintf("Ablation — graph collation vs naive exact-hash identity (s=%d)", s),
		"Vector", "Graph", "Naive", "Δ")
	for _, v := range vectors.All {
		tb.AddRow(v.String(), fmt.Sprintf("%.4f", g[v]), fmt.Sprintf("%.4f", n[v]),
			fmt.Sprintf("%+.4f", g[v]-n[v]))
	}
	_, err := tb.WriteTo(w)
	return err
}

// WriteEvolution renders the §6 longitudinal comparison: the same campaign
// simulated against the 2016-era (pre-standardization) audio stacks and the
// 2021-era stacks. The paper computed normalized entropies of 0.38 for the
// 2016 study [9] and 0.244 (Hybrid) / 0.175 (DC) for 2021, attributing the
// decline to engines standardizing their math paths.
func WriteEvolution(w io.Writer, seed int64, users, iterations int) error {
	run := func(era string) (*study.Dataset, error) {
		return study.Run(study.Config{
			Seed: seed, Users: users, Iterations: iterations, Era: era,
		})
	}
	modern, err := run("")
	if err != nil {
		return err
	}
	vintage, err := run("2016")
	if err != nil {
		return err
	}
	tb := report.NewTable(
		fmt.Sprintf("§6 evolution — normalized entropy by era (%d users)", users),
		"Vector", "2016-era", "2021-era", "paper (2016→2021)")
	rows := map[string][2]float64{}
	for _, r := range vintage.Table2() {
		v := rows[r.Name]
		v[0] = r.Normalized
		rows[r.Name] = v
	}
	for _, r := range modern.Table2() {
		v := rows[r.Name]
		v[1] = r.Normalized
		rows[r.Name] = v
	}
	tb.AddRow("DC", fmt.Sprintf("%.3f", rows["DC"][0]), fmt.Sprintf("%.3f", rows["DC"][1]), "0.24 → 0.175")
	tb.AddRow("Hybrid", fmt.Sprintf("%.3f", rows["Hybrid"][0]), fmt.Sprintf("%.3f", rows["Hybrid"][1]), "0.38 → 0.244")
	if _, err := tb.WriteTo(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w,
		"⇒ the audio fingerprinting surface shrinks between eras, matching the\n"+
			"  paper's finding that engine math standardization reduced entropy.")
	return err
}

// WriteAnonymity renders the anonymity-set analysis: for each fingerprint
// surface, what fraction of users hide in crowds of at least k identical
// fingerprints. This is the privacy-side reading of the diversity tables:
// audio's low diversity is large anonymity sets; Canvas/Fonts shred them.
func WriteAnonymity(w io.Writer, ds *study.Dataset) error {
	return WriteAnonymityContext(context.Background(), w, ds)
}

// WriteAnonymityContext is WriteAnonymity with stage tracing.
func WriteAnonymityContext(ctx context.Context, w io.Writer, ds *study.Dataset) error {
	return withExperimentSpan(ctx, ds, "anonymity", func() error {
		return writeAnonymity(w, ds)
	})
}

func writeAnonymity(w io.Writer, ds *study.Dataset) error {
	type surface struct {
		name   string
		values []string
	}
	surfaces := []surface{
		{"Audio (combined)", ds.CombinedLabels()},
		{"Canvas", ds.Canvas},
		{"User-Agent", ds.UA},
		{"Fonts", ds.Fonts},
	}
	ks := []int{1, 2, 5, 10, 50, 100}
	headers := []string{"Surface"}
	for _, k := range ks {
		headers = append(headers, fmt.Sprintf("≥%d", k))
	}
	tb := report.NewTable(
		fmt.Sprintf("Anonymity sets — fraction of %d users in crowds of ≥ k", len(ds.Users)),
		headers...)
	for _, s := range surfaces {
		counts := map[string]int{}
		for _, v := range s.values {
			counts[v]++
		}
		row := []any{s.name}
		for _, k := range ks {
			users := 0
			for _, c := range counts {
				if c >= k {
					users += c
				}
			}
			row = append(row, fmt.Sprintf("%.3f", float64(users)/float64(len(s.values))))
		}
		tb.AddRow(row...)
	}
	_, err := tb.WriteTo(w)
	return err
}

// WriteDemographics renders the §2.3 participant-pool breakdown: OS and
// browser shares and the top countries, the sanity panel for any simulated
// or collected population.
func WriteDemographics(w io.Writer, ds *study.Dataset) error {
	return WriteDemographicsContext(context.Background(), w, ds)
}

// WriteDemographicsContext is WriteDemographics with pipeline tracing.
func WriteDemographicsContext(ctx context.Context, w io.Writer, ds *study.Dataset) error {
	return withExperimentSpan(ctx, ds, "demographics", func() error {
		return writeDemographics(w, ds)
	})
}

func writeDemographics(w io.Writer, ds *study.Dataset) error {
	osCount := map[string]int{}
	browserCount := map[string]int{}
	countryCount := map[string]int{}
	for i := range ds.Users {
		parts := strings.SplitN(ds.Platforms[i], "/", 2)
		if len(parts) == 2 {
			osCount[parts[0]]++
			browserCount[parts[1]]++
		}
		if ds.Devices != nil {
			countryCount[ds.Devices[i].Country]++
		}
	}
	n := float64(len(ds.Users))
	writeShare := func(title string, m map[string]int) error {
		tb := report.NewTable(title, "Value", "Users", "Share")
		type kv struct {
			k string
			v int
		}
		rows := make([]kv, 0, len(m))
		for k, v := range m {
			rows = append(rows, kv{k, v})
		}
		// Tie-break by name: rows come out of map iteration, and a
		// count-only sort would order equal counts nondeterministically.
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].v != rows[j].v {
				return rows[i].v > rows[j].v
			}
			return rows[i].k < rows[j].k
		})
		for _, r := range rows {
			tb.AddRow(r.k, r.v, fmt.Sprintf("%.1f%%", 100*float64(r.v)/n))
		}
		_, err := tb.WriteTo(w)
		return err
	}
	if err := writeShare(fmt.Sprintf("Participants — OS families (%d users)", len(ds.Users)), osCount); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := writeShare("Participants — browsers", browserCount); err != nil {
		return err
	}
	if len(countryCount) > 0 {
		fmt.Fprintln(w)
		// Top 10 countries only; the tail is long (57 countries).
		type kv struct {
			k string
			v int
		}
		rows := make([]kv, 0, len(countryCount))
		for k, v := range countryCount {
			rows = append(rows, kv{k, v})
		}
		// Same name tie-break as writeShare: the top-10 cutoff must not
		// depend on map iteration order when counts tie at the boundary.
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].v != rows[j].v {
				return rows[i].v > rows[j].v
			}
			return rows[i].k < rows[j].k
		})
		tb := report.NewTable(fmt.Sprintf("Participants — top countries (%d total)", len(countryCount)),
			"Country", "Users")
		for i := 0; i < len(rows) && i < 10; i++ {
			tb.AddRow(rows[i].k, rows[i].v)
		}
		if _, err := tb.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}
