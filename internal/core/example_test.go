package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vectors"
	"repro/internal/webaudio"
)

// ExampleFingerprinter shows the one-device API: run the classic Dynamics
// Compressor vector against a reference audio stack.
func ExampleFingerprinter() {
	fp := core.NewFingerprinter(webaudio.DefaultTraits(), 44100)
	print1, _ := fp.Fingerprint(vectors.DC, 0)
	print2, _ := fp.Fingerprint(vectors.DC, 0)
	fmt.Println("vector:", print1.Vector)
	fmt.Println("stable:", print1.Hash == print2.Hash)
	// Output:
	// vector: DC
	// stable: true
}

// ExampleTracker shows the fingerprinter-side identity system: enrollment,
// recognition, and a §3.2-style cluster merge.
func ExampleTracker() {
	tr := core.NewTracker()
	tr.Observe("U1", "eFP1", "eFP3")
	tr.Observe("U2", "eFP3", "eFP5") // shares eFP3 with U1 → same identity
	tr.Observe("U3", "eFP7")

	u1, _ := tr.IdentityOf("U1")
	u2, _ := tr.IdentityOf("U2")
	u3, _ := tr.IdentityOf("U3")
	fmt.Println("U1 and U2 collide:", u1 == u2)
	fmt.Println("U3 is distinct:", u3 != u1)

	id, ok := tr.Identify([]string{"eFP5"})
	fmt.Println("returning visitor matched:", ok && id == u2)
	fmt.Println("identities:", tr.Stats().Identities)
	// Output:
	// U1 and U2 collide: true
	// U3 is distinct: true
	// returning visitor matched: true
	// identities: 2
}
