package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/population"
	"repro/internal/study"
	"repro/internal/vectors"
	"repro/internal/webaudio"
)

func TestFingerprinterRunsAllVectors(t *testing.T) {
	f := NewFingerprinter(webaudio.DefaultTraits(), 0)
	fps, err := f.FingerprintAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != 7 {
		t.Fatalf("got %d fingerprints", len(fps))
	}
	one, err := f.Fingerprint(vectors.DC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if one.Hash != fps[0].Hash {
		t.Error("Fingerprint and FingerprintAll disagree on DC")
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker()

	// Two visits by the same device leave overlapping fingerprints.
	tr.Observe("alice", "fp1", "fp2")
	tr.Observe("bob", "fp3")
	st := tr.Stats()
	if st.Visitors != 2 || st.Identities != 2 || st.Unique != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// A returning visitor is identified from any overlapping fingerprint.
	aliceID, ok := tr.IdentityOf("alice")
	if !ok {
		t.Fatal("alice unknown")
	}
	got, ok := tr.Identify([]string{"fp2", "fp-unseen"})
	if !ok || got != aliceID {
		t.Errorf("Identify = (%d,%t), want alice's identity %d", got, ok, aliceID)
	}
	if _, ok := tr.Identify([]string{"never-seen"}); ok {
		t.Error("identified an unknown visitor")
	}

	// A bridging visitor merges identities (§3.2's dynamic behaviour).
	merges := tr.Observe("carol", "fp1", "fp3")
	if merges != 1 {
		t.Errorf("merges = %d, want 1", merges)
	}
	st = tr.Stats()
	if st.Identities != 1 || st.Visitors != 3 {
		t.Errorf("after merge: %+v", st)
	}
	// Ambiguity is impossible post-merge.
	if _, ok := tr.Identify([]string{"fp1", "fp3"}); !ok {
		t.Error("post-merge identify failed")
	}
}

// smallDataset runs a compact study used by the rendering tests.
func smallDataset(t *testing.T) *study.Dataset {
	t.Helper()
	ds, err := RunStudy(study.Config{Seed: 41, Users: 150, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func smallFollowUp(t *testing.T) *study.Dataset {
	t.Helper()
	ds, err := RunStudy(study.Config{
		Seed: 42, Users: 120, Iterations: 6,
		Mix: population.FollowUpMix(), IDPrefix: "f",
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestWriteExperimentAllIDs(t *testing.T) {
	main := smallDataset(t)
	fu := smallFollowUp(t)
	for _, id := range MainExperiments {
		var sb strings.Builder
		if err := WriteExperiment(&sb, main, id); err != nil {
			t.Errorf("experiment %s: %v", id, err)
		}
		if sb.Len() == 0 {
			t.Errorf("experiment %s produced no output", id)
		}
	}
	for _, id := range FollowUpExperiments {
		var sb strings.Builder
		if err := WriteExperiment(&sb, fu, id); err != nil {
			t.Errorf("experiment %s: %v", id, err)
		}
		if sb.Len() == 0 {
			t.Errorf("experiment %s produced no output", id)
		}
	}
	if err := WriteExperiment(&strings.Builder{}, main, "nope"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestWriteAllExperiments(t *testing.T) {
	var sb strings.Builder
	if err := WriteAllExperiments(&sb, smallDataset(t), smallFollowUp(t)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Figure 3", "Figure 5", "Table 6", "Table 2", "Table 3",
		"User-Agent span", "additive value", "Figure 9", "ranking",
		"Table 4", "Table 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("combined report missing %q", want)
		}
	}
}

func TestWriteDataset(t *testing.T) {
	ds, err := RunStudy(study.Config{Seed: 7, Users: 3, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteDataset(&sb, ds); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != 3*2*7 {
		t.Errorf("dataset export has %d lines, want %d", lines, 3*2*7)
	}
}

func TestWriteAblation(t *testing.T) {
	var sb strings.Builder
	if err := WriteAblation(&sb, smallDataset(t), 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Naive") || !strings.Contains(sb.String(), "Graph") {
		t.Errorf("ablation output malformed:\n%s", sb.String())
	}
}

// TestWriteEvolution: the 2016-era surface must be at least as diverse as
// the 2021-era one (the §6 decline), and the report must render.
func TestWriteEvolution(t *testing.T) {
	var sb strings.Builder
	if err := WriteEvolution(&sb, 51, 250, 6); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "2016-era") || !strings.Contains(out, "0.38") {
		t.Errorf("evolution output malformed:\n%s", out)
	}
	vintage, err := RunStudy(study.Config{Seed: 51, Users: 250, Iterations: 6, Era: "2016"})
	if err != nil {
		t.Fatal(err)
	}
	modern, err := RunStudy(study.Config{Seed: 51, Users: 250, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	get := func(ds *study.Dataset, name string) float64 {
		for _, r := range ds.Table2() {
			if r.Name == name {
				return r.Normalized
			}
		}
		t.Fatalf("row %s missing", name)
		return 0
	}
	if get(vintage, "Hybrid") < get(modern, "Hybrid") {
		t.Errorf("2016-era Hybrid e_norm %.3f < 2021-era %.3f — evolution inverted",
			get(vintage, "Hybrid"), get(modern, "Hybrid"))
	}
	if get(vintage, "DC") < get(modern, "DC") {
		t.Errorf("2016-era DC e_norm %.3f < 2021-era %.3f", get(vintage, "DC"), get(modern, "DC"))
	}
}

func TestWriteAnonymity(t *testing.T) {
	var sb strings.Builder
	if err := WriteAnonymity(&sb, smallDataset(t)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Audio (combined)", "Canvas", "≥10"} {
		if !strings.Contains(out, want) {
			t.Errorf("anonymity output missing %q:\n%s", want, out)
		}
	}
	// Every surface has all users in sets of ≥1 (first numeric column 1.000).
	if !strings.Contains(out, "1.000") {
		t.Errorf("≥1 column should be 1.000:\n%s", out)
	}
}

func TestTrackerSaveLoad(t *testing.T) {
	tr := NewTracker()
	tr.Observe("alice", "fp1", "fp2")
	tr.Observe("bob", "fp3")
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTracker(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stats() != tr.Stats() {
		t.Errorf("restored stats %+v != %+v", back.Stats(), tr.Stats())
	}
	want, _ := tr.IdentityOf("alice")
	got, ok := back.Identify([]string{"fp2"})
	if !ok || got != want {
		t.Errorf("restored tracker misidentifies alice: (%d,%t) want %d", got, ok, want)
	}
	// Restored tracker keeps merging.
	if merges := back.Observe("carol", "fp1", "fp3"); merges != 1 {
		t.Errorf("restored tracker merges = %d, want 1", merges)
	}
}

func TestWriteDemographics(t *testing.T) {
	var sb strings.Builder
	if err := WriteDemographics(&sb, smallDataset(t)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"OS families", "browsers", "Windows", "Chrome", "top countries"} {
		if !strings.Contains(out, want) {
			t.Errorf("demographics missing %q:\n%s", want, out)
		}
	}
}
