package shard_test

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/streaming"
)

// The sharded plane's cost model, at the paper's population scale: routing
// one record must stay within a small constant of a single engine's apply,
// and the merged-snapshot read path — the price of sharding — must remain
// cheap enough to serve /api/v1/analytics/* interactively. make bench-shard
// runs these and emits BENCH_shard.json via cmd/benchjson.

func benchRouter(b *testing.B, n int) *shard.Router {
	b.Helper()
	rt, err := shard.NewRouter(shard.Config{
		Shards: n,
		Engine: streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { rt.Close() })
	return rt
}

// BenchmarkShardIngest measures the amortized cost of routing one record
// into a router already holding the full 2093-user population.
func BenchmarkShardIngest(b *testing.B) {
	recs := paperRecords(b)
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			rt := benchRouter(b, n)
			rt.Bootstrap(recs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.Apply(recs[i%len(recs) : i%len(recs)+1])
			}
		})
	}
}

// BenchmarkShardMergedSnapshot measures the cold merged read: every
// iteration applies one record first, so the router's merged-state cache
// misses and the full cross-shard fold runs. This is the sharding tax on
// the analytics read path.
func BenchmarkShardMergedSnapshot(b *testing.B) {
	recs := paperRecords(b)
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			rt := benchRouter(b, n)
			rt.Bootstrap(recs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.Apply(recs[i%len(recs) : i%len(recs)+1])
				rt.Sync()
				_ = rt.Diversity()
			}
		})
	}
}

// BenchmarkShardCachedSnapshot measures the warm read: no writes between
// reads, so snapshots come from the cached merged state and the fold is
// skipped. This is what steady read traffic costs.
func BenchmarkShardCachedSnapshot(b *testing.B) {
	recs := paperRecords(b)
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			rt := benchRouter(b, n)
			rt.Bootstrap(recs)
			_ = rt.Diversity() // prime the cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = rt.Diversity()
			}
		})
	}
}
