package shard

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/streaming"
)

// Config parameterizes NewRouter.
type Config struct {
	// Shards is the partition count (min 1).
	Shards int
	// Engine is the per-shard engine template: Registry, QueueDepth and
	// Spans apply to every shard engine (each additionally labeled
	// {"shard": i} on its metrics); AMIRefreshEvery sets the ROUTER's
	// refresh cadence over total routed records — shard engines never
	// refresh on their own, because a per-shard AMI matrix over a slice of
	// the population is not a meaningful serving payload.
	Engine streaming.Config
}

// Router fans accepted submissions to per-shard streaming engines by
// user-id hash and serves the analytics read surface from a merged
// snapshot. It implements the same method set as streaming.Engine's
// serving side (collectserver.Analytics), so the HTTP layer cannot tell
// one engine from N.
//
// Read-path consistency matches the single engine's: Diversity/Clusters/
// Stability answer from a merge of the shards' current states (exact, as
// of each shard's applied position), and AMI serves the last refreshed
// snapshot. The merged state is cached keyed by the per-shard applied
// record counts, so an idle system answers repeated reads with one merge.
type Router struct {
	engines []*streaming.Engine

	mu       sync.Mutex       // guards the routing ledger below
	seqByUID map[string]int64 // user → global first-seen sequence
	nextSeq  int64
	routed   int64 // records routed (drives the AMI refresh cadence)

	amiEvery int
	amiMu    sync.Mutex
	ami      *streaming.AMISnapshot
	lastAMI  int64

	cacheMu  sync.Mutex
	cacheKey string
	cached   *streaming.State

	queueCap int
	met      routerMetrics
}

// NewRouter builds n shard engines and the routing state. Close releases
// the engines.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: NewRouter with %d shards", cfg.Shards)
	}
	r := &Router{
		seqByUID: map[string]int64{},
		nextSeq:  1,
		amiEvery: cfg.Engine.AMIRefreshEvery,
		queueCap: cfg.Engine.QueueDepth,
	}
	if r.amiEvery == 0 {
		r.amiEvery = 4096
	}
	if r.queueCap <= 0 {
		r.queueCap = 256
	}
	reg := cfg.Engine.Registry
	if reg == nil {
		reg = obs.Default
	}
	for i := 0; i < cfg.Shards; i++ {
		ecfg := cfg.Engine
		ecfg.AMIRefreshEvery = -1 // the router owns the cadence
		ecfg.MetricLabels = obs.Labels{"shard": strconv.Itoa(i)}
		for k, v := range cfg.Engine.MetricLabels {
			ecfg.MetricLabels[k] = v
		}
		r.engines = append(r.engines, streaming.New(ecfg))
	}
	r.registerMetrics(reg, cfg.Shards)
	return r, nil
}

// Shards returns the partition count.
func (r *Router) Shards() int { return len(r.engines) }

// route splits recs into per-shard groups preserving stream order and
// assigns global first-seen sequence numbers to new users. It returns the
// groups and the total routed-record count after this batch.
func (r *Router) route(recs []storage.Record) ([][]storage.Record, int64) {
	groups := make([][]storage.Record, len(r.engines))
	r.mu.Lock()
	for i := range recs {
		uid := recs[i].UserID
		if _, ok := r.seqByUID[uid]; !ok {
			r.seqByUID[uid] = r.nextSeq
			r.nextSeq++
		}
		sh := Of(uid, len(r.engines))
		groups[sh] = append(groups[sh], recs[i])
	}
	r.routed += int64(len(recs))
	routed := r.routed
	r.mu.Unlock()
	return groups, routed
}

// Enqueue routes a batch to the owning shards' queues.
func (r *Router) Enqueue(recs []storage.Record) {
	r.EnqueueContext(context.Background(), recs)
}

// EnqueueContext is Enqueue carrying the caller's trace identity through
// to each shard engine's apply span.
func (r *Router) EnqueueContext(ctx context.Context, recs []storage.Record) {
	if len(recs) == 0 {
		return
	}
	groups, routed := r.route(recs)
	for sh, g := range groups {
		if len(g) == 0 {
			continue
		}
		r.engines[sh].EnqueueContext(ctx, g)
		r.met.ingest[sh].Add(int64(len(g)))
	}
	if r.amiEvery > 0 && routed-r.loadLastAMI() >= int64(r.amiEvery) {
		// Mirror the single engine's auto refresh, off the request path
		// (RefreshAMI syncs all shards first, which would otherwise stall
		// the submitting request on queue drain).
		go r.RefreshAMI()
	}
}

// Apply routes and folds a batch synchronously on the caller's goroutine
// — the bootstrap/benchmark path, mirroring streaming.Engine.Apply.
func (r *Router) Apply(recs []storage.Record) {
	groups, _ := r.route(recs)
	for sh, g := range groups {
		if len(g) == 0 {
			continue
		}
		r.engines[sh].Apply(g)
		r.met.ingest[sh].Add(int64(len(g)))
	}
}

// Bootstrap replays records synchronously — the restart path, fed from
// Stores.All()'s seq-ordered union — and refreshes AMI once at the end.
func (r *Router) Bootstrap(recs []storage.Record) {
	r.Apply(recs)
	r.RefreshAMI()
}

// Sync blocks until every batch enqueued so far is applied on every
// shard.
func (r *Router) Sync() error {
	for _, e := range r.engines {
		if err := e.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close stops every shard engine after draining queued batches.
func (r *Router) Close() {
	for _, e := range r.engines {
		e.Close()
	}
}

// merged returns the merge of all shards' current states, with each
// user's Seq rewritten from the router's global first-seen ledger so the
// merged dense order reproduces the original submission order. Cached
// keyed by the per-shard applied record counts. A merge error means two
// shards claim one user — impossible while Of routes every record — so it
// panics rather than serving silently wrong analytics.
func (r *Router) merged() *streaming.State {
	var key strings.Builder
	for _, e := range r.engines {
		fmt.Fprintf(&key, "%d,", e.Status().Records)
	}
	r.cacheMu.Lock()
	if r.cached != nil && r.cacheKey == key.String() {
		cached := r.cached
		r.cacheMu.Unlock()
		r.met.cacheHits.Inc()
		return cached
	}
	r.cacheMu.Unlock()

	start := time.Now()
	states := make([]*streaming.State, len(r.engines))
	for i, e := range r.engines {
		states[i] = e.State()
	}
	r.mu.Lock()
	for _, s := range states {
		for u, uid := range s.Users {
			s.Seq[u] = r.seqByUID[uid]
		}
	}
	r.mu.Unlock()
	acc := streaming.NewState()
	for _, s := range states {
		m, err := acc.Merge(s)
		if err != nil {
			panic(fmt.Sprintf("shard: user owned by two shards: %v", err))
		}
		acc = m
	}
	r.met.merges.Inc()
	r.met.mergeSeconds.Observe(time.Since(start).Seconds())

	r.cacheMu.Lock()
	r.cacheKey = key.String()
	r.cached = acc
	r.cacheMu.Unlock()
	return acc
}

// Diversity returns the merged entropy table (bit-identical to a single
// engine over the same stream).
func (r *Router) Diversity() streaming.EntropySnapshot { return r.merged().Diversity() }

// Clusters returns the merged per-vector collation statistics.
func (r *Router) Clusters() streaming.ClusterSnapshot { return r.merged().Clusters() }

// Stability returns the merged Table 1 rows.
func (r *Router) Stability() streaming.StabilitySnapshot { return r.merged().Stability() }

// AMI returns the most recent merged pairwise-AMI snapshot, or nil when
// none has been computed yet.
func (r *Router) AMI() *streaming.AMISnapshot {
	r.amiMu.Lock()
	defer r.amiMu.Unlock()
	return r.ami
}

// RefreshAMI syncs every shard, merges, recomputes the pairwise-vector
// AMI matrix and installs it as the served snapshot.
func (r *Router) RefreshAMI() *streaming.AMISnapshot {
	_ = r.Sync() // a lost batch on a closing engine still yields a valid (partial) snapshot
	s := r.merged()
	snap := s.AMI()
	r.amiMu.Lock()
	r.ami = snap
	r.lastAMI = snap.Records
	r.amiMu.Unlock()
	return snap
}

func (r *Router) loadLastAMI() int64 {
	r.amiMu.Lock()
	defer r.amiMu.Unlock()
	return r.lastAMI
}

// Status reports the routed plane's ingestion position: records and users
// are totals across shards, queue occupancy is summed, and the queue
// capacity is per shard (each shard has its own queue).
func (r *Router) Status() streaming.StatusSnapshot {
	var records int64
	var users, depth int
	for _, e := range r.engines {
		st := e.Status()
		records += st.Records
		users += st.Users
		depth += st.QueueDepth
	}
	return streaming.StatusSnapshot{
		Records:      records,
		Users:        users,
		QueueDepth:   depth,
		QueueCap:     r.queueCap,
		AMIRecords:   r.loadLastAMI(),
		AMIAutomatic: r.amiEvery > 0,
	}
}

// Users returns the merged population in original submission order.
func (r *Router) Users() []string { return r.merged().Users }

// Engine returns shard i's engine (tests, direct inspection).
func (r *Router) Engine(i int) *streaming.Engine { return r.engines[i] }
