package shard

import (
	"reflect"
	"testing"

	"repro/internal/population"
	"repro/internal/storage"
	"repro/internal/study"
	"repro/internal/vectors"
	"repro/internal/verify"
)

// TestVerifiersDifferential: the acceptance gate for the sharded
// verification plane — for the same enrolled history, every decision
// (accept bit, score, evidence) must be identical across N ∈ {1,2,3,8}
// and identical to a single unsharded engine.
func TestVerifiersDifferential(t *testing.T) {
	ev, err := study.BuildEvolved(study.EvolvedConfig{
		LongitudinalConfig: study.LongitudinalConfig{
			Seed: 5, Users: 60, Epochs: 4, SamplesPerEpoch: 2,
		},
		Vectors:     []vectors.ID{vectors.DC, vectors.FFT, vectors.Hybrid},
		Churn:       population.DefaultChurn(),
		Parallelism: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Enrollment records: the first two epochs.
	var recs []storage.Record
	for _, v := range ev.Vectors {
		for e := 0; e < 2; e++ {
			for u, user := range ev.Users {
				for _, h := range ev.Obs[v][e][u] {
					recs = append(recs, storage.Record{UserID: user, Vector: v.String(), Hash: h})
				}
			}
		}
	}
	single := verify.New(verify.Config{})
	single.Enroll(recs)

	// Probe set: every user genuine at epoch 2, plus an impostor claim and
	// an unknown user.
	samplesAt := func(u, e int) []verify.Sample {
		var out []verify.Sample
		for _, v := range ev.Vectors {
			for _, h := range ev.Obs[v][e][u] {
				out = append(out, verify.Sample{Vector: v, Hash: h})
			}
		}
		return out
	}

	for _, n := range []int{1, 2, 3, 8} {
		vs, err := NewVerifiers(n, verify.Config{})
		if err != nil {
			t.Fatal(err)
		}
		vs.Enroll(recs)
		if got := vs.Stats().Users; got != len(ev.Users) {
			t.Fatalf("N=%d: merged users = %d, want %d", n, got, len(ev.Users))
		}
		for u, user := range ev.Users {
			want, err1 := single.Verify(user, samplesAt(u, 2))
			got, err2 := vs.Verify(user, samplesAt(u, 2))
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("N=%d user %s: error mismatch %v vs %v", n, user, err1, err2)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("N=%d user %s: decision differs:\n single: %+v\nsharded: %+v", n, user, want, got)
			}
			// Impostor: the next user's samples under this user's name.
			imp := (u + 1) % len(ev.Users)
			want, _ = single.Verify(user, samplesAt(imp, 3))
			got, _ = vs.Verify(user, samplesAt(imp, 3))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("N=%d user %s impostor: decision differs", n, user)
			}
		}
		if _, err := vs.Verify("no-such-user", samplesAt(0, 2)); err == nil {
			t.Fatalf("N=%d: unknown user accepted", n)
		}
	}
}

// TestVerifiersRouting: enrollment must land each user on Of(user, n) and
// nowhere else.
func TestVerifiersRouting(t *testing.T) {
	const n = 4
	vs, err := NewVerifiers(n, verify.Config{})
	if err != nil {
		t.Fatal(err)
	}
	users := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	for _, u := range users {
		vs.Enroll([]storage.Record{{UserID: u, Vector: "DC", Hash: "aa"}})
	}
	for _, u := range users {
		owner := Of(u, n)
		for i := 0; i < n; i++ {
			st := vs.Engine(i).Stats()
			if i == owner {
				continue
			}
			if _, err := vs.Engine(i).Verify(u, nil); err == nil {
				t.Errorf("user %s known to non-owning shard %d (owner %d, shard users %d)",
					u, i, owner, st.Users)
			}
		}
	}
	if vs.Stats().Users != len(users) {
		t.Errorf("merged users = %d, want %d", vs.Stats().Users, len(users))
	}
}

// TestNewVerifiersValidation: zero shards is an error.
func TestNewVerifiersValidation(t *testing.T) {
	if _, err := NewVerifiers(0, verify.Config{}); err == nil {
		t.Fatal("0 shards accepted")
	}
}
