package shard

import (
	"fmt"
	"strconv"

	"repro/internal/storage"
	"repro/internal/verify"
)

// Verifiers is the sharded verification plane: one verify.Engine per
// shard, with enrollment and decisions routed by the same user-hash
// partition the stores and analytics router use. Because Of is
// user-granular, the owning shard holds a user's entire history — and
// because a verify decision depends only on the claimed user's history,
// every decision is bit-identical to a single engine over the same records
// (the differential test pins this).
type Verifiers struct {
	engines []*verify.Engine
}

// NewVerifiers builds n engines from cfg, tagging each engine's metrics
// with its shard index.
func NewVerifiers(n int, cfg verify.Config) (*Verifiers, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 verifier shard, got %d", n)
	}
	v := &Verifiers{engines: make([]*verify.Engine, n)}
	for i := range v.engines {
		ecfg := cfg
		if cfg.Registry != nil {
			labels := make(map[string]string, len(cfg.MetricLabels)+1)
			for k, val := range cfg.MetricLabels {
				labels[k] = val
			}
			labels["shard"] = strconv.Itoa(i)
			ecfg.MetricLabels = labels
		}
		v.engines[i] = verify.New(ecfg)
	}
	return v, nil
}

// Shards returns the shard count.
func (v *Verifiers) Shards() int { return len(v.engines) }

// Engine returns shard i's engine (tests and diagnostics).
func (v *Verifiers) Engine(i int) *verify.Engine { return v.engines[i] }

// Enroll routes each record to its user's owning shard.
func (v *Verifiers) Enroll(recs []storage.Record) {
	if len(v.engines) == 1 {
		v.engines[0].Enroll(recs)
		return
	}
	byShard := make(map[int][]storage.Record)
	for _, rec := range recs {
		s := Of(rec.UserID, len(v.engines))
		byShard[s] = append(byShard[s], rec)
	}
	for s, part := range byShard {
		v.engines[s].Enroll(part)
	}
}

// Verify answers from the claimed user's owning shard.
func (v *Verifiers) Verify(userID string, samples []verify.Sample) (verify.Decision, error) {
	return v.engines[Of(userID, len(v.engines))].Verify(userID, samples)
}

// Stats merges the per-shard snapshots: counters sum, the threshold and
// calibration are identical by construction.
func (v *Verifiers) Stats() verify.StatsSnapshot {
	out := v.engines[0].Stats()
	for _, e := range v.engines[1:] {
		s := e.Stats()
		out.Users += s.Users
		out.Records += s.Records
		out.Accepted += s.Accepted
		out.Rejected += s.Rejected
		out.UnknownUsers += s.UnknownUsers
	}
	return out
}
