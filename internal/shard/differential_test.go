package shard_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/collectserver"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/streaming"
	"repro/internal/study"
	"repro/internal/vectors"
)

// The enforced gate of the sharded plane (ISSUE 8, DESIGN.md §14):
// replaying the paper's 2093-user dataset through N ∈ {1,2,3,8,16} shards
// in randomized interleavings must produce byte-identical
// /api/v1/analytics/* response bodies — and golden values (Table 2
// entropies, Figure 5 AMI) — versus the single-engine path. Under -short
// the population shrinks but the full shard grid still runs.

var paperOnce sync.Once
var paperRecs []storage.Record
var paperErr error

// paperRecords renders the differential fixture once per process: the
// paper's 2093 users at 2 iterations (the user count is what shard
// balance, label canonicalization and AMI depend on; iterations only
// scale the record count), or a 199-user slice under -short.
func paperRecords(t testing.TB) []storage.Record {
	t.Helper()
	users, iters := 2093, 2
	if testing.Short() {
		users, iters = 199, 3
	}
	paperOnce.Do(func() {
		ds, err := study.Run(study.Config{Seed: 20220325, Users: users, Iterations: iters, Parallelism: 4})
		if err != nil {
			paperErr = err
			return
		}
		paperRecs = ds.ToRecords(time.Unix(1660000000, 0).UTC())
	})
	if paperErr != nil {
		t.Fatal(paperErr)
	}
	return paperRecs
}

// perturb returns a copy of recs with ~rate duplicate records inserted
// and, when shuffle is set, the stream order randomized — the randomized
// interleavings of the gate.
func perturb(recs []storage.Record, rng *rand.Rand, rate float64, shuffle bool) []storage.Record {
	out := make([]storage.Record, 0, len(recs)+len(recs)/10)
	for _, r := range recs {
		out = append(out, r)
		if rng.Float64() < rate {
			out = append(out, r)
		}
	}
	if shuffle {
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	}
	return out
}

var analyticsRoutes = []string{
	"/api/v1/analytics/entropy",
	"/api/v1/analytics/clusters",
	"/api/v1/analytics/stability",
	"/api/v1/analytics/ami",
	"/api/v1/analytics/status",
}

// analyticsServer mounts a collectserver over the given analytics plane.
// The store backs only the non-analytics routes and is never read here.
func analyticsServer(t *testing.T, analytics collectserver.Analytics) http.Handler {
	t.Helper()
	st, err := storage.Open(filepath.Join(t.TempDir(), "dummy.ndjson"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := collectserver.New(collectserver.Config{
		Store:     st,
		Registry:  obs.NewRegistry(),
		Analytics: analytics,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv.Handler()
}

// analyticsBodies GETs every analytics route and returns the raw response
// bodies — the byte-identity unit of the gate.
func analyticsBodies(t *testing.T, h http.Handler) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(analyticsRoutes))
	for _, route := range analyticsRoutes {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", route, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: %d %s", route, rec.Code, rec.Body.String())
		}
		out[route] = rec.Body.Bytes()
	}
	return out
}

// feed streams recs into an Analytics plane in uneven batches, as HTTP
// submissions would arrive.
func feed(plane collectserver.Analytics, recs []storage.Record, rng *rand.Rand) {
	type enq interface {
		Enqueue([]storage.Record)
	}
	e := plane.(enq)
	for next := 0; next < len(recs); {
		n := 1 + rng.Intn(64)
		if next+n > len(recs) {
			n = len(recs) - next
		}
		e.Enqueue(recs[next : next+n])
		next += n
	}
}

func newRouter(t *testing.T, n int) *shard.Router {
	t.Helper()
	rt, err := shard.NewRouter(shard.Config{
		Shards: n,
		Engine: streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// TestShardDifferentialGate is the gate: three interleavings (in-order,
// duplicated, duplicated+shuffled) × N ∈ {1,2,3,8,16} shards, every
// analytics route byte-identical to the single-engine reference over the
// same stream.
func TestShardDifferentialGate(t *testing.T) {
	recs := paperRecords(t)
	interleavings := []struct {
		name    string
		rate    float64
		shuffle bool
		seed    int64
	}{
		{"in-order", 0, false, 101},
		{"duplicates", 0.05, false, 102},
		{"shuffled", 0.08, true, 103},
	}
	for _, il := range interleavings {
		stream := perturb(recs, rand.New(rand.NewSource(il.seed)), il.rate, il.shuffle)

		// Single-engine reference over this interleaving.
		ref := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
		feed(ref, stream, rand.New(rand.NewSource(il.seed+1000)))
		if err := ref.Sync(); err != nil {
			t.Fatal(err)
		}
		ref.RefreshAMI()
		refBodies := analyticsBodies(t, analyticsServer(t, ref))
		ref.Close()

		for _, n := range []int{1, 2, 3, 8, 16} {
			t.Run(fmt.Sprintf("%s/shards=%d", il.name, n), func(t *testing.T) {
				rt := newRouter(t, n)
				feed(rt, stream, rand.New(rand.NewSource(il.seed+int64(n))))
				if err := rt.Sync(); err != nil {
					t.Fatal(err)
				}
				rt.RefreshAMI()
				got := analyticsBodies(t, analyticsServer(t, rt))
				for _, route := range analyticsRoutes {
					if !bytes.Equal(got[route], refBodies[route]) {
						t.Errorf("GET %s differs from single-engine reference:\nsharded: %s\nsingle:  %s",
							route, got[route], refBodies[route])
					}
				}
			})
		}
	}
}

// TestShardGoldenValues pins the merged results to the batch pipeline's
// golden quantities for the in-order stream: Table 2 diversity rows
// (exact float equality through diversity.SummaryFromCounts) and the
// Figure 5 pairwise-AMI matrix (cluster.AMIDense over canonical labels).
func TestShardGoldenValues(t *testing.T) {
	recs := paperRecords(t)
	ds, err := study.FromRecordsOpts(recs, study.LoadOptions{KeepAllObservations: true})
	if err != nil {
		t.Fatal(err)
	}
	rt := newRouter(t, 8)
	rt.Apply(recs)

	div := rt.Diversity()
	for i, v := range vectors.All {
		want := ds.Labels(v)
		got := div.Rows[i]
		k := 0
		for _, l := range want {
			if l >= k {
				k = l + 1
			}
		}
		if got.Name != v.String() || got.Users != len(ds.Users) || got.Distinct != k {
			t.Errorf("Table 2 row %v = %+v, want users=%d distinct=%d", v, got, len(ds.Users), k)
		}
	}

	snap := rt.RefreshAMI()
	want, err := ds.PairwiseVectorAMI()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.Matrix, want) {
		t.Errorf("Figure 5 AMI matrix differs:\n got %v\nwant %v", snap.Matrix, want)
	}
	if got := rt.Users(); !reflect.DeepEqual(got, ds.Users) {
		t.Errorf("merged user order differs from batch order")
	}
}

// TestShardMidStreamPrefix checks bit-identity doesn't only hold at the
// end: cut the stream mid-way, sync, and compare against a reference
// engine fed the same prefix.
func TestShardMidStreamPrefix(t *testing.T) {
	recs := paperRecords(t)
	stream := perturb(recs, rand.New(rand.NewSource(42)), 0.05, true)
	cut := len(stream) / 2

	ref := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer ref.Close()
	ref.Apply(stream[:cut])
	ref.RefreshAMI()
	refBodies := analyticsBodies(t, analyticsServer(t, ref))

	rt := newRouter(t, 3)
	feed(rt, stream[:cut], rand.New(rand.NewSource(43)))
	if err := rt.Sync(); err != nil {
		t.Fatal(err)
	}
	rt.RefreshAMI()
	got := analyticsBodies(t, analyticsServer(t, rt))
	for _, route := range analyticsRoutes {
		if !bytes.Equal(got[route], refBodies[route]) {
			t.Errorf("mid-stream GET %s differs:\nsharded: %s\nsingle:  %s",
				route, got[route], refBodies[route])
		}
	}

	// Feed the remainder and re-check at the end too.
	ref.Apply(stream[cut:])
	ref.RefreshAMI()
	refBodies = analyticsBodies(t, analyticsServer(t, ref))
	feed(rt, stream[cut:], rand.New(rand.NewSource(44)))
	if err := rt.Sync(); err != nil {
		t.Fatal(err)
	}
	rt.RefreshAMI()
	got = analyticsBodies(t, analyticsServer(t, rt))
	for _, route := range analyticsRoutes {
		if !bytes.Equal(got[route], refBodies[route]) {
			t.Errorf("resumed GET %s differs from single-engine reference", route)
		}
	}
}

// TestStoresRoundTrip covers the persistence half: appends fan out to
// per-shard segment chains, All() reconstructs global arrival order by
// Seq, and a reopened Stores resumes the sequence counter.
func TestStoresRoundTrip(t *testing.T) {
	recs := paperRecords(t)
	if len(recs) > 4000 {
		recs = recs[:4000]
	}
	base := filepath.Join(t.TempDir(), "fp.ndjson")
	ss, err := shard.OpenStores(base, 3, storage.Options{MaxSegmentBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for next := 0; next < len(recs); {
		n := 1 + rng.Intn(50)
		if next+n > len(recs) {
			n = len(recs) - next
		}
		if err := ss.Append(recs[next : next+n]...); err != nil {
			t.Fatal(err)
		}
		next += n
	}
	if got := ss.Count(); got != len(recs) {
		t.Fatalf("Count = %d, want %d", got, len(recs))
	}
	all, err := ss.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(recs) {
		t.Fatalf("All returned %d records, want %d", len(all), len(recs))
	}
	for i := range all {
		if all[i].Seq != int64(i)+1 {
			t.Fatalf("record %d has seq %d, want %d", i, all[i].Seq, i+1)
		}
		if all[i].UserID != recs[i].UserID || all[i].Hash != recs[i].Hash {
			t.Fatalf("record %d out of arrival order after re-sort", i)
		}
	}
	// Every shard only holds its own users.
	for i := 0; i < ss.Shards(); i++ {
		shRecs, err := ss.Shard(i).All()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range shRecs {
			if shard.Of(r.UserID, 3) != i {
				t.Fatalf("user %s persisted on shard %d, owner is %d", r.UserID, i, shard.Of(r.UserID, 3))
			}
		}
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: sequence resumes, order preserved, append continues.
	ss2, err := shard.OpenStores(base, 3, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ss2.Close()
	extra := storage.Record{UserID: "late-user", Vector: "DC", Hash: "deadbeef"}
	if err := ss2.Append(extra); err != nil {
		t.Fatal(err)
	}
	all2, err := ss2.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all2) != len(recs)+1 {
		t.Fatalf("after reopen All returned %d, want %d", len(all2), len(recs)+1)
	}
	last := all2[len(all2)-1]
	if last.UserID != "late-user" || last.Seq != int64(len(recs))+1 {
		t.Fatalf("resumed append got seq %d (user %s), want seq %d", last.Seq, last.UserID, len(recs)+1)
	}
}

// TestShardBootstrapFromStores closes the loop fpserver -shards relies
// on: persist a stream through Stores, bootstrap a fresh Router from
// All(), and compare every analytics route against a single engine fed
// the original stream.
func TestShardBootstrapFromStores(t *testing.T) {
	recs := paperRecords(t)
	if len(recs) > 6000 {
		recs = recs[:6000]
	}
	ref := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer ref.Close()
	ref.Bootstrap(recs)
	refBodies := analyticsBodies(t, analyticsServer(t, ref))

	base := filepath.Join(t.TempDir(), "fp.ndjson")
	ss, err := shard.OpenStores(base, 4, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	rng := rand.New(rand.NewSource(11))
	for next := 0; next < len(recs); {
		n := 1 + rng.Intn(40)
		if next+n > len(recs) {
			n = len(recs) - next
		}
		if err := ss.Append(recs[next : next+n]...); err != nil {
			t.Fatal(err)
		}
		next += n
	}
	replay, err := ss.All()
	if err != nil {
		t.Fatal(err)
	}
	rt := newRouter(t, 4)
	rt.Bootstrap(replay)
	got := analyticsBodies(t, analyticsServer(t, rt))
	for _, route := range analyticsRoutes {
		if !bytes.Equal(got[route], refBodies[route]) {
			t.Errorf("bootstrap GET %s differs from single-engine reference:\nsharded: %s\nsingle:  %s",
				route, got[route], refBodies[route])
		}
	}
}
