package shard

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/storage"
)

// Stores is the persistence side of the sharded plane: N independent
// storage.Store instances, one per shard, at "<path>.shard<i>". Each
// shard keeps its own segment chain, CRC framing, group-commit and
// recovery — PR 3's WAL story survives partitioning because every shard
// file IS a complete single-shard store.
//
// What a single store gets for free and a sharded one must reconstruct is
// the global arrival order: user registration order determines cluster
// labels and the AMI matrix, so Stores stamps every appended record with
// a monotone global sequence number (storage.Record.Seq, omitted from
// JSON for unsharded stores) and All() returns the union of all shards
// re-sorted by it — a bootstrap replay then registers users in exactly
// the order a single store would have.
//
// A cross-shard Append is not atomic: a crash between per-shard appends
// can persist a batch's records on some shards and not others. Each
// surviving record is still a complete, CRC-valid line, per-shard
// Recover() truncates torn tails independently, and the client's
// idempotent retry (collectclient) re-submits the whole batch; the chaos
// suite exercises exactly this seam.
type Stores struct {
	base   string
	stores []*storage.Store

	mu      sync.Mutex
	nextSeq int64
}

// StorePath returns shard i's store path for a base path.
func StorePath(base string, i int) string {
	return fmt.Sprintf("%s.shard%d", base, i)
}

// OpenStores opens (creating if needed) n per-shard stores under base and
// resumes the global sequence counter from the highest persisted Seq. The
// ".shard<i>" suffix never collides with segment naming: sealed segments
// are "<path>.<6 digits>", and "shard0" is not six digits.
func OpenStores(base string, n int, opts storage.Options) (*Stores, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: OpenStores with %d shards", n)
	}
	ss := &Stores{base: base, nextSeq: 1}
	for i := 0; i < n; i++ {
		st, err := storage.Open(StorePath(base, i), opts)
		if err != nil {
			ss.Close()
			return nil, err
		}
		ss.stores = append(ss.stores, st)
		recs, err := st.All()
		if err != nil {
			ss.Close()
			return nil, err
		}
		for i := range recs {
			if recs[i].Seq >= ss.nextSeq {
				ss.nextSeq = recs[i].Seq + 1
			}
		}
	}
	return ss, nil
}

// Shards returns the number of shards.
func (ss *Stores) Shards() int { return len(ss.stores) }

// Shard returns shard i's underlying store (recovery, tests, metrics).
func (ss *Stores) Shard(i int) *storage.Store { return ss.stores[i] }

// Append stamps each record with the next global sequence number, routes
// it to its owning shard, and appends per shard. The input slice is not
// mutated (handlers reuse it for the analytics enqueue).
func (ss *Stores) Append(recs ...storage.Record) error {
	if len(recs) == 0 {
		return nil
	}
	stamped := make([]storage.Record, len(recs))
	copy(stamped, recs)
	groups := make([][]storage.Record, len(ss.stores))
	ss.mu.Lock()
	for i := range stamped {
		stamped[i].Seq = ss.nextSeq
		ss.nextSeq++
		sh := Of(stamped[i].UserID, len(ss.stores))
		groups[sh] = append(groups[sh], stamped[i])
	}
	ss.mu.Unlock()
	for sh, g := range groups {
		if len(g) == 0 {
			continue
		}
		if err := ss.stores[sh].Append(g...); err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
	}
	return nil
}

// All returns every persisted record across all shards, re-sorted into
// global arrival order by Seq (stable, so records sharing a Seq — only
// possible for pre-sharding data — keep shard order). This is the
// bootstrap-replay order: feeding it to an engine registers users exactly
// as the original submission stream did.
func (ss *Stores) All() ([]storage.Record, error) {
	var all []storage.Record
	for _, st := range ss.stores {
		recs, err := st.All()
		if err != nil {
			return nil, err
		}
		all = append(all, recs...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	return all, nil
}

// WriteTo streams every shard's records shard-by-shard (each shard's
// lines in its own append order) — the export surface. Consumers needing
// global order re-sort by the seq field each line carries.
func (ss *Stores) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, st := range ss.stores {
		n, err := st.WriteTo(w)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Recover salvages every shard's active file independently (WAL-style
// truncation at the first torn write, see storage.Store.Recover) and
// returns one report per shard, in shard order.
func (ss *Stores) Recover() ([]storage.RecoverReport, error) {
	reports := make([]storage.RecoverReport, len(ss.stores))
	for i, st := range ss.stores {
		rep, err := st.Recover()
		if err != nil {
			return reports, fmt.Errorf("shard %d: %w", i, err)
		}
		reports[i] = rep
	}
	return reports, nil
}

// Count returns the total persisted record count across shards.
func (ss *Stores) Count() int {
	n := 0
	for _, st := range ss.stores {
		n += st.Count()
	}
	return n
}

// Path returns the base path the per-shard stores derive from.
func (ss *Stores) Path() string { return ss.base }

// Close closes every shard store, returning the first error.
func (ss *Stores) Close() error {
	var errs []error
	for _, st := range ss.stores {
		if st != nil {
			errs = append(errs, st.Close())
		}
	}
	return errors.Join(errs...)
}
