package shard_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/streaming"
)

// FuzzShardOf fuzzes the user-id→shard mapping: for any user ID and shard
// count the result must be in range, deterministic, and independent of
// process state (it is the on-disk routing contract — a wrong shard
// orphans a user's records).
func FuzzShardOf(f *testing.F) {
	f.Add("user-0001", 3)
	f.Add("", 16)
	f.Add("u", 1)
	f.Add("x", -2)
	f.Add("participant-2093-with-a-long-identifier-\x00\xff", 1024)
	f.Fuzz(func(t *testing.T, uid string, n int) {
		got := shard.Of(uid, n)
		if n <= 1 {
			if got != 0 {
				t.Fatalf("Of(%q, %d) = %d, want 0 for n <= 1", uid, n, got)
			}
			return
		}
		if got < 0 || got >= n {
			t.Fatalf("Of(%q, %d) = %d, out of [0, %d)", uid, n, got, n)
		}
		if again := shard.Of(uid, n); again != got {
			t.Fatalf("Of(%q, %d) not deterministic: %d then %d", uid, n, got, again)
		}
	})
}

// fuzzRecords derives a bounded record stream from raw fuzz bytes: three
// bytes per record select user, vector (sometimes an unparseable aux
// name), and a hash from a tiny pool so fingerprints collide across users
// and shards.
func fuzzRecords(data []byte) []storage.Record {
	const maxRecs = 300
	var recs []storage.Record
	for i := 0; i+2 < len(data) && len(recs) < maxRecs; i += 3 {
		r := storage.Record{UserID: fmt.Sprintf("u%02d", data[i]%24)}
		switch v := data[i+1] % 9; v {
		case 7:
			r.Vector = "aux" // unparseable: user/surface bookkeeping only
		case 8:
			r.Vector = "DC"
			r.Hash = fmt.Sprintf("h%x", data[i+2]%12)
			r.UserAgent = fmt.Sprintf("UA-%d", data[i+2]%3)
		default:
			r.Vector = [7]string{"DC", "FFT", "Hybrid", "Custom Signal", "Merged Signals", "AM", "FM"}[v]
			r.Hash = fmt.Sprintf("h%x", data[i+2]%12)
		}
		recs = append(recs, r)
	}
	return recs
}

// FuzzMergedSnapshotJSON fuzzes the merged-snapshot JSON encoder against
// the single-engine encoder: for any derived record stream and shard
// count, every serialized analytics payload must be byte-identical to the
// single engine's, and must be valid JSON.
func FuzzMergedSnapshotJSON(f *testing.F) {
	f.Add([]byte{}, uint8(3))
	f.Add([]byte("abcdefghijklmnopqrstuvwxyz0123456789"), uint8(2))
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2, 2, 254, 253, 252}, uint8(7))
	f.Add([]byte("\x00\x08\x01\x01\x08\x01\x02\x08\x01"), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, nshards uint8) {
		recs := fuzzRecords(data)
		n := 1 + int(nshards%8)

		eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
		defer eng.Close()
		eng.Apply(recs)
		eng.RefreshAMI()

		rt, err := shard.NewRouter(shard.Config{
			Shards: n,
			Engine: streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		rt.Bootstrap(recs)

		payloads := []struct {
			name           string
			single, merged any
		}{
			{"diversity", eng.Diversity(), rt.Diversity()},
			{"clusters", eng.Clusters(), rt.Clusters()},
			{"stability", eng.Stability(), rt.Stability()},
			{"ami", eng.AMI(), rt.AMI()},
			{"status", eng.Status(), rt.Status()},
		}
		for _, p := range payloads {
			single, err := json.Marshal(p.single)
			if err != nil {
				t.Fatalf("%s: marshal single: %v", p.name, err)
			}
			merged, err := json.Marshal(p.merged)
			if err != nil {
				t.Fatalf("%s: marshal merged: %v", p.name, err)
			}
			if !json.Valid(merged) {
				t.Fatalf("%s: merged payload is invalid JSON: %s", p.name, merged)
			}
			if !reflect.DeepEqual(single, merged) {
				t.Fatalf("%s: merged JSON differs from single engine (%d shards, %d records):\nmerged: %s\nsingle: %s",
					p.name, n, len(recs), merged, single)
			}
		}
	})
}
