// Package shard partitions the ingest + analytics plane by user-id hash:
// N shards, each owning its own append-only store segment chain
// (internal/storage) and its own streaming engine (internal/streaming),
// behind an in-process router that fans accepted submissions to the
// owning shard and answers analytics reads from a merged snapshot
// (streaming.State.Merge).
//
// The partitioning contract is user-granular: every record of one user
// lands on one shard (Of is a pure function of the user ID), so per-user
// state — distinct-fingerprint sets, surface values, collation-graph
// membership — never splits. Fingerprint hashes are NOT partitioned: two
// users on different shards can emit the same hash, which is exactly the
// cross-shard cluster join streaming.State.Merge reconstructs through the
// shared intern translation.
//
// The correctness gate is bit-identity: a sharded replay of any record
// stream must serve /api/v1/analytics/* payloads byte-identical to a
// single engine ingesting the same stream (differential_test.go enforces
// this at the paper's 2093-user scale for N ∈ {1,2,3,8,16}); DESIGN.md
// §14 explains why the merge algebra guarantees it.
package shard

import "repro/internal/hashx"

// routeSeed fixes the murmur3 seed of the user→shard mapping. It is part
// of the on-disk layout contract: changing it orphans every record in
// per-shard stores, so it is deliberately a constant rather than
// configuration.
const routeSeed = 0x66707368 // "fpsh"

// Of maps a user ID to its owning shard in [0, n). It is deterministic
// across processes and restarts (fixed-seed murmur3, no map state), and
// n <= 1 always routes to shard 0.
func Of(userID string, n int) int {
	if n <= 1 {
		return 0
	}
	h1, _ := hashx.Sum128([]byte(userID), routeSeed)
	return int(h1 % uint64(n))
}
