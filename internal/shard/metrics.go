package shard

import (
	"strconv"

	"repro/internal/obs"
)

// routerMetrics is the route-level instrumentation: per-shard ingest
// counters plus merge-path latency/volume. Shard-engine internals
// (apply latency, queue depth, users) are registered by each engine
// under its {"shard": i} label.
type routerMetrics struct {
	ingest       []*obs.Counter
	merges       *obs.Counter
	cacheHits    *obs.Counter
	mergeSeconds *obs.Histogram
}

func (r *Router) registerMetrics(reg *obs.Registry, n int) {
	r.met.ingest = make([]*obs.Counter, n)
	for i := 0; i < n; i++ {
		r.met.ingest[i] = reg.Counter("shard_ingest_total",
			"Records routed to this shard's engine.",
			obs.Labels{"shard": strconv.Itoa(i)})
	}
	r.met.merges = reg.Counter("shard_merges_total",
		"Cross-shard analytics state merges performed.", nil)
	r.met.cacheHits = reg.Counter("shard_merge_cache_hits_total",
		"Analytics reads served from the cached merged state.", nil)
	r.met.mergeSeconds = reg.Histogram("shard_merge_seconds",
		"Latency of one cross-shard state merge (snapshot + fold).",
		obs.LatencyBuckets(), nil)
	reg.GaugeFunc("shard_count", "Configured shard count.", nil,
		func() float64 { return float64(n) })
}
