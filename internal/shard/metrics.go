package shard

import (
	"strconv"

	"repro/internal/obs"
)

// routerMetrics is the route-level instrumentation: per-shard ingest
// counters plus merge-path latency/volume. Shard-engine internals
// (apply latency, queue depth, users) are registered by each engine
// under its {"shard": i} label.
type routerMetrics struct {
	ingest       []*obs.Counter
	merges       *obs.Counter
	cacheHits    *obs.Counter
	mergeSeconds *obs.Histogram
}

func (r *Router) registerMetrics(reg *obs.Registry, n int) {
	r.met.ingest = make([]*obs.Counter, n)
	for i := 0; i < n; i++ {
		r.met.ingest[i] = reg.Counter("shard_ingest_total",
			"Records routed to this shard's engine.",
			obs.Labels{"shard": strconv.Itoa(i)})
	}
	r.met.merges = reg.Counter("shard_merges_total",
		"Cross-shard analytics state merges performed.", nil)
	r.met.cacheHits = reg.Counter("shard_merge_cache_hits_total",
		"Analytics reads served from the cached merged state.", nil)
	r.met.mergeSeconds = reg.Histogram("shard_merge_seconds",
		"Latency of one cross-shard state merge (snapshot + fold).",
		obs.LatencyBuckets(), nil)
	reg.GaugeFunc("shard_count", "Configured shard count.", nil,
		func() float64 { return float64(n) })
	ingest := r.met.ingest
	reg.GaugeFunc("shard_ingest_skew",
		"Max/mean ratio of per-shard ingest counts; 1.0 is a perfectly balanced keyset.",
		nil, func() float64 { return ingestSkew(ingest) })
}

// ingestSkew computes max/mean over the per-shard ingest counters. It runs
// inside registry snapshots, so it only reads the counters' atomics and
// takes no locks. Before any ingest (sum 0) the skew reports 0.
func ingestSkew(ingest []*obs.Counter) float64 {
	if len(ingest) == 0 {
		return 0
	}
	var sum, max int64
	for _, c := range ingest {
		v := c.Value()
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(ingest))
	return float64(max) / mean
}
