package shard

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/streaming"
	"repro/internal/vectors"
)

// TestIngestSkewGauge pins the shard_ingest_skew gauge: a balanced keyset
// reads near 1.0, a keyset deliberately crafted to land on a single shard
// reads N (max == N × mean), and an idle router reads 0.
func TestIngestSkewGauge(t *testing.T) {
	const shards = 4
	reg := obs.NewRegistry()
	r, err := NewRouter(Config{
		Shards: shards,
		Engine: streaming.Config{Registry: reg, AMIRefreshEvery: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	skew := func() float64 {
		for _, s := range reg.Snapshot() {
			if s.Name == "shard_ingest_skew" {
				return s.Value
			}
		}
		t.Fatal("shard_ingest_skew not in registry snapshot")
		return 0
	}

	if got := skew(); got != 0 {
		t.Fatalf("idle skew = %v, want 0", got)
	}

	// A keyset picked to hash onto one shard: max = sum, mean = sum/N,
	// so the gauge must read exactly N.
	target := Of("seed-user", shards)
	var hot []storage.Record
	for i := 0; len(hot) < 64; i++ {
		uid := fmt.Sprintf("hot-%d", i)
		if Of(uid, shards) == target {
			hot = append(hot, storage.Record{UserID: uid, Vector: vectors.DC.String(), Hash: "aaaa"})
		}
	}
	r.Apply(hot)
	if got := skew(); got != float64(shards) {
		t.Fatalf("single-shard keyset skew = %v, want %d", got, shards)
	}

	// Level the other shards and the skew falls back toward 1.
	var spread []storage.Record
	counts := map[int]int{target: len(hot)}
	for i := 0; ; i++ {
		uid := fmt.Sprintf("cold-%d", i)
		sh := Of(uid, shards)
		if counts[sh] >= len(hot) {
			done := true
			for s := 0; s < shards; s++ {
				if counts[s] < len(hot) {
					done = false
					break
				}
			}
			if done {
				break
			}
			continue
		}
		counts[sh]++
		spread = append(spread, storage.Record{UserID: uid, Vector: vectors.DC.String(), Hash: "bbbb"})
	}
	r.Apply(spread)
	if got := skew(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("balanced keyset skew = %v, want 1.0", got)
	}
}
