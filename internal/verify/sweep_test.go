package verify

import (
	"testing"

	"repro/internal/population"
	"repro/internal/study"
	"repro/internal/vectors"
)

// TestSweepSmall: the sweep pipeline end to end at toy scale — the curve
// must be monotone in the right directions and the EER must beat chance.
func TestSweepSmall(t *testing.T) {
	res, err := Sweep(SweepConfig{
		Evolved: study.EvolvedConfig{
			LongitudinalConfig: study.LongitudinalConfig{
				Seed: 11, Users: 120, Epochs: 4, SamplesPerEpoch: 2,
			},
			Vectors:     []vectors.ID{vectors.DC, vectors.FFT, vectors.Hybrid},
			Churn:       population.DefaultChurn(),
			Parallelism: 4,
		},
		EnrollEpochs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cal := res.Calibration
	if cal.GenuineTrials != 120*2 || cal.ImpostorTrials != 120*2 {
		t.Fatalf("trial counts = %d/%d", cal.GenuineTrials, cal.ImpostorTrials)
	}
	// FAR falls and FRR rises as the threshold tightens.
	first, last := cal.Points[0], cal.Points[len(cal.Points)-1]
	if first.FAR != 1 || first.FRR != 0 {
		t.Errorf("threshold 0: FAR=%v FRR=%v, want 1/0", first.FAR, first.FRR)
	}
	if last.FAR >= first.FAR {
		t.Errorf("FAR did not fall across the sweep: %v → %v", first.FAR, last.FAR)
	}
	for i := 1; i < len(cal.Points); i++ {
		if cal.Points[i].FAR > cal.Points[i-1].FAR+1e-12 {
			t.Fatalf("FAR not non-increasing at %v", cal.Points[i].Threshold)
		}
		if cal.Points[i].FRR+1e-12 < cal.Points[i-1].FRR {
			t.Fatalf("FRR not non-decreasing at %v", cal.Points[i].Threshold)
		}
	}
	if cal.EER >= 0.5 {
		t.Errorf("EER = %v, no better than chance", cal.EER)
	}
	t.Logf("small sweep: EER=%.4f at threshold %.2f (upgrades=%d shifts=%d)",
		cal.EER, cal.EERThreshold, res.Upgrades, res.FingerprintShifts)
}

// TestSweepRejectsBadSplit: enrollment must leave held-out epochs.
func TestSweepRejectsBadSplit(t *testing.T) {
	_, err := Sweep(SweepConfig{
		Evolved: study.EvolvedConfig{
			LongitudinalConfig: study.LongitudinalConfig{Seed: 1, Users: 4, Epochs: 2},
		},
		EnrollEpochs: 2,
	})
	if err == nil {
		t.Fatal("enroll == epochs accepted")
	}
}

// TestGoldenEER pins the verification quality over the evolved main-study
// population: 2093 users (§2.3 mix), six weekly epochs under the default
// churn model, the first three epochs enrolled, all seven vectors
// submitted. The EER is the repo's headline verification number; movement
// beyond tolerance means the decision model, the churn model, or the DSP
// kernels changed behavior.
func TestGoldenEER(t *testing.T) {
	if testing.Short() {
		t.Skip("full-population sweep in -short mode")
	}
	res, err := Sweep(SweepConfig{
		Evolved: study.EvolvedConfig{
			LongitudinalConfig: study.LongitudinalConfig{
				Seed: 20211120, Users: 2093, Epochs: 6, SamplesPerEpoch: 2,
			},
			Vectors:     vectors.All,
			Churn:       population.DefaultChurn(),
			Parallelism: 4,
		},
		EnrollEpochs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cal := res.Calibration
	t.Logf("golden sweep: EER=%.4f at threshold %.2f genuine=%d impostor=%d upgrades=%d os=%d shifts=%d",
		cal.EER, cal.EERThreshold, cal.GenuineTrials, cal.ImpostorTrials,
		res.Upgrades, res.OSUpgrades, res.FingerprintShifts)

	const goldenEER, tol = 0.1356, 0.02
	if cal.EER < goldenEER-tol || cal.EER > goldenEER+tol {
		t.Errorf("EER = %.4f, want %.4f ± %.2f", cal.EER, goldenEER, tol)
	}
	if cal.EERThreshold < 0.65 || cal.EERThreshold > 0.90 {
		t.Errorf("EER threshold = %.2f, want in [0.65, 0.90] (DefaultThreshold %v must stay near it)",
			cal.EERThreshold, DefaultThreshold)
	}
	if cal.GenuineTrials != 2093*3 || cal.ImpostorTrials != 2093*2 {
		t.Errorf("trial counts = %d/%d, want %d/%d", cal.GenuineTrials, cal.ImpostorTrials, 2093*3, 2093*2)
	}
	if res.FingerprintShifts == 0 || res.Upgrades == 0 {
		t.Errorf("evolved population shows no churn: upgrades=%d shifts=%d", res.Upgrades, res.FingerprintShifts)
	}
}
