package verify

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/vectors"
)

func testEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	e.Enroll([]storage.Record{
		{UserID: "alice", Vector: "DC", Hash: "aa01"},
		{UserID: "alice", Vector: "DC", Hash: "aa02"}, // churned second hash
		{UserID: "alice", Vector: "FFT", Hash: "ff01"},
		{UserID: "bob", Vector: "DC", Hash: "bb01"},
		{UserID: "bob", Vector: "Canvas", Hash: "cc01"}, // aux surface: ignored
		{UserID: "", Vector: "DC", Hash: "dd01"},        // no user: ignored
	})
	return e
}

func TestVerifyDecisions(t *testing.T) {
	e := testEngine(t, Config{})
	if e.Users() != 2 {
		t.Fatalf("Users = %d, want 2 (aux/empty records ignored)", e.Users())
	}

	// Genuine: both vectors recognized.
	d, err := e.Verify("alice", []Sample{
		{Vector: vectors.DC, Hash: "aa01"},
		{Vector: vectors.FFT, Hash: "ff01"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accept || d.Score != 1 {
		t.Errorf("genuine full match: accept=%v score=%v", d.Accept, d.Score)
	}
	if len(d.Vectors) != 2 || d.Vectors[0].Outcome != "unique" {
		t.Errorf("evidence = %+v", d.Vectors)
	}

	// Churned genuine: older DC hash still recognized via collated history.
	d, err = e.Verify("alice", []Sample{{Vector: vectors.DC, Hash: "aa02"}})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accept || d.Score != 1 {
		t.Errorf("churned hash: accept=%v score=%v", d.Accept, d.Score)
	}

	// Impostor: bob's hashes under alice's name.
	d, err = e.Verify("alice", []Sample{
		{Vector: vectors.DC, Hash: "bb01"},
		{Vector: vectors.FFT, Hash: "nope"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Accept || d.Score != 0 {
		t.Errorf("impostor: accept=%v score=%v", d.Accept, d.Score)
	}
	for _, ve := range d.Vectors {
		if ve.Outcome != "none" {
			t.Errorf("impostor evidence outcome = %q, want none", ve.Outcome)
		}
	}

	// Partial: one of two DC hashes known → score 0.5, rejected at the
	// calibrated default threshold.
	d, err = e.Verify("alice", []Sample{
		{Vector: vectors.DC, Hash: "aa01"},
		{Vector: vectors.DC, Hash: "unknown"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Score != 0.5 || d.Accept {
		t.Errorf("partial: score=%v accept=%v, want 0.5/reject", d.Score, d.Accept)
	}

	// Vector without history stays out of the score.
	d, err = e.Verify("alice", []Sample{
		{Vector: vectors.DC, Hash: "aa01"},
		{Vector: vectors.AM, Hash: "9999"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Score != 1 {
		t.Errorf("no-history vector dragged score to %v", d.Score)
	}
	var am *VectorEvidence
	for i := range d.Vectors {
		if d.Vectors[i].Vector == "AM" {
			am = &d.Vectors[i]
		}
	}
	if am == nil || am.Outcome != "no_history" {
		t.Errorf("AM evidence = %+v, want no_history", am)
	}

	// Unknown user.
	if _, err := e.Verify("mallory", []Sample{{Vector: vectors.DC, Hash: "aa01"}}); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("unknown user error = %v", err)
	}

	st := e.Stats()
	if st.Accepted != 3 || st.Rejected != 2 || st.UnknownUsers != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Threshold != DefaultThreshold {
		t.Errorf("threshold = %v", st.Threshold)
	}
}

func TestVerifyThresholdFromCalibration(t *testing.T) {
	cal := &Calibration{EER: 0.1, EERThreshold: 0.62}
	e := New(Config{Calibration: cal})
	if e.Threshold() != 0.62 {
		t.Errorf("threshold = %v, want calibration's 0.62", e.Threshold())
	}
	if e.Stats().Calibration != cal {
		t.Error("stats does not carry the calibration")
	}
	if th := New(Config{Threshold: 0.8, Calibration: cal}).Threshold(); th != 0.8 {
		t.Errorf("explicit threshold overridden: %v", th)
	}
}

func TestVerifyMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	e := testEngine(t, Config{Registry: reg, MetricLabels: obs.Labels{"shard": "0"}})
	_, _ = e.Verify("alice", []Sample{{Vector: vectors.DC, Hash: "aa01"}})
	_, _ = e.Verify("alice", []Sample{{Vector: vectors.DC, Hash: "zz"}})
	_, _ = e.Verify("nobody", nil)
	var buf strings.Builder
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`verify_decisions_total{decision="accept",shard="0"} 1`,
		`verify_decisions_total{decision="reject",shard="0"} 1`,
		`verify_decisions_total{decision="unknown_user",shard="0"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestCalibrate(t *testing.T) {
	// Perfectly separable scores: EER must be 0 at some threshold between
	// the populations.
	var trials []Trial
	for i := 0; i < 50; i++ {
		trials = append(trials, Trial{Score: 0.9, Genuine: true}, Trial{Score: 0.1, Genuine: false})
	}
	cal := Calibrate(trials, 100)
	if cal.EER != 0 {
		t.Errorf("separable EER = %v, want 0", cal.EER)
	}
	if cal.EERThreshold <= 0.1 || cal.EERThreshold > 0.9 {
		t.Errorf("EER threshold = %v, want in (0.1, 0.9]", cal.EERThreshold)
	}
	if cal.GenuineTrials != 50 || cal.ImpostorTrials != 50 {
		t.Errorf("trial counts = %d/%d", cal.GenuineTrials, cal.ImpostorTrials)
	}
	if len(cal.Points) != 101 {
		t.Errorf("points = %d, want 101", len(cal.Points))
	}
	// Fully overlapping scores: FAR+FRR always sums to 1 at the crossing,
	// EER = 0.5.
	trials = trials[:0]
	for i := 0; i < 50; i++ {
		trials = append(trials, Trial{Score: 0.5, Genuine: true}, Trial{Score: 0.5, Genuine: false})
	}
	if cal := Calibrate(trials, 100); cal.EER != 0.5 {
		t.Errorf("overlapping EER = %v, want 0.5", cal.EER)
	}
}
