package verify

import (
	"fmt"
	"testing"

	"repro/internal/vectors"
)

// benchEngine enrolls a synthetic population: users users × all vectors ×
// hist distinct hashes each (a history that has already churned).
func benchEngine(users, hist int) (*Engine, []Sample) {
	e := New(Config{})
	for u := 0; u < users; u++ {
		id := fmt.Sprintf("u%05d", u)
		for _, v := range vectors.All {
			for h := 0; h < hist; h++ {
				e.EnrollHashes(id, v, fmt.Sprintf("%02d%04d%02d", v, u, h))
			}
		}
	}
	probe := make([]Sample, 0, len(vectors.All))
	for _, v := range vectors.All {
		probe = append(probe, Sample{Vector: v, Hash: fmt.Sprintf("%02d%04d%02d", v, users/2, 0)})
	}
	return e, probe
}

// BenchmarkVerifyDecision is the serving-path decision latency the nightly
// workflow tracks in BENCH_verify.json: one full seven-vector verification
// against a 2093-user enrolled population.
func BenchmarkVerifyDecision(b *testing.B) {
	e, probe := benchEngine(2093, 3)
	user := fmt.Sprintf("u%05d", 2093/2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Verify(user, probe); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyDecisionParallel is the same decision under concurrent
// load — the RWMutex read path must scale.
func BenchmarkVerifyDecisionParallel(b *testing.B) {
	e, probe := benchEngine(2093, 3)
	user := fmt.Sprintf("u%05d", 2093/2)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Verify(user, probe); err != nil {
				b.Fatal(err)
			}
		}
	})
}
