package verify

import (
	"fmt"

	"repro/internal/study"
)

// Offline threshold calibration: sweep the accept threshold over genuine
// trials (a user's own later-epoch samples against their enrolled history)
// and impostor trials (another user's samples claimed as the target) drawn
// from the evolved population, and report FAR/FRR per threshold plus the
// equal-error-rate operating point. FAR at a threshold is the fraction of
// impostor trials accepted; FRR is the fraction of genuine trials rejected.

// Trial is one scored verification attempt with ground truth.
type Trial struct {
	// Score is the engine's decision score for the attempt.
	Score float64 `json:"score"`
	// Genuine is true when the claimed user really produced the samples.
	Genuine bool `json:"genuine"`
}

// SweepPoint is one row of the threshold sweep.
type SweepPoint struct {
	Threshold float64 `json:"threshold"`
	// FAR is the false-accept rate: impostor trials with score ≥ threshold.
	FAR float64 `json:"far"`
	// FRR is the false-reject rate: genuine trials with score < threshold.
	FRR float64 `json:"frr"`
}

// Calibration is the sweep result: the operating curve and its
// equal-error-rate point. It is what `fpstudy -verify-sweep` writes and
// `fpserver -verify-calibration` loads.
type Calibration struct {
	Points []SweepPoint `json:"points"`
	// EER is the equal error rate: (FAR+FRR)/2 at the threshold where the
	// two curves cross.
	EER float64 `json:"eer"`
	// EERThreshold is that crossing threshold — the default decision
	// threshold a calibrated engine runs with.
	EERThreshold float64 `json:"eer_threshold"`
	// GenuineTrials / ImpostorTrials count the evidence behind the curve.
	GenuineTrials  int `json:"genuine_trials"`
	ImpostorTrials int `json:"impostor_trials"`
}

// Calibrate sweeps steps+1 thresholds over [0,1] and locates the EER.
func Calibrate(trials []Trial, steps int) Calibration {
	if steps <= 0 {
		steps = 100
	}
	var genuine, impostor int
	for _, t := range trials {
		if t.Genuine {
			genuine++
		} else {
			impostor++
		}
	}
	cal := Calibration{GenuineTrials: genuine, ImpostorTrials: impostor}
	bestGap := 2.0
	for i := 0; i <= steps; i++ {
		th := float64(i) / float64(steps)
		var fa, fr int
		for _, t := range trials {
			accept := t.Score >= th
			if t.Genuine && !accept {
				fr++
			}
			if !t.Genuine && accept {
				fa++
			}
		}
		p := SweepPoint{Threshold: th}
		if impostor > 0 {
			p.FAR = float64(fa) / float64(impostor)
		}
		if genuine > 0 {
			p.FRR = float64(fr) / float64(genuine)
		}
		cal.Points = append(cal.Points, p)
		if gap := abs(p.FAR - p.FRR); gap < bestGap {
			bestGap = gap
			cal.EER = (p.FAR + p.FRR) / 2
			cal.EERThreshold = th
		}
	}
	return cal
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// SweepConfig parameterizes an offline sweep over an evolved population.
type SweepConfig struct {
	// Evolved is the dataset build (population, epochs, churn, vectors).
	Evolved study.EvolvedConfig
	// EnrollEpochs is how many leading epochs form the stored history;
	// the remaining epochs supply trials (default Epochs/2, minimum 1).
	EnrollEpochs int
	// ImpostorsPerUser is how many impostor trials each user is the victim
	// of (default 2).
	ImpostorsPerUser int
	// Steps is the threshold grid resolution (default 100).
	Steps int
}

// SweepResult carries the calibration plus the population it came from.
type SweepResult struct {
	Calibration Calibration `json:"calibration"`
	// Users / Epochs / EnrollEpochs echo the configuration.
	Users        int `json:"users"`
	Epochs       int `json:"epochs"`
	EnrollEpochs int `json:"enroll_epochs"`
	// Upgrades / OSUpgrades / FingerprintShifts are the evolved
	// population's churn counts.
	Upgrades          int `json:"upgrades"`
	OSUpgrades        int `json:"os_upgrades"`
	FingerprintShifts int `json:"fingerprint_shifts"`
}

// Sweep builds the evolved population, enrolls the leading epochs into a
// fresh engine, scores genuine and impostor trials from the held-out
// epochs, and calibrates the threshold. The whole pipeline is
// deterministic in the evolved config's seed.
func Sweep(cfg SweepConfig) (SweepResult, error) {
	ev, err := study.BuildEvolved(cfg.Evolved)
	if err != nil {
		return SweepResult{}, err
	}
	enroll := cfg.EnrollEpochs
	if enroll <= 0 {
		enroll = ev.Epochs / 2
	}
	if enroll < 1 {
		enroll = 1
	}
	if enroll >= ev.Epochs {
		return SweepResult{}, fmt.Errorf("verify: enroll epochs %d leave no held-out epochs of %d", enroll, ev.Epochs)
	}
	impostors := cfg.ImpostorsPerUser
	if impostors <= 0 {
		impostors = 2
	}

	eng := New(Config{})
	for _, v := range ev.Vectors {
		obs := ev.Obs[v]
		for e := 0; e < enroll; e++ {
			for u, user := range ev.Users {
				eng.EnrollHashes(user, v, obs[e][u]...)
			}
		}
	}

	// samplesAt collects user u's full multi-vector sample set at epoch e.
	samplesAt := func(u, e int) []Sample {
		var out []Sample
		for _, v := range ev.Vectors {
			for _, h := range ev.Obs[v][e][u] {
				out = append(out, Sample{Vector: v, Hash: h})
			}
		}
		return out
	}

	var trials []Trial
	for u, user := range ev.Users {
		for e := enroll; e < ev.Epochs; e++ {
			score, _, known := eng.Score(user, samplesAt(u, e))
			if !known {
				return SweepResult{}, fmt.Errorf("verify: enrolled user %s unknown to engine", user)
			}
			trials = append(trials, Trial{Score: score, Genuine: true})
		}
		// Impostors present their own first held-out epoch under u's name.
		// The deterministic stride spreads victims across the population.
		for k := 1; k <= impostors; k++ {
			imp := (u + k*securityStride) % len(ev.Users)
			if imp == u {
				imp = (imp + 1) % len(ev.Users)
			}
			score, _, _ := eng.Score(user, samplesAt(imp, enroll))
			trials = append(trials, Trial{Score: score, Genuine: false})
		}
	}

	return SweepResult{
		Calibration:       Calibrate(trials, cfg.Steps),
		Users:             len(ev.Users),
		Epochs:            ev.Epochs,
		EnrollEpochs:      enroll,
		Upgrades:          ev.Upgrades,
		OSUpgrades:        ev.OSUpgrades,
		FingerprintShifts: ev.FingerprintShifts,
	}, nil
}

// securityStride spreads impostor pairings across the population; prime so
// repeated k values cycle through distinct victims.
const securityStride = 17
