// Package verify turns the repo's fingerprint-matching machinery into an
// authentication decision surface: it scores a submitted set of elementary
// fingerprints against a claimed user's stored history and answers
// accept/reject with a calibrated threshold — the "Guess Who?"-style
// question of whether a returning fingerprint can vouch for an account.
//
// The decision deliberately depends only on the claimed user's own collated
// history (one collation graph per user × vector, matched with the §3.3
// Match kernel). That makes a decision invariant under sharding: the
// claimed user pins the owning shard, the owning shard holds the user's
// entire history (shard.Of is user-granular), so a sharded deployment
// answers bit-identically to a single engine. False accepts are then
// exactly fingerprint collisions between users — the paper's anonymity
// sets — which is what the FAR/FRR sweep in sweep.go measures.
package verify

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/collate"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/vectors"
)

// DefaultThreshold is the stock accept threshold when no calibration is
// supplied: the equal-error-rate threshold of the offline sweep over the
// evolved 2093-user main-study population (EER ≈ 0.136 — see sweep.go and
// TestGoldenEER, which keeps this constant honest).
const DefaultThreshold = 0.79

// ErrUnknownUser reports a verification request for a user with no stored
// history. Servers map it to the stable `unknown_user` error code.
var ErrUnknownUser = errors.New("verify: unknown user")

// Config parameterizes an Engine.
type Config struct {
	// Threshold is the accept threshold over the decision score in [0,1].
	// 0 takes the calibration's EER threshold when Calibration is set,
	// DefaultThreshold otherwise.
	Threshold float64
	// Calibration, when set, is served on the verify analytics route and
	// supplies the threshold default.
	Calibration *Calibration
	// Registry receives per-decision counters and the enrolled-user gauge.
	// Nil disables metrics — offline sweeps build throwaway engines and
	// must not pollute the process registry.
	Registry *obs.Registry
	// MetricLabels is merged into every metric label set (the sharded
	// wrapper tags each engine with its shard index).
	MetricLabels obs.Labels
}

// Sample is one submitted elementary fingerprint.
type Sample struct {
	Vector vectors.ID
	Hash   string
}

// VectorEvidence is the per-vector breakdown of a decision.
type VectorEvidence struct {
	// Vector names the fingerprinting vector.
	Vector string `json:"vector"`
	// Samples is how many hashes were submitted for the vector.
	Samples int `json:"samples"`
	// Recognized is how many of them appear in the claimed user's history.
	Recognized int `json:"recognized"`
	// Outcome is the collation-graph match result against the user's
	// history: "unique", "none", or "no_history" when the user has never
	// been observed on this vector (excluded from the score).
	Outcome string `json:"outcome"`
	// Score is Recognized/Samples.
	Score float64 `json:"score"`
}

// Decision is the verification verdict.
type Decision struct {
	UserID string `json:"user_id"`
	Accept bool   `json:"accept"`
	// Score is the confidence in [0,1]: the mean recognized fraction over
	// vectors the user has history for.
	Score float64 `json:"score"`
	// Threshold is the calibrated accept threshold the score was compared
	// against.
	Threshold float64 `json:"threshold"`
	// Vectors is the per-vector evidence, sorted by vector name.
	Vectors []VectorEvidence `json:"vectors"`
}

// StatsSnapshot is the verify analytics payload.
type StatsSnapshot struct {
	// Users is the number of enrolled users (any stored history).
	Users int `json:"users"`
	// Records is the number of enrolled fingerprint observations.
	Records int64 `json:"records"`
	// Accepted / Rejected / UnknownUsers count decisions since start.
	Accepted     int64 `json:"accepted"`
	Rejected     int64 `json:"rejected"`
	UnknownUsers int64 `json:"unknown_users"`
	// Threshold is the active accept threshold.
	Threshold float64 `json:"threshold"`
	// Calibration is the offline FAR/FRR sweep backing the threshold, when
	// one was loaded.
	Calibration *Calibration `json:"calibration,omitempty"`
}

// Engine holds per-user verification history and answers decisions. Safe
// for concurrent use.
type Engine struct {
	cfg Config

	mu      sync.RWMutex
	users   map[string]*userHistory
	records int64

	accepted, rejected, unknown int64

	metAccept, metReject, metUnknown *obs.Counter
}

// userHistory is one user's stored history: a single-user collation graph
// per vector, so the Match kernel answers recognition queries directly.
type userHistory struct {
	graphs map[vectors.ID]*collate.Graph
}

// New builds an Engine.
func New(cfg Config) *Engine {
	if cfg.Threshold == 0 {
		if cfg.Calibration != nil && cfg.Calibration.EERThreshold > 0 {
			cfg.Threshold = cfg.Calibration.EERThreshold
		} else {
			cfg.Threshold = DefaultThreshold
		}
	}
	e := &Engine{cfg: cfg, users: make(map[string]*userHistory)}
	if cfg.Registry != nil {
		lbl := func(decision string) obs.Labels {
			l := obs.Labels{"decision": decision}
			for k, v := range cfg.MetricLabels {
				l[k] = v
			}
			return l
		}
		const name = "verify_decisions_total"
		const help = "Verification decisions by outcome."
		e.metAccept = cfg.Registry.Counter(name, help, lbl("accept"))
		e.metReject = cfg.Registry.Counter(name, help, lbl("reject"))
		e.metUnknown = cfg.Registry.Counter(name, help, lbl("unknown_user"))
	}
	return e
}

// Threshold returns the active accept threshold.
func (e *Engine) Threshold() float64 { return e.cfg.Threshold }

// Enroll folds stored records into the per-user history. Records whose
// vector is not one of the seven audio vectors (auxiliary surfaces such as
// Canvas ride along in submissions) are ignored. Safe to call concurrently
// with Verify; a decision sees a consistent snapshot.
func (e *Engine) Enroll(recs []storage.Record) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rec := range recs {
		v, err := vectors.ParseID(rec.Vector)
		if err != nil || rec.Hash == "" || rec.UserID == "" {
			continue
		}
		h := e.users[rec.UserID]
		if h == nil {
			h = &userHistory{graphs: make(map[vectors.ID]*collate.Graph)}
			e.users[rec.UserID] = h
		}
		g := h.graphs[v]
		if g == nil {
			g = collate.NewGraph()
			h.graphs[v] = g
		}
		g.AddObservation(rec.UserID, rec.Hash)
		e.records++
	}
}

// EnrollHashes is Enroll for pre-parsed observations (offline sweeps).
func (e *Engine) EnrollHashes(userID string, v vectors.ID, hashes ...string) {
	recs := make([]storage.Record, len(hashes))
	for i, h := range hashes {
		recs[i] = storage.Record{UserID: userID, Vector: v.String(), Hash: h}
	}
	e.Enroll(recs)
}

// Users returns the enrolled-user count.
func (e *Engine) Users() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.users)
}

// Score computes the decision score and evidence for a claimed user
// without counting a decision. known is false when the user has no stored
// history at all.
func (e *Engine) Score(userID string, samples []Sample) (score float64, evidence []VectorEvidence, known bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	h := e.users[userID]
	if h == nil {
		return 0, nil, false
	}

	// Group the submitted hashes per vector.
	byVec := make(map[vectors.ID][]string)
	for _, s := range samples {
		byVec[s.Vector] = append(byVec[s.Vector], s.Hash)
	}
	vecs := make([]vectors.ID, 0, len(byVec))
	for v := range byVec {
		vecs = append(vecs, v)
	}
	sort.Slice(vecs, func(i, j int) bool { return vecs[i].String() < vecs[j].String() })

	var sum float64
	var scored int
	for _, v := range vecs {
		hashes := byVec[v]
		ve := VectorEvidence{Vector: v.String(), Samples: len(hashes)}
		g := h.graphs[v]
		if g == nil {
			// The user was never observed on this vector: the submission
			// is neither confirming nor refuting, so it stays out of the
			// score — a verifier cannot hold absent enrollment against a
			// genuine user.
			ve.Outcome = "no_history"
			evidence = append(evidence, ve)
			continue
		}
		_, res := g.Match(hashes)
		ve.Outcome = res.String()
		for _, hash := range hashes {
			if g.HasFingerprint(hash) {
				ve.Recognized++
			}
		}
		ve.Score = float64(ve.Recognized) / float64(ve.Samples)
		sum += ve.Score
		scored++
		evidence = append(evidence, ve)
	}
	if scored > 0 {
		score = sum / float64(scored)
	}
	return score, evidence, true
}

// Verify answers the decision for a claimed user. ErrUnknownUser reports a
// claim for a user with no stored history; an empty sample set is the
// caller's validation problem and scores 0 against any enrolled user.
func (e *Engine) Verify(userID string, samples []Sample) (Decision, error) {
	score, evidence, known := e.Score(userID, samples)
	if !known {
		e.count(&e.unknown, e.metUnknown)
		return Decision{}, fmt.Errorf("%w: %q", ErrUnknownUser, userID)
	}
	d := Decision{
		UserID:    userID,
		Score:     score,
		Threshold: e.cfg.Threshold,
		Accept:    score >= e.cfg.Threshold,
		Vectors:   evidence,
	}
	if d.Accept {
		e.count(&e.accepted, e.metAccept)
	} else {
		e.count(&e.rejected, e.metReject)
	}
	return d, nil
}

func (e *Engine) count(field *int64, c *obs.Counter) {
	e.mu.Lock()
	*field++
	e.mu.Unlock()
	if c != nil {
		c.Inc()
	}
}

// Stats snapshots the engine's counters for the analytics route.
func (e *Engine) Stats() StatsSnapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return StatsSnapshot{
		Users:        len(e.users),
		Records:      e.records,
		Accepted:     e.accepted,
		Rejected:     e.rejected,
		UnknownUsers: e.unknown,
		Threshold:    e.cfg.Threshold,
		Calibration:  e.cfg.Calibration,
	}
}
