package defense

import (
	"testing"

	"repro/internal/vectors"
	"repro/internal/webaudio"
)

func TestProtectOffIsIdentity(t *testing.T) {
	tr := Protect(webaudio.DefaultTraits(), Off, 1)
	if tr.Farble != nil {
		t.Error("Off mode left farbling enabled")
	}
	a, err := vectors.NewRunner(tr, 0).Run(vectors.DC, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := vectors.NewRunner(webaudio.DefaultTraits(), 0).Run(vectors.DC, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash {
		t.Error("Off-mode fingerprint differs from undefended")
	}
}

// TestSessionKeyedProperties: within-session stability, cross-session
// divergence, and divergence from the undefended fingerprint — for every
// vector, including the otherwise perfectly stable DC.
func TestSessionKeyedProperties(t *testing.T) {
	base := webaudio.DefaultTraits()
	for _, v := range vectors.All {
		plain, err := vectors.NewRunner(base, 0).Run(v, 0)
		if err != nil {
			t.Fatal(err)
		}
		tr1 := Protect(base, SessionKeyed, 111)
		tr1b := Protect(base, SessionKeyed, 111)
		tr2 := Protect(base, SessionKeyed, 222)

		a, err := vectors.NewRunner(tr1, 0).Run(v, 0)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := vectors.NewRunner(tr1b, 0).Run(v, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := vectors.NewRunner(tr2, 0).Run(v, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a.Hash != a2.Hash {
			t.Errorf("%v: same session seed produced different fingerprints", v)
		}
		if a.Hash == b.Hash {
			t.Errorf("%v: different sessions share a fingerprint — defense inert", v)
		}
		if a.Hash == plain.Hash {
			t.Errorf("%v: defended fingerprint equals undefended", v)
		}
	}
}

// TestFarbleAmplitudeInaudible: the defense perturbs the rendered buffer by
// at most Epsilon relatively — no audible artifacts.
func TestFarbleAmplitudeInaudible(t *testing.T) {
	render := func(tr webaudio.Traits) []float32 {
		oc := webaudio.NewOfflineContext(4096, 44100, tr)
		osc := oc.NewOscillator(webaudio.Sine, 440)
		webaudio.Connect(osc, oc.Destination())
		osc.Start(0)
		buf, err := oc.StartRendering()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	plain := render(webaudio.DefaultTraits())
	defended := render(Protect(webaudio.DefaultTraits(), SessionKeyed, 5))
	for i := range plain {
		diff := float64(defended[i] - plain[i])
		if diff < 0 {
			diff = -diff
		}
		limit := Epsilon*abs64(plain[i]) + 1e-9
		if diff > limit*1.01 {
			t.Fatalf("sample %d perturbed by %g, limit %g", i, diff, limit)
		}
	}
}

func abs64(v float32) float64 {
	if v < 0 {
		return float64(-v)
	}
	return float64(v)
}

// TestEvaluateDefenseEffect is the headline: without the defense almost all
// users are linkable across sessions (and fingerprints collide into few
// classes); with it, nobody links across sessions, everyone is unique
// within one, and same-session reads stay consistent.
func TestEvaluateDefenseEffect(t *testing.T) {
	const n = 60
	undefended, err := Evaluate(Off, vectors.Hybrid, n, 31)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("undefended: %s", undefended)
	if undefended.CrossSessionMatched < n*9/10 {
		t.Errorf("undefended cross-session matches = %d/%d, want ≥ 90%%",
			undefended.CrossSessionMatched, n)
	}
	if undefended.DistinctFirstSession >= n {
		t.Error("undefended fingerprints all unique — collisions expected")
	}

	defended, err := Evaluate(SessionKeyed, vectors.Hybrid, n, 31)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("defended:   %s", defended)
	if defended.WithinSessionStable != n {
		t.Errorf("defense broke within-session stability: %d/%d", defended.WithinSessionStable, n)
	}
	if defended.CrossSessionMatched != 0 {
		t.Errorf("defense leaked %d cross-session matches", defended.CrossSessionMatched)
	}
	if defended.DistinctFirstSession != n {
		t.Errorf("defended fingerprints not all distinct: %d/%d", defended.DistinctFirstSession, n)
	}
}

func BenchmarkDefendedFingerprint(b *testing.B) {
	tr := Protect(webaudio.DefaultTraits(), SessionKeyed, 9)
	r := vectors.NewRunner(tr, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(vectors.DC, 0); err != nil {
			b.Fatal(err)
		}
	}
}
