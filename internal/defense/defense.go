// Package defense implements and evaluates the audio-fingerprinting
// mitigation the paper's §4 discusses: Brave-style fingerprint
// randomization ("farbling", Brave issue #9187 / FPRandom). The defense
// perturbs every script-readable audio buffer with noise keyed by a
// per-session seed — sites keep working, repeated reads within a session
// agree, but fingerprints stop matching across sessions.
//
// Evaluate quantifies the protection exactly the way the paper quantifies
// the attack: by running fingerprinting vectors against defended stacks and
// measuring cross-session match rates and diversity.
package defense

import (
	"fmt"

	"repro/internal/collate"
	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/vectors"
	"repro/internal/webaudio"
)

// Mode selects the randomization policy.
type Mode int

const (
	// Off applies no defense.
	Off Mode = iota
	// SessionKeyed perturbs readable buffers with noise derived from a
	// per-session seed: stable within a session, fresh across sessions
	// (Brave's "balanced" farbling).
	SessionKeyed
)

// Epsilon is the relative noise amplitude. Brave-scale perturbation: far
// below audibility, far above float32 hash sensitivity.
const Epsilon = 1e-4

// Protect returns traits with the defense applied for the given session.
// sessionSeed must change between sessions (a browser derives it from a
// session nonce and the site origin).
func Protect(tr webaudio.Traits, mode Mode, sessionSeed uint64) webaudio.Traits {
	if mode == Off {
		tr.Farble = nil
		return tr
	}
	tr.Farble = &webaudio.FarbleConfig{Seed: sessionSeed, Epsilon: Epsilon}
	return tr
}

// Evaluation reports how a fingerprinting campaign fares against the
// defense.
type Evaluation struct {
	// Users is the evaluated population size.
	Users int
	// WithinSessionStable counts users whose two same-session fingerprints
	// matched (the compatibility requirement: the defense must not break
	// same-session consistency).
	WithinSessionStable int
	// CrossSessionMatched counts users recognized across two sessions via
	// the collation graph (the tracking the defense is meant to stop).
	CrossSessionMatched int
	// DistinctFirstSession is the number of distinct fingerprints in the
	// first session (≈ Users under the defense: everyone unique, nobody
	// linkable).
	DistinctFirstSession int
}

// String renders the evaluation summary.
func (e Evaluation) String() string {
	return fmt.Sprintf(
		"users=%d within-session-stable=%d cross-session-matched=%d distinct-first-session=%d",
		e.Users, e.WithinSessionStable, e.CrossSessionMatched, e.DistinctFirstSession)
}

// Evaluate runs vector v twice in each of two sessions for n simulated
// users under the given mode and measures within-session stability and
// cross-session linkability.
func Evaluate(mode Mode, v vectors.ID, n int, seed int64) (Evaluation, error) {
	devices := population.Sample(population.Config{Seed: seed, N: n})
	eval := Evaluation{Users: n}
	graph := collate.NewGraph()
	firstSession := make(map[string]string, n)

	for i, d := range devices {
		// Two sessions with distinct session seeds.
		s1 := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*2 + 1
		s2 := s1 + 1
		tr1 := Protect(d.AudioTraits(), mode, s1)
		tr2 := Protect(d.AudioTraits(), mode, s2)

		r1 := vectors.NewRunner(tr1, d.SampleRate)
		fpA, err := r1.Run(v, 0)
		if err != nil {
			return eval, err
		}
		fpB, err := vectors.NewRunner(tr1, d.SampleRate).Run(v, 0)
		if err != nil {
			return eval, err
		}
		if fpA.Hash == fpB.Hash {
			eval.WithinSessionStable++
		}
		firstSession[d.ID] = fpA.Hash
		graph.AddObservation(d.ID, fpA.Hash)

		fpC, err := vectors.NewRunner(tr2, d.SampleRate).Run(v, 0)
		if err != nil {
			return eval, err
		}
		// Cross-session recognition: does session 2's fingerprint point
		// back to this user's session-1 cluster?
		want, _ := graph.ClusterOf(d.ID)
		if got, res := graph.Match([]string{fpC.Hash}); res == collate.MatchUnique && got == want {
			eval.CrossSessionMatched++
		}
	}

	distinct := make(map[string]struct{}, n)
	for _, h := range firstSession {
		distinct[h] = struct{}{}
	}
	eval.DistinctFirstSession = len(distinct)
	return eval, nil
}

// ProtectDevice is a convenience wrapper deriving the defended traits of a
// sampled device.
func ProtectDevice(d *platform.Device, mode Mode, sessionSeed uint64) webaudio.Traits {
	return Protect(d.AudioTraits(), mode, sessionSeed)
}
