package platform

// This file holds the population catalogs: the discrete pools of hardware,
// OS builds, browser versions, GPUs and fonts that devices are assembled
// from, with market-share-style weights. The pools are sized so that a
// 2093-user draw lands near the paper's distinct-fingerprint counts
// (Tables 2 and 3); EXPERIMENTS.md records the achieved values.

// OSFamily is the operating-system family of a device.
type OSFamily string

// The OS families observed in the study (§2.3).
const (
	Windows OSFamily = "Windows"
	MacOS   OSFamily = "macOS"
	Android OSFamily = "Android"
	Linux   OSFamily = "Linux"
)

// Browser is the browser product of a device.
type Browser string

// The browsers observed in the study (§2.3).
const (
	Chrome          Browser = "Chrome"
	Edge            Browser = "Edge"
	Opera           Browser = "Opera"
	SamsungInternet Browser = "Samsung Internet"
	Silk            Browser = "Silk"
	Yandex          Browser = "Yandex"
	Firefox         Browser = "Firefox"
)

// Engine is the browser engine family.
type Engine string

// The two engine lineages in the study population.
const (
	Blink Engine = "Blink"
	Gecko Engine = "Gecko"
)

// EngineOf returns the engine lineage of a browser.
func EngineOf(b Browser) Engine {
	if b == Firefox {
		return Gecko
	}
	return Blink
}

// weighted is a label with a sampling weight.
type weighted struct {
	label  string
	weight float64
}

// ---------------------------------------------------------------------------
// Audio hardware tiers. The label feeds the compressor-trait derivation:
// one label per Windows engine stack (Windows audio is uniform per engine —
// Table 5), one per macOS hardware model, one per Android SoC, one per Linux
// libm/ALSA tier.

// macHardware are macOS hardware models (audio stack per model).
var macHardware = []weighted{
	{"mac:mbp-2019", 0.20}, {"mac:mbp-2020", 0.17}, {"mac:air-2019", 0.14},
	{"mac:air-2020-m1", 0.12}, {"mac:imac-2019", 0.10}, {"mac:mbp-2017", 0.08},
	{"mac:mini-2018", 0.06}, {"mac:mbp-2015", 0.05}, {"mac:imac-2017", 0.04},
	{"mac:pro-2019", 0.015}, {"mac:air-2017", 0.02}, {"mac:mini-2020-m1", 0.015},
	{"mac:imac-2015", 0.01},
}

// linuxLibms are Linux libm/audio-stack tiers (glibc + ALSA/Pulse combos).
var linuxLibms = []weighted{
	{"libm:glibc-2.31", 0.38}, {"libm:glibc-2.32", 0.22},
	{"libm:glibc-2.28", 0.16}, {"libm:glibc-2.27", 0.12},
	{"libm:musl-1.2", 0.04}, {"libm:glibc-2.33", 0.08},
}

// ---------------------------------------------------------------------------
// CPU SIMD generations: FFT-library dispatch tiers.

var desktopSIMD = []weighted{
	{"avx2", 0.88}, {"sse2", 0.08}, {"avx512", 0.04},
}

var macSIMD = []weighted{
	{"avx2", 0.90}, {"neon", 0.10}, // Apple Silicon (M1) runs the NEON path
}

// Android is always NEON.

// ---------------------------------------------------------------------------
// Native sample rates by platform. The DC vector forces 44100 Hz offline and
// never sees these; the live-context vectors inherit them.

var winRates = []weighted{{"48000", 0.85}, {"44100", 0.15}}
var macRates = []weighted{{"44100", 0.95}, {"48000", 0.05}}
var androidRates = []weighted{{"48000", 0.92}, {"44100", 0.08}}
var linuxRates = []weighted{{"48000", 0.85}, {"44100", 0.15}}

// ---------------------------------------------------------------------------
// OS versions (detailed build keys; the UA renders a coarser form).

var winVersions = []weighted{
	{"10.0.19042", 0.42}, {"10.0.19041", 0.28}, {"10.0.18363", 0.14},
	{"10.0.17763", 0.08}, {"6.3.9600", 0.05}, {"6.1.7601", 0.03},
}

var macVersions = []weighted{
	{"10_15_7", 0.44}, {"11_2_3", 0.26}, {"11_1", 0.10},
	{"10_14_6", 0.12}, {"10_13_6", 0.05}, {"11_3", 0.03},
}

var androidVersions = []weighted{
	{"11", 0.30}, {"10", 0.42}, {"9", 0.20}, {"8.1.0", 0.08},
}

var linuxVersions = []weighted{
	{"x86_64", 0.78}, {"x86_64-ubuntu", 0.14}, {"x86_64-fedora", 0.08},
}

// ---------------------------------------------------------------------------
// Browser version catalogs: majors with weights (study window: March–May
// 2021), and per-major build pools. Patch numbers come from a small pool.

type browserMajor struct {
	major  int
	weight float64
	builds []int // Chrome-style build numbers for this major
}

var chromeMajors = []browserMajor{
	{90, 0.34, []int{4430}},
	{89, 0.36, []int{4389}},
	{88, 0.14, []int{4324}},
	{87, 0.06, []int{4280}},
	{86, 0.04, []int{4240}},
	{85, 0.025, []int{4183}},
	{83, 0.015, []int{4103}},
	{80, 0.010, []int{3987}},
	{78, 0.005, []int{3904}},
	{75, 0.005, []int{3770}},
}

var chromePatches = []weighted{
	{"93", 0.38}, {"212", 0.26}, {"90", 0.14}, {"72", 0.09},
	{"86", 0.06}, {"128", 0.04}, {"141", 0.02}, {"82", 0.01},
}

var edgeMajors = []browserMajor{
	{90, 0.45, []int{818}},
	{89, 0.40, []int{774}},
	{88, 0.15, []int{705}},
}

var operaMajors = []browserMajor{
	{75, 0.55, []int{3969}},
	{74, 0.30, []int{3911}},
	{73, 0.15, []int{3856}},
}

var samsungMajors = []browserMajor{
	{14, 0.60, []int{0}},
	{13, 0.30, []int{0}},
	{12, 0.10, []int{0}},
}

var silkMajors = []browserMajor{
	{89, 0.70, []int{0}},
	{88, 0.30, []int{0}},
}

var yandexMajors = []browserMajor{
	{21, 0.75, []int{3}},
	{20, 0.25, []int{12}},
}

var firefoxMajors = []browserMajor{
	{88, 0.42, []int{0}},
	{87, 0.30, []int{0}},
	{86, 0.16, []int{0}},
	{85, 0.07, []int{0}},
	{78, 0.05, []int{0}}, // ESR
}

func majorsFor(b Browser) []browserMajor {
	switch b {
	case Chrome:
		return chromeMajors
	case Edge:
		return edgeMajors
	case Opera:
		return operaMajors
	case SamsungInternet:
		return samsungMajors
	case Silk:
		return silkMajors
	case Yandex:
		return yandexMajors
	case Firefox:
		return firefoxMajors
	}
	return chromeMajors
}

// ---------------------------------------------------------------------------
// GPUs per OS family (canvas surface).

var winGPUs = []weighted{
	{"intel-uhd630", 0.28}, {"intel-uhd620", 0.19}, {"intel-hd520", 0.12},
	{"intel-hd4000", 0.05}, {"intel-irisxe", 0.04}, {"nvidia-gtx1050", 0.06},
	{"nvidia-gtx1060", 0.05}, {"nvidia-gtx1650", 0.05}, {"nvidia-rtx2060", 0.03},
	{"nvidia-rtx3070", 0.015}, {"nvidia-gtx970", 0.02}, {"nvidia-mx150", 0.02},
	{"amd-vega8", 0.035}, {"amd-rx580", 0.02}, {"amd-rx5700", 0.012},
	{"amd-r7", 0.012}, {"intel-hd3000", 0.012}, {"nvidia-gt710", 0.012},
	{"amd-hd7700", 0.005}, {"intel-uhd605", 0.005},
}

var macGPUs = []weighted{
	{"intel-iris655", 0.22}, {"intel-iris645", 0.18}, {"amd-pro560x", 0.14},
	{"apple-m1", 0.13}, {"intel-uhd617", 0.12}, {"amd-pro5500m", 0.09},
	{"intel-hd6100", 0.07}, {"amd-pro580x", 0.05},
}

var androidGPUs = []weighted{
	{"adreno650", 0.14}, {"adreno640", 0.12}, {"adreno630", 0.09},
	{"adreno618", 0.08}, {"adreno612", 0.06}, {"adreno610", 0.08},
	{"adreno506", 0.07}, {"mali-g77", 0.07}, {"mali-g76", 0.08},
	{"mali-g72", 0.06}, {"mali-g52", 0.05}, {"powervr-ge8320", 0.04},
	{"adreno660", 0.02}, {"mali-g78", 0.02}, {"adreno530", 0.02},
}

var linuxGPUs = []weighted{
	{"mesa-intel-uhd630", 0.25}, {"mesa-intel-hd520", 0.17},
	{"mesa-amd-polaris", 0.15}, {"nvidia-prop-460", 0.13},
	{"mesa-amd-navi", 0.08}, {"nvidia-prop-390", 0.07},
	{"mesa-nouveau", 0.06}, {"llvmpipe", 0.09},
}

func gpusFor(os OSFamily) []weighted {
	switch os {
	case Windows:
		return winGPUs
	case MacOS:
		return macGPUs
	case Android:
		return androidGPUs
	default:
		return linuxGPUs
	}
}

// ---------------------------------------------------------------------------
// Android device models, each tied to a SoC (UA shows the model; the audio
// stack follows the SoC).

type androidModel struct {
	model  string
	soc    string
	weight float64
}

var androidModels = []androidModel{
	{"SM-G991B", "soc:exynos2100", 0.03}, {"SM-G981B", "soc:exynos990", 0.05},
	{"SM-G975F", "soc:exynos9820", 0.05}, {"SM-A515F", "soc:exynos9611", 0.06},
	{"SM-A505F", "soc:exynos9611", 0.05}, {"SM-A217F", "soc:exynos850", 0.03},
	{"SM-N975F", "soc:exynos9825", 0.02}, {"Pixel 5", "soc:sd765", 0.04},
	{"Pixel 4", "soc:sd855", 0.04}, {"Pixel 3a", "soc:sd670", 0.02},
	{"Mi 9T", "soc:sd730", 0.05}, {"Mi 10T", "soc:sd865", 0.04},
	{"Redmi Note 8 Pro", "soc:helio-g90", 0.06}, {"Redmi Note 7", "soc:sd660", 0.05},
	{"Redmi 9", "soc:helio-g80", 0.04}, {"POCO X3", "soc:sd732", 0.04},
	{"OnePlus 8", "soc:sd865", 0.04}, {"OnePlus 7T", "soc:sd855", 0.03},
	{"OnePlus Nord", "soc:sd765", 0.03}, {"P30 Pro", "soc:kirin980", 0.04},
	{"Mate 20", "soc:kirin980", 0.02}, {"P20 Lite", "soc:kirin659", 0.03},
	{"Moto G8", "soc:sd665", 0.04}, {"Moto G7", "soc:sd632", 0.03},
	{"LM-G850", "soc:sd855", 0.01}, {"KFMUWI", "soc:mt8163", 0.02},
	{"KFONWI", "soc:mt8168", 0.02}, {"Nokia 5.3", "soc:sd665", 0.02},
	{"vivo 1904", "soc:helio-p35", 0.02}, {"CPH2127", "soc:sd460", 0.02},
	{"CPH1923", "soc:helio-p22", 0.02}, {"M2003J15SC", "soc:helio-g85", 0.02},
	{"SM-T510", "soc:exynos7904", 0.02}, {"SM-A125F", "soc:mt6765", 0.02},
}

// ---------------------------------------------------------------------------
// Font packs: the base set is fixed per OS build; users add packs (office
// suites, design tools, language packs) that the JS font probe detects.

var fontPacks = []weighted{
	{"ms-office", 0.20}, {"libreoffice", 0.09}, {"adobe-cc", 0.06},
	{"adobe-reader", 0.07}, {"google-fonts-pack", 0.05}, {"corel", 0.02},
	{"cjk-sc", 0.04}, {"cjk-tc", 0.02}, {"cjk-jp", 0.03}, {"cjk-kr", 0.02},
	{"devanagari-extra", 0.04}, {"thai-extra", 0.01}, {"arabic-extra", 0.03},
	{"cyrillic-extra", 0.03}, {"greek-extra", 0.01}, {"hebrew-extra", 0.01},
	{"latex-fonts", 0.02}, {"powerline", 0.01}, {"nerd-fonts", 0.02},
	{"source-code-pro", 0.02}, {"fira", 0.02}, {"jetbrains-mono", 0.02},
	{"roboto-full", 0.03}, {"noto-full", 0.04}, {"ubuntu-family", 0.02},
	{"dejavu-extra", 0.02}, {"liberation", 0.03}, {"croscore", 0.01},
	{"steam", 0.03}, {"epic-games", 0.01}, {"autocad", 0.01},
	{"solidworks", 0.005}, {"matlab", 0.01}, {"r-lang", 0.005},
	{"wine-fonts", 0.02}, {"gimp-extra", 0.01}, {"inkscape-extra", 0.01},
	{"figma-offline", 0.005}, {"sketch", 0.005}, {"affinity", 0.005},
	{"old-standard", 0.005}, {"eb-garamond", 0.01}, {"lato-full", 0.01},
	{"montserrat", 0.01}, {"oswald", 0.005}, {"raleway", 0.005},
	{"pt-family", 0.01}, {"exo", 0.003}, {"orbitron", 0.002},
	{"press-start", 0.002}, {"comic-neue", 0.003}, {"opendyslexic", 0.002},
	{"atkinson", 0.002}, {"spectral", 0.002}, {"vollkorn", 0.002},
}

// ---------------------------------------------------------------------------
// Countries: 57, with the US, India, Brazil and Italy as the four ≥100-user
// populations (§2.3).

var countries = []weighted{
	{"US", 0.275}, {"IN", 0.175}, {"BR", 0.095}, {"IT", 0.062},
	{"GB", 0.035}, {"DE", 0.030}, {"CA", 0.028}, {"ES", 0.024},
	{"FR", 0.022}, {"MX", 0.018}, {"PL", 0.015}, {"NL", 0.014},
	{"RO", 0.013}, {"PT", 0.012}, {"GR", 0.011}, {"TR", 0.011},
	{"ID", 0.010}, {"PH", 0.010}, {"VN", 0.009}, {"TH", 0.009},
	{"MY", 0.008}, {"PK", 0.008}, {"BD", 0.008}, {"NG", 0.008},
	{"KE", 0.007}, {"ZA", 0.007}, {"EG", 0.007}, {"MA", 0.006},
	{"AR", 0.006}, {"CL", 0.006}, {"CO", 0.006}, {"PE", 0.005},
	{"VE", 0.005}, {"UA", 0.005}, {"RU", 0.005}, {"RS", 0.004},
	{"BG", 0.004}, {"HU", 0.004}, {"CZ", 0.004}, {"SK", 0.003},
	{"HR", 0.003}, {"SI", 0.003}, {"LT", 0.003}, {"LV", 0.003},
	{"EE", 0.002}, {"IE", 0.004}, {"BE", 0.004}, {"AT", 0.004},
	{"CH", 0.003}, {"SE", 0.004}, {"NO", 0.003}, {"DK", 0.003},
	{"FI", 0.003}, {"AU", 0.006}, {"NZ", 0.003}, {"JP", 0.005},
	{"KR", 0.004},
}
