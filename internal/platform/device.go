package platform

import (
	"fmt"
	"strconv"

	"repro/internal/mathx"
	"repro/internal/webaudio"
)

// Device is one simulated study participant's machine/browser pair. All
// fingerprinting surfaces derive deterministically from these attributes.
type Device struct {
	// ID is the participant identifier.
	ID string
	// Country is the ISO code of the participant's country.
	Country string
	// OS and OSVersion describe the operating system (detailed build key;
	// the UA renders a coarser form).
	OS        OSFamily
	OSVersion string
	// Browser and its version components.
	Browser Browser
	Major   int
	Build   int
	Patch   int
	// AudioHW labels the audio-stack hardware tier: "win" (uniform),
	// "mac:<model>", "soc:<chip>" or "libm:<tier>".
	AudioHW string
	// SIMD is the CPU SIMD generation the FFT library dispatches on.
	SIMD string
	// SampleRate is the device's native audio rate (Hz); live contexts
	// inherit it, the DC vector's forced-44100 offline context does not.
	SampleRate float64
	// GPU identifies the graphics stack (canvas surface).
	GPU string
	// GPUDriverQuirk is non-empty for machines whose driver version
	// produces idiosyncratic canvas raster output (a uniquifying salt).
	GPUDriverQuirk string
	// Model is the device model (Android UA component; empty elsewhere).
	Model string
	// FontPacks are extra installed font packs, sorted.
	FontPacks []string
	// Load is the machine's load level λ ∈ [0,1] driving capture jitter.
	Load float64
	// Era selects the audio-stack generation: "" or "2021" for the study
	// window, "2016" for the pre-standardization era the paper's §6
	// compares against (entropy 0.38 in [9] vs 0.244 in 2021 — engines have
	// since unified their math paths).
	Era string
}

// Engine returns the device browser's engine lineage.
func (d *Device) Engine() Engine { return EngineOf(d.Browser) }

// Platform returns the "OS/Browser" key used by the paper's Table 5.
func (d *Device) Platform() string {
	return string(d.OS) + "/" + string(d.Browser)
}

// oscKernel returns the math kernel of the device's oscillator/compressor
// path: per engine lineage on desktop, per SoC DSP family on Android, per
// libm tier on Linux.
func (d *Device) oscKernel() mathx.Kernel {
	switch d.OS {
	case Android:
		// SoCs group into DSP-library families; several SoCs share one.
		fams := []mathx.Kernel{
			mathx.Lut1024, mathx.Lut4096, mathx.Poly7,
			mathx.Fdlib, mathx.Libm,
			mathx.Perturbed(mathx.Libm, "android-dsp-ne10", 2.1e-7),
		}
		return fams[int(derive(d.socGroup(), 0)%uint64(len(fams)))]
	case Linux:
		eps := float64(1+derive(d.AudioHW, 0)%900) * 3e-7
		if d.Engine() == Gecko {
			return mathx.Perturbed(mathx.Fdlib, "lx-gecko-"+d.AudioHW, eps)
		}
		return mathx.Perturbed(mathx.Libm, "lx-blink-"+d.AudioHW, eps)
	default: // Windows, macOS: uniform per engine lineage
		if d.Era == "2016" {
			// Pre-standardization engines leaned on per-OS-build math
			// libraries, splintering even the desktop stacks (the larger
			// 2016-era fingerprinting surface of §6).
			eps := float64(1+derive("era2016:"+string(d.OS)+":"+d.OSVersion, 5)%900) * 3e-7
			if d.Engine() == Gecko {
				return mathx.Perturbed(mathx.Fdlib, "gk16:"+string(d.OS)+":"+d.OSVersion, eps)
			}
			return mathx.Perturbed(mathx.Libm, "bl16:"+string(d.OS)+":"+d.OSVersion, eps)
		}
		if d.Engine() == Gecko {
			return mathx.Fdlib
		}
		return mathx.Libm
	}
}

// socGroup coarsens Android SoCs into audio-stack groups: vendors reuse one
// audio DSP build across several chips, so distinct SoCs frequently share a
// DC fingerprint (Table 5 finds only 5 DC classes among 21 Android users).
func (d *Device) socGroup() string {
	h := derive(d.AudioHW, 7)
	return fmt.Sprintf("socgrp:%d-%d", h%6, (h>>8)%2)
}

// fftRev buckets the browser major version into FFT-library revisions:
// engines periodically swap or retune their FFT backend, which shifts FFT
// fingerprints across versions without touching the compressor path.
func (d *Device) fftRev() string {
	// The revision boundaries coincide with major engine releases — the
	// same releases that bump the canvas paint generation — so version-
	// driven audio changes are largely *predictable from* canvas changes,
	// as the paper's small additive value implies.
	cut := 89 // Blink revision boundary within the study window
	if d.Engine() == Gecko {
		cut = 79
	}
	// Non-Chrome Chromium browsers version independently; map to the
	// underlying Chromium major first.
	major := d.chromiumMajor()
	if major >= cut {
		return "r2"
	}
	return "r1"
}

// chromiumMajor maps the browser's product version to its Chromium base
// (identity for Chrome/Edge/Silk; fixed mapping for the rebadged browsers).
func (d *Device) chromiumMajor() int {
	switch d.Browser {
	case Opera:
		return d.Major + 15 // Opera 75 ≈ Chromium 90
	case SamsungInternet:
		return 75 + d.Major // Samsung 14 ≈ Chromium 89
	case Yandex:
		return 88 + (d.Major - 20) // Yandex 21 ≈ Chromium 89
	default:
		return d.Major
	}
}

// fftKernel returns the kernel behind the AnalyserNode FFT. Its identity is
// tied to the same hardware tier that shapes the compressor (macOS model,
// Android SoC group, Linux libm tier): FFT libraries select codelets per
// CPU, so the FFT partition largely *refines* the DC partition, as in the
// paper (FFT 73 vs DC 59 distinct, Hybrid joint only 84). Two mild
// cross-cutting axes remain — SIMD dispatch on the homogeneous Windows
// stack, and the engine's FFT-library revision (browser version) — which is
// what pushes the Hybrid joint slightly past the FFT marginal.
func (d *Device) fftKernel() mathx.Kernel {
	base := mathx.Libm
	lineage := "pffft"
	if d.Engine() == Gecko {
		base = mathx.Fdlib
		lineage = "gkfft"
	}
	var label string
	switch d.OS {
	case Windows:
		// Homogeneous hardware population: the engine-bundled FFT library
		// (per SIMD dispatch and per browser revision) is what varies.
		label = lineage + ":win:" + d.SIMD + ":" + d.fftRev()
	case Android:
		label = lineage + ":" + d.socGroup()
	default:
		label = lineage + ":" + d.AudioHW
	}
	eps := float64(1+derive(label, 1)%900) * 3e-7
	return mathx.Perturbed(base, label, eps)
}

// AudioTraits derives the webaudio engine configuration of this device.
func (d *Device) AudioTraits() webaudio.Traits {
	tr := webaudio.DefaultTraits()
	tr.Kernel = d.oscKernel()
	tr.FFTKernel = d.fftKernel()

	// Compressor knobs: uniform on Windows (one stack per engine — the
	// Table 5 signature), per hardware tier elsewhere (Android tiers are
	// SoC groups: vendors share DSP builds across chips). The 2016-era
	// stacks additionally fragment per browser major (compressor constants
	// were still in flux before the spec stabilized).
	if d.OS != Windows {
		tier := d.AudioHW
		if d.OS == Android {
			tier = d.socGroup()
		}
		tr.CompressorKneeEps = float64(1+derive(tier, 2)%4000) * 2e-6
		tr.CompressorPreDelay = 256 + int(derive(tier, 3)%6)
	}
	if d.Era == "2016" {
		tr.CompressorKneeEps += float64(1+derive(fmt.Sprintf("knee16:%d", d.Major/2), 6)%50) * 4e-5
	}
	if d.Engine() == Gecko {
		// Gecko's compressor constants differ from Blink's across the board.
		tr.CompressorKneeEps += 9e-4
		tr.CompressorPreDelay += 8
	}

	// Older Chromium majors mixed multi-input busses in float32.
	if d.chromiumMajor() <= 83 && d.Engine() == Blink {
		tr.MixPrecision = webaudio.Mix32
	}
	// Table-based Android DSP families ship FTZ builds.
	if k := tr.Kernel.Name(); k == "lut1024" || k == "lut4096" {
		tr.FlushDenormals = true
	}
	return tr
}

// AudioStackKey canonically identifies every trait- and rate-derived aspect
// of the device's audio identity; devices with equal keys render identical
// fingerprints (and may therefore share vector-cache entries). The key is
// deliberately engine-independent: the webaudio block and reference engines
// are gated to bit-identical output, so a cache entry rendered under either
// engine is valid for both.
func (d *Device) AudioStackKey() string {
	tr := d.AudioTraits()
	return fmt.Sprintf("%s|%s|%g|%d|%d|%t|%g",
		tr.Kernel.Name(), tr.FFTKernel.Name(), tr.CompressorKneeEps,
		tr.CompressorPreDelay, tr.MixPrecision, tr.FlushDenormals, d.SampleRate)
}

// DCStackKey identifies only the attributes the offline DC vector can see:
// no FFT kernel, no sample rate, and no mixing precision (the DC graph is a
// single-input chain, where summing width is irrelevant). Used by tests and
// diagnostics.
func (d *Device) DCStackKey() string {
	tr := d.AudioTraits()
	return fmt.Sprintf("%s|%g|%d|%t",
		tr.Kernel.Name(), tr.CompressorKneeEps, tr.CompressorPreDelay,
		tr.FlushDenormals)
}

// Version returns the full product version string of the browser.
func (d *Device) Version() string {
	switch d.Browser {
	case SamsungInternet:
		return fmt.Sprintf("%d.%d", d.Major, d.Patch%3)
	case Silk:
		return fmt.Sprintf("%d.%d.%d", d.Major, 2+d.Patch%3, d.Patch%7)
	case Yandex:
		return fmt.Sprintf("%d.%d.%d", d.Major, 1+d.Patch%5, d.Build)
	case Firefox:
		return strconv.Itoa(d.Major) + ".0"
	default:
		return fmt.Sprintf("%d.0.%d.%d", d.Major, d.Build, d.Patch)
	}
}
