package platform

import (
	"math/rand"

	"repro/internal/vectors"
)

// JitterModel converts a device's load level into per-iteration capture
// offsets for the live-context vectors. The model implements §3.1's
// empirical structure (Table 1):
//
//   - DC renders offline and never jitters (MaxStates = 1).
//   - Each FFT-path vector has a bounded pool of reachable capture states
//     (MaxStates, matching the paper's per-vector maxima: no user exceeded
//     them in 30 iterations even under heavy load) and a sensitivity: the
//     probability, per unit load, that a capture lands off the modal state.
//     Modulated signals change fastest, so AM and FM expose the most states
//     — the ordering of Table 1's means.
//
// Offsets are drawn per iteration: 0 (the modal, idle-machine state) with
// probability 1−λ·σ, otherwise uniformly from {1, …, MaxStates−1}. The state
// pool is a property of the platform, not the user, so two same-platform
// users reaching the same state emit the same elementary fingerprint — the
// collision structure the collation graph exploits.
type JitterModel struct {
	// MaxStates bounds the capture-state pool per vector.
	MaxStates map[vectors.ID]int
	// Sensitivity scales load into off-modal capture probability.
	Sensitivity map[vectors.ID]float64
}

// DefaultJitter returns the calibrated model. MaxStates mirror Table 1's
// "Max." row; sensitivities are fit so the simulated "Mean" row lands near
// the paper's (see TestTable1Calibration).
func DefaultJitter() *JitterModel {
	return &JitterModel{
		MaxStates: map[vectors.ID]int{
			vectors.DC:            1,
			vectors.FFT:           21,
			vectors.Hybrid:        18,
			vectors.CustomSignal:  18,
			vectors.MergedSignals: 21,
			vectors.AM:            26,
			vectors.FM:            24,
		},
		Sensitivity: map[vectors.ID]float64{
			vectors.DC:            0,
			vectors.FFT:           0.115,
			vectors.Hybrid:        0.155,
			vectors.CustomSignal:  0.155,
			vectors.MergedSignals: 0.295,
			vectors.AM:            0.62,
			vectors.FM:            0.64,
		},
	}
}

// Offset draws the capture offset for one iteration of vector v on a device
// with load λ, using rng as the entropy source.
func (m *JitterModel) Offset(rng *rand.Rand, load float64, v vectors.ID) int {
	states := m.MaxStates[v]
	if states <= 1 {
		return 0
	}
	p := load * m.Sensitivity[v]
	if p <= 0 || rng.Float64() >= p {
		return 0
	}
	return 1 + rng.Intn(states-1)
}

// SampleLoad draws a device's load level λ: a point mass of fully idle
// machines plus a right-skewed busy tail. Calibrated jointly with the
// sensitivities against Table 1 and Fig. 3.
func SampleLoad(rng *rand.Rand) float64 {
	r := rng.Float64()
	switch {
	case r < 0.30:
		return 0 // idle machines: perfectly stable captures
	case r < 0.96:
		u := rng.Float64()
		return u * u // moderate load, right-skewed
	default:
		return 1 // saturated machines: the heavy tail behind Table 1's maxima
	}
}
