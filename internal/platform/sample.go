package platform

import (
	"math/rand"
	"sort"
	"strconv"
)

// pickWeighted draws one label from a weighted catalog with rng.
func pickWeighted(rng *rand.Rand, ws []weighted) string {
	var total float64
	for _, w := range ws {
		total += w.weight
	}
	f := rng.Float64() * total
	for _, w := range ws {
		if f < w.weight {
			return w.label
		}
		f -= w.weight
	}
	return ws[len(ws)-1].label
}

// SampleCountry draws a participant country (57-country catalog, §2.3).
func SampleCountry(rng *rand.Rand) string {
	return pickWeighted(rng, countries)
}

// SampleOSVersion draws a detailed OS build key for the family.
func SampleOSVersion(rng *rand.Rand, os OSFamily) string {
	switch os {
	case Windows:
		return pickWeighted(rng, winVersions)
	case MacOS:
		return pickWeighted(rng, macVersions)
	case Android:
		return pickWeighted(rng, androidVersions)
	default:
		return pickWeighted(rng, linuxVersions)
	}
}

// SampleBrowserVersion draws (major, build, patch) for the browser.
func SampleBrowserVersion(rng *rand.Rand, b Browser) (major, build, patch int) {
	majors := majorsFor(b)
	weights := make([]float64, len(majors))
	for i, m := range majors {
		weights[i] = m.weight
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	f := rng.Float64() * total
	idx := len(majors) - 1
	for i, w := range weights {
		if f < w {
			idx = i
			break
		}
		f -= w
	}
	m := majors[idx]
	build = m.builds[rng.Intn(len(m.builds))]
	p, _ := strconv.Atoi(pickWeighted(rng, chromePatches))
	return m.major, build, p
}

// SampleAudioHardware draws the audio hardware tier, plus the device model
// for Android (whose UA exposes it; the audio stack follows the SoC).
func SampleAudioHardware(rng *rand.Rand, os OSFamily) (hw, model string) {
	switch os {
	case Windows:
		return "win", ""
	case MacOS:
		return pickWeighted(rng, macHardware), ""
	case Android:
		var total float64
		for _, m := range androidModels {
			total += m.weight
		}
		f := rng.Float64() * total
		for _, m := range androidModels {
			if f < m.weight {
				return m.soc, m.model
			}
			f -= m.weight
		}
		last := androidModels[len(androidModels)-1]
		return last.soc, last.model
	default:
		return pickWeighted(rng, linuxLibms), ""
	}
}

// SampleSIMD draws the CPU SIMD generation the FFT library dispatches on,
// independent of other hardware.
func SampleSIMD(rng *rand.Rand, os OSFamily, audioHW string) string {
	switch os {
	case Android:
		return "neon"
	case MacOS:
		if len(audioHW) >= 2 && audioHW[len(audioHW)-2:] == "m1" {
			return "neon"
		}
		return pickWeighted(rng, macSIMD[:1]) // Intel Macs: avx2 era
	default:
		return pickWeighted(rng, desktopSIMD)
	}
}

// SIMDFor selects the SIMD generation consistent with the machine's GPU:
// both track the machine's age, so the FFT dispatch tier is largely
// predictable from the canvas surface — another correlation that keeps
// audio's additive value modest (§4).
func SIMDFor(os OSFamily, audioHW, gpu string) string {
	switch os {
	case Android:
		return "neon"
	case MacOS:
		if len(audioHW) >= 2 && audioHW[len(audioHW)-2:] == "m1" {
			return "neon"
		}
		return "avx2"
	default:
		// Deterministic per GPU model, with the desktopSIMD catalog's
		// marginal shares.
		h := derive("simd:"+gpu, 0)
		f := float64(h>>11) / (1 << 53)
		var cum float64
		for _, w := range desktopSIMD {
			cum += w.weight
			if f < cum {
				return w.label
			}
		}
		return desktopSIMD[0].label
	}
}

// SampleRateFor draws the device's native audio sample rate in Hz.
func SampleRateFor(rng *rand.Rand, os OSFamily) float64 {
	var cat []weighted
	switch os {
	case Windows:
		cat = winRates
	case MacOS:
		cat = macRates
	case Android:
		cat = androidRates
	default:
		cat = linuxRates
	}
	v, _ := strconv.Atoi(pickWeighted(rng, cat))
	return float64(v)
}

// SampleGPU draws a graphics stack for the canvas surface, independent of
// the audio hardware.
func SampleGPU(rng *rand.Rand, os OSFamily) string {
	return pickWeighted(rng, gpusFor(os))
}

// GPUFor selects the graphics stack consistent with the audio hardware: a
// Mac model or phone SoC *determines* its GPU, so the canvas and audio
// surfaces are correlated there (which caps the additive value audio brings
// over canvas — §4). Windows and Linux towers mix audio and graphics parts
// freely, so those stay independent draws.
func GPUFor(rng *rand.Rand, os OSFamily, audioHW string) string {
	switch os {
	case MacOS, Android:
		pool := gpusFor(os)
		return pool[int(derive(audioHW, 11)%uint64(len(pool)))].label
	default:
		return pickWeighted(rng, gpusFor(os))
	}
}

// SampleFontPacks draws the user's extra installed font packs (possibly
// none), sorted and de-duplicated.
func SampleFontPacks(rng *rand.Rand) []string {
	if rng.Float64() < 0.50 {
		return nil
	}
	n := 1
	for rng.Float64() < 0.55 && n < 5 {
		n++
	}
	seen := make(map[string]struct{}, n)
	for len(seen) < n {
		seen[pickWeighted(rng, fontPacks)] = struct{}{}
	}
	out := make([]string, 0, n)
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
