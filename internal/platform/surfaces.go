package platform

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// UserAgent renders the device's User-Agent header, the comparison vector of
// the paper's Table 3 and §4 W3C analysis.
func (d *Device) UserAgent() string {
	switch d.OS {
	case Windows:
		nt := "10.0"
		if strings.HasPrefix(d.OSVersion, "6.") {
			nt = d.OSVersion[:3]
		}
		platform := fmt.Sprintf("Windows NT %s; Win64; x64", nt)
		return d.uaForPlatform(platform, false)
	case MacOS:
		platform := "Macintosh; Intel Mac OS X " + d.OSVersion
		return d.uaForPlatform(platform, false)
	case Linux:
		platform := "X11; Linux " + strings.SplitN(d.OSVersion, "-", 2)[0]
		if d.Browser == Firefox {
			platform = "X11; Linux x86_64"
		}
		return d.uaForPlatform(platform, false)
	default: // Android
		platform := fmt.Sprintf("Linux; Android %s; %s", d.OSVersion, d.Model)
		return d.uaForPlatform(platform, true)
	}
}

func (d *Device) uaForPlatform(platform string, mobile bool) string {
	if d.Browser == Firefox {
		return fmt.Sprintf("Mozilla/5.0 (%s; rv:%d.0) Gecko/20100101 Firefox/%d.0",
			platform, d.Major, d.Major)
	}
	chromiumVer := fmt.Sprintf("%d.0.%d.%d", d.chromiumMajor(), 4000+d.Build%1000, d.Patch)
	if d.Browser == Chrome || d.Browser == Edge || d.Browser == Opera {
		chromiumVer = fmt.Sprintf("%d.0.%d.%d", d.chromiumMajor(), d.Build, d.Patch)
	}
	tail := "Safari/537.36"
	if mobile {
		tail = "Mobile Safari/537.36"
	}
	ua := fmt.Sprintf("Mozilla/5.0 (%s) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/%s %s",
		platform, chromiumVer, tail)
	switch d.Browser {
	case Edge:
		ua += " Edg/" + d.Version()
	case Opera:
		ua += " OPR/" + d.Version()
	case Yandex:
		ua += " YaBrowser/" + d.Version() + " Yowser/2.5"
	case SamsungInternet:
		// Samsung places its token before the Chrome token; approximate by
		// appending (identity content is equivalent).
		ua += " SamsungBrowser/" + d.Version()
	case Silk:
		ua += " Silk/" + d.Version()
	}
	return ua
}

// CanvasFingerprint returns the hash a FingerprintJS-style canvas probe
// would produce: it depends on the GPU/driver raster path, the OS build's
// text rasterizer, the browser's paint generation, and — for a minority of
// machines — a driver-version quirk that makes the raster output unique
// (the long singleton tail the paper's Table 3 shows: 224 of 352 canvas
// values were unique).
func (d *Device) CanvasFingerprint() string {
	return surfaceHash("canvas",
		string(d.OS), d.canvasOSBucket(), d.GPU, d.GPUDriverQuirk,
		string(d.Engine()), d.paintGeneration(),
	)
}

// canvasOSBucket coarsens the OS build into text-rasterizer generations:
// canvas text output shifts at major OS releases, not at every patch build.
func (d *Device) canvasOSBucket() string {
	switch d.OS {
	case Windows:
		if strings.HasPrefix(d.OSVersion, "6.") {
			return "win-legacy"
		}
		return "win10"
	case MacOS:
		return "mac-" + strings.SplitN(d.OSVersion, "_", 2)[0]
	case Android:
		return "android-" + d.OSVersion
	default:
		return "linux"
	}
}

// paintGeneration buckets the engine version into paint-pipeline
// generations: canvas raster output changes across engine releases, but far
// less often than the version number does.
func (d *Device) paintGeneration() string {
	if d.Engine() == Gecko {
		if d.Major <= 78 {
			return "gk1"
		}
		return "gk2"
	}
	switch m := d.chromiumMajor(); {
	case m <= 85:
		return "bl1"
	case m <= 88:
		return "bl2"
	default:
		return "bl3"
	}
}

// FontsFingerprint returns the JS font-probe hash: the OS build's base font
// set plus every detected extra pack.
func (d *Device) FontsFingerprint() string {
	parts := []string{"fonts", string(d.OS), baseFontSet(d.OS, d.OSVersion)}
	packs := append([]string(nil), d.FontPacks...)
	sort.Strings(packs)
	parts = append(parts, packs...)
	return surfaceHash(parts[0], parts[1:]...)
}

// baseFontSet buckets OS builds into base-font generations.
func baseFontSet(os OSFamily, version string) string {
	switch os {
	case Windows:
		if strings.HasPrefix(version, "6.") {
			return "win-legacy"
		}
		return "win10-" + version[strings.LastIndex(version, ".")+1:]
	case MacOS:
		return "mac-" + strings.SplitN(version, "_", 2)[0]
	case Android:
		return "android-" + version
	default:
		return "linux-" + version
	}
}

// MathJSFingerprint returns the Math-object fingerprint (Saito et al.) the
// paper's §5 follow-up compares against: the outputs of JS Math functions on
// probe constants. V8 ships its own fdlibm port, identical on every OS;
// SpiderMonkey historically leaned on the system libm, so it varies by
// version *and* OS — the structure of Table 5.
func (d *Device) MathJSFingerprint() string {
	if d.Engine() == Blink {
		// V8 standardized its Math implementation (its own fdlibm port)
		// well before the study window: one class on every OS.
		return surfaceHash("mathjs", "v8")
	}
	bucket := "fx-88"
	switch {
	case d.Major <= 78:
		bucket = "fx-esr"
	case d.Major <= 86:
		bucket = "fx-86"
	case d.Major == 87:
		bucket = "fx-87"
	}
	// SpiderMonkey bundles its own math on Windows/macOS but leans on the
	// system libm on Linux builds.
	libm := "bundled"
	if d.OS == Linux {
		libm = "system"
	}
	return surfaceHash("mathjs", "gecko", bucket, libm)
}

// surfaceHash hashes a labeled tuple into a fingerprint string.
func surfaceHash(kind string, parts ...string) string {
	h := sha256.New()
	h.Write([]byte(kind))
	for _, p := range parts {
		h.Write([]byte{0x1f})
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}
