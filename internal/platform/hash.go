// Package platform models the device/browser population of the paper's user
// study. It is the substitution substrate for the 2093 human participants we
// cannot re-recruit (see DESIGN.md): each Device carries the attributes a
// real participant's machine would have — OS and version, browser and
// version, audio hardware tier, CPU SIMD generation, native sample rate,
// GPU, installed fonts, machine load — and derives from them, fully
// deterministically, the webaudio engine traits, the User-Agent string, and
// the Canvas / Font / Math-JS fingerprinting surfaces.
//
// The derivations encode the causal structure the paper reports:
//
//   - Windows browsers share one audio stack per engine lineage (Table 5:
//     393 Windows/Chrome users, one DC fingerprint) while macOS and Android
//     audio stacks vary per hardware model (5 DC fingerprints in 30 and 21
//     users respectively).
//   - The FFT path varies along axes the compressor path does not see (FFT
//     library SIMD dispatch, device sample rate) and vice versa (compressor
//     knee/pre-delay per hardware tier), so neither partition refines the
//     other — the reason Hybrid has more distinct values than either.
//   - Math-JS fingerprints depend on the JS engine, not the audio stack:
//     V8 is uniform everywhere, SpiderMonkey varies by version and OS libm.
package platform

import "hash/fnv"

// hash64 returns the FNV-1a hash of s, the deterministic root of all
// label-derived parameters.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// splitmix64 advances the SplitMix64 generator; used to derive independent
// sub-seeds from one label hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// derive returns the n-th independent 64-bit value derived from label.
func derive(label string, n int) uint64 {
	x := hash64(label)
	for i := 0; i <= n; i++ {
		x = splitmix64(x)
	}
	return x
}
