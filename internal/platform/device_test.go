package platform_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/population"
	"repro/internal/vectors"
)

func sampleDevices(t *testing.T, n int) []*platform.Device {
	t.Helper()
	return population.Sample(population.Config{Seed: 20220325, N: n})
}

func TestUserAgentFormats(t *testing.T) {
	devs := sampleDevices(t, 600)
	for _, d := range devs {
		ua := d.UserAgent()
		if !strings.HasPrefix(ua, "Mozilla/5.0 (") {
			t.Fatalf("UA missing prefix: %q", ua)
		}
		switch d.Browser {
		case platform.Firefox:
			if !strings.Contains(ua, "Gecko/20100101 Firefox/") {
				t.Fatalf("Firefox UA malformed: %q", ua)
			}
			if strings.Contains(ua, "Chrome/") {
				t.Fatalf("Firefox UA contains Chrome token: %q", ua)
			}
		case platform.Edge:
			if !strings.Contains(ua, " Edg/") {
				t.Fatalf("Edge UA missing Edg token: %q", ua)
			}
		case platform.Opera:
			if !strings.Contains(ua, " OPR/") {
				t.Fatalf("Opera UA missing OPR token: %q", ua)
			}
		case platform.SamsungInternet:
			if !strings.Contains(ua, "SamsungBrowser/") {
				t.Fatalf("Samsung UA malformed: %q", ua)
			}
		}
		switch d.OS {
		case platform.Windows:
			if !strings.Contains(ua, "Windows NT") {
				t.Fatalf("Windows UA missing platform: %q", ua)
			}
		case platform.Android:
			if !strings.Contains(ua, "Android "+d.OSVersion) || !strings.Contains(ua, d.Model) {
				t.Fatalf("Android UA missing version/model: %q", ua)
			}
			if !strings.Contains(ua, "Mobile") && d.Browser != platform.Firefox {
				t.Fatalf("Android UA not mobile: %q", ua)
			}
		case platform.MacOS:
			if !strings.Contains(ua, "Macintosh; Intel Mac OS X") {
				t.Fatalf("macOS UA missing platform: %q", ua)
			}
		}
	}
}

func TestEngineOf(t *testing.T) {
	if platform.EngineOf(platform.Firefox) != platform.Gecko {
		t.Error("Firefox should be Gecko")
	}
	for _, b := range []platform.Browser{platform.Chrome, platform.Edge, platform.Opera,
		platform.SamsungInternet, platform.Silk, platform.Yandex} {
		if platform.EngineOf(b) != platform.Blink {
			t.Errorf("%s should be Blink", b)
		}
	}
}

func TestSurfaceDeterminism(t *testing.T) {
	devs := sampleDevices(t, 50)
	for _, d := range devs {
		if d.CanvasFingerprint() != d.CanvasFingerprint() ||
			d.FontsFingerprint() != d.FontsFingerprint() ||
			d.MathJSFingerprint() != d.MathJSFingerprint() ||
			d.AudioStackKey() != d.AudioStackKey() {
			t.Fatalf("device %s surfaces nondeterministic", d.ID)
		}
	}
}

func TestWindowsBlinkSharesOneDCStack(t *testing.T) {
	devs := sampleDevices(t, 2093)
	keys := map[string]struct{}{}
	for _, d := range devs {
		if d.OS == platform.Windows && d.Engine() == platform.Blink {
			keys[d.DCStackKey()] = struct{}{}
		}
	}
	if len(keys) != 1 {
		t.Errorf("Windows/Blink DC stacks = %d, want exactly 1 (Table 5)", len(keys))
	}
}

// TestDistinctStackKeysRenderDistinctFingerprints is the linchpin: the
// population's platform classes must be *physically* distinguishable by the
// vectors, not just nominally labeled. Every distinct DC stack key must
// produce a distinct DC hash, and every distinct audio stack key a distinct
// 7-vector fingerprint tuple.
func TestDistinctStackKeysRenderDistinctFingerprints(t *testing.T) {
	if testing.Short() {
		t.Skip("rendering sweep skipped in -short mode")
	}
	devs := sampleDevices(t, 2093)

	// One representative device per audio stack key.
	reps := map[string]*platform.Device{}
	for _, d := range devs {
		if _, ok := reps[d.AudioStackKey()]; !ok {
			reps[d.AudioStackKey()] = d
		}
	}
	t.Logf("%d distinct audio stacks to render", len(reps))

	dcByKey := map[string]string{}   // DCStackKey -> DC hash
	comboSeen := map[string]string{} // combined tuple -> stack key
	for key, d := range reps {
		r := vectors.NewRunner(d.AudioTraits(), d.SampleRate)
		fps, err := r.RunAll(0)
		if err != nil {
			t.Fatalf("stack %s: %v", key, err)
		}
		// DC uniqueness per DC stack key.
		dcKey := d.DCStackKey()
		if prev, ok := dcByKey[dcKey]; ok {
			if prev != fps[0].Hash {
				t.Errorf("same DC stack %q produced two DC hashes", dcKey)
			}
		} else {
			for k2, h := range dcByKey {
				if h == fps[0].Hash && k2 != dcKey {
					t.Errorf("DC stacks %q and %q collide on DC hash", k2, dcKey)
				}
			}
			dcByKey[dcKey] = fps[0].Hash
		}
		// Combined tuple uniqueness per audio stack key.
		var sb strings.Builder
		for _, fp := range fps {
			sb.WriteString(fp.Hash)
		}
		if prev, dup := comboSeen[sb.String()]; dup {
			t.Errorf("audio stacks %q and %q render identical 7-vector tuples", prev, key)
		}
		comboSeen[sb.String()] = key
	}
}

func TestJitterModelShape(t *testing.T) {
	m := platform.DefaultJitter()
	rng := rand.New(rand.NewSource(1))

	// DC never jitters, at any load.
	for i := 0; i < 100; i++ {
		if m.Offset(rng, 1.0, vectors.DC) != 0 {
			t.Fatal("DC produced a nonzero capture offset")
		}
	}
	// Zero load never jitters.
	for _, v := range vectors.FFTBased {
		for i := 0; i < 100; i++ {
			if m.Offset(rng, 0, v) != 0 {
				t.Fatalf("%v jittered at zero load", v)
			}
		}
	}
	// Offsets stay inside the per-vector state pool.
	for _, v := range vectors.FFTBased {
		maxSeen := 0
		for i := 0; i < 20000; i++ {
			off := m.Offset(rng, 1.0, v)
			if off > maxSeen {
				maxSeen = off
			}
		}
		if maxSeen >= m.MaxStates[v] {
			t.Errorf("%v offset %d ≥ pool size %d", v, maxSeen, m.MaxStates[v])
		}
		if maxSeen == 0 {
			t.Errorf("%v never jittered at full load", v)
		}
	}
	// Sensitivity ordering: AM/FM > Merged > Hybrid ≥ FFT (Table 1 means).
	s := m.Sensitivity
	if !(s[vectors.AM] > s[vectors.MergedSignals] &&
		s[vectors.MergedSignals] > s[vectors.Hybrid] &&
		s[vectors.Hybrid] >= s[vectors.FFT]) {
		t.Errorf("sensitivity ordering wrong: %v", s)
	}
}

func TestSampleLoadDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	zero, sum := 0, 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		l := platform.SampleLoad(rng)
		if l < 0 || l > 1 {
			t.Fatalf("load %g out of [0,1]", l)
		}
		if l == 0 {
			zero++
		}
		sum += l
	}
	zfrac := float64(zero) / n
	if zfrac < 0.25 || zfrac > 0.35 {
		t.Errorf("idle fraction = %.3f, want ≈ 0.30", zfrac)
	}
	mean := sum / n
	if mean < 0.15 || mean > 0.32 {
		t.Errorf("mean load = %.3f, want ≈ 0.23", mean)
	}
}
