package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func tempStore(t *testing.T, opts Options) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fp.ndjson")
	s, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func rec(user string, it int) Record {
	return Record{
		SessionID: "s-1", UserID: user, Vector: "DC", Iteration: it,
		Hash: "abc123", ReceivedAt: time.Unix(1700000000, 0).UTC(),
	}
}

func TestAppendAndAll(t *testing.T) {
	s := tempStore(t, Options{})
	if s.Count() != 0 {
		t.Fatalf("fresh store count = %d", s.Count())
	}
	if err := s.Append(rec("u1", 0), rec("u1", 1), rec("u2", 0)); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 3 {
		t.Errorf("count = %d, want 3", s.Count())
	}
	recs, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].UserID != "u1" || recs[2].UserID != "u2" {
		t.Errorf("All() = %+v", recs)
	}
	if !recs[0].ReceivedAt.Equal(time.Unix(1700000000, 0).UTC()) {
		t.Errorf("timestamp mangled: %v", recs[0].ReceivedAt)
	}
}

func TestValidation(t *testing.T) {
	s := tempStore(t, Options{})
	bad := []Record{
		{Vector: "DC", Hash: "x"},                             // no user
		{UserID: "u", Hash: "x"},                              // no vector
		{UserID: "u", Vector: "DC"},                           // no hash
		{UserID: "u", Vector: "DC", Hash: "x", Iteration: -1}, // negative
	}
	for i, r := range bad {
		if err := s.Append(r); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
	if s.Count() != 0 {
		t.Errorf("invalid records persisted: count = %d", s.Count())
	}
}

func TestReopenCountsExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fp.ndjson")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append(rec("u", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 10 {
		t.Errorf("reopened count = %d, want 10", s2.Count())
	}
	if err := s2.Append(rec("u", 10)); err != nil {
		t.Fatal(err)
	}
	recs, _ := s2.All()
	if len(recs) != 11 {
		t.Errorf("after reopen+append: %d records", len(recs))
	}
}

func TestCorruptAndTornLinesSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fp.ndjson")
	content := `{"session_id":"s","user_id":"u1","vector":"DC","iteration":0,"hash":"aa","received_at":"2021-03-01T00:00:00Z"}
this is not json
{"user_id":"","vector":"DC","hash":"aa","received_at":"2021-03-01T00:00:00Z"}
{"session_id":"s","user_id":"u2","vector":"FFT","iteration":1,"hash":"bb","received_at":"2021-03-01T00:00:00Z"}
{"session_id":"s","user_id":"u3","vector":"DC","iter`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Count() != 2 {
		t.Errorf("count = %d, want 2 valid records", s.Count())
	}
	recs, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].UserID != "u1" || recs[1].UserID != "u2" {
		t.Errorf("All() = %+v", recs)
	}
}

func TestConcurrentAppends(t *testing.T) {
	s := tempStore(t, Options{})
	var wg sync.WaitGroup
	const goroutines, each = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := s.Append(rec(fmt.Sprintf("u%d", g), i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Count() != goroutines*each {
		t.Errorf("count = %d, want %d", s.Count(), goroutines*each)
	}
	recs, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != goroutines*each {
		t.Errorf("All() = %d records (interleaved writes corrupted lines?)", len(recs))
	}
}

func TestWriteTo(t *testing.T) {
	s := tempStore(t, Options{SyncEveryAppend: true})
	if err := s.Append(rec("u1", 0), rec("u2", 0)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("WriteTo wrote nothing")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Errorf("export has %d lines, want 2", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "{") || !strings.HasSuffix(l, "}") {
			t.Errorf("non-JSON export line: %q", l)
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "fp.ndjson")
	s, err := Open(path, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	r := rec("user", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Iteration = i
		if err := s.Append(r); err != nil {
			b.Fatal(err)
		}
	}
}
