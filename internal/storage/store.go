// Package storage persists collected fingerprint observations as an
// append-only NDJSON log — the role Cloud Firebase played for the paper's
// collection site. One JSON object per line, fsync-able, safely readable
// while being appended, tolerant of a truncated final line after a crash.
package storage

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Record is one collected elementary fingerprint observation.
type Record struct {
	// SessionID identifies the collection session that produced the record.
	SessionID string `json:"session_id"`
	// UserID is the participant identifier.
	UserID string `json:"user_id"`
	// Vector is the fingerprinting vector name (vectors.ID.String form).
	Vector string `json:"vector"`
	// Iteration is the 0-based repetition index.
	Iteration int `json:"iteration"`
	// Hash is the elementary fingerprint (hex digest).
	Hash string `json:"hash"`
	// Sum is the scalar summary reported alongside the hash.
	Sum float64 `json:"sum,omitempty"`
	// UserAgent is the submitting browser's UA header.
	UserAgent string `json:"user_agent,omitempty"`
	// Surfaces carries auxiliary fingerprints (canvas, fonts, mathjs, …).
	Surfaces map[string]string `json:"surfaces,omitempty"`
	// ReceivedAt is the server receive time (UTC).
	ReceivedAt time.Time `json:"received_at"`
}

// Validate reports whether the record is well-formed enough to store.
func (r *Record) Validate() error {
	switch {
	case r.UserID == "":
		return errors.New("storage: record missing user_id")
	case r.Vector == "":
		return errors.New("storage: record missing vector")
	case r.Hash == "":
		return errors.New("storage: record missing hash")
	case r.Iteration < 0:
		return fmt.Errorf("storage: negative iteration %d", r.Iteration)
	}
	return nil
}

// Store is an append-only NDJSON record log. Safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	path  string
	count int
	sync  bool
}

// Options configures Open.
type Options struct {
	// SyncEveryAppend fsyncs after every Append batch (durable, slower).
	SyncEveryAppend bool
}

// Open opens (creating if needed) the store at path and counts existing
// records. A trailing partial line (crash artifact) is tolerated and
// ignored.
func Open(path string, opts Options) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	s := &Store{f: f, w: bufio.NewWriter(f), path: path, sync: opts.SyncEveryAppend}
	if err := s.scan(func(Record) error { s.count++; return nil }); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// Count returns the number of records (excluding any corrupt lines).
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Append validates and persists records atomically with respect to other
// Append calls.
func (s *Store) Append(recs ...Record) error {
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var bytes int64
	for i := range recs {
		line, err := json.Marshal(&recs[i])
		if err != nil {
			return fmt.Errorf("storage: marshal: %w", err)
		}
		if _, err := s.w.Write(line); err != nil {
			return fmt.Errorf("storage: write: %w", err)
		}
		if err := s.w.WriteByte('\n'); err != nil {
			return fmt.Errorf("storage: write: %w", err)
		}
		bytes += int64(len(line)) + 1
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush: %w", err)
	}
	if s.sync {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("storage: sync: %w", err)
		}
	}
	s.count += len(recs)
	mAppendBatches.Inc()
	mAppendRecords.Add(int64(len(recs)))
	mAppendBytes.Add(bytes)
	return nil
}

// scan streams every valid record from disk through fn. Corrupt or partial
// lines are skipped. Caller must hold no lock; scan opens its own handle so
// it can run during appends.
func (s *Store) scan(fn func(Record) error) error {
	rf, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("storage: reopen %s: %w", s.path, err)
	}
	defer rf.Close()
	sc := bufio.NewScanner(rf)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // tolerate torn/corrupt lines
		}
		if rec.Validate() != nil {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// All loads every record from disk.
func (s *Store) All() ([]Record, error) {
	s.mu.Lock()
	if err := s.w.Flush(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()
	var out []Record
	err := s.scan(func(r Record) error { out = append(out, r); return nil })
	return out, err
}

// WriteTo streams the raw NDJSON log to w (the export endpoint's body).
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	s.mu.Lock()
	if err := s.w.Flush(); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.mu.Unlock()
	rf, err := os.Open(s.path)
	if err != nil {
		return 0, err
	}
	defer rf.Close()
	n, err := io.Copy(w, rf)
	mExports.Inc()
	mExportBytes.Add(n)
	return n, err
}

// Close flushes and closes the backing file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
