// Package storage persists collected fingerprint observations as an
// append-only NDJSON log — the role Cloud Firebase played for the paper's
// collection site. One JSON object per line, CRC-checked against torn and
// corrupt writes, fsync-able with group commit, rotatable into sealed
// segments, safely readable while being appended, and recoverable up to the
// first torn write after a crash.
//
// On-disk format: each appended line is "<json>\t#c<crc32c-hex8>". The CRC
// covers the JSON bytes; legacy lines without the suffix (older stores,
// exports) remain readable. Exports (WriteTo) strip the suffix so the wire
// format stays plain NDJSON.
//
// Segments: with Options.MaxSegmentBytes set, the active file at Path is
// sealed (fsynced, then renamed to Path.NNNNNN) once it exceeds the limit,
// and a fresh active file is started. Readers iterate sealed segments in
// order, then the active file.
package storage

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record is one collected elementary fingerprint observation.
type Record struct {
	// SessionID identifies the collection session that produced the record.
	SessionID string `json:"session_id"`
	// UserID is the participant identifier.
	UserID string `json:"user_id"`
	// Vector is the fingerprinting vector name (vectors.ID.String form).
	Vector string `json:"vector"`
	// Iteration is the 0-based repetition index.
	Iteration int `json:"iteration"`
	// Hash is the elementary fingerprint (hex digest).
	Hash string `json:"hash"`
	// Sum is the scalar summary reported alongside the hash.
	Sum float64 `json:"sum,omitempty"`
	// UserAgent is the submitting browser's UA header.
	UserAgent string `json:"user_agent,omitempty"`
	// Surfaces carries auxiliary fingerprints (canvas, fonts, mathjs, …).
	Surfaces map[string]string `json:"surfaces,omitempty"`
	// ReceivedAt is the server receive time (UTC).
	ReceivedAt time.Time `json:"received_at"`
	// Seq is the global arrival sequence number a sharded store stamps at
	// append time (internal/shard.Stores), letting a cross-shard read
	// reconstruct the original submission order. Zero (omitted from JSON)
	// on unsharded stores, so a -shards 1 deployment's files stay
	// byte-identical to pre-sharding ones.
	Seq int64 `json:"seq,omitempty"`
}

// Validate reports whether the record is well-formed enough to store.
func (r *Record) Validate() error {
	switch {
	case r.UserID == "":
		return errors.New("storage: record missing user_id")
	case r.Vector == "":
		return errors.New("storage: record missing vector")
	case r.Hash == "":
		return errors.New("storage: record missing hash")
	case r.Iteration < 0:
		return fmt.Errorf("storage: negative iteration %d", r.Iteration)
	}
	return nil
}

// castagnoli is the CRC-32C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcTagLen is len("\t#c") + 8 hex digits.
const crcTagLen = 3 + 8

// appendCRC appends the on-disk checksum suffix for payload to dst.
func appendCRC(dst, payload []byte) []byte {
	var hexbuf [8]byte
	sum := crc32.Checksum(payload, castagnoli)
	hex.Encode(hexbuf[:], []byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)})
	dst = append(dst, '\t', '#', 'c')
	return append(dst, hexbuf[:]...)
}

// splitCRC separates a stored line into its JSON payload and verifies the
// CRC suffix when present. Lines without a tab are legacy plain NDJSON and
// pass through unverified. A present-but-wrong suffix means corruption.
func splitCRC(line []byte) (payload []byte, ok bool) {
	i := bytes.LastIndexByte(line, '\t')
	if i < 0 {
		return line, true
	}
	payload, tag := line[:i], line[i+1:]
	if len(tag) != crcTagLen-1 || tag[0] != '#' || tag[1] != 'c' {
		return nil, false
	}
	var sum [4]byte
	if _, err := hex.Decode(sum[:], tag[2:]); err != nil {
		return nil, false
	}
	want := uint32(sum[0])<<24 | uint32(sum[1])<<16 | uint32(sum[2])<<8 | uint32(sum[3])
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, false
	}
	return payload, true
}

// parseLine decodes one stored line into a record. It reports ok=false for
// torn, corrupt, CRC-mismatched or invalid lines.
func parseLine(line []byte, rec *Record) bool {
	payload, ok := splitCRC(line)
	if !ok {
		mCorruptLines.Inc()
		return false
	}
	if err := json.Unmarshal(payload, rec); err != nil {
		mCorruptLines.Inc()
		return false
	}
	return rec.Validate() == nil
}

// Store is an append-only NDJSON record log. Safe for concurrent use.
type Store struct {
	path    string
	maxSeg  int64
	durable bool

	// mu serializes encoding, buffered writes, rotation and counters.
	// fsync happens outside it (group commit via syncMu) so concurrent
	// appenders are not convoyed behind the disk.
	mu       sync.Mutex
	f        *os.File
	w        *bufio.Writer
	count    int
	segBytes int64
	sealed   []string // sealed segment paths, oldest first
	seq      uint64   // append batches flushed so far

	syncMu    sync.Mutex
	syncedSeq uint64 // append batches known durable (guarded by syncMu)
}

// Options configures Open.
type Options struct {
	// SyncEveryAppend makes every Append batch durable before returning.
	// Appends are group-committed: concurrent batches share one fsync.
	SyncEveryAppend bool
	// MaxSegmentBytes seals the active file into a read-only segment once
	// it exceeds this size (0 disables rotation).
	MaxSegmentBytes int64
}

// Open opens (creating if needed) the store at path and counts existing
// records across sealed segments and the active file. Trailing partial
// lines (crash artifacts) are tolerated and ignored; call Recover to
// physically truncate them.
func Open(path string, opts Options) (*Store, error) {
	sealed, err := sealedSegments(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	s := &Store{
		path: path, maxSeg: opts.MaxSegmentBytes, durable: opts.SyncEveryAppend,
		f: f, w: bufio.NewWriter(f), segBytes: st.Size(), sealed: sealed,
	}
	if err := s.scan(func(Record) error { s.count++; return nil }); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// sealedSegments lists path's sealed segment files, oldest first.
func sealedSegments(path string) ([]string, error) {
	matches, err := filepath.Glob(path + ".*")
	if err != nil {
		return nil, fmt.Errorf("storage: glob segments: %w", err)
	}
	var sealed []string
	for _, m := range matches {
		if isSegmentName(path, m) {
			sealed = append(sealed, m)
		}
	}
	sort.Strings(sealed)
	return sealed, nil
}

// isSegmentName reports whether candidate is path + "." + 6 digits.
func isSegmentName(path, candidate string) bool {
	suffix, ok := strings.CutPrefix(candidate, path+".")
	if !ok || len(suffix) != 6 {
		return false
	}
	for i := 0; i < len(suffix); i++ {
		if suffix[i] < '0' || suffix[i] > '9' {
			return false
		}
	}
	return true
}

// Path returns the active file path.
func (s *Store) Path() string { return s.path }

// Segments returns the sealed segment paths, oldest first.
func (s *Store) Segments() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.sealed...)
}

// Count returns the number of records (excluding any corrupt lines).
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Append validates and persists records atomically with respect to other
// Append calls. With SyncEveryAppend, the batch is durable on return;
// concurrent batches share fsyncs (group commit), so appenders serialize
// only on the in-memory write, not the disk flush.
func (s *Store) Append(recs ...Record) error {
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	var bytes int64
	for i := range recs {
		line, err := json.Marshal(&recs[i])
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("storage: marshal: %w", err)
		}
		line = appendCRC(line, line)
		line = append(line, '\n')
		if _, err := s.w.Write(line); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("storage: write: %w", err)
		}
		bytes += int64(len(line))
	}
	if err := s.w.Flush(); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("storage: flush: %w", err)
	}
	s.count += len(recs)
	s.segBytes += bytes
	s.seq++
	mySeq := s.seq
	f := s.f
	if s.maxSeg > 0 && s.segBytes >= s.maxSeg {
		if err := s.sealLocked(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.mu.Unlock()

	mAppendBatches.Inc()
	mAppendRecords.Add(int64(len(recs)))
	mAppendBytes.Add(bytes)
	if s.durable {
		return s.syncTo(mySeq, f)
	}
	return nil
}

// syncTo makes every batch up to seq durable. If a concurrent appender (or
// a seal) already synced past seq, the fsync is skipped — that is the group
// commit: one disk flush covers every batch flushed to the OS before it.
func (s *Store) syncTo(seq uint64, f *os.File) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.syncedSeq >= seq {
		return nil
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: sync: %w", err)
	}
	s.syncedSeq = seq
	return nil
}

// sealLocked rotates the active file into a read-only segment. Caller
// holds s.mu; the buffered writer is already flushed. The segment is
// fsynced before the rename so sealed data is always durable.
func (s *Store) sealLocked() error {
	s.syncMu.Lock()
	if err := s.f.Sync(); err != nil {
		s.syncMu.Unlock()
		return fmt.Errorf("storage: seal sync: %w", err)
	}
	s.syncedSeq = s.seq
	s.syncMu.Unlock()
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("storage: seal close: %w", err)
	}
	seg := fmt.Sprintf("%s.%06d", s.path, len(s.sealed)+1)
	if err := os.Rename(s.path, seg); err != nil {
		return fmt.Errorf("storage: seal rename: %w", err)
	}
	s.sealed = append(s.sealed, seg)
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("storage: reopen after seal: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.segBytes = 0
	mSegmentsSealed.Inc()
	return nil
}

// files snapshots the paths a reader should visit: sealed segments oldest
// first, then the active file.
func (s *Store) files() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]string(nil), s.sealed...)
	return append(out, s.path)
}

// scanFile streams every valid record of one file through fn. Corrupt,
// torn and CRC-mismatched lines are skipped.
func scanFile(path string, fn func(Record) error) error {
	rf, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("storage: reopen %s: %w", path, err)
	}
	defer rf.Close()
	sc := bufio.NewScanner(rf)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		var rec Record
		if !parseLine(sc.Bytes(), &rec) {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// scan streams every valid record (all segments, then the active file)
// through fn. Caller must hold no lock; scan opens its own handles so it
// can run during appends.
func (s *Store) scan(fn func(Record) error) error {
	for _, path := range s.files() {
		if err := scanFile(path, fn); err != nil {
			return err
		}
	}
	return nil
}

// All loads every record from disk.
func (s *Store) All() ([]Record, error) {
	if err := s.flush(); err != nil {
		return nil, err
	}
	var out []Record
	err := s.scan(func(r Record) error { out = append(out, r); return nil })
	return out, err
}

func (s *Store) flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// WriteTo streams the dataset as plain NDJSON to w (the export endpoint's
// body): CRC suffixes are stripped and corrupt lines dropped, so the wire
// format stays pure JSON-per-line regardless of the on-disk format.
func (s *Store) WriteTo(w io.Writer) (int64, error) {
	if err := s.flush(); err != nil {
		return 0, err
	}
	var n int64
	bw := bufio.NewWriter(w)
	for _, path := range s.files() {
		rf, err := os.Open(path)
		if err != nil {
			return n, err
		}
		sc := bufio.NewScanner(rf)
		sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
		for sc.Scan() {
			payload, ok := splitCRC(sc.Bytes())
			if !ok || len(payload) == 0 {
				continue
			}
			if _, err := bw.Write(payload); err != nil {
				rf.Close()
				return n, err
			}
			if err := bw.WriteByte('\n'); err != nil {
				rf.Close()
				return n, err
			}
			n += int64(len(payload)) + 1
		}
		err = sc.Err()
		rf.Close()
		if err != nil {
			return n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	mExports.Inc()
	mExportBytes.Add(n)
	return n, nil
}

// RecoverReport describes what Recover salvaged.
type RecoverReport struct {
	// SalvagedRecords is the store-wide record count after recovery.
	SalvagedRecords int
	// DroppedBytes is how much of the active file's tail was truncated.
	DroppedBytes int64
	// TruncatedAt is the active-file offset recovery cut at (its size when
	// nothing was dropped).
	TruncatedAt int64
}

// Recover salvages the active file up to the first torn or corrupt write:
// everything before the first bad line is kept, the bad line and everything
// after it is physically truncated (write-ahead-log semantics — a torn
// write means nothing after it can be trusted), and the record count is
// rebuilt. Safe to call on a live store between appends.
func (s *Store) Recover() (RecoverReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		return RecoverReport{}, err
	}
	raw, err := os.ReadFile(s.path)
	if err != nil {
		return RecoverReport{}, fmt.Errorf("storage: recover read: %w", err)
	}
	var good int64
	activeRecords := 0
	for off := int64(0); off < int64(len(raw)); {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		var rec Record
		if !parseLine(raw[off:off+int64(nl)], &rec) {
			break
		}
		off += int64(nl) + 1
		good = off
		activeRecords++
	}
	dropped := int64(len(raw)) - good
	if dropped > 0 {
		if err := s.f.Truncate(good); err != nil {
			return RecoverReport{}, fmt.Errorf("storage: recover truncate: %w", err)
		}
		s.segBytes = good
		mTruncatedBytes.Add(dropped)
	}
	// Rebuild the count: sealed segments (scanned leniently) + salvaged
	// active records.
	total := activeRecords
	for _, seg := range s.sealed {
		if err := scanFile(seg, func(Record) error { total++; return nil }); err != nil {
			return RecoverReport{}, err
		}
	}
	s.count = total
	mRecoveredRecords.Add(int64(activeRecords))
	return RecoverReport{SalvagedRecords: total, DroppedBytes: dropped, TruncatedAt: good}, nil
}

// Close flushes and closes the backing file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
