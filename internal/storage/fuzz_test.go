package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreScan feeds arbitrary bytes as a store file: Open must never
// panic, must count only valid records, and All must agree with Count.
func FuzzStoreScan(f *testing.F) {
	f.Add([]byte(`{"session_id":"s","user_id":"u","vector":"DC","iteration":0,"hash":"aa","received_at":"2021-03-01T00:00:00Z"}`))
	f.Add([]byte("not json at all\n{{{{"))
	f.Add([]byte("{\"user_id\":\"u\"}\n\x00\x01\x02"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ndjson")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(path, Options{})
		if err != nil {
			return // I/O-level failure is acceptable; panics are not
		}
		defer s.Close()
		recs, err := s.All()
		if err != nil {
			return
		}
		if len(recs) != s.Count() {
			t.Fatalf("All() returned %d records, Count() = %d", len(recs), s.Count())
		}
		for _, r := range recs {
			if r.Validate() != nil {
				t.Fatalf("invalid record surfaced from scan: %+v", r)
			}
		}
		// The store must remain appendable after ingesting garbage.
		if err := s.Append(Record{UserID: "u", Vector: "DC", Hash: "aa"}); err != nil {
			t.Fatalf("append after fuzz data: %v", err)
		}
	})
}
