package storage

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreScan feeds arbitrary bytes as a store file: Open must never
// panic, must count only valid records, and All must agree with Count.
func FuzzStoreScan(f *testing.F) {
	valid := []byte(`{"session_id":"s","user_id":"u","vector":"DC","iteration":0,"hash":"aa","received_at":"2021-03-01T00:00:00Z"}`)
	f.Add(valid)
	f.Add([]byte("not json at all\n{{{{"))
	f.Add([]byte("{\"user_id\":\"u\"}\n\x00\x01\x02"))
	f.Add([]byte(""))

	// CRC-framed lines: intact, corrupted payload, torn mid-line, torn
	// mid-tag, and a malformed tag — the fault classes Recover must absorb.
	crcLine := append(appendCRC(nil, valid), '\n')
	f.Add(crcLine)
	flipped := append([]byte(nil), crcLine...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	f.Add(append(append([]byte(nil), crcLine...), crcLine[:len(crcLine)/2]...))
	f.Add(crcLine[:len(crcLine)-5])
	f.Add(append(append([]byte(nil), valid...), []byte("\t#czzzzzzzz\n")...))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.ndjson")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(path, Options{})
		if err != nil {
			return // I/O-level failure is acceptable; panics are not
		}
		defer s.Close()
		recs, err := s.All()
		if err != nil {
			return
		}
		if len(recs) != s.Count() {
			t.Fatalf("All() returned %d records, Count() = %d", len(recs), s.Count())
		}
		for _, r := range recs {
			if r.Validate() != nil {
				t.Fatalf("invalid record surfaced from scan: %+v", r)
			}
		}
		// The store must remain appendable after ingesting garbage.
		if err := s.Append(Record{UserID: "u", Vector: "DC", Hash: "aa"}); err != nil {
			t.Fatalf("append after fuzz data: %v", err)
		}
	})
}
