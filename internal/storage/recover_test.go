package storage

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestCRCLinesRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fp.ndjson")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("u1", 0), rec("u2", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if !strings.Contains(line, "\t#c") {
			t.Errorf("appended line lacks CRC suffix: %q", line)
		}
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 2 {
		t.Errorf("reopened count = %d, want 2", s2.Count())
	}
}

func TestCRCMismatchSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fp.ndjson")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("u1", 0), rec("u2", 0)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one byte inside the second line's JSON payload.
	raw, _ := os.ReadFile(path)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	lines[1][10] ^= 0xff
	if err := os.WriteFile(path, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != 1 {
		t.Errorf("count = %d, want 1 (corrupt line must fail its CRC)", s2.Count())
	}
	recs, _ := s2.All()
	if len(recs) != 1 || recs[0].UserID != "u1" {
		t.Errorf("All() = %+v", recs)
	}
}

func TestSegmentRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fp.ndjson")
	s, err := Open(path, Options{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Append(rec(fmt.Sprintf("u%02d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.Segments()) == 0 {
		t.Fatal("no segments sealed despite tiny MaxSegmentBytes")
	}
	recs, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("All() across segments = %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if want := fmt.Sprintf("u%02d", i); r.UserID != want {
			t.Fatalf("record %d = %s, want %s (segment order broken)", i, r.UserID, want)
		}
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != n {
		t.Errorf("export has %d lines, want %d", got, n)
	}
	s.Close()

	// Reopen must find the sealed segments again.
	s2, err := Open(path, Options{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Count() != n {
		t.Errorf("reopened count = %d, want %d", s2.Count(), n)
	}
	if err := s2.Append(rec("after", 0)); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fp.ndjson")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(rec("u1", 0), rec("u2", 0)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-write: a torn half-record with no newline,
	// preceded by a fully corrupt line that also must not survive.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{\"user_id\":\"ghost\",\"vector\":\"DC\",\"hash\":\"zz\tq}\n")
	f.WriteString(`{"session_id":"s","user_id":"torn","vector":"DC","iter`)
	f.Close()

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SalvagedRecords != 2 || rep.DroppedBytes == 0 {
		t.Errorf("report = %+v, want 2 salvaged and a dropped tail", rep)
	}
	if s2.Count() != 2 {
		t.Errorf("count after recover = %d", s2.Count())
	}
	// The file must be physically clean: reopen sees exactly 2 records and
	// appends land after the truncation point.
	if err := s2.Append(rec("u3", 0)); err != nil {
		t.Fatal(err)
	}
	recs, err := s2.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].UserID != "u3" {
		t.Errorf("post-recovery All() = %+v", recs)
	}
	raw, _ := os.ReadFile(path)
	if bytes.Contains(raw, []byte("torn")) || bytes.Contains(raw, []byte("ghost")) {
		t.Errorf("torn tail still on disk: %q", raw)
	}

	// The salvage must be visible on the /metrics exposition, parsed with
	// the strict obs parser (counter is process-global, so assert ≥ 2).
	rw := httptest.NewRecorder()
	obs.Default.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	exp, err := obs.ParseExposition(rw.Body)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	found := false
	for _, sm := range exp.Samples {
		if sm.Name == "storage_recovered_records_total" && sm.Value >= 2 {
			found = true
		}
	}
	if !found {
		t.Error("storage_recovered_records_total ≥ 2 missing from /metrics")
	}
}

func TestRecoverCleanFileIsNoop(t *testing.T) {
	s := tempStore(t, Options{})
	if err := s.Append(rec("u1", 0)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DroppedBytes != 0 || rep.SalvagedRecords != 1 {
		t.Errorf("clean recover report = %+v", rep)
	}
}

// TestConcurrentDurableAppends is the regression test for the fsync convoy:
// Append must not hold the serialization mutex across the disk flush. With
// group commit, concurrent durable appenders make progress and every record
// lands exactly once.
func TestConcurrentDurableAppends(t *testing.T) {
	s := tempStore(t, Options{SyncEveryAppend: true, MaxSegmentBytes: 4096})
	var wg sync.WaitGroup
	const goroutines, each = 8, 25
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := s.Append(rec(fmt.Sprintf("g%d-%d", g, i), i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	recs, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != goroutines*each {
		t.Fatalf("got %d records, want %d", len(recs), goroutines*each)
	}
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.UserID] {
			t.Fatalf("record %s duplicated", r.UserID)
		}
		seen[r.UserID] = true
	}
}

func TestLegacyPlainNDJSONStillReadable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fp.ndjson")
	legacy := `{"session_id":"s","user_id":"u1","vector":"DC","iteration":0,"hash":"aa","received_at":"2021-03-01T00:00:00Z"}
{"session_id":"s","user_id":"u2","vector":"FFT","iteration":1,"hash":"bb","received_at":"2021-03-01T00:00:00Z"}
`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Count() != 2 {
		t.Errorf("legacy count = %d, want 2", s.Count())
	}
	// New appends get CRCs; both formats coexist in one file.
	if err := s.Append(rec("u3", 0)); err != nil {
		t.Fatal(err)
	}
	recs, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Errorf("mixed-format All() = %d records", len(recs))
	}
}
