package storage

import "repro/internal/obs"

// Store metrics live on the shared registry so the collection server's
// /metrics scrape covers its persistence layer.
var (
	mAppendBatches = obs.Default.Counter("storage_append_batches_total",
		"Append calls that reached disk.", nil)
	mAppendRecords = obs.Default.Counter("storage_records_appended_total",
		"Records appended to the NDJSON log.", nil)
	mAppendBytes = obs.Default.Counter("storage_append_bytes_total",
		"Bytes written to the NDJSON log (including newlines).", nil)
	mExports = obs.Default.Counter("storage_exports_total",
		"Full-log export streams served.", nil)
	mExportBytes = obs.Default.Counter("storage_export_bytes_total",
		"Bytes streamed by export.", nil)
	mCorruptLines = obs.Default.Counter("storage_corrupt_lines_total",
		"Stored lines rejected as torn, corrupt, or CRC-mismatched.", nil)
	mSegmentsSealed = obs.Default.Counter("storage_segments_sealed_total",
		"Active files rotated into read-only segments.", nil)
	mRecoveredRecords = obs.Default.Counter("storage_recovered_records_total",
		"Active-file records salvaged by Recover.", nil)
	mTruncatedBytes = obs.Default.Counter("storage_truncated_bytes_total",
		"Torn-tail bytes truncated by Recover.", nil)
)
