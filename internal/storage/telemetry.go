package storage

import "repro/internal/obs"

// Store metrics live on the shared registry so the collection server's
// /metrics scrape covers its persistence layer.
var (
	mAppendBatches = obs.Default.Counter("storage_append_batches_total",
		"Append calls that reached disk.", nil)
	mAppendRecords = obs.Default.Counter("storage_records_appended_total",
		"Records appended to the NDJSON log.", nil)
	mAppendBytes = obs.Default.Counter("storage_append_bytes_total",
		"Bytes written to the NDJSON log (including newlines).", nil)
	mExports = obs.Default.Counter("storage_exports_total",
		"Full-log export streams served.", nil)
	mExportBytes = obs.Default.Counter("storage_export_bytes_total",
		"Bytes streamed by export.", nil)
)
