package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// JSON renders the table as a JSON array of objects keyed by the headers —
// the machine-readable form downstream plotting pipelines consume. Cells
// that parse as numbers are emitted as numbers.
func (t *Table) JSON() ([]byte, error) {
	rows := make([]map[string]any, 0, len(t.rows))
	for _, row := range t.rows {
		obj := make(map[string]any, len(t.headers))
		for i, h := range t.headers {
			if i >= len(row) {
				break
			}
			obj[h] = parseCell(row[i])
		}
		rows = append(rows, obj)
	}
	doc := map[string]any{"title": t.title, "rows": rows}
	return json.MarshalIndent(doc, "", "  ")
}

// WriteJSON writes the JSON form to w.
func (t *Table) WriteJSON(w io.Writer) error {
	b, err := t.JSON()
	if err != nil {
		return fmt.Errorf("report: marshal table: %w", err)
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

func parseCell(s string) any {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
