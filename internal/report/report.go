// Package report renders analysis results as aligned ASCII tables, text
// histograms with CDF columns (Fig. 3), series plots (Fig. 5) and heatmaps
// (Fig. 9), plus CSV for downstream plotting.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_, _ = t.WriteTo(&sb)
	return sb.String()
}

// CSV renders the table as comma-separated values (quoted as needed).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeCSVRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeCSVRow(t.headers)
	for _, row := range t.rows {
		writeCSVRow(row)
	}
	return sb.String()
}

// Histogram renders counts as horizontal bars with a CDF column, the text
// analogue of the paper's Fig. 3 bar+CDF plot.
func Histogram(title string, labels []int, freqs []int, cdf []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	maxF := 0
	for _, f := range freqs {
		if f > maxF {
			maxF = f
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	for i, l := range labels {
		bar := 0
		if maxF > 0 {
			bar = freqs[i] * width / maxF
		}
		fmt.Fprintf(&sb, "%3d | %-*s %5d  cdf=%.3f\n", l, width, strings.Repeat("#", bar), freqs[i], cdf[i])
	}
	return sb.String()
}

// Series renders (x, y) points per named series, the text analogue of
// Fig. 5's line plot.
func Series(title string, xs []int, series map[string][]float64, order []string) string {
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	fmt.Fprintf(&sb, "%-16s", "series \\ s")
	for _, x := range xs {
		fmt.Fprintf(&sb, " %6d", x)
	}
	sb.WriteByte('\n')
	for _, name := range order {
		ys := series[name]
		fmt.Fprintf(&sb, "%-16s", name)
		for _, y := range ys {
			fmt.Fprintf(&sb, " %6.4f", y)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Heatmap renders a symmetric matrix with shade characters, the text
// analogue of Fig. 9.
func Heatmap(title string, labels []string, m [][]float64) string {
	shades := []rune(" .:-=+*#%@")
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	width := 0
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	for i, l := range labels {
		fmt.Fprintf(&sb, "%-*s ", width, l)
		for j := range labels {
			v := m[i][j]
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			idx := int(v * float64(len(shades)-1))
			sb.WriteRune(shades[idx])
			sb.WriteRune(shades[idx])
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "  (row AMI: ")
		for j := range labels {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.2f", m[i][j])
		}
		sb.WriteString(")\n")
	}
	return sb.String()
}
