package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Demo", "Vector", "Distinct", "Entropy")
	tb.AddRow("DC", 59, 1.935)
	tb.AddRow("Merged Signals", 87, 2.767)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[3], "1.935") {
		t.Errorf("float not formatted: %q", lines[3])
	}
	// Header and rows align at the same column offsets.
	if strings.Index(lines[1], "Distinct") != strings.Index(lines[4], "87") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "name", "value")
	tb.AddRow(`quo"ted`, 1)
	tb.AddRow("with,comma", 2)
	csv := tb.CSV()
	want := "name,value\n\"quo\"\"ted\",1\n\"with,comma\",2\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("H", []int{1, 2, 3}, []int{10, 5, 1}, []float64{0.625, 0.9375, 1}, 20)
	if !strings.Contains(out, "####################") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "cdf=1.000") {
		t.Errorf("missing CDF:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 4 {
		t.Errorf("line count = %d", lines)
	}
	// Zero-frequency histograms must not divide by zero.
	_ = Histogram("", []int{1}, []int{0}, []float64{1}, 0)
}

func TestSeries(t *testing.T) {
	out := Series("S", []int{2, 4}, map[string][]float64{
		"DC":  {1.0, 1.0},
		"FFT": {0.9993, 1.0},
	}, []string{"DC", "FFT"})
	if !strings.Contains(out, "0.9993") {
		t.Errorf("missing value:\n%s", out)
	}
	if strings.Index(out, "DC") > strings.Index(out, "FFT") {
		t.Errorf("series order not respected:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	m := [][]float64{{1, 0.5}, {0.5, 1}}
	out := Heatmap("HM", []string{"A", "B"}, m)
	if !strings.Contains(out, "@@") {
		t.Errorf("diagonal not darkest:\n%s", out)
	}
	if !strings.Contains(out, "0.50") {
		t.Errorf("values missing:\n%s", out)
	}
	// Out-of-range values are clamped, not panicking.
	_ = Heatmap("", []string{"X"}, [][]float64{{1.7}})
	_ = Heatmap("", []string{"X"}, [][]float64{{-0.2}})
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("T", "name", "count", "score")
	tb.AddRow("DC", 59, 1.935)
	b, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title string           `json:"title"`
		Rows  []map[string]any `json:"rows"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b)
	}
	if doc.Title != "T" || len(doc.Rows) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	row := doc.Rows[0]
	if row["name"] != "DC" {
		t.Errorf("name = %v", row["name"])
	}
	if row["count"] != float64(59) { // JSON numbers decode as float64
		t.Errorf("count = %v (%T)", row["count"], row["count"])
	}
	if row["score"] != 1.935 {
		t.Errorf("score = %v", row["score"])
	}
	var sb strings.Builder
	if err := tb.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(sb.String(), "\n") {
		t.Error("WriteJSON missing trailing newline")
	}
}
