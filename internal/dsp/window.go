package dsp

import "math"

// BlackmanWindow returns the n-point Blackman window the Web Audio spec
// mandates for AnalyserNode smoothing-over-time analysis:
//
//	w[i] = a0 − a1 cos(2πi/N) + a2 cos(4πi/N),  a = (0.42, 0.5, 0.08)
//
// cos is evaluated via sin(x + π/2) on the provided kernel sine so that the
// window itself carries platform identity, as it does in real engines.
func BlackmanWindow(n int, sin SinFunc) []float64 {
	if sin == nil {
		sin = math.Sin
	}
	const (
		a0 = 0.42
		a1 = 0.5
		a2 = 0.08
	)
	w := make([]float64, n)
	for i := range w {
		x := float64(i) / float64(n)
		w[i] = a0 - a1*sin(2*math.Pi*x+math.Pi/2) + a2*sin(4*math.Pi*x+math.Pi/2)
	}
	return w
}

// HannWindow returns the n-point Hann window (used by tests and the
// resampler, not by AnalyserNode).
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n)))
	}
	return w
}

// ApplyWindow multiplies dst element-wise by w. Panics if lengths differ.
func ApplyWindow(dst, w []float64) {
	if len(dst) != len(w) {
		panic("dsp: window length mismatch")
	}
	for i := range dst {
		dst[i] *= w[i]
	}
}
