package dsp

import (
	"encoding/binary"
	"math"
)

// LinearToDecibels converts a linear magnitude to dBFS, matching the Web
// Audio spec's 20·log10(v) with −∞ clamped by the caller.
func LinearToDecibels(v float64) float64 {
	if v <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(v)
}

// DecibelsToLinear converts dB to a linear gain factor.
func DecibelsToLinear(db float64) float64 {
	return math.Pow(10, db/20)
}

// Float32SliceToBytes serializes samples to little-endian IEEE-754 bytes,
// the canonical form fingerprint hashes are computed over. The layout
// matches what a browser script hashing a Float32Array ends up with.
func Float32SliceToBytes(samples []float32) []byte {
	out := make([]byte, 4*len(samples))
	for i, s := range samples {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(s))
	}
	return out
}

// BytesToFloat32Slice inverts Float32SliceToBytes. The byte slice length
// must be a multiple of 4.
func BytesToFloat32Slice(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// SumAbs returns Σ|x| over samples in float64, the reduction the classic
// FingerprintJS DynamicsCompressor vector applies to the rendered buffer.
func SumAbs(samples []float32) float64 {
	var s float64
	for _, v := range samples {
		s += math.Abs(float64(v))
	}
	return s
}

// MaxAbs returns max|x| over samples, 0 for an empty slice.
func MaxAbs(samples []float32) float64 {
	var m float64
	for _, v := range samples {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return m
}

// FlushDenormals32 returns v with subnormal float32 values flushed to zero.
// Audio stacks built with -ffast-math / FTZ hardware flags do this; it is
// one of the platform-identity knobs.
func FlushDenormals32(v float32) float32 {
	if v != 0 && math.Abs(float64(v)) < math.SmallestNonzeroFloat32*8388608 { // < 2^-126
		return 0
	}
	return v
}
