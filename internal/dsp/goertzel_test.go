package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func tone(freq, rate float64, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(math.Sin(2 * math.Pi * freq * float64(i) / rate))
	}
	return out
}

func TestGoertzelDetectsTargetTone(t *testing.T) {
	const rate = 44100
	buf := tone(1000, rate, 4410)
	at := Goertzel(buf, 1000, rate)
	off := Goertzel(buf, 3000, rate)
	if at < 100*off {
		t.Errorf("on-bin %g not dominant over off-bin %g", at, off)
	}
	if Goertzel(nil, 1000, rate) != 0 {
		t.Error("empty buffer nonzero")
	}
}

func TestGoertzelMatchesFFTBin(t *testing.T) {
	const n = 2048
	const rate = 44100
	// Exact-bin frequency so both methods agree tightly.
	freq := 10 * rate / float64(n)
	buf := tone(freq, rate, n)

	f, _ := NewFFT(n, nil)
	re := make([]float64, n)
	im := make([]float64, n)
	for i, v := range buf {
		re[i] = float64(v)
	}
	f.Transform(re, im)
	fftMag := math.Hypot(re[10], im[10])
	gz := Goertzel(buf, freq, rate)
	if math.Abs(fftMag-gz)/fftMag > 1e-6 {
		t.Errorf("Goertzel %g vs FFT bin %g", gz, fftMag)
	}
}

func TestResampleLinearLengthAndContent(t *testing.T) {
	const src = 44100.0
	const dst = 48000.0
	buf := tone(1000, src, 4410) // 100 ms
	out := ResampleLinear(buf, src, dst)
	wantLen := int(4410 * dst / src)
	if len(out) != wantLen {
		t.Fatalf("resampled length %d, want %d", len(out), wantLen)
	}
	// The tone is still at 1000 Hz at the new rate.
	at := Goertzel(out, 1000, dst)
	off := Goertzel(out, 2500, dst)
	if at < 50*off {
		t.Errorf("resampled tone smeared: on %g, off %g", at, off)
	}
}

func TestResampleLinearIdentityAndEdgeCases(t *testing.T) {
	buf := []float32{1, 2, 3}
	same := ResampleLinear(buf, 48000, 48000)
	if len(same) != 3 || same[0] != 1 || same[2] != 3 {
		t.Errorf("identity resample = %v", same)
	}
	// The copy is independent.
	same[0] = 99
	if buf[0] != 1 {
		t.Error("identity resample aliases input")
	}
	if ResampleLinear(nil, 44100, 48000) != nil {
		t.Error("nil input should give nil")
	}
	if ResampleLinear(buf, 0, 48000) != nil || ResampleLinear(buf, 44100, -1) != nil {
		t.Error("invalid rates should give nil")
	}
}

// TestResampleRoundTripEnergy: 44.1k → 48k → 44.1k roughly preserves RMS.
func TestResampleRoundTripEnergy(t *testing.T) {
	prop := func(seed int64) bool {
		freq := 100 + float64(seed%97)*40
		buf := tone(freq, 44100, 4410)
		up := ResampleLinear(buf, 44100, 48000)
		down := ResampleLinear(up, 48000, 44100)
		r0, r1 := RMS(buf), RMS(down)
		return math.Abs(r0-r1) < 0.05*r0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRMS(t *testing.T) {
	if RMS(nil) != 0 {
		t.Error("RMS(nil) != 0")
	}
	if got := RMS([]float32{3, 4, 3, 4}); math.Abs(got-3.5355) > 1e-3 {
		t.Errorf("RMS = %g", got)
	}
	// Full-scale sine has RMS 1/√2.
	if got := RMS(tone(441, 44100, 44100)); math.Abs(got-1/math.Sqrt2) > 1e-3 {
		t.Errorf("sine RMS = %g, want %g", got, 1/math.Sqrt2)
	}
}

func BenchmarkGoertzel(b *testing.B) {
	buf := tone(1000, 44100, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Goertzel(buf, 1000, 44100)
	}
}
