package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDecibelConversions(t *testing.T) {
	cases := []struct{ lin, db float64 }{
		{1, 0},
		{10, 20},
		{0.1, -20},
		{100, 40},
	}
	for _, c := range cases {
		if got := LinearToDecibels(c.lin); math.Abs(got-c.db) > 1e-9 {
			t.Errorf("LinearToDecibels(%g) = %g, want %g", c.lin, got, c.db)
		}
		if got := DecibelsToLinear(c.db); math.Abs(got-c.lin) > 1e-9*c.lin {
			t.Errorf("DecibelsToLinear(%g) = %g, want %g", c.db, got, c.lin)
		}
	}
	if !math.IsInf(LinearToDecibels(0), -1) {
		t.Error("LinearToDecibels(0) should be -Inf")
	}
	if !math.IsInf(LinearToDecibels(-1), -1) {
		t.Error("LinearToDecibels(-1) should be -Inf")
	}
}

func TestDecibelRoundTripProperty(t *testing.T) {
	f := func(db float64) bool {
		if math.IsNaN(db) || math.Abs(db) > 300 {
			return true
		}
		back := LinearToDecibels(DecibelsToLinear(db))
		return math.Abs(back-db) < 1e-9*(1+math.Abs(db))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat32BytesRoundTrip(t *testing.T) {
	f := func(a, b, c float32) bool {
		in := []float32{a, b, c}
		out := BytesToFloat32Slice(Float32SliceToBytes(in))
		for i := range in {
			// Compare bit patterns so NaNs round-trip too.
			if math.Float32bits(in[i]) != math.Float32bits(out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloat32BytesLayout(t *testing.T) {
	b := Float32SliceToBytes([]float32{1.0})
	// 1.0f = 0x3f800000 little-endian.
	want := []byte{0x00, 0x00, 0x80, 0x3f}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, b[i], want[i])
		}
	}
}

func TestSumAbsAndMaxAbs(t *testing.T) {
	s := []float32{1, -2, 3, -4}
	if got := SumAbs(s); got != 10 {
		t.Errorf("SumAbs = %g, want 10", got)
	}
	if got := MaxAbs(s); got != 4 {
		t.Errorf("MaxAbs = %g, want 4", got)
	}
	if got := MaxAbs(nil); got != 0 {
		t.Errorf("MaxAbs(nil) = %g, want 0", got)
	}
}

func TestFlushDenormals32(t *testing.T) {
	if got := FlushDenormals32(1e-40); got != 0 {
		t.Errorf("subnormal not flushed: %g", got)
	}
	if got := FlushDenormals32(1e-20); got != 1e-20 {
		t.Errorf("normal flushed: %g", got)
	}
	if got := FlushDenormals32(0); got != 0 {
		t.Errorf("zero changed: %g", got)
	}
	if got := FlushDenormals32(-1e-40); got != 0 {
		t.Errorf("negative subnormal not flushed: %g", got)
	}
}

func TestBlackmanWindowShape(t *testing.T) {
	w := BlackmanWindow(2048, nil)
	if len(w) != 2048 {
		t.Fatalf("len = %d", len(w))
	}
	// Spec coefficients: w[0] = 0.42 - 0.5 + 0.08 = 0.
	if math.Abs(w[0]) > 1e-12 {
		t.Errorf("w[0] = %g, want 0", w[0])
	}
	// Peak near the center ≈ 1.
	if math.Abs(w[1024]-1) > 1e-3 {
		t.Errorf("w[n/2] = %g, want ≈ 1", w[1024])
	}
	// All values in [-eps, 1].
	for i, v := range w {
		if v < -1e-9 || v > 1+1e-9 {
			t.Fatalf("w[%d] = %g out of range", i, v)
		}
	}
}

func TestHannWindowSymmetry(t *testing.T) {
	w := HannWindow(64)
	for i := 1; i < 32; i++ {
		if math.Abs(w[i]-w[64-i]) > 1e-12 {
			t.Fatalf("Hann asymmetric at %d: %g vs %g", i, w[i], w[64-i])
		}
	}
}

func TestApplyWindow(t *testing.T) {
	buf := []float64{1, 2, 3}
	ApplyWindow(buf, []float64{0.5, 0.5, 0.5})
	want := []float64{0.5, 1, 1.5}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("buf = %v", buf)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	ApplyWindow(buf, []float64{1})
}
