// Package dsp implements the signal-processing primitives the webaudio
// engine is built on: an in-place radix-2 complex FFT, spectral windows and
// magnitude/decibel conversions.
//
// The FFT's twiddle factors are computed through a caller-supplied sine
// function so that simulated platforms with different math kernels produce
// (slightly) different spectra — the effect Web Audio FFT fingerprinting
// measures.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// SinFunc computes sin(x) for x in radians. math.Sin is the reference.
type SinFunc func(float64) float64

// FFT computes forward radix-2 FFTs of a fixed size.
// It is safe for concurrent use after construction.
type FFT struct {
	n      int
	rev    []int     // bit-reversal permutation
	cosTab []float64 // twiddle cosines, n/2 entries
	sinTab []float64 // twiddle sines, n/2 entries
}

// NewFFT builds an FFT of size n (a power of two ≥ 2). Twiddle factors are
// computed with sin; pass nil for math.Sin.
func NewFFT(n int, sin SinFunc) (*FFT, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size %d is not a power of two ≥ 2", n)
	}
	if sin == nil {
		sin = math.Sin
	}
	f := &FFT{
		n:      n,
		rev:    make([]int, n),
		cosTab: make([]float64, n/2),
		sinTab: make([]float64, n/2),
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range f.rev {
		f.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	for i := 0; i < n/2; i++ {
		theta := -2 * math.Pi * float64(i) / float64(n)
		f.cosTab[i] = sin(theta + math.Pi/2) // cos θ = sin(θ + π/2), via the kernel
		f.sinTab[i] = sin(theta)
	}
	return f, nil
}

// Size returns the transform length.
func (f *FFT) Size() int { return f.n }

// Transform computes the in-place forward FFT of (re, im).
// Both slices must have length Size().
func (f *FFT) Transform(re, im []float64) {
	if len(re) != f.n || len(im) != f.n {
		panic(fmt.Sprintf("dsp: Transform buffer length %d/%d, want %d", len(re), len(im), f.n))
	}
	// Bit-reversal permutation.
	for i, j := range f.rev {
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	// Cooley–Tukey butterflies.
	for size := 2; size <= f.n; size <<= 1 {
		half := size / 2
		step := f.n / size
		for start := 0; start < f.n; start += size {
			k := 0
			for i := start; i < start+half; i++ {
				j := i + half
				wr, wi := f.cosTab[k], f.sinTab[k]
				tr := wr*re[j] - wi*im[j]
				ti := wr*im[j] + wi*re[j]
				re[j] = re[i] - tr
				im[j] = im[i] - ti
				re[i] += tr
				im[i] += ti
				k += step
			}
		}
	}
}

// Inverse computes the in-place inverse FFT of (re, im), including the 1/n
// normalization.
func (f *FFT) Inverse(re, im []float64) {
	// IFFT(x) = conj(FFT(conj(x))) / n.
	for i := range im {
		im[i] = -im[i]
	}
	f.Transform(re, im)
	invN := 1 / float64(f.n)
	for i := range re {
		re[i] *= invN
		im[i] = -im[i] * invN
	}
}

// MagnitudesTo fills dst[k] with |X_k| for k in [0, n/2), the spectrum
// half used by AnalyserNode. dst must have length ≥ n/2.
func (f *FFT) MagnitudesTo(dst, re, im []float64) {
	half := f.n / 2
	if len(dst) < half {
		panic(fmt.Sprintf("dsp: magnitude buffer length %d, want ≥ %d", len(dst), half))
	}
	for k := 0; k < half; k++ {
		dst[k] = math.Hypot(re[k], im[k])
	}
}
