package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFFTRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 100, -8} {
		if _, err := NewFFT(n, nil); err == nil {
			t.Errorf("NewFFT(%d) succeeded, want error", n)
		}
	}
	for _, n := range []int{2, 4, 1024, 2048} {
		f, err := NewFFT(n, nil)
		if err != nil {
			t.Fatalf("NewFFT(%d): %v", n, err)
		}
		if f.Size() != n {
			t.Errorf("Size() = %d, want %d", f.Size(), n)
		}
	}
}

// naiveDFT is the O(n²) reference used to validate the FFT.
func naiveDFT(re, im []float64) ([]float64, []float64) {
	n := len(re)
	or := make([]float64, n)
	oi := make([]float64, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			theta := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			c, s := math.Cos(theta), math.Sin(theta)
			or[k] += re[t]*c - im[t]*s
			oi[k] += re[t]*s + im[t]*c
		}
	}
	return or, oi
}

func TestTransformMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{4, 16, 64, 256} {
		f, err := NewFFT(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		re := make([]float64, n)
		im := make([]float64, n)
		for i := range re {
			re[i] = rng.NormFloat64()
			im[i] = rng.NormFloat64()
		}
		wantR, wantI := naiveDFT(re, im)
		f.Transform(re, im)
		for k := 0; k < n; k++ {
			if math.Abs(re[k]-wantR[k]) > 1e-9*float64(n) || math.Abs(im[k]-wantI[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: got (%g,%g), want (%g,%g)", n, k, re[k], im[k], wantR[k], wantI[k])
			}
		}
	}
}

func TestTransformKnownSpectrum(t *testing.T) {
	// A pure cosine at bin 5 must put (n/2) in bins 5 and n-5.
	const n = 64
	f, _ := NewFFT(n, nil)
	re := make([]float64, n)
	im := make([]float64, n)
	for i := range re {
		re[i] = math.Cos(2 * math.Pi * 5 * float64(i) / n)
	}
	f.Transform(re, im)
	for k := 0; k < n; k++ {
		want := 0.0
		if k == 5 || k == n-5 {
			want = n / 2
		}
		if math.Abs(re[k]-want) > 1e-9 || math.Abs(im[k]) > 1e-9 {
			t.Fatalf("bin %d: got (%g,%g), want (%g,0)", k, re[k], im[k], want)
		}
	}
}

// TestRoundTrip is a property test: Inverse(Transform(x)) == x.
func TestRoundTrip(t *testing.T) {
	const n = 128
	f, _ := NewFFT(n, nil)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		re := make([]float64, n)
		im := make([]float64, n)
		orig := make([]float64, n)
		for i := range re {
			re[i] = rng.Float64()*2 - 1
			orig[i] = re[i]
		}
		f.Transform(re, im)
		f.Inverse(re, im)
		for i := range re {
			if math.Abs(re[i]-orig[i]) > 1e-10 || math.Abs(im[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestParseval is a property test of energy conservation:
// Σ|x|² = (1/n) Σ|X|².
func TestParseval(t *testing.T) {
	const n = 256
	f, _ := NewFFT(n, nil)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		re := make([]float64, n)
		im := make([]float64, n)
		var timeE float64
		for i := range re {
			re[i] = rng.NormFloat64()
			timeE += re[i] * re[i]
		}
		f.Transform(re, im)
		var freqE float64
		for i := range re {
			freqE += re[i]*re[i] + im[i]*im[i]
		}
		freqE /= n
		return math.Abs(timeE-freqE) < 1e-8*timeE
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestLinearity: FFT(ax + by) = a FFT(x) + b FFT(y).
func TestLinearity(t *testing.T) {
	const n = 64
	f, _ := NewFFT(n, nil)
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	a, b := 2.5, -1.25
	sumR := make([]float64, n)
	sumI := make([]float64, n)
	for i := range sumR {
		sumR[i] = a*x[i] + b*y[i]
	}
	f.Transform(sumR, sumI)

	xr, xi := append([]float64(nil), x...), make([]float64, n)
	yr, yi := append([]float64(nil), y...), make([]float64, n)
	f.Transform(xr, xi)
	f.Transform(yr, yi)
	for k := 0; k < n; k++ {
		wantR := a*xr[k] + b*yr[k]
		wantI := a*xi[k] + b*yi[k]
		if math.Abs(sumR[k]-wantR) > 1e-9 || math.Abs(sumI[k]-wantI) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", k)
		}
	}
}

func TestMagnitudesTo(t *testing.T) {
	const n = 16
	f, _ := NewFFT(n, nil)
	re := make([]float64, n)
	im := make([]float64, n)
	re[3], im[3] = 3, 4
	mag := make([]float64, n/2)
	f.MagnitudesTo(mag, re, im)
	if mag[3] != 5 {
		t.Errorf("mag[3] = %g, want 5", mag[3])
	}
	if mag[0] != 0 {
		t.Errorf("mag[0] = %g, want 0", mag[0])
	}
}

// TestKernelSinAffectsSpectrum: an FFT with a different twiddle source must
// produce a different (but close) spectrum — the fingerprinting premise.
func TestKernelSinAffectsSpectrum(t *testing.T) {
	const n = 2048
	ref, _ := NewFFT(n, nil)
	coarse, _ := NewFFT(n, func(x float64) float64 {
		// sin with a relative bias above float32 resolution
		return math.Sin(x) * (1 + 3e-7)
	})
	re1 := make([]float64, n)
	im1 := make([]float64, n)
	for i := range re1 {
		re1[i] = math.Sin(2 * math.Pi * 10000 * float64(i) / 44100)
	}
	re2 := append([]float64(nil), re1...)
	im2 := make([]float64, n)
	ref.Transform(re1, im1)
	coarse.Transform(re2, im2)
	identical := true
	var maxDiff float64
	for k := 0; k < n; k++ {
		d := math.Abs(re1[k] - re2[k])
		if d != 0 {
			identical = false
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	if identical {
		t.Error("different twiddle kernels produced bit-identical spectra")
	}
	if maxDiff > 1e-2 {
		t.Errorf("twiddle perturbation changed spectrum too much: max diff %g", maxDiff)
	}
}

func TestTransformPanicsOnShortBuffer(t *testing.T) {
	f, _ := NewFFT(8, nil)
	defer func() {
		if recover() == nil {
			t.Error("Transform with short buffer did not panic")
		}
	}()
	f.Transform(make([]float64, 4), make([]float64, 8))
}

func BenchmarkFFT2048(b *testing.B) {
	f, _ := NewFFT(2048, nil)
	re := make([]float64, 2048)
	im := make([]float64, 2048)
	rng := rand.New(rand.NewSource(1))
	src := make([]float64, 2048)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(re, src)
		for j := range im {
			im[j] = 0
		}
		f.Transform(re, im)
	}
}
