package dsp

import "math"

// Goertzel evaluates the DFT magnitude of samples at a single target
// frequency (Hz) for the given sample rate — the cheap way to ask "how much
// energy does this buffer hold at f?" without a full FFT. Used by engine
// tests and the tooling that verifies oscillator frequencies.
func Goertzel(samples []float32, targetHz, sampleRate float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	k := math.Round(float64(n) * targetHz / sampleRate)
	w := 2 * math.Pi * k / float64(n)
	coeff := 2 * math.Cos(w)
	var s0, s1, s2 float64
	for _, x := range samples {
		s0 = float64(x) + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	power := s1*s1 + s2*s2 - coeff*s1*s2
	if power < 0 {
		power = 0
	}
	return math.Sqrt(power)
}

// ResampleLinear converts samples from srcRate to dstRate with linear
// interpolation — the quality class of the cheap resamplers real audio
// stacks insert when a 44.1 kHz stream meets 48 kHz hardware.
func ResampleLinear(samples []float32, srcRate, dstRate float64) []float32 {
	if len(samples) == 0 || srcRate <= 0 || dstRate <= 0 {
		return nil
	}
	if srcRate == dstRate {
		return append([]float32(nil), samples...)
	}
	ratio := srcRate / dstRate
	outLen := int(float64(len(samples)) / ratio)
	if outLen < 1 {
		outLen = 1
	}
	out := make([]float32, outLen)
	for i := range out {
		pos := float64(i) * ratio
		idx := int(pos)
		if idx >= len(samples)-1 {
			out[i] = samples[len(samples)-1]
			continue
		}
		frac := float32(pos - float64(idx))
		out[i] = samples[idx] + (samples[idx+1]-samples[idx])*frac
	}
	return out
}

// RMS returns the root-mean-square level of samples, 0 for an empty slice.
func RMS(samples []float32) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += float64(v) * float64(v)
	}
	return math.Sqrt(sum / float64(len(samples)))
}
