// Package cluster implements clustering-comparison metrics: mutual
// information, the Adjusted Mutual Information of Vinh, Epps & Bailey (ICML
// 2009) — the agreement score the paper uses throughout §3.3 and Fig. 9,
// chosen for its behaviour on imbalanced, small-cluster partitions — plus
// normalized MI and the Adjusted Rand Index for cross-checks.
package cluster

import (
	"fmt"
	"math"
	"sync"
)

// Contingency is the joint count table of two clusterings over the same
// items. Labels are arbitrary ints; only equality matters.
type Contingency struct {
	n     int     // number of items
	rows  []int   // marginal counts of clustering U
	cols  []int   // marginal counts of clustering V
	cells [][]int // cells[i][j] = |U_i ∩ V_j|
}

// NewContingency builds the table for label vectors x and y, which must
// have equal, non-zero length.
func NewContingency(x, y []int) (*Contingency, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("cluster: label lengths differ (%d vs %d)", len(x), len(y))
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("cluster: empty clusterings")
	}
	xi := indexLabels(x)
	yi := indexLabels(y)
	c := &Contingency{
		n:    len(x),
		rows: make([]int, len(xi)),
		cols: make([]int, len(yi)),
	}
	c.cells = make([][]int, len(xi))
	for i := range c.cells {
		c.cells[i] = make([]int, len(yi))
	}
	for k := range x {
		i, j := xi[x[k]], yi[y[k]]
		c.cells[i][j]++
		c.rows[i]++
		c.cols[j]++
	}
	return c, nil
}

func indexLabels(labels []int) map[int]int {
	idx := make(map[int]int)
	for _, l := range labels {
		if _, ok := idx[l]; !ok {
			idx[l] = len(idx)
		}
	}
	return idx
}

// NewContingencyDense builds the table for dense label vectors: x takes
// values in [0, kx), y in [0, ky), with equal, non-zero lengths. It is the
// map-free fast path used by the study layer's interned label vectors
// (collate.IntGraph.Labels); when labels are canonicalized by first
// appearance it produces a table identical to NewContingency over the same
// partitions, so downstream MI/AMI values are bit-identical. The cell
// matrix is one contiguous allocation.
func NewContingencyDense(x, y []int32, kx, ky int) (*Contingency, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("cluster: label lengths differ (%d vs %d)", len(x), len(y))
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("cluster: empty clusterings")
	}
	if kx <= 0 || ky <= 0 {
		return nil, fmt.Errorf("cluster: non-positive cluster counts (%d, %d)", kx, ky)
	}
	c := &Contingency{
		n:    len(x),
		rows: make([]int, kx),
		cols: make([]int, ky),
	}
	backing := make([]int, kx*ky)
	c.cells = make([][]int, kx)
	for i := range c.cells {
		c.cells[i] = backing[i*ky : (i+1)*ky]
	}
	for k := range x {
		i, j := x[k], y[k]
		c.cells[i][j]++
		c.rows[i]++
		c.cols[j]++
	}
	return c, nil
}

// MI returns the mutual information between the two clusterings, in nats.
func (c *Contingency) MI() float64 {
	n := float64(c.n)
	var mi float64
	for i, row := range c.cells {
		for j, nij := range row {
			if nij == 0 {
				continue
			}
			pij := float64(nij) / n
			mi += pij * math.Log(n*float64(nij)/(float64(c.rows[i])*float64(c.cols[j])))
		}
	}
	if mi < 0 { // guard against -0 from rounding
		mi = 0
	}
	return mi
}

// EntropyU returns the Shannon entropy (nats) of clustering U's marginal.
func (c *Contingency) EntropyU() float64 { return marginalEntropy(c.rows, c.n) }

// EntropyV returns the Shannon entropy (nats) of clustering V's marginal.
func (c *Contingency) EntropyV() float64 { return marginalEntropy(c.cols, c.n) }

func marginalEntropy(counts []int, n int) float64 {
	var h float64
	fn := float64(n)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / fn
		h -= p * math.Log(p)
	}
	if h < 0 {
		h = 0
	}
	return h
}

// ExpectedMI returns E[MI] under the permutation (hypergeometric) model of
// Vinh et al., in nats. Complexity is O(R·C·n̄) over the contingency shape.
func (c *Contingency) ExpectedMI() float64 {
	n := c.n
	lgam := logFactorials(n + 1)
	logN := lgam[n]
	fn := float64(n)
	var emi float64
	for _, ai := range c.rows {
		for _, bj := range c.cols {
			lo := ai + bj - n
			if lo < 1 {
				lo = 1
			}
			hi := ai
			if bj < hi {
				hi = bj
			}
			for nij := lo; nij <= hi; nij++ {
				// term = nij/n · log(n·nij / (ai·bj)) · P(nij | ai, bj, n)
				logP := lgam[ai] + lgam[bj] + lgam[n-ai] + lgam[n-bj] -
					logN - lgam[nij] - lgam[ai-nij] - lgam[bj-nij] - lgam[n-ai-bj+nij]
				info := math.Log(fn*float64(nij)/(float64(ai)*float64(bj))) * float64(nij) / fn
				emi += info * math.Exp(logP)
			}
		}
	}
	return emi
}

// logFactorials returns a read-only slice with lgam[k] = ln k! for k in
// [0, n]. The table is shared and grown on demand: every AMI call over the
// same population size reuses it instead of recomputing n logarithms, which
// matters when the agreement sweeps evaluate thousands of pairs. Entries
// are computed incrementally (lg[k] = lg[k-1] + ln k), so a longer table's
// prefix is bit-identical to a freshly built shorter one.
func logFactorials(n int) []float64 {
	lgamMu.RLock()
	lg := lgamTable
	lgamMu.RUnlock()
	if len(lg) > n {
		return lg[:n+1]
	}
	lgamMu.Lock()
	defer lgamMu.Unlock()
	for len(lgamTable) <= n {
		k := len(lgamTable)
		var prev float64
		if k >= 2 {
			prev = lgamTable[k-1] + math.Log(float64(k))
		}
		// Append never reuses the old backing array once it reallocates, so
		// slices returned earlier stay valid and immutable.
		lgamTable = append(lgamTable, prev)
	}
	return lgamTable[:n+1]
}

var (
	lgamMu    sync.RWMutex
	lgamTable []float64
)

// AMI returns the Adjusted Mutual Information of label vectors x and y with
// the arithmetic-mean normalizer:
//
//	AMI = (MI − E[MI]) / (½(H(U)+H(V)) − E[MI])
//
// Two identical trivial clusterings (a single cluster each, or every item a
// singleton in both) score 1 by convention.
func AMI(x, y []int) (float64, error) {
	c, err := NewContingency(x, y)
	if err != nil {
		return 0, err
	}
	return amiOf(c), nil
}

// AMIDense is AMI over dense label vectors (x in [0, kx), y in [0, ky)),
// skipping the label-indexing maps. With first-appearance-canonical labels
// the result is bit-identical to AMI over any relabeling of the same
// partitions.
func AMIDense(x, y []int32, kx, ky int) (float64, error) {
	c, err := NewContingencyDense(x, y, kx, ky)
	if err != nil {
		return 0, err
	}
	return amiOf(c), nil
}

func amiOf(c *Contingency) float64 {
	ru, rv := len(c.rows), len(c.cols)
	if (ru == 1 && rv == 1) || (ru == c.n && rv == c.n) {
		return 1
	}
	mi := c.MI()
	emi := c.ExpectedMI()
	h := (c.EntropyU() + c.EntropyV()) / 2
	den := h - emi
	const eps = 2.220446049250313e-16
	if math.Abs(den) < eps {
		den = math.Copysign(eps, den)
	}
	return (mi - emi) / den
}

// NMI returns the arithmetic-mean Normalized Mutual Information.
func NMI(x, y []int) (float64, error) {
	c, err := NewContingency(x, y)
	if err != nil {
		return 0, err
	}
	hu, hv := c.EntropyU(), c.EntropyV()
	if hu == 0 && hv == 0 {
		return 1, nil
	}
	den := (hu + hv) / 2
	if den == 0 {
		return 0, nil
	}
	return c.MI() / den, nil
}

// ARI returns the Adjusted Rand Index of x and y.
func ARI(x, y []int) (float64, error) {
	c, err := NewContingency(x, y)
	if err != nil {
		return 0, err
	}
	choose2 := func(k int) float64 { return float64(k) * float64(k-1) / 2 }
	var sumCells, sumRows, sumCols float64
	for i, row := range c.cells {
		for _, nij := range row {
			sumCells += choose2(nij)
		}
		sumRows += choose2(c.rows[i])
	}
	for _, bj := range c.cols {
		sumCols += choose2(bj)
	}
	total := choose2(c.n)
	expected := sumRows * sumCols / total
	maxIdx := (sumRows + sumCols) / 2
	if maxIdx == expected {
		return 1, nil // both partitions trivial in the same way
	}
	return (sumCells - expected) / (maxIdx - expected), nil
}

// PairwiseAMI computes the AMI between every pair in a set of label vectors
// (all over the same items), returning a symmetric matrix with unit
// diagonal — the structure behind the paper's Fig. 9 heatmap.
func PairwiseAMI(labelings [][]int) ([][]float64, error) {
	k := len(labelings)
	out := make([][]float64, k)
	for i := range out {
		out[i] = make([]float64, k)
		out[i][i] = 1
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			v, err := AMI(labelings[i], labelings[j])
			if err != nil {
				return nil, err
			}
			out[i][j] = v
			out[j][i] = v
		}
	}
	return out, nil
}
