package cluster

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// denseLabels draws n random labels over ≤ maxK groups, canonicalized by
// first appearance (the form collate.IntGraph.Labels emits).
func denseLabels(rng *rand.Rand, n, maxK int) ([]int32, int) {
	raw := make([]int, n)
	for i := range raw {
		raw[i] = rng.Intn(maxK)
	}
	seen := map[int]int32{}
	out := make([]int32, n)
	for i, l := range raw {
		id, ok := seen[l]
		if !ok {
			id = int32(len(seen))
			seen[l] = id
		}
		out[i] = id
	}
	return out, len(seen)
}

func toInts(x []int32) []int {
	out := make([]int, len(x))
	for i, v := range x {
		out[i] = int(v)
	}
	return out
}

// TestAMIDenseBitIdentical: over first-appearance-canonical labels the
// dense path must produce exactly the float AMI produces — the guarantee
// the parallel study sweeps rely on.
func TestAMIDenseBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(60)
		x, kx := denseLabels(rng, n, 1+rng.Intn(8))
		y, ky := denseLabels(rng, n, 1+rng.Intn(8))
		want, err := AMI(toInts(x), toInts(y))
		if err != nil {
			t.Fatal(err)
		}
		got, err := AMIDense(x, y, kx, ky)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d (n=%d): AMIDense=%v, AMI=%v — not bit-identical", trial, n, got, want)
		}
	}
}

// TestAMIDenseRelabelInvariance: AMI over any relabeling of the same
// partitions must equal the dense value (labels carry no meaning beyond
// equality).
func TestAMIDenseRelabelInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, kx := denseLabels(rng, 40, 5)
	y, ky := denseLabels(rng, 40, 4)
	relabel := func(ls []int32, stride int) []int {
		out := make([]int, len(ls))
		for i, l := range ls {
			out[i] = int(l)*stride + 17
		}
		return out
	}
	want, err := AMI(relabel(x, 1000), relabel(y, 31))
	if err != nil {
		t.Fatal(err)
	}
	got, err := AMIDense(x, y, kx, ky)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("AMIDense=%v, AMI over relabeling=%v", got, want)
	}
}

func TestContingencyDenseErrors(t *testing.T) {
	if _, err := NewContingencyDense([]int32{0}, []int32{0, 1}, 1, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewContingencyDense(nil, nil, 1, 1); err == nil {
		t.Error("empty clusterings accepted")
	}
	if _, err := NewContingencyDense([]int32{0}, []int32{0}, 0, 1); err == nil {
		t.Error("non-positive kx accepted")
	}
}

// TestLogFactorialsConcurrent: the shared table must grow safely under
// concurrent readers and always match a fresh incremental computation.
func TestLogFactorialsConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 1; n < 400; n += 7 + w {
				lg := logFactorials(n)
				if len(lg) != n+1 {
					t.Errorf("logFactorials(%d) has %d entries", n, len(lg))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	lg := logFactorials(500)
	var want float64
	for k := 2; k <= 500; k++ {
		want = lg[k-1] + math.Log(float64(k))
		if lg[k] != want {
			t.Fatalf("lgam[%d] = %v, want %v", k, lg[k], want)
		}
	}
}
