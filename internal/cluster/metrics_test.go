package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContingencyValidation(t *testing.T) {
	if _, err := NewContingency([]int{1}, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewContingency(nil, nil); err == nil {
		t.Error("empty clusterings accepted")
	}
}

func TestContingencyCounts(t *testing.T) {
	c, err := NewContingency([]int{0, 0, 1, 1}, []int{5, 5, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if c.n != 4 {
		t.Errorf("n = %d", c.n)
	}
	if len(c.rows) != 2 || len(c.cols) != 2 {
		t.Fatalf("shape %dx%d, want 2x2", len(c.rows), len(c.cols))
	}
	if c.rows[0] != 2 || c.rows[1] != 2 || c.cols[0] != 3 || c.cols[1] != 1 {
		t.Errorf("marginals rows=%v cols=%v", c.rows, c.cols)
	}
}

func TestAMIIdenticalIsOne(t *testing.T) {
	cases := [][]int{
		{0, 0, 1, 1, 2, 2},
		{0, 1, 2, 3, 4, 5},    // all singletons
		{7, 7, 7, 7},          // single cluster
		{1, 1, 2, 2, 2, 3, 4}, // imbalanced
	}
	for _, labels := range cases {
		got, err := AMI(labels, labels)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-1) > 1e-9 {
			t.Errorf("AMI(x,x) = %g for %v, want 1", got, labels)
		}
	}
}

func TestAMILabelPermutationInvariance(t *testing.T) {
	x := []int{0, 0, 1, 1, 2, 2, 2, 3}
	y := []int{1, 1, 0, 0, 5, 5, 5, 9} // same partition, renamed labels
	got, err := AMI(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("AMI under label renaming = %g, want 1", got)
	}
}

// TestAMIRandomNearZero: independent random clusterings must score ≈ 0 —
// the "adjusted for chance" property that distinguishes AMI from raw MI.
func TestAMIRandomNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sum float64
	const trials = 20
	for i := 0; i < trials; i++ {
		n := 300
		x := make([]int, n)
		y := make([]int, n)
		for j := range x {
			x[j] = rng.Intn(8)
			y[j] = rng.Intn(8)
		}
		v, err := AMI(x, y)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	mean := sum / trials
	if math.Abs(mean) > 0.03 {
		t.Errorf("mean AMI of independent clusterings = %g, want ≈ 0", mean)
	}
}

// TestExpectedMIMatchesPermutationModel validates the analytic E[MI] against
// a Monte Carlo estimate over random relabelings.
func TestExpectedMIMatchesPermutationModel(t *testing.T) {
	x := []int{0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 2}
	y := []int{0, 0, 1, 1, 1, 2, 2, 2, 2, 0, 0, 1}
	c, err := NewContingency(x, y)
	if err != nil {
		t.Fatal(err)
	}
	analytic := c.ExpectedMI()

	rng := rand.New(rand.NewSource(3))
	const samples = 30000
	perm := append([]int(nil), y...)
	var sum float64
	for s := 0; s < samples; s++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		cc, err := NewContingency(x, perm)
		if err != nil {
			t.Fatal(err)
		}
		sum += cc.MI()
	}
	mc := sum / samples
	if math.Abs(analytic-mc) > 0.01 {
		t.Errorf("analytic EMI %g vs Monte Carlo %g", analytic, mc)
	}
}

func TestAMIBounded(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		x := make([]int, n)
		y := make([]int, n)
		for j := range x {
			x[j] = rng.Intn(1 + rng.Intn(6))
			y[j] = rng.Intn(1 + rng.Intn(6))
		}
		v, err := AMI(x, y)
		if err != nil {
			return false
		}
		return v <= 1+1e-9 && v > -1.5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestAMIRefinementScoresHigh: splitting one cluster of a partition should
// still score high agreement, much higher than an unrelated partition.
func TestAMIRefinementScoresHigh(t *testing.T) {
	base := make([]int, 120)
	refined := make([]int, 120)
	shuffled := make([]int, 120)
	rng := rand.New(rand.NewSource(5))
	for i := range base {
		base[i] = i / 30          // 4 clusters of 30
		refined[i] = i / 15       // each split in two
		shuffled[i] = rng.Intn(8) // unrelated
	}
	hi, err := AMI(base, refined)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := AMI(base, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if hi < 0.5 {
		t.Errorf("refinement AMI = %g, want > 0.5", hi)
	}
	if hi <= lo+0.3 {
		t.Errorf("refinement AMI %g not clearly above random %g", hi, lo)
	}
}

func TestNMI(t *testing.T) {
	x := []int{0, 0, 1, 1}
	if v, _ := NMI(x, x); math.Abs(v-1) > 1e-12 {
		t.Errorf("NMI(x,x) = %g", v)
	}
	// Independent halves: MI = 0 ⇒ NMI = 0.
	if v, _ := NMI([]int{0, 0, 1, 1}, []int{0, 1, 0, 1}); math.Abs(v) > 1e-12 {
		t.Errorf("NMI of independent = %g, want 0", v)
	}
	if v, _ := NMI([]int{3, 3, 3}, []int{3, 3, 3}); v != 1 {
		t.Errorf("NMI of trivial identical = %g", v)
	}
}

func TestARIKnownValues(t *testing.T) {
	// Perfect agreement.
	if v, _ := ARI([]int{0, 0, 1, 1}, []int{1, 1, 0, 0}); math.Abs(v-1) > 1e-12 {
		t.Errorf("ARI perfect = %g", v)
	}
	// Classic anti-correlated example: ARI = -0.5.
	if v, _ := ARI([]int{0, 0, 1, 1}, []int{0, 1, 0, 1}); math.Abs(v+0.5) > 1e-12 {
		t.Errorf("ARI([0011],[0101]) = %g, want -0.5", v)
	}
}

func TestPairwiseAMI(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{0, 0, 1, 1, 1, 1}
	c := []int{5, 5, 6, 6, 7, 7}
	m, err := PairwiseAMI([][]int{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if m[i][i] != 1 {
			t.Errorf("diagonal [%d][%d] = %g", i, i, m[i][i])
		}
		for j := 0; j < 3; j++ {
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
	if math.Abs(m[0][2]-1) > 1e-9 {
		t.Errorf("a and c are the same partition; AMI = %g", m[0][2])
	}
	if m[0][1] >= 1 {
		t.Errorf("a vs b AMI = %g, want < 1", m[0][1])
	}
}

func TestSymmetryProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		x := make([]int, n)
		y := make([]int, n)
		for j := range x {
			x[j] = rng.Intn(4)
			y[j] = rng.Intn(5)
		}
		a, err1 := AMI(x, y)
		b, err2 := AMI(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAMI2093Users(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 2093
	x := make([]int, n)
	y := make([]int, n)
	for j := range x {
		x[j] = rng.Intn(90) // ~90 clusters, like the paper's audio vectors
		y[j] = rng.Intn(90)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AMI(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
