package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVIIdenticalIsZero(t *testing.T) {
	x := []int{0, 0, 1, 1, 2}
	v, err := VI(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("VI(x,x) = %g, want 0", v)
	}
}

// TestVIIsAMetric: symmetry and triangle inequality over random triples.
func TestVIIsAMetric(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30
		mk := func() []int {
			l := make([]int, n)
			for i := range l {
				l[i] = rng.Intn(5)
			}
			return l
		}
		a, b, c := mk(), mk(), mk()
		ab, _ := VI(a, b)
		ba, _ := VI(b, a)
		bc, _ := VI(b, c)
		ac, _ := VI(a, c)
		if math.Abs(ab-ba) > 1e-12 {
			return false
		}
		return ac <= ab+bc+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNVIBounds(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(6)
			b[i] = rng.Intn(6)
		}
		v, err := NVI(a, b)
		if err != nil {
			return false
		}
		return v >= 0 && v <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFowlkesMallows(t *testing.T) {
	// Identical partitions → 1.
	x := []int{0, 0, 1, 1, 2, 2}
	if v, _ := FowlkesMallows(x, x); math.Abs(v-1) > 1e-12 {
		t.Errorf("FM(x,x) = %g", v)
	}
	// Label renaming invariant.
	y := []int{5, 5, 9, 9, 7, 7}
	if v, _ := FowlkesMallows(x, y); math.Abs(v-1) > 1e-12 {
		t.Errorf("FM under renaming = %g", v)
	}
	// All singletons vs all singletons → 1 by convention.
	if v, _ := FowlkesMallows([]int{0, 1, 2}, []int{5, 6, 7}); v != 1 {
		t.Errorf("FM(singletons, singletons) = %g", v)
	}
	// All singletons vs one blob → 0.
	if v, _ := FowlkesMallows([]int{0, 1, 2}, []int{0, 0, 0}); v != 0 {
		t.Errorf("FM(singletons, blob) = %g", v)
	}
	// Known value: x=[0,0,1,1], y=[0,1,0,1]: tp=0 → 0.
	if v, _ := FowlkesMallows([]int{0, 0, 1, 1}, []int{0, 1, 0, 1}); v != 0 {
		t.Errorf("FM anti-correlated = %g", v)
	}
}

func TestHomogeneityCompleteness(t *testing.T) {
	// Clusters refine classes: homogeneous (h=1) but incomplete (c<1).
	classes := []int{0, 0, 0, 0, 1, 1, 1, 1}
	clusters := []int{0, 0, 1, 1, 2, 2, 3, 3}
	h, c, v, err := HomogeneityCompleteness(classes, clusters)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-1) > 1e-12 {
		t.Errorf("refinement homogeneity = %g, want 1", h)
	}
	if c >= 1 {
		t.Errorf("refinement completeness = %g, want < 1", c)
	}
	if v <= 0 || v >= 1 {
		t.Errorf("v-measure = %g, want in (0,1)", v)
	}

	// Swap roles: clusters merge classes → complete but not homogeneous.
	h2, c2, _, err := HomogeneityCompleteness(clusters, classes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c2-1) > 1e-12 {
		t.Errorf("coarsening completeness = %g, want 1", c2)
	}
	if h2 >= 1 {
		t.Errorf("coarsening homogeneity = %g, want < 1", h2)
	}

	// Identical partitions: h = c = v = 1.
	h3, c3, v3, _ := HomogeneityCompleteness(classes, classes)
	if h3 != 1 || c3 != 1 || v3 != 1 {
		t.Errorf("identical partitions: h=%g c=%g v=%g", h3, c3, v3)
	}
}

// TestMetricsAgreeOnOrdering: on a fixed base partition, every metric must
// rank a refinement as closer than a random shuffle.
func TestMetricsAgreeOnOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := make([]int, 120)
	refined := make([]int, 120)
	random := make([]int, 120)
	for i := range base {
		base[i] = i / 30
		refined[i] = i / 15
		random[i] = rng.Intn(8)
	}
	type metric struct {
		name   string
		higher bool // true when larger = more similar
		f      func(a, b []int) (float64, error)
	}
	metrics := []metric{
		{"AMI", true, AMI},
		{"NMI", true, NMI},
		{"ARI", true, ARI},
		{"FM", true, FowlkesMallows},
		{"VI", false, VI},
	}
	for _, m := range metrics {
		near, err := m.f(base, refined)
		if err != nil {
			t.Fatal(err)
		}
		far, err := m.f(base, random)
		if err != nil {
			t.Fatal(err)
		}
		ok := near > far
		if !m.higher {
			ok = near < far
		}
		if !ok {
			t.Errorf("%s: refinement %.4f vs random %.4f ranked wrong", m.name, near, far)
		}
	}
}
