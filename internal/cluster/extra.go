package cluster

import "math"

// Additional clustering-comparison measures beyond AMI: the paper's cited
// methodology literature (Vinh et al. 2009, Romano et al. 2016) evaluates
// agreement metrics side by side; these let users of this library do the
// same on fingerprint clusterings.

// VI returns the Variation of Information (Meilă) between two clusterings,
// in nats: VI = H(U) + H(V) − 2·MI. It is a metric (0 = identical
// partitions; larger = more disagreement).
func VI(x, y []int) (float64, error) {
	c, err := NewContingency(x, y)
	if err != nil {
		return 0, err
	}
	vi := c.EntropyU() + c.EntropyV() - 2*c.MI()
	if vi < 0 {
		vi = 0 // guard rounding
	}
	return vi, nil
}

// NVI returns VI normalized by log(n), mapping it into [0, 1].
func NVI(x, y []int) (float64, error) {
	vi, err := VI(x, y)
	if err != nil {
		return 0, err
	}
	n := float64(len(x))
	if n <= 1 {
		return 0, nil
	}
	return vi / math.Log(n), nil
}

// FowlkesMallows returns the Fowlkes–Mallows index: the geometric mean of
// pairwise precision and recall over co-clustered item pairs.
func FowlkesMallows(x, y []int) (float64, error) {
	c, err := NewContingency(x, y)
	if err != nil {
		return 0, err
	}
	choose2 := func(k int) float64 { return float64(k) * float64(k-1) / 2 }
	var tp, pairsU, pairsV float64
	for i, row := range c.cells {
		for _, nij := range row {
			tp += choose2(nij)
		}
		pairsU += choose2(c.rows[i])
	}
	for _, bj := range c.cols {
		pairsV += choose2(bj)
	}
	if pairsU == 0 || pairsV == 0 {
		// One side has no co-clustered pairs (all singletons): perfect
		// agreement iff the other side has none either.
		if pairsU == pairsV {
			return 1, nil
		}
		return 0, nil
	}
	return tp / math.Sqrt(pairsU*pairsV), nil
}

// HomogeneityCompleteness returns Rosenberg–Hirschberg's homogeneity h
// (every cluster of V contains members of a single class of U) and
// completeness c (every class of U is assigned to a single cluster of V),
// plus their harmonic mean, the V-measure.
func HomogeneityCompleteness(classes, clusters []int) (h, c, vmeasure float64, err error) {
	ct, err := NewContingency(classes, clusters)
	if err != nil {
		return 0, 0, 0, err
	}
	hu, hv := ct.EntropyU(), ct.EntropyV()
	mi := ct.MI()
	if hu == 0 {
		h = 1
	} else {
		h = mi / hu
	}
	if hv == 0 {
		c = 1
	} else {
		c = mi / hv
	}
	// Note the convention: homogeneity conditions the class distribution on
	// clusters (1 − H(U|V)/H(U) = MI/H(U)); completeness is symmetric.
	if h+c == 0 {
		return h, c, 0, nil
	}
	vmeasure = 2 * h * c / (h + c)
	return h, c, vmeasure, nil
}
