package diag

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
)

// heapSink keeps an allocation reachable so the heap profile is guaranteed
// to carry inuse_space samples from this package.
var heapSink [][]byte

//go:noinline
func retainMegabytes(n int) {
	for i := 0; i < n; i++ {
		heapSink = append(heapSink, make([]byte, 1<<20))
	}
}

func TestParsePprofHeapProfile(t *testing.T) {
	retainMegabytes(8)
	defer func() { heapSink = nil }()
	runtime.GC() // heap profile reflects the last completed GC

	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}

	p, err := ParsePprof(&buf)
	if err != nil {
		t.Fatalf("ParsePprof: %v", err)
	}
	if len(p.Samples) == 0 {
		t.Fatal("heap profile decoded with zero samples")
	}
	hasInuse := false
	for _, st := range p.SampleTypes {
		if splitType(st) == "inuse_space" {
			hasInuse = true
		}
	}
	if !hasInuse {
		t.Fatalf("sample types %v missing inuse_space", p.SampleTypes)
	}

	top := TopByType(p, "inuse_space", 10)
	if len(top) == 0 {
		t.Fatal("TopByType(inuse_space) empty")
	}
	found := false
	for _, ft := range top {
		if ft.Func == "repro/internal/diag.retainMegabytes" && ft.Value >= 4<<20 {
			found = true
		}
	}
	if !found {
		t.Errorf("retainMegabytes (8MB retained) not in top-10 inuse_space: %+v", top)
	}
}

func TestParsePprofRejectsGarbage(t *testing.T) {
	if _, err := ParsePprof(bytes.NewReader([]byte("not a profile"))); err == nil {
		t.Fatal("garbage input parsed without error")
	}
	if _, err := ParsePprof(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input parsed without error")
	}
}

func TestTopByTypeMissingType(t *testing.T) {
	p := &Profile{SampleTypes: []string{"inuse_space/bytes"}}
	if got := TopByType(p, "cpu", 5); got != nil {
		t.Fatalf("TopByType(missing) = %v, want nil", got)
	}
}
