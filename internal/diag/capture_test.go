package diag

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/watch"
)

// fakeClock is a hand-advanced clock for deterministic cooldown tests.
type fakeClock struct {
	t time.Time
}

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func firingAlert(rule string) watch.Alert {
	return watch.Alert{
		Rule: rule, Kind: watch.KindRenderDivergence,
		Subject: rule, State: watch.StateFiring,
		Value: 1, FiredAtRecords: 100,
	}
}

func TestCaptureManualWritesCompleteBundle(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSampler(SamplerConfig{Registry: reg})
	defer s.Close()
	c, err := NewCapturer(CaptureConfig{
		Dir:      t.TempDir(),
		Registry: reg,
		Sampler:  s,
	})
	if err != nil {
		t.Fatal(err)
	}
	man, err := c.Capture()
	if err != nil {
		t.Fatal(err)
	}
	if man.Reason != ReasonManual || man.Rule != "" {
		t.Errorf("manifest reason/rule = %q/%q", man.Reason, man.Rule)
	}
	if man.Runtime == nil || man.Runtime.Goroutines < 1 {
		t.Error("manifest missing runtime stats")
	}
	if man.TotalBytes <= 0 {
		t.Error("manifest TotalBytes not accumulated")
	}
	for _, want := range []string{FileGoroutines, FileHeap, FileMetrics, FileManifest} {
		p := filepath.Join(c.Dir(), man.ID, want)
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("bundle missing %s: %v", want, err)
		}
		if st.Size() == 0 {
			t.Errorf("bundle file %s is empty", want)
		}
	}
	// The heap profile must parse with the bundled reader.
	f, err := os.Open(filepath.Join(c.Dir(), man.ID, FileHeap))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := ParsePprof(f); err != nil {
		t.Fatalf("bundled heap profile does not parse: %v", err)
	}

	got, err := c.Manifest(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != man.ID {
		t.Errorf("ReadManifest ID = %q, want %q", got.ID, man.ID)
	}
}

// TestCooldownSuppressesSecondCapture is the fake-clock acceptance test: a
// second breach of the same rule within the cooldown captures nothing; one
// past the cooldown (or of a different rule) captures again.
func TestCooldownSuppressesSecondCapture(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	c, err := NewCapturer(CaptureConfig{
		Dir:      t.TempDir(),
		Registry: reg,
		Cooldown: 10 * time.Minute,
		Now:      clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}

	c.OnTransition(firingAlert("render-divergence"), watch.StatePending, watch.StateFiring)
	c.Flush()
	if n := countBundles(t, c); n != 1 {
		t.Fatalf("after first firing: %d bundles, want 1", n)
	}

	// Second breach 1 minute later: inside the cooldown, suppressed.
	clk.advance(time.Minute)
	c.OnTransition(firingAlert("render-divergence"), watch.StatePending, watch.StateFiring)
	c.Flush()
	if n := countBundles(t, c); n != 1 {
		t.Fatalf("breach within cooldown captured: %d bundles, want 1", n)
	}
	if v := c.mSuppressed.Value(); v != 1 {
		t.Errorf("diag_captures_suppressed_total = %d, want 1", v)
	}

	// A different rule is not suppressed by render-divergence's cooldown.
	c.OnTransition(firingAlert("entropy-collapse"), watch.StatePending, watch.StateFiring)
	c.Flush()
	if n := countBundles(t, c); n != 2 {
		t.Fatalf("different rule suppressed: %d bundles, want 2", n)
	}

	// Past the cooldown the original rule captures again.
	clk.advance(10 * time.Minute)
	c.OnTransition(firingAlert("render-divergence"), watch.StatePending, watch.StateFiring)
	c.Flush()
	if n := countBundles(t, c); n != 3 {
		t.Fatalf("breach past cooldown did not capture: %d bundles, want 3", n)
	}
}

func TestOnTransitionIgnoresNonFiring(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := NewCapturer(CaptureConfig{Dir: t.TempDir(), Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	a := firingAlert("render-divergence")
	c.OnTransition(a, "", watch.StatePending)
	c.OnTransition(a, watch.StateFiring, watch.StateResolved)
	c.Flush()
	if n := countBundles(t, c); n != 0 {
		t.Fatalf("non-firing transitions captured %d bundles, want 0", n)
	}
}

func TestRingEvictsOldestByCount(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	c, err := NewCapturer(CaptureConfig{
		Dir:        t.TempDir(),
		Registry:   reg,
		MaxBundles: 2,
		Now:        clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 4; i++ {
		man, err := c.Capture()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, man.ID)
		clk.advance(time.Second)
	}
	mans, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(mans) != 2 {
		t.Fatalf("ring holds %d bundles, want 2", len(mans))
	}
	// Newest first: the two most recent captures survive.
	if mans[0].ID != ids[3] || mans[1].ID != ids[2] {
		t.Errorf("ring = [%s %s], want [%s %s]", mans[0].ID, mans[1].ID, ids[3], ids[2])
	}
	if _, err := c.Manifest(ids[0]); err != ErrUnknownBundle {
		t.Errorf("evicted bundle manifest error = %v, want ErrUnknownBundle", err)
	}
	if got := c.mBundles.Value(); got != 2 {
		t.Errorf("diag_bundles = %v, want 2", got)
	}
}

func TestRingEvictsByBytesButKeepsNewest(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	// Any real bundle exceeds 1 byte, so every capture evicts all elders.
	c, err := NewCapturer(CaptureConfig{
		Dir:      t.TempDir(),
		Registry: reg,
		MaxBytes: 1,
		Now:      clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Capture(); err != nil {
			t.Fatal(err)
		}
		clk.advance(time.Second)
	}
	mans, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(mans) != 1 {
		t.Fatalf("ring holds %d bundles under a 1-byte cap, want 1 (newest kept)", len(mans))
	}
}

func TestValidBundleID(t *testing.T) {
	for id, want := range map[string]bool{
		"20260808T120000Z-0001-render-divergence": true,
		"":                 false,
		".":                false,
		"..":               false,
		".tmp-x":           false,
		"a/b":              false,
		"..\\c":            false,
		"../../etc/passwd": false,
		"plain":            true,
	} {
		if got := ValidBundleID(id); got != want {
			t.Errorf("ValidBundleID(%q) = %v, want %v", id, got, want)
		}
	}
}

func countBundles(t *testing.T, c *Capturer) int {
	t.Helper()
	mans, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	return len(mans)
}
