package diag_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/diag"
	"repro/internal/obs"
	"repro/internal/obs/series"
	"repro/internal/storage"
	"repro/internal/streaming"
	"repro/internal/vectors"
	"repro/internal/watch"
	"repro/internal/webaudio"
)

// TestFaultInjectedCaptureE2E is the PR's acceptance path: a deliberately
// broken block kernel diverges from the reference engine, the
// render-divergence watch rule fires off the ingest path, and the
// transition hook leaves exactly one on-disk bundle whose manifest names
// the breached rule, whose heap profile parses, and whose series window
// carries the divergence counter at the breach moment. A second immediate
// breach within the cooldown captures nothing.
//
// When DIAG_BUNDLE_OUT is set the bundle ring lands there instead of a
// temp dir — the nightly workflow uses this to upload a real fault-
// injected bundle as a build artifact.
func TestFaultInjectedCaptureE2E(t *testing.T) {
	bundleDir := os.Getenv("DIAG_BUNDLE_OUT")
	if bundleDir == "" {
		bundleDir = t.TempDir()
	} else if err := os.RemoveAll(bundleDir); err != nil {
		t.Fatal(err)
	}

	clk := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	now := func() time.Time { return clk }

	reg := obs.NewRegistry()
	sampler := diag.NewSampler(diag.SamplerConfig{Registry: reg})
	defer sampler.Close()

	eng := streaming.New(streaming.Config{Registry: reg, AMIRefreshEvery: -1})
	defer eng.Close()
	mon, err := watch.New(watch.Config{
		Engine:   eng,
		Registry: reg,
		Rules: []watch.Rule{{
			Name: "render-divergence", Kind: watch.KindRenderDivergence, Every: 1,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	ts := series.New(series.Config{Registry: reg, Now: now})

	auditor := vectors.NewShadowAuditor(vectors.ShadowConfig{Every: 1, Registry: reg})
	cache := vectors.NewCache()
	cache.SetShadow(auditor)
	runner := vectors.NewRunner(webaudio.DefaultTraits(), 44100)

	capt, err := diag.NewCapturer(diag.CaptureConfig{
		Dir:        bundleDir,
		Registry:   reg,
		Series:     ts,
		Sampler:    sampler,
		Alerts:     mon.Snapshot,
		RuleLookup: mon.RuleByName,
		Divergence: func() any { return auditor.Summary() },
		Cooldown:   10 * time.Minute,
		Now:        now,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.SetTransitionHook(capt.OnTransition)

	rec := func(user, hash string) storage.Record {
		return storage.Record{UserID: user, Vector: vectors.DC.String(), Hash: hash}
	}

	// Healthy render + record: clean evaluation, no bundles.
	if _, err := cache.Run("stack-healthy", runner, vectors.DC, 0); err != nil {
		t.Fatal(err)
	}
	eng.Apply([]storage.Record{rec("u000", "aaaa")})
	capt.Flush()
	if mans, _ := diag.ListBundles(bundleDir); len(mans) != 0 {
		t.Fatalf("healthy pipeline captured %d bundles, want 0", len(mans))
	}

	// Inject the kernel fault and render through the production cache-miss
	// path: the shadow audit increments the divergence counter.
	webaudio.SetBlockFault("compressor", 9, 1<<21)
	defer webaudio.SetBlockFault("", 0, 0)
	if _, err := cache.Run("stack-broken", runner, vectors.DC, 1); err != nil {
		t.Fatal(err)
	}
	clk = clk.Add(5 * time.Second)
	ts.Tick() // retain the pre-breach counter position

	// The next applied record evaluates the rule: pending→firing (For
	// defaults to 1), and the transition hook captures a bundle.
	eng.Apply([]storage.Record{rec("u001", "bbbb")})
	capt.Flush()

	mans, err := diag.ListBundles(bundleDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(mans) != 1 {
		t.Fatalf("after firing: %d bundles, want exactly 1", len(mans))
	}
	man := mans[0]
	if man.Rule != "render-divergence" {
		t.Errorf("manifest rule = %q, want render-divergence", man.Rule)
	}
	if man.Reason != diag.ReasonAlert {
		t.Errorf("manifest reason = %q, want %q", man.Reason, diag.ReasonAlert)
	}
	if man.Alert == nil || man.Alert.State != watch.StateFiring {
		t.Errorf("manifest alert = %+v, want firing", man.Alert)
	}

	// The heap profile must be pprof-parsable.
	hf, err := os.Open(filepath.Join(bundleDir, man.ID, diag.FileHeap))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := diag.ParsePprof(hf)
	hf.Close()
	if err != nil {
		t.Fatalf("bundled heap profile does not parse: %v", err)
	}
	if len(prof.Samples) == 0 {
		t.Error("bundled heap profile has no samples")
	}

	// The series window must carry the breached rule's metric with at
	// least one retained point.
	raw, err := os.ReadFile(filepath.Join(bundleDir, man.ID, diag.FileSeries))
	if err != nil {
		t.Fatal(err)
	}
	var win struct {
		Metrics map[string]series.QueryResult `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &win); err != nil {
		t.Fatal(err)
	}
	qr, ok := win.Metrics["vectors_render_divergence_total"]
	if !ok {
		t.Fatalf("series window missing vectors_render_divergence_total, has %v", keys(win.Metrics))
	}
	points := 0
	sawDivergence := false
	for _, s := range qr.Series {
		points += len(s.Points)
		for _, p := range s.Points {
			if p.V >= 1 {
				sawDivergence = true
			}
		}
	}
	if points == 0 {
		t.Error("series window for the divergence counter is empty")
	}
	if !sawDivergence {
		t.Error("series window never shows the divergence counter at >= 1")
	}

	// The divergence dump names the faulted kernel.
	draw, err := os.ReadFile(filepath.Join(bundleDir, man.ID, diag.FileDivergence))
	if err != nil {
		t.Fatal(err)
	}
	var sum vectors.ShadowSummary
	if err := json.Unmarshal(draw, &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Records) != 1 || sum.Records[0].Divergence.Op != "compressor" {
		t.Errorf("divergence dump = %+v, want one record naming compressor", sum.Records)
	}

	// Second immediate breach within the cooldown: resolve the alert, then
	// diverge again — the rule re-fires but the capture is suppressed.
	webaudio.SetBlockFault("", 0, 0)
	eng.Apply([]storage.Record{rec("u002", "cccc")}) // clean: resolves
	webaudio.SetBlockFault("compressor", 9, 1<<21)
	if _, err := cache.Run("stack-broken-2", runner, vectors.DC, 2); err != nil {
		t.Fatal(err)
	}
	clk = clk.Add(time.Minute) // still inside the 10m cooldown
	eng.Apply([]storage.Record{rec("u003", "dddd")})
	capt.Flush()
	if mans, _ := diag.ListBundles(bundleDir); len(mans) != 1 {
		t.Fatalf("breach within cooldown captured: %d bundles, want still 1", len(mans))
	}
	if snap := mon.Snapshot(); snap.Firing != 1 {
		t.Fatalf("second breach did not re-fire the rule: %+v", snap)
	}
}

func keys(m map[string]series.QueryResult) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
