package diag

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"sort"
)

// This file is a minimal, dependency-free reader for the pprof protobuf
// profile format (the gzipped proto written by runtime/pprof). It decodes
// just enough of the wire format — sample types, per-sample values, and the
// leaf function name of each sample's call stack — for fpdiag to rank and
// diff heap usage by function. It is a reader for our own bundles, not a
// general pprof implementation.

// Profile is the decoded subset of a pprof profile.
type Profile struct {
	// SampleTypes names each value column, as "type/unit" (e.g.
	// "inuse_space/bytes").
	SampleTypes []string
	// Samples carries one entry per profile sample.
	Samples []ProfileSample
}

// ProfileSample is one sample: a call stack (leaf first) and one value per
// sample type.
type ProfileSample struct {
	// Funcs is the sample's call stack as function names, leaf first.
	Funcs []string
	// Values align with Profile.SampleTypes.
	Values []int64
}

// protobuf field numbers for the pprof Profile message and its submessages
// (profile.proto from github.com/google/pprof, stable since 2016).
const (
	fProfileSampleType = 1
	fProfileSample     = 2
	fProfileLocation   = 4
	fProfileFunction   = 5
	fProfileStringTab  = 6

	fValueTypeType = 1
	fValueTypeUnit = 2

	fSampleLocationID = 1
	fSampleValue      = 2

	fLocationID   = 1
	fLocationLine = 4

	fLineFunctionID = 1

	fFunctionID   = 1
	fFunctionName = 2
)

// ParsePprof decodes a (possibly gzipped) pprof protobuf profile.
func ParsePprof(r io.Reader) (*Profile, error) {
	head := make([]byte, 2)
	n, err := io.ReadFull(r, head)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, fmt.Errorf("read profile: %w", err)
	}
	body := io.MultiReader(newByteReader(head[:n]), r)
	if n == 2 && head[0] == 0x1f && head[1] == 0x8b {
		gz, err := gzip.NewReader(body)
		if err != nil {
			return nil, fmt.Errorf("gunzip profile: %w", err)
		}
		defer gz.Close()
		body = gz
	}
	raw, err := io.ReadAll(body)
	if err != nil {
		return nil, fmt.Errorf("read profile: %w", err)
	}
	return parseProfile(raw)
}

type byteReader struct {
	b []byte
}

func newByteReader(b []byte) *byteReader { return &byteReader{b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// rawSample/rawLocation hold cross-referenced IDs until the whole message
// is decoded and the string table is known.
type rawSample struct {
	locIDs []uint64
	values []int64
}

func parseProfile(raw []byte) (*Profile, error) {
	var (
		strTab      [][]byte
		typeIdx     [][2]uint64 // string-table indexes of sample (type, unit)
		samples     []rawSample
		locFunc     = map[uint64]uint64{} // location id → leaf function id
		funcNameIdx = map[uint64]uint64{} // function id → name string index
	)
	err := walkFields(raw, func(field uint64, wire int, v uint64, msg []byte) error {
		switch field {
		case fProfileStringTab:
			strTab = append(strTab, msg)
		case fProfileSampleType:
			var tIdx, uIdx uint64
			err := walkFields(msg, func(f uint64, _ int, v uint64, _ []byte) error {
				switch f {
				case fValueTypeType:
					tIdx = v
				case fValueTypeUnit:
					uIdx = v
				}
				return nil
			})
			if err != nil {
				return err
			}
			typeIdx = append(typeIdx, [2]uint64{tIdx, uIdx})
		case fProfileSample:
			s, err := parseSample(msg)
			if err != nil {
				return err
			}
			samples = append(samples, s)
		case fProfileLocation:
			var id, fn uint64
			err := walkFields(msg, func(f uint64, _ int, v uint64, sub []byte) error {
				switch f {
				case fLocationID:
					id = v
				case fLocationLine:
					if fn == 0 { // first Line is the innermost frame
						return walkFields(sub, func(lf uint64, _ int, lv uint64, _ []byte) error {
							if lf == fLineFunctionID && fn == 0 {
								fn = lv
							}
							return nil
						})
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			locFunc[id] = fn
		case fProfileFunction:
			var id, name uint64
			err := walkFields(msg, func(f uint64, _ int, v uint64, _ []byte) error {
				switch f {
				case fFunctionID:
					id = v
				case fFunctionName:
					name = v
				}
				return nil
			})
			if err != nil {
				return err
			}
			funcNameIdx[id] = name
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	str := func(i uint64) string {
		if i < uint64(len(strTab)) {
			return string(strTab[i])
		}
		return ""
	}
	p := &Profile{}
	for _, ti := range typeIdx {
		st := str(ti[0])
		if unit := str(ti[1]); unit != "" {
			st += "/" + unit
		}
		p.SampleTypes = append(p.SampleTypes, st)
	}
	for _, rs := range samples {
		ps := ProfileSample{Values: rs.values}
		for _, lid := range rs.locIDs {
			name := str(funcNameIdx[locFunc[lid]])
			if name == "" {
				name = fmt.Sprintf("location#%d", lid)
			}
			ps.Funcs = append(ps.Funcs, name)
		}
		p.Samples = append(p.Samples, ps)
	}
	if len(p.SampleTypes) == 0 {
		return nil, errors.New("profile carries no sample types (not a pprof profile?)")
	}
	return p, nil
}

func parseSample(msg []byte) (rawSample, error) {
	var s rawSample
	err := walkFields(msg, func(f uint64, wire int, v uint64, sub []byte) error {
		switch f {
		case fSampleLocationID:
			if wire == 2 { // packed
				return walkPacked(sub, func(v uint64) {
					s.locIDs = append(s.locIDs, v)
				})
			}
			s.locIDs = append(s.locIDs, v)
		case fSampleValue:
			if wire == 2 { // packed
				return walkPacked(sub, func(v uint64) {
					s.values = append(s.values, int64(v))
				})
			}
			s.values = append(s.values, int64(v))
		}
		return nil
	})
	return s, err
}

// walkFields iterates a protobuf message's fields. For varint fields the
// value arrives in v; for length-delimited fields the payload arrives in
// msg (and v is its length). Fixed32/64 are skipped (pprof doesn't use
// them in the fields we read).
func walkFields(b []byte, fn func(field uint64, wire int, v uint64, msg []byte) error) error {
	for len(b) > 0 {
		key, n := uvarint(b)
		if n <= 0 {
			return errors.New("truncated field key")
		}
		b = b[n:]
		field, wire := key>>3, int(key&7)
		switch wire {
		case 0: // varint
			v, n := uvarint(b)
			if n <= 0 {
				return errors.New("truncated varint")
			}
			b = b[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(b) < 8 {
				return errors.New("truncated fixed64")
			}
			b = b[8:]
		case 2: // length-delimited
			l, n := uvarint(b)
			if n <= 0 || uint64(len(b)-n) < l {
				return errors.New("truncated length-delimited field")
			}
			payload := b[n : uint64(n)+l]
			b = b[uint64(n)+l:]
			if err := fn(field, wire, l, payload); err != nil {
				return err
			}
		case 5: // fixed32
			if len(b) < 4 {
				return errors.New("truncated fixed32")
			}
			b = b[4:]
		default:
			return fmt.Errorf("unsupported wire type %d", wire)
		}
	}
	return nil
}

func walkPacked(b []byte, fn func(uint64)) error {
	for len(b) > 0 {
		v, n := uvarint(b)
		if n <= 0 {
			return errors.New("truncated packed varint")
		}
		fn(v)
		b = b[n:]
	}
	return nil
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i]&0x80 == 0 {
			return v, i + 1
		}
	}
	return 0, 0
}

// FuncTotal is a per-function aggregate from a profile.
type FuncTotal struct {
	Func  string `json:"func"`
	Value int64  `json:"value"`
}

// TopByType aggregates a profile's samples by leaf function for the named
// sample type (e.g. "inuse_space") and returns the top n by absolute
// value, largest first. Returns nil when the type is absent.
func TopByType(p *Profile, sampleType string, n int) []FuncTotal {
	col := -1
	for i, st := range p.SampleTypes {
		if st == sampleType || splitType(st) == sampleType {
			col = i
			break
		}
	}
	if col < 0 {
		return nil
	}
	byFunc := map[string]int64{}
	for _, s := range p.Samples {
		if col >= len(s.Values) {
			continue
		}
		leaf := "<unknown>"
		if len(s.Funcs) > 0 {
			leaf = s.Funcs[0]
		}
		byFunc[leaf] += s.Values[col]
	}
	out := make([]FuncTotal, 0, len(byFunc))
	for f, v := range byFunc {
		out = append(out, FuncTotal{Func: f, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs64(out[i].Value), abs64(out[j].Value)
		if ai != aj {
			return ai > aj
		}
		return out[i].Func < out[j].Func
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func splitType(st string) string {
	for i := 0; i < len(st); i++ {
		if st[i] == '/' {
			return st[:i]
		}
	}
	return st
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
