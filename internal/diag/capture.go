package diag

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/series"
	"repro/internal/watch"
)

// Bundle file names. A bundle is one directory under the capturer's Dir
// holding these files; manifest.json is written last, so its presence
// marks a complete bundle.
const (
	FileManifest   = "manifest.json"
	FileGoroutines = "goroutines.txt"
	FileHeap       = "heap.pb.gz"
	FileCPU        = "cpu.pb.gz"
	FileSeries     = "series.json"
	FileAlerts     = "alerts.json"
	FileDivergence = "divergence.json"
	FileMetrics    = "metrics.prom"
)

// Capture reasons recorded in manifests and the diag_captures_total label.
const (
	ReasonAlert  = "alert"
	ReasonManual = "manual"
)

// CaptureConfig parameterizes NewCapturer.
type CaptureConfig struct {
	// Dir is the bundle ring directory. Required; created if absent.
	Dir string
	// MaxBundles bounds the ring by count (default 16; oldest evicted).
	MaxBundles int
	// MaxBytes bounds the ring by total size (default 256 MiB; oldest
	// evicted, the newest bundle always kept).
	MaxBytes int64
	// Cooldown suppresses alert-triggered captures for the same rule
	// within this window — flap protection (default 10m). Manual captures
	// bypass it.
	Cooldown time.Duration
	// CPUSeconds, when positive, adds a CPU profile of this many seconds
	// to each bundle. Captures then take that long to complete.
	CPUSeconds int
	// Window is how far back the bundled series query reaches
	// (default 15m).
	Window time.Duration
	// Registry supplies the metrics snapshot bundled as metrics.prom and
	// the capturer's own diag_* metrics; nil uses obs.Default.
	Registry *obs.Registry
	// Series, when set, contributes the breached rule's metric windows as
	// series.json (the store is ticked first so the breach moment is
	// retained).
	Series *series.Store
	// Sampler, when set, contributes a fresh RuntimeStats reading to the
	// manifest.
	Sampler *Sampler
	// Alerts, when set, supplies the full alert snapshot bundled as
	// alerts.json (typically watch.Monitor.Snapshot).
	Alerts func() watch.Snapshot
	// RuleLookup resolves a rule name to its normalized rule so the
	// capture knows which metric series to bundle (typically
	// watch.Monitor.RuleByName).
	RuleLookup func(name string) (watch.Rule, bool)
	// Divergence, when set, supplies the flight-recorder divergence state
	// bundled as divergence.json (typically vectors.ShadowAuditor.Summary
	// wrapped to any).
	Divergence func() any
	// Now is the clock (default time.Now). Injectable so cooldown tests
	// are deterministic.
	Now func() time.Time
	// Logger receives capture/evict events; nil disables logging.
	Logger *slog.Logger
}

// BundleFile is one file inside a bundle, as listed by the manifest.
type BundleFile struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
}

// ShardIngest is one shard's ingest counter at capture time.
type ShardIngest struct {
	Shard   string `json:"shard"`
	Records int64  `json:"records"`
}

// Manifest describes one diagnostic bundle.
type Manifest struct {
	ID         string    `json:"id"`
	CapturedAt time.Time `json:"captured_at"`
	// Reason is "alert" (an OnTransition capture) or "manual" (POST).
	Reason string `json:"reason"`
	// Rule names the breached rule for alert captures ("" for manual).
	Rule string `json:"rule,omitempty"`
	// Alert is the firing alert that triggered an alert capture.
	Alert      *watch.Alert  `json:"alert,omitempty"`
	GoVersion  string        `json:"go_version"`
	Main       string        `json:"main,omitempty"`
	Hostname   string        `json:"hostname,omitempty"`
	PID        int           `json:"pid"`
	Runtime    *RuntimeStats `json:"runtime,omitempty"`
	Shards     []ShardIngest `json:"shards,omitempty"`
	ShardSkew  float64       `json:"shard_skew,omitempty"`
	Files      []BundleFile  `json:"files"`
	TotalBytes int64         `json:"total_bytes"`
}

// seriesWindow is the series.json payload: the bundled metric windows
// keyed by metric name.
type seriesWindow struct {
	// Since is the window start (unix milliseconds).
	Since int64 `json:"since"`
	// Metrics maps metric name to its retained window.
	Metrics map[string]series.QueryResult `json:"metrics"`
}

// Capturer snapshots diagnostic bundles into a bounded on-disk ring.
// Create with NewCapturer; wire OnTransition into a watch.Monitor via
// SetTransitionHook. All methods are safe for concurrent use.
type Capturer struct {
	cfg CaptureConfig

	mCaptures   func(reason string) *obs.Counter
	mSuppressed *obs.Counter
	mBundles    *obs.Gauge
	mBytes      *obs.Gauge

	seq atomic.Int64
	wg  sync.WaitGroup

	mu         sync.Mutex
	lastByRule map[string]time.Time
}

// NewCapturer builds a capturer over cfg.Dir, creating the directory and
// registering the diag_* metrics.
func NewCapturer(cfg CaptureConfig) (*Capturer, error) {
	if cfg.Dir == "" {
		return nil, errors.New("diag: CaptureConfig.Dir is required")
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 16
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 256 << 20
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Minute
	}
	if cfg.Window <= 0 {
		cfg.Window = 15 * time.Minute
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("diag: create bundle dir: %w", err)
	}
	c := &Capturer{
		cfg:        cfg,
		lastByRule: make(map[string]time.Time),
	}
	reg := cfg.Registry
	c.mCaptures = func(reason string) *obs.Counter {
		return reg.Counter("diag_captures_total",
			"Diagnostic bundles captured, by trigger reason.",
			obs.Labels{"reason": reason})
	}
	c.mCaptures(ReasonAlert) // pre-register both label values
	c.mCaptures(ReasonManual)
	c.mSuppressed = reg.Counter("diag_captures_suppressed_total",
		"Alert-triggered captures suppressed by the per-rule cooldown.", nil)
	c.mBundles = reg.Gauge("diag_bundles",
		"Diagnostic bundles currently retained on disk.", nil)
	c.mBytes = reg.Gauge("diag_bundle_bytes",
		"Total bytes of retained diagnostic bundles.", nil)
	c.refreshRingGauges()
	return c, nil
}

// Dir returns the bundle ring directory.
func (c *Capturer) Dir() string { return c.cfg.Dir }

// OnTransition is the watch.Monitor hook: a pending→firing transition
// triggers an asynchronous bundle capture unless the rule fired within the
// cooldown. Other transitions are ignored.
func (c *Capturer) OnTransition(a watch.Alert, from, to string) {
	if to != watch.StateFiring {
		return
	}
	now := c.cfg.Now()
	c.mu.Lock()
	if last, ok := c.lastByRule[a.Rule]; ok && now.Sub(last) < c.cfg.Cooldown {
		c.mu.Unlock()
		c.mSuppressed.Inc()
		if c.cfg.Logger != nil {
			c.cfg.Logger.Info("diag capture suppressed by cooldown",
				"rule", a.Rule, "since_last", now.Sub(last))
		}
		return
	}
	c.lastByRule[a.Rule] = now
	c.mu.Unlock()

	// Capture off the observing goroutine: profile writes and the series
	// query must not stall the ingest path the alert fired from.
	alert := a
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		if _, err := c.capture(ReasonAlert, &alert); err != nil && c.cfg.Logger != nil {
			c.cfg.Logger.Error("diag capture failed", "rule", alert.Rule, "err", err)
		}
	}()
}

// Flush blocks until every in-flight asynchronous capture has finished.
func (c *Capturer) Flush() { c.wg.Wait() }

// Capture takes a bundle synchronously — the on-demand POST path. Manual
// captures bypass the cooldown.
func (c *Capturer) Capture() (Manifest, error) {
	return c.capture(ReasonManual, nil)
}

func (c *Capturer) capture(reason string, alert *watch.Alert) (Manifest, error) {
	now := c.cfg.Now()
	id := c.bundleID(now, alert)
	tmp := filepath.Join(c.cfg.Dir, ".tmp-"+id)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return Manifest{}, err
	}
	defer os.RemoveAll(tmp) // no-op after the successful rename

	man := Manifest{
		ID:         id,
		CapturedAt: now.UTC(),
		Reason:     reason,
		Alert:      alert,
		GoVersion:  runtime.Version(),
		PID:        os.Getpid(),
	}
	if alert != nil {
		man.Rule = alert.Rule
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		man.Main = strings.TrimSpace(bi.Main.Path + " " + bi.Main.Version)
	}
	if hn, err := os.Hostname(); err == nil {
		man.Hostname = hn
	}
	if c.cfg.Sampler != nil {
		c.cfg.Sampler.Sample()
		st := c.cfg.Sampler.Stats()
		man.Runtime = &st
	}
	man.Shards, man.ShardSkew = shardIngestState(c.cfg.Registry)

	if err := c.writeFiles(tmp, &man, alert); err != nil {
		return Manifest{}, err
	}

	final := filepath.Join(c.cfg.Dir, id)
	if err := os.Rename(tmp, final); err != nil {
		return Manifest{}, err
	}
	c.mCaptures(reason).Inc()
	if c.cfg.Logger != nil {
		c.cfg.Logger.Info("diag bundle captured",
			"id", id, "reason", reason, "bytes", man.TotalBytes)
	}
	c.evict()
	c.refreshRingGauges()
	return man, nil
}

// writeFiles writes every bundle file into dir and fills the manifest's
// file list, finishing with manifest.json itself.
func (c *Capturer) writeFiles(dir string, man *Manifest, alert *watch.Alert) error {
	writeTo := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("write %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		man.Files = append(man.Files, BundleFile{Name: name, Bytes: st.Size()})
		man.TotalBytes += st.Size()
		return nil
	}
	writeJSON := func(name string, v any) error {
		return writeTo(name, func(f *os.File) error {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			return enc.Encode(v)
		})
	}

	if err := writeTo(FileGoroutines, func(f *os.File) error {
		return pprof.Lookup("goroutine").WriteTo(f, 2)
	}); err != nil {
		return err
	}
	if err := writeTo(FileHeap, func(f *os.File) error {
		return pprof.Lookup("heap").WriteTo(f, 0)
	}); err != nil {
		return err
	}
	if c.cfg.CPUSeconds > 0 {
		if err := writeTo(FileCPU, func(f *os.File) error {
			if err := pprof.StartCPUProfile(f); err != nil {
				return err
			}
			time.Sleep(time.Duration(c.cfg.CPUSeconds) * time.Second)
			pprof.StopCPUProfile()
			return nil
		}); err != nil {
			return err
		}
	}
	if c.cfg.Series != nil {
		// Tick first so the breach-moment values are in the window.
		c.cfg.Series.Tick()
		since := c.cfg.Now().Add(-c.cfg.Window)
		win := seriesWindow{Since: since.UnixMilli(),
			Metrics: make(map[string]series.QueryResult)}
		for _, metric := range c.bundleMetrics(alert) {
			if qr, ok := c.cfg.Series.Query(metric, since, false); ok {
				win.Metrics[metric] = qr
			}
		}
		if err := writeJSON(FileSeries, win); err != nil {
			return err
		}
	}
	if c.cfg.Alerts != nil {
		if err := writeJSON(FileAlerts, c.cfg.Alerts()); err != nil {
			return err
		}
	}
	if c.cfg.Divergence != nil {
		if v := c.cfg.Divergence(); v != nil {
			if err := writeJSON(FileDivergence, v); err != nil {
				return err
			}
		}
	}
	if err := writeTo(FileMetrics, func(f *os.File) error {
		_, err := c.cfg.Registry.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	// manifest.json last: its presence marks a complete bundle. It lists
	// every other file but not itself.
	return writeTo(FileManifest, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(man)
	})
}

// bundleMetrics selects which metric windows a bundle carries: a base set
// of health series plus whatever the breached rule watches.
func (c *Capturer) bundleMetrics(alert *watch.Alert) []string {
	set := map[string]struct{}{
		"runtime_heap_inuse_bytes": {},
		"runtime_goroutines":       {},
		"watch_alerts_firing":      {},
	}
	if alert != nil && c.cfg.RuleLookup != nil {
		if r, ok := c.cfg.RuleLookup(alert.Rule); ok {
			switch r.Kind {
			case watch.KindRenderDivergence:
				set[r.DivergenceMetric] = struct{}{}
			case watch.KindErrorBudget:
				set[r.ErrorMetric] = struct{}{}
				set[r.TotalMetric] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// bundleID is `<utc-stamp>-<seq>-<slug>`: the stamp orders the ring, the
// process-wide sequence disambiguates same-instant captures, the slug
// names the rule for humans.
func (c *Capturer) bundleID(now time.Time, alert *watch.Alert) string {
	slug := "manual"
	if alert != nil {
		slug = slugify(alert.Rule)
	}
	return fmt.Sprintf("%s-%04d-%s",
		now.UTC().Format("20060102T150405Z"), c.seq.Add(1), slug)
}

func slugify(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	if b.Len() == 0 {
		return "bundle"
	}
	return b.String()
}

// evict removes the oldest complete bundles until the ring satisfies both
// caps. The newest bundle always survives, even when it alone exceeds
// MaxBytes.
func (c *Capturer) evict() {
	mans, err := ListBundles(c.cfg.Dir)
	if err != nil {
		return
	}
	count := len(mans)
	var total int64
	for _, m := range mans {
		total += m.TotalBytes
	}
	// ListBundles returns newest first; walk from the oldest.
	for i := len(mans) - 1; i > 0; i-- {
		if count <= c.cfg.MaxBundles && total <= c.cfg.MaxBytes {
			break
		}
		old := mans[i]
		if err := os.RemoveAll(filepath.Join(c.cfg.Dir, old.ID)); err != nil {
			continue
		}
		count--
		total -= old.TotalBytes
		if c.cfg.Logger != nil {
			c.cfg.Logger.Info("diag bundle evicted", "id", old.ID)
		}
	}
}

func (c *Capturer) refreshRingGauges() {
	mans, err := ListBundles(c.cfg.Dir)
	if err != nil {
		return
	}
	var total int64
	for _, m := range mans {
		total += m.TotalBytes
	}
	c.mBundles.Set(float64(len(mans)))
	c.mBytes.Set(float64(total))
}

// List returns the ring's manifests, newest first.
func (c *Capturer) List() ([]Manifest, error) { return ListBundles(c.cfg.Dir) }

// Manifest returns one bundle's manifest by ID.
func (c *Capturer) Manifest(id string) (Manifest, error) { return ReadManifest(c.cfg.Dir, id) }

// ErrUnknownBundle reports a bundle ID that is absent from the ring.
var ErrUnknownBundle = errors.New("diag: unknown bundle")

// ValidBundleID reports whether id is a plausible bundle directory name:
// non-empty, no path separators or traversal, not hidden.
func ValidBundleID(id string) bool {
	if id == "" || strings.HasPrefix(id, ".") {
		return false
	}
	return !strings.ContainsAny(id, "/\\")
}

// ListBundles reads every complete bundle manifest under dir, newest
// first (IDs embed a UTC stamp and a sequence, so the ID order is the
// capture order). Incomplete bundles (no manifest.json yet) are skipped.
func ListBundles(dir string) ([]Manifest, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var out []Manifest
	for _, e := range ents {
		if !e.IsDir() || !ValidBundleID(e.Name()) {
			continue
		}
		m, err := ReadManifest(dir, e.Name())
		if err != nil {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out, nil
}

// ReadManifest reads one bundle's manifest. Returns ErrUnknownBundle when
// the bundle (or its manifest) does not exist.
func ReadManifest(dir, id string) (Manifest, error) {
	if !ValidBundleID(id) {
		return Manifest{}, ErrUnknownBundle
	}
	raw, err := os.ReadFile(filepath.Join(dir, id, FileManifest))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Manifest{}, ErrUnknownBundle
		}
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("bundle %s: %w", id, err)
	}
	return m, nil
}

// shardIngestState reads the per-shard ingest counters out of a registry
// snapshot, plus the max/mean skew — the hot-shard context a bundle needs
// when the server runs sharded. Empty on unsharded servers.
func shardIngestState(reg *obs.Registry) ([]ShardIngest, float64) {
	var out []ShardIngest
	var sum float64
	var max float64
	for _, s := range reg.Snapshot() {
		if s.Name != "shard_ingest_total" {
			continue
		}
		out = append(out, ShardIngest{Shard: s.Labels["shard"], Records: int64(s.Value)})
		sum += s.Value
		if s.Value > max {
			max = s.Value
		}
	}
	if len(out) == 0 || sum == 0 {
		return out, 0
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	mean := sum / float64(len(out))
	return out, max / mean
}
