// Package diag is the self-diagnosis plane: an always-on runtime telemetry
// sampler that reads runtime/metrics into the obs registry (so GC pressure,
// goroutine pileups and sched latency flow into /metrics, the series TSDB
// and the exporter for free), and an anomaly-triggered bundle capturer that
// snapshots the forensic state an operator needs the moment a watch rule
// fires — goroutine stacks, a heap profile, the breached rule's series
// window, the full alert snapshot — into a bounded on-disk ring.
//
// The sampler is built to be always-on: one Sample() costs zero heap
// allocations in steady state (pinned by TestSampleZeroAlloc), so running
// it at a 5s tick in every binary is free.
package diag

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"

	"repro/internal/obs"
)

// SamplerConfig parameterizes NewSampler.
type SamplerConfig struct {
	// Registry receives the runtime_* metrics; nil uses obs.Default.
	Registry *obs.Registry
	// Interval is the background sampling tick (default 5s). Start spawns
	// the ticking goroutine; tests drive Sample directly instead.
	Interval time.Duration
}

// RuntimeStats is the sampler's latest reading, the compact form consumed
// by /debug/health and bundle manifests.
type RuntimeStats struct {
	// SampledAt is when Sample last ran (zero before the first sample).
	SampledAt time.Time `json:"sampled_at"`
	// Goroutines is the live goroutine count.
	Goroutines int64 `json:"goroutines"`
	// HeapInuseBytes is the in-use heap span memory (objects + unused).
	HeapInuseBytes int64 `json:"heap_inuse_bytes"`
	// TotalBytes is all memory mapped by the Go runtime.
	TotalBytes int64 `json:"total_bytes"`
	// GCCycles is the completed GC cycle count since process start.
	GCCycles int64 `json:"gc_cycles"`
	// LastGCPauseSeconds is the most recent stop-the-world pause, at the
	// resolution of the runtime's pause histogram buckets (upper bound of
	// the newest bucket that grew).
	LastGCPauseSeconds float64 `json:"last_gc_pause_seconds"`
	// GCPauseP99Seconds is the 99th-percentile pause since process start.
	GCPauseP99Seconds float64 `json:"gc_pause_p99_seconds"`
	// GOMAXPROCS is the scheduler's processor limit.
	GOMAXPROCS int64 `json:"gomaxprocs"`
}

// quantile is one exported histogram quantile gauge.
type quantile struct {
	q float64
	g *obs.Gauge
}

// Sampler reads runtime/metrics into runtime_* registry series. Create with
// NewSampler; Start launches the ticker, or call Sample directly. Safe for
// concurrent use (Sample itself is serialized by a mutex).
type Sampler struct {
	reg      *obs.Registry
	interval time.Duration

	// Sampled values land in plain gauges/counters (not GaugeFuncs) so they
	// flow unchanged into /metrics scrapes, series-store ticks and exporter
	// snapshots without re-reading the runtime at scrape time.
	gGoroutines *obs.Gauge
	gHeapInuse  *obs.Gauge
	gTotal      *obs.Gauge
	gMaxProcs   *obs.Gauge
	gLastPause  *obs.Gauge
	cGCCycles   *obs.Counter
	cAllocBytes *obs.Counter
	pauseQ      []quantile
	schedQ      []quantile

	quit      chan struct{}
	done      chan struct{}
	startOnce sync.Once
	closeOnce sync.Once

	mu      sync.Mutex
	samples []metrics.Sample
	idx     map[string]int // runtime metric name → samples index (present only)
	prevGC  uint64
	prevAll uint64
	// prevPause mirrors the pause histogram's counts from the previous
	// sample so the newest pause can be located by bucket delta.
	prevPause []uint64
	lastAt    time.Time
}

// Runtime metric names read each sample. Names absent from the running
// runtime (version drift) are skipped gracefully — the sampler reads what
// exists rather than failing.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGomaxprocs = "/sched/gomaxprocs:threads"
	rmHeapObj    = "/memory/classes/heap/objects:bytes"
	rmHeapUnused = "/memory/classes/heap/unused:bytes"
	rmTotal      = "/memory/classes/total:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmAllocBytes = "/gc/heap/allocs:bytes"
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// NewSampler builds a sampler, registers the runtime_* series, and takes an
// initial sample so gauges are never zero-valued placeholders.
func NewSampler(cfg SamplerConfig) *Sampler {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	s := &Sampler{
		reg:      reg,
		interval: interval,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		idx:      make(map[string]int),
		gGoroutines: reg.Gauge("runtime_goroutines",
			"Live goroutine count.", nil),
		gHeapInuse: reg.Gauge("runtime_heap_inuse_bytes",
			"In-use heap span memory (live objects plus unused span space).", nil),
		gTotal: reg.Gauge("runtime_total_bytes",
			"All memory mapped by the Go runtime.", nil),
		gMaxProcs: reg.Gauge("runtime_gomaxprocs",
			"Scheduler processor limit (GOMAXPROCS).", nil),
		gLastPause: reg.Gauge("runtime_gc_last_pause_seconds",
			"Most recent GC stop-the-world pause (pause-histogram bucket resolution).", nil),
		cGCCycles: reg.Counter("runtime_gc_cycles_total",
			"Completed GC cycles.", nil),
		cAllocBytes: reg.Counter("runtime_alloc_bytes_total",
			"Cumulative bytes allocated on the heap.", nil),
	}
	for _, q := range []float64{0.50, 0.90, 0.99} {
		s.pauseQ = append(s.pauseQ, quantile{q, reg.Gauge("runtime_gc_pause_seconds",
			"GC stop-the-world pause quantiles since process start.",
			obs.Labels{"q": formatQ(q)})})
		s.schedQ = append(s.schedQ, quantile{q, reg.Gauge("runtime_sched_latency_seconds",
			"Goroutine scheduling latency quantiles since process start.",
			obs.Labels{"q": formatQ(q)})})
	}

	// Bind only the metric names this runtime actually exports.
	known := make(map[string]struct{})
	for _, d := range metrics.All() {
		known[d.Name] = struct{}{}
	}
	for _, name := range []string{
		rmGoroutines, rmGomaxprocs, rmHeapObj, rmHeapUnused, rmTotal,
		rmGCCycles, rmAllocBytes, rmGCPauses, rmSchedLat,
	} {
		if _, ok := known[name]; !ok {
			continue
		}
		s.idx[name] = len(s.samples)
		s.samples = append(s.samples, metrics.Sample{Name: name})
	}
	s.Sample()
	return s
}

func formatQ(q float64) string {
	switch q {
	case 0.50:
		return "0.50"
	case 0.90:
		return "0.90"
	case 0.99:
		return "0.99"
	}
	return "0"
}

// Start launches the background sampling goroutine. Idempotent.
func (s *Sampler) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.Sample()
				case <-s.quit:
					return
				}
			}
		}()
	})
}

// Close stops the sampling goroutine. Safe without a prior Start and when
// called more than once.
func (s *Sampler) Close() {
	s.closeOnce.Do(func() { close(s.quit) })
	s.startOnce.Do(func() { close(s.done) })
	<-s.done
}

// Interval returns the configured sampling tick.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Sample reads the runtime once and updates every runtime_* series. Zero
// heap allocations in steady state: the samples slice (and the histogram
// buffers inside it) are reused across calls.
func (s *Sampler) Sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	metrics.Read(s.samples)
	if i, ok := s.idx[rmGoroutines]; ok {
		s.gGoroutines.Set(float64(s.samples[i].Value.Uint64()))
	}
	if i, ok := s.idx[rmGomaxprocs]; ok {
		s.gMaxProcs.Set(float64(s.samples[i].Value.Uint64()))
	}
	var heap uint64
	if i, ok := s.idx[rmHeapObj]; ok {
		heap += s.samples[i].Value.Uint64()
	}
	if i, ok := s.idx[rmHeapUnused]; ok {
		heap += s.samples[i].Value.Uint64()
	}
	s.gHeapInuse.Set(float64(heap))
	if i, ok := s.idx[rmTotal]; ok {
		s.gTotal.Set(float64(s.samples[i].Value.Uint64()))
	}
	if i, ok := s.idx[rmGCCycles]; ok {
		v := s.samples[i].Value.Uint64()
		s.cGCCycles.Add(int64(v - s.prevGC))
		s.prevGC = v
	}
	if i, ok := s.idx[rmAllocBytes]; ok {
		v := s.samples[i].Value.Uint64()
		s.cAllocBytes.Add(int64(v - s.prevAll))
		s.prevAll = v
	}
	if i, ok := s.idx[rmGCPauses]; ok {
		h := s.samples[i].Value.Float64Histogram()
		for _, q := range s.pauseQ {
			q.g.Set(histQuantile(h, q.q))
		}
		if p, ok := newestBucketBound(h, &s.prevPause); ok {
			s.gLastPause.Set(p)
		}
	}
	if i, ok := s.idx[rmSchedLat]; ok {
		h := s.samples[i].Value.Float64Histogram()
		for _, q := range s.schedQ {
			q.g.Set(histQuantile(h, q.q))
		}
	}
	s.lastAt = time.Now()
}

// Stats returns the latest reading in the compact health/manifest shape.
func (s *Sampler) Stats() RuntimeStats {
	s.mu.Lock()
	at := s.lastAt
	s.mu.Unlock()
	var p99 float64
	for _, q := range s.pauseQ {
		if q.q == 0.99 {
			p99 = q.g.Value()
		}
	}
	return RuntimeStats{
		SampledAt:          at,
		Goroutines:         int64(s.gGoroutines.Value()),
		HeapInuseBytes:     int64(s.gHeapInuse.Value()),
		TotalBytes:         int64(s.gTotal.Value()),
		GCCycles:           s.cGCCycles.Value(),
		LastGCPauseSeconds: s.gLastPause.Value(),
		GCPauseP99Seconds:  p99,
		GOMAXPROCS:         int64(s.gMaxProcs.Value()),
	}
}

// histQuantile reads quantile q out of a cumulative runtime histogram:
// the upper bound of the bucket where the running count crosses q·total.
// Allocation-free.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	thresh := uint64(q * float64(total))
	if thresh >= total {
		thresh = total - 1
	}
	var run uint64
	for i, c := range h.Counts {
		run += c
		if run > thresh {
			return bucketUpper(h, i)
		}
	}
	return bucketUpper(h, len(h.Counts)-1)
}

// bucketUpper is bucket i's finite upper bound (falls back to the lower
// bound on the +Inf tail bucket).
func bucketUpper(h *metrics.Float64Histogram, i int) float64 {
	ub := h.Buckets[i+1]
	if math.IsInf(ub, 1) {
		ub = h.Buckets[i]
	}
	if math.IsInf(ub, -1) {
		ub = 0
	}
	return ub
}

// newestBucketBound locates the highest bucket whose count grew since the
// previous call and returns its upper bound — "the most recent observation,
// at bucket resolution". prev is the caller-owned previous-counts buffer,
// resized only when the runtime changes its bucket layout.
func newestBucketBound(h *metrics.Float64Histogram, prev *[]uint64) (float64, bool) {
	if len(*prev) != len(h.Counts) {
		*prev = make([]uint64, len(h.Counts))
		copy(*prev, h.Counts)
		return 0, false // first sight: no delta to attribute
	}
	bound, found := 0.0, false
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] > (*prev)[i] {
			bound, found = bucketUpper(h, i), true
			break
		}
	}
	copy(*prev, h.Counts)
	return bound, found
}
