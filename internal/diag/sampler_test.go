package diag

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestSamplerPublishesRuntimeSeries(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSampler(SamplerConfig{Registry: reg})
	defer s.Close()
	s.Sample()

	want := map[string]bool{
		"runtime_goroutines":            false,
		"runtime_heap_inuse_bytes":      false,
		"runtime_total_bytes":           false,
		"runtime_gomaxprocs":            false,
		"runtime_gc_cycles_total":       false,
		"runtime_alloc_bytes_total":     false,
		"runtime_gc_pause_seconds":      false,
		"runtime_sched_latency_seconds": false,
	}
	for _, smp := range reg.Snapshot() {
		if _, ok := want[smp.Name]; ok {
			want[smp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("registry snapshot missing %s", name)
		}
	}

	st := s.Stats()
	if st.Goroutines < 1 {
		t.Errorf("Goroutines = %d, want >= 1", st.Goroutines)
	}
	if st.HeapInuseBytes <= 0 {
		t.Errorf("HeapInuseBytes = %d, want > 0", st.HeapInuseBytes)
	}
	if got, want := st.GOMAXPROCS, int64(runtime.GOMAXPROCS(0)); got != want {
		t.Errorf("GOMAXPROCS = %d, want %d", got, want)
	}
	if st.SampledAt.IsZero() {
		t.Error("SampledAt is zero after Sample")
	}
}

func TestSamplerCountersAreMonotonicDeltas(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSampler(SamplerConfig{Registry: reg})
	defer s.Close()

	runtime.GC()
	s.Sample()
	first := s.Stats().GCCycles
	runtime.GC()
	runtime.GC()
	s.Sample()
	second := s.Stats().GCCycles
	if second < first+2 {
		t.Errorf("GCCycles after two forced GCs: %d -> %d, want +>=2", first, second)
	}
}

// TestSampleZeroAlloc pins the always-on overhead contract: one Sample()
// performs zero heap allocations in steady state, so ticking the sampler
// in every binary is free.
func TestSampleZeroAlloc(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSampler(SamplerConfig{Registry: reg})
	defer s.Close()
	// Warm up: first samples size the runtime's internal histogram buffers
	// and our prev-counts mirror.
	s.Sample()
	s.Sample()
	if allocs := testing.AllocsPerRun(100, s.Sample); allocs != 0 {
		t.Fatalf("Sample() allocates %.1f objects per call, want 0", allocs)
	}
}

func TestSamplerStartTicksInBackground(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSampler(SamplerConfig{Registry: reg, Interval: time.Millisecond})
	s.Start()
	defer s.Close()
	deadline := time.Now().Add(2 * time.Second)
	first := s.Stats().SampledAt
	for time.Now().Before(deadline) {
		if s.Stats().SampledAt.After(first) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("background ticker never advanced SampledAt")
}

func TestSamplerExposition(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewSampler(SamplerConfig{Registry: reg})
	defer s.Close()
	s.Sample()
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"runtime_goroutines",
		`runtime_gc_pause_seconds{q="0.99"}`,
		`runtime_sched_latency_seconds{q="0.50"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
