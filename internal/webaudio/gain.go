package webaudio

// GainNode scales its input by the (audio-rate modulable) Gain parameter.
// Fingerprinting scripts use it both as a mute (gain 0 before the speakers,
// so victims hear nothing) and — with a modulator oscillator connected to
// Gain — as the multiplier stage of the AM vector.
type GainNode struct {
	nodeBase
	// Gain is the multiplicative factor applied to the input.
	Gain *AudioParam
}

// NewGain creates a gain node with the given initial gain.
func (c *Context) NewGain(gain float64) *GainNode {
	g := &GainNode{nodeBase: nodeBase{ctx: c, label: "gain"}}
	g.Gain = newParam(c, "gain", gain, 0, 0) // unclamped, per spec
	c.register(g)
	return g
}

func (g *GainNode) params() []*AudioParam { return []*AudioParam{g.Gain} }

func (g *GainNode) process(frameTime int64) {
	tr := g.ctx.traits
	for i := 0; i < RenderQuantum; i++ {
		g.output[i] = tr.round32(g.sumInputs(i) * g.Gain.sampleAt(frameTime, i))
	}
}

// processBlock is the gain block kernel: a constant-folded multiply when
// the param is k-rate (every fingerprinting vector's mute and depth gains),
// or a block multiply against the param's sampled block (the AM vector's
// modulated carrier gain).
func (g *GainNode) processBlock(frameTime int64, in *[RenderQuantum]float64) {
	flush := g.ctx.traits.FlushDenormals
	if g.Gain.isKRate() {
		gv := g.Gain.constValue()
		for i := 0; i < RenderQuantum; i++ {
			g.output[i] = flushRound(flush, in[i]*gv)
		}
		return
	}
	p := &g.ctx.scratch.param
	g.Gain.blockSample(frameTime, p)
	for i := 0; i < RenderQuantum; i++ {
		g.output[i] = flushRound(flush, in[i]*p[i])
	}
}

// ChannelMergerNode combines several mono inputs. The engine is mono, so
// merging is an input sum followed by the usual down-mix normalization the
// destination would apply; what matters for fingerprinting is that the sum
// happens at the trait-selected mixing precision. The Merged Signals vector
// (paper Fig. 7) runs its four oscillators through one of these.
type ChannelMergerNode struct {
	nodeBase
}

// NewChannelMerger creates a merger node. The channel count of the real API
// is implicit here: every connected input is one channel.
func (c *Context) NewChannelMerger() *ChannelMergerNode {
	m := &ChannelMergerNode{nodeBase: nodeBase{ctx: c, label: "merger"}}
	c.register(m)
	return m
}

func (m *ChannelMergerNode) process(frameTime int64) {
	tr := m.ctx.traits
	for i := 0; i < RenderQuantum; i++ {
		m.output[i] = tr.round32(m.sumInputs(i))
	}
}

// processBlock rounds the pre-mixed block — the merger's whole job is the
// trait-precision sum the program driver already performed.
func (m *ChannelMergerNode) processBlock(_ int64, in *[RenderQuantum]float64) {
	flush := m.ctx.traits.FlushDenormals
	for i := 0; i < RenderQuantum; i++ {
		m.output[i] = flushRound(flush, in[i])
	}
}
