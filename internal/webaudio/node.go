package webaudio

import "fmt"

// RenderQuantum is the fixed block size of the processing graph, per the Web
// Audio specification.
const RenderQuantum = 128

// Node is one audio-graph vertex. Nodes are created through a Context and
// process one render quantum at a time under the context's clock.
type Node interface {
	// base returns the embedded node bookkeeping. Implemented by nodeBase.
	base() *nodeBase
	// process renders the node's next quantum into base().output. Inputs
	// are guaranteed to have been processed for the same quantum.
	process(frameTime int64)
}

// nodeBase carries graph wiring and the node's mono output buffer.
type nodeBase struct {
	ctx    *Context
	label  string
	inputs []Node // audio-input connections
	output [RenderQuantum]float32
}

func (b *nodeBase) base() *nodeBase { return b }

// sumInputs mixes all input connections for frame i using the engine's
// mixing precision trait.
func (b *nodeBase) sumInputs(i int) float64 {
	switch len(b.inputs) {
	case 0:
		return 0
	case 1:
		return float64(b.inputs[0].base().output[i])
	}
	if b.ctx.traits.MixPrecision == Mix32 {
		var s float32
		for _, in := range b.inputs {
			s += in.base().output[i]
		}
		return float64(s)
	}
	var s float64
	for _, in := range b.inputs {
		s += float64(in.base().output[i])
	}
	return s
}

// Connect wires src's audio output into dst's audio input. Fan-in is summed;
// fan-out is permitted. Connect panics if the nodes belong to different
// contexts, mirroring the DOM exception the real API throws.
func Connect(src, dst Node) {
	sb, db := src.base(), dst.base()
	if sb.ctx != db.ctx {
		panic("webaudio: cannot connect nodes from different contexts")
	}
	db.inputs = append(db.inputs, src)
	sb.ctx.dirty = true
}

// ConnectParam wires src's audio output into an AudioParam (audio-rate
// parameter modulation, as used by the AM and FM fingerprinting vectors).
func ConnectParam(src Node, p *AudioParam) {
	if src.base().ctx != p.ctx {
		panic("webaudio: cannot connect across contexts")
	}
	p.inputs = append(p.inputs, src)
	p.ctx.dirty = true
}

// topoOrder returns the graph's nodes in a processing order where every
// node's audio and parameter inputs precede it. It reports an error on
// cycles (delay-free loops are unsupported, as in the offline spec subset
// we implement).
func (c *Context) topoOrder() ([]Node, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[Node]int, len(c.nodes))
	order := make([]Node, 0, len(c.nodes))
	var visit func(n Node) error
	visit = func(n Node) error {
		switch color[n] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("webaudio: graph cycle involving %s", n.base().label)
		}
		color[n] = grey
		for _, in := range n.base().inputs {
			if err := visit(in); err != nil {
				return err
			}
		}
		for _, p := range paramsOf(n) {
			for _, in := range p.inputs {
				if err := visit(in); err != nil {
					return err
				}
			}
		}
		color[n] = black
		order = append(order, n)
		return nil
	}
	for _, n := range c.nodes {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// paramModulated is implemented by nodes exposing audio-rate parameters so
// the scheduler can order their modulator inputs first.
type paramModulated interface {
	params() []*AudioParam
}

func paramsOf(n Node) []*AudioParam {
	if pm, ok := n.(paramModulated); ok {
		return pm.params()
	}
	return nil
}
