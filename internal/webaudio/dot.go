package webaudio

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the audio graph in Graphviz DOT form — the debugging
// view for fingerprinting-vector wiring (compare against the paper's
// Figs. 1, 2, 6, 7, 8). Audio connections are solid edges; parameter
// modulation connections are dashed and labeled with the parameter name.
func (c *Context) WriteDOT(w io.Writer) error {
	ids := make(map[Node]int, len(c.nodes))
	for i, n := range c.nodes {
		ids[n] = i
	}
	var b []byte
	out := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	out("digraph audiograph {\n  rankdir=LR;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	for i, n := range c.nodes {
		out("  n%d [label=%q];\n", i, n.base().label)
	}
	type edge struct {
		from, to int
		label    string
	}
	var edges []edge
	for _, n := range c.nodes {
		to := ids[n]
		for _, in := range n.base().inputs {
			edges = append(edges, edge{ids[in], to, ""})
		}
		for _, p := range paramsOf(n) {
			for _, in := range p.inputs {
				edges = append(edges, edge{ids[in], to, p.name})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].to != edges[j].to {
			return edges[i].to < edges[j].to
		}
		return edges[i].label < edges[j].label
	})
	for _, e := range edges {
		if e.label == "" {
			out("  n%d -> n%d;\n", e.from, e.to)
		} else {
			out("  n%d -> n%d [style=dashed, label=%q];\n", e.from, e.to, e.label)
		}
	}
	out("}\n")
	_, err := w.Write(b)
	return err
}
