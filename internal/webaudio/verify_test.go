package webaudio

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
)

// These tests verify the engine's signal content against an independent
// detector (Goertzel) rather than its own analyser.

// TestOscillatorFrequencyAccuracy: every waveform's fundamental lands where
// the frequency parameter says, across the audible range.
func TestOscillatorFrequencyAccuracy(t *testing.T) {
	for _, typ := range []OscillatorType{Sine, Square, Sawtooth, Triangle} {
		for _, freq := range []float64{110, 440, 1000, 4000, 10000} {
			buf := renderTone(t, DefaultTraits(), typ, freq, 1<<14)
			on := dsp.Goertzel(buf, freq, testRate)
			off := dsp.Goertzel(buf, freq*1.31, testRate)
			if on < 5*off {
				t.Errorf("%v @ %.0f Hz: fundamental %.1f not dominant over off-freq %.1f",
					typ, freq, on, off)
			}
		}
	}
}

// TestSquareHasOnlyOddHarmonics: the band-limited square's even harmonics
// are absent while odd ones are strong.
func TestSquareHasOnlyOddHarmonics(t *testing.T) {
	const f0 = 441.0
	buf := renderTone(t, DefaultTraits(), Square, f0, testRate) // 1 s: integer-Hz bins
	h1 := dsp.Goertzel(buf, f0, testRate)
	h2 := dsp.Goertzel(buf, 2*f0, testRate)
	h3 := dsp.Goertzel(buf, 3*f0, testRate)
	if h3 < h2*5 {
		t.Errorf("square harmonics wrong: h1=%.1f h2=%.1f h3=%.1f", h1, h2, h3)
	}
	// Fourier amplitude ratio h1:h3 = 3:1 for a square wave.
	if ratio := h1 / h3; math.Abs(ratio-3) > 0.5 {
		t.Errorf("square h1/h3 = %.2f, want ≈ 3", ratio)
	}
}

// TestSawtoothHarmonicDecay: sawtooth harmonics decay like 1/n.
func TestSawtoothHarmonicDecay(t *testing.T) {
	const f0 = 441.0
	buf := renderTone(t, DefaultTraits(), Sawtooth, f0, testRate)
	h1 := dsp.Goertzel(buf, f0, testRate)
	h2 := dsp.Goertzel(buf, 2*f0, testRate)
	h4 := dsp.Goertzel(buf, 4*f0, testRate)
	if r := h1 / h2; math.Abs(r-2) > 0.4 {
		t.Errorf("saw h1/h2 = %.2f, want ≈ 2", r)
	}
	if r := h1 / h4; math.Abs(r-4) > 0.8 {
		t.Errorf("saw h1/h4 = %.2f, want ≈ 4", r)
	}
}

// TestGainLinearity: output RMS scales linearly with gain (property test).
func TestGainLinearity(t *testing.T) {
	rmsAt := func(g float64) float64 {
		ctx := defaultCtx()
		osc := ctx.NewOscillator(Sine, 1000)
		gain := ctx.NewGain(g)
		Connect(osc, gain)
		Connect(gain, ctx.Destination())
		osc.Start(0)
		buf, err := ctx.RenderFrames(4096)
		if err != nil {
			t.Fatal(err)
		}
		return dsp.RMS(buf)
	}
	base := rmsAt(1)
	prop := func(seed uint8) bool {
		g := 0.05 + float64(seed)/256.0*2 // (0.05, 2.05)
		got := rmsAt(g)
		return math.Abs(got-g*base) < 0.02*g*base+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestAnalyserAgreesWithGoertzel: the analyser's dominant bin carries the
// same frequency Goertzel finds in the raw stream.
func TestAnalyserAgreesWithGoertzel(t *testing.T) {
	const freq = 2500.0
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Sine, freq)
	an, _ := ctx.NewAnalyser(2048)
	Connect(osc, an)
	Connect(an, ctx.Destination())
	osc.Start(0)
	_ = ctx.RenderQuanta(64)
	spec := make([]float32, an.FrequencyBinCount())
	_ = an.GetFloatFrequencyData(spec)
	peak := 0
	for k, v := range spec {
		if v > spec[peak] {
			peak = k
		}
	}
	peakHz := float64(peak) * testRate / 2048
	if math.Abs(peakHz-freq) > testRate/2048+1 {
		t.Errorf("analyser peak at %.0f Hz, want ≈ %.0f", peakHz, freq)
	}

	buf := renderTone(t, DefaultTraits(), Sine, freq, 8192)
	on := dsp.Goertzel(buf, freq, testRate)
	off := dsp.Goertzel(buf, freq*2, testRate)
	if on < 50*off {
		t.Errorf("goertzel disagrees: on %.1f, off %.1f", on, off)
	}
}

// TestCompressorMonotonicity: louder input never comes out quieter
// (steady-state), the defining property of a compressor's static curve.
func TestCompressorMonotonicity(t *testing.T) {
	steady := func(inputGain float64) float64 {
		ctx := defaultCtx()
		osc := ctx.NewOscillator(Sine, 1000)
		pre := ctx.NewGain(inputGain)
		comp := ctx.NewDynamicsCompressor()
		Connect(osc, pre)
		Connect(pre, comp)
		Connect(comp, ctx.Destination())
		osc.Start(0)
		buf, err := ctx.RenderFrames(testRate / 2)
		if err != nil {
			t.Fatal(err)
		}
		return dsp.RMS(buf[len(buf)/2:])
	}
	prev := 0.0
	for _, g := range []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.0} {
		out := steady(g)
		if out < prev-1e-6 {
			t.Fatalf("compressor non-monotone: gain %.2f → %.4f after %.4f", g, out, prev)
		}
		prev = out
	}
	// And it actually compresses: 16× input change ⇒ much less output change.
	lo, hi := steady(0.05), steady(0.8)
	if hi/lo > 8 {
		t.Errorf("compression ratio too weak: %.4f → %.4f", lo, hi)
	}
}
