// Package webaudio is an offline implementation of the subset of the W3C Web
// Audio API that browser-fingerprinting scripts exercise: oscillators
// (including custom PeriodicWave), gain nodes with audio-rate parameter
// modulation, a dynamics compressor, an FFT analyser, a script processor and
// a channel merger, rendered through an offline audio context in render
// quanta of 128 frames, with a float32 sample pipeline — the same processing
// model real browser engines use.
//
// The engine is parameterized by Traits: the knobs along which real audio
// stacks differ (math kernel lineage, denormal handling, mixing precision,
// compressor curve details). Two engines with equal Traits render
// bit-identical buffers; engines with different Traits render measurably
// different ones. That equivalence relation is exactly what Web Audio
// fingerprinting (Chalise et al., IMC '22) measures from the outside.
package webaudio

import "repro/internal/mathx"

// Precision selects the arithmetic width used when mixing multiple inputs.
type Precision int

const (
	// Mix64 sums connection inputs in float64 then rounds once (Blink-style).
	Mix64 Precision = iota
	// Mix32 sums in float32, rounding at every addition.
	Mix32
)

// Traits captures the platform-identity knobs of an audio stack. The zero
// value is not usable; call DefaultTraits.
type Traits struct {
	// Kernel supplies the transcendental math implementations.
	Kernel mathx.Kernel
	// FFTKernel, if non-nil, overrides Kernel for the AnalyserNode's FFT
	// twiddle factors and window. Real engines often source their FFT from a
	// separate library (PFFFT, FFmpeg, KissFFT) than the rest of the audio
	// stack, so the two can vary independently across platforms — which is
	// why the paper finds more distinct FFT fingerprints (73) than DC ones
	// (59) over the same population.
	FFTKernel mathx.Kernel
	// FlushDenormals simulates FTZ/DAZ hardware or -ffast-math builds.
	FlushDenormals bool
	// MixPrecision selects the input-summing arithmetic width.
	MixPrecision Precision
	// CompressorKneeEps perturbs the soft-knee interpolation coefficient,
	// standing in for implementation differences in the compression curve.
	CompressorKneeEps float64
	// CompressorPreDelay is the compressor's look-ahead in frames. Real
	// implementations use ~6ms; variants differ by a few frames.
	CompressorPreDelay int
	// OscillatorPhaseOffset is a tiny initial phase bias (radians)
	// representing wavetable alignment differences between engines.
	OscillatorPhaseOffset float64
	// Farble, if non-nil, enables Brave-style read-point randomization:
	// every script-readable buffer is perturbed by session-keyed noise (the
	// §4 mitigation). Rendering itself is unaffected.
	Farble *FarbleConfig
}

// DefaultTraits returns the reference engine configuration (libm kernel,
// Blink-like defaults).
func DefaultTraits() Traits {
	return Traits{
		Kernel:             mathx.Libm,
		MixPrecision:       Mix64,
		CompressorPreDelay: 256,
	}
}

// round32 applies the trait-dependent float32 rounding (with optional
// denormal flushing) that ends every node's sample computation.
func (t Traits) round32(v float64) float32 {
	return flushRound(t.FlushDenormals, v)
}

// flushRound is round32 with the flush flag hoisted out: the block kernels
// read FlushDenormals once per quantum and pass it as a plain bool, keeping
// the per-sample loop free of both the Traits copy a value receiver costs
// and the address-taken local a pointer receiver costs.
func flushRound(flush bool, v float64) float32 {
	f := float32(v)
	if flush {
		if f != 0 && f < 1.1754944e-38 && f > -1.1754944e-38 {
			f = 0
		}
	}
	return f
}
