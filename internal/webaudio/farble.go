package webaudio

// Farbling: Brave-style audio fingerprinting defense (the mitigation the
// paper's §4 discusses, per Brave's "Fingerprinting 2.0: Web Audio" work).
// The engine's DSP output is left untouched — web audio keeps working — but
// every surface a script can *read* (the offline rendered buffer, analyser
// frequency data, script-processor input buffers) is perturbed by a tiny
// deterministic multiplicative noise keyed by a session seed. Within a
// session the noise is stable (sites don't break, repeated reads agree);
// across sessions the seed changes and every fingerprint with it.

// FarbleConfig enables read-point randomization.
type FarbleConfig struct {
	// Seed keys the noise; a browser derives it per (session, origin).
	Seed uint64
	// Epsilon is the relative noise amplitude (Brave uses ~1e-4 scale
	// perturbations; anything above float32 resolution defeats hashing).
	Epsilon float64
}

// farbleNoise returns the deterministic noise factor for sample index i.
func (f *FarbleConfig) farbleNoise(i int) float32 {
	x := f.Seed + uint64(i)*0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// Map to [-1, 1).
	r := float64(z>>11)/(1<<52) - 1
	return float32(1 + f.Epsilon*r)
}

// farbleInPlace perturbs a readable buffer. Non-finite values (e.g. -Inf dB
// bins) pass through untouched, as multiplying them would still leak
// nothing distinguishable.
func (f *FarbleConfig) farbleInPlace(buf []float32) {
	if f == nil || f.Epsilon == 0 {
		return
	}
	for i := range buf {
		buf[i] *= f.farbleNoise(i)
	}
}
