package webaudio

// Engine self-checking. The block engine's bit-identity to the per-sample
// reference engine is enforced at test time by the differential property
// suite; this file provides the *runtime* counterpart: a lockstep
// differential driver that renders the same graph under both engines one
// quantum at a time and compares every node's output block down to the
// Float32bits, attributing the first divergence to a specific compiled op
// and sample offset. The vectors shadow auditor samples production renders
// through it continuously, so a miscompiled or bit-rotted kernel surfaces
// as a named divergence instead of silently corrupting every downstream
// entropy number.
//
// The file also owns the two supporting knobs: a test-only block-kernel
// fault injector (how the auditor itself is proven to catch a broken
// kernel) and the opt-in per-kernel block timing histograms with trace
// exemplars.

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Divergence locates the first bit mismatch between two engines rendering
// the same graph: which compiled op, at which quantum and sample, produced
// which differing bits.
type Divergence struct {
	// Quantum is the 0-based render quantum of the first mismatch.
	Quantum int `json:"quantum"`
	// Frame is the absolute frame time at the start of that quantum.
	Frame int64 `json:"frame"`
	// OpIndex is the op's position in the compiled render program (the
	// graph's topo order).
	OpIndex int `json:"op_index"`
	// Op is the offending node's label (e.g. "oscillator:triangle").
	Op string `json:"op"`
	// Sample is the first differing sample within the quantum [0,128).
	Sample int `json:"sample"`
	// GotBits/WantBits are the differing Float32bits (got = first
	// context's engine, want = second's).
	GotBits  uint32 `json:"got_bits"`
	WantBits uint32 `json:"want_bits"`
}

func (d *Divergence) String() string {
	return fmt.Sprintf("op %d (%s) quantum %d sample %d: got 0x%08x want 0x%08x",
		d.OpIndex, d.Op, d.Quantum, d.Sample, d.GotBits, d.WantBits)
}

// LockstepCompare advances got and want — two contexts holding identically
// constructed graphs — quanta render quanta in lockstep, comparing every
// node's output block bit-exactly after each quantum. It returns the first
// divergence found (nil when the engines agree for the whole window). The
// two contexts must have been built by the same graph-construction code;
// mismatched graphs are an error, not a divergence.
func LockstepCompare(got, want *Context, quanta int) (*Divergence, error) {
	for q := 0; q < quanta; q++ {
		frame := got.frame
		if err := got.RenderQuanta(1); err != nil {
			return nil, err
		}
		if err := want.RenderQuanta(1); err != nil {
			return nil, err
		}
		if len(got.order) != len(want.order) {
			return nil, fmt.Errorf("webaudio: lockstep graphs differ: %d vs %d nodes",
				len(got.order), len(want.order))
		}
		for i, gn := range got.order {
			wn := want.order[i]
			if gn.base().label != wn.base().label {
				return nil, fmt.Errorf("webaudio: lockstep op %d differs: %q vs %q",
					i, gn.base().label, wn.base().label)
			}
			gout, wout := &gn.base().output, &wn.base().output
			for s := 0; s < RenderQuantum; s++ {
				gb, wb := math.Float32bits(gout[s]), math.Float32bits(wout[s])
				if gb != wb {
					return &Divergence{
						Quantum: q, Frame: frame, OpIndex: i,
						Op: gn.base().label, Sample: s,
						GotBits: gb, WantBits: wb,
					}, nil
				}
			}
		}
	}
	return nil, nil
}

// blockFault describes an injected block-kernel corruption: after the
// labeled op's kernel runs, the given sample of its output has xor applied
// to its Float32bits. Reference-engine rendering is untouched, so every
// injected fault is a guaranteed engine divergence — the mechanism the
// shadow-audit e2e tests use to prove a broken kernel gets caught.
type blockFault struct {
	label  string
	sample int
	xor    uint32
}

var blockFaultHook atomic.Pointer[blockFault]

// SetBlockFault injects a deterministic corruption into the block engine:
// every quantum, the output sample of the first op whose label matches
// label has xor applied to its Float32bits after the kernel runs. An empty
// label clears the fault. Test-only: never set this outside a test.
func SetBlockFault(label string, sample int, xor uint32) {
	if label == "" {
		blockFaultHook.Store(nil)
		return
	}
	if sample < 0 || sample >= RenderQuantum {
		sample = 0
	}
	blockFaultHook.Store(&blockFault{label: label, sample: sample, xor: xor})
}

// apply corrupts op's output if the label matches.
func (f *blockFault) apply(n Node) {
	b := n.base()
	if b.label != f.label {
		return
	}
	out := &b.output
	out[f.sample] = math.Float32frombits(math.Float32bits(out[f.sample]) ^ f.xor)
}

// Per-kernel block timing. Off by default: timing costs two clock reads
// per op per quantum plus one allocation per traced observation, which the
// default render path must not pay (TestBlockRenderZeroAlloc pins it).
// When enabled, each compiled op's kernel time lands in a fixed-bucket
// histogram labeled by op class, carrying the most recent render trace id
// as an exemplar — a slow render seen on a scrape is then attributable to
// a specific kernel and a specific trace.
var kernelTimingOn atomic.Bool

// SetKernelTiming toggles per-kernel block timing histograms and returns
// the previous setting. Enable it before constructing contexts: programs
// compiled while timing is off run without per-op clocks.
func SetKernelTiming(on bool) bool { return kernelTimingOn.Swap(on) }

// renderTraceID is the trace identity attached to kernel-timing exemplars:
// whatever trace the current render campaign runs under (study.RunContext
// and the server's render paths stamp it).
var renderTraceID atomic.Pointer[string]

// SetRenderTraceID stamps the trace id subsequent kernel-timing exemplars
// carry ("" clears it).
func SetRenderTraceID(id string) {
	if id == "" {
		renderTraceID.Store(nil)
		return
	}
	renderTraceID.Store(&id)
}

func currentRenderTraceID() string {
	if p := renderTraceID.Load(); p != nil {
		return *p
	}
	return ""
}

// KernelTimingBuckets covers 100ns … 1ms, suitable for one 128-sample
// block-kernel invocation in seconds.
func KernelTimingBuckets() []float64 {
	return []float64{1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 1e-3}
}

// opClass reduces a node label to its kernel class: "oscillator:triangle"
// and "oscillator:sine" are the same compiled kernel, so they share a
// histogram series (bounded cardinality: one series per node type).
func opClass(label string) string {
	if i := strings.IndexByte(label, ':'); i >= 0 {
		return label[:i]
	}
	return label
}

// kernelHist resolves the timing histogram for one op class on the shared
// registry (get-or-create; called once per program compile, not per
// quantum).
func kernelHist(class string) *obs.Histogram {
	return obs.Default.Histogram("webaudio_kernel_block_seconds",
		"wall time of one 128-sample block-kernel invocation, by op class",
		KernelTimingBuckets(), obs.Labels{"op": class})
}

// timeBlock runs one op's block kernel under the clock and records it.
func timeBlock(op *renderOp, frame int64, in *[RenderQuantum]float64) {
	start := time.Now()
	op.block.processBlock(frame, in)
	op.hist.ObserveWithExemplar(time.Since(start).Seconds(), currentRenderTraceID())
}
