package webaudio

import (
	"math"
	"sort"
)

// AudioParam is a sample-accurate node parameter: an intrinsic value shaped
// by scheduled automation events plus the sum of any audio-rate modulation
// inputs (ConnectParam). This is the mechanism the AM and FM fingerprinting
// vectors rely on.
type AudioParam struct {
	ctx      *Context
	name     string
	value    float64 // intrinsic (pre-automation) value
	min, max float64
	events   []paramEvent
	inputs   []Node
}

type paramEventKind int

const (
	setValue paramEventKind = iota
	linearRamp
	exponentialRamp
	setTarget
)

type paramEvent struct {
	kind paramEventKind
	time float64 // seconds
	val  float64
	tc   float64 // time constant (setTarget only)
}

func newParam(ctx *Context, name string, def, min, max float64) *AudioParam {
	return &AudioParam{ctx: ctx, name: name, value: def, min: min, max: max}
}

// Value returns the intrinsic (most recently set) value.
func (p *AudioParam) Value() float64 { return p.value }

// SetValue sets the intrinsic value immediately (the `param.value = x` form).
func (p *AudioParam) SetValue(v float64) { p.value = p.clamp(v) }

// SetValueAtTime schedules a step change, like the Web Audio method.
func (p *AudioParam) SetValueAtTime(v, t float64) {
	p.insert(paramEvent{kind: setValue, time: t, val: v})
}

// LinearRampToValueAtTime schedules a linear ramp ending at time t.
func (p *AudioParam) LinearRampToValueAtTime(v, t float64) {
	p.insert(paramEvent{kind: linearRamp, time: t, val: v})
}

// ExponentialRampToValueAtTime schedules an exponential ramp ending at t.
// The target value must be non-zero, per spec.
func (p *AudioParam) ExponentialRampToValueAtTime(v, t float64) {
	if v == 0 {
		panic("webaudio: exponential ramp target must be non-zero")
	}
	p.insert(paramEvent{kind: exponentialRamp, time: t, val: v})
}

// SetTargetAtTime schedules an exponential approach toward target starting
// at time t with the given time constant (seconds), per the spec.
func (p *AudioParam) SetTargetAtTime(target, t, timeConstant float64) {
	if timeConstant <= 0 {
		// Spec: a zero time constant jumps immediately.
		p.insert(paramEvent{kind: setValue, time: t, val: target})
		return
	}
	p.insert(paramEvent{kind: setTarget, time: t, val: target, tc: timeConstant})
}

func (p *AudioParam) insert(e paramEvent) {
	p.events = append(p.events, e)
	sort.SliceStable(p.events, func(i, j int) bool { return p.events[i].time < p.events[j].time })
}

func (p *AudioParam) clamp(v float64) float64 {
	if p.min != 0 || p.max != 0 {
		if v < p.min {
			return p.min
		}
		if v > p.max {
			return p.max
		}
	}
	return v
}

// automatedValue evaluates the automation timeline at time t (seconds),
// ignoring modulation inputs.
func (p *AudioParam) automatedValue(t float64) float64 {
	if len(p.events) == 0 {
		return p.value
	}
	val := p.value // anchored value at prevTime
	prevTime := 0.0
	var target *paramEvent // active SetTargetAtTime decay, if any
	valueAt := func(x float64) float64 {
		if target != nil && x >= prevTime {
			return target.val + (val-target.val)*math.Exp(-(x-prevTime)/target.tc)
		}
		return val
	}
	for i := range p.events {
		e := &p.events[i]
		if e.time > t {
			// A pending ramp interpolates from the previous anchor.
			switch e.kind {
			case linearRamp:
				if e.time == prevTime {
					return p.clamp(e.val)
				}
				frac := (t - prevTime) / (e.time - prevTime)
				return p.clamp(val + (e.val-val)*frac)
			case exponentialRamp:
				if val == 0 || e.time == prevTime {
					return p.clamp(val)
				}
				frac := (t - prevTime) / (e.time - prevTime)
				ratio := e.val / val
				if ratio <= 0 {
					return p.clamp(val)
				}
				return p.clamp(val * math.Pow(ratio, frac))
			default:
				// Value holds (or keeps decaying) until the future event.
				return p.clamp(valueAt(t))
			}
		}
		// Advance the anchored state through the event.
		if e.kind == setTarget {
			val = valueAt(e.time)
			prevTime = e.time
			target = e
		} else {
			val = e.val
			prevTime = e.time
			target = nil
		}
	}
	return p.clamp(valueAt(t))
}

// sampleAt returns the effective parameter value for an absolute frame:
// automation plus the sum of modulation inputs at the in-quantum offset i.
func (p *AudioParam) sampleAt(frameTime int64, i int) float64 {
	t := (float64(frameTime) + float64(i)) / p.ctx.sampleRate
	v := p.automatedValue(t)
	for _, in := range p.inputs {
		v += float64(in.base().output[i])
	}
	return p.clamp(v)
}

// isKRate reports whether the param is constant over every render quantum:
// no automation events and no audio-rate modulators. This is the common
// case for every fingerprinting vector's non-modulated parameters, and what
// the block kernels' constant-folded fast paths key on.
func (p *AudioParam) isKRate() bool { return len(p.events) == 0 && len(p.inputs) == 0 }

// constValue returns the effective value of a k-rate param — identical to
// sampleAt at any frame when isKRate holds.
func (p *AudioParam) constValue() float64 { return p.clamp(p.value) }

// blockSample fills dst[i] with sampleAt(frameTime, i) for the whole
// quantum: per-sample automation evaluation, then each modulator's block
// added in connection order, then the clamp — the same value sequence the
// per-sample path produces, computed block-at-a-time.
func (p *AudioParam) blockSample(frameTime int64, dst *[RenderQuantum]float64) {
	if len(p.events) == 0 {
		for i := range dst {
			dst[i] = p.value
		}
	} else {
		sr := p.ctx.sampleRate
		for i := range dst {
			t := (float64(frameTime) + float64(i)) / sr
			dst[i] = p.automatedValue(t)
		}
	}
	for _, in := range p.inputs {
		src := &in.base().output
		for i := range dst {
			dst[i] += float64(src[i])
		}
	}
	for i := range dst {
		dst[i] = p.clamp(dst[i])
	}
}
