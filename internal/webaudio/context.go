package webaudio

import (
	"fmt"
	"math"
)

// Context owns an audio graph and its rendering clock. It corresponds to
// BaseAudioContext: OfflineContext and RealtimeSim specialize how it is
// driven. Contexts are single-goroutine objects.
type Context struct {
	sampleRate float64
	traits     Traits
	nodes      []Node
	dest       *DestinationNode
	dirty      bool
	order      []Node
	frame      int64
	engine     Engine
	prog       renderProgram
	scratch    blockScratch
}

// NewContext creates a context with the given sample rate (Hz) and platform
// traits. A nil-kernel Traits is replaced by DefaultTraits.
func NewContext(sampleRate float64, traits Traits) *Context {
	if traits.Kernel == nil {
		traits = DefaultTraits()
	}
	c := &Context{sampleRate: sampleRate, traits: traits, engine: DefaultEngine()}
	c.dest = &DestinationNode{nodeBase: nodeBase{ctx: c, label: "destination"}}
	c.register(c.dest)
	statContexts.Inc()
	return c
}

// SampleRate returns the context sample rate in Hz.
func (c *Context) SampleRate() float64 { return c.sampleRate }

// Traits returns the engine traits the context renders with.
func (c *Context) Traits() Traits { return c.traits }

// CurrentTime returns the rendered time in seconds.
func (c *Context) CurrentTime() float64 { return float64(c.frame) / c.sampleRate }

// CurrentFrame returns the rendered time in frames.
func (c *Context) CurrentFrame() int64 { return c.frame }

// Destination returns the sink node all audible graphs terminate in.
func (c *Context) Destination() *DestinationNode { return c.dest }

func (c *Context) register(n Node) {
	c.nodes = append(c.nodes, n)
	c.dirty = true
}

// RenderQuanta advances the graph clock by n render quanta. When the graph
// changed it recompiles the topo order and (for the block engine) the render
// program first; the steady-state path after compilation allocates nothing.
func (c *Context) RenderQuanta(n int) error {
	if c.dirty {
		order, err := c.topoOrder()
		if err != nil {
			return err
		}
		c.order = order
		c.compileProgram()
		c.dirty = false
	}
	if c.engine == EngineReference {
		for q := 0; q < n; q++ {
			for _, node := range c.order {
				node.process(c.frame)
			}
			c.frame += RenderQuantum
		}
		statReferenceQuanta.Add(int64(n))
	} else {
		for q := 0; q < n; q++ {
			c.prog.run(c)
			c.frame += RenderQuantum
		}
		statBlockQuanta.Add(int64(n))
	}
	statQuanta.Add(int64(n))
	statNodes.Add(int64(n) * int64(len(c.order)))
	return nil
}

// RenderFrames renders at least totalFrames frames (rounded up to whole
// quanta) while recording the destination, and returns exactly totalFrames
// recorded samples.
func (c *Context) RenderFrames(totalFrames int) ([]float32, error) {
	if totalFrames <= 0 {
		return nil, fmt.Errorf("webaudio: RenderFrames(%d): length must be positive", totalFrames)
	}
	c.dest.record = true
	quanta := (totalFrames + RenderQuantum - 1) / RenderQuantum
	if err := c.RenderQuanta(quanta); err != nil {
		return nil, err
	}
	out := c.dest.recorded
	if len(out) > totalFrames {
		out = out[:totalFrames]
	}
	// Farbling perturbs the script-readable copy (getChannelData), not the
	// graph state.
	c.traits.Farble.farbleInPlace(out)
	return out, nil
}

// DestinationNode is the graph sink. When recording, it appends each mixed
// quantum to an internal buffer (the OfflineAudioContext "rendered buffer").
type DestinationNode struct {
	nodeBase
	record   bool
	recorded []float32
}

func (d *DestinationNode) process(frameTime int64) {
	tr := d.ctx.traits
	for i := 0; i < RenderQuantum; i++ {
		d.output[i] = tr.round32(d.sumInputs(i))
	}
	if d.record {
		d.recorded = append(d.recorded, d.output[:]...)
	}
}

// processBlock is the destination's mix/round block kernel.
func (d *DestinationNode) processBlock(_ int64, in *[RenderQuantum]float64) {
	flush := d.ctx.traits.FlushDenormals
	for i := 0; i < RenderQuantum; i++ {
		d.output[i] = flushRound(flush, in[i])
	}
	if d.record {
		d.recorded = append(d.recorded, d.output[:]...)
	}
}

// OfflineContext mirrors OfflineAudioContext(1, length, sampleRate): a
// deterministic render of a fixed number of frames. The DC fingerprinting
// vector uses this — and its determinism is why DC fingerprints never vary
// across iterations (paper Table 1, first row).
type OfflineContext struct {
	*Context
	length int
}

// NewOfflineContext creates an offline context that renders length frames.
func NewOfflineContext(length int, sampleRate float64, traits Traits) *OfflineContext {
	return &OfflineContext{Context: NewContext(sampleRate, traits), length: length}
}

// Length returns the configured render length in frames.
func (o *OfflineContext) Length() int { return o.length }

// StartRendering renders the full buffer and returns it.
func (o *OfflineContext) StartRendering() ([]float32, error) {
	return o.RenderFrames(o.length)
}

// RealtimeSim approximates a live AudioContext for fingerprinting purposes:
// the graph is identical, but *when* a script observes the graph depends on
// event-loop scheduling and machine load. CaptureAfter advances the clock to
// the observation point; the extra offset quanta model load-induced slack.
// This is the engine-level mechanism behind the run-to-run "fickleness" the
// paper reports for every FFT-path vector (and models it exactly where the
// paper locates it: outside the DSP, in capture timing).
type RealtimeSim struct {
	*Context
}

// NewRealtimeSim creates a simulated live context.
func NewRealtimeSim(sampleRate float64, traits Traits) *RealtimeSim {
	return &RealtimeSim{Context: NewContext(sampleRate, traits)}
}

// CaptureAfter renders baseQuanta+offsetQuanta quanta, the moment at which
// the fingerprinting script's audioprocess handler fires.
func (r *RealtimeSim) CaptureAfter(baseQuanta, offsetQuanta int) error {
	if baseQuanta < 0 || offsetQuanta < 0 {
		return fmt.Errorf("webaudio: negative capture point (%d,%d)", baseQuanta, offsetQuanta)
	}
	return r.RenderQuanta(baseQuanta + offsetQuanta)
}

// FramesToSeconds converts a frame count at rate sr to seconds.
func FramesToSeconds(frames int64, sr float64) float64 { return float64(frames) / sr }

// SecondsToFrames converts seconds to whole frames at rate sr.
func SecondsToFrames(sec, sr float64) int64 { return int64(math.Round(sec * sr)) }
