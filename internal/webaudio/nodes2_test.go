package webaudio

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mathx"
)

// spectrumOf renders a graph tail through an analyser and returns the dB
// spectrum after warmup.
func spectrumOf(t *testing.T, ctx *Context, src Node, quanta int) []float32 {
	t.Helper()
	an, err := ctx.NewAnalyser(2048)
	if err != nil {
		t.Fatal(err)
	}
	Connect(src, an)
	Connect(an, ctx.Destination())
	if err := ctx.RenderQuanta(quanta); err != nil {
		t.Fatal(err)
	}
	out := make([]float32, an.FrequencyBinCount())
	if err := an.GetFloatFrequencyData(out); err != nil {
		t.Fatal(err)
	}
	return out
}

func binFor(hz float64) int { return int(hz * 2048 / testRate) }

func TestBiquadLowpassAttenuatesHighs(t *testing.T) {
	ctx := defaultCtx()
	// Two tones: 500 Hz (pass) and 8 kHz (stop) through a 1 kHz lowpass.
	lo := ctx.NewOscillator(Sine, 500)
	hi := ctx.NewOscillator(Sine, 8000)
	lo.Start(0)
	hi.Start(0)
	f := ctx.NewBiquadFilter(Lowpass)
	f.Frequency.SetValue(1000)
	Connect(lo, f)
	Connect(hi, f)
	spec := spectrumOf(t, ctx, f, 64)
	passDB := spec[binFor(500)]
	stopDB := spec[binFor(8000)]
	if passDB-stopDB < 20 {
		t.Errorf("lowpass rejection only %.1f dB (pass %.1f, stop %.1f)", passDB-stopDB, passDB, stopDB)
	}
}

func TestBiquadHighpassAttenuatesLows(t *testing.T) {
	ctx := defaultCtx()
	lo := ctx.NewOscillator(Sine, 200)
	hi := ctx.NewOscillator(Sine, 8000)
	lo.Start(0)
	hi.Start(0)
	f := ctx.NewBiquadFilter(Highpass)
	f.Frequency.SetValue(2000)
	Connect(lo, f)
	Connect(hi, f)
	spec := spectrumOf(t, ctx, f, 64)
	if spec[binFor(8000)]-spec[binFor(200)] < 20 {
		t.Errorf("highpass rejection too small: hi %.1f dB, lo %.1f dB",
			spec[binFor(8000)], spec[binFor(200)])
	}
}

func TestBiquadPeakingBoosts(t *testing.T) {
	render := func(gain float64) float32 {
		ctx := defaultCtx()
		osc := ctx.NewOscillator(Sine, 1000)
		osc.Start(0)
		f := ctx.NewBiquadFilter(Peaking)
		f.Frequency.SetValue(1000)
		f.Gain.SetValue(gain)
		Connect(osc, f)
		spec := spectrumOf(t, ctx, f, 64)
		return spec[binFor(1000)]
	}
	flat := render(0)
	boosted := render(12)
	if float64(boosted-flat) < 9 {
		t.Errorf("peaking +12 dB boost measured %.1f dB", boosted-flat)
	}
}

func TestBiquadTypesAllStable(t *testing.T) {
	for _, typ := range []BiquadFilterType{Lowpass, Highpass, Bandpass, Notch,
		Allpass, Peaking, Lowshelf, Highshelf} {
		ctx := defaultCtx()
		osc := ctx.NewOscillator(Sawtooth, 440)
		osc.Start(0)
		f := ctx.NewBiquadFilter(typ)
		f.Gain.SetValue(6)
		Connect(osc, f)
		Connect(f, ctx.Destination())
		buf, err := ctx.RenderFrames(8192)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range buf {
			if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 100 {
				t.Fatalf("%v: unstable output %g at sample %d", typ, v, i)
			}
		}
	}
}

// TestBiquadKernelIdentity: the filter's trig coefficients go through the
// platform kernel, so it is fingerprintable like the rest of the engine.
func TestBiquadKernelIdentity(t *testing.T) {
	render := func(tr Traits) []float32 {
		ctx := NewContext(testRate, tr)
		osc := ctx.NewOscillator(Triangle, 2000)
		osc.Start(0)
		f := ctx.NewBiquadFilter(Lowpass)
		f.Frequency.SetValue(3000)
		Connect(osc, f)
		Connect(f, ctx.Destination())
		buf, err := ctx.RenderFrames(4096)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a := render(DefaultTraits())
	tr := DefaultTraits()
	tr.Kernel = mathx.Poly7
	b := render(tr)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("biquad output identical across kernels")
	}
}

func TestWaveShaperCurve(t *testing.T) {
	ctx := defaultCtx()
	ws := ctx.NewWaveShaper()
	// Hard clipper at ±0.5.
	if err := ws.SetCurve([]float32{-0.5, 0, 0.5}); err != nil {
		t.Fatal(err)
	}
	osc := ctx.NewOscillator(Sine, 440)
	osc.Start(0)
	Connect(osc, ws)
	Connect(ws, ctx.Destination())
	buf, err := ctx.RenderFrames(2048)
	if err != nil {
		t.Fatal(err)
	}
	var peak float64
	for _, v := range buf {
		if a := math.Abs(float64(v)); a > peak {
			peak = a
		}
	}
	if peak > 0.5001 {
		t.Errorf("clipper peak %.4f, want ≤ 0.5", peak)
	}
	if peak < 0.45 {
		t.Errorf("clipper peak %.4f — curve misapplied", peak)
	}
	if err := ws.SetCurve([]float32{1}); err == nil {
		t.Error("single-point curve accepted")
	}
	if err := ws.SetCurve(nil); err != nil {
		t.Errorf("nil curve rejected: %v", err)
	}
}

func TestWaveShaperPassThroughWithoutCurve(t *testing.T) {
	ctx := defaultCtx()
	ws := ctx.NewWaveShaper()
	osc := ctx.NewOscillator(Sine, 440)
	osc.Start(0)
	Connect(osc, ws)
	Connect(ws, ctx.Destination())
	got, err := ctx.RenderFrames(1024)
	if err != nil {
		t.Fatal(err)
	}
	want := renderTone(t, DefaultTraits(), Sine, 440, 1024)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pass-through altered sample %d", i)
		}
	}
}

func TestDelayShiftsSignal(t *testing.T) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Sine, 1000)
	osc.Start(0)
	d, err := ctx.NewDelay(1)
	if err != nil {
		t.Fatal(err)
	}
	const delaySec = 0.01
	d.DelayTime.SetValue(delaySec)
	Connect(osc, d)
	Connect(d, ctx.Destination())
	buf, err := ctx.RenderFrames(4410)
	if err != nil {
		t.Fatal(err)
	}
	delayFrames := int(delaySec * testRate)
	// Output is silent until the delay elapses…
	for i := 0; i < delayFrames-1; i++ {
		if buf[i] != 0 {
			t.Fatalf("output before delay at %d: %g", i, buf[i])
		}
	}
	// …then matches the undelayed tone shifted by delayFrames.
	ref := renderTone(t, DefaultTraits(), Sine, 1000, 4410)
	for i := delayFrames; i < 4410; i++ {
		if math.Abs(float64(buf[i]-ref[i-delayFrames])) > 1e-3 {
			t.Fatalf("delayed sample %d = %g, want %g", i, buf[i], ref[i-delayFrames])
		}
	}
	if _, err := ctx.NewDelay(0); err == nil {
		t.Error("zero maxDelay accepted")
	}
	if _, err := ctx.NewDelay(1000); err == nil {
		t.Error("huge maxDelay accepted")
	}
}

func TestConstantSource(t *testing.T) {
	ctx := defaultCtx()
	cs := ctx.NewConstantSource(0.25)
	cs.Start(0)
	Connect(cs, ctx.Destination())
	buf, err := ctx.RenderFrames(256)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != 0.25 {
			t.Fatalf("sample %d = %g, want 0.25", i, v)
		}
	}
	// Unstarted source is silent.
	ctx2 := defaultCtx()
	cs2 := ctx2.NewConstantSource(1)
	Connect(cs2, ctx2.Destination())
	buf2, _ := ctx2.RenderFrames(128)
	for _, v := range buf2 {
		if v != 0 {
			t.Fatal("unstarted constant source produced output")
		}
	}
}

func TestBufferSourcePlaysAndLoops(t *testing.T) {
	pattern := []float32{0.1, 0.2, 0.3, 0.4}
	big := make([]float32, 0, 512)
	for len(big) < 512 {
		big = append(big, pattern...)
	}

	// One-shot playback ends after the buffer.
	ctx := defaultCtx()
	src := ctx.NewBufferSource(big, false)
	src.Start(0)
	Connect(src, ctx.Destination())
	buf, err := ctx.RenderFrames(1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if buf[i] != big[i] {
			t.Fatalf("playback sample %d = %g, want %g", i, buf[i], big[i])
		}
	}
	for i := 520; i < 1024; i++ {
		if buf[i] != 0 {
			t.Fatalf("one-shot source still playing at %d", i)
		}
	}

	// Looped playback repeats the pattern.
	ctx2 := defaultCtx()
	src2 := ctx2.NewBufferSource(big, true)
	src2.Start(0)
	Connect(src2, ctx2.Destination())
	buf2, err := ctx2.RenderFrames(2048)
	if err != nil {
		t.Fatal(err)
	}
	silent := 0
	for _, v := range buf2[1024:] {
		if v == 0 {
			silent++
		}
	}
	if silent > 16 {
		t.Errorf("looped source went quiet (%d zero samples in tail)", silent)
	}
}

func TestBufferSourcePlaybackRate(t *testing.T) {
	// A ramp buffer played at rate 2 advances twice as fast.
	ramp := make([]float32, 1000)
	for i := range ramp {
		ramp[i] = float32(i)
	}
	ctx := defaultCtx()
	src := ctx.NewBufferSource(ramp, false)
	src.PlaybackRate.SetValue(2)
	src.Start(0)
	Connect(src, ctx.Destination())
	buf, err := ctx.RenderFrames(256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 200; i++ {
		if math.Abs(float64(buf[i])-float64(2*i)) > 1e-3 {
			t.Fatalf("rate-2 sample %d = %g, want %d", i, buf[i], 2*i)
		}
	}
}

func TestSetTargetAtTime(t *testing.T) {
	ctx := defaultCtx()
	p := newParam(ctx, "test", 1, 0, 0)
	p.SetTargetAtTime(0, 0.1, 0.05)
	if got := p.automatedValue(0.05); got != 1 {
		t.Errorf("value before target start = %g, want 1", got)
	}
	// After one time constant: 0 + (1-0)·e^-1 ≈ 0.3679.
	if got := p.automatedValue(0.15); math.Abs(got-math.Exp(-1)) > 1e-9 {
		t.Errorf("value after 1τ = %g, want %g", got, math.Exp(-1))
	}
	// Converges toward the target.
	if got := p.automatedValue(2); got > 1e-9 {
		t.Errorf("value long after = %g, want ≈ 0", got)
	}
	// A later setValue overrides the decay.
	p.SetValueAtTime(5, 0.3)
	if got := p.automatedValue(0.4); got != 5 {
		t.Errorf("value after setValue = %g, want 5", got)
	}
	// Zero time constant acts as an immediate step.
	q := newParam(ctx, "q", 0, 0, 0)
	q.SetTargetAtTime(3, 0.1, 0)
	if got := q.automatedValue(0.2); got != 3 {
		t.Errorf("zero-τ target = %g, want 3", got)
	}
}

// TestADSRStyleEnvelope exercises chained automation as real scripts use it.
func TestADSRStyleEnvelope(t *testing.T) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Sine, 440)
	g := ctx.NewGain(0)
	g.Gain.SetValueAtTime(0, 0)
	g.Gain.LinearRampToValueAtTime(1, 0.01)  // attack
	g.Gain.SetTargetAtTime(0.5, 0.01, 0.005) // decay to sustain
	g.Gain.SetTargetAtTime(0, 0.05, 0.01)    // release
	osc.Start(0)
	Connect(osc, g)
	Connect(g, ctx.Destination())
	buf, err := ctx.RenderFrames(int(0.2 * testRate))
	if err != nil {
		t.Fatal(err)
	}
	peakAt := func(lo, hi float64) float64 {
		var m float64
		for i := int(lo * testRate); i < int(hi*testRate); i++ {
			if a := math.Abs(float64(buf[i])); a > m {
				m = a
			}
		}
		return m
	}
	attack := peakAt(0.005, 0.015)
	sustain := peakAt(0.03, 0.05)
	tail := peakAt(0.15, 0.2)
	if !(attack > sustain && sustain > tail) {
		t.Errorf("envelope shape wrong: attack %.3f, sustain %.3f, tail %.3f", attack, sustain, tail)
	}
	if tail > 0.05 {
		t.Errorf("release did not decay: tail %.3f", tail)
	}
}

func TestWriteDOT(t *testing.T) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Triangle, 10000)
	mod := ctx.NewOscillator(Sine, 440)
	g := ctx.NewGain(1)
	ConnectParam(mod, g.Gain)
	Connect(osc, g)
	Connect(g, ctx.Destination())
	var sb strings.Builder
	if err := ctx.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{
		"digraph audiograph",
		`"oscillator:triangle"`,
		`"oscillator:sine"`,
		`"destination"`,
		`style=dashed, label="gain"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if !strings.HasSuffix(dot, "}\n") {
		t.Error("DOT not terminated")
	}
}
