package webaudio

import (
	"sync"

	"repro/internal/dsp"
	"repro/internal/mathx"
)

// fftPlan bundles the precomputed, read-only state an AnalyserNode needs
// for one (fftSize, kernel) combination: the FFT twiddle tables and the
// Blackman window, both built through the kernel's sine. Plans are cached
// process-wide so every context simulating the same platform shares one
// set of tables instead of recomputing ~1.5·fftSize kernel sines per
// analyser — a study run touches the same few dozen platform classes over
// and over. Keying by Kernel.Name is sound because a kernel's name is part
// of the simulated platform's identity (see mathx.Kernel).
type fftPlan struct {
	fft    *dsp.FFT
	window []float64
}

type fftPlanKey struct {
	size   int
	kernel string
}

var fftPlans sync.Map // fftPlanKey → *fftPlan

// planFor returns the cached plan for (size, kernel), building it on first
// use. Concurrent first calls may both build; LoadOrStore keeps one.
func planFor(size int, k mathx.Kernel) (*fftPlan, error) {
	key := fftPlanKey{size: size, kernel: k.Name()}
	if p, ok := fftPlans.Load(key); ok {
		return p.(*fftPlan), nil
	}
	fft, err := dsp.NewFFT(size, k.Sin)
	if err != nil {
		return nil, err
	}
	p := &fftPlan{fft: fft, window: dsp.BlackmanWindow(size, k.Sin)}
	actual, _ := fftPlans.LoadOrStore(key, p)
	return actual.(*fftPlan), nil
}
