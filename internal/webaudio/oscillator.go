package webaudio

import (
	"fmt"
	"math"
)

// OscillatorType enumerates the OscillatorNode waveform shapes.
type OscillatorType int

const (
	// Sine is a pure sine tone.
	Sine OscillatorType = iota
	// Square is a band-limited square wave.
	Square
	// Sawtooth is a band-limited sawtooth wave.
	Sawtooth
	// Triangle is a band-limited triangle wave (the shape both classic
	// fingerprinting vectors use, at 10 kHz).
	Triangle
	// Custom uses a caller-provided PeriodicWave.
	Custom
)

// String returns the Web Audio API name of the type.
func (t OscillatorType) String() string {
	switch t {
	case Sine:
		return "sine"
	case Square:
		return "square"
	case Sawtooth:
		return "sawtooth"
	case Triangle:
		return "triangle"
	case Custom:
		return "custom"
	}
	return fmt.Sprintf("OscillatorType(%d)", int(t))
}

// PeriodicWave holds Fourier coefficients for a custom waveform, mirroring
// BaseAudioContext.createPeriodicWave(real, imag). Index 0 is the DC term
// (ignored, per spec); index k is the k-th harmonic.
type PeriodicWave struct {
	Real []float64
	Imag []float64
	// DisableNormalization mirrors the constructor option; the default
	// (false) scales the waveform to a peak of 1.
	DisableNormalization bool
}

// tableSize is the oscillator wavetable resolution. Blink uses 4096 for its
// lowest-frequency range; one table suffices at fingerprinting frequencies.
const tableSize = 4096

// OscillatorNode produces a periodic waveform via wavetable synthesis: the
// table is built by Fourier summation through the platform's math kernel
// (band-limited below Nyquist), then read with linear interpolation. This is
// the same architecture real engines use, and it is why oscillator output
// carries platform identity.
type OscillatorNode struct {
	nodeBase
	// Frequency is the oscillator frequency in Hz (audio-rate modulable —
	// the FM vector's modulation input).
	Frequency *AudioParam
	// Detune offsets the frequency in cents.
	Detune *AudioParam

	typ       OscillatorType
	wave      *PeriodicWave
	table     []float32
	phase     float64 // position in cycles, [0, 1)
	startTime float64
	stopTime  float64
	started   bool
}

// NewOscillator creates an oscillator of the given shape. For Custom, set
// the wave with SetPeriodicWave before starting.
func (c *Context) NewOscillator(typ OscillatorType, freqHz float64) *OscillatorNode {
	o := &OscillatorNode{
		nodeBase: nodeBase{ctx: c, label: "oscillator:" + typ.String()},
		typ:      typ,
	}
	o.Frequency = newParam(c, "frequency", freqHz, -c.sampleRate/2, c.sampleRate/2)
	o.Detune = newParam(c, "detune", 0, -153600, 153600)
	o.stopTime = math.Inf(1)
	c.register(o)
	return o
}

// SetPeriodicWave switches the oscillator to the custom waveform w.
func (o *OscillatorNode) SetPeriodicWave(w *PeriodicWave) {
	o.typ = Custom
	o.wave = w
	o.table = nil // rebuild lazily
	o.base().label = "oscillator:custom"
}

// Start schedules sound production from time t (seconds).
func (o *OscillatorNode) Start(t float64) {
	o.started = true
	o.startTime = t
}

// Stop schedules the end of sound production at time t (seconds).
func (o *OscillatorNode) Stop(t float64) { o.stopTime = t }

func (o *OscillatorNode) params() []*AudioParam {
	return []*AudioParam{o.Frequency, o.Detune}
}

// buildTable resolves the band-limited wavetable for the oscillator's
// waveform at its nominal frequency using the kernel's sine. Synthesis and
// the process-wide table cache live in wavetable.go; the resulting table is
// shared read-only across every oscillator with identical synthesis inputs.
func (o *OscillatorNode) buildTable() {
	f0 := math.Abs(o.Frequency.Value())
	if f0 == 0 {
		f0 = 440
	}
	o.table = wavetableFor(o.ctx.traits.Kernel, o.typ, o.wave,
		f0, o.ctx.sampleRate, o.ctx.traits.OscillatorPhaseOffset)
}

// processBlock is the oscillator's wavetable-read block kernel. The k-rate
// fast path — no automation and no modulators on Frequency/Detune, the
// whole quantum inside [start, stop) — folds the frequency to a constant
// and runs a tight table-read loop. Anything else (FM modulation, ramps,
// start/stop straddling the block) takes the per-sample reference loop,
// which is bit-identical by definition.
func (o *OscillatorNode) processBlock(frameTime int64, _ *[RenderQuantum]float64) {
	tr := o.ctx.traits
	if o.table == nil {
		o.buildTable()
	}
	sr := o.ctx.sampleRate
	// t is nondecreasing in the in-quantum index, so block-edge times decide
	// whether the gate is constant across the quantum.
	t0 := float64(frameTime) / sr
	tLast := (float64(frameTime) + RenderQuantum - 1) / sr
	if !(o.started && t0 >= o.startTime && tLast < o.stopTime) ||
		!o.Frequency.isKRate() || !o.Detune.isKRate() {
		o.process(frameTime)
		return
	}
	freq := o.Frequency.constValue()
	if det := o.Detune.constValue(); det != 0 {
		freq *= tr.Kernel.Pow(2, det/1200)
	}
	inc := freq / sr
	// The table always has tableSize+1 entries (guard sample), and the
	// phase wrap keeps phase in [0, 1), so idx ∈ [0, tableSize). The
	// fixed-size array view plus the mask (a no-op for in-range idx) lets
	// the compiler drop both bounds checks from the read loop.
	tbl := (*[tableSize + 1]float32)(o.table)
	phase := o.phase
	flush := tr.FlushDenormals
	if inc >= -0.5 && inc <= 0.5 {
		// With |inc| ≤ 0.5 and phase ∈ [0, 1), phase+inc ∈ [-0.5, 1.5),
		// so Floor is exactly -1, 0, or 1 and the conditional ±1 wrap
		// computes the identical float64. The interpolated sample is
		// already a float32, so the reference's float64 round trip
		// through round32 is the identity and only the denormal flush
		// remains. Both shortcuts keep the serial phase recurrence off
		// the Floor call's latency.
		for i := 0; i < RenderQuantum; i++ {
			pos := phase * tableSize
			idx := int(pos) & (tableSize - 1)
			frac := float32(pos - float64(idx))
			s := tbl[idx] + (tbl[idx+1]-tbl[idx])*frac
			if flush && s != 0 && s < 1.1754944e-38 && s > -1.1754944e-38 {
				s = 0
			}
			o.output[i] = s
			phase += inc
			if phase >= 1 {
				phase--
			} else if phase < 0 {
				phase++
			}
		}
	} else {
		// Detune can scale the frequency past Nyquist, where the wrap can
		// cross more than one cycle — keep the reference Floor there.
		for i := 0; i < RenderQuantum; i++ {
			pos := phase * tableSize
			idx := int(pos) & (tableSize - 1)
			frac := float32(pos - float64(idx))
			s := tbl[idx] + (tbl[idx+1]-tbl[idx])*frac
			o.output[i] = flushRound(flush, float64(s))
			phase += inc
			phase -= math.Floor(phase)
		}
	}
	o.phase = phase
}

func (o *OscillatorNode) process(frameTime int64) {
	tr := o.ctx.traits
	if o.table == nil {
		o.buildTable()
	}
	sr := o.ctx.sampleRate
	for i := 0; i < RenderQuantum; i++ {
		t := (float64(frameTime) + float64(i)) / sr
		if !o.started || t < o.startTime || t >= o.stopTime {
			o.output[i] = 0
			continue
		}
		freq := o.Frequency.sampleAt(frameTime, i)
		if det := o.Detune.sampleAt(frameTime, i); det != 0 {
			freq *= tr.Kernel.Pow(2, det/1200)
		}
		// Table lookup with linear interpolation (float32 arithmetic, as in
		// the vectorized table readers real engines ship).
		pos := o.phase * tableSize
		idx := int(pos)
		frac := float32(pos - float64(idx))
		s := o.table[idx] + (o.table[idx+1]-o.table[idx])*frac
		o.output[i] = tr.round32(float64(s))

		o.phase += freq / sr
		o.phase -= math.Floor(o.phase)
	}
}
