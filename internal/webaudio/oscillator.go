package webaudio

import (
	"fmt"
	"math"
)

// OscillatorType enumerates the OscillatorNode waveform shapes.
type OscillatorType int

const (
	// Sine is a pure sine tone.
	Sine OscillatorType = iota
	// Square is a band-limited square wave.
	Square
	// Sawtooth is a band-limited sawtooth wave.
	Sawtooth
	// Triangle is a band-limited triangle wave (the shape both classic
	// fingerprinting vectors use, at 10 kHz).
	Triangle
	// Custom uses a caller-provided PeriodicWave.
	Custom
)

// String returns the Web Audio API name of the type.
func (t OscillatorType) String() string {
	switch t {
	case Sine:
		return "sine"
	case Square:
		return "square"
	case Sawtooth:
		return "sawtooth"
	case Triangle:
		return "triangle"
	case Custom:
		return "custom"
	}
	return fmt.Sprintf("OscillatorType(%d)", int(t))
}

// PeriodicWave holds Fourier coefficients for a custom waveform, mirroring
// BaseAudioContext.createPeriodicWave(real, imag). Index 0 is the DC term
// (ignored, per spec); index k is the k-th harmonic.
type PeriodicWave struct {
	Real []float64
	Imag []float64
	// DisableNormalization mirrors the constructor option; the default
	// (false) scales the waveform to a peak of 1.
	DisableNormalization bool
}

// tableSize is the oscillator wavetable resolution. Blink uses 4096 for its
// lowest-frequency range; one table suffices at fingerprinting frequencies.
const tableSize = 4096

// OscillatorNode produces a periodic waveform via wavetable synthesis: the
// table is built by Fourier summation through the platform's math kernel
// (band-limited below Nyquist), then read with linear interpolation. This is
// the same architecture real engines use, and it is why oscillator output
// carries platform identity.
type OscillatorNode struct {
	nodeBase
	// Frequency is the oscillator frequency in Hz (audio-rate modulable —
	// the FM vector's modulation input).
	Frequency *AudioParam
	// Detune offsets the frequency in cents.
	Detune *AudioParam

	typ       OscillatorType
	wave      *PeriodicWave
	table     []float32
	phase     float64 // position in cycles, [0, 1)
	startTime float64
	stopTime  float64
	started   bool
}

// NewOscillator creates an oscillator of the given shape. For Custom, set
// the wave with SetPeriodicWave before starting.
func (c *Context) NewOscillator(typ OscillatorType, freqHz float64) *OscillatorNode {
	o := &OscillatorNode{
		nodeBase: nodeBase{ctx: c, label: "oscillator:" + typ.String()},
		typ:      typ,
	}
	o.Frequency = newParam(c, "frequency", freqHz, -c.sampleRate/2, c.sampleRate/2)
	o.Detune = newParam(c, "detune", 0, -153600, 153600)
	o.stopTime = math.Inf(1)
	c.register(o)
	return o
}

// SetPeriodicWave switches the oscillator to the custom waveform w.
func (o *OscillatorNode) SetPeriodicWave(w *PeriodicWave) {
	o.typ = Custom
	o.wave = w
	o.table = nil // rebuild lazily
	o.base().label = "oscillator:custom"
}

// Start schedules sound production from time t (seconds).
func (o *OscillatorNode) Start(t float64) {
	o.started = true
	o.startTime = t
}

// Stop schedules the end of sound production at time t (seconds).
func (o *OscillatorNode) Stop(t float64) { o.stopTime = t }

func (o *OscillatorNode) params() []*AudioParam {
	return []*AudioParam{o.Frequency, o.Detune}
}

// buildTable synthesizes the band-limited wavetable for the oscillator's
// waveform at its nominal frequency using the kernel's sine.
func (o *OscillatorNode) buildTable() {
	k := o.ctx.traits.Kernel
	nyquist := o.ctx.sampleRate / 2
	f0 := math.Abs(o.Frequency.Value())
	if f0 == 0 {
		f0 = 440
	}
	maxHarm := int(nyquist / f0)
	if maxHarm < 1 {
		maxHarm = 1
	}

	var real, imag []float64
	switch o.typ {
	case Sine:
		real = []float64{0, 0}
		imag = []float64{0, 1}
	case Square:
		// b_n = 4/(nπ) for odd n.
		n := maxHarm + 1
		real = make([]float64, n)
		imag = make([]float64, n)
		for h := 1; h < n; h += 2 {
			imag[h] = 4 / (float64(h) * math.Pi)
		}
	case Sawtooth:
		// b_n = 2/(nπ) · (−1)^{n+1}.
		n := maxHarm + 1
		real = make([]float64, n)
		imag = make([]float64, n)
		sign := 1.0
		for h := 1; h < n; h++ {
			imag[h] = sign * 2 / (float64(h) * math.Pi)
			sign = -sign
		}
	case Triangle:
		// b_n = 8/(n²π²) · (−1)^{(n−1)/2} for odd n.
		n := maxHarm + 1
		real = make([]float64, n)
		imag = make([]float64, n)
		sign := 1.0
		for h := 1; h < n; h += 2 {
			imag[h] = sign * 8 / (float64(h) * float64(h) * math.Pi * math.Pi)
			sign = -sign
		}
	case Custom:
		if o.wave == nil {
			panic("webaudio: custom oscillator without a PeriodicWave")
		}
		nc := len(o.wave.Real)
		if len(o.wave.Imag) < nc {
			nc = len(o.wave.Imag)
		}
		if nc > maxHarm+1 {
			nc = maxHarm + 1 // band-limit to Nyquist
		}
		real = append([]float64(nil), o.wave.Real[:nc]...)
		imag = append([]float64(nil), o.wave.Imag[:nc]...)
	}

	tbl := make([]float64, tableSize)
	phaseOff := o.ctx.traits.OscillatorPhaseOffset
	for i := 0; i < tableSize; i++ {
		phi := 2*math.Pi*float64(i)/tableSize + phaseOff
		var v float64
		for h := 1; h < len(real); h++ {
			hphi := float64(h) * phi
			// cos via the kernel's sine, as the engine's table builder would.
			v += real[h]*k.Sin(hphi+math.Pi/2) + imag[h]*k.Sin(hphi)
		}
		tbl[i] = v
	}

	normalize := true
	if o.typ == Custom && o.wave.DisableNormalization {
		normalize = false
	}
	if normalize {
		var peak float64
		for _, v := range tbl {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		if peak > 0 {
			inv := 1 / peak
			for i := range tbl {
				tbl[i] *= inv
			}
		}
	}
	o.table = make([]float32, tableSize+1)
	for i, v := range tbl {
		o.table[i] = float32(v)
	}
	o.table[tableSize] = o.table[0]
}

func (o *OscillatorNode) process(frameTime int64) {
	tr := o.ctx.traits
	if o.table == nil {
		o.buildTable()
	}
	sr := o.ctx.sampleRate
	for i := 0; i < RenderQuantum; i++ {
		t := (float64(frameTime) + float64(i)) / sr
		if !o.started || t < o.startTime || t >= o.stopTime {
			o.output[i] = 0
			continue
		}
		freq := o.Frequency.sampleAt(frameTime, i)
		if det := o.Detune.sampleAt(frameTime, i); det != 0 {
			freq *= tr.Kernel.Pow(2, det/1200)
		}
		// Table lookup with linear interpolation (float32 arithmetic, as in
		// the vectorized table readers real engines ship).
		pos := o.phase * tableSize
		idx := int(pos)
		frac := float32(pos - float64(idx))
		s := o.table[idx] + (o.table[idx+1]-o.table[idx])*frac
		o.output[i] = tr.round32(float64(s))

		o.phase += freq / sr
		o.phase -= math.Floor(o.phase)
	}
}
