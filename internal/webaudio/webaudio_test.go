package webaudio

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

const testRate = 44100

func defaultCtx() *Context { return NewContext(testRate, DefaultTraits()) }

// renderTone renders seconds of a started oscillator of the given type/freq
// directly into the destination.
func renderTone(t *testing.T, traits Traits, typ OscillatorType, freq float64, frames int) []float32 {
	t.Helper()
	ctx := NewContext(testRate, traits)
	osc := ctx.NewOscillator(typ, freq)
	Connect(osc, ctx.Destination())
	osc.Start(0)
	buf, err := ctx.RenderFrames(frames)
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	return buf
}

func TestRenderFramesLength(t *testing.T) {
	for _, n := range []int{1, 127, 128, 129, 1000, 4096} {
		buf := renderTone(t, DefaultTraits(), Sine, 440, n)
		if len(buf) != n {
			t.Errorf("RenderFrames(%d) returned %d frames", n, len(buf))
		}
	}
	ctx := defaultCtx()
	if _, err := ctx.RenderFrames(0); err == nil {
		t.Error("RenderFrames(0) should error")
	}
}

func TestOscillatorSineShape(t *testing.T) {
	buf := renderTone(t, DefaultTraits(), Sine, 441, 4410) // 44.1 kHz / 441 Hz = 100 samples/period
	// Values bounded by 1.
	for i, v := range buf {
		if v > 1.0001 || v < -1.0001 {
			t.Fatalf("sample %d = %g out of [-1,1]", i, v)
		}
	}
	// Peak magnitude near 1 somewhere in the first period.
	var peak float32
	for _, v := range buf[:100] {
		if a := float32(math.Abs(float64(v))); a > peak {
			peak = a
		}
	}
	if peak < 0.95 {
		t.Errorf("sine peak %g, want ≈ 1", peak)
	}
	// Periodicity: one period is 100 samples.
	for i := 0; i < 100; i++ {
		if math.Abs(float64(buf[i]-buf[i+100])) > 1e-3 {
			t.Fatalf("sine not periodic at %d: %g vs %g", i, buf[i], buf[i+100])
		}
	}
}

func TestOscillatorNotStartedIsSilent(t *testing.T) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Triangle, 10000)
	Connect(osc, ctx.Destination())
	// No Start() call.
	buf, err := ctx.RenderFrames(512)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != 0 {
			t.Fatalf("unstarted oscillator produced %g at %d", v, i)
		}
	}
}

func TestOscillatorStartStopWindow(t *testing.T) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Sine, 1000)
	Connect(osc, ctx.Destination())
	osc.Start(0.01)
	osc.Stop(0.02)
	buf, err := ctx.RenderFrames(testRate / 10)
	if err != nil {
		t.Fatal(err)
	}
	startF := int(0.01 * testRate)
	stopF := int(0.02 * testRate)
	for i := 0; i < startF-1; i++ {
		if buf[i] != 0 {
			t.Fatalf("sound before start at %d", i)
		}
	}
	var energy float64
	for i := startF; i < stopF; i++ {
		energy += float64(buf[i]) * float64(buf[i])
	}
	if energy < 1 {
		t.Errorf("no energy inside start/stop window: %g", energy)
	}
	for i := stopF + 1; i < len(buf); i++ {
		if buf[i] != 0 {
			t.Fatalf("sound after stop at %d", i)
		}
	}
}

// TestDeterministicRendering: same traits ⇒ bit-identical buffers. This is
// the property that makes the DC vector perfectly stable in the paper.
func TestDeterministicRendering(t *testing.T) {
	for _, typ := range []OscillatorType{Sine, Square, Sawtooth, Triangle} {
		a := renderTone(t, DefaultTraits(), typ, 10000, 2048)
		b := renderTone(t, DefaultTraits(), typ, 10000, 2048)
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("%v: nondeterministic at sample %d", typ, i)
			}
		}
	}
}

// TestKernelChangesBuffer: different math kernels ⇒ different rendered
// buffers. This is the fingerprinting premise end-to-end.
func TestKernelChangesBuffer(t *testing.T) {
	base := DefaultTraits()
	for _, k := range []mathx.Kernel{mathx.Poly7, mathx.Lut4096, mathx.Fdlib} {
		tr := base
		tr.Kernel = k
		a := renderTone(t, base, Triangle, 10000, 4096)
		b := renderTone(t, tr, Triangle, 10000, 4096)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("kernel %s rendered identically to libm", k.Name())
		}
	}
}

func TestOscillatorTypesDiffer(t *testing.T) {
	bufs := map[OscillatorType][]float32{}
	for _, typ := range []OscillatorType{Sine, Square, Sawtooth, Triangle} {
		bufs[typ] = renderTone(t, DefaultTraits(), typ, 440, 2048)
	}
	types := []OscillatorType{Sine, Square, Sawtooth, Triangle}
	for i := 0; i < len(types); i++ {
		for j := i + 1; j < len(types); j++ {
			a, b := bufs[types[i]], bufs[types[j]]
			var diff float64
			for k := range a {
				diff += math.Abs(float64(a[k] - b[k]))
			}
			if diff < 1 {
				t.Errorf("%v and %v render nearly identically (Σ|Δ| = %g)", types[i], types[j], diff)
			}
		}
	}
}

func TestCustomPeriodicWave(t *testing.T) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Custom, 440)
	osc.SetPeriodicWave(&PeriodicWave{
		Real: []float64{0, 0.5, 0.3},
		Imag: []float64{0, math.Pi / 2, math.Pi / 2},
	})
	Connect(osc, ctx.Destination())
	osc.Start(0)
	buf, err := ctx.RenderFrames(2048)
	if err != nil {
		t.Fatal(err)
	}
	var peak float64
	for _, v := range buf {
		if a := math.Abs(float64(v)); a > peak {
			peak = a
		}
	}
	// Normalized waveform peaks at 1.
	if math.Abs(peak-1) > 1e-3 {
		t.Errorf("custom wave peak %g, want ≈ 1 (normalized)", peak)
	}
}

func TestCustomWaveWithoutCoefficientsPanics(t *testing.T) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Custom, 440)
	Connect(osc, ctx.Destination())
	osc.Start(0)
	defer func() {
		if recover() == nil {
			t.Error("rendering custom oscillator without PeriodicWave did not panic")
		}
	}()
	_, _ = ctx.RenderFrames(128)
}

func TestGainScalesAndMutes(t *testing.T) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Sine, 440)
	g := ctx.NewGain(0.5)
	Connect(osc, g)
	Connect(g, ctx.Destination())
	osc.Start(0)
	buf, err := ctx.RenderFrames(1024)
	if err != nil {
		t.Fatal(err)
	}
	var peak float64
	for _, v := range buf {
		if a := math.Abs(float64(v)); a > peak {
			peak = a
		}
	}
	if peak > 0.51 || peak < 0.45 {
		t.Errorf("gain 0.5 peak = %g, want ≈ 0.5", peak)
	}

	// Zero gain mutes entirely (the fingerprinting scripts' silencer).
	ctx2 := defaultCtx()
	osc2 := ctx2.NewOscillator(Sine, 440)
	g2 := ctx2.NewGain(0)
	Connect(osc2, g2)
	Connect(g2, ctx2.Destination())
	osc2.Start(0)
	buf2, _ := ctx2.RenderFrames(1024)
	for i, v := range buf2 {
		if v != 0 {
			t.Fatalf("muted graph produced %g at %d", v, i)
		}
	}
}

func TestParamAutomation(t *testing.T) {
	ctx := defaultCtx()
	p := newParam(ctx, "test", 1, 0, 0)
	p.SetValueAtTime(2, 0.5)
	p.LinearRampToValueAtTime(4, 1.0)
	cases := []struct{ t, want float64 }{
		{0, 1},
		{0.49, 1},
		{0.5, 2},
		{0.75, 3},
		{1.0, 4},
		{2.0, 4},
	}
	for _, c := range cases {
		if got := p.automatedValue(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("automatedValue(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestExponentialRamp(t *testing.T) {
	ctx := defaultCtx()
	p := newParam(ctx, "test", 1, 0, 0)
	p.SetValueAtTime(1, 0)
	p.ExponentialRampToValueAtTime(100, 1)
	if got := p.automatedValue(0.5); math.Abs(got-10) > 1e-9 {
		t.Errorf("exponential midpoint = %g, want 10", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("exponential ramp to 0 did not panic")
		}
	}()
	p.ExponentialRampToValueAtTime(0, 2)
}

// TestAMModulationSidebands: connecting a modulator into a gain param must
// produce carrier±modulator sidebands — i.e. real ring/amplitude modulation.
func TestAMModulationSidebands(t *testing.T) {
	ctx := defaultCtx()
	carrier := ctx.NewOscillator(Sine, 10000)
	mod := ctx.NewOscillator(Sine, 1000)
	g := ctx.NewGain(1)
	ConnectParam(mod, g.Gain)
	Connect(carrier, g)
	an, err := ctx.NewAnalyser(2048)
	if err != nil {
		t.Fatal(err)
	}
	Connect(g, an)
	Connect(an, ctx.Destination())
	carrier.Start(0)
	mod.Start(0)
	if err := ctx.RenderQuanta(64); err != nil {
		t.Fatal(err)
	}
	freq := make([]float32, an.FrequencyBinCount())
	if err := an.GetFloatFrequencyData(freq); err != nil {
		t.Fatal(err)
	}
	binHz := testRate / 2048.0
	bin := func(hz float64) int { return int(hz/binHz + 0.5) }
	carrierDb := freq[bin(10000)]
	upperDb := freq[bin(11000)]
	lowerDb := freq[bin(9000)]
	noiseDb := freq[bin(5000)]
	if upperDb < noiseDb+20 || lowerDb < noiseDb+20 {
		t.Errorf("AM sidebands missing: carrier %g, upper %g, lower %g, noise floor %g",
			carrierDb, upperDb, lowerDb, noiseDb)
	}
}

// TestFMModulationSpreadsSpectrum: frequency modulation must spread energy
// into multiple sidebands around the carrier.
func TestFMModulationSpreadsSpectrum(t *testing.T) {
	ctx := defaultCtx()
	carrier := ctx.NewOscillator(Sine, 10000)
	mod := ctx.NewOscillator(Sine, 440)
	depth := ctx.NewGain(2000) // 2 kHz deviation
	Connect(mod, depth)
	ConnectParam(depth, carrier.Frequency)
	an, _ := ctx.NewAnalyser(2048)
	Connect(carrier, an)
	Connect(an, ctx.Destination())
	carrier.Start(0)
	mod.Start(0)
	if err := ctx.RenderQuanta(64); err != nil {
		t.Fatal(err)
	}
	freq := make([]float32, an.FrequencyBinCount())
	if err := an.GetFloatFrequencyData(freq); err != nil {
		t.Fatal(err)
	}
	// Count bins within ±3 kHz of carrier that are above -60 dB.
	binHz := testRate / 2048.0
	lo, hi := int(7000/binHz), int(13000/binHz)
	strong := 0
	for k := lo; k <= hi; k++ {
		if freq[k] > -60 {
			strong++
		}
	}
	if strong < 10 {
		t.Errorf("FM spectrum too narrow: %d strong bins in carrier region", strong)
	}
}

func TestCompressorReducesDynamicRange(t *testing.T) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Triangle, 10000)
	comp := ctx.NewDynamicsCompressor()
	Connect(osc, comp)
	Connect(comp, ctx.Destination())
	osc.Start(0)
	buf, err := ctx.RenderFrames(testRate / 2)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Reduction() >= 0 {
		t.Errorf("compressor reduction = %g dB, want < 0 for a full-scale tone", comp.Reduction())
	}
	// Steady-state output magnitude must be below the unity input's.
	var peak float64
	for _, v := range buf[len(buf)/2:] {
		if a := math.Abs(float64(v)); a > peak {
			peak = a
		}
	}
	if peak > 1.0 || peak < 0.1 {
		t.Errorf("compressed steady-state peak = %g, want within (0.1, 1.0)", peak)
	}
}

func TestCompressorKneeEpsChangesOutput(t *testing.T) {
	render := func(eps float64) []float32 {
		tr := DefaultTraits()
		tr.CompressorKneeEps = eps
		ctx := NewContext(testRate, tr)
		osc := ctx.NewOscillator(Triangle, 10000)
		comp := ctx.NewDynamicsCompressor()
		Connect(osc, comp)
		Connect(comp, ctx.Destination())
		osc.Start(0)
		buf, err := ctx.RenderFrames(8192)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a := render(0)
	b := render(1e-4)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("CompressorKneeEps had no effect on rendered output")
	}
}

func TestCompressorPreDelayChangesOutput(t *testing.T) {
	render := func(pd int) []float32 {
		tr := DefaultTraits()
		tr.CompressorPreDelay = pd
		return func() []float32 {
			ctx := NewContext(testRate, tr)
			osc := ctx.NewOscillator(Triangle, 10000)
			comp := ctx.NewDynamicsCompressor()
			Connect(osc, comp)
			Connect(comp, ctx.Destination())
			osc.Start(0)
			buf, _ := ctx.RenderFrames(4096)
			return buf
		}()
	}
	a, b := render(256), render(260)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("CompressorPreDelay had no effect")
	}
}

func TestAnalyserPeakAtOscillatorFrequency(t *testing.T) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Sine, 10000)
	an, err := ctx.NewAnalyser(2048)
	if err != nil {
		t.Fatal(err)
	}
	Connect(osc, an)
	Connect(an, ctx.Destination())
	osc.Start(0)
	if err := ctx.RenderQuanta(32); err != nil {
		t.Fatal(err)
	}
	freq := make([]float32, an.FrequencyBinCount())
	if err := an.GetFloatFrequencyData(freq); err != nil {
		t.Fatal(err)
	}
	peakBin := 0
	for k, v := range freq {
		if v > freq[peakBin] {
			peakBin = k
		}
	}
	wantBin := 10000 * 2048 / testRate
	if peakBin < wantBin-1 || peakBin > wantBin+1 {
		t.Errorf("spectral peak at bin %d, want ≈ %d", peakBin, wantBin)
	}
}

func TestAnalyserSilenceIsNegInf(t *testing.T) {
	ctx := defaultCtx()
	an, _ := ctx.NewAnalyser(2048)
	Connect(an, ctx.Destination())
	if err := ctx.RenderQuanta(20); err != nil {
		t.Fatal(err)
	}
	freq := make([]float32, an.FrequencyBinCount())
	if err := an.GetFloatFrequencyData(freq); err != nil {
		t.Fatal(err)
	}
	for k, v := range freq {
		if !math.IsInf(float64(v), -1) {
			t.Fatalf("silent bin %d = %g, want -Inf", k, v)
		}
	}
}

func TestAnalyserSmoothingAcrossCalls(t *testing.T) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Sawtooth, 2000)
	an, _ := ctx.NewAnalyser(2048)
	Connect(osc, an)
	Connect(an, ctx.Destination())
	osc.Start(0)
	_ = ctx.RenderQuanta(32)
	a := make([]float32, an.FrequencyBinCount())
	_ = an.GetFloatFrequencyData(a)
	_ = ctx.RenderQuanta(1)
	b := make([]float32, an.FrequencyBinCount())
	_ = an.GetFloatFrequencyData(b)
	diff := false
	for k := range a {
		if a[k] != b[k] {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("successive captures identical despite new audio — smoothing state not advancing")
	}
}

func TestAnalyserRejectsBadSizes(t *testing.T) {
	ctx := defaultCtx()
	for _, n := range []int{0, 16, 100, 65536} {
		if _, err := ctx.NewAnalyser(n); err == nil {
			t.Errorf("NewAnalyser(%d) succeeded", n)
		}
	}
	an, _ := ctx.NewAnalyser(2048)
	if err := an.GetFloatFrequencyData(make([]float32, 10)); err == nil {
		t.Error("short destination accepted")
	}
	if err := an.SetSmoothingTimeConstant(1.5); err == nil {
		t.Error("smoothing constant 1.5 accepted")
	}
}

func TestScriptProcessorEventCadence(t *testing.T) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Sine, 440)
	sp, err := ctx.NewScriptProcessor(4096)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	sp.OnAudioProcess = func(e AudioProcessEvent) {
		got = append(got, e.EventIndex)
		if len(e.InputBuffer) != 4096 {
			t.Errorf("event buffer length %d", len(e.InputBuffer))
		}
	}
	Connect(osc, sp)
	Connect(sp, ctx.Destination())
	osc.Start(0)
	// 4096/128 = 32 quanta per event; render 96 quanta ⇒ 3 events.
	if err := ctx.RenderQuanta(96); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || sp.Events() != 3 {
		t.Fatalf("events fired %d (%v), want 3", sp.Events(), got)
	}
	if _, err := ctx.NewScriptProcessor(100); err == nil {
		t.Error("bad buffer size accepted")
	}
}

func TestConnectAcrossContextsPanics(t *testing.T) {
	c1, c2 := defaultCtx(), defaultCtx()
	o := c1.NewOscillator(Sine, 440)
	defer func() {
		if recover() == nil {
			t.Error("cross-context connect did not panic")
		}
	}()
	Connect(o, c2.Destination())
}

func TestCycleDetection(t *testing.T) {
	ctx := defaultCtx()
	g1 := ctx.NewGain(1)
	g2 := ctx.NewGain(1)
	Connect(g1, g2)
	Connect(g2, g1)
	Connect(g2, ctx.Destination())
	if err := ctx.RenderQuanta(1); err == nil {
		t.Error("cycle rendered without error")
	}
}

// TestRealtimeCaptureOffsetMatters: for a modulated (non-stationary) signal,
// observing the analyser at different capture offsets yields different
// spectra — the fickleness mechanism.
func TestRealtimeCaptureOffsetMatters(t *testing.T) {
	capture := func(offset int) []float32 {
		rt := NewRealtimeSim(testRate, DefaultTraits())
		carrier := rt.NewOscillator(Triangle, 10000)
		mod := rt.NewOscillator(Sine, 7)
		depth := rt.NewGain(3000)
		Connect(mod, depth)
		ConnectParam(depth, carrier.Frequency)
		an, _ := rt.NewAnalyser(2048)
		Connect(carrier, an)
		g := rt.NewGain(0)
		Connect(an, g)
		Connect(g, rt.Destination())
		carrier.Start(0)
		mod.Start(0)
		if err := rt.CaptureAfter(40, offset); err != nil {
			t.Fatal(err)
		}
		out := make([]float32, an.FrequencyBinCount())
		_ = an.GetFloatFrequencyData(out)
		return out
	}
	a, b := capture(0), capture(3)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("capture offset had no effect on FM spectrum")
	}
	if err := (&RealtimeSim{Context: defaultCtx()}).CaptureAfter(-1, 0); err == nil {
		t.Error("negative capture accepted")
	}
}

// TestOfflineContext mirrors the DC vector's OfflineAudioContext usage.
func TestOfflineContext(t *testing.T) {
	oc := NewOfflineContext(44100, testRate, DefaultTraits())
	if oc.Length() != 44100 {
		t.Fatalf("Length = %d", oc.Length())
	}
	osc := oc.NewOscillator(Triangle, 10000)
	comp := oc.NewDynamicsCompressor()
	Connect(osc, comp)
	Connect(comp, oc.Destination())
	osc.Start(0)
	buf, err := oc.StartRendering()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 44100 {
		t.Fatalf("rendered %d frames", len(buf))
	}
}

// TestMixPrecisionMatters: summing many inputs in float32 vs float64 must
// change the output bits.
func TestMixPrecisionMatters(t *testing.T) {
	render := func(p Precision) []float32 {
		tr := DefaultTraits()
		tr.MixPrecision = p
		ctx := NewContext(testRate, tr)
		m := ctx.NewChannelMerger()
		for _, f := range []float64{440, 880, 1880, 22000} {
			o := ctx.NewOscillator(Sine, f)
			o.Start(0)
			Connect(o, m)
		}
		Connect(m, ctx.Destination())
		buf, _ := ctx.RenderFrames(4096)
		return buf
	}
	a, b := render(Mix64), render(Mix32)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("mix precision had no effect")
	}
}

func TestDetuneShiftsFrequency(t *testing.T) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Sine, 10000)
	osc.Detune.SetValue(1200) // +1 octave
	an, _ := ctx.NewAnalyser(2048)
	Connect(osc, an)
	Connect(an, ctx.Destination())
	osc.Start(0)
	_ = ctx.RenderQuanta(32)
	freq := make([]float32, an.FrequencyBinCount())
	_ = an.GetFloatFrequencyData(freq)
	peakBin := 0
	for k, v := range freq {
		if v > freq[peakBin] {
			peakBin = k
		}
	}
	wantBin := 20000 * 2048 / testRate
	if peakBin < wantBin-2 || peakBin > wantBin+2 {
		t.Errorf("detuned peak at bin %d, want ≈ %d", peakBin, wantBin)
	}
}

// TestFlushDenormalsTrait: denormal flushing must alter decaying signals.
func TestFlushDenormalsTrait(t *testing.T) {
	tr := DefaultTraits()
	if tr.round32(1e-42) == 0 {
		t.Error("default traits flushed a subnormal")
	}
	tr.FlushDenormals = true
	if tr.round32(1e-42) != 0 {
		t.Error("FlushDenormals did not flush a subnormal")
	}
	if tr.round32(0.5) != 0.5 {
		t.Error("FlushDenormals damaged a normal value")
	}
}

// Property: rendered samples are always finite for a sane graph.
func TestRenderedSamplesFiniteProperty(t *testing.T) {
	f := func(freqSeed uint16) bool {
		freq := 20 + float64(freqSeed%20000)
		buf := renderTone(t, DefaultTraits(), Sawtooth, freq, 1024)
		for _, v := range buf {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOfflineRenderOneSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oc := NewOfflineContext(44100, testRate, DefaultTraits())
		osc := oc.NewOscillator(Triangle, 10000)
		comp := oc.NewDynamicsCompressor()
		Connect(osc, comp)
		Connect(comp, oc.Destination())
		osc.Start(0)
		if _, err := oc.StartRendering(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyserCapture(b *testing.B) {
	ctx := defaultCtx()
	osc := ctx.NewOscillator(Triangle, 10000)
	an, _ := ctx.NewAnalyser(2048)
	Connect(osc, an)
	Connect(an, ctx.Destination())
	osc.Start(0)
	_ = ctx.RenderQuanta(32)
	out := make([]float32, an.FrequencyBinCount())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = an.GetFloatFrequencyData(out)
	}
}
