package webaudio

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mathx"
)

// The block engine's correctness contract is bit-identity with the
// per-sample reference engine: not "close", the same float32s. This file
// enforces it the property-testing way — seeded random graphs covering
// every node type, parameter automation, audio-rate modulation, and
// start/stop edges, rendered by both engines and compared bit for bit.

// diffTraitsPool are the trait corners the differential test sweeps:
// the reference config, the float32-mixing/fdlibm stack, a LUT kernel with
// denormal flushing, a compressor/oscillator perturbation variant, and a
// split FFT kernel.
func diffTraitsPool() []Traits {
	mix32 := DefaultTraits()
	mix32.Kernel = mathx.Fdlib
	mix32.MixPrecision = Mix32

	lut := DefaultTraits()
	lut.Kernel = mathx.Lut1024
	lut.FlushDenormals = true

	perturbed := DefaultTraits()
	perturbed.CompressorKneeEps = 3.1e-7
	perturbed.CompressorPreDelay = 262
	perturbed.OscillatorPhaseOffset = 1.9e-6

	splitFFT := DefaultTraits()
	splitFFT.FFTKernel = mathx.Poly7

	return []Traits{DefaultTraits(), mix32, lut, perturbed, splitFFT}
}

// diffGraph is what buildRandomGraph wires into a context: handles the
// comparison needs beyond the destination recording.
type diffGraph struct {
	analyser *AnalyserNode
	spEvents [][]float32
}

// buildRandomGraph wires a random but deterministic (seed-driven) graph
// into ctx. Both engines' contexts call it with identically seeded RNGs,
// so they build the same graph.
func buildRandomGraph(t *testing.T, ctx *Context, rng *rand.Rand) *diffGraph {
	t.Helper()
	g := &diffGraph{}

	// Sources: 1-3 of oscillator / constant / buffer source, with random
	// start times and optional stops that straddle quantum boundaries.
	nSrc := 1 + rng.Intn(3)
	sources := make([]Node, 0, nSrc)
	for s := 0; s < nSrc; s++ {
		switch rng.Intn(5) {
		case 0, 1: // standard oscillator
			typ := OscillatorType(rng.Intn(4))
			freq := 200 + 4800*rng.Float64()
			o := ctx.NewOscillator(typ, freq)
			if rng.Intn(3) == 0 {
				o.Detune.SetValue(float64(rng.Intn(2400) - 1200))
			}
			o.Start(0.004 * rng.Float64())
			if rng.Intn(2) == 0 {
				o.Stop(0.005 + 0.010*rng.Float64())
			}
			sources = append(sources, o)
		case 2: // custom periodic wave
			n := 2 + rng.Intn(6)
			w := &PeriodicWave{
				Real:                 make([]float64, n),
				Imag:                 make([]float64, n),
				DisableNormalization: rng.Intn(4) == 0,
			}
			for h := 1; h < n; h++ {
				w.Real[h] = rng.Float64()*2 - 1
				w.Imag[h] = rng.Float64()*2 - 1
			}
			o := ctx.NewOscillator(Sine, 300+2000*rng.Float64())
			o.SetPeriodicWave(w)
			o.Start(0.004 * rng.Float64())
			sources = append(sources, o)
		case 3: // constant source
			cs := ctx.NewConstantSource(rng.Float64()*2 - 1)
			cs.Start(0.004 * rng.Float64())
			if rng.Intn(2) == 0 {
				cs.Stop(0.005 + 0.010*rng.Float64())
			}
			sources = append(sources, cs)
		case 4: // buffer source (per-sample fallback path in the program)
			buf := make([]float32, 256+rng.Intn(1024))
			for i := range buf {
				buf[i] = rng.Float32()*2 - 1
			}
			bs := ctx.NewBufferSource(buf, rng.Intn(2) == 0)
			bs.Start(0.004 * rng.Float64())
			sources = append(sources, bs)
		}
	}

	// Join multiple sources through a merger half the time, otherwise fan
	// them all into the first processor (exercising the mixer path).
	var head Node
	if len(sources) > 1 && rng.Intn(2) == 0 {
		m := ctx.NewChannelMerger()
		for _, s := range sources {
			Connect(s, m)
		}
		head = m
	}

	connectHead := func(dst Node) {
		if head != nil {
			Connect(head, dst)
		} else {
			for _, s := range sources {
				Connect(s, dst)
			}
		}
		head = dst
	}

	// Processor chain: 1-3 random stages.
	nProc := 1 + rng.Intn(3)
	for p := 0; p < nProc; p++ {
		switch rng.Intn(6) {
		case 0: // gain: constant, automated, or audio-rate modulated
			gn := ctx.NewGain(0.2 + rng.Float64())
			switch rng.Intn(3) {
			case 1: // automation events → a-rate block sampling
				gn.Gain.SetValueAtTime(0.5, 0)
				gn.Gain.LinearRampToValueAtTime(0.1+rng.Float64(), 0.005+0.01*rng.Float64())
				if rng.Intn(2) == 0 {
					gn.Gain.SetTargetAtTime(rng.Float64(), 0.008, 0.003)
				}
			case 2: // AM: modulator oscillator into the param
				mod := ctx.NewOscillator(Sine, 20+100*rng.Float64())
				mod.Start(0)
				ConnectParam(mod, gn.Gain)
			}
			connectHead(gn)
		case 1: // biquad, any filter type
			bq := ctx.NewBiquadFilter(BiquadFilterType(rng.Intn(8)))
			bq.Frequency.SetValue(100 + 8000*rng.Float64())
			bq.Q.SetValue(0.5 + 5*rng.Float64())
			bq.Gain.SetValue(float64(rng.Intn(24) - 12))
			connectHead(bq)
		case 2: // IIR with stable coefficients
			ff := []float64{0.15 + 0.1*rng.Float64(), 0.2, 0.1}
			fb := []float64{1, -0.4 - 0.3*rng.Float64(), 0.15}
			ir, err := ctx.NewIIRFilter(ff, fb)
			if err != nil {
				t.Fatalf("NewIIRFilter: %v", err)
			}
			connectHead(ir)
		case 3: // waveshaper with a random curve
			ws := ctx.NewWaveShaper()
			if rng.Intn(4) != 0 {
				curve := make([]float32, 3+rng.Intn(64))
				for i := range curve {
					curve[i] = rng.Float32()*2 - 1
				}
				if err := ws.SetCurve(curve); err != nil {
					t.Fatalf("SetCurve: %v", err)
				}
			}
			connectHead(ws)
		case 4: // delay, constant or automated
			dl, err := ctx.NewDelay(0.05)
			if err != nil {
				t.Fatalf("NewDelay: %v", err)
			}
			dl.DelayTime.SetValue(0.03 * rng.Float64())
			if rng.Intn(3) == 0 {
				dl.DelayTime.SetValueAtTime(0.001, 0)
				dl.DelayTime.LinearRampToValueAtTime(0.03*rng.Float64(), 0.01)
			}
			connectHead(dl)
		case 5: // compressor
			dc := ctx.NewDynamicsCompressor()
			if rng.Intn(2) == 0 {
				dc.Threshold.SetValue(-40 + 20*rng.Float64())
				dc.Ratio.SetValue(4 + 12*rng.Float64())
			}
			connectHead(dc)
		}
	}

	// Optional analysis tail: analyser and/or script processor before the
	// destination, mirroring the real fingerprinting scripts.
	if rng.Intn(2) == 0 {
		an, err := ctx.NewAnalyser(512)
		if err != nil {
			t.Fatalf("NewAnalyser: %v", err)
		}
		connectHead(an)
		g.analyser = an
	}
	if rng.Intn(3) == 0 {
		sp, err := ctx.NewScriptProcessor(512)
		if err != nil {
			t.Fatalf("NewScriptProcessor: %v", err)
		}
		sp.OnAudioProcess = func(ev AudioProcessEvent) {
			g.spEvents = append(g.spEvents, append([]float32(nil), ev.InputBuffer...))
		}
		connectHead(sp)
	}

	connectHead(ctx.Destination())
	return g
}

// TestEngineDifferential renders seeded random graphs with both engines and
// requires bit-identical output: the rendered buffer, every script-processor
// event buffer, and the analyser spectrum.
func TestEngineDifferential(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 25
	}
	pool := diffTraitsPool()
	const frames = 20 * RenderQuantum

	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tr := pool[seed%len(pool)]

			ctxB := NewContext(44100, tr)
			ctxB.SetEngine(EngineBlock)
			gB := buildRandomGraph(t, ctxB, rand.New(rand.NewSource(int64(seed))))

			ctxR := NewContext(44100, tr)
			ctxR.SetEngine(EngineReference)
			gR := buildRandomGraph(t, ctxR, rand.New(rand.NewSource(int64(seed))))

			outB, err := ctxB.RenderFrames(frames)
			if err != nil {
				t.Fatalf("block render: %v", err)
			}
			outR, err := ctxR.RenderFrames(frames)
			if err != nil {
				t.Fatalf("reference render: %v", err)
			}
			for i := range outR {
				if math.Float32bits(outB[i]) != math.Float32bits(outR[i]) {
					t.Fatalf("sample %d: block %v (%#08x) != reference %v (%#08x)",
						i, outB[i], math.Float32bits(outB[i]), outR[i], math.Float32bits(outR[i]))
				}
			}

			if len(gB.spEvents) != len(gR.spEvents) {
				t.Fatalf("script processor events: block %d != reference %d",
					len(gB.spEvents), len(gR.spEvents))
			}
			for e := range gR.spEvents {
				for i := range gR.spEvents[e] {
					if math.Float32bits(gB.spEvents[e][i]) != math.Float32bits(gR.spEvents[e][i]) {
						t.Fatalf("script event %d sample %d: block %v != reference %v",
							e, i, gB.spEvents[e][i], gR.spEvents[e][i])
					}
				}
			}

			if gB.analyser != nil {
				specB := make([]float32, gB.analyser.FrequencyBinCount())
				specR := make([]float32, gR.analyser.FrequencyBinCount())
				if err := gB.analyser.GetFloatFrequencyData(specB); err != nil {
					t.Fatalf("block spectrum: %v", err)
				}
				if err := gR.analyser.GetFloatFrequencyData(specR); err != nil {
					t.Fatalf("reference spectrum: %v", err)
				}
				for i := range specR {
					if math.Float32bits(specB[i]) != math.Float32bits(specR[i]) {
						t.Fatalf("spectrum bin %d: block %v != reference %v", i, specB[i], specR[i])
					}
				}
			}
		})
	}
}
