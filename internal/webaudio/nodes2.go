package webaudio

import (
	"fmt"
	"math"
)

// WaveShaperNode applies a caller-supplied nonlinear transfer curve by
// linear interpolation over the input range [-1, 1], per the spec (the
// "none" oversampling mode). Distortion-based fingerprinting variants pass
// a tone through a shaping curve before analysis.
type WaveShaperNode struct {
	nodeBase
	curve []float32
}

// NewWaveShaper creates a shaper; without a curve it passes audio through.
func (c *Context) NewWaveShaper() *WaveShaperNode {
	w := &WaveShaperNode{nodeBase: nodeBase{ctx: c, label: "waveshaper"}}
	c.register(w)
	return w
}

// SetCurve installs the transfer curve (nil restores pass-through; a curve
// needs at least 2 points). The slice is copied.
func (w *WaveShaperNode) SetCurve(curve []float32) error {
	if curve == nil {
		w.curve = nil
		return nil
	}
	if len(curve) < 2 {
		return fmt.Errorf("webaudio: waveshaper curve needs ≥ 2 points, got %d", len(curve))
	}
	w.curve = append([]float32(nil), curve...)
	return nil
}

func (w *WaveShaperNode) process(frameTime int64) {
	tr := w.ctx.traits
	n := len(w.curve)
	for i := 0; i < RenderQuantum; i++ {
		x := w.sumInputs(i)
		if n == 0 {
			w.output[i] = tr.round32(x)
			continue
		}
		// Map x ∈ [-1, 1] to curve index space, clamping outside.
		v := (x + 1) / 2 * float64(n-1)
		switch {
		case v <= 0:
			w.output[i] = w.curve[0]
		case v >= float64(n-1):
			w.output[i] = w.curve[n-1]
		default:
			idx := int(v)
			frac := float32(v - float64(idx))
			s := w.curve[idx] + (w.curve[idx+1]-w.curve[idx])*frac
			w.output[i] = tr.round32(float64(s))
		}
	}
}

// processBlock is the waveshaper block kernel: the same curve lookup over
// the pre-mixed block.
func (w *WaveShaperNode) processBlock(_ int64, in *[RenderQuantum]float64) {
	flush := w.ctx.traits.FlushDenormals
	n := len(w.curve)
	if n == 0 {
		for i := 0; i < RenderQuantum; i++ {
			w.output[i] = flushRound(flush, in[i])
		}
		return
	}
	for i := 0; i < RenderQuantum; i++ {
		x := in[i]
		v := (x + 1) / 2 * float64(n-1)
		switch {
		case v <= 0:
			w.output[i] = w.curve[0]
		case v >= float64(n-1):
			w.output[i] = w.curve[n-1]
		default:
			idx := int(v)
			frac := float32(v - float64(idx))
			s := w.curve[idx] + (w.curve[idx+1]-w.curve[idx])*frac
			w.output[i] = flushRound(flush, float64(s))
		}
	}
}

// DelayNode delays its input by DelayTime seconds (audio-rate modulable, up
// to the construction-time maximum), with linear interpolation between
// samples.
type DelayNode struct {
	nodeBase
	// DelayTime is the delay in seconds.
	DelayTime *AudioParam
	buf       []float32
	pos       int
}

// NewDelay creates a delay line holding up to maxDelay seconds.
func (c *Context) NewDelay(maxDelay float64) (*DelayNode, error) {
	if maxDelay <= 0 || maxDelay > 180 {
		return nil, fmt.Errorf("webaudio: maxDelay %g out of (0, 180]", maxDelay)
	}
	frames := int(math.Ceil(maxDelay*c.sampleRate)) + RenderQuantum
	d := &DelayNode{
		nodeBase: nodeBase{ctx: c, label: "delay"},
		buf:      make([]float32, frames),
	}
	d.DelayTime = newParam(c, "delayTime", 0, 0, maxDelay)
	c.register(d)
	return d, nil
}

func (d *DelayNode) params() []*AudioParam { return []*AudioParam{d.DelayTime} }

func (d *DelayNode) process(frameTime int64) {
	tr := d.ctx.traits
	n := len(d.buf)
	sr := d.ctx.sampleRate
	for i := 0; i < RenderQuantum; i++ {
		d.buf[d.pos] = tr.round32(d.sumInputs(i))
		delay := d.DelayTime.sampleAt(frameTime, i) * sr
		if delay < 0 {
			delay = 0
		}
		// Read behind the write head with linear interpolation.
		readPos := float64(d.pos) - delay
		for readPos < 0 {
			readPos += float64(n)
		}
		idx := int(readPos)
		frac := float32(readPos - float64(idx))
		s0 := d.buf[idx%n]
		s1 := d.buf[(idx+1)%n]
		d.output[i] = tr.round32(float64(s0 + (s1-s0)*frac))
		d.pos = (d.pos + 1) % n
	}
}

// processBlock is the delay block kernel. A k-rate DelayTime (no automation,
// no modulators) folds the read offset to a constant; otherwise the offset
// is recomputed per sample exactly as the reference loop does.
func (d *DelayNode) processBlock(frameTime int64, in *[RenderQuantum]float64) {
	flush := d.ctx.traits.FlushDenormals
	n := len(d.buf)
	sr := d.ctx.sampleRate
	kRate := d.DelayTime.isKRate()
	constDelay := 0.0
	if kRate {
		constDelay = d.DelayTime.constValue() * sr
		if constDelay < 0 {
			constDelay = 0
		}
	}
	pos := d.pos
	for i := 0; i < RenderQuantum; i++ {
		d.buf[pos] = flushRound(flush, in[i])
		delay := constDelay
		if !kRate {
			delay = d.DelayTime.sampleAt(frameTime, i) * sr
			if delay < 0 {
				delay = 0
			}
		}
		readPos := float64(pos) - delay
		for readPos < 0 {
			readPos += float64(n)
		}
		idx := int(readPos)
		frac := float32(readPos - float64(idx))
		s0 := d.buf[idx%n]
		s1 := d.buf[(idx+1)%n]
		d.output[i] = flushRound(flush, float64(s0+(s1-s0)*frac))
		pos = (pos + 1) % n
	}
	d.pos = pos
}

// ConstantSourceNode outputs its Offset parameter — the spec's DC source,
// handy for biasing modulation graphs.
type ConstantSourceNode struct {
	nodeBase
	// Offset is the constant output value (audio-rate modulable).
	Offset    *AudioParam
	startTime float64
	stopTime  float64
	started   bool
}

// NewConstantSource creates a constant source with the given offset.
func (c *Context) NewConstantSource(offset float64) *ConstantSourceNode {
	n := &ConstantSourceNode{nodeBase: nodeBase{ctx: c, label: "constant"}}
	n.Offset = newParam(c, "offset", offset, 0, 0)
	n.stopTime = math.Inf(1)
	c.register(n)
	return n
}

// Start schedules output from time t (seconds).
func (n *ConstantSourceNode) Start(t float64) { n.started = true; n.startTime = t }

// Stop schedules the end of output at time t (seconds).
func (n *ConstantSourceNode) Stop(t float64) { n.stopTime = t }

func (n *ConstantSourceNode) params() []*AudioParam { return []*AudioParam{n.Offset} }

func (n *ConstantSourceNode) process(frameTime int64) {
	tr := n.ctx.traits
	sr := n.ctx.sampleRate
	for i := 0; i < RenderQuantum; i++ {
		t := (float64(frameTime) + float64(i)) / sr
		if !n.started || t < n.startTime || t >= n.stopTime {
			n.output[i] = 0
			continue
		}
		n.output[i] = tr.round32(n.Offset.sampleAt(frameTime, i))
	}
}

// processBlock is the constant-source block kernel: when the whole quantum
// is inside [start, stop) and Offset is k-rate, the output is one rounded
// constant. Everything else takes the reference loop.
func (n *ConstantSourceNode) processBlock(frameTime int64, _ *[RenderQuantum]float64) {
	sr := n.ctx.sampleRate
	t0 := float64(frameTime) / sr
	tLast := (float64(frameTime) + RenderQuantum - 1) / sr
	if !(n.started && t0 >= n.startTime && tLast < n.stopTime) || !n.Offset.isKRate() {
		n.process(frameTime)
		return
	}
	v := n.ctx.traits.round32(n.Offset.constValue())
	for i := 0; i < RenderQuantum; i++ {
		n.output[i] = v
	}
}

// AudioBufferSourceNode plays a mono sample buffer, optionally looped, at a
// modulable playback rate (linear-interpolated resampling).
type AudioBufferSourceNode struct {
	nodeBase
	// PlaybackRate scales read speed (1 = native).
	PlaybackRate *AudioParam
	buffer       []float32
	loop         bool
	pos          float64
	startTime    float64
	stopTime     float64
	started      bool
	done         bool
}

// NewBufferSource creates a source for the given sample buffer (copied).
func (c *Context) NewBufferSource(buffer []float32, loop bool) *AudioBufferSourceNode {
	s := &AudioBufferSourceNode{
		nodeBase: nodeBase{ctx: c, label: "buffersource"},
		buffer:   append([]float32(nil), buffer...),
		loop:     loop,
	}
	s.PlaybackRate = newParam(c, "playbackRate", 1, 0, 0)
	s.stopTime = math.Inf(1)
	c.register(s)
	return s
}

// Start schedules playback from time t (seconds).
func (s *AudioBufferSourceNode) Start(t float64) { s.started = true; s.startTime = t }

// Stop schedules the end of playback at time t (seconds).
func (s *AudioBufferSourceNode) Stop(t float64) { s.stopTime = t }

func (s *AudioBufferSourceNode) params() []*AudioParam {
	return []*AudioParam{s.PlaybackRate}
}

func (s *AudioBufferSourceNode) process(frameTime int64) {
	tr := s.ctx.traits
	sr := s.ctx.sampleRate
	n := len(s.buffer)
	for i := 0; i < RenderQuantum; i++ {
		t := (float64(frameTime) + float64(i)) / sr
		if !s.started || s.done || n == 0 || t < s.startTime || t >= s.stopTime {
			s.output[i] = 0
			continue
		}
		idx := int(s.pos)
		if idx >= n-1 {
			if !s.loop {
				if idx >= n {
					s.done = true
					s.output[i] = 0
					continue
				}
				s.output[i] = tr.round32(float64(s.buffer[n-1]))
			} else {
				s.pos = math.Mod(s.pos, float64(n))
				idx = int(s.pos)
			}
		}
		if !s.done && idx < n-1 {
			frac := float32(s.pos - float64(idx))
			v := s.buffer[idx] + (s.buffer[idx+1]-s.buffer[idx])*frac
			s.output[i] = tr.round32(float64(v))
		}
		rate := s.PlaybackRate.sampleAt(frameTime, i)
		if rate < 0 {
			rate = 0
		}
		s.pos += rate
	}
}
