package webaudio

import "sync/atomic"

// Engine selects the render implementation a context drives its graph with.
// Both engines are required to produce bit-identical output for every graph
// (enforced by the differential property tests and the study golden suite);
// they differ only in cost.
type Engine int32

const (
	// EngineBlock is the compiled block-processing engine: RenderQuanta
	// compiles the topo order into a render program whose kernels process
	// whole 128-frame quanta over contiguous buffers, with input mixing done
	// once per block and a constant-folded fast path for k-rate parameters.
	// This is the default.
	EngineBlock Engine = iota
	// EngineReference is the original per-sample engine: every node's
	// process() pulls its inputs one sample at a time through virtual
	// dispatch. Kept as the executable specification the block engine is
	// differentially tested against.
	EngineReference
)

// String names the engine for flags and logs.
func (e Engine) String() string {
	if e == EngineReference {
		return "reference"
	}
	return "block"
}

// defaultEngine holds the Engine new contexts start with. The zero value is
// EngineBlock. Atomic so tests and benchmarks can flip it while rendering
// goroutines construct contexts.
var defaultEngine atomic.Int32

// SetDefaultEngine sets the engine newly created contexts use and returns
// the previous default — the reference-engine flag callers (tests,
// benchmarks, the fpstudy -render-engine flag) toggle.
func SetDefaultEngine(e Engine) Engine {
	return Engine(defaultEngine.Swap(int32(e)))
}

// DefaultEngine returns the engine newly created contexts use.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// SetEngine switches this context's render implementation. Output is
// bit-identical either way; only rendering cost changes.
func (c *Context) SetEngine(e Engine) { c.engine = e }

// Engine returns the context's render implementation.
func (c *Context) Engine() Engine { return c.engine }
