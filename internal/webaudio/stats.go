package webaudio

import "repro/internal/obs"

// Engine-wide render counters on the shared registry. They are bumped once
// per RenderQuanta call (not per frame), so the hot loop pays two atomic
// adds per render — invisible next to the DSP itself.
var (
	statContexts = obs.Default.Counter("webaudio_contexts_created_total",
		"audio contexts constructed (one per vector render)", nil)
	statQuanta = obs.Default.Counter("webaudio_quanta_rendered_total",
		"128-frame render quanta processed", nil)
	statNodes = obs.Default.Counter("webaudio_node_ticks_total",
		"node process() invocations (nodes × quanta)", nil)
	statBlockQuanta = obs.Default.Counter("webaudio_block_quanta_total",
		"render quanta processed by the compiled block engine", nil)
	statReferenceQuanta = obs.Default.Counter("webaudio_reference_quanta_total",
		"render quanta processed by the per-sample reference engine", nil)
)

// RenderStats is a snapshot of the engine-wide render counters.
type RenderStats struct {
	// Contexts is the number of contexts constructed.
	Contexts int64
	// Quanta is the number of 128-frame render quanta processed.
	Quanta int64
	// NodeTicks is the number of node process() invocations.
	NodeTicks int64
	// BlockQuanta counts quanta rendered by the compiled block engine.
	BlockQuanta int64
	// ReferenceQuanta counts quanta rendered by the per-sample reference
	// engine.
	ReferenceQuanta int64
}

// Stats returns the engine-wide render counters (process lifetime).
func Stats() RenderStats {
	return RenderStats{
		Contexts:        statContexts.Value(),
		Quanta:          statQuanta.Value(),
		NodeTicks:       statNodes.Value(),
		BlockQuanta:     statBlockQuanta.Value(),
		ReferenceQuanta: statReferenceQuanta.Value(),
	}
}
