package webaudio

// The block engine. When RenderQuanta compiles the topo order it also
// compiles a render program: one renderOp per node, carrying the node's
// block kernel and direct pointers to its input buffers. Running a quantum
// is then a flat loop over ops — mix the op's inputs once into a contiguous
// scratch block, call the kernel — instead of 128 per-sample virtual
// sumInputs calls per node. Kernels are written as tight 128-sample loops
// over fixed-size arrays (bounds checks eliminate; float32↔float64
// round-trips happen once per sample instead of per connection), and every
// kernel is bit-identical to the node's per-sample process() by
// construction: same operations, same order, same widths.

import "repro/internal/obs"

// blockNode is implemented by nodes with a block kernel. processBlock
// renders one quantum into base().output given the pre-mixed input block
// (the engine's sumInputs result for every frame of the quantum). Nodes
// without audio inputs receive the scratch untouched and must ignore it.
type blockNode interface {
	Node
	processBlock(frameTime int64, in *[RenderQuantum]float64)
}

// renderOp is one compiled step of a render program.
type renderOp struct {
	node  Node
	block blockNode // nil → per-sample fallback via node.process
	// srcs are the op's input buffers, resolved at compile time.
	srcs []*[RenderQuantum]float32
	// noMix marks source nodes whose kernel ignores the input block, so the
	// driver can skip zeroing the scratch.
	noMix bool
	// hist is the op class's kernel-timing histogram, resolved at compile
	// time so the timed path (SetKernelTiming) never touches the registry
	// per quantum.
	hist *obs.Histogram
}

// renderProgram is the compiled form of a graph's topo order.
type renderProgram struct {
	ops []renderOp
}

// blockScratch holds the per-context scratch blocks the program driver and
// kernels reuse across quanta, keeping the steady-state render path
// allocation-free.
type blockScratch struct {
	// mix receives each op's summed input block.
	mix [RenderQuantum]float64
	// param receives audio-rate parameter blocks (AudioParam.blockSample).
	param [RenderQuantum]float64
}

// compileProgram rebuilds the render program from the current topo order.
// Called whenever the graph is recompiled (c.dirty).
func (c *Context) compileProgram() {
	ops := c.prog.ops[:0]
	for _, n := range c.order {
		op := renderOp{node: n}
		if bn, ok := n.(blockNode); ok {
			op.block = bn
			op.hist = kernelHist(opClass(n.base().label))
		}
		for _, in := range n.base().inputs {
			op.srcs = append(op.srcs, &in.base().output)
		}
		switch n.(type) {
		case *OscillatorNode, *ConstantSourceNode:
			op.noMix = true
		}
		ops = append(ops, op)
	}
	c.prog.ops = ops
}

// run renders one quantum through the compiled program.
func (p *renderProgram) run(c *Context) {
	frame := c.frame
	mix32 := c.traits.MixPrecision == Mix32
	timed := kernelTimingOn.Load()
	fault := blockFaultHook.Load()
	for i := range p.ops {
		op := &p.ops[i]
		if op.block == nil {
			// No block kernel for this node type: the per-sample reference
			// path renders it (reading the same, already-filled buffers).
			op.node.process(frame)
			continue
		}
		if !op.noMix {
			mixInto(&c.scratch.mix, op.srcs, mix32)
		}
		if timed {
			timeBlock(op, frame, &c.scratch.mix)
		} else {
			op.block.processBlock(frame, &c.scratch.mix)
		}
		if fault != nil {
			fault.apply(op.node)
		}
	}
}

// mixInto sums the source blocks into dst exactly as nodeBase.sumInputs
// does per sample: single inputs widen directly; multi-input fan-in sums in
// the trait-selected precision, accumulating sources in connection order so
// every dst[i] sees the same addition sequence as the per-sample path.
func mixInto(dst *[RenderQuantum]float64, srcs []*[RenderQuantum]float32, mix32 bool) {
	switch len(srcs) {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		s := srcs[0]
		for i := range dst {
			dst[i] = float64(s[i])
		}
	default:
		if mix32 {
			var acc [RenderQuantum]float32
			s0 := srcs[0]
			for i := range acc {
				acc[i] = s0[i]
			}
			for _, s := range srcs[1:] {
				for i := range acc {
					acc[i] += s[i]
				}
			}
			for i := range dst {
				dst[i] = float64(acc[i])
			}
			return
		}
		s0 := srcs[0]
		for i := range dst {
			dst[i] = float64(s0[i])
		}
		for _, s := range srcs[1:] {
			for i := range dst {
				dst[i] += float64(s[i])
			}
		}
	}
}
