package webaudio

import "fmt"

// IIRFilterNode is the spec's general IIR filter: caller-supplied
// feedforward (b) and feedback (a) coefficients, up to order 20, in
// direct form 1:
//
//	a[0]·y[n] = Σ b[k]·x[n−k] − Σ_{k≥1} a[k]·y[n−k]
type IIRFilterNode struct {
	nodeBase
	ff []float64 // feedforward, normalized by a[0]
	fb []float64 // feedback a[1..], normalized by a[0]
	x  []float64 // input history, x[0] most recent
	y  []float64 // output history
}

// NewIIRFilter creates an IIR filter from feedforward and feedback
// coefficient slices (both 1..20 long; feedback[0] must be non-zero).
func (c *Context) NewIIRFilter(feedforward, feedback []float64) (*IIRFilterNode, error) {
	if len(feedforward) == 0 || len(feedforward) > 20 {
		return nil, fmt.Errorf("webaudio: feedforward length %d out of [1,20]", len(feedforward))
	}
	if len(feedback) == 0 || len(feedback) > 20 {
		return nil, fmt.Errorf("webaudio: feedback length %d out of [1,20]", len(feedback))
	}
	if feedback[0] == 0 {
		return nil, fmt.Errorf("webaudio: feedback[0] must be non-zero")
	}
	allZero := true
	for _, v := range feedforward {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return nil, fmt.Errorf("webaudio: feedforward coefficients all zero")
	}
	inv := 1 / feedback[0]
	n := &IIRFilterNode{nodeBase: nodeBase{ctx: c, label: "iirfilter"}}
	n.ff = make([]float64, len(feedforward))
	for i, v := range feedforward {
		n.ff[i] = v * inv
	}
	n.fb = make([]float64, len(feedback)-1)
	for i, v := range feedback[1:] {
		n.fb[i] = v * inv
	}
	n.x = make([]float64, len(n.ff))
	n.y = make([]float64, len(n.fb))
	c.register(n)
	return n, nil
}

func (n *IIRFilterNode) process(frameTime int64) {
	tr := n.ctx.traits
	for i := 0; i < RenderQuantum; i++ {
		// Shift histories (small orders; simple shifting beats ring math).
		copy(n.x[1:], n.x)
		n.x[0] = n.sumInputs(i)
		out := 0.0
		for k, b := range n.ff {
			out += b * n.x[k]
		}
		for k, a := range n.fb {
			out -= a * n.y[k]
		}
		if len(n.y) > 0 {
			copy(n.y[1:], n.y)
			n.y[0] = out
		}
		n.output[i] = tr.round32(out)
	}
}

// processBlock is the IIR block kernel: the direct-form-1 recurrence over
// the pre-mixed block.
func (n *IIRFilterNode) processBlock(_ int64, in *[RenderQuantum]float64) {
	flush := n.ctx.traits.FlushDenormals
	for i := 0; i < RenderQuantum; i++ {
		copy(n.x[1:], n.x)
		n.x[0] = in[i]
		out := 0.0
		for k, b := range n.ff {
			out += b * n.x[k]
		}
		for k, a := range n.fb {
			out -= a * n.y[k]
		}
		if len(n.y) > 0 {
			copy(n.y[1:], n.y)
			n.y[0] = out
		}
		n.output[i] = flushRound(flush, out)
	}
}
