package webaudio

import (
	"testing"
)

// renderedAnalyser builds a context with a running oscillator feeding an
// analyser whose ring buffer has wrapped at least once.
func renderedAnalyser(t testing.TB, fftSize int) *AnalyserNode {
	t.Helper()
	ctx := NewContext(44100, DefaultTraits())
	osc := ctx.NewOscillator(Triangle, 10000)
	an, err := ctx.NewAnalyser(fftSize)
	if err != nil {
		t.Fatal(err)
	}
	Connect(osc, an)
	Connect(an, ctx.Destination())
	osc.Start(0)
	if err := ctx.RenderQuanta(fftSize / RenderQuantum * 2); err != nil {
		t.Fatal(err)
	}
	return an
}

// TestAnalyserFrequencyDataZeroAllocs asserts the capture hot path reuses
// its FFT scratch: after warm-up, neither frequency-data read allocates.
func TestAnalyserFrequencyDataZeroAllocs(t *testing.T) {
	an := renderedAnalyser(t, 2048)
	floats := make([]float32, an.FrequencyBinCount())
	bytes := make([]byte, an.FrequencyBinCount())
	if err := an.GetFloatFrequencyData(floats); err != nil {
		t.Fatal(err)
	}
	if err := an.GetByteFrequencyData(bytes); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := an.GetFloatFrequencyData(floats); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("GetFloatFrequencyData allocates %v objects per call in steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := an.GetByteFrequencyData(bytes); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("GetByteFrequencyData allocates %v objects per call in steady state, want 0", n)
	}
}

// TestGetByteFrequencyData checks the spec mapping: bytes are the float dB
// spectrum mapped linearly from [minDecibels, maxDecibels] onto [0, 255]
// with clamping, sharing the same smoothing state.
func TestGetByteFrequencyData(t *testing.T) {
	af := renderedAnalyser(t, 2048)
	ab := renderedAnalyser(t, 2048)
	floats := make([]float32, af.FrequencyBinCount())
	bytes := make([]byte, ab.FrequencyBinCount())
	if err := af.GetFloatFrequencyData(floats); err != nil {
		t.Fatal(err)
	}
	if err := ab.GetByteFrequencyData(bytes); err != nil {
		t.Fatal(err)
	}
	for k, db := range floats {
		norm := (float64(db) - af.minDB) / (af.maxDB - af.minDB)
		var want byte
		switch {
		case !(norm > 0):
			want = 0
		case norm >= 1:
			want = 255
		default:
			want = byte(255 * norm)
		}
		if bytes[k] != want {
			t.Fatalf("bin %d: byte %d, want %d (dB %v)", k, bytes[k], want, db)
		}
	}
}

// TestFFTPlanSharing: two analysers on contexts with the same kernel must
// share one FFT plan and window, while a different fftSize must not.
func TestFFTPlanSharing(t *testing.T) {
	a := renderedAnalyser(t, 2048)
	b := renderedAnalyser(t, 2048)
	c := renderedAnalyser(t, 512)
	if a.fft != b.fft {
		t.Error("same (size, kernel) did not share the FFT plan")
	}
	if &a.window[0] != &b.window[0] {
		t.Error("same (size, kernel) did not share the window")
	}
	if a.fft == c.fft {
		t.Error("different sizes share an FFT plan")
	}
}
