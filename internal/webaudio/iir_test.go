package webaudio

import (
	"math"
	"testing"
)

func TestIIRFilterValidation(t *testing.T) {
	ctx := defaultCtx()
	cases := []struct {
		ff, fb []float64
	}{
		{nil, []float64{1}},
		{[]float64{1}, nil},
		{make([]float64, 21), []float64{1}},
		{[]float64{1}, make([]float64, 21)},
		{[]float64{1}, []float64{0, 0.5}},
		{[]float64{0, 0}, []float64{1}},
	}
	for i, c := range cases {
		if _, err := ctx.NewIIRFilter(c.ff, c.fb); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestIIRMatchesBiquad: the generic filter fed a biquad's normalized
// lowpass coefficients must behave like a lowpass.
func TestIIRMatchesBiquad(t *testing.T) {
	ctx := defaultCtx()
	// RBJ lowpass at 1 kHz, Q=1, 44.1 kHz (precomputed with math.Cos/Sin).
	w0 := 2 * math.Pi * 1000 / 44100
	alpha := math.Sin(w0) / 2
	cosw0 := math.Cos(w0)
	ff := []float64{(1 - cosw0) / 2, 1 - cosw0, (1 - cosw0) / 2}
	fb := []float64{1 + alpha, -2 * cosw0, 1 - alpha}
	iir, err := ctx.NewIIRFilter(ff, fb)
	if err != nil {
		t.Fatal(err)
	}
	lo := ctx.NewOscillator(Sine, 300)
	hi := ctx.NewOscillator(Sine, 9000)
	lo.Start(0)
	hi.Start(0)
	Connect(lo, iir)
	Connect(hi, iir)
	spec := spectrumOf(t, ctx, iir, 64)
	if spec[binFor(300)]-spec[binFor(9000)] < 20 {
		t.Errorf("IIR lowpass rejection too small: pass %.1f, stop %.1f dB",
			spec[binFor(300)], spec[binFor(9000)])
	}
}

// TestIIRFIRMode: with a single feedback coefficient the node is a pure FIR
// — a 2-tap averager halves a Nyquist-rate alternation.
func TestIIRFIRMode(t *testing.T) {
	ctx := defaultCtx()
	fir, err := ctx.NewIIRFilter([]float64{0.5, 0.5}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	// Drive with a constant: moving average passes DC exactly.
	src := ctx.NewConstantSource(0.8)
	src.Start(0)
	Connect(src, fir)
	Connect(fir, ctx.Destination())
	buf, err := ctx.RenderFrames(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < len(buf); i++ {
		if math.Abs(float64(buf[i])-0.8) > 1e-6 {
			t.Fatalf("FIR DC gain wrong at %d: %g", i, buf[i])
		}
	}
}
