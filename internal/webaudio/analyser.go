package webaudio

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// AnalyserNode passes audio through unchanged while exposing FFT analysis of
// the most recent fftSize time-domain frames, per the Web Audio spec:
// Blackman window → FFT → magnitude scaled by 1/fftSize → smoothing over
// time (constant 0.8) → dB. The FFT twiddles and window are built with the
// platform kernel, so GetFloatFrequencyData output is platform-identifying —
// the paper's evidence points to exactly this path ("it is likely that FFT
// calculations are what are causing this apparent instability").
type AnalyserNode struct {
	nodeBase
	fftSize   int
	smoothing float64
	minDB     float64
	maxDB     float64

	ring     []float32
	ringPos  int
	filled   int
	fft      *dsp.FFT
	window   []float64
	smoothed []float64
	haveData bool
}

// NewAnalyser creates an analyser with the given fftSize (a power of two in
// [32, 32768]; 2048 is both the spec default and what fingerprint scripts
// use).
func (c *Context) NewAnalyser(fftSize int) (*AnalyserNode, error) {
	if fftSize < 32 || fftSize > 32768 || fftSize&(fftSize-1) != 0 {
		return nil, fmt.Errorf("webaudio: invalid fftSize %d", fftSize)
	}
	k := c.traits.FFTKernel
	if k == nil {
		k = c.traits.Kernel
	}
	fft, err := dsp.NewFFT(fftSize, k.Sin)
	if err != nil {
		return nil, err
	}
	a := &AnalyserNode{
		nodeBase:  nodeBase{ctx: c, label: "analyser"},
		fftSize:   fftSize,
		smoothing: 0.8,
		minDB:     -100,
		maxDB:     -30,
		ring:      make([]float32, fftSize),
		fft:       fft,
		window:    dsp.BlackmanWindow(fftSize, k.Sin),
		smoothed:  make([]float64, fftSize/2),
	}
	c.register(a)
	return a, nil
}

// FrequencyBinCount returns fftSize/2, the length GetFloatFrequencyData
// fills.
func (a *AnalyserNode) FrequencyBinCount() int { return a.fftSize / 2 }

// SetSmoothingTimeConstant sets the inter-capture smoothing factor τ ∈ [0,1].
func (a *AnalyserNode) SetSmoothingTimeConstant(tau float64) error {
	if tau < 0 || tau > 1 {
		return fmt.Errorf("webaudio: smoothingTimeConstant %v out of [0,1]", tau)
	}
	a.smoothing = tau
	return nil
}

func (a *AnalyserNode) process(frameTime int64) {
	tr := a.ctx.traits
	for i := 0; i < RenderQuantum; i++ {
		v := tr.round32(a.sumInputs(i))
		a.output[i] = v
		a.ring[a.ringPos] = v
		a.ringPos = (a.ringPos + 1) % a.fftSize
	}
	if a.filled < a.fftSize {
		a.filled += RenderQuantum
	}
}

// GetFloatFrequencyData computes the dB spectrum of the most recent fftSize
// frames into dst (length ≥ FrequencyBinCount). Bins with zero magnitude
// come out as float32(-Inf), as in browsers. Each call advances the
// smoothing state, mirroring successive captures in a live context.
func (a *AnalyserNode) GetFloatFrequencyData(dst []float32) error {
	half := a.fftSize / 2
	if len(dst) < half {
		return fmt.Errorf("webaudio: destination length %d < frequencyBinCount %d", len(dst), half)
	}
	re := make([]float64, a.fftSize)
	im := make([]float64, a.fftSize)
	// Unroll the ring into time order: oldest first.
	for i := 0; i < a.fftSize; i++ {
		re[i] = float64(a.ring[(a.ringPos+i)%a.fftSize])
	}
	dsp.ApplyWindow(re, a.window)
	a.fft.Transform(re, im)

	scale := 1 / float64(a.fftSize)
	tau := a.smoothing
	if !a.haveData {
		tau = 0
		a.haveData = true
	}
	for k := 0; k < half; k++ {
		mag := math.Hypot(re[k], im[k]) * scale
		a.smoothed[k] = tau*a.smoothed[k] + (1-tau)*mag
		dst[k] = float32(dsp.LinearToDecibels(a.smoothed[k]))
	}
	a.ctx.traits.Farble.farbleInPlace(dst[:half])
	return nil
}

// GetFloatTimeDomainData copies the most recent fftSize frames into dst
// (length ≥ fftSize), oldest first.
func (a *AnalyserNode) GetFloatTimeDomainData(dst []float32) error {
	if len(dst) < a.fftSize {
		return fmt.Errorf("webaudio: destination length %d < fftSize %d", len(dst), a.fftSize)
	}
	for i := 0; i < a.fftSize; i++ {
		dst[i] = a.ring[(a.ringPos+i)%a.fftSize]
	}
	return nil
}
