package webaudio

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// AnalyserNode passes audio through unchanged while exposing FFT analysis of
// the most recent fftSize time-domain frames, per the Web Audio spec:
// Blackman window → FFT → magnitude scaled by 1/fftSize → smoothing over
// time (constant 0.8) → dB. The FFT twiddles and window are built with the
// platform kernel, so GetFloatFrequencyData output is platform-identifying —
// the paper's evidence points to exactly this path ("it is likely that FFT
// calculations are what are causing this apparent instability").
type AnalyserNode struct {
	nodeBase
	fftSize   int
	smoothing float64
	minDB     float64
	maxDB     float64

	ring     []float32
	ringPos  int
	filled   int
	fft      *dsp.FFT
	window   []float64 // shared, read-only (see fftplan.go)
	smoothed []float64
	haveData bool
	// re/im are the FFT scratch buffers, reused across captures so
	// steady-state GetFloatFrequencyData/GetByteFrequencyData allocate
	// nothing; dbScratch holds the dB spectrum for the byte path.
	re, im    []float64
	dbScratch []float32
}

// NewAnalyser creates an analyser with the given fftSize (a power of two in
// [32, 32768]; 2048 is both the spec default and what fingerprint scripts
// use).
func (c *Context) NewAnalyser(fftSize int) (*AnalyserNode, error) {
	if fftSize < 32 || fftSize > 32768 || fftSize&(fftSize-1) != 0 {
		return nil, fmt.Errorf("webaudio: invalid fftSize %d", fftSize)
	}
	k := c.traits.FFTKernel
	if k == nil {
		k = c.traits.Kernel
	}
	plan, err := planFor(fftSize, k)
	if err != nil {
		return nil, err
	}
	a := &AnalyserNode{
		nodeBase:  nodeBase{ctx: c, label: "analyser"},
		fftSize:   fftSize,
		smoothing: 0.8,
		minDB:     -100,
		maxDB:     -30,
		ring:      make([]float32, fftSize),
		fft:       plan.fft,
		window:    plan.window,
		smoothed:  make([]float64, fftSize/2),
		re:        make([]float64, fftSize),
		im:        make([]float64, fftSize),
	}
	c.register(a)
	return a, nil
}

// FrequencyBinCount returns fftSize/2, the length GetFloatFrequencyData
// fills.
func (a *AnalyserNode) FrequencyBinCount() int { return a.fftSize / 2 }

// SetSmoothingTimeConstant sets the inter-capture smoothing factor τ ∈ [0,1].
func (a *AnalyserNode) SetSmoothingTimeConstant(tau float64) error {
	if tau < 0 || tau > 1 {
		return fmt.Errorf("webaudio: smoothingTimeConstant %v out of [0,1]", tau)
	}
	a.smoothing = tau
	return nil
}

func (a *AnalyserNode) process(frameTime int64) {
	tr := a.ctx.traits
	mask := a.fftSize - 1 // fftSize is a power of two
	for i := 0; i < RenderQuantum; i++ {
		v := tr.round32(a.sumInputs(i))
		a.output[i] = v
		a.ring[a.ringPos] = v
		a.ringPos = (a.ringPos + 1) & mask
	}
	if a.filled < a.fftSize {
		a.filled += RenderQuantum
	}
}

// processBlock is the analyser block kernel: pass-through round plus the
// ring-buffer capture, over the pre-mixed block.
func (a *AnalyserNode) processBlock(_ int64, in *[RenderQuantum]float64) {
	flush := a.ctx.traits.FlushDenormals
	mask := a.fftSize - 1
	ringPos := a.ringPos
	for i := 0; i < RenderQuantum; i++ {
		v := flushRound(flush, in[i])
		a.output[i] = v
		a.ring[ringPos] = v
		ringPos = (ringPos + 1) & mask
	}
	a.ringPos = ringPos
	if a.filled < a.fftSize {
		a.filled += RenderQuantum
	}
}

// computeSpectrum runs the capture pipeline of the spec — ring unroll →
// Blackman window → FFT → 1/fftSize magnitude scaling → smoothing over
// time — updating a.smoothed in place. Scratch buffers are reused across
// calls, so steady-state captures allocate nothing.
func (a *AnalyserNode) computeSpectrum() {
	re, im := a.re, a.im
	// Unroll the ring into time order (oldest first), in two straight runs
	// instead of a per-sample modulo.
	n := a.fftSize - a.ringPos
	for i := 0; i < n; i++ {
		re[i] = float64(a.ring[a.ringPos+i])
	}
	for i := 0; i < a.ringPos; i++ {
		re[n+i] = float64(a.ring[i])
	}
	for i := range im {
		im[i] = 0
	}
	dsp.ApplyWindow(re, a.window)
	a.fft.Transform(re, im)

	half := a.fftSize / 2
	scale := 1 / float64(a.fftSize)
	tau := a.smoothing
	if !a.haveData {
		tau = 0
		a.haveData = true
	}
	for k := 0; k < half; k++ {
		mag := math.Hypot(re[k], im[k]) * scale
		a.smoothed[k] = tau*a.smoothed[k] + (1-tau)*mag
	}
}

// GetFloatFrequencyData computes the dB spectrum of the most recent fftSize
// frames into dst (length ≥ FrequencyBinCount). Bins with zero magnitude
// come out as float32(-Inf), as in browsers. Each call advances the
// smoothing state, mirroring successive captures in a live context.
func (a *AnalyserNode) GetFloatFrequencyData(dst []float32) error {
	half := a.fftSize / 2
	if len(dst) < half {
		return fmt.Errorf("webaudio: destination length %d < frequencyBinCount %d", len(dst), half)
	}
	a.computeSpectrum()
	for k := 0; k < half; k++ {
		dst[k] = float32(dsp.LinearToDecibels(a.smoothed[k]))
	}
	a.ctx.traits.Farble.farbleInPlace(dst[:half])
	return nil
}

// GetByteFrequencyData is the spec's quantized spectrum read: the dB value
// of each bin is mapped linearly from [minDecibels, maxDecibels] onto
// [0, 255] and clamped. It shares (and advances) the smoothing state with
// GetFloatFrequencyData, and farbling applies before quantization, as the
// byte array is just as script-readable as the float one.
func (a *AnalyserNode) GetByteFrequencyData(dst []byte) error {
	half := a.fftSize / 2
	if len(dst) < half {
		return fmt.Errorf("webaudio: destination length %d < frequencyBinCount %d", len(dst), half)
	}
	a.computeSpectrum()
	if a.dbScratch == nil {
		a.dbScratch = make([]float32, half)
	}
	for k := 0; k < half; k++ {
		a.dbScratch[k] = float32(dsp.LinearToDecibels(a.smoothed[k]))
	}
	a.ctx.traits.Farble.farbleInPlace(a.dbScratch)
	span := a.maxDB - a.minDB
	for k := 0; k < half; k++ {
		norm := (float64(a.dbScratch[k]) - a.minDB) / span
		switch {
		case !(norm > 0): // also catches the -Inf of silent bins
			dst[k] = 0
		case norm >= 1:
			dst[k] = 255
		default:
			dst[k] = byte(255 * norm)
		}
	}
	return nil
}

// GetFloatTimeDomainData copies the most recent fftSize frames into dst
// (length ≥ fftSize), oldest first.
func (a *AnalyserNode) GetFloatTimeDomainData(dst []float32) error {
	if len(dst) < a.fftSize {
		return fmt.Errorf("webaudio: destination length %d < fftSize %d", len(dst), a.fftSize)
	}
	n := copy(dst, a.ring[a.ringPos:])
	copy(dst[n:a.fftSize], a.ring[:a.ringPos])
	return nil
}
