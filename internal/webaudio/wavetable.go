package webaudio

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/mathx"
)

// Oscillator wavetables are a pure function of (kernel, waveform, nominal
// frequency, sample rate, phase offset, custom coefficients): the Fourier
// summation below costs ~tableSize·maxHarm kernel sines, which for short
// fingerprint renders rivals the render itself. Like the analyser's FFT
// plans (fftplan.go), tables are therefore cached process-wide: a
// population sweep revisits the same few dozen platform classes, and every
// context simulating one of them shares the same read-only table. Keying by
// Kernel.Name is sound because kernel names are registry-unique platform
// identity.

var wavetables sync.Map // string → []float32

// wavetableKey canonically identifies every input of buildWavetable.
func wavetableKey(k mathx.Kernel, typ OscillatorType, wave *PeriodicWave, f0, sampleRate, phaseOff float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d|%x|%x|%x", k.Name(), typ,
		math.Float64bits(f0), math.Float64bits(sampleRate), math.Float64bits(phaseOff))
	if typ == Custom && wave != nil {
		fmt.Fprintf(&b, "|%t", wave.DisableNormalization)
		for _, v := range wave.Real {
			fmt.Fprintf(&b, ",%x", math.Float64bits(v))
		}
		b.WriteByte(';')
		for _, v := range wave.Imag {
			fmt.Fprintf(&b, ",%x", math.Float64bits(v))
		}
	}
	return b.String()
}

// buildWavetable synthesizes the band-limited wavetable by Fourier
// summation through the kernel's sine — the table builder of
// OscillatorNode, hoisted so its output can be shared. The returned slice
// has tableSize+1 entries (guard sample for interpolation) and is
// read-only.
func buildWavetable(k mathx.Kernel, typ OscillatorType, wave *PeriodicWave, f0, sampleRate, phaseOff float64) []float32 {
	nyquist := sampleRate / 2
	maxHarm := int(nyquist / f0)
	if maxHarm < 1 {
		maxHarm = 1
	}

	var real, imag []float64
	switch typ {
	case Sine:
		real = []float64{0, 0}
		imag = []float64{0, 1}
	case Square:
		// b_n = 4/(nπ) for odd n.
		n := maxHarm + 1
		real = make([]float64, n)
		imag = make([]float64, n)
		for h := 1; h < n; h += 2 {
			imag[h] = 4 / (float64(h) * math.Pi)
		}
	case Sawtooth:
		// b_n = 2/(nπ) · (−1)^{n+1}.
		n := maxHarm + 1
		real = make([]float64, n)
		imag = make([]float64, n)
		sign := 1.0
		for h := 1; h < n; h++ {
			imag[h] = sign * 2 / (float64(h) * math.Pi)
			sign = -sign
		}
	case Triangle:
		// b_n = 8/(n²π²) · (−1)^{(n−1)/2} for odd n.
		n := maxHarm + 1
		real = make([]float64, n)
		imag = make([]float64, n)
		sign := 1.0
		for h := 1; h < n; h += 2 {
			imag[h] = sign * 8 / (float64(h) * float64(h) * math.Pi * math.Pi)
			sign = -sign
		}
	case Custom:
		if wave == nil {
			panic("webaudio: custom oscillator without a PeriodicWave")
		}
		nc := len(wave.Real)
		if len(wave.Imag) < nc {
			nc = len(wave.Imag)
		}
		if nc > maxHarm+1 {
			nc = maxHarm + 1 // band-limit to Nyquist
		}
		real = append([]float64(nil), wave.Real[:nc]...)
		imag = append([]float64(nil), wave.Imag[:nc]...)
	}

	tbl := make([]float64, tableSize)
	for i := 0; i < tableSize; i++ {
		phi := 2*math.Pi*float64(i)/tableSize + phaseOff
		var v float64
		for h := 1; h < len(real); h++ {
			hphi := float64(h) * phi
			// cos via the kernel's sine, as the engine's table builder would.
			v += real[h]*k.Sin(hphi+math.Pi/2) + imag[h]*k.Sin(hphi)
		}
		tbl[i] = v
	}

	normalize := true
	if typ == Custom && wave.DisableNormalization {
		normalize = false
	}
	if normalize {
		var peak float64
		for _, v := range tbl {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		if peak > 0 {
			inv := 1 / peak
			for i := range tbl {
				tbl[i] *= inv
			}
		}
	}
	out := make([]float32, tableSize+1)
	for i, v := range tbl {
		out[i] = float32(v)
	}
	out[tableSize] = out[0]
	return out
}

// wavetableFor returns the cached table for the given synthesis inputs,
// building it on first use. Concurrent first calls may both build;
// LoadOrStore keeps one (both are bit-identical).
func wavetableFor(k mathx.Kernel, typ OscillatorType, wave *PeriodicWave, f0, sampleRate, phaseOff float64) []float32 {
	key := wavetableKey(k, typ, wave, f0, sampleRate, phaseOff)
	if t, ok := wavetables.Load(key); ok {
		return t.([]float32)
	}
	tbl := buildWavetable(k, typ, wave, f0, sampleRate, phaseOff)
	actual, _ := wavetables.LoadOrStore(key, tbl)
	return actual.([]float32)
}
