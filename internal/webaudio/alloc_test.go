package webaudio

import "testing"

// TestBlockRenderZeroAlloc pins the steady-state block engine at zero
// allocations per render quantum: after RenderQuanta has compiled the render
// program and the lazy per-node state (wavetables, makeup gain) exists,
// advancing the clock must not touch the heap. The graph deliberately spans
// the kernel set — k-rate and modulated gain, biquad, compressor, analyser —
// so a new kernel that allocates shows up here as a regression.
func TestBlockRenderZeroAlloc(t *testing.T) {
	prev := SetDefaultEngine(EngineBlock)
	defer SetDefaultEngine(prev)

	ctx := NewContext(44100, DefaultTraits())

	carrier := ctx.NewOscillator(Triangle, 10000)
	carrier.Start(0)
	mod := ctx.NewOscillator(Sine, 50)
	mod.Start(0)

	am := ctx.NewGain(0.5)
	ConnectParam(mod, am.Gain) // audio-rate param → blockSample path
	Connect(carrier, am)

	bq := ctx.NewBiquadFilter(Lowpass)
	bq.Frequency.SetValue(8000)
	Connect(am, bq)

	dc := ctx.NewDynamicsCompressor()
	Connect(bq, dc)

	an, err := ctx.NewAnalyser(2048)
	if err != nil {
		t.Fatalf("NewAnalyser: %v", err)
	}
	Connect(dc, an)
	Connect(an, ctx.Destination())

	// Warm up: compiles the render program, builds wavetables and the
	// compressor makeup gain.
	if err := ctx.RenderQuanta(2); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	allocs := testing.AllocsPerRun(100, func() {
		if err := ctx.RenderQuanta(1); err != nil {
			t.Fatalf("RenderQuanta: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state block render allocates %.1f times per quantum, want 0", allocs)
	}
}
