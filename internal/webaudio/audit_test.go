package webaudio

import (
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

// auditGraph builds the FFT-vector-shaped chain (oscillator → biquad →
// compressor → gain → destination) on a fresh context with the given
// engine.
func auditGraph(e Engine) *Context {
	c := NewContext(44100, DefaultTraits())
	c.SetEngine(e)
	osc := c.NewOscillator(Triangle, 10000)
	bq := c.NewBiquadFilter(Lowpass)
	comp := c.NewDynamicsCompressor()
	g := c.NewGain(0.5)
	Connect(osc, bq)
	Connect(bq, comp)
	Connect(comp, g)
	Connect(g, c.Destination())
	osc.Start(0)
	return c
}

func TestLockstepCompareAgreesOnHealthyGraph(t *testing.T) {
	got := auditGraph(EngineBlock)
	want := auditGraph(EngineReference)
	div, err := LockstepCompare(got, want, 24)
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("healthy engines diverged: %v", div)
	}
}

func TestLockstepCompareCatchesInjectedFault(t *testing.T) {
	SetBlockFault("gain", 17, 1<<19)
	defer SetBlockFault("", 0, 0)

	got := auditGraph(EngineBlock)
	want := auditGraph(EngineReference)
	div, err := LockstepCompare(got, want, 8)
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("injected block fault not detected")
	}
	if div.Op != "gain" {
		t.Fatalf("offending op = %q, want gain", div.Op)
	}
	if div.Sample != 17 {
		t.Fatalf("sample = %d, want 17", div.Sample)
	}
	if div.Quantum != 0 {
		t.Fatalf("quantum = %d, want 0 (fault applies every quantum)", div.Quantum)
	}
	if div.GotBits == div.WantBits {
		t.Fatal("divergence with equal bits")
	}
	if math.Float32bits(math.Float32frombits(div.GotBits))^div.WantBits != 1<<19 {
		t.Fatalf("bit pattern: got 0x%08x want 0x%08x", div.GotBits, div.WantBits)
	}
	if s := div.String(); !strings.Contains(s, "gain") || !strings.Contains(s, "sample 17") {
		t.Fatalf("String() = %q", s)
	}
}

func TestBlockFaultOnlyHitsBlockEngine(t *testing.T) {
	SetBlockFault("gain", 0, 1<<20)
	defer SetBlockFault("", 0, 0)
	ref := auditGraph(EngineReference)
	ref2 := auditGraph(EngineReference)
	div, err := LockstepCompare(ref, ref2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("reference engine affected by block fault: %v", div)
	}
}

func TestKernelTimingHistograms(t *testing.T) {
	prev := SetKernelTiming(true)
	defer SetKernelTiming(prev)
	SetRenderTraceID("0123456789abcdef0123456789abcdef")
	defer SetRenderTraceID("")

	before := kernelHist("oscillator").Count()
	c := auditGraph(EngineBlock)
	if err := c.RenderQuanta(10); err != nil {
		t.Fatal(err)
	}
	h := kernelHist("oscillator")
	if h.Count() != before+10 {
		t.Fatalf("oscillator kernel observations = %d, want %d", h.Count(), before+10)
	}
	ex, ok := h.Exemplar()
	if !ok {
		t.Fatal("no exemplar recorded")
	}
	if ex.TraceID != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("exemplar trace = %q", ex.TraceID)
	}
	if ex.Value <= 0 {
		t.Fatalf("exemplar value = %v", ex.Value)
	}

	// The exemplar must surface on a registry snapshot (that is how the
	// exporter's trace file and the series store see it).
	var found bool
	for _, s := range obs.Default.Snapshot() {
		if s.Name == "webaudio_kernel_block_seconds_count" && s.Labels["op"] == "oscillator" {
			if s.Exemplar == nil || s.Exemplar.TraceID != ex.TraceID {
				t.Fatalf("snapshot exemplar = %+v", s.Exemplar)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("kernel timing series missing from snapshot")
	}
}

func TestKernelTimingOffByDefaultKeepsHistogramsQuiet(t *testing.T) {
	if kernelTimingOn.Load() {
		t.Fatal("kernel timing must default to off")
	}
	before := kernelHist("compressor").Count()
	c := auditGraph(EngineBlock)
	if err := c.RenderQuanta(5); err != nil {
		t.Fatal(err)
	}
	if got := kernelHist("compressor").Count(); got != before {
		t.Fatalf("untimed render observed %d kernel timings", got-before)
	}
}

func TestOpClass(t *testing.T) {
	for in, want := range map[string]string{
		"oscillator:triangle": "oscillator",
		"biquad:lowpass":      "biquad",
		"gain":                "gain",
		"destination":         "destination",
	} {
		if got := opClass(in); got != want {
			t.Fatalf("opClass(%q) = %q, want %q", in, got, want)
		}
	}
}
