package webaudio

import "math"

// DynamicsCompressorNode implements the Web Audio dynamics compressor with
// its spec defaults: threshold −24 dB, knee 30 dB, ratio 12:1, attack 3 ms,
// release 250 ms, plus automatic makeup gain and a short look-ahead
// pre-delay. The gain computer's soft-knee polynomial and the attack/release
// exponentials run through the platform math kernel, and the knee
// coefficient carries a trait-level perturbation — together these are the
// cross-platform differences the DC fingerprinting vector harvests.
type DynamicsCompressorNode struct {
	nodeBase
	// Threshold in dB above which compression starts. Default −24.
	Threshold *AudioParam
	// Knee width in dB of the soft transition region. Default 30.
	Knee *AudioParam
	// Ratio of input-dB change to output-dB change. Default 12.
	Ratio *AudioParam
	// Attack time in seconds. Default 0.003.
	Attack *AudioParam
	// Release time in seconds. Default 0.25.
	Release *AudioParam

	env        float64   // detector envelope (linear)
	reduction  float64   // last gain reduction in dB (the .reduction attribute)
	delay      []float32 // look-ahead delay line
	delayPos   int
	makeup     float64
	haveMakeup bool
}

// NewDynamicsCompressor creates a compressor with spec defaults.
func (c *Context) NewDynamicsCompressor() *DynamicsCompressorNode {
	d := &DynamicsCompressorNode{nodeBase: nodeBase{ctx: c, label: "compressor"}}
	d.Threshold = newParam(c, "threshold", -24, -100, 0)
	d.Knee = newParam(c, "knee", 30, 0, 40)
	d.Ratio = newParam(c, "ratio", 12, 1, 20)
	d.Attack = newParam(c, "attack", 0.003, 0, 1)
	d.Release = newParam(c, "release", 0.25, 0, 1)
	n := c.traits.CompressorPreDelay
	if n < 0 {
		n = 0
	}
	d.delay = make([]float32, n+1)
	c.register(d)
	return d
}

// Reduction returns the current gain reduction in dB (≤ 0), mirroring the
// read-only attribute of the real node.
func (d *DynamicsCompressorNode) Reduction() float64 { return d.reduction }

func (d *DynamicsCompressorNode) params() []*AudioParam {
	return []*AudioParam{d.Threshold, d.Knee, d.Ratio, d.Attack, d.Release}
}

// curveDB maps an input level (dB) to the compressed output level (dB):
// identity below threshold, a quadratic soft knee across [T, T+K], constant
// slope 1/R above. kneeEps perturbs the knee interpolation the way
// different implementations' polynomial fits differ.
func (d *DynamicsCompressorNode) curveDB(x, threshold, knee, ratio float64) float64 {
	kneeEps := d.ctx.traits.CompressorKneeEps
	switch {
	case x < threshold:
		return x
	case knee > 0 && x < threshold+knee:
		t := x - threshold
		return x + (1/ratio-1)*t*t/(2*knee)*(1+kneeEps)
	default:
		kneeEnd := threshold + knee + (1/ratio-1)*knee/2*(1+kneeEps)
		return kneeEnd + (x-threshold-knee)/ratio
	}
}

func (d *DynamicsCompressorNode) process(frameTime int64) {
	tr := d.ctx.traits
	k := tr.Kernel
	sr := d.ctx.sampleRate

	threshold := d.Threshold.sampleAt(frameTime, 0)
	knee := d.Knee.sampleAt(frameTime, 0)
	ratio := d.Ratio.sampleAt(frameTime, 0)
	attack := d.Attack.sampleAt(frameTime, 0)
	release := d.Release.sampleAt(frameTime, 0)

	// One-pole detector coefficients via the kernel's exp.
	aAtt := 1.0
	if attack > 0 {
		aAtt = 1 - k.Exp(-1/(sr*attack))
	}
	aRel := 1.0
	if release > 0 {
		aRel = 1 - k.Exp(-1/(sr*release))
	}

	if !d.haveMakeup {
		// Makeup per Blink: (1 / curve(0dB)_linear)^0.6.
		fullDB := d.curveDB(0, threshold, knee, ratio)
		fullLin := k.Pow(10, fullDB/20)
		if fullLin > 0 {
			d.makeup = k.Pow(1/fullLin, 0.6)
		} else {
			d.makeup = 1
		}
		d.haveMakeup = true
	}

	for i := 0; i < RenderQuantum; i++ {
		in := d.sumInputs(i)

		// Detector: envelope of |x|.
		a := math.Abs(in)
		coeff := aRel
		if a > d.env {
			coeff = aAtt
		}
		d.env += (a - d.env) * coeff

		// Gain computer in the log domain.
		var gainDB float64
		if d.env > 1e-10 {
			levelDB := 20 * (k.Log(d.env) / math.Ln10)
			outDB := d.curveDB(levelDB, threshold, knee, ratio)
			gainDB = outDB - levelDB
		}
		d.reduction = gainDB
		gainLin := k.Pow(10, gainDB/20) * d.makeup

		// Look-ahead: gain computed from the present, applied to the
		// pre-delayed signal.
		d.delay[d.delayPos] = float32(in)
		d.delayPos = (d.delayPos + 1) % len(d.delay)
		delayed := float64(d.delay[d.delayPos])

		d.output[i] = tr.round32(delayed * gainLin)
	}
}

// processBlock is the compressor block kernel: same per-quantum coefficient
// preamble and per-sample envelope/gain recurrence as process, but over the
// pre-mixed block with the detector state held in locals. The kernel Log/Pow
// calls per sample are the fingerprint surface and stay untouched.
func (d *DynamicsCompressorNode) processBlock(frameTime int64, xs *[RenderQuantum]float64) {
	tr := d.ctx.traits
	k := tr.Kernel
	sr := d.ctx.sampleRate

	threshold := d.Threshold.sampleAt(frameTime, 0)
	knee := d.Knee.sampleAt(frameTime, 0)
	ratio := d.Ratio.sampleAt(frameTime, 0)
	attack := d.Attack.sampleAt(frameTime, 0)
	release := d.Release.sampleAt(frameTime, 0)

	aAtt := 1.0
	if attack > 0 {
		aAtt = 1 - k.Exp(-1/(sr*attack))
	}
	aRel := 1.0
	if release > 0 {
		aRel = 1 - k.Exp(-1/(sr*release))
	}

	if !d.haveMakeup {
		fullDB := d.curveDB(0, threshold, knee, ratio)
		fullLin := k.Pow(10, fullDB/20)
		if fullLin > 0 {
			d.makeup = k.Pow(1/fullLin, 0.6)
		} else {
			d.makeup = 1
		}
		d.haveMakeup = true
	}

	// Hoisted gain-computer constants: each expression below reproduces
	// the corresponding curveDB subterm with the identical operation
	// sequence, so per-sample results stay bit-equal to the reference.
	kneeEps := tr.CompressorKneeEps
	ke1 := 1 + kneeEps
	rInv := 1/ratio - 1
	knee2 := 2 * knee
	kneeTop := threshold + knee
	kneeEnd := threshold + knee + (1/ratio-1)*knee/2*(1+kneeEps)

	flush := tr.FlushDenormals
	env := d.env
	delay := d.delay
	delayPos := d.delayPos
	delayLen := len(delay)
	makeup := d.makeup
	gainDB := 0.0
	for i := 0; i < RenderQuantum; i++ {
		in := xs[i]

		a := math.Abs(in)
		coeff := aRel
		if a > env {
			coeff = aAtt
		}
		env += (a - env) * coeff

		gainDB = 0
		if env > 1e-10 {
			levelDB := 20 * (k.Log(env) / math.Ln10)
			var outDB float64
			switch {
			case levelDB < threshold:
				outDB = levelDB
			case knee > 0 && levelDB < kneeTop:
				t := levelDB - threshold
				outDB = levelDB + rInv*t*t/knee2*ke1
			default:
				outDB = kneeEnd + (levelDB-threshold-knee)/ratio
			}
			gainDB = outDB - levelDB
		}
		gainLin := k.Pow(10, gainDB/20) * makeup

		// delayPos < delayLen always holds, so the conditional reset
		// computes the same index as the reference's modulo.
		delay[delayPos] = float32(in)
		delayPos++
		if delayPos == delayLen {
			delayPos = 0
		}
		delayed := float64(delay[delayPos])

		d.output[i] = flushRound(flush, delayed*gainLin)
	}
	d.env = env
	d.delayPos = delayPos
	d.reduction = gainDB
}
