package webaudio

import "fmt"

// ScriptProcessorNode buffers its input and invokes OnAudioProcess each time
// bufferSize frames have accumulated, passing the input buffer — the
// (deprecated but fingerprint-beloved) audio/main-thread bridge. The classic
// FFT vector reads analyser data from inside this callback; in a live
// browser, *which* callback invocation the script samples depends on
// scheduling, which is where capture-offset fickleness enters.
type ScriptProcessorNode struct {
	nodeBase
	bufferSize int
	buf        []float32
	fill       int
	// OnAudioProcess, if non-nil, receives each completed input buffer. The
	// slice is reused between events; callees must copy what they keep.
	OnAudioProcess func(event AudioProcessEvent)
	events         int
}

// AudioProcessEvent is the payload delivered to OnAudioProcess.
type AudioProcessEvent struct {
	// InputBuffer holds bufferSize input frames (reused between events).
	InputBuffer []float32
	// PlaybackTime is the context time of the buffer start, seconds.
	PlaybackTime float64
	// EventIndex counts delivered events, starting at 0.
	EventIndex int
}

// NewScriptProcessor creates a script processor. bufferSize must be a power
// of two in [256, 16384]; fingerprint scripts use 4096.
func (c *Context) NewScriptProcessor(bufferSize int) (*ScriptProcessorNode, error) {
	if bufferSize < 256 || bufferSize > 16384 || bufferSize&(bufferSize-1) != 0 {
		return nil, fmt.Errorf("webaudio: invalid ScriptProcessor bufferSize %d", bufferSize)
	}
	s := &ScriptProcessorNode{
		nodeBase:   nodeBase{ctx: c, label: "scriptprocessor"},
		bufferSize: bufferSize,
		buf:        make([]float32, bufferSize),
	}
	c.register(s)
	return s, nil
}

// Events returns how many audioprocess events have fired.
func (s *ScriptProcessorNode) Events() int { return s.events }

func (s *ScriptProcessorNode) process(frameTime int64) {
	tr := s.ctx.traits
	for i := 0; i < RenderQuantum; i++ {
		v := tr.round32(s.sumInputs(i))
		s.output[i] = v // pass-through
		s.buf[s.fill] = v
		s.fill++
		if s.fill == s.bufferSize {
			s.fill = 0
			if s.OnAudioProcess != nil {
				start := frameTime + int64(i) + 1 - int64(s.bufferSize)
				tr.Farble.farbleInPlace(s.buf)
				s.OnAudioProcess(AudioProcessEvent{
					InputBuffer:  s.buf,
					PlaybackTime: float64(start) / s.ctx.sampleRate,
					EventIndex:   s.events,
				})
			}
			s.events++
		}
	}
}

// processBlock is the script-processor block kernel: the same pass-through,
// accumulate, and event-dispatch logic over the pre-mixed block. Event
// timing is unchanged because bufferSize is a multiple of RenderQuantum.
func (s *ScriptProcessorNode) processBlock(frameTime int64, in *[RenderQuantum]float64) {
	tr := s.ctx.traits
	flush := tr.FlushDenormals
	for i := 0; i < RenderQuantum; i++ {
		v := flushRound(flush, in[i])
		s.output[i] = v
		s.buf[s.fill] = v
		s.fill++
		if s.fill == s.bufferSize {
			s.fill = 0
			if s.OnAudioProcess != nil {
				start := frameTime + int64(i) + 1 - int64(s.bufferSize)
				tr.Farble.farbleInPlace(s.buf)
				s.OnAudioProcess(AudioProcessEvent{
					InputBuffer:  s.buf,
					PlaybackTime: float64(start) / s.ctx.sampleRate,
					EventIndex:   s.events,
				})
			}
			s.events++
		}
	}
}
