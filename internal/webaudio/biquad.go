package webaudio

import (
	"fmt"
	"math"
)

// BiquadFilterType enumerates the BiquadFilterNode responses.
type BiquadFilterType int

// The spec's eight filter types.
const (
	Lowpass BiquadFilterType = iota
	Highpass
	Bandpass
	Notch
	Allpass
	Peaking
	Lowshelf
	Highshelf
)

// String returns the Web Audio API name of the filter type.
func (t BiquadFilterType) String() string {
	switch t {
	case Lowpass:
		return "lowpass"
	case Highpass:
		return "highpass"
	case Bandpass:
		return "bandpass"
	case Notch:
		return "notch"
	case Allpass:
		return "allpass"
	case Peaking:
		return "peaking"
	case Lowshelf:
		return "lowshelf"
	case Highshelf:
		return "highshelf"
	}
	return fmt.Sprintf("BiquadFilterType(%d)", int(t))
}

// BiquadFilterNode is the spec's second-order IIR filter with Audio EQ
// Cookbook coefficients. Several fingerprinting-script variants chain an
// oscillator through a biquad before analysis; its trigonometric
// coefficient computation runs through the platform kernel, making it
// another platform-identifying stage.
type BiquadFilterNode struct {
	nodeBase
	// Frequency is the filter's corner/center frequency in Hz.
	Frequency *AudioParam
	// Q is the quality factor (resonance).
	Q *AudioParam
	// Gain is the boost/cut in dB (peaking and shelf types only).
	Gain *AudioParam
	// Detune offsets Frequency in cents.
	Detune *AudioParam

	typ BiquadFilterType
	// Direct-form-1 state.
	x1, x2, y1, y2 float64
	// Cached coefficients and the parameter snapshot they were built for.
	b0, b1, b2, a1, a2 float64
	cf, cq, cg         float64
	haveCoeffs         bool
}

// NewBiquadFilter creates a filter with spec defaults (lowpass, 350 Hz,
// Q = 1, gain 0 dB).
func (c *Context) NewBiquadFilter(typ BiquadFilterType) *BiquadFilterNode {
	b := &BiquadFilterNode{nodeBase: nodeBase{ctx: c, label: "biquad:" + typ.String()}, typ: typ}
	b.Frequency = newParam(c, "frequency", 350, 10, c.sampleRate/2)
	b.Q = newParam(c, "Q", 1, 0.0001, 1000)
	b.Gain = newParam(c, "gain", 0, -40, 40)
	b.Detune = newParam(c, "detune", 0, -153600, 153600)
	c.register(b)
	return b
}

func (b *BiquadFilterNode) params() []*AudioParam {
	return []*AudioParam{b.Frequency, b.Q, b.Gain, b.Detune}
}

// computeCoefficients evaluates the Audio EQ Cookbook formulas through the
// platform kernel.
func (b *BiquadFilterNode) computeCoefficients(freq, q, gainDB float64) {
	k := b.ctx.traits.Kernel
	sr := b.ctx.sampleRate
	if freq < 10 {
		freq = 10
	}
	if freq > sr/2 {
		freq = sr / 2
	}
	w0 := 2 * math.Pi * freq / sr
	sinw0 := k.Sin(w0)
	cosw0 := k.Sin(w0 + math.Pi/2)
	if q < 1e-4 {
		q = 1e-4
	}
	alpha := sinw0 / (2 * q)
	a := k.Pow(10, gainDB/40) // amplitude for peaking/shelf

	var b0, b1, b2, a0, a1, a2 float64
	switch b.typ {
	case Lowpass:
		b0 = (1 - cosw0) / 2
		b1 = 1 - cosw0
		b2 = (1 - cosw0) / 2
		a0 = 1 + alpha
		a1 = -2 * cosw0
		a2 = 1 - alpha
	case Highpass:
		b0 = (1 + cosw0) / 2
		b1 = -(1 + cosw0)
		b2 = (1 + cosw0) / 2
		a0 = 1 + alpha
		a1 = -2 * cosw0
		a2 = 1 - alpha
	case Bandpass:
		b0 = alpha
		b1 = 0
		b2 = -alpha
		a0 = 1 + alpha
		a1 = -2 * cosw0
		a2 = 1 - alpha
	case Notch:
		b0 = 1
		b1 = -2 * cosw0
		b2 = 1
		a0 = 1 + alpha
		a1 = -2 * cosw0
		a2 = 1 - alpha
	case Allpass:
		b0 = 1 - alpha
		b1 = -2 * cosw0
		b2 = 1 + alpha
		a0 = 1 + alpha
		a1 = -2 * cosw0
		a2 = 1 - alpha
	case Peaking:
		b0 = 1 + alpha*a
		b1 = -2 * cosw0
		b2 = 1 - alpha*a
		a0 = 1 + alpha/a
		a1 = -2 * cosw0
		a2 = 1 - alpha/a
	case Lowshelf:
		sqrtA := k.Pow(a, 0.5)
		b0 = a * ((a + 1) - (a-1)*cosw0 + 2*sqrtA*alpha)
		b1 = 2 * a * ((a - 1) - (a+1)*cosw0)
		b2 = a * ((a + 1) - (a-1)*cosw0 - 2*sqrtA*alpha)
		a0 = (a + 1) + (a-1)*cosw0 + 2*sqrtA*alpha
		a1 = -2 * ((a - 1) + (a+1)*cosw0)
		a2 = (a + 1) + (a-1)*cosw0 - 2*sqrtA*alpha
	case Highshelf:
		sqrtA := k.Pow(a, 0.5)
		b0 = a * ((a + 1) + (a-1)*cosw0 + 2*sqrtA*alpha)
		b1 = -2 * a * ((a - 1) + (a+1)*cosw0)
		b2 = a * ((a + 1) + (a-1)*cosw0 - 2*sqrtA*alpha)
		a0 = (a + 1) - (a-1)*cosw0 + 2*sqrtA*alpha
		a1 = 2 * ((a - 1) - (a+1)*cosw0)
		a2 = (a + 1) - (a-1)*cosw0 - 2*sqrtA*alpha
	}
	inv := 1 / a0
	b.b0, b.b1, b.b2 = b0*inv, b1*inv, b2*inv
	b.a1, b.a2 = a1*inv, a2*inv
	b.cf, b.cq, b.cg = freq, q, gainDB
	b.haveCoeffs = true
}

func (b *BiquadFilterNode) process(frameTime int64) {
	tr := b.ctx.traits
	b.updateCoefficients(frameTime)
	for i := 0; i < RenderQuantum; i++ {
		x := b.sumInputs(i)
		y := b.b0*x + b.b1*b.x1 + b.b2*b.x2 - b.a1*b.y1 - b.a2*b.y2
		b.x2, b.x1 = b.x1, x
		b.y2, b.y1 = b.y1, y
		b.output[i] = tr.round32(y)
	}
}

// updateCoefficients refreshes the cached coefficients from the per-quantum
// parameter snapshot (biquad params are k-rate by construction: the spec
// samples them once per render quantum).
func (b *BiquadFilterNode) updateCoefficients(frameTime int64) {
	freq := b.Frequency.sampleAt(frameTime, 0)
	if det := b.Detune.sampleAt(frameTime, 0); det != 0 {
		freq *= b.ctx.traits.Kernel.Pow(2, det/1200)
	}
	q := b.Q.sampleAt(frameTime, 0)
	g := b.Gain.sampleAt(frameTime, 0)
	if !b.haveCoeffs || freq != b.cf || q != b.cq || g != b.cg {
		b.computeCoefficients(freq, q, g)
	}
}

// processBlock is the biquad block kernel: direct-form-1 over the pre-mixed
// block with filter state in locals, a tight loop the compiler can keep in
// registers.
func (b *BiquadFilterNode) processBlock(frameTime int64, in *[RenderQuantum]float64) {
	flush := b.ctx.traits.FlushDenormals
	b.updateCoefficients(frameTime)
	b0, b1, b2, a1, a2 := b.b0, b.b1, b.b2, b.a1, b.a2
	x1, x2, y1, y2 := b.x1, b.x2, b.y1, b.y2
	for i := 0; i < RenderQuantum; i++ {
		x := in[i]
		y := b0*x + b1*x1 + b2*x2 - a1*y1 - a2*y2
		x2, x1 = x1, x
		y2, y1 = y1, y
		b.output[i] = flushRound(flush, y)
	}
	b.x1, b.x2, b.y1, b.y2 = x1, x2, y1, y2
}
