package hashx

import (
	"fmt"
	"testing"
	"testing/quick"
)

// Reference vectors from the canonical MurmurHash3 test suites (Appleby's
// C++ reference via the widely used Go/Python ports).
func TestSum128KnownVectors(t *testing.T) {
	cases := []struct {
		in     string
		seed   uint64
		h1, h2 uint64
	}{
		{"", 0, 0x0000000000000000, 0x0000000000000000},
		{"hello", 0, 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
		{"hello, world", 0, 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
		{"19 Jan 2038 at 3:14:07 AM", 0, 0xb89e5988b737affc, 0x664fc2950231b2cb},
		{"The quick brown fox jumps over the lazy dog.", 0, 0xcd99481f9ee902c9, 0x695da1a38987b6e7},
	}
	for _, c := range cases {
		h1, h2 := Sum128([]byte(c.in), c.seed)
		if h1 != c.h1 || h2 != c.h2 {
			t.Errorf("Sum128(%q, %d) = (%#x, %#x), want (%#x, %#x)",
				c.in, c.seed, h1, h2, c.h1, c.h2)
		}
	}
}

func TestHexDigestFormat(t *testing.T) {
	d := HexDigest([]byte("hello"), 0)
	if len(d) != 32 {
		t.Fatalf("digest length %d", len(d))
	}
	if d != "cbd8a7b341bd9b025b1e906a48ae1d19" {
		t.Errorf("digest = %s", d)
	}
}

// TestTailLengths exercises every tail branch (1..16 bytes + blocks).
func TestTailLengths(t *testing.T) {
	seen := map[string]int{}
	for n := 0; n <= 48; n++ {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 7)
		}
		d := HexDigest(data, 0)
		if prev, dup := seen[d]; dup {
			t.Errorf("lengths %d and %d collide", prev, n)
		}
		seen[d] = n
	}
}

// TestSeedSeparation: different seeds separate identical inputs.
func TestSeedSeparation(t *testing.T) {
	f := func(data []byte, s1, s2 uint16) bool {
		if s1 == s2 {
			return true
		}
		a1, a2 := Sum128(data, uint64(s1))
		b1, b2 := Sum128(data, uint64(s2))
		return a1 != b1 || a2 != b2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAvalanche: flipping one input bit flips roughly half the output bits.
func TestAvalanche(t *testing.T) {
	base := []byte("fingerprint-avalanche-probe-data!")
	b1, b2 := Sum128(base, 0)
	totalFlips := 0
	trials := 0
	for byteIdx := 0; byteIdx < len(base); byteIdx += 3 {
		for bit := 0; bit < 8; bit += 3 {
			mut := append([]byte(nil), base...)
			mut[byteIdx] ^= 1 << bit
			m1, m2 := Sum128(mut, 0)
			flips := popcount64(b1^m1) + popcount64(b2^m2)
			totalFlips += flips
			trials++
		}
	}
	mean := float64(totalFlips) / float64(trials)
	if mean < 48 || mean > 80 { // expect ≈ 64 of 128
		t.Errorf("avalanche mean flips = %.1f, want ≈ 64", mean)
	}
}

func popcount64(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestDeterminism(t *testing.T) {
	for i := 0; i < 10; i++ {
		data := []byte(fmt.Sprintf("input-%d", i))
		a := HexDigest(data, 31)
		b := HexDigest(data, 31)
		if a != b {
			t.Fatal("nondeterministic digest")
		}
	}
}

func BenchmarkSum128_4KiB(b *testing.B) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum128(data, 0)
	}
}
