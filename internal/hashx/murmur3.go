// Package hashx implements MurmurHash3 x64/128 — the non-cryptographic hash
// FingerprintJS computes browser fingerprints with. The paper's vectors
// (taken from the FingerprintJS lineage) hash buffers with it in the wild;
// this port lets the vectors package produce wire-compatible fingerprint
// strings alongside the default SHA-256.
package hashx

import (
	"encoding/binary"
	"encoding/hex"
	"math/bits"
)

const (
	c1 = 0x87c37b91114253d5
	c2 = 0x4cf5ad432745937f
)

// Sum128 returns the 128-bit MurmurHash3 (x64 variant) of data with the
// given seed, as two 64-bit halves — a faithful port of Austin Appleby's
// MurmurHash3_x64_128.
func Sum128(data []byte, seed uint64) (h1, h2 uint64) {
	h1, h2 = seed, seed
	n := len(data)

	// Body: 16-byte blocks.
	blocks := n / 16
	for b := 0; b < blocks; b++ {
		k1 := binary.LittleEndian.Uint64(data[b*16:])
		k2 := binary.LittleEndian.Uint64(data[b*16+8:])

		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
		h1 = bits.RotateLeft64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
		h2 = bits.RotateLeft64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	// Tail.
	tail := data[blocks*16:]
	var k1, k2 uint64
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = bits.RotateLeft64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = bits.RotateLeft64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	// Finalization.
	h1 ^= uint64(n)
	h2 ^= uint64(n)
	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1
	return h1, h2
}

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}

// HexDigest returns the canonical 32-hex-character digest (big-endian
// rendering of the two halves, as FingerprintJS prints it).
func HexDigest(data []byte, seed uint64) string {
	h1, h2 := Sum128(data, seed)
	var out [16]byte
	binary.BigEndian.PutUint64(out[:8], h1)
	binary.BigEndian.PutUint64(out[8:], h2)
	return hex.EncodeToString(out[:])
}
