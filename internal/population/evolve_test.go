package population

import (
	"math"
	"math/rand"
	"testing"
)

// TestChurnStepDeterminism: the same seed must produce the identical event
// sequence and identical device mutations.
func TestChurnStepDeterminism(t *testing.T) {
	model := DefaultChurn()
	run := func() ([]ChurnEvent, []string) {
		devs := Sample(Config{Seed: 7, N: 20})
		rng := rand.New(rand.NewSource(99))
		var events []ChurnEvent
		var stacks []string
		for epoch := 0; epoch < 10; epoch++ {
			for _, d := range devs {
				events = append(events, model.Step(rng, d))
				stacks = append(stacks, d.AudioStackKey())
			}
		}
		return events, stacks
	}
	e1, s1 := run()
	e2, s2 := run()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d differs between identical runs: %+v vs %+v", i, e1[i], e2[i])
		}
		if s1[i] != s2[i] {
			t.Fatalf("stack key %d differs between identical runs", i)
		}
	}
}

// TestChurnRateCalibration: over a large population the observed upgrade
// frequencies must land within tolerance of the configured rates, and
// stack shifts must occur but only on a fraction of upgrades.
func TestChurnRateCalibration(t *testing.T) {
	model := ChurnModel{BrowserUpgradeProb: 0.12, OSUpgradeProb: 0.05}
	devs := Sample(Config{Seed: 3, N: 1500})
	rng := rand.New(rand.NewSource(4))
	const epochs = 12
	var browser, os, shifts, steps int
	for epoch := 0; epoch < epochs; epoch++ {
		for _, d := range devs {
			ev := model.Step(rng, d)
			steps++
			if ev.BrowserUpgrade {
				browser++
			}
			if ev.OSUpgrade {
				os++
			}
			if ev.StackShift {
				shifts++
			}
		}
	}
	browserRate := float64(browser) / float64(steps)
	if math.Abs(browserRate-model.BrowserUpgradeProb) > 0.015 {
		t.Errorf("browser upgrade rate = %.4f, configured %.2f", browserRate, model.BrowserUpgradeProb)
	}
	// OS upgrades re-sample the release distribution, so a draw can land on
	// the same version; the observed rate is bounded by the configured one.
	osRate := float64(os) / float64(steps)
	if osRate > model.OSUpgradeProb+0.01 || osRate < model.OSUpgradeProb/3 {
		t.Errorf("os upgrade rate = %.4f, configured %.2f", osRate, model.OSUpgradeProb)
	}
	if shifts == 0 {
		t.Error("no stack shifts over 18k churn steps; upgrades never crossed a DSP revision cut")
	}
	if shifts >= browser+os {
		t.Errorf("shifts (%d) >= upgrade events (%d); most upgrades must keep the stack", shifts, browser+os)
	}
}

// TestChurnZeroModel: the zero model never mutates a device.
func TestChurnZeroModel(t *testing.T) {
	var model ChurnModel
	if !model.IsZero() {
		t.Fatal("zero model not IsZero")
	}
	devs := Sample(Config{Seed: 11, N: 50})
	rng := rand.New(rand.NewSource(1))
	for _, d := range devs {
		before := d.AudioStackKey()
		for i := 0; i < 5; i++ {
			if ev := model.Step(rng, d); ev != (ChurnEvent{}) {
				t.Fatalf("zero model produced event %+v", ev)
			}
		}
		if d.AudioStackKey() != before {
			t.Fatal("zero model shifted a stack key")
		}
	}
}
