// Package population samples simulated study populations whose demographic
// mix matches the paper's §2.3: 2093 participants over 57 countries (US,
// India, Brazil, Italy each ≥ 100), 90.4% Chromium-family browsers and 9.6%
// Firefox, and an OS mix of Windows 78.5%, macOS 9.4%, Android 6.9%, Linux
// 5.2% — plus the §5 follow-up population (528 users, 74% Windows/Chrome,
// Table 5's platform mix).
package population

import (
	"fmt"
	"math/rand"

	"repro/internal/platform"
)

// Mix parameterizes the OS and per-OS browser distribution of a population.
type Mix struct {
	// OS maps each family to its sampling weight.
	OS map[platform.OSFamily]float64
	// Browser maps each family to its browser weights.
	Browser map[platform.OSFamily]map[platform.Browser]float64
}

// MainStudyMix reproduces §2.3's demographics. The per-OS browser weights
// are chosen so the Firefox marginal lands at 9.6%.
func MainStudyMix() Mix {
	return Mix{
		OS: map[platform.OSFamily]float64{
			platform.Windows: 0.785,
			platform.MacOS:   0.094,
			platform.Android: 0.069,
			platform.Linux:   0.052,
		},
		Browser: map[platform.OSFamily]map[platform.Browser]float64{
			platform.Windows: {
				platform.Chrome: 0.795, platform.Edge: 0.075,
				platform.Firefox: 0.095, platform.Opera: 0.025,
				platform.Yandex: 0.010,
			},
			platform.MacOS: {
				platform.Chrome: 0.85, platform.Firefox: 0.12, platform.Opera: 0.03,
			},
			platform.Android: {
				platform.Chrome: 0.72, platform.SamsungInternet: 0.22,
				platform.Silk: 0.04, platform.Yandex: 0.02,
			},
			platform.Linux: {
				platform.Chrome: 0.52, platform.Firefox: 0.42, platform.Opera: 0.06,
			},
		},
	}
}

// FollowUpMix reproduces the §5 follow-up study's platform shares
// (Table 5: Windows/Chrome 74%, macOS/Chrome 5.7%, Windows/Edge 5.1%,
// Windows/Firefox 4.7%, Android/Chrome 4%).
func FollowUpMix() Mix {
	return Mix{
		OS: map[platform.OSFamily]float64{
			platform.Windows: 0.85,
			platform.MacOS:   0.07,
			platform.Android: 0.05,
			platform.Linux:   0.03,
		},
		Browser: map[platform.OSFamily]map[platform.Browser]float64{
			platform.Windows: {
				platform.Chrome: 0.875, platform.Edge: 0.06,
				platform.Firefox: 0.055, platform.Opera: 0.01,
			},
			platform.MacOS: {
				platform.Chrome: 0.82, platform.Firefox: 0.15, platform.Opera: 0.03,
			},
			platform.Android: {
				platform.Chrome: 0.80, platform.SamsungInternet: 0.20,
			},
			platform.Linux: {
				platform.Chrome: 0.60, platform.Firefox: 0.40,
			},
		},
	}
}

// Config controls a population draw.
type Config struct {
	// Seed is the master seed; equal configs sample identical populations.
	Seed int64
	// N is the number of participants.
	N int
	// Mix selects the demographic mix; zero value means MainStudyMix.
	Mix Mix
	// IDPrefix prefixes participant IDs (default "u").
	IDPrefix string
	// Era selects the audio-stack generation ("" / "2021" = study window,
	// "2016" = the §6 pre-standardization comparison era).
	Era string
}

// Sample draws a population of N devices.
func Sample(cfg Config) []*platform.Device {
	if cfg.Mix.OS == nil {
		cfg.Mix = MainStudyMix()
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "u"
	}
	master := rand.New(rand.NewSource(cfg.Seed))
	devices := make([]*platform.Device, cfg.N)
	for i := range devices {
		devices[i] = sampleDevice(rand.New(rand.NewSource(master.Int63())), cfg.Mix,
			fmt.Sprintf("%s%05d", cfg.IDPrefix, i))
		devices[i].Era = cfg.Era
	}
	return devices
}

func sampleDevice(rng *rand.Rand, mix Mix, id string) *platform.Device {
	d := &platform.Device{ID: id}
	d.OS = sampleOS(rng, mix.OS)
	d.Browser = sampleBrowser(rng, mix.Browser[d.OS])
	d.Country = platform.SampleCountry(rng)
	d.OSVersion = platform.SampleOSVersion(rng, d.OS)
	d.Major, d.Build, d.Patch = platform.SampleBrowserVersion(rng, d.Browser)
	d.AudioHW, d.Model = platform.SampleAudioHardware(rng, d.OS)
	d.SampleRate = platform.SampleRateFor(rng, d.OS)
	d.GPU = platform.GPUFor(rng, d.OS, d.AudioHW)
	d.SIMD = platform.SIMDFor(d.OS, d.AudioHW, d.GPU)
	if rng.Float64() < 0.05 {
		d.GPUDriverQuirk = "drv-" + id
	}
	d.FontPacks = platform.SampleFontPacks(rng)
	d.Load = platform.SampleLoad(rng)
	return d
}

func sampleOS(rng *rand.Rand, weights map[platform.OSFamily]float64) platform.OSFamily {
	order := []platform.OSFamily{platform.Windows, platform.MacOS, platform.Android, platform.Linux}
	var total float64
	for _, os := range order {
		total += weights[os]
	}
	f := rng.Float64() * total
	for _, os := range order {
		if f < weights[os] {
			return os
		}
		f -= weights[os]
	}
	return order[len(order)-1]
}

func sampleBrowser(rng *rand.Rand, weights map[platform.Browser]float64) platform.Browser {
	order := []platform.Browser{
		platform.Chrome, platform.Edge, platform.Opera,
		platform.SamsungInternet, platform.Silk, platform.Yandex, platform.Firefox,
	}
	var total float64
	for _, b := range order {
		total += weights[b]
	}
	if total == 0 {
		return platform.Chrome
	}
	f := rng.Float64() * total
	for _, b := range order {
		if f < weights[b] {
			return b
		}
		f -= weights[b]
	}
	return platform.Chrome
}
