package population

import (
	"math/rand"

	"repro/internal/platform"
)

// Time evolution of a sampled population: between observation epochs,
// devices occasionally upgrade their browser's major version or move to a
// new OS release. Either event can shift the DSP-kernel parameter set the
// audio stack exposes (FFT-library revision cuts, mixing behaviour — see
// platform.Device.AudioTraits), which is exactly the churn FP-STALKER-style
// longitudinal tracking and the verification workload have to ride through.

// ChurnModel parameterizes per-device per-epoch upgrade events. The zero
// value applies no churn.
type ChurnModel struct {
	// BrowserUpgradeProb is the per-epoch probability of a browser major
	// upgrade (Major++, which can cross an FFT-revision cut).
	BrowserUpgradeProb float64
	// OSUpgradeProb is the per-epoch probability of an OS release change
	// (re-sampled OS version string; affects the UA surface and, in the
	// 2016 era, OS-conditioned kernels).
	OSUpgradeProb float64
}

// DefaultChurn returns rates calibrated to the ~6-week release trains of
// evergreen browsers against weekly observation epochs: roughly one browser
// major upgrade every ten epochs and an OS release a third as often.
func DefaultChurn() ChurnModel {
	return ChurnModel{BrowserUpgradeProb: 0.10, OSUpgradeProb: 0.03}
}

// IsZero reports whether the model applies no churn.
func (m ChurnModel) IsZero() bool {
	return m.BrowserUpgradeProb == 0 && m.OSUpgradeProb == 0
}

// ChurnEvent records what happened to one device in one epoch step.
type ChurnEvent struct {
	// BrowserUpgrade: the browser's major version advanced this epoch.
	BrowserUpgrade bool
	// OSUpgrade: the device moved to a different OS release this epoch.
	OSUpgrade bool
	// StackShift: an upgrade changed the device's audio stack key, so its
	// elementary fingerprints shift from this epoch on.
	StackShift bool
}

// Step advances d by one epoch under the model, mutating it in place, and
// reports what happened. It always consumes exactly two rng draws (plus the
// draws of an OS re-sample when one fires), so a device's draw sequence is
// independent of which branches were taken before it.
func (m ChurnModel) Step(rng *rand.Rand, d *platform.Device) ChurnEvent {
	var ev ChurnEvent
	before := d.AudioStackKey()
	browserDraw := rng.Float64()
	osDraw := rng.Float64()
	if browserDraw < m.BrowserUpgradeProb {
		d.Major++
		ev.BrowserUpgrade = true
	}
	if osDraw < m.OSUpgradeProb {
		was := d.OSVersion
		d.OSVersion = platform.SampleOSVersion(rng, d.OS)
		ev.OSUpgrade = d.OSVersion != was
	}
	if (ev.BrowserUpgrade || ev.OSUpgrade) && d.AudioStackKey() != before {
		ev.StackShift = true
	}
	return ev
}
