package population

import (
	"testing"

	"repro/internal/diversity"
	"repro/internal/platform"
)

// drawMain samples the main-study population (N=2093) deterministically.
func drawMain(t *testing.T) []*platform.Device {
	t.Helper()
	return Sample(Config{Seed: 20220325, N: 2093})
}

// TestDemographicsMatchPaper checks the §2.3 marginals: browser-engine split
// 90.4/9.6 and the OS mix, within sampling tolerance.
func TestDemographicsMatchPaper(t *testing.T) {
	devs := drawMain(t)
	n := float64(len(devs))
	osCount := map[platform.OSFamily]int{}
	firefox := 0
	countries := map[string]int{}
	for _, d := range devs {
		osCount[d.OS]++
		if d.Browser == platform.Firefox {
			firefox++
		}
		countries[d.Country]++
	}
	checks := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"Firefox share", float64(firefox) / n, 0.096, 0.02},
		{"Windows share", float64(osCount[platform.Windows]) / n, 0.785, 0.03},
		{"macOS share", float64(osCount[platform.MacOS]) / n, 0.094, 0.02},
		{"Android share", float64(osCount[platform.Android]) / n, 0.069, 0.02},
		{"Linux share", float64(osCount[platform.Linux]) / n, 0.052, 0.02},
	}
	for _, c := range checks {
		if c.got < c.want-c.tol || c.got > c.want+c.tol {
			t.Errorf("%s = %.3f, want %.3f ± %.3f", c.name, c.got, c.want, c.tol)
		}
	}
	// Country coverage: many countries, top-4 each ≥ 100 users (paper).
	if len(countries) < 40 {
		t.Errorf("only %d countries represented, want ≥ 40", len(countries))
	}
	for _, cc := range []string{"US", "IN", "BR", "IT"} {
		if countries[cc] < 100 {
			t.Errorf("country %s has %d users, want ≥ 100", cc, countries[cc])
		}
	}
}

// TestSurfaceDiversityCalibration reports and bounds the diversity of the
// non-audio surfaces against the paper's Table 3 and the audio *stack-class*
// counts that upper-bound Table 2 (collation makes fingerprint classes equal
// stack classes). Tolerances are generous — this is a different (simulated)
// population — but the ordering and rough magnitudes must match.
func TestSurfaceDiversityCalibration(t *testing.T) {
	devs := drawMain(t)
	ua := make([]string, len(devs))
	canvas := make([]string, len(devs))
	fonts := make([]string, len(devs))
	dcStack := make([]string, len(devs))
	audioStack := make([]string, len(devs))
	for i, d := range devs {
		ua[i] = d.UserAgent()
		canvas[i] = d.CanvasFingerprint()
		fonts[i] = d.FontsFingerprint()
		dcStack[i] = d.DCStackKey()
		audioStack[i] = d.AudioStackKey()
	}
	report := func(name string, s diversity.Summary, wantDistinct int, wantEntropy float64) {
		t.Logf("%-12s distinct=%4d unique=%4d entropy=%.3f norm=%.3f (paper: distinct≈%d, entropy≈%.3f)",
			name, s.Distinct, s.Unique, s.EntropyBits, s.Normalized, wantDistinct, wantEntropy)
	}
	sUA := diversity.Summarize(ua)
	sCanvas := diversity.Summarize(canvas)
	sFonts := diversity.Summarize(fonts)
	sDC := diversity.Summarize(dcStack)
	sAudio := diversity.Summarize(audioStack)
	report("UA", sUA, 427, 6.466)
	report("Canvas", sCanvas, 352, 6.109)
	report("Fonts", sFonts, 690, 7.146)
	report("DC-stack", sDC, 59, 1.935)
	report("Audio-stack", sAudio, 95, 2.803)

	// Paper-shape assertions (generous bands).
	if sDC.Distinct < 40 || sDC.Distinct > 80 {
		t.Errorf("DC stack classes = %d, want ≈ 59", sDC.Distinct)
	}
	if sAudio.Distinct < 70 || sAudio.Distinct > 145 {
		t.Errorf("audio stack classes = %d, want ≈ 95", sAudio.Distinct)
	}
	if sCanvas.Distinct < 250 || sCanvas.Distinct > 460 {
		t.Errorf("canvas distinct = %d, want ≈ 352", sCanvas.Distinct)
	}
	if sUA.Distinct < 300 || sUA.Distinct > 560 {
		t.Errorf("UA distinct = %d, want ≈ 427", sUA.Distinct)
	}
	if sFonts.Distinct < 520 || sFonts.Distinct > 860 {
		t.Errorf("fonts distinct = %d, want ≈ 690", sFonts.Distinct)
	}
	// Ordering: audio ≪ canvas < UA < fonts in entropy (Tables 2–3).
	if !(sAudio.EntropyBits < sCanvas.EntropyBits &&
		sCanvas.EntropyBits < sUA.EntropyBits &&
		sUA.EntropyBits < sFonts.EntropyBits) {
		t.Errorf("entropy ordering violated: audio=%.2f canvas=%.2f ua=%.2f fonts=%.2f",
			sAudio.EntropyBits, sCanvas.EntropyBits, sUA.EntropyBits, sFonts.EntropyBits)
	}
}

// TestFollowUpMathJS reproduces the structure of Tables 4 and 5: few
// Math-JS classes (V8 uniform; Gecko split by version/OS), more DC stack
// classes, with the per-platform pattern (Windows/Chrome: 1 DC & 1 MathJS;
// macOS & Android Chrome: several DC, 1 MathJS; Windows/Firefox: 1 DC,
// several MathJS).
func TestFollowUpMathJS(t *testing.T) {
	devs := Sample(Config{Seed: 20210601, N: 528, Mix: FollowUpMix(), IDPrefix: "f"})
	mathjs := make([]string, len(devs))
	dc := make([]string, len(devs))
	plat := make([]string, len(devs))
	for i, d := range devs {
		mathjs[i] = d.MathJSFingerprint()
		dc[i] = d.DCStackKey()
		plat[i] = d.Platform()
	}
	sM := diversity.Summarize(mathjs)
	sD := diversity.Summarize(dc)
	t.Logf("follow-up: MathJS distinct=%d entropy=%.3f (paper 7, 0.416); DC distinct=%d entropy=%.3f (paper 16, 1.301)",
		sM.Distinct, sM.EntropyBits, sD.Distinct, sD.EntropyBits)
	if sM.Distinct < 4 || sM.Distinct > 12 {
		t.Errorf("MathJS distinct = %d, want ≈ 7", sM.Distinct)
	}
	if sD.Distinct < 10 || sD.Distinct > 34 {
		t.Errorf("DC distinct = %d, want ≈ 16", sD.Distinct)
	}
	if sM.EntropyBits >= sD.EntropyBits {
		t.Errorf("MathJS entropy %.3f ≥ DC entropy %.3f — audio must exceed MathJS",
			sM.EntropyBits, sD.EntropyBits)
	}

	perPlatDC, err := diversity.DistinctPerGroup(plat, dc)
	if err != nil {
		t.Fatal(err)
	}
	perPlatM, err := diversity.DistinctPerGroup(plat, mathjs)
	if err != nil {
		t.Fatal(err)
	}
	sizes := diversity.GroupSizes(plat)
	for _, p := range []string{"Windows/Chrome", "macOS/Chrome", "Windows/Edge", "Windows/Firefox", "Android/Chrome"} {
		t.Logf("platform %-17s users=%3d DC=%d MathJS=%d", p, sizes[p], perPlatDC[p], perPlatM[p])
	}
	if perPlatDC["Windows/Chrome"] != 1 || perPlatM["Windows/Chrome"] != 1 {
		t.Errorf("Windows/Chrome: DC=%d MathJS=%d, want 1/1 (Table 5)",
			perPlatDC["Windows/Chrome"], perPlatM["Windows/Chrome"])
	}
	if perPlatDC["macOS/Chrome"] < 3 {
		t.Errorf("macOS/Chrome DC classes = %d, want ≥ 3 (Table 5: 5)", perPlatDC["macOS/Chrome"])
	}
	if perPlatM["macOS/Chrome"] != 1 {
		t.Errorf("macOS/Chrome MathJS = %d, want 1", perPlatM["macOS/Chrome"])
	}
	if perPlatDC["Android/Chrome"] < 3 {
		t.Errorf("Android/Chrome DC classes = %d, want ≥ 3 (Table 5: 5)", perPlatDC["Android/Chrome"])
	}
	if perPlatM["Windows/Firefox"] < 2 {
		t.Errorf("Windows/Firefox MathJS = %d, want ≥ 2 (Table 5: 3)", perPlatM["Windows/Firefox"])
	}
	if perPlatDC["Windows/Firefox"] != 1 {
		t.Errorf("Windows/Firefox DC = %d, want 1", perPlatDC["Windows/Firefox"])
	}
}

// TestDeterministicSampling: equal configs yield identical populations.
func TestDeterministicSampling(t *testing.T) {
	a := Sample(Config{Seed: 7, N: 50})
	b := Sample(Config{Seed: 7, N: 50})
	for i := range a {
		if a[i].UserAgent() != b[i].UserAgent() || a[i].AudioStackKey() != b[i].AudioStackKey() {
			t.Fatalf("sampling not deterministic at device %d", i)
		}
	}
	c := Sample(Config{Seed: 8, N: 50})
	same := 0
	for i := range a {
		if a[i].AudioStackKey() == c[i].AudioStackKey() {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical populations")
	}
}
