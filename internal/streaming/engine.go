// Package streaming maintains the paper's population analytics
// incrementally, one collection record at a time, so a serving process can
// answer "what is the entropy / cluster structure of the population right
// now" without re-running the batch pipeline.
//
// Per audio vector the engine keeps (a) an online union-find collation
// graph (collate.IntGraph grown via AddUser/EnsureUniverse/Observe), (b)
// an exact cluster-size histogram updated from Observe's merge reports,
// from which the Table 2 diversity row is derived at snapshot time, and
// (c) per-user distinct-fingerprint sets for the Table 1 stability row.
// Non-audio surfaces (canvas, fonts, Math-JS, platform, User-Agent) keep
// exact value→count distributions for the Table 3 rows. Pairwise-vector
// AMI (Figure 5) is the one snapshot-refreshed quantity: it is recomputed
// every Config.AMIRefreshEvery applied records rather than per record.
//
// All maintained state is *exact*, not approximate: on any record prefix
// the engine's labels, cluster counts, distinct counts, and entropy rows
// are bit-identical to loading the same records with
// study.FromRecordsOpts(KeepAllObservations) and running the batch
// analyses — both sides reduce their float summations to
// diversity.SummaryFromCounts. The batch path stays the golden reference;
// the property test in equiv_test.go enforces the equivalence.
package streaming

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collate"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/study"
	"repro/internal/vectors"
)

// ErrClosed is returned by Sync when the engine has been closed.
var ErrClosed = errors.New("streaming: engine closed")

// Config parameterizes New. The zero value is usable.
type Config struct {
	// Registry receives the engine's metrics; nil uses obs.Default.
	Registry *obs.Registry
	// QueueDepth bounds the update queue in batches (default 256). When
	// the queue is full Enqueue blocks — backpressure on the ingestion
	// path rather than unbounded memory growth; the wait is counted on
	// streaming_queue_full_waits_total.
	QueueDepth int
	// AMIRefreshEvery refreshes the pairwise-AMI snapshot every N applied
	// records (default 4096). Negative disables automatic refresh
	// (RefreshAMI can still be called explicitly).
	AMIRefreshEvery int
	// Spans, when non-nil, receives one "streaming.apply" span per applied
	// batch that carried a trace identity (EnqueueContext): the identity
	// rides the queue across the async boundary, so the exported span
	// joins the submitting request's distributed trace.
	Spans obs.SpanExporter
	// MetricLabels is merged into every metric the engine registers — how
	// N shard engines share one registry without their gauges replacing
	// each other (each shard passes {"shard": i}).
	MetricLabels obs.Labels
}

// vecState is one audio vector's incremental analysis state.
type vecState struct {
	g        *collate.IntGraph
	intern   map[string]int32 // hash → dense fingerprint ID
	hist     map[int32]int64  // cluster user-count → number of clusters
	clusters int              // Σ hist values, maintained incrementally
	distinct [][]int32        // per-user sorted distinct fingerprint IDs
	obsCount int64            // observations applied (duplicates included)
}

// Engine is the incremental analysis engine. Create with New; feed it
// accepted submissions with Enqueue (or Bootstrap for recovery replay);
// read consistent snapshots with the methods in snapshot.go. All methods
// are safe for concurrent use.
type Engine struct {
	queueDepth int
	amiEvery   int
	spans      obs.SpanExporter
	metLabels  obs.Labels

	// observer is the watch hook: a func(records int64) invoked after
	// each applied batch, off the state lock. See SetObserver.
	observer atomic.Value

	mu      sync.RWMutex // guards all analysis state below
	users   map[string]int32
	userIDs []string   // dense ID → user ID, first-record order
	surfs   [][]string // surface index → per-user current value
	counts  []map[string]int64
	vecs    []*vecState // indexed in vectors.All order
	vecIdx  map[vectors.ID]int
	records int64 // audio + auxiliary records applied

	amiMu   sync.Mutex
	ami     *AMISnapshot
	lastAMI int64 // records at last refresh

	qmu     sync.Mutex
	qcond   *sync.Cond
	enq     int64 // batches enqueued (or bootstrapped)
	applied int64 // batches fully applied
	closed  bool
	lost    bool // a batch was dropped by shutdown

	queue chan batch
	quit  chan struct{}
	done  chan struct{}

	met engineMetrics
}

// batch is one queued update: the records plus the trace identity of the
// request that produced them (zero when the caller was untraced).
type batch struct {
	recs []storage.Record
	tc   obs.TraceContext
}

// Surface distribution order inside Engine.surfs / Engine.counts. The
// User-Agent follows FromRecords' first-non-empty-wins rule; the others
// follow its last-record-wins rule.
const (
	surfCanvas = iota
	surfFonts
	surfMathJS
	surfPlatform
	surfUA
	numSurfaces
)

var surfaceNames = [numSurfaces]string{"Canvas", "Fonts", "MathJS", "Platform", "User-Agent"}
var surfaceKeys = [numSurfaces]string{study.SurfaceCanvas, study.SurfaceFonts, study.SurfaceMathJS, study.SurfacePlatform, ""}

// New returns a running engine: its consumer goroutine drains the update
// queue until Close.
func New(cfg Config) *Engine {
	e := &Engine{
		queueDepth: cfg.QueueDepth,
		amiEvery:   cfg.AMIRefreshEvery,
		users:      map[string]int32{},
		vecIdx:     make(map[vectors.ID]int, len(vectors.All)),
		quit:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if e.queueDepth <= 0 {
		e.queueDepth = 256
	}
	if e.amiEvery == 0 {
		e.amiEvery = 4096
	}
	e.spans = cfg.Spans
	e.metLabels = cfg.MetricLabels
	e.queue = make(chan batch, e.queueDepth)
	e.qcond = sync.NewCond(&e.qmu)
	e.surfs = make([][]string, numSurfaces)
	e.counts = make([]map[string]int64, numSurfaces)
	for i := range e.counts {
		e.counts[i] = map[string]int64{}
	}
	e.vecs = make([]*vecState, len(vectors.All))
	for i, v := range vectors.All {
		e.vecIdx[v] = i
		e.vecs[i] = &vecState{
			g:      collate.NewIntGraph(0, 0),
			intern: map[string]int32{},
			hist:   map[int32]int64{},
		}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	e.registerMetrics(reg)
	go e.loop()
	return e
}

// Enqueue hands a batch of accepted records to the engine off the caller's
// critical path. It returns immediately while the queue has room and
// blocks (counted) when it is full; after Close the batch is dropped.
func (e *Engine) Enqueue(recs []storage.Record) {
	e.enqueue(batch{recs: recs})
}

// EnqueueContext is Enqueue carrying the caller's trace identity: the
// ingest request's active span rides the queue, and the eventual
// "streaming.apply" span joins its distributed trace (Config.Spans).
func (e *Engine) EnqueueContext(ctx context.Context, recs []storage.Record) {
	b := batch{recs: recs}
	if e.spans != nil {
		b.tc, _ = obs.TraceContextOf(obs.SpanFromContext(ctx))
	}
	e.enqueue(b)
}

func (e *Engine) enqueue(b batch) {
	if len(b.recs) == 0 {
		return
	}
	e.qmu.Lock()
	if e.closed {
		e.qmu.Unlock()
		return
	}
	e.enq++
	e.qmu.Unlock()
	select {
	case e.queue <- b:
		return
	default:
	}
	e.met.queueWaits.Inc()
	select {
	case e.queue <- b:
	case <-e.quit:
		// Shutdown raced the send: the batch is dropped. Account it as
		// applied so Sync waiters observe a consistent ledger, and record
		// the loss so they learn the engine closed under them.
		e.qmu.Lock()
		e.applied++
		e.lost = true
		e.qcond.Broadcast()
		e.qmu.Unlock()
	}
}

// Apply folds a batch synchronously on the caller's goroutine, bypassing
// the queue — the building block of Bootstrap and of benchmarks that
// measure the per-record cost without queue hand-off noise.
func (e *Engine) Apply(recs []storage.Record) {
	e.qmu.Lock()
	e.enq++
	e.qmu.Unlock()
	e.applyBatch(batch{recs: recs})
}

// SetObserver installs fn to run after every applied batch with the total
// applied record count, outside the engine's state lock — the hook the
// watch monitor evaluates its rules from. A nil fn uninstalls. The call
// happens on the applying goroutine (the engine's consumer for Enqueue,
// the caller for Apply/Bootstrap), so a deterministic replay through
// Apply yields a deterministic evaluation sequence.
func (e *Engine) SetObserver(fn func(records int64)) {
	e.observer.Store(observerBox{fn})
}

// observerBox wraps the func so atomic.Value accepts nil installs.
type observerBox struct{ fn func(records int64) }

// Bootstrap replays records synchronously — the restart path after
// storage.Recover() — and refreshes the AMI snapshot once at the end.
func (e *Engine) Bootstrap(recs []storage.Record) {
	e.Apply(recs)
	e.RefreshAMI()
}

// Sync blocks until every batch enqueued so far has been applied, so
// readers observe them. It returns ErrClosed if the engine closed before
// applying everything (already-queued batches are still drained on Close,
// but a batch racing shutdown can be dropped).
func (e *Engine) Sync() error {
	e.qmu.Lock()
	defer e.qmu.Unlock()
	target := e.enq
	for e.applied < target {
		e.qcond.Wait()
	}
	if e.lost {
		return ErrClosed
	}
	return nil
}

// Close stops the consumer after draining already-queued batches. It is
// idempotent and safe to call concurrently with Enqueue.
func (e *Engine) Close() {
	e.qmu.Lock()
	if e.closed {
		e.qmu.Unlock()
		<-e.done
		return
	}
	e.closed = true
	e.qmu.Unlock()
	close(e.quit)
	<-e.done
	// The worker has exited; any batch that slipped into the queue after
	// the drain is lost. Settle the ledger so Sync waiters wake.
	e.qmu.Lock()
	if e.applied < e.enq {
		e.applied = e.enq
		e.lost = true
	}
	e.qcond.Broadcast()
	e.qmu.Unlock()
}

func (e *Engine) loop() {
	defer close(e.done)
	for {
		select {
		case batch := <-e.queue:
			e.applyBatch(batch)
		case <-e.quit:
			for {
				select {
				case batch := <-e.queue:
					e.applyBatch(batch)
				default:
					return
				}
			}
		}
	}
}

func (e *Engine) applyBatch(b batch) {
	var sp *obs.Span
	if e.spans != nil && b.tc.Valid() {
		sp = obs.NewRemoteChild("streaming.apply", b.tc)
	}
	start := time.Now()
	e.mu.Lock()
	for i := range b.recs {
		e.applyLocked(&b.recs[i])
	}
	records := e.records
	e.mu.Unlock()

	e.met.applySeconds.Observe(time.Since(start).Seconds())
	e.met.recordsApplied.Add(int64(len(b.recs)))
	e.met.batchesApplied.Inc()
	if sp != nil {
		sp.SetAttr("records", len(b.recs))
		sp.SetAttr("total_records", records)
		sp.End()
		e.spans.ExportSpan(sp)
	}

	e.qmu.Lock()
	e.applied++
	e.qcond.Broadcast()
	e.qmu.Unlock()

	if ob, _ := e.observer.Load().(observerBox); ob.fn != nil {
		ob.fn(records)
	}

	if e.amiEvery > 0 && records-e.loadLastAMI() >= int64(e.amiEvery) {
		e.RefreshAMI()
	}
}

func (e *Engine) loadLastAMI() int64 {
	e.amiMu.Lock()
	defer e.amiMu.Unlock()
	return e.lastAMI
}

// applyLocked folds one record into the analysis state. Mirrors the
// semantics of study.FromRecordsOpts(KeepAllObservations): users register
// in first-record order (even for records whose vector does not parse),
// User-Agent is first-non-empty-wins, surfaces are last-record-wins, and
// unparseable vectors contribute nothing beyond user/surface bookkeeping.
// O(α(n)) amortized per record plus the distinct-set insertion (bounded by
// a user's distinct fingerprints for one vector — single digits in
// practice, Table 1).
func (e *Engine) applyLocked(r *storage.Record) {
	uid, ok := e.users[r.UserID]
	if !ok {
		uid = int32(len(e.userIDs))
		e.users[r.UserID] = uid
		e.userIDs = append(e.userIDs, r.UserID)
		for s := 0; s < numSurfaces; s++ {
			e.surfs[s] = append(e.surfs[s], "")
			e.counts[s][""]++
		}
		for _, vs := range e.vecs {
			vs.g.AddUser()
			vs.hist[1]++
			vs.clusters++
			vs.distinct = append(vs.distinct, nil)
		}
	}
	if e.surfs[surfUA][uid] == "" && r.UserAgent != "" {
		e.setSurface(surfUA, uid, r.UserAgent)
	}
	for s := 0; s < numSurfaces; s++ {
		if surfaceKeys[s] == "" {
			continue
		}
		if v, ok := r.Surfaces[surfaceKeys[s]]; ok && v != e.surfs[s][uid] {
			e.setSurface(s, uid, v)
		}
	}
	e.records++

	v, err := vectors.ParseID(r.Vector)
	if err != nil {
		return // auxiliary rows ride in Surfaces, as in FromRecords
	}
	vs := e.vecs[e.vecIdx[v]]
	fp, ok := vs.intern[r.Hash]
	if !ok {
		fp = int32(len(vs.intern))
		vs.intern[r.Hash] = fp
		vs.g.EnsureUniverse(int(fp) + 1)
	}
	if a, b, merged := vs.g.Observe(uid, fp); merged && b > 0 {
		vs.hist[a]--
		if vs.hist[a] == 0 {
			delete(vs.hist, a)
		}
		vs.hist[b]--
		if vs.hist[b] == 0 {
			delete(vs.hist, b)
		}
		vs.hist[a+b]++
		vs.clusters--
	}
	insertSorted(&vs.distinct[uid], fp)
	vs.obsCount++
}

func (e *Engine) setSurface(s int, uid int32, v string) {
	old := e.surfs[s][uid]
	e.counts[s][old]--
	if e.counts[s][old] == 0 {
		delete(e.counts[s], old)
	}
	e.counts[s][v]++
	e.surfs[s][uid] = v
}

// insertSorted inserts v into the sorted slice *s if absent.
func insertSorted(s *[]int32, v int32) {
	d := *s
	lo, hi := 0, len(d)
	for lo < hi {
		mid := (lo + hi) / 2
		if d[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d) && d[lo] == v {
		return
	}
	d = append(d, 0)
	copy(d[lo+1:], d[lo:])
	d[lo] = v
	*s = d
}
