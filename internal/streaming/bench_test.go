package streaming_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/streaming"
	"repro/internal/study"
	"repro/internal/vectors"
)

// The acceptance bar for the streaming engine: at the paper's population
// scale (2093 users), folding one more record into the live state must be
// ≥100× cheaper than recomputing the batch analytics from scratch —
// otherwise "incremental" is marketing. make bench-stream runs these and
// emits BENCH_stream.json via cmd/benchjson.

var benchOnce sync.Once
var benchRecs []storage.Record

// benchRecords renders the paper-scale population once per process. Three
// iterations keep the render affordable while the user count — what the
// batch recompute cost scales with — stays at the paper's 2093.
func benchRecords(b *testing.B) []storage.Record {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := study.Run(study.Config{Seed: 20220325, Users: 2093, Iterations: 3, Parallelism: 0})
		if err != nil {
			b.Fatal(err)
		}
		benchRecs = ds.ToRecords(time.Unix(1660000000, 0).UTC())
	})
	return benchRecs
}

// BenchmarkStreamIncrementalApply measures the amortized cost of applying
// one record to an engine already holding the full 2093-user population.
func BenchmarkStreamIncrementalApply(b *testing.B) {
	recs := benchRecords(b)
	eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer eng.Close()
	eng.Bootstrap(recs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Cycling through real records keeps the union-find, interning and
		// distinct-set paths honest (mix of merges, hits and no-ops).
		eng.Apply(recs[i%len(recs) : i%len(recs)+1])
	}
}

// BenchmarkStreamBatchRecompute measures what serving the same answer
// costs without the engine: reload all records and recompute the
// diversity rows, cluster stats and AMI matrix from scratch.
func BenchmarkStreamBatchRecompute(b *testing.B) {
	recs := benchRecords(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := study.FromRecordsOpts(recs, study.LoadOptions{KeepAllObservations: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range vectors.All {
			_ = ds.Labels(v)
			_ = ds.DistinctPerUser(v)
		}
		_ = ds.Table2()
		if _, err := ds.PairwiseVectorAMI(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamSnapshot measures the read path: one full diversity
// snapshot (including the O(users·vectors) Combined row) from live state.
func BenchmarkStreamSnapshot(b *testing.B) {
	recs := benchRecords(b)
	eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer eng.Close()
	eng.Bootstrap(recs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eng.Diversity()
	}
}
