package streaming

import (
	"repro/internal/obs"
	"repro/internal/vectors"
)

// engineMetrics holds the engine's instrumentation on an obs registry.
type engineMetrics struct {
	recordsApplied *obs.Counter
	batchesApplied *obs.Counter
	queueWaits     *obs.Counter
	amiRefreshes   *obs.Counter
	applySeconds   *obs.Histogram
	amiSeconds     *obs.Histogram
}

// lbl merges Config.MetricLabels into a metric's own labels so N engines
// sharing one registry (the sharded router) register distinct series
// instead of clobbering each other's gauges.
func (e *Engine) lbl(extra obs.Labels) obs.Labels {
	if len(e.metLabels) == 0 {
		return extra
	}
	out := make(obs.Labels, len(e.metLabels)+len(extra))
	for k, v := range e.metLabels {
		out[k] = v
	}
	for k, v := range extra {
		out[k] = v
	}
	return out
}

// registerMetrics creates the engine's counters/histograms and installs
// gauge closures reading live state. Gauge reads take the engine's read
// lock, so a /metrics scrape observes a consistent position.
func (e *Engine) registerMetrics(reg *obs.Registry) {
	e.met = engineMetrics{
		recordsApplied: reg.Counter("streaming_records_applied_total",
			"Collection records folded into the streaming engine.", e.lbl(nil)),
		batchesApplied: reg.Counter("streaming_batches_applied_total",
			"Update-queue batches applied by the streaming engine.", e.lbl(nil)),
		queueWaits: reg.Counter("streaming_queue_full_waits_total",
			"Enqueue calls that blocked on a full update queue (backpressure).", e.lbl(nil)),
		amiRefreshes: reg.Counter("streaming_ami_refreshes_total",
			"Pairwise-AMI snapshot recomputations.", e.lbl(nil)),
		applySeconds: reg.Histogram("streaming_apply_seconds",
			"Latency of applying one update batch.", obs.LatencyBuckets(), e.lbl(nil)),
		amiSeconds: reg.Histogram("streaming_ami_refresh_seconds",
			"Latency of one pairwise-AMI snapshot refresh.", obs.LatencyBuckets(), e.lbl(nil)),
	}
	reg.GaugeFunc("streaming_queue_depth",
		"Update batches waiting in the engine queue.", e.lbl(nil),
		func() float64 { return float64(len(e.queue)) })
	reg.GaugeFunc("streaming_users",
		"Users known to the streaming engine.", e.lbl(nil),
		func() float64 {
			e.mu.RLock()
			defer e.mu.RUnlock()
			return float64(len(e.userIDs))
		})
	for i, v := range vectors.All {
		vs := e.vecs[i]
		reg.GaugeFunc("streaming_clusters",
			"Collated fingerprint clusters per vector.",
			e.lbl(obs.Labels{"vector": v.String()}),
			func() float64 {
				e.mu.RLock()
				defer e.mu.RUnlock()
				return float64(vs.clusters)
			})
	}
}
