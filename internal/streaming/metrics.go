package streaming

import (
	"repro/internal/obs"
	"repro/internal/vectors"
)

// engineMetrics holds the engine's instrumentation on an obs registry.
type engineMetrics struct {
	recordsApplied *obs.Counter
	batchesApplied *obs.Counter
	queueWaits     *obs.Counter
	amiRefreshes   *obs.Counter
	applySeconds   *obs.Histogram
	amiSeconds     *obs.Histogram
}

// registerMetrics creates the engine's counters/histograms and installs
// gauge closures reading live state. Gauge reads take the engine's read
// lock, so a /metrics scrape observes a consistent position.
func (e *Engine) registerMetrics(reg *obs.Registry) {
	e.met = engineMetrics{
		recordsApplied: reg.Counter("streaming_records_applied_total",
			"Collection records folded into the streaming engine.", nil),
		batchesApplied: reg.Counter("streaming_batches_applied_total",
			"Update-queue batches applied by the streaming engine.", nil),
		queueWaits: reg.Counter("streaming_queue_full_waits_total",
			"Enqueue calls that blocked on a full update queue (backpressure).", nil),
		amiRefreshes: reg.Counter("streaming_ami_refreshes_total",
			"Pairwise-AMI snapshot recomputations.", nil),
		applySeconds: reg.Histogram("streaming_apply_seconds",
			"Latency of applying one update batch.", obs.LatencyBuckets(), nil),
		amiSeconds: reg.Histogram("streaming_ami_refresh_seconds",
			"Latency of one pairwise-AMI snapshot refresh.", obs.LatencyBuckets(), nil),
	}
	reg.GaugeFunc("streaming_queue_depth",
		"Update batches waiting in the engine queue.", nil,
		func() float64 { return float64(len(e.queue)) })
	reg.GaugeFunc("streaming_users",
		"Users known to the streaming engine.", nil,
		func() float64 {
			e.mu.RLock()
			defer e.mu.RUnlock()
			return float64(len(e.userIDs))
		})
	for i, v := range vectors.All {
		vs := e.vecs[i]
		reg.GaugeFunc("streaming_clusters",
			"Collated fingerprint clusters per vector.",
			obs.Labels{"vector": v.String()},
			func() float64 {
				e.mu.RLock()
				defer e.mu.RUnlock()
				return float64(vs.clusters)
			})
	}
}
