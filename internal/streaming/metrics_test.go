package streaming

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/vectors"
)

// sample returns the current value of name in the registry snapshot, where
// want is a label subset to match, or -1 when absent.
func sample(reg *obs.Registry, name string, want map[string]string) float64 {
	for _, s := range reg.Snapshot() {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	return -1
}

// TestEngineMetricsMoveUnderReplay replays a small stream and checks every
// engine instrument registers and tracks the work: apply counters count
// records and batches, the latency histogram accumulates observations, and
// the live gauges agree with the engine's own snapshots.
func TestEngineMetricsMoveUnderReplay(t *testing.T) {
	reg := obs.NewRegistry()
	eng := New(Config{Registry: reg, AMIRefreshEvery: -1})
	defer eng.Close()

	const users, perUser = 10, 3
	var batches int
	for u := 0; u < users; u++ {
		recs := make([]storage.Record, 0, perUser)
		for i := 0; i < perUser; i++ {
			recs = append(recs, storage.Record{
				UserID: fmt.Sprintf("u%02d", u),
				Vector: vectors.DC.String(),
				Hash:   fmt.Sprintf("%04x", u), // stable per user
			})
		}
		eng.Apply(recs)
		batches++
	}

	if got := sample(reg, "streaming_records_applied_total", nil); got != users*perUser {
		t.Errorf("records_applied_total = %v, want %d", got, users*perUser)
	}
	if got := sample(reg, "streaming_batches_applied_total", nil); got != float64(batches) {
		t.Errorf("batches_applied_total = %v, want %d", got, batches)
	}
	if got := sample(reg, "streaming_apply_seconds_count", nil); got != float64(batches) {
		t.Errorf("apply_seconds histogram count = %v, want %d", got, batches)
	}
	if got := sample(reg, "streaming_users", nil); got != users {
		t.Errorf("streaming_users gauge = %v, want %d", got, users)
	}
	// Ten users with distinct stable hashes: ten DC clusters, and the
	// per-vector gauge must agree with the cluster snapshot.
	var snapDC ClusterRow
	for _, row := range eng.Clusters().Rows {
		if row.Vector == vectors.DC.String() {
			snapDC = row
		}
	}
	if got := sample(reg, "streaming_clusters",
		map[string]string{"vector": vectors.DC.String()}); got != float64(snapDC.Clusters) {
		t.Errorf("streaming_clusters{DC} gauge = %v, snapshot says %d", got, snapDC.Clusters)
	}
	if snapDC.Clusters != users {
		t.Errorf("DC clusters = %d, want %d", snapDC.Clusters, users)
	}
	// Queue drained by Apply's synchronous round trip.
	if got := sample(reg, "streaming_queue_depth", nil); got != 0 {
		t.Errorf("streaming_queue_depth = %v, want 0", got)
	}
	if got := sample(reg, "streaming_queue_full_waits_total", nil); got != 0 {
		t.Errorf("queue_full_waits_total = %v, want 0 for a synchronous replay", got)
	}
}

// TestQueueBackpressureCounted wedges a one-slot queue and checks the
// engine counts the enqueue that had to wait.
func TestQueueBackpressureCounted(t *testing.T) {
	reg := obs.NewRegistry()
	eng := New(Config{Registry: reg, QueueDepth: 1, AMIRefreshEvery: -1})
	defer eng.Close()

	// Flood faster than the applier can drain; with a single-batch queue
	// at least one of these enqueues must block and be counted.
	for i := 0; i < 200; i++ {
		eng.Enqueue([]storage.Record{{
			UserID: fmt.Sprintf("u%03d", i),
			Vector: vectors.DC.String(),
			Hash:   fmt.Sprintf("%06x", i),
		}})
	}
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := sample(reg, "streaming_records_applied_total", nil); got != 200 {
		t.Errorf("records_applied_total = %v, want 200", got)
	}
	if got := sample(reg, "streaming_queue_full_waits_total", nil); got < 1 {
		t.Errorf("queue_full_waits_total = %v, want >= 1 under a one-slot queue flood", got)
	}
}
