package streaming_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/streaming"
	"repro/internal/study"
	"repro/internal/vectors"
)

// The merge algebra property: streaming.State.Merge over any user-disjoint
// split of a record stream — any number of parts, merged in any order and
// any fold shape — must produce exactly the payloads of one engine that
// ingested the whole stream, and NewState() must be a two-sided identity.
// This is the correctness contract the shard router rests on (DESIGN.md
// §14); the differential HTTP test in internal/shard exercises the same
// property end-to-end at paper scale.

// statePayloads flattens every served quantity of a State for comparison.
type statePayloads struct {
	Users     []string
	Diversity streaming.EntropySnapshot
	Clusters  streaming.ClusterSnapshot
	Stability streaming.StabilitySnapshot
	AMI       *streaming.AMISnapshot
	Labels    map[vectors.ID][]int
	Distinct  map[vectors.ID][]int
}

func payloadsOf(s *streaming.State) statePayloads {
	p := statePayloads{
		Users:     s.Users,
		Diversity: s.Diversity(),
		Clusters:  s.Clusters(),
		Stability: s.Stability(),
		AMI:       s.AMI(),
		Labels:    map[vectors.ID][]int{},
		Distinct:  map[vectors.ID][]int{},
	}
	for _, v := range vectors.All {
		p.Labels[v] = s.Labels(v)
		p.Distinct[v] = s.DistinctPerUser(v)
	}
	return p
}

func enginePayloads(e *streaming.Engine) statePayloads {
	p := statePayloads{
		Users:     e.Users(),
		Diversity: e.Diversity(),
		Clusters:  e.Clusters(),
		Stability: e.Stability(),
		AMI:       e.RefreshAMI(),
		Labels:    map[vectors.ID][]int{},
		Distinct:  map[vectors.ID][]int{},
	}
	for _, v := range vectors.All {
		p.Labels[v] = e.Labels(v)
		p.Distinct[v] = e.DistinctPerUser(v)
	}
	return p
}

// genRecords builds a small synthetic stream exercising the merge surface:
// cross-user fingerprint sharing (tiny hash pool), unparseable auxiliary
// vectors, User-Agent and surface churn.
func genRecords(rng *rand.Rand) []storage.Record {
	nUsers := 3 + rng.Intn(28)
	hashPool := 2 + rng.Intn(10)
	nRecs := nUsers + rng.Intn(6*nUsers)
	recs := make([]storage.Record, 0, nRecs)
	for i := 0; i < nRecs; i++ {
		u := rng.Intn(nUsers)
		r := storage.Record{UserID: fmt.Sprintf("user-%03d", u)}
		if rng.Float64() < 0.1 {
			r.Vector = "aux" // unparseable: user/surface bookkeeping only
		} else {
			r.Vector = vectors.All[rng.Intn(len(vectors.All))].String()
			r.Hash = fmt.Sprintf("h%02d", rng.Intn(hashPool))
		}
		if rng.Float64() < 0.3 {
			r.UserAgent = fmt.Sprintf("UA-%d", rng.Intn(4))
		}
		if rng.Float64() < 0.25 {
			r.Surfaces = map[string]string{
				study.SurfaceCanvas: fmt.Sprintf("canvas-%d", rng.Intn(5)),
			}
			if rng.Float64() < 0.5 {
				r.Surfaces[study.SurfaceFonts] = fmt.Sprintf("fonts-%d", rng.Intn(3))
			}
		}
		recs = append(recs, r)
	}
	return recs
}

// splitStates partitions recs across nParts engines by a random user
// assignment (preserving global record order within each part), snapshots
// each, and stamps the per-user global first-seen sequence a router would
// maintain. Also returns the reference payloads of one engine over the
// whole stream.
func splitStates(t *testing.T, recs []storage.Record, nParts int, rng *rand.Rand) ([]*streaming.State, statePayloads) {
	t.Helper()
	ref := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer ref.Close()
	ref.Apply(recs)

	owner := map[string]int{}
	seq := map[string]int64{}
	for _, r := range recs {
		if _, ok := seq[r.UserID]; !ok {
			seq[r.UserID] = int64(len(seq))
			owner[r.UserID] = rng.Intn(nParts)
		}
	}
	parts := make([][]storage.Record, nParts)
	for _, r := range recs {
		p := owner[r.UserID]
		parts[p] = append(parts[p], r)
	}
	states := make([]*streaming.State, nParts)
	for i, part := range parts {
		eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
		eng.Apply(part)
		s := eng.State()
		eng.Close()
		for u, id := range s.Users {
			s.Seq[u] = seq[id]
		}
		states[i] = s
	}
	return states, enginePayloads(ref)
}

func foldStates(t *testing.T, states []*streaming.State) *streaming.State {
	t.Helper()
	acc := streaming.NewState()
	for _, s := range states {
		m, err := acc.Merge(s)
		if err != nil {
			t.Fatal(err)
		}
		acc = m
	}
	return acc
}

// TestStateMatchesEngine: a single engine's State serves exactly the
// engine's own payloads — the base case of the algebra.
func TestStateMatchesEngine(t *testing.T) {
	recs := testRecords(t)
	eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer eng.Close()
	eng.Apply(recs)
	want := enginePayloads(eng)
	got := payloadsOf(eng.State())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("State payloads differ from engine payloads:\n got %+v\nwant %+v", got, want)
	}
}

// TestStateMergeProperty is the ≥200-case seeded sweep: random streams,
// random split arity, random merge order — merged payloads equal the
// single-engine reference exactly, commutativity holds pairwise, and
// NewState is a two-sided identity.
func TestStateMergeProperty(t *testing.T) {
	cases := 220
	if testing.Short() {
		cases = 60
	}
	for c := 0; c < cases; c++ {
		rng := rand.New(rand.NewSource(int64(9000 + c)))
		recs := genRecords(rng)
		nParts := 1 + rng.Intn(5)
		states, want := splitStates(t, recs, nParts, rng)

		// Merge in a random order.
		order := rng.Perm(nParts)
		shuffled := make([]*streaming.State, nParts)
		for i, j := range order {
			shuffled[i] = states[j]
		}
		merged := foldStates(t, shuffled)
		if got := payloadsOf(merged); !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d (%d parts): merged payloads differ from single engine\n got %+v\nwant %+v",
				c, nParts, got, want)
		}

		// Commutativity on the first pair.
		if nParts >= 2 {
			ab, err := states[0].Merge(states[1])
			if err != nil {
				t.Fatal(err)
			}
			ba, err := states[1].Merge(states[0])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(payloadsOf(ab), payloadsOf(ba)) {
				t.Fatalf("case %d: Merge not commutative", c)
			}
		}

		// Identity on both sides of the full merge.
		li, err := streaming.NewState().Merge(merged)
		if err != nil {
			t.Fatal(err)
		}
		ri, err := merged.Merge(streaming.NewState())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(payloadsOf(li), want) || !reflect.DeepEqual(payloadsOf(ri), want) {
			t.Fatalf("case %d: NewState is not a merge identity", c)
		}
	}
}

// TestStateMergeAssociative: (a·b)·c == a·(b·c), payload-for-payload.
func TestStateMergeAssociative(t *testing.T) {
	for c := 0; c < 40; c++ {
		rng := rand.New(rand.NewSource(int64(777 + c)))
		recs := genRecords(rng)
		states, want := splitStates(t, recs, 3, rng)
		a, b, d := states[0], states[1], states[2]

		ab, err := a.Merge(b)
		if err != nil {
			t.Fatal(err)
		}
		left, err := ab.Merge(d)
		if err != nil {
			t.Fatal(err)
		}
		bd, err := b.Merge(d)
		if err != nil {
			t.Fatal(err)
		}
		right, err := a.Merge(bd)
		if err != nil {
			t.Fatal(err)
		}
		lp, rp := payloadsOf(left), payloadsOf(right)
		if !reflect.DeepEqual(lp, rp) {
			t.Fatalf("case %d: Merge not associative", c)
		}
		if !reflect.DeepEqual(lp, want) {
			t.Fatalf("case %d: associative fold differs from single engine", c)
		}
	}
}

// TestStateMergeRejectsOverlap: sharing a user across states is a routing
// bug and must be reported, not silently double-counted.
func TestStateMergeRejectsOverlap(t *testing.T) {
	mk := func() *streaming.State {
		eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
		defer eng.Close()
		eng.Apply([]storage.Record{{UserID: "dup", Vector: "DC", Hash: "h"}})
		return eng.State()
	}
	if _, err := mk().Merge(mk()); err == nil {
		t.Fatal("Merge of states sharing a user succeeded, want error")
	}
}
