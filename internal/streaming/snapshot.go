package streaming

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/diversity"
	"repro/internal/vectors"
)

// Snapshot types carry their own JSON tags: they are the payloads of the
// GET /api/v1/analytics/* routes.

// DiversityRow is one Table 2/3-style row of the live population.
type DiversityRow struct {
	Name        string  `json:"name"`
	Users       int     `json:"users"`
	Distinct    int     `json:"distinct"`
	Unique      int     `json:"unique"`
	EntropyBits float64 `json:"entropy_bits"`
	Normalized  float64 `json:"normalized"`
}

// EntropySnapshot is the live diversity table: the seven collated audio
// vectors, their combination, and the non-audio surfaces.
type EntropySnapshot struct {
	Records int64          `json:"records"`
	Users   int            `json:"users"`
	Rows    []DiversityRow `json:"rows"`
}

// ClusterRow is one vector's live collation-graph statistics.
type ClusterRow struct {
	Vector       string `json:"vector"`
	Users        int    `json:"users"`
	Clusters     int    `json:"clusters"`
	Unique       int    `json:"unique"`
	Fingerprints int    `json:"fingerprints"`
	Observations int64  `json:"observations"`
}

// ClusterSnapshot is the live per-vector collation state.
type ClusterSnapshot struct {
	Records int64        `json:"records"`
	Users   int          `json:"users"`
	Rows    []ClusterRow `json:"rows"`
}

// StabilityRow is one vector's live Table 1 row: distinct elementary
// fingerprints per user.
type StabilityRow struct {
	Vector string  `json:"vector"`
	Min    int     `json:"min"`
	Max    int     `json:"max"`
	Mean   float64 `json:"mean"`
}

// StabilitySnapshot is the live stability table.
type StabilitySnapshot struct {
	Records int64          `json:"records"`
	Users   int            `json:"users"`
	Rows    []StabilityRow `json:"rows"`
}

// AMISnapshot is the periodically refreshed pairwise-vector AMI matrix
// (Figure 5). Records is the applied-record count at refresh time —
// unlike the other snapshots it can lag the live state by up to
// Config.AMIRefreshEvery records.
type AMISnapshot struct {
	Records int64       `json:"records"`
	Vectors []string    `json:"vectors"`
	Matrix  [][]float64 `json:"matrix"`
}

// StatusSnapshot reports the engine's ingestion position.
type StatusSnapshot struct {
	Records      int64 `json:"records"`
	Users        int   `json:"users"`
	QueueDepth   int   `json:"queue_depth"`
	QueueCap     int   `json:"queue_capacity"`
	AMIRecords   int64 `json:"ami_records"`
	AMIAutomatic bool  `json:"ami_automatic"`
}

// summaryRow converts a stable diversity summary into an API row.
func summaryRow(name string, s diversity.Summary) DiversityRow {
	return DiversityRow{
		Name:        name,
		Users:       s.Users,
		Distinct:    s.Distinct,
		Unique:      s.Unique,
		EntropyBits: s.EntropyBits,
		Normalized:  s.Normalized,
	}
}

// clusterCounts expands a vector's cluster-size histogram into the
// group-size multiset diversity.SummaryFromCounts consumes. Caller holds
// at least a read lock.
func (vs *vecState) clusterCounts() []int {
	cs := make([]int, 0, vs.clusters)
	for size, n := range vs.hist {
		for i := int64(0); i < n; i++ {
			cs = append(cs, int(size))
		}
	}
	return cs
}

// surfaceCounts converts a surface's value→count map into a group-size
// multiset.
func surfaceCounts(m map[string]int64) []int {
	cs := make([]int, 0, len(m))
	for _, n := range m {
		cs = append(cs, int(n))
	}
	return cs
}

// Diversity returns the live entropy table. Audio rows are derived from
// the exact cluster-size histograms; the Combined row re-labels the seven
// graphs (O(users·vectors)); surface rows from the exact value counts.
// Every float goes through diversity.SummaryFromCounts, which is what
// makes the rows bit-identical to the batch analyses.
func (e *Engine) Diversity() EntropySnapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	snap := EntropySnapshot{Records: e.records, Users: len(e.userIDs)}
	for i, v := range vectors.All {
		snap.Rows = append(snap.Rows, summaryRow(v.String(),
			diversity.SummaryFromCounts(e.vecs[i].clusterCounts())))
	}
	if combined := e.combinedLabelsLocked(); combined != nil {
		snap.Rows = append(snap.Rows, summaryRow("Combined", diversity.SummarizeStable(combined)))
	}
	for s := 0; s < numSurfaces; s++ {
		snap.Rows = append(snap.Rows, summaryRow(surfaceNames[s],
			diversity.SummaryFromCounts(surfaceCounts(e.counts[s]))))
	}
	return snap
}

// Clusters returns the live per-vector collation statistics.
func (e *Engine) Clusters() ClusterSnapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	snap := ClusterSnapshot{Records: e.records, Users: len(e.userIDs)}
	for i, v := range vectors.All {
		vs := e.vecs[i]
		snap.Rows = append(snap.Rows, ClusterRow{
			Vector:       v.String(),
			Users:        vs.g.NumUsers(),
			Clusters:     vs.clusters,
			Unique:       int(vs.hist[1]),
			Fingerprints: vs.g.NumFingerprints(),
			Observations: vs.obsCount,
		})
	}
	return snap
}

// Stability returns the live Table 1 rows.
func (e *Engine) Stability() StabilitySnapshot {
	e.mu.RLock()
	defer e.mu.RUnlock()
	snap := StabilitySnapshot{Records: e.records, Users: len(e.userIDs)}
	for i, v := range vectors.All {
		vs := e.vecs[i]
		row := StabilityRow{Vector: v.String()}
		if len(vs.distinct) > 0 {
			row.Min = len(vs.distinct[0])
			sum := 0
			for _, d := range vs.distinct {
				c := len(d)
				if c < row.Min {
					row.Min = c
				}
				if c > row.Max {
					row.Max = c
				}
				sum += c
			}
			row.Mean = float64(sum) / float64(len(vs.distinct))
		}
		snap.Rows = append(snap.Rows, row)
	}
	return snap
}

// DistinctPerUser returns how many distinct elementary fingerprints each
// user has emitted for v, in dense user order — the live counterpart of
// Dataset.DistinctPerUser.
func (e *Engine) DistinctPerUser(v vectors.ID) []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	vs := e.vecs[e.vecIdx[v]]
	out := make([]int, len(vs.distinct))
	for i, d := range vs.distinct {
		out[i] = len(d)
	}
	return out
}

// Labels returns the live first-appearance-canonical cluster labels of v,
// the counterpart of Dataset.Labels.
func (e *Engine) Labels(v vectors.ID) []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	labels := e.vecs[e.vecIdx[v]].g.Labels()
	out := make([]int, len(labels))
	for i, l := range labels {
		out[i] = int(l)
	}
	return out
}

// Users returns the user IDs in dense (first-record) order.
func (e *Engine) Users() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.userIDs...)
}

// combinedLabelsLocked builds the combination tuple per user — nil when
// the population is empty.
func (e *Engine) combinedLabelsLocked() []string {
	if len(e.userIDs) == 0 {
		return nil
	}
	parts := make([][]int32, len(vectors.All))
	for i := range e.vecs {
		parts[i] = e.vecs[i].g.Labels()
	}
	combined, err := diversity.Combine(parts...)
	if err != nil {
		panic(err) // impossible: all parts share the population length
	}
	return combined
}

// AMI returns the most recent pairwise-AMI snapshot, or nil when none has
// been computed yet (empty population or refresh never triggered).
func (e *Engine) AMI() *AMISnapshot {
	e.amiMu.Lock()
	defer e.amiMu.Unlock()
	return e.ami
}

// RefreshAMI recomputes the pairwise-vector AMI matrix from the current
// graphs and installs it as the served snapshot. The computation matches
// Dataset.PairwiseVectorAMI: diagonal 1, AMIDense over
// first-appearance-canonical labels.
func (e *Engine) RefreshAMI() *AMISnapshot {
	start := time.Now()
	e.mu.RLock()
	records := e.records
	users := len(e.userIDs)
	k := len(vectors.All)
	labels := make([][]int32, k)
	ks := make([]int, k)
	for i := range e.vecs {
		labels[i] = e.vecs[i].g.Labels()
		ks[i] = e.vecs[i].clusters
	}
	e.mu.RUnlock()

	snap := &AMISnapshot{Records: records, Vectors: make([]string, k)}
	for i, v := range vectors.All {
		snap.Vectors[i] = v.String()
	}
	if users > 0 {
		snap.Matrix = make([][]float64, k)
		for i := range snap.Matrix {
			snap.Matrix[i] = make([]float64, k)
			snap.Matrix[i][i] = 1
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				v, err := cluster.AMIDense(labels[i], labels[j], ks[i], ks[j])
				if err != nil {
					// Unreachable for a non-empty population; serve zeros
					// rather than failing the refresh.
					continue
				}
				snap.Matrix[i][j] = v
				snap.Matrix[j][i] = v
			}
		}
	}
	e.amiMu.Lock()
	e.ami = snap
	e.lastAMI = records
	e.amiMu.Unlock()
	e.met.amiRefreshes.Inc()
	e.met.amiSeconds.Observe(time.Since(start).Seconds())
	return snap
}

// Status reports the engine's ingestion position and queue occupancy.
func (e *Engine) Status() StatusSnapshot {
	e.mu.RLock()
	records := e.records
	users := len(e.userIDs)
	e.mu.RUnlock()
	e.amiMu.Lock()
	amiRecords := e.lastAMI
	e.amiMu.Unlock()
	return StatusSnapshot{
		Records:      records,
		Users:        users,
		QueueDepth:   len(e.queue),
		QueueCap:     e.queueDepth,
		AMIRecords:   amiRecords,
		AMIAutomatic: e.amiEvery > 0,
	}
}
