package streaming

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/collate"
	"repro/internal/diversity"
	"repro/internal/vectors"
)

// State is a frozen, self-contained copy of an engine's analysis state that
// can be combined with the states of other engines — the merge algebra the
// sharded ingest plane is built on (DESIGN.md §14). Each shard's engine
// owns a disjoint slice of the user population; State captures that slice
// together with the per-user global arrival sequence, and Merge folds two
// slices into one whose analytics payloads are bit-identical to an engine
// that ingested the union directly.
//
// Merge is associative and commutative, with NewState() as the identity —
// the property that lets a router fold shard snapshots in any order (or a
// tree) and serve one answer. The proof obligation is discharged by the
// payload shapes: every served quantity depends only on (a) the user
// partition of each vector's collation graph, (b) the global user order
// reconstructed from Seq, and (c) per-user values/counts — none on the
// shard-local dense ID assignment that differs between merge orders.
type State struct {
	// Users holds the user IDs in this state's dense order; Seq holds each
	// user's global first-seen sequence number. Within one engine the dense
	// order is arrival order, so Engine.State stamps Seq 0..n-1; a router
	// overwrites Seq with its global ledger before merging so the merged
	// dense order reproduces the single-engine arrival order exactly
	// (labels and AMI depend on it).
	Users []string
	Seq   []int64
	// Records counts applied records (audio + auxiliary).
	Records int64
	// Surfs holds per-surface, per-user current values in surface index
	// order (surfCanvas..surfUA) — value counts are rebuilt at snapshot
	// time, so they merge by concatenation.
	Surfs [][]string
	// Vecs holds one VecState per vectors.All entry.
	Vecs []VecState
}

// VecState is one audio vector's mergeable analysis state.
type VecState struct {
	// Hashes maps this state's dense fingerprint ID to the fingerprint
	// hash — the intern table exported in ID order, which is what lets
	// Merge translate two shard-local universes into one.
	Hashes []string
	// Graph is the collation graph over this state's users and Hashes.
	Graph *collate.IntGraph
	// Distinct holds each user's distinct-fingerprint count (users are
	// shard-disjoint, so counts merge by scatter).
	Distinct []int
	// Obs counts observations applied, duplicates included.
	Obs int64
}

// State returns a deep snapshot of the engine's analysis state, stamped
// with local sequence numbers 0..n-1 (dense order == arrival order within
// one engine). The copy shares nothing with the live engine.
func (e *Engine) State() *State {
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := &State{
		Users:   append([]string(nil), e.userIDs...),
		Seq:     make([]int64, len(e.userIDs)),
		Records: e.records,
		Surfs:   make([][]string, numSurfaces),
		Vecs:    make([]VecState, len(e.vecs)),
	}
	for i := range s.Seq {
		s.Seq[i] = int64(i)
	}
	for i := 0; i < numSurfaces; i++ {
		s.Surfs[i] = append([]string(nil), e.surfs[i]...)
	}
	for i, vs := range e.vecs {
		hashes := make([]string, len(vs.intern))
		for h, id := range vs.intern {
			hashes[id] = h
		}
		distinct := make([]int, len(vs.distinct))
		for u, d := range vs.distinct {
			distinct[u] = len(d)
		}
		s.Vecs[i] = VecState{
			Hashes:   hashes,
			Graph:    vs.g.Clone(),
			Distinct: distinct,
			Obs:      vs.obsCount,
		}
	}
	return s
}

// NewState returns the merge identity: an empty state over zero users.
func NewState() *State {
	s := &State{
		Surfs: make([][]string, numSurfaces),
		Vecs:  make([]VecState, len(vectors.All)),
	}
	for i := range s.Vecs {
		s.Vecs[i] = VecState{Graph: collate.NewIntGraph(0, 0)}
	}
	return s
}

// Merge combines two states over disjoint user sets into a new state; both
// inputs are left logically unchanged (the union pass may path-compress
// their graphs, which is unobservable). The merged dense user order is by
// ascending Seq (user ID as a tie-break, which never fires when Seq comes
// from one global ledger), so a router stamping global sequences gets back
// the single-engine arrival order. Sharing a user between the two states
// is a routing bug and returns an error.
func (s *State) Merge(o *State) (*State, error) {
	na, nb := len(s.Users), len(o.Users)
	m := &State{
		Users:   make([]string, 0, na+nb),
		Seq:     make([]int64, 0, na+nb),
		Records: s.Records + o.Records,
		Surfs:   make([][]string, numSurfaces),
		Vecs:    make([]VecState, len(s.Vecs)),
	}
	// Two-pointer merge by (Seq, Users) producing each input's user→merged
	// translation.
	mapA := make([]int32, na)
	mapB := make([]int32, nb)
	i, j := 0, 0
	for i < na || j < nb {
		takeA := j >= nb
		if i < na && j < nb {
			switch {
			case s.Seq[i] < o.Seq[j]:
				takeA = true
			case s.Seq[i] > o.Seq[j]:
				takeA = false
			default:
				takeA = s.Users[i] < o.Users[j]
			}
		}
		if takeA {
			mapA[i] = int32(len(m.Users))
			m.Users = append(m.Users, s.Users[i])
			m.Seq = append(m.Seq, s.Seq[i])
			i++
		} else {
			mapB[j] = int32(len(m.Users))
			m.Users = append(m.Users, o.Users[j])
			m.Seq = append(m.Seq, o.Seq[j])
			j++
		}
	}
	if overlap := findOverlap(m.Users); overlap != "" {
		return nil, fmt.Errorf("streaming: Merge states share user %q", overlap)
	}
	for si := 0; si < numSurfaces; si++ {
		m.Surfs[si] = make([]string, len(m.Users))
		for u, v := range s.Surfs[si] {
			m.Surfs[si][mapA[u]] = v
		}
		for u, v := range o.Surfs[si] {
			m.Surfs[si][mapB[u]] = v
		}
	}
	for vi := range s.Vecs {
		a, b := &s.Vecs[vi], &o.Vecs[vi]
		// Merged intern table: a's hashes keep their IDs, b's unseen
		// hashes append in b's ID order. The assignment order differs
		// between merge orders, but no payload reads fingerprint IDs —
		// only partition structure and per-user counts.
		hashes := append([]string(nil), a.Hashes...)
		idx := make(map[string]int32, len(a.Hashes)+len(b.Hashes))
		for id, h := range hashes {
			idx[h] = int32(id)
		}
		fpMapA := make([]int32, len(a.Hashes))
		for id := range fpMapA {
			fpMapA[id] = int32(id)
		}
		fpMapB := make([]int32, len(b.Hashes))
		for id, h := range b.Hashes {
			mid, ok := idx[h]
			if !ok {
				mid = int32(len(hashes))
				hashes = append(hashes, h)
				idx[h] = mid
			}
			fpMapB[id] = mid
		}
		g := collate.NewIntGraph(len(m.Users), len(hashes))
		g.Merge(a.Graph, mapA, fpMapA)
		g.Merge(b.Graph, mapB, fpMapB)
		distinct := make([]int, len(m.Users))
		for u, d := range a.Distinct {
			distinct[mapA[u]] = d
		}
		for u, d := range b.Distinct {
			distinct[mapB[u]] = d
		}
		m.Vecs[vi] = VecState{
			Hashes:   hashes,
			Graph:    g,
			Distinct: distinct,
			Obs:      a.Obs + b.Obs,
		}
	}
	return m, nil
}

// findOverlap returns a user ID appearing twice in the sorted-by-arrival
// merged list, or "". Duplicates are detected with a sorted copy so the
// scan is O(n log n) without a map allocation per merge.
func findOverlap(users []string) string {
	if len(users) < 2 {
		return ""
	}
	sorted := append([]string(nil), users...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return sorted[i]
		}
	}
	return ""
}

// Diversity returns the entropy table of the merged population — the same
// rows, bit for bit, as Engine.Diversity over the union of the merged
// record streams. Audio rows reduce ClusterSizes through
// diversity.SummaryFromCounts (which sorts, so histogram-vs-sweep and
// merge-order differences vanish); the Combined row re-labels the graphs
// over the Seq-reconstructed user order.
func (s *State) Diversity() EntropySnapshot {
	snap := EntropySnapshot{Records: s.Records, Users: len(s.Users)}
	for i, v := range vectors.All {
		snap.Rows = append(snap.Rows, summaryRow(v.String(),
			diversity.SummaryFromCounts(s.Vecs[i].Graph.ClusterSizes())))
	}
	if combined := s.combinedLabels(); combined != nil {
		snap.Rows = append(snap.Rows, summaryRow("Combined", diversity.SummarizeStable(combined)))
	}
	for si := 0; si < numSurfaces; si++ {
		counts := make(map[string]int64, len(s.Surfs[si]))
		for _, v := range s.Surfs[si] {
			counts[v]++
		}
		snap.Rows = append(snap.Rows, summaryRow(surfaceNames[si],
			diversity.SummaryFromCounts(surfaceCounts(counts))))
	}
	return snap
}

// Clusters returns the per-vector collation statistics of the merged
// population, matching Engine.Clusters bit for bit.
func (s *State) Clusters() ClusterSnapshot {
	snap := ClusterSnapshot{Records: s.Records, Users: len(s.Users)}
	for i, v := range vectors.All {
		vs := &s.Vecs[i]
		snap.Rows = append(snap.Rows, ClusterRow{
			Vector:       v.String(),
			Users:        vs.Graph.NumUsers(),
			Clusters:     vs.Graph.NumClusters(),
			Unique:       vs.Graph.UniqueClusters(),
			Fingerprints: vs.Graph.NumFingerprints(),
			Observations: vs.Obs,
		})
	}
	return snap
}

// Stability returns the Table 1 rows of the merged population.
func (s *State) Stability() StabilitySnapshot {
	snap := StabilitySnapshot{Records: s.Records, Users: len(s.Users)}
	for i, v := range vectors.All {
		vs := &s.Vecs[i]
		row := StabilityRow{Vector: v.String()}
		if len(vs.Distinct) > 0 {
			row.Min = vs.Distinct[0]
			sum := 0
			for _, c := range vs.Distinct {
				if c < row.Min {
					row.Min = c
				}
				if c > row.Max {
					row.Max = c
				}
				sum += c
			}
			row.Mean = float64(sum) / float64(len(vs.Distinct))
		}
		snap.Rows = append(snap.Rows, row)
	}
	return snap
}

// AMI computes the pairwise-vector AMI matrix of the merged population —
// the merged counterpart of Engine.RefreshAMI, matching
// Dataset.PairwiseVectorAMI bit for bit over the Seq-reconstructed user
// order.
func (s *State) AMI() *AMISnapshot {
	k := len(vectors.All)
	snap := &AMISnapshot{Records: s.Records, Vectors: make([]string, k)}
	for i, v := range vectors.All {
		snap.Vectors[i] = v.String()
	}
	if len(s.Users) == 0 {
		return snap
	}
	labels := make([][]int32, k)
	ks := make([]int, k)
	for i := range s.Vecs {
		labels[i] = s.Vecs[i].Graph.Labels()
		ks[i] = s.Vecs[i].Graph.NumClusters()
	}
	snap.Matrix = make([][]float64, k)
	for i := range snap.Matrix {
		snap.Matrix[i] = make([]float64, k)
		snap.Matrix[i][i] = 1
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			v, err := cluster.AMIDense(labels[i], labels[j], ks[i], ks[j])
			if err != nil {
				continue // unreachable for a non-empty population
			}
			snap.Matrix[i][j] = v
			snap.Matrix[j][i] = v
		}
	}
	return snap
}

// Labels returns v's first-appearance-canonical cluster labels over the
// merged user order — the State counterpart of Engine.Labels.
func (s *State) Labels(v vectors.ID) []int {
	for i, vv := range vectors.All {
		if vv == v {
			labels := s.Vecs[i].Graph.Labels()
			out := make([]int, len(labels))
			for j, l := range labels {
				out[j] = int(l)
			}
			return out
		}
	}
	return nil
}

// DistinctPerUser returns each user's distinct-fingerprint count for v in
// merged dense order.
func (s *State) DistinctPerUser(v vectors.ID) []int {
	for i, vv := range vectors.All {
		if vv == v {
			return append([]int(nil), s.Vecs[i].Distinct...)
		}
	}
	return nil
}

// combinedLabels builds the combination tuple per user — nil when the
// population is empty.
func (s *State) combinedLabels() []string {
	if len(s.Users) == 0 {
		return nil
	}
	parts := make([][]int32, len(vectors.All))
	for i := range s.Vecs {
		parts[i] = s.Vecs[i].Graph.Labels()
	}
	combined, err := diversity.Combine(parts...)
	if err != nil {
		panic(err) // impossible: all parts share the population length
	}
	return combined
}
