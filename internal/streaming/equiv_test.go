package streaming_test

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/diversity"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/streaming"
	"repro/internal/study"
	"repro/internal/vectors"
)

// The batch/streaming equivalence property: replaying ANY prefix of a
// record stream through the engine must yield labels, cluster counts,
// distinct-per-user counts, diversity rows (exact float equality — both
// paths reduce to diversity.SummaryFromCounts) and pairwise AMI identical
// to loading the same prefix with study.FromRecordsOpts(KeepAll) and
// running the batch analyses. Streams include out-of-order delivery and
// duplicate records (what idempotency-key replays and at-least-once
// delivery produce); both sides must agree regardless.

// testRecords renders a small seeded population and flattens it.
func testRecords(t *testing.T) []storage.Record {
	t.Helper()
	ds, err := study.Run(study.Config{Seed: 20220719, Users: 27, Iterations: 4, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	return ds.ToRecords(time.Unix(1660000000, 0).UTC())
}

// perturb returns a copy of recs with ~rate duplicates inserted and, when
// shuffle is set, the whole stream reordered.
func perturb(recs []storage.Record, rng *rand.Rand, rate float64, shuffle bool) []storage.Record {
	out := make([]storage.Record, 0, len(recs)+len(recs)/10)
	for _, r := range recs {
		out = append(out, r)
		if rng.Float64() < rate {
			out = append(out, r) // idempotent replay of the same record
		}
	}
	if shuffle {
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	}
	return out
}

// batchSummaries computes the batch-side diversity rows in the engine's
// row order, through the same stable float kernel.
func batchSummaries(ds *study.Dataset) []streaming.DiversityRow {
	rows := make([]streaming.DiversityRow, 0, len(vectors.All)+6)
	row := func(name string, s diversity.Summary) streaming.DiversityRow {
		return streaming.DiversityRow{Name: name, Users: s.Users, Distinct: s.Distinct,
			Unique: s.Unique, EntropyBits: s.EntropyBits, Normalized: s.Normalized}
	}
	for _, v := range vectors.All {
		rows = append(rows, row(v.String(), diversity.SummarizeStable(ds.Labels(v))))
	}
	rows = append(rows, row("Combined", diversity.SummarizeStable(ds.CombinedLabels())))
	rows = append(rows, row("Canvas", diversity.SummarizeStable(ds.Canvas)))
	rows = append(rows, row("Fonts", diversity.SummarizeStable(ds.Fonts)))
	rows = append(rows, row("MathJS", diversity.SummarizeStable(ds.MathJS)))
	rows = append(rows, row("Platform", diversity.SummarizeStable(ds.Platforms)))
	rows = append(rows, row("User-Agent", diversity.SummarizeStable(ds.UA)))
	return rows
}

// comparePrefix asserts every streamed quantity against the batch analysis
// of the same prefix.
func comparePrefix(t *testing.T, eng *streaming.Engine, prefix []storage.Record) {
	t.Helper()
	ds, err := study.FromRecordsOpts(prefix, study.LoadOptions{KeepAllObservations: true})
	if err != nil {
		t.Fatalf("batch load of %d records: %v", len(prefix), err)
	}
	if got := eng.Users(); !reflect.DeepEqual(got, ds.Users) {
		t.Fatalf("prefix %d: user order differs: %v vs %v", len(prefix), got, ds.Users)
	}
	for _, v := range vectors.All {
		if got, want := eng.Labels(v), ds.Labels(v); !reflect.DeepEqual(got, want) {
			t.Fatalf("prefix %d: %v labels differ:\n got %v\nwant %v", len(prefix), v, got, want)
		}
		if got, want := eng.DistinctPerUser(v), ds.DistinctPerUser(v); !reflect.DeepEqual(got, want) {
			t.Fatalf("prefix %d: %v distinct-per-user differ:\n got %v\nwant %v", len(prefix), v, got, want)
		}
	}

	// Diversity rows: exact float equality, not approximate.
	gotDiv := eng.Diversity()
	wantRows := batchSummaries(ds)
	if len(gotDiv.Rows) != len(wantRows) {
		t.Fatalf("prefix %d: %d diversity rows, want %d", len(prefix), len(gotDiv.Rows), len(wantRows))
	}
	for i, want := range wantRows {
		if gotDiv.Rows[i] != want {
			t.Fatalf("prefix %d: diversity row %q differs:\n got %+v\nwant %+v",
				len(prefix), want.Name, gotDiv.Rows[i], want)
		}
	}

	// Cluster statistics against the batch labels.
	gotCl := eng.Clusters()
	for i, v := range vectors.All {
		labels := ds.Labels(v)
		k := 0
		for _, l := range labels {
			if l >= k {
				k = l + 1
			}
		}
		sizes := make([]int, k)
		for _, l := range labels {
			sizes[l]++
		}
		unique := 0
		for _, s := range sizes {
			if s == 1 {
				unique++
			}
		}
		r := gotCl.Rows[i]
		if r.Vector != v.String() || r.Clusters != k || r.Unique != unique || r.Users != len(ds.Users) {
			t.Fatalf("prefix %d: cluster row %v = %+v, want k=%d unique=%d users=%d",
				len(prefix), v, r, k, unique, len(ds.Users))
		}
	}

	// Stability rows: same min/max and bit-identical mean.
	gotSt := eng.Stability()
	for i, v := range vectors.All {
		counts := ds.DistinctPerUser(v)
		want := streaming.StabilityRow{Vector: v.String(), Min: counts[0], Max: counts[0]}
		sum := 0
		for _, c := range counts {
			if c < want.Min {
				want.Min = c
			}
			if c > want.Max {
				want.Max = c
			}
			sum += c
		}
		want.Mean = float64(sum) / float64(len(counts))
		if gotSt.Rows[i] != want {
			t.Fatalf("prefix %d: stability row %v = %+v, want %+v", len(prefix), v, gotSt.Rows[i], want)
		}
	}

	// Pairwise AMI after an explicit refresh: bit-identical matrix.
	gotAMI := eng.RefreshAMI()
	wantAMI, err := ds.PairwiseVectorAMI()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotAMI.Matrix, wantAMI) {
		t.Fatalf("prefix %d: AMI matrix differs:\n got %v\nwant %v", len(prefix), gotAMI.Matrix, wantAMI)
	}
}

func replayAndCompare(t *testing.T, stream []storage.Record, rng *rand.Rand, cuts int) {
	eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer eng.Close()

	// Random strictly increasing prefix cut points, always ending at the
	// full stream.
	points := map[int]struct{}{len(stream): {}}
	for len(points) < cuts {
		points[1+rng.Intn(len(stream))] = struct{}{}
	}
	next := 0
	for p := 1; p <= len(stream); p++ {
		if _, ok := points[p]; !ok {
			continue
		}
		// Feed in uneven batches, as HTTP submissions would arrive.
		for next < p {
			n := 1 + rng.Intn(40)
			if next+n > p {
				n = p - next
			}
			eng.Enqueue(stream[next : next+n])
			next += n
		}
		if err := eng.Sync(); err != nil {
			t.Fatal(err)
		}
		comparePrefix(t, eng, stream[:p])
	}
}

func TestStreamingMatchesBatchInOrder(t *testing.T) {
	recs := testRecords(t)
	rng := rand.New(rand.NewSource(1))
	replayAndCompare(t, perturb(recs, rng, 0.05, false), rng, 7)
}

func TestStreamingMatchesBatchOutOfOrder(t *testing.T) {
	recs := testRecords(t)
	rng := rand.New(rand.NewSource(2))
	replayAndCompare(t, perturb(recs, rng, 0.08, true), rng, 7)
}

// TestStreamingIdempotentReplay: re-applying an entire already-applied
// batch (what an at-least-once delivery or a replayed idempotency key
// would cause upstream of the dedup cache) must not change any result.
func TestStreamingIdempotentReplay(t *testing.T) {
	recs := testRecords(t)
	eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer eng.Close()
	eng.Enqueue(recs)
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	before := eng.Diversity()
	labelsBefore := eng.Labels(vectors.Hybrid)
	eng.Enqueue(recs[:len(recs)/3]) // replay a whole prefix again
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	after := eng.Diversity()
	if !reflect.DeepEqual(before.Rows, after.Rows) {
		t.Errorf("diversity rows changed after replay:\n before %+v\n after %+v", before.Rows, after.Rows)
	}
	if !reflect.DeepEqual(labelsBefore, eng.Labels(vectors.Hybrid)) {
		t.Error("labels changed after replay")
	}
}

// TestStreamingBootstrapMatchesEnqueue: the recovery path (Bootstrap) must
// land in exactly the state incremental ingestion produces.
func TestStreamingBootstrapMatchesEnqueue(t *testing.T) {
	recs := testRecords(t)
	live := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer live.Close()
	for i := 0; i < len(recs); i += 97 {
		end := i + 97
		if end > len(recs) {
			end = len(recs)
		}
		live.Enqueue(recs[i:end])
	}
	if err := live.Sync(); err != nil {
		t.Fatal(err)
	}
	reborn := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer reborn.Close()
	reborn.Bootstrap(recs)

	if a, b := live.Diversity(), reborn.Diversity(); !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Errorf("bootstrap diversity differs:\n live %+v\n reborn %+v", a.Rows, b.Rows)
	}
	if a, b := live.RefreshAMI(), reborn.AMI(); !reflect.DeepEqual(a.Matrix, b.Matrix) {
		t.Error("bootstrap AMI differs from live AMI")
	}
	for _, v := range vectors.All {
		if !reflect.DeepEqual(live.Labels(v), reborn.Labels(v)) {
			t.Fatalf("bootstrap %v labels differ", v)
		}
	}
}

// TestStreamingEmpty: snapshots of an empty engine are well-formed.
func TestStreamingEmpty(t *testing.T) {
	eng := streaming.New(streaming.Config{Registry: obs.NewRegistry()})
	defer eng.Close()
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	d := eng.Diversity()
	if d.Users != 0 || d.Records != 0 {
		t.Errorf("empty engine diversity: %+v", d)
	}
	for _, row := range d.Rows {
		if row.Name == "Combined" {
			t.Error("empty engine must omit the Combined row")
		}
	}
	if eng.AMI() != nil {
		t.Error("empty engine served an AMI snapshot before any refresh")
	}
	if snap := eng.RefreshAMI(); snap.Matrix != nil {
		t.Errorf("empty-population AMI matrix = %v, want nil", snap.Matrix)
	}
	if st := eng.Status(); st.Records != 0 || st.Users != 0 {
		t.Errorf("empty status: %+v", st)
	}
}

// TestStreamingAutoAMIRefresh: the snapshot refreshes on its own once
// enough records have been applied.
func TestStreamingAutoAMIRefresh(t *testing.T) {
	recs := testRecords(t)
	eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: 100})
	defer eng.Close()
	eng.Enqueue(recs)
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	snap := eng.AMI()
	if snap == nil {
		t.Fatal("no AMI snapshot after exceeding the refresh interval")
	}
	if snap.Records == 0 || len(snap.Matrix) != len(vectors.All) {
		t.Errorf("auto-refreshed snapshot: records=%d matrix=%dx", snap.Records, len(snap.Matrix))
	}
	for i := range snap.Matrix {
		if snap.Matrix[i][i] != 1 {
			t.Errorf("diagonal[%d] = %v, want 1", i, snap.Matrix[i][i])
		}
	}
}

// TestStreamingSurfaceRules: User-Agent is first-non-empty-wins and other
// surfaces last-record-wins, mirroring FromRecords.
func TestStreamingSurfaceRules(t *testing.T) {
	eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	defer eng.Close()
	recs := []storage.Record{
		{UserID: "u1", Vector: "DC", Hash: "a", UserAgent: "UA-1",
			Surfaces: map[string]string{study.SurfaceCanvas: "c1"}},
		{UserID: "u1", Vector: "DC", Hash: "a", UserAgent: "UA-2",
			Surfaces: map[string]string{study.SurfaceCanvas: "c2"}},
		{UserID: "u2", Vector: "DC", Hash: "b"},
	}
	eng.Enqueue(recs)
	if err := eng.Sync(); err != nil {
		t.Fatal(err)
	}
	ds, err := study.FromRecordsOpts(recs, study.LoadOptions{KeepAllObservations: true})
	if err != nil {
		t.Fatal(err)
	}
	got := eng.Diversity()
	want := batchSummaries(ds)
	for i, w := range want {
		if got.Rows[i] != w {
			t.Errorf("row %q: got %+v want %+v", w.Name, got.Rows[i], w)
		}
	}
}

// TestStreamingSyncAfterClose: Sync on a closed engine with everything
// drained returns nil; lost batches surface ErrClosed.
func TestStreamingSyncAfterClose(t *testing.T) {
	eng := streaming.New(streaming.Config{Registry: obs.NewRegistry(), AMIRefreshEvery: -1})
	eng.Enqueue([]storage.Record{{UserID: "u", Vector: "DC", Hash: "h"}})
	eng.Close()
	if err := eng.Sync(); err != nil {
		t.Fatalf("Sync after clean close: %v", err)
	}
	// Enqueue after close is a no-op.
	eng.Enqueue([]storage.Record{{UserID: "x", Vector: "DC", Hash: "h2"}})
	if got := eng.Users(); len(got) != 1 || got[0] != "u" {
		t.Errorf("users after close = %v, want [u]", got)
	}
}
