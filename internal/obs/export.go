package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// SpanExporter consumes finished spans. The obs *Exporter is the file-
// backed implementation; pipeline packages (collectserver, streaming,
// study) accept the interface so tests can substitute an in-memory sink.
type SpanExporter interface {
	ExportSpan(*Span)
}

// ExportConfig parameterizes NewExporter.
type ExportConfig struct {
	// Path is the NDJSON output file, rotated in place (Path → Path+".1")
	// beyond MaxFileBytes. Ignored when Sink is set.
	Path string
	// Sink overrides the file with a caller-supplied writer — the
	// pluggable seam (tests wedge it with a faultinject.Writer to prove
	// the exporter never blocks ingestion).
	Sink io.Writer
	// Registry is flushed as periodic metrics lines and receives the
	// exporter's own drop/volume counters. Nil uses Default.
	Registry *Registry
	// Interval is the metrics-flush period (default 15s; negative
	// disables periodic flushing — Close still writes a final snapshot).
	Interval time.Duration
	// MaxFileBytes rotates the file beyond this size (default 64 MiB;
	// only applies to Path-backed exporters).
	MaxFileBytes int64
	// Buffer bounds the span queue (default 256). A full queue drops the
	// span — counted, never blocking the caller.
	Buffer int
	// Service tags every line's resource (OTLP's service.name); default
	// "repro".
	Service string
	// Now supplies timestamps (tests override); nil means time.Now.
	Now func() time.Time
}

// Exporter writes telemetry — completed span trees and registry metric
// snapshots — as NDJSON lines with OTLP-compatible field naming, to a
// rotating file or a pluggable sink. ExportSpan is non-blocking and
// bounded: a wedged or slow sink costs drops (counted on the registry),
// never ingestion throughput.
type Exporter struct {
	reg      *Registry
	interval time.Duration
	maxBytes int64
	service  string
	now      func() time.Time
	path     string

	spans chan *Span
	quit  chan struct{}
	done  chan struct{}

	mu      sync.Mutex // guards sink/file/written across worker and Close
	sink    io.Writer
	file    *os.File
	written int64

	closeOnce sync.Once

	batchesWritten *Counter
	droppedFull    *Counter
	droppedWrite   *Counter
	metricFlushes  *Counter
	bytesOut       *Counter
}

// spanRecord is the exported form of one span, one NDJSON line. Field
// names follow the OTLP/JSON span encoding (camelCase, unix-nano
// timestamps) so downstream tooling written against OTLP field names can
// consume the file.
type spanRecord struct {
	Type              string         `json:"type"`
	Service           string         `json:"service"`
	Name              string         `json:"name"`
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	StartTimeUnixNano int64          `json:"startTimeUnixNano"`
	EndTimeUnixNano   int64          `json:"endTimeUnixNano"`
	Attributes        map[string]any `json:"attributes,omitempty"`
}

// metricsRecord is one periodic registry snapshot, one NDJSON line.
type metricsRecord struct {
	Type         string         `json:"type"`
	Service      string         `json:"service"`
	TimeUnixNano int64          `json:"timeUnixNano"`
	Metrics      []metricSample `json:"metrics"`
}

type metricSample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	// Exemplar carries a histogram's most recent traced observation, so
	// the NDJSON telemetry file alone links a distribution to a trace id.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// NewExporter opens the sink and starts the export worker.
func NewExporter(cfg ExportConfig) (*Exporter, error) {
	if cfg.Registry == nil {
		cfg.Registry = Default
	}
	if cfg.Interval == 0 {
		cfg.Interval = 15 * time.Second
	}
	if cfg.MaxFileBytes <= 0 {
		cfg.MaxFileBytes = 64 << 20
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 256
	}
	if cfg.Service == "" {
		cfg.Service = "repro"
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	e := &Exporter{
		reg:      cfg.Registry,
		interval: cfg.Interval,
		maxBytes: cfg.MaxFileBytes,
		service:  cfg.Service,
		now:      cfg.Now,
		path:     cfg.Path,
		spans:    make(chan *Span, cfg.Buffer),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		sink:     cfg.Sink,
		batchesWritten: cfg.Registry.Counter("obs_export_batches_written_total",
			"Span trees fully written by the telemetry exporter.", nil),
		droppedFull: cfg.Registry.Counter("obs_export_batches_dropped_total",
			"Span trees lost by the telemetry exporter, by reason.",
			Labels{"reason": "buffer_full"}),
		droppedWrite: cfg.Registry.Counter("obs_export_batches_dropped_total",
			"Span trees lost by the telemetry exporter, by reason.",
			Labels{"reason": "write_error"}),
		metricFlushes: cfg.Registry.Counter("obs_export_metric_flushes_total",
			"Registry snapshots flushed by the telemetry exporter.", nil),
		bytesOut: cfg.Registry.Counter("obs_export_bytes_total",
			"Telemetry bytes written by the exporter.", nil),
	}
	if e.sink == nil {
		if cfg.Path == "" {
			return nil, fmt.Errorf("obs: ExportConfig needs Path or Sink")
		}
		f, err := os.OpenFile(cfg.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		e.file, e.sink, e.written = f, f, st.Size()
	}
	go e.loop()
	return e, nil
}

// ExportSpan enqueues a finished span tree for export. It never blocks:
// when the buffer is full the tree is dropped and counted. Nil spans and
// spans without a trace identity are ignored.
func (e *Exporter) ExportSpan(sp *Span) {
	if sp == nil || sp.TraceID() == "" {
		return
	}
	select {
	case e.spans <- sp:
	default:
		e.droppedFull.Inc()
	}
}

// FlushMetrics writes one registry snapshot line immediately.
func (e *Exporter) FlushMetrics() error {
	samples := e.reg.Snapshot()
	rec := metricsRecord{
		Type:         "metrics",
		Service:      e.service,
		TimeUnixNano: e.now().UnixNano(),
		Metrics:      make([]metricSample, len(samples)),
	}
	for i, s := range samples {
		ms := metricSample{Name: s.Name, Value: s.Value, Exemplar: s.Exemplar}
		if len(s.Labels) > 0 {
			ms.Labels = s.Labels
		}
		rec.Metrics[i] = ms
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := e.writeLine(line); err != nil {
		return err
	}
	e.metricFlushes.Inc()
	return nil
}

// Close stops the worker, drains buffered spans, flushes a final metrics
// snapshot, and closes the file. Safe to call more than once.
func (e *Exporter) Close() error {
	e.closeOnce.Do(func() { close(e.quit) })
	<-e.done
	// A span enqueued between the worker's final drain and now would
	// otherwise vanish unaccounted; count it as a buffer drop.
	for {
		select {
		case <-e.spans:
			e.droppedFull.Inc()
			continue
		default:
		}
		break
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.file != nil {
		err := e.file.Close()
		e.file = nil
		e.sink = io.Discard
		return err
	}
	return nil
}

func (e *Exporter) loop() {
	defer close(e.done)
	var tick *time.Ticker
	var tickC <-chan time.Time
	if e.interval > 0 {
		tick = time.NewTicker(e.interval)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case sp := <-e.spans:
			e.writeSpanTree(sp)
		case <-tickC:
			_ = e.FlushMetrics()
		case <-e.quit:
			for {
				select {
				case sp := <-e.spans:
					e.writeSpanTree(sp)
				default:
					_ = e.FlushMetrics()
					return
				}
			}
		}
	}
}

// writeSpanTree writes one line per span in the tree. The tree is written
// atomically from the exporter's perspective: a write error drops the
// whole tree (counted once) rather than leaving half a trace behind.
func (e *Exporter) writeSpanTree(sp *Span) {
	lines, err := e.spanLines(sp, nil)
	if err == nil {
		for _, line := range lines {
			if err = e.writeLine(line); err != nil {
				break
			}
		}
	}
	if err != nil {
		e.droppedWrite.Inc()
		return
	}
	e.batchesWritten.Inc()
}

// spanLines flattens a span tree into marshaled NDJSON lines.
func (e *Exporter) spanLines(sp *Span, out [][]byte) ([][]byte, error) {
	rec := spanRecord{
		Type:              "span",
		Service:           e.service,
		Name:              sp.Name(),
		TraceID:           sp.TraceID(),
		SpanID:            sp.SpanID(),
		ParentSpanID:      sp.ParentSpanID(),
		StartTimeUnixNano: sp.start.UnixNano(),
	}
	sp.mu.Lock()
	if !sp.end.IsZero() {
		rec.EndTimeUnixNano = sp.end.UnixNano()
	}
	if len(sp.attrs) > 0 {
		rec.Attributes = make(map[string]any, len(sp.attrs))
		for _, a := range sp.attrs {
			rec.Attributes[a.Key] = a.Value
		}
	}
	sp.mu.Unlock()
	line, err := json.Marshal(rec)
	if err != nil {
		return out, err
	}
	out = append(out, line)
	for _, c := range sp.Children() {
		if out, err = e.spanLines(c, out); err != nil {
			return out, err
		}
	}
	return out, nil
}

// writeLine appends one newline-terminated line to the sink, rotating a
// path-backed file beyond the size limit.
func (e *Exporter) writeLine(line []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.file != nil && e.written+int64(len(line))+1 > e.maxBytes && e.written > 0 {
		if err := e.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := e.sink.Write(append(line, '\n'))
	e.written += int64(n)
	e.bytesOut.Add(int64(n))
	return err
}

// rotateLocked seals the current file as path+".1" (replacing any prior
// rotation) and starts a fresh one. Caller holds e.mu.
func (e *Exporter) rotateLocked() error {
	if err := e.file.Close(); err != nil {
		return err
	}
	if err := os.Rename(e.path, e.path+".1"); err != nil {
		return err
	}
	f, err := os.OpenFile(e.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		e.sink = io.Discard
		e.file = nil
		return err
	}
	e.file, e.sink, e.written = f, f, 0
	return nil
}
