package obs

import (
	"io"
	"log"
	"log/slog"
	"os"
)

// LogConfig is the shared structured-logging handler configuration every
// binary uses, so log shape (level, format, component tagging) is decided
// once per process instead of per package.
type LogConfig struct {
	// W receives log output; nil means os.Stderr.
	W io.Writer
	// Level is the minimum level (default slog.LevelInfo).
	Level slog.Level
	// JSON selects machine-readable JSON lines over logfmt-style text.
	JSON bool
	// Component tags every record with component=<value> when non-empty.
	Component string
}

// NewLogger builds a slog.Logger from the shared config.
func NewLogger(cfg LogConfig) *slog.Logger {
	w := cfg.W
	if w == nil {
		w = os.Stderr
	}
	opts := &slog.HandlerOptions{Level: cfg.Level}
	var h slog.Handler
	if cfg.JSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	l := slog.New(h)
	if cfg.Component != "" {
		l = l.With("component", cfg.Component)
	}
	return l
}

// StdLogger adapts the shared handler config into a *log.Logger for
// packages that still take the standard interface (collectserver.Config);
// every Printf lands as one structured record at the given level.
func StdLogger(cfg LogConfig, level slog.Level) *log.Logger {
	return slog.NewLogLogger(NewLogger(cfg).Handler(), level)
}
