package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is a minimal parser for the Prometheus text exposition format
// (the subset WriteTo emits). The exposition tests golden-parse /metrics
// output through it, and operational tooling can diff two scrapes without
// pulling in a client library.

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the sample name (histogram samples keep their _bucket/_sum/
	// _count suffix).
	Name string
	// Labels holds the label pairs, including histogram "le".
	Labels map[string]string
	// Value is the sample value.
	Value float64
	// Type is the declaring family's kind ("counter", "gauge",
	// "histogram"). Registry.Snapshot always fills it; the text parser
	// leaves it empty (use Exposition.Types there). Consumers needing
	// cumulative semantics (the series store's delta queries) treat
	// counter and histogram samples as monotonic.
	Type string
	// Exemplar is the histogram series' most recent traced observation,
	// attached to the _count sample by Registry.Snapshot; nil otherwise.
	Exemplar *Exemplar
}

// Exposition is a parsed scrape: declared type per family plus every
// sample in input order.
type Exposition struct {
	// Types maps family name → declared TYPE (counter, gauge, histogram).
	Types map[string]string
	// Help maps family name → HELP text.
	Help map[string]string
	// Samples lists every value line in input order.
	Samples []Sample
}

// ParseExposition parses Prometheus text-format input, validating the
// structure WriteTo promises: TYPE before samples, well-formed label
// blocks, numeric values, and cumulative histogram buckets ending in
// le="+Inf" with a consistent _count.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string), Help: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := exp.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if _, ok := exp.Types[familyOf(s.Name)]; !ok {
			return nil, fmt.Errorf("line %d: sample %s precedes its # TYPE", lineNo, s.Name)
		}
		exp.Samples = append(exp.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := exp.validateHistograms(); err != nil {
		return nil, err
	}
	return exp, nil
}

func (e *Exposition) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // free-form comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		if prev, ok := e.Types[fields[2]]; ok && prev != fields[3] {
			return fmt.Errorf("family %s re-declared as %s (was %s)", fields[2], fields[3], prev)
		}
		e.Types[fields[2]] = fields[3]
	case "HELP":
		if len(fields) == 4 {
			e.Help[fields[2]] = fields[3]
		}
	}
	return nil
}

// familyOf strips histogram sample suffixes back to the declared family
// name.
func familyOf(sample string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suffix); ok {
			return base
		}
	}
	return sample
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("expected 'name value', got %q", line)
		}
		s.Name, rest = fields[0], fields[1]
	}
	if s.Name == "" || !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name in %q", line)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	s.Value = v
	return s, nil
}

func validMetricName(name string) bool {
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseLabels(block string, into map[string]string) error {
	rest := block
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label block %q", block)
		}
		key := strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", block)
		}
		val, n, err := readQuoted(rest)
		if err != nil {
			return fmt.Errorf("label %s in %q: %w", key, block, err)
		}
		into[key] = val
		rest = rest[n:]
		rest = strings.TrimPrefix(rest, ",")
	}
	return nil
}

// readQuoted consumes a leading double-quoted string (with \\, \n, \"
// escapes) and returns its value and the bytes consumed.
func readQuoted(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case '\\', '"':
				b.WriteByte(s[i])
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted string")
}

// validateHistograms checks every histogram family: buckets cumulative,
// terminal le="+Inf" bucket present and equal to _count.
func (e *Exposition) validateHistograms() error {
	type hist struct {
		buckets []Sample
		count   map[string]float64 // labelKey (sans le) → _count value
	}
	hists := map[string]*hist{}
	for fam, typ := range e.Types {
		if typ == "histogram" {
			hists[fam] = &hist{count: map[string]float64{}}
		}
	}
	for _, s := range e.Samples {
		fam := familyOf(s.Name)
		h, ok := hists[fam]
		if !ok {
			continue
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			h.buckets = append(h.buckets, s)
		case strings.HasSuffix(s.Name, "_count"):
			h.count[labelKeyWithoutLE(s.Labels)] = s.Value
		}
	}
	for fam, h := range hists {
		bySeries := map[string][]Sample{}
		var order []string
		for _, b := range h.buckets {
			k := labelKeyWithoutLE(b.Labels)
			if _, seen := bySeries[k]; !seen {
				order = append(order, k)
			}
			bySeries[k] = append(bySeries[k], b)
		}
		for _, k := range order {
			buckets := bySeries[k]
			last := buckets[len(buckets)-1]
			if last.Labels["le"] != "+Inf" {
				return fmt.Errorf("histogram %s{%s}: missing le=\"+Inf\" terminal bucket", fam, k)
			}
			prev := -1.0
			for _, b := range buckets {
				if b.Value < prev {
					return fmt.Errorf("histogram %s{%s}: non-cumulative buckets", fam, k)
				}
				prev = b.Value
			}
			if c, ok := h.count[k]; ok && c != last.Value {
				return fmt.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v", fam, k, c, last.Value)
			}
		}
	}
	return nil
}

func labelKeyWithoutLE(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}
