// Package obs is the system's telemetry layer: a dependency-free metrics
// registry with Prometheus text exposition, hierarchical span tracing for
// pipeline stage timing, and a shared log/slog handler configuration. Every
// runtime package (webaudio rendering, study orchestration, the collection
// server/client, storage) reports through it, so one /metrics scrape or one
// -trace-json file shows where time, errors, and records go end to end.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches dimension values to a metric series. Keep cardinality
// bounded: labels become distinct time series on every scrape.
type Labels map[string]string

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use; Counter,
// Gauge and Histogram are get-or-create, so any package may (re)declare a
// series it shares with others.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// Default is the process-wide registry. Library packages (webaudio,
// vectors, storage, collectclient) record here; servers may expose it
// directly or substitute their own registry via configuration.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is one metric name with its help text and all labeled series.
type family struct {
	name string
	help string
	kind metricKind

	mu     sync.RWMutex
	series map[string]any // seriesKey(labels) → *Counter | *Gauge | *Histogram
}

func (r *Registry) family(name, help string, kind metricKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s",
			name, f.kind, kind))
	}
	return f
}

// seriesKey renders labels into a deterministic map key that doubles as the
// exposition label block ("" for unlabeled series).
func seriesKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the exposition format's label-value escaping.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// Counter returns (creating if needed) the counter series name{labels}.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	f := r.family(name, help, kindCounter)
	key := seriesKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.series[key] = c
	return c
}

// Gauge returns (creating if needed) the gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	f := r.family(name, help, kindGauge)
	key := seriesKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.series[key] = g
	return g
}

// GaugeFunc registers a gauge whose value is read at scrape time — for
// live quantities another data structure already tracks (active sessions,
// store record counts). Re-registering the same series replaces fn.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	f := r.family(name, help, kindGauge)
	key := seriesKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series[key] = gaugeFunc(fn)
}

type gaugeFunc func() float64

// Histogram returns (creating if needed) the histogram series name{labels}
// with the given bucket upper bounds (ascending; +Inf is implicit). If the
// series already exists its original buckets are kept.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	f := r.family(name, help, kindHistogram)
	key := seriesKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m.(*Histogram)
	}
	h := newHistogram(buckets)
	f.series[key] = h
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta (may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1; Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric (latencies, sizes).
// Observations are lock-free.
type Histogram struct {
	bounds []float64       // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, per-bucket (non-cumulative)
	count  atomic.Uint64
	sum    atomicFloat
	ex     atomic.Pointer[Exemplar]
}

// Exemplar ties a histogram's distribution back to one concrete traced
// event: the most recent observation recorded with a trace identity. A
// scrape showing a slow bucket then answers "which request/render was
// that?" from the trace file alone.
type Exemplar struct {
	// TraceID is the 32-hex trace the observation happened under.
	TraceID string `json:"trace_id"`
	// Value is the observed value.
	Value float64 `json:"value"`
}

// atomicFloat accumulates float64 values with CAS.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func newHistogram(buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveWithExemplar records one value and, when traceID is non-empty,
// retains it as the series' exemplar (last writer wins — "most recent
// traced observation" is the useful semantic for attribution).
func (h *Histogram) ObserveWithExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID != "" {
		h.ex.Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// Exemplar returns the most recent traced observation, if any.
func (h *Histogram) Exemplar() (Exemplar, bool) {
	if e := h.ex.Load(); e != nil {
		return *e, true
	}
	return Exemplar{}, false
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// LatencyBuckets covers 100µs … ~100s, suitable for request and render
// durations in seconds.
func LatencyBuckets() []float64 {
	return []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025,
		.05, .1, .25, .5, 1, 2.5, 5, 10, 30, 100}
}

// SizeBuckets covers 64B … 16MiB, suitable for payload sizes in bytes.
func SizeBuckets() []float64 {
	return []float64{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10,
		256 << 10, 1 << 20, 4 << 20, 16 << 20}
}

// WriteTo renders the registry in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label block,
// histograms expanded into cumulative _bucket/_sum/_count samples.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, len(names))
	sort.Strings(names)
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.RUnlock()

	cw := &countingWriter{w: w}
	for _, f := range fams {
		if err := f.write(cw); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func (f *family) write(w io.Writer) error {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.RUnlock()

	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for i, m := range series {
		if err := writeSeries(w, f.name, keys[i], m); err != nil {
			return err
		}
	}
	return nil
}

// joinLabels merges a rendered label block with one extra label (for
// histogram le="...").
func joinLabels(block, extra string) string {
	switch {
	case block == "" && extra == "":
		return ""
	case block == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + block + "}"
	}
	return "{" + block + "," + extra + "}"
}

func writeSeries(w io.Writer, name, labelBlock string, m any) error {
	switch m := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, joinLabels(labelBlock, ""), m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, joinLabels(labelBlock, ""), formatFloat(m.Value()))
		return err
	case gaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, joinLabels(labelBlock, ""), formatFloat(m()))
		return err
	case *Histogram:
		var cum uint64
		for i, bound := range m.bounds {
			cum += m.counts[i].Load()
			le := fmt.Sprintf("le=%q", formatFloat(bound))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, joinLabels(labelBlock, le), cum); err != nil {
				return err
			}
		}
		cum += m.counts[len(m.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, joinLabels(labelBlock, `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, joinLabels(labelBlock, ""), formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, joinLabels(labelBlock, ""), m.Count())
		return err
	}
	return fmt.Errorf("obs: unknown series type %T", m)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Snapshot returns every sample in the registry as structured data —
// the same flattening WriteTo renders as text (histograms expand into
// cumulative _bucket/_sum/_count samples) — for consumers that need to
// read values back rather than serve a scrape: the telemetry exporter's
// periodic metrics flush and the watch monitor's error-budget rules.
// Families and series come out in the deterministic exposition order.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.RUnlock()

	var out []Sample
	for _, f := range fams {
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]any, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.RUnlock()
		for i, m := range series {
			out = append(out, sampleSeries(f.name, f.kind.String(), keys[i], m)...)
		}
	}
	return out
}

// sampleSeries flattens one series into Samples; labelBlock is the
// rendered exposition label key (parsed back into a map).
func sampleSeries(name, kind, labelBlock string, m any) []Sample {
	labels := func() map[string]string {
		l := map[string]string{}
		if labelBlock != "" {
			_ = parseLabels(labelBlock, l) // rendered by seriesKey: always parses
		}
		return l
	}
	switch m := m.(type) {
	case *Counter:
		return []Sample{{Name: name, Labels: labels(), Value: float64(m.Value()), Type: kind}}
	case *Gauge:
		return []Sample{{Name: name, Labels: labels(), Value: m.Value(), Type: kind}}
	case gaugeFunc:
		return []Sample{{Name: name, Labels: labels(), Value: m(), Type: kind}}
	case *Histogram:
		out := make([]Sample, 0, len(m.bounds)+3)
		var cum uint64
		for i, bound := range m.bounds {
			cum += m.counts[i].Load()
			l := labels()
			l["le"] = formatFloat(bound)
			out = append(out, Sample{Name: name + "_bucket", Labels: l, Value: float64(cum), Type: kind})
		}
		cum += m.counts[len(m.bounds)].Load()
		l := labels()
		l["le"] = "+Inf"
		out = append(out, Sample{Name: name + "_bucket", Labels: l, Value: float64(cum), Type: kind})
		out = append(out, Sample{Name: name + "_sum", Labels: labels(), Value: m.Sum(), Type: kind})
		countSample := Sample{Name: name + "_count", Labels: labels(), Value: float64(m.Count()), Type: kind}
		if ex, ok := m.Exemplar(); ok {
			countSample.Exemplar = &ex
		}
		out = append(out, countSample)
		return out
	}
	return nil
}

// Handler returns an http.Handler serving the registry exposition — mount
// it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}
