package obs

import "testing"

// FuzzParseTraceparent hammers the propagation parser with malformed
// headers: whatever it accepts must be a valid identity that survives a
// render/re-parse round trip, and nothing may panic. Seeds cover the
// interesting boundaries (short ids, zero ids, forbidden version, flag
// bytes, future-version extra fields); the checked-in corpus under
// testdata/fuzz keeps regressions pinned.
func FuzzParseTraceparent(f *testing.F) {
	for _, seed := range []string{
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-ff",
		"0-1-2-3",
		"----",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tc, err := ParseTraceparent(s)
		if err != nil {
			return
		}
		if !tc.Valid() {
			t.Fatalf("ParseTraceparent(%q) accepted invalid identity %+v", s, tc)
		}
		again, err := ParseTraceparent(tc.Traceparent())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", tc.Traceparent(), s, err)
		}
		if again != tc {
			t.Fatalf("round trip drifted: %+v → %+v", tc, again)
		}
	})
}
