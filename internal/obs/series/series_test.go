package series

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock hands out strictly increasing timestamps one second apart.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Second)
	return c.t
}

func newTestStore(t *testing.T, reg *obs.Registry, capacity int) (*Store, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	s := New(Config{Registry: reg, Capacity: capacity, Now: clk.now})
	t.Cleanup(s.Close)
	return s, clk
}

func TestTickRetainsCounterAndGauge(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("jobs_total", "jobs", obs.Labels{"kind": "render"})
	g := reg.Gauge("queue_depth", "depth", nil)
	s, _ := newTestStore(t, reg, 16)

	for i := 1; i <= 3; i++ {
		c.Add(int64(i * 10))
		g.Set(float64(i))
		s.Tick()
	}

	res, ok := s.Query("jobs_total", time.Time{}, false)
	if !ok {
		t.Fatal("jobs_total not retained")
	}
	if res.Type != "counter" {
		t.Fatalf("type = %q, want counter", res.Type)
	}
	if len(res.Series) != 1 {
		t.Fatalf("series = %d, want 1", len(res.Series))
	}
	sr := res.Series[0]
	if sr.Labels["kind"] != "render" {
		t.Fatalf("labels = %v", sr.Labels)
	}
	wantVals := []float64{10, 30, 60} // cumulative raw values
	if len(sr.Points) != len(wantVals) {
		t.Fatalf("points = %d, want %d", len(sr.Points), len(wantVals))
	}
	for i, p := range sr.Points {
		if p.V != wantVals[i] {
			t.Fatalf("point %d = %v, want %v", i, p.V, wantVals[i])
		}
		if i > 0 && p.T <= sr.Points[i-1].T {
			t.Fatalf("timestamps not increasing: %v", sr.Points)
		}
	}

	gres, ok := s.Query("queue_depth", time.Time{}, false)
	if !ok || gres.Type != "gauge" {
		t.Fatalf("queue_depth: ok=%v type=%q", ok, gres.Type)
	}
	gp := gres.Series[0].Points
	if len(gp) != 3 || gp[0].V != 1 || gp[2].V != 3 {
		t.Fatalf("gauge points = %v", gp)
	}
}

func TestCounterDeltaQueryAndResets(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("hits_total", "", nil)
	g := reg.Gauge("level", "", nil)
	s, _ := newTestStore(t, reg, 16)

	c.Add(5)
	g.Set(7)
	s.Tick() // 5
	c.Add(2)
	s.Tick() // 7
	c.Add(10)
	s.Tick() // 17

	res, _ := s.Query("hits_total", time.Time{}, true)
	if !res.Delta {
		t.Fatal("delta flag not set for counter")
	}
	pts := res.Series[0].Points
	want := []float64{2, 10}
	if len(pts) != len(want) {
		t.Fatalf("delta points = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i].V != want[i] {
			t.Fatalf("delta %d = %v, want %v", i, pts[i].V, want[i])
		}
	}

	// Gauges never get deltas, even when asked.
	gres, _ := s.Query("level", time.Time{}, true)
	if gres.Delta {
		t.Fatal("gauge query claimed delta semantics")
	}
	if gres.Series[0].Points[0].V != 7 {
		t.Fatalf("gauge point = %v", gres.Series[0].Points)
	}
}

func TestRingBoundsMemory(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("x_total", "", nil)
	s, _ := newTestStore(t, reg, 4)
	for i := 0; i < 10; i++ {
		c.Inc()
		s.Tick()
	}
	res, _ := s.Query("x_total", time.Time{}, false)
	pts := res.Series[0].Points
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want capacity 4", len(pts))
	}
	// Oldest-first and the newest 4 of the 10 values.
	want := []float64{7, 8, 9, 10}
	for i := range want {
		if pts[i].V != want[i] {
			t.Fatalf("ring points = %v, want %v", pts, want)
		}
	}
}

func TestQuerySinceCutsOldPoints(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v", "", nil)
	s, clk := newTestStore(t, reg, 16)
	for i := 1; i <= 5; i++ {
		g.Set(float64(i))
		s.Tick()
	}
	clk.mu.Lock()
	cut := clk.t.Add(-time.Second) // keep the last 2 points (ticks are 1s apart)
	clk.mu.Unlock()
	res, _ := s.Query("v", cut, false)
	pts := res.Series[0].Points
	if len(pts) != 2 || pts[0].V != 4 || pts[1].V != 5 {
		t.Fatalf("since-cut points = %v", pts)
	}
}

func TestHistogramBucketsExcludedByDefault(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat_seconds", "", []float64{0.1, 1}, nil)
	h.ObserveWithExemplar(0.5, "aabbccdd00112233aabbccdd00112233")
	s, _ := newTestStore(t, reg, 8)
	s.Tick()

	if _, ok := s.Query("lat_seconds_bucket", time.Time{}, false); ok {
		t.Fatal("bucket series retained despite KeepBuckets=false")
	}
	cres, ok := s.Query("lat_seconds_count", time.Time{}, false)
	if !ok || cres.Series[0].Points[0].V != 1 {
		t.Fatalf("count series: ok=%v res=%+v", ok, cres)
	}
	if cres.Exemplar == nil || cres.Exemplar.TraceID != "aabbccdd00112233aabbccdd00112233" {
		t.Fatalf("exemplar not carried: %+v", cres.Exemplar)
	}
	if _, ok := s.Query("lat_seconds_sum", time.Time{}, false); !ok {
		t.Fatal("sum series missing")
	}

	kb := New(Config{Registry: reg, KeepBuckets: true, Now: time.Now})
	defer kb.Close()
	kb.Tick()
	bres, ok := kb.Query("lat_seconds_bucket", time.Time{}, false)
	if !ok || len(bres.Series) != 3 { // 0.1, 1, +Inf
		t.Fatalf("KeepBuckets: ok=%v series=%d", ok, len(bres.Series))
	}
}

func TestMaxSeriesCapDropsAndCounts(t *testing.T) {
	reg := obs.NewRegistry()
	for i := 0; i < 6; i++ {
		reg.Counter("many_total", "", obs.Labels{"i": string(rune('a' + i))}).Inc()
	}
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	// MaxSeries must leave room for the store's own two counters, which
	// snapshot like everything else.
	s := New(Config{Registry: reg, MaxSeries: 5, Now: clk.now})
	defer s.Close()
	s.Tick()
	res, _ := s.Query("many_total", time.Time{}, false)
	if len(res.Series) >= 6 {
		t.Fatalf("series cap not applied: %d", len(res.Series))
	}
	if reg.Counter("series_store_dropped_total", "", nil).Value() == 0 {
		t.Fatal("dropped samples not counted")
	}
}

func TestCatalog(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("b_total", "", nil).Inc()
	reg.Gauge("a_gauge", "", nil).Set(1)
	s, _ := newTestStore(t, reg, 8)
	s.Tick()
	s.Tick()
	cat := s.Catalog()
	if len(cat) < 2 {
		t.Fatalf("catalog entries = %d", len(cat))
	}
	for i := 1; i < len(cat); i++ {
		if cat[i-1].Metric >= cat[i].Metric {
			t.Fatalf("catalog not sorted: %v >= %v", cat[i-1].Metric, cat[i].Metric)
		}
	}
	var found bool
	for _, e := range cat {
		if e.Metric == "b_total" {
			found = true
			if e.Type != "counter" || e.Series != 1 || e.Points != 2 {
				t.Fatalf("b_total entry = %+v", e)
			}
			if e.OldestT == 0 || e.NewestT <= e.OldestT {
				t.Fatalf("b_total window = %+v", e)
			}
		}
	}
	if !found {
		t.Fatal("b_total missing from catalog")
	}
}

// TestConcurrentWritersAndQueries is the acceptance property: the store
// returns correct, bounded series while metric writers, the ticker and
// queriers all run concurrently (meaningful under -race).
func TestConcurrentWritersAndQueries(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("conc_total", "", nil)
	g := reg.Gauge("conc_gauge", "", nil)
	s, _ := newTestStore(t, reg, 32)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					g.Add(1)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s.Tick()
			s.Query("conc_total", time.Time{}, true)
			s.Catalog()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Query("conc_gauge", time.Time{}, false)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	res, ok := s.Query("conc_total", time.Time{}, false)
	if !ok {
		t.Fatal("conc_total missing")
	}
	pts := res.Series[0].Points
	if len(pts) == 0 || len(pts) > 32 {
		t.Fatalf("unbounded or empty ring: %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].V < pts[i-1].V {
			t.Fatalf("counter series not monotone: %v", pts)
		}
	}
}

func TestStartAndCloseLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("lc_total", "", nil).Inc()
	s := New(Config{Registry: reg, Interval: time.Millisecond, Now: time.Now})
	s.Start()
	s.Start() // idempotent
	deadline := time.After(2 * time.Second)
	for {
		if _, ok := s.Query("lc_total", time.Time{}, false); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("background ticker never snapshotted")
		case <-time.After(time.Millisecond):
		}
	}
	s.Close()
	s.Close() // idempotent

	// Close without Start must not hang.
	s2 := New(Config{Registry: reg, Now: time.Now})
	s2.Close()
}
