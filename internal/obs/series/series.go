// Package series is the render plane's flight recorder: a dependency-free
// in-process time-series store that snapshots every metric of an obs
// registry on a fixed tick into bounded ring buffers. Where /metrics is a
// point-in-time scrape, the series store answers "what did this counter do
// over the last ten minutes?" — the question the watch layer's EWMA rules,
// a bench-regression bisect, or a fleet roll-up actually asks. Memory is
// bounded three ways: a fixed point capacity per series, a cap on the
// total series count, and histogram bucket samples excluded by default
// (the highest-cardinality expansion of a scrape).
package series

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config parameterizes New.
type Config struct {
	// Registry is the metrics source; nil uses obs.Default.
	Registry *obs.Registry
	// Interval is the snapshot tick (default 5s). Start spawns the
	// ticking goroutine; tests drive Tick directly instead.
	Interval time.Duration
	// Capacity bounds retained points per series (default 720 — one hour
	// at the default tick). The ring overwrites oldest-first.
	Capacity int
	// MaxSeries bounds distinct series (default 4096). New series beyond
	// the cap are dropped and counted on series_store_dropped_total.
	MaxSeries int
	// KeepBuckets retains histogram _bucket samples (off by default:
	// every bucket is its own series, and _sum/_count carry the
	// latency/size signal the time-series consumers need).
	KeepBuckets bool
	// Now supplies timestamps (tests override); nil means time.Now.
	Now func() time.Time
}

// Point is one retained observation.
type Point struct {
	// T is the snapshot time in unix milliseconds.
	T int64 `json:"t"`
	// V is the sample value at T.
	V float64 `json:"v"`
}

// ring is one series' bounded history.
type ring struct {
	labels map[string]string
	pts    []Point // capacity-sized once full
	head   int     // index of oldest point when full
	full   bool
}

func (rg *ring) append(p Point, capacity int) {
	if !rg.full {
		rg.pts = append(rg.pts, p)
		if len(rg.pts) == capacity {
			rg.full = true
		}
		return
	}
	rg.pts[rg.head] = p
	rg.head = (rg.head + 1) % len(rg.pts)
}

// points returns the ring's contents oldest-first.
func (rg *ring) points() []Point {
	out := make([]Point, 0, len(rg.pts))
	if rg.full {
		out = append(out, rg.pts[rg.head:]...)
		out = append(out, rg.pts[:rg.head]...)
		return out
	}
	return append(out, rg.pts...)
}

// metricState groups every labeled series of one metric name.
type metricState struct {
	typ      string
	rings    map[string]*ring // label key → ring
	order    []string         // label keys in first-seen order
	exemplar *obs.Exemplar    // most recent histogram exemplar, if any
}

// Store is the in-process TSDB. All methods are safe for concurrent use;
// Tick and Query may race freely with metric writers (registry metrics are
// lock-free) and with each other.
type Store struct {
	reg         *obs.Registry
	interval    time.Duration
	capacity    int
	maxSeries   int
	keepBuckets bool
	now         func() time.Time

	ticks   *obs.Counter
	dropped *obs.Counter

	quit      chan struct{}
	done      chan struct{}
	startOnce sync.Once
	closeOnce sync.Once

	mu      sync.RWMutex
	metrics map[string]*metricState
	names   []string // sorted metric names (catalog order)
	nSeries int
}

// New builds a Store; call Start to begin ticking (or drive Tick manually).
func New(cfg Config) *Store {
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 720
	}
	if cfg.MaxSeries <= 0 {
		cfg.MaxSeries = 4096
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Store{
		reg:         cfg.Registry,
		interval:    cfg.Interval,
		capacity:    cfg.Capacity,
		maxSeries:   cfg.MaxSeries,
		keepBuckets: cfg.KeepBuckets,
		now:         cfg.Now,
		ticks: cfg.Registry.Counter("series_store_ticks_total",
			"Registry snapshots taken by the series store.", nil),
		dropped: cfg.Registry.Counter("series_store_dropped_total",
			"Samples dropped by the series store's series-count bound.", nil),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		metrics: make(map[string]*metricState),
	}
}

// Start launches the background ticking goroutine. Idempotent.
func (s *Store) Start() {
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.Tick()
				case <-s.quit:
					return
				}
			}
		}()
	})
}

// Close stops the ticking goroutine. Safe to call more than once, and
// without a prior Start.
func (s *Store) Close() {
	s.closeOnce.Do(func() { close(s.quit) })
	s.startOnce.Do(func() { close(s.done) }) // never started: nothing to wait for
	<-s.done
}

// Interval returns the configured snapshot tick.
func (s *Store) Interval() time.Duration { return s.interval }

// labelKey renders labels deterministically (the registry's exposition
// label-block convention) for use as a map key.
func labelKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// Tick takes one registry snapshot and appends every sample to its ring.
// Counters are stored as their raw cumulative values — deltas are computed
// at query time (delta-aware for resets), so a late subscriber still sees
// the full retained history.
func (s *Store) Tick() {
	samples := s.reg.Snapshot()
	t := s.now().UnixMilli()
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range samples {
		sm := &samples[i]
		if !s.keepBuckets && strings.HasSuffix(sm.Name, "_bucket") {
			if _, isHist := sm.Labels["le"]; isHist {
				continue
			}
		}
		ms, ok := s.metrics[sm.Name]
		if !ok {
			ms = &metricState{typ: sm.Type, rings: make(map[string]*ring)}
			s.metrics[sm.Name] = ms
			s.names = append(s.names, sm.Name)
			sort.Strings(s.names)
		}
		if sm.Exemplar != nil {
			ms.exemplar = sm.Exemplar
		}
		key := labelKey(sm.Labels)
		rg, ok := ms.rings[key]
		if !ok {
			if s.nSeries >= s.maxSeries {
				s.dropped.Inc()
				continue
			}
			rg = &ring{labels: sm.Labels}
			ms.rings[key] = rg
			ms.order = append(ms.order, key)
			s.nSeries++
		}
		rg.append(Point{T: t, V: sm.Value}, s.capacity)
	}
	s.ticks.Inc()
}

// Series is one labeled series' retained points, oldest first.
type Series struct {
	Labels map[string]string `json:"labels,omitempty"`
	Points []Point           `json:"points"`
}

// QueryResult is the payload of one metric query.
type QueryResult struct {
	// Metric echoes the queried name.
	Metric string `json:"metric"`
	// Type is the metric kind ("counter", "gauge", "histogram").
	Type string `json:"type"`
	// Delta reports whether Points hold per-tick deltas (counters only).
	Delta bool `json:"delta,omitempty"`
	// Series lists every labeled series, in first-seen order.
	Series []Series `json:"series"`
	// Exemplar is the metric's most recent traced observation (histogram
	// families only).
	Exemplar *obs.Exemplar `json:"exemplar,omitempty"`
}

// cumulative reports whether a metric type's values are monotonic — the
// types whose deltas (not levels) are the interesting signal.
func cumulative(typ string) bool { return typ == "counter" || typ == "histogram" }

// Query returns metric's retained series, restricted to points at or after
// since (zero time = everything). With delta=true and a cumulative metric,
// points become per-tick increases; a counter reset (value decreasing)
// yields the post-reset value, the standard rate-reconstruction rule. The
// second return is false when the metric has never been snapshotted.
func (s *Store) Query(metric string, since time.Time, delta bool) (QueryResult, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ms, ok := s.metrics[metric]
	if !ok {
		return QueryResult{}, false
	}
	res := QueryResult{
		Metric:   metric,
		Type:     ms.typ,
		Delta:    delta && cumulative(ms.typ),
		Series:   make([]Series, 0, len(ms.order)),
		Exemplar: ms.exemplar,
	}
	cut := int64(0)
	if !since.IsZero() {
		cut = since.UnixMilli()
	}
	for _, key := range ms.order {
		pts := ms.rings[key].points()
		if res.Delta {
			pts = deltas(pts)
		}
		if cut > 0 {
			i := sort.Search(len(pts), func(i int) bool { return pts[i].T >= cut })
			pts = pts[i:]
		}
		res.Series = append(res.Series, Series{Labels: ms.rings[key].labels, Points: pts})
	}
	return res, true
}

// deltas converts cumulative points into per-tick increases. The first
// point has no predecessor and is dropped; a decrease means the underlying
// counter reset, so the new value itself is the best lower bound on the
// increase.
func deltas(pts []Point) []Point {
	if len(pts) < 2 {
		return []Point{}
	}
	out := make([]Point, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		d := pts[i].V - pts[i-1].V
		if d < 0 {
			d = pts[i].V
		}
		out = append(out, Point{T: pts[i].T, V: d})
	}
	return out
}

// CatalogEntry summarizes one retained metric for the catalog endpoint.
type CatalogEntry struct {
	Metric string `json:"metric"`
	Type   string `json:"type"`
	// Series is the number of labeled series retained for this metric.
	Series int `json:"series"`
	// Points is the total retained point count across those series.
	Points int `json:"points"`
	// OldestT/NewestT bound the retained window (unix milliseconds; zero
	// when no points are retained yet).
	OldestT int64 `json:"oldest_t,omitempty"`
	NewestT int64 `json:"newest_t,omitempty"`
}

// Catalog lists every retained metric in name order — the compact map a
// consumer reads before issuing queries.
func (s *Store) Catalog() []CatalogEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]CatalogEntry, 0, len(s.names))
	for _, name := range s.names {
		ms := s.metrics[name]
		e := CatalogEntry{Metric: name, Type: ms.typ, Series: len(ms.rings)}
		for _, rg := range ms.rings {
			pts := rg.points()
			e.Points += len(pts)
			if len(pts) > 0 {
				if e.OldestT == 0 || pts[0].T < e.OldestT {
					e.OldestT = pts[0].T
				}
				if pts[len(pts)-1].T > e.NewestT {
					e.NewestT = pts[len(pts)-1].T
				}
			}
		}
		out = append(out, e)
	}
	return out
}
