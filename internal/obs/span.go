package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed stage of a pipeline run. Spans form a tree: study
// rendering, collation, the analysis sweeps and report rendering each hang
// off the run's root span, giving a machine-readable stage-timing profile
// (WriteJSON) and a human-readable one (WriteText).
//
// All methods are safe on a nil *Span (they no-op), so instrumented code
// can run untraced without branching at every call site.
type Span struct {
	name  string
	start time.Time

	// Propagation identity (immutable after creation): traceID is shared
	// by every span of one logical trace — across processes, via the
	// traceparent header — spanID names this span, and parent names the
	// span it hangs under ("" for roots). See propagation.go.
	traceID string
	spanID  string
	parent  string

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Attr is one span annotation, in insertion order.
type Attr struct {
	Key   string
	Value any
}

// NewTrace starts a root span with a fresh trace identity. End it before
// exporting.
func NewTrace(name string) *Span {
	return &Span{name: name, start: time.Now(), traceID: newTraceID(), spanID: newSpanID()}
}

// StartChild starts a sub-span under s, inheriting its trace identity.
// Safe to call from multiple goroutines (parallel stages each open their
// own child).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), traceID: s.traceID, spanID: newSpanID(), parent: s.spanID}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// TraceID returns the span's 32-hex-digit trace identity ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SpanID returns the span's 16-hex-digit identity ("" on nil).
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// ParentSpanID returns the span id this span hangs under — the in-process
// parent, or the remote caller's span for NewRemoteChild spans ("" for
// roots).
func (s *Span) ParentSpanID() string {
	if s == nil {
		return ""
	}
	return s.parent
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End marks the span finished. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Name returns the span's stage name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns end−start for finished spans and now−start for running
// ones.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Children returns a snapshot of the direct sub-spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first span in the tree (pre-order) whose name matches,
// or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if got := c.Find(name); got != nil {
			return got
		}
	}
	return nil
}

type ctxKey struct{}

// ContextWithSpan returns a context carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start opens a child of the context's active span (or a new root when the
// context carries none) and returns a context with the child active.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	var sp *Span
	if parent != nil {
		sp = parent.StartChild(name)
	} else {
		sp = NewTrace(name)
	}
	return ContextWithSpan(ctx, sp), sp
}

// SpanJSON is the exported form of a span tree.
type SpanJSON struct {
	Name       string         `json:"name"`
	StartUS    int64          `json:"start_us"`
	DurationUS int64          `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanJSON     `json:"children,omitempty"`
}

// Export snapshots the span tree.
func (s *Span) Export() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	s.mu.Lock()
	out := SpanJSON{
		Name:       s.name,
		StartUS:    s.start.UnixMicro(),
		DurationUS: s.durationLocked().Microseconds(),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.Export())
	}
	return out
}

func (s *Span) durationLocked() time.Duration {
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// WriteJSON writes the span tree as indented JSON.
func (s *Span) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Export())
}

// WriteText writes an indented stage-timing report: one line per span with
// duration, share of the root's wall time, and attributes.
func (s *Span) WriteText(w io.Writer) error {
	if s == nil {
		return nil
	}
	root := s.Duration()
	if root <= 0 {
		root = time.Nanosecond
	}
	return s.writeText(w, 0, root)
}

func (s *Span) writeText(w io.Writer, depth int, root time.Duration) error {
	d := s.Duration()
	width := 36 - 2*depth
	if width < 1 {
		width = 1
	}
	line := fmt.Sprintf("%s%-*s %10s %6.1f%%",
		strings.Repeat("  ", depth), width, s.name,
		d.Round(time.Microsecond), 100*float64(d)/float64(root))
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	s.mu.Unlock()
	if len(attrs) > 0 {
		parts := make([]string, len(attrs))
		for i, a := range attrs {
			parts[i] = fmt.Sprintf("%s=%v", a.Key, a.Value)
		}
		line += "  " + strings.Join(parts, " ")
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := c.writeText(w, depth+1, root); err != nil {
			return err
		}
	}
	return nil
}

// StageDurations flattens the tree into name → summed duration across all
// spans sharing a name (sweep cells, per-vector collations). Useful for
// diffing two trace files.
func (s *Span) StageDurations() map[string]time.Duration {
	out := make(map[string]time.Duration)
	s.accumulate(out)
	return out
}

func (s *Span) accumulate(out map[string]time.Duration) {
	if s == nil {
		return
	}
	out[s.name] += s.Duration()
	for _, c := range s.Children() {
		c.accumulate(out)
	}
}

// StageNames returns the sorted distinct stage names in the tree.
func (s *Span) StageNames() []string {
	m := s.StageDurations()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
