package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"net/http"
	"strings"
)

// Cross-process trace propagation in the W3C Trace Context header format:
// the collection client stamps every outgoing request with a traceparent
// header carrying the active span's identity, and the collection server
// joins its request span to that identity, so one trace id follows a
// record from agent submit through ingest, store append, and streaming
// apply — across the process boundary.
//
// Wire form (https://www.w3.org/TR/trace-context/):
//
//	traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	             │  │                                │                │
//	             │  trace-id (16 bytes hex)          parent-id        flags
//	             version                             (8 bytes hex)
//
// ParseTraceparent is strict about the fields this implementation relies
// on (lowercase hex, non-zero ids, known field widths) and — per the spec
// — tolerates future versions that append extra fields.

// TraceparentHeader is the canonical propagation header name.
const TraceparentHeader = "traceparent"

// traceFlagSampled is the only trace-flag bit the spec currently defines.
const traceFlagSampled = 0x01

// TraceContext is a span's cross-process identity: what travels in the
// traceparent header.
type TraceContext struct {
	// TraceID is the 32-lowercase-hex-digit trace identity.
	TraceID string
	// SpanID is the 16-lowercase-hex-digit id of the calling span — the
	// remote parent of whatever span the receiver starts.
	SpanID string
	// Sampled carries the sampled flag bit.
	Sampled bool
}

// Valid reports whether the context carries a usable (non-zero, well-
// formed) identity.
func (tc TraceContext) Valid() bool {
	return isHexID(tc.TraceID, 32) && isHexID(tc.SpanID, 16)
}

// Traceparent renders the context in the wire format (version 00).
func (tc TraceContext) Traceparent() string {
	flags := "00"
	if tc.Sampled {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// ParseTraceparent parses a traceparent header value. It rejects malformed
// versions, field widths, non-lowercase hex, and all-zero ids; a version
// beyond 00 is accepted with the 00 field layout, including appended
// extra fields (the spec's forward-compatibility rule).
func ParseTraceparent(s string) (TraceContext, error) {
	parts := strings.Split(s, "-")
	if len(parts) < 4 {
		return TraceContext{}, fmt.Errorf("obs: traceparent has %d fields, want 4", len(parts))
	}
	version := parts[0]
	if !isHexField(version, 2) {
		return TraceContext{}, fmt.Errorf("obs: bad traceparent version %q", version)
	}
	if version == "ff" {
		return TraceContext{}, fmt.Errorf("obs: traceparent version ff is forbidden")
	}
	if version == "00" && len(parts) != 4 {
		return TraceContext{}, fmt.Errorf("obs: version 00 traceparent has %d fields, want 4", len(parts))
	}
	tc := TraceContext{TraceID: parts[1], SpanID: parts[2]}
	if !isHexID(tc.TraceID, 32) {
		return TraceContext{}, fmt.Errorf("obs: bad trace-id %q", tc.TraceID)
	}
	if !isHexID(tc.SpanID, 16) {
		return TraceContext{}, fmt.Errorf("obs: bad parent-id %q", tc.SpanID)
	}
	flags := parts[3]
	if !isHexField(flags, 2) {
		return TraceContext{}, fmt.Errorf("obs: bad trace-flags %q", flags)
	}
	b, _ := hex.DecodeString(flags)
	tc.Sampled = b[0]&traceFlagSampled != 0
	return tc, nil
}

// isHexField reports whether s is exactly n lowercase hex digits.
func isHexField(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// isHexID is isHexField plus the spec's not-all-zero rule.
func isHexID(s string, n int) bool {
	if !isHexField(s, n) {
		return false
	}
	return strings.Trim(s, "0") != ""
}

// TraceContextOf returns a span's propagation identity. The second return
// is false for nil spans and spans created before tracing was wired (zero
// identity).
func TraceContextOf(s *Span) (TraceContext, bool) {
	if s == nil {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: s.traceID, SpanID: s.spanID, Sampled: true}
	return tc, tc.Valid()
}

// Inject stamps the context's active span onto h as a traceparent header.
// A context without a span (or with an identity-less span) leaves h
// untouched.
func Inject(ctx context.Context, h http.Header) {
	if tc, ok := TraceContextOf(SpanFromContext(ctx)); ok {
		h.Set(TraceparentHeader, tc.Traceparent())
	}
}

// Extract parses the traceparent header from h. ok is false when the
// header is absent or malformed (a malformed header is deliberately
// dropped rather than propagated, per the spec's restart rule).
func Extract(h http.Header) (TraceContext, bool) {
	v := h.Get(TraceparentHeader)
	if v == "" {
		return TraceContext{}, false
	}
	tc, err := ParseTraceparent(v)
	if err != nil {
		return TraceContext{}, false
	}
	return tc, true
}

// NewRemoteChild starts a local root span joined to a remote caller's
// trace: it shares tc's trace id and records tc's span as its parent, so
// an exporter on each side of the process boundary emits spans that
// assemble into one distributed trace. An invalid tc degrades to NewTrace.
func NewRemoteChild(name string, tc TraceContext) *Span {
	if !tc.Valid() {
		return NewTrace(name)
	}
	sp := NewTrace(name)
	sp.traceID = tc.TraceID
	sp.parent = tc.SpanID
	return sp
}

// newTraceID returns 16 random bytes as lowercase hex, never all-zero.
func newTraceID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], rand.Uint64())
	binary.BigEndian.PutUint64(b[8:], rand.Uint64()|1)
	return hex.EncodeToString(b[:])
}

// newSpanID returns 8 random bytes as lowercase hex, never all-zero.
func newSpanID() string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rand.Uint64()|1)
	return hex.EncodeToString(b[:])
}
