package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) *Exposition {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	exp, err := ParseExposition(&buf)
	if err != nil {
		t.Fatalf("ParseExposition: %v\nexposition:\n%s", err, buf.String())
	}
	return exp
}

func findSample(exp *Exposition, name string, labels map[string]string) (Sample, bool) {
outer:
	for _, s := range exp.Samples {
		if s.Name != name {
			continue
		}
		for k, v := range labels {
			if s.Labels[k] != v {
				continue outer
			}
		}
		return s, true
	}
	return Sample{}, false
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "total requests", Labels{"route": "submit", "class": "2xx"}).Add(7)
	r.Counter("requests_total", "total requests", Labels{"route": "stats", "class": "4xx"}).Inc()
	r.Gauge("workers_active", "active workers", nil).Set(3)
	r.GaugeFunc("store_records", "records in the store", nil, func() float64 { return 42 })
	h := r.Histogram("latency_seconds", "request latency", LatencyBuckets(), Labels{"route": "submit"})
	h.Observe(0.0004)
	h.Observe(0.03)
	h.Observe(250) // beyond the last bound → +Inf bucket only

	exp := scrape(t, r)

	for fam, typ := range map[string]string{
		"requests_total":  "counter",
		"workers_active":  "gauge",
		"store_records":   "gauge",
		"latency_seconds": "histogram",
	} {
		if exp.Types[fam] != typ {
			t.Errorf("family %s: TYPE %q, want %q", fam, exp.Types[fam], typ)
		}
	}
	if s, ok := findSample(exp, "requests_total", map[string]string{"route": "submit"}); !ok || s.Value != 7 {
		t.Errorf("requests_total{route=submit} = %+v, %t", s, ok)
	}
	if s, ok := findSample(exp, "store_records", nil); !ok || s.Value != 42 {
		t.Errorf("store_records = %+v, %t", s, ok)
	}
	if s, ok := findSample(exp, "latency_seconds_count", nil); !ok || s.Value != 3 {
		t.Errorf("latency_seconds_count = %+v, %t", s, ok)
	}
	if s, ok := findSample(exp, "latency_seconds_bucket", map[string]string{"le": "+Inf"}); !ok || s.Value != 3 {
		t.Errorf("+Inf bucket = %+v, %t", s, ok)
	}
	if s, ok := findSample(exp, "latency_seconds_bucket", map[string]string{"le": "0.05"}); !ok || s.Value != 2 {
		t.Errorf("le=0.05 bucket = %+v, %t (buckets must be cumulative)", s, ok)
	}
	if s, ok := findSample(exp, "latency_seconds_sum", nil); !ok || math.Abs(s.Value-250.0304) > 1e-9 {
		t.Errorf("latency_seconds_sum = %+v, %t", s, ok)
	}
}

func TestGetOrCreateReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "", Labels{"k": "v"})
	b := r.Counter("c_total", "", Labels{"k": "v"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if c := r.Counter("c_total", "", Labels{"k": "w"}); c == a {
		t.Fatal("different labels shared a series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("c_total", "", nil)
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Labels{"path": `a\b` + "\n" + `"q"`}).Inc()
	exp := scrape(t, r)
	s, ok := findSample(exp, "esc_total", nil)
	if !ok {
		t.Fatal("escaped sample not parsed")
	}
	if got := s.Labels["path"]; got != `a\b`+"\n"+`"q"` {
		t.Errorf("label round-trip: %q", got)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter went backwards: %d", c.Value())
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// concurrent series creation, counter/gauge/histogram updates and scrapes —
// and then checks nothing was lost. Run under -race (make check does).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 16
		iters      = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			route := fmt.Sprintf("r%d", g%4)
			for i := 0; i < iters; i++ {
				r.Counter("hammer_total", "", Labels{"route": route}).Inc()
				r.Gauge("hammer_active", "", nil).Add(1)
				r.Histogram("hammer_seconds", "", LatencyBuckets(), Labels{"route": route}).
					Observe(float64(i%100) / 1000)
				r.Gauge("hammer_active", "", nil).Add(-1)
				if i%500 == 0 {
					var buf bytes.Buffer
					if _, err := r.WriteTo(&buf); err != nil {
						t.Errorf("concurrent WriteTo: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	exp := scrape(t, r)
	var total float64
	for _, s := range exp.Samples {
		if s.Name == "hammer_total" {
			total += s.Value
		}
	}
	if want := float64(goroutines * iters); total != want {
		t.Errorf("lost counter increments: %v, want %v", total, want)
	}
	var count float64
	for _, s := range exp.Samples {
		if s.Name == "hammer_seconds_count" {
			count += s.Value
		}
	}
	if want := float64(goroutines * iters); count != want {
		t.Errorf("lost histogram observations: %v, want %v", count, want)
	}
	if g, ok := findSample(exp, "hammer_active", nil); !ok || g.Value != 0 {
		t.Errorf("gauge should balance to 0: %+v", g)
	}
}

func TestParserRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_type_declared 1\n",
		"# TYPE x counter\nx{unterminated=\"v 1\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\n", // no +Inf terminal
	} {
		if _, err := ParseExposition(strings.NewReader(bad)); err == nil {
			t.Errorf("parser accepted malformed input:\n%s", bad)
		}
	}
}
