package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe in-memory sink.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// decodeLines parses every NDJSON line into a generic map.
func decodeLines(t *testing.T, data string) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(strings.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func TestExporterWritesSpansAndMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "demo", nil).Add(7)
	sink := &syncBuffer{}
	exp, err := NewExporter(ExportConfig{Sink: sink, Registry: reg, Interval: -1, Service: "unittest"})
	if err != nil {
		t.Fatal(err)
	}

	root := NewTrace("request")
	child := root.StartChild("store.append")
	child.SetAttr("records", 3)
	child.End()
	root.End()
	exp.ExportSpan(root)
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}

	lines := decodeLines(t, sink.String())
	var spans, metrics []map[string]any
	for _, l := range lines {
		switch l["type"] {
		case "span":
			spans = append(spans, l)
		case "metrics":
			metrics = append(metrics, l)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("got %d span lines, want 2", len(spans))
	}
	if spans[0]["name"] != "request" || spans[1]["name"] != "store.append" {
		t.Fatalf("span order: %v, %v", spans[0]["name"], spans[1]["name"])
	}
	if spans[0]["traceId"] != root.TraceID() || spans[1]["traceId"] != root.TraceID() {
		t.Fatal("span lines do not share the trace id")
	}
	if spans[1]["parentSpanId"] != root.SpanID() {
		t.Fatalf("child parentSpanId %v, want %v", spans[1]["parentSpanId"], root.SpanID())
	}
	if spans[0]["service"] != "unittest" {
		t.Fatalf("service %v", spans[0]["service"])
	}
	if spans[1]["endTimeUnixNano"] == float64(0) {
		t.Fatal("finished span exported without an end time")
	}
	attrs, _ := spans[1]["attributes"].(map[string]any)
	if attrs["records"] != float64(3) {
		t.Fatalf("attributes %v", attrs)
	}
	// Close flushes a final registry snapshot including demo_total.
	if len(metrics) == 0 {
		t.Fatal("no metrics line written on Close")
	}
	found := false
	for _, m := range metrics {
		for _, s := range m["metrics"].([]any) {
			sm := s.(map[string]any)
			if sm["name"] == "demo_total" && sm["value"] == float64(7) {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("demo_total missing from metrics snapshot")
	}
}

func TestExporterRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "telemetry.ndjson")
	exp, err := NewExporter(ExportConfig{
		Path: path, Registry: NewRegistry(), Interval: -1, MaxFileBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		sp := NewTrace("rotate-me")
		sp.SetAttr("i", i)
		sp.End()
		exp.ExportSpan(sp)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 2048+512 {
		t.Fatalf("active file %d bytes despite 2048-byte rotation limit", st.Size())
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("no rotated file: %v", err)
	}
	// Both generations hold well-formed NDJSON.
	for _, p := range []string{path, path + ".1"} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		decodeLines(t, string(data))
	}
}

// gateWriter blocks every Write until the gate channel is closed.
type gateWriter struct {
	gate <-chan struct{}
	sink *syncBuffer
}

func (g *gateWriter) Write(p []byte) (int, error) {
	<-g.gate
	return g.sink.Write(p)
}

func TestExporterNeverBlocksAndAccountsDrops(t *testing.T) {
	reg := NewRegistry()
	gate := make(chan struct{})
	gw := &gateWriter{gate: gate, sink: &syncBuffer{}}
	exp, err := NewExporter(ExportConfig{Sink: gw, Registry: reg, Interval: -1, Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}

	const total = 200
	start := time.Now()
	for i := 0; i < total; i++ {
		sp := NewTrace("burst")
		sp.End()
		exp.ExportSpan(sp)
	}
	elapsed := time.Since(start)
	// The sink is fully wedged: every call must return without waiting on
	// it. Generous bound — the loop is pure channel sends and drops.
	if elapsed > 2*time.Second {
		t.Fatalf("ExportSpan blocked: %d spans took %v against a wedged sink", total, elapsed)
	}
	close(gate)
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}

	written := reg.Counter("obs_export_batches_written_total", "", nil).Value()
	dropped := reg.Counter("obs_export_batches_dropped_total", "", Labels{"reason": "buffer_full"}).Value()
	droppedW := reg.Counter("obs_export_batches_dropped_total", "", Labels{"reason": "write_error"}).Value()
	if written+dropped+droppedW != total {
		t.Fatalf("accounting leak: written %d + dropped %d + write-err %d != %d",
			written, dropped, droppedW, total)
	}
	if dropped == 0 {
		t.Fatal("a wedged sink with an 8-slot buffer should have dropped spans")
	}
	if written == 0 {
		t.Fatal("draining after the gate opened should have written spans")
	}
}

// errWriter fails every write.
type errWriter struct{}

func (errWriter) Write(p []byte) (int, error) { return 0, errors.New("sink wedged") }

func TestExporterCountsWriteErrors(t *testing.T) {
	reg := NewRegistry()
	exp, err := NewExporter(ExportConfig{Sink: errWriter{}, Registry: reg, Interval: -1})
	if err != nil {
		t.Fatal(err)
	}
	const total = 20
	for i := 0; i < total; i++ {
		sp := NewTrace("doomed")
		sp.End()
		exp.ExportSpan(sp)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	written := reg.Counter("obs_export_batches_written_total", "", nil).Value()
	droppedF := reg.Counter("obs_export_batches_dropped_total", "", Labels{"reason": "buffer_full"}).Value()
	droppedW := reg.Counter("obs_export_batches_dropped_total", "", Labels{"reason": "write_error"}).Value()
	if written != 0 {
		t.Fatalf("%d spans written through a failing sink", written)
	}
	if droppedF+droppedW != total {
		t.Fatalf("accounting leak: %d full + %d write-err != %d", droppedF, droppedW, total)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "c", Labels{"kind": "a"}).Add(3)
	reg.Gauge("g", "g", nil).Set(1.5)
	reg.Histogram("h_seconds", "h", []float64{1, 10}, nil).Observe(2)
	snap := reg.Snapshot()
	byName := map[string][]Sample{}
	for _, s := range snap {
		byName[s.Name] = append(byName[s.Name], s)
	}
	if got := byName["c_total"]; len(got) != 1 || got[0].Value != 3 || got[0].Labels["kind"] != "a" {
		t.Fatalf("counter samples %+v", got)
	}
	if got := byName["g"]; len(got) != 1 || got[0].Value != 1.5 {
		t.Fatalf("gauge samples %+v", got)
	}
	buckets := byName["h_seconds_bucket"]
	if len(buckets) != 3 {
		t.Fatalf("bucket samples %+v", buckets)
	}
	// Cumulative: le=1 → 0, le=10 → 1, le=+Inf → 1.
	if buckets[0].Value != 0 || buckets[1].Value != 1 || buckets[2].Value != 1 {
		t.Fatalf("bucket cumulation %+v", buckets)
	}
	if byName["h_seconds_count"][0].Value != 1 || byName["h_seconds_sum"][0].Value != 2 {
		t.Fatal("histogram sum/count wrong")
	}
}

// TestExporterRotatesAtExactBoundary pins the rotation predicate at the
// byte edge: a line landing the file at exactly MaxFileBytes stays in the
// active generation, the very next byte rotates, and an oversized first
// line is written in place rather than rotating an empty file forever.
func TestExporterRotatesAtExactBoundary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "telemetry.ndjson")
	exp, err := NewExporter(ExportConfig{
		Path: path, Registry: NewRegistry(), Interval: -1, MaxFileBytes: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	mustWrite := func(n int, c byte) {
		t.Helper()
		if err := exp.writeLine(bytes.Repeat([]byte{c}, n)); err != nil {
			t.Fatal(err)
		}
	}

	mustWrite(59, 'a') // 59 + newline = 60 bytes written
	mustWrite(39, 'b') // 60 + 39 + 1 = 100: exactly at the limit, must fit
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatalf("rotated at the exact boundary (stat .1: %v)", err)
	}
	if st, _ := os.Stat(path); st.Size() != 100 {
		t.Fatalf("active file %d bytes, want exactly 100", st.Size())
	}

	mustWrite(1, 'c') // one byte over: rotates first
	st1, err := os.Stat(path + ".1")
	if err != nil {
		t.Fatalf("no rotation one byte past the limit: %v", err)
	}
	if st1.Size() != 100 {
		t.Fatalf("sealed generation %d bytes, want the full 100", st1.Size())
	}
	if st, _ := os.Stat(path); st.Size() != 2 {
		t.Fatalf("fresh active file %d bytes, want 2", st.Size())
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}

	// A first line larger than the whole limit is written, not rotated:
	// renaming an empty file would loop without ever making progress.
	path2 := filepath.Join(dir, "tiny.ndjson")
	exp2, err := NewExporter(ExportConfig{
		Path: path2, Registry: NewRegistry(), Interval: -1, MaxFileBytes: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := exp2.writeLine(bytes.Repeat([]byte{'x'}, 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path2 + ".1"); !os.IsNotExist(err) {
		t.Fatal("rotated an empty file for an oversized first line")
	}
	if st, _ := os.Stat(path2); st.Size() != 51 {
		t.Fatalf("oversized line not written whole: %d bytes", st.Size())
	}
	if err := exp2.writeLine([]byte{'y'}); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path2 + ".1"); err != nil || st.Size() != 51 {
		t.Fatalf("oversized generation not sealed on the next write: %v", err)
	}
	if err := exp2.Close(); err != nil {
		t.Fatal(err)
	}
}
