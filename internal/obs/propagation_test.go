package obs

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := TraceContext{
		TraceID: "4bf92f3577b34da6a3ce929d0e0e4736",
		SpanID:  "00f067aa0ba902b7",
		Sampled: true,
	}
	wire := tc.Traceparent()
	if wire != "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01" {
		t.Fatalf("wire form %q", wire)
	}
	got, err := ParseTraceparent(wire)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v want %+v", got, tc)
	}
	unsampled := TraceContext{TraceID: tc.TraceID, SpanID: tc.SpanID}
	if got, _ := ParseTraceparent(unsampled.Traceparent()); got.Sampled {
		t.Fatal("flags 00 parsed as sampled")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := map[string]string{
		"empty":            "",
		"too few fields":   "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
		"short trace id":   "00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",
		"long trace id":    "00-4bf92f3577b34da6a3ce929d0e0e473600-00f067aa0ba902b7-01",
		"zero trace id":    "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":     "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"short span id":    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902-01",
		"uppercase hex":    "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
		"non-hex trace id": "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01",
		"version ff":       "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"1-digit version":  "0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"bad flags":        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x",
		"v00 extra field":  "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
	}
	for name, in := range bad {
		if _, err := ParseTraceparent(in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, in)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Per the W3C forward-compatibility rule, a higher version with
	// appended extra fields still yields the 00-layout identity.
	got, err := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future-stuff")
	if err != nil {
		t.Fatalf("future version rejected: %v", err)
	}
	if got.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || !got.Sampled {
		t.Fatalf("got %+v", got)
	}
}

func TestSpanIdentity(t *testing.T) {
	root := NewTrace("root")
	if !isHexID(root.TraceID(), 32) || !isHexID(root.SpanID(), 16) {
		t.Fatalf("root identity %q/%q not well-formed", root.TraceID(), root.SpanID())
	}
	if root.ParentSpanID() != "" {
		t.Fatalf("root has parent %q", root.ParentSpanID())
	}
	child := root.StartChild("child")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace id %q != root %q", child.TraceID(), root.TraceID())
	}
	if child.ParentSpanID() != root.SpanID() {
		t.Fatalf("child parent %q != root span %q", child.ParentSpanID(), root.SpanID())
	}
	if child.SpanID() == root.SpanID() {
		t.Fatal("child reused the root's span id")
	}
	var nilSpan *Span
	if nilSpan.TraceID() != "" || nilSpan.SpanID() != "" || nilSpan.ParentSpanID() != "" {
		t.Fatal("nil span leaked an identity")
	}
}

func TestInjectExtract(t *testing.T) {
	root := NewTrace("client")
	ctx := ContextWithSpan(context.Background(), root)
	h := http.Header{}
	Inject(ctx, h)
	wire := h.Get(TraceparentHeader)
	if !strings.HasPrefix(wire, "00-"+root.TraceID()+"-"+root.SpanID()) {
		t.Fatalf("injected %q", wire)
	}
	tc, ok := Extract(h)
	if !ok || tc.TraceID != root.TraceID() || tc.SpanID != root.SpanID() {
		t.Fatalf("extract: ok=%v tc=%+v", ok, tc)
	}

	// No span, no header.
	h2 := http.Header{}
	Inject(context.Background(), h2)
	if h2.Get(TraceparentHeader) != "" {
		t.Fatal("inject without a span wrote a header")
	}
	// Malformed headers are dropped, not propagated.
	h2.Set(TraceparentHeader, "garbage")
	if _, ok := Extract(h2); ok {
		t.Fatal("extracted a malformed traceparent")
	}
}

func TestNewRemoteChild(t *testing.T) {
	tc := TraceContext{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", SpanID: "00f067aa0ba902b7"}
	sp := NewRemoteChild("server", tc)
	if sp.TraceID() != tc.TraceID {
		t.Fatalf("remote child trace id %q", sp.TraceID())
	}
	if sp.ParentSpanID() != tc.SpanID {
		t.Fatalf("remote child parent %q", sp.ParentSpanID())
	}
	if sp.SpanID() == tc.SpanID || !isHexID(sp.SpanID(), 16) {
		t.Fatalf("remote child span id %q", sp.SpanID())
	}
	// Invalid remote identity degrades to a fresh root.
	fresh := NewRemoteChild("server", TraceContext{})
	if fresh.TraceID() == "" || fresh.ParentSpanID() != "" {
		t.Fatalf("degraded span %q/%q", fresh.TraceID(), fresh.ParentSpanID())
	}
}
