package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// RegisterDebug mounts the Go runtime's profiling and introspection
// endpoints on mux: /debug/pprof/* (CPU, heap, goroutine, block profiles)
// and /debug/vars (expvar). Callers gate this behind an opt-in flag —
// profiles can reveal internals and cost CPU while running.
func RegisterDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
}

// DebugMux builds a standalone diagnostics mux: reg's exposition at
// /metrics plus the pprof/expvar endpoints. fpstudy/fpanalyze serve this
// on -pprof <addr> so long study runs can be profiled live.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	RegisterDebug(mux)
	return mux
}
