package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := NewTrace("run")
	ctx := ContextWithSpan(context.Background(), root)

	ctx2, render := Start(ctx, "render")
	render.SetAttr("users", 10)
	_, inner := Start(ctx2, "collate/DC")
	time.Sleep(2 * time.Millisecond)
	inner.End()
	render.End()
	_, analyze := Start(ctx, "cluster-agreement")
	analyze.End()
	root.End()

	if got := len(root.Children()); got != 2 {
		t.Fatalf("root has %d children, want 2", got)
	}
	if sp := root.Find("collate/DC"); sp == nil {
		t.Fatal("nested span not reachable from root")
	}
	if root.Duration() < render.Duration() {
		t.Errorf("root %v shorter than child %v", root.Duration(), render.Duration())
	}
	if d := root.StageDurations(); d["collate/DC"] <= 0 {
		t.Errorf("stage durations missing collate/DC: %v", d)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	sp.End()
	if sp.StartChild("x") != nil {
		t.Error("nil span produced a child")
	}
	if sp.Duration() != 0 || sp.Name() != "" || sp.Find("x") != nil {
		t.Error("nil span accessors not zero-valued")
	}
	if err := sp.WriteText(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteText: %v", err)
	}
}

func TestStartWithoutParentCreatesRoot(t *testing.T) {
	ctx, sp := Start(context.Background(), "orphan")
	if sp == nil || SpanFromContext(ctx) != sp {
		t.Fatal("Start without a parent must create and install a root span")
	}
}

func TestSpanJSONExport(t *testing.T) {
	root := NewTrace("run")
	c := root.StartChild("render")
	c.SetAttr("vector", "FFT")
	c.End()
	root.End()

	var buf bytes.Buffer
	if err := root.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded SpanJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if decoded.Name != "run" || len(decoded.Children) != 1 {
		t.Fatalf("unexpected tree: %+v", decoded)
	}
	child := decoded.Children[0]
	if child.Name != "render" || child.Attrs["vector"] != "FFT" {
		t.Errorf("child: %+v", child)
	}
	if child.DurationUS > decoded.DurationUS {
		t.Errorf("child duration %d exceeds root %d", child.DurationUS, decoded.DurationUS)
	}
}

func TestSpanTextReport(t *testing.T) {
	root := NewTrace("fpstudy")
	c := root.StartChild("render")
	c.SetAttr("users", 3)
	c.End()
	root.End()
	var buf bytes.Buffer
	if err := root.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fpstudy", "render", "users=3", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[1], "  ") {
		t.Errorf("child line not indented:\n%s", out)
	}
}

// TestSpanConcurrentChildren exercises parallel sweep workers opening
// children of one parent (run under -race).
func TestSpanConcurrentChildren(t *testing.T) {
	root := NewTrace("sweep")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := root.StartChild("cell")
				c.SetAttr("j", j)
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 800 {
		t.Errorf("lost children: %d, want 800", got)
	}
	if _, err := json.Marshal(root.Export()); err != nil {
		t.Errorf("export: %v", err)
	}
}
