package collectclient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestTelemetryBreakerStateAndErrorCode walks the breaker through its
// closed → open → half-open → closed cycle and checks Telemetry reports
// each position plus the last enveloped error code along the way.
func TestTelemetryBreakerStateAndErrorCode(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":{"code":"storage_failure","message":"disk on fire"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"data":{"name":"ok"}}`))
	}))
	defer ts.Close()

	clock := time.Unix(1700000000, 0)
	now := func() time.Time { return clock }

	c := New(ts.URL, WithRetries(0), WithBackoff(time.Millisecond),
		WithBreaker(1, time.Minute))
	c.brk.now = now

	if got := c.Telemetry(); got.BreakerState != BreakerClosed || got.LastErrorCode != "" {
		t.Fatalf("fresh client: state %q code %q", got.BreakerState, got.LastErrorCode)
	}

	if _, err := c.StudyInfo(context.Background()); err == nil {
		t.Fatal("expected failure from failing server")
	}
	tel := c.Telemetry()
	if tel.BreakerState != BreakerOpen {
		t.Fatalf("after threshold failures: state %q, want %q", tel.BreakerState, BreakerOpen)
	}
	if tel.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens %d, want 1", tel.BreakerOpens)
	}
	if tel.LastErrorCode != "storage_failure" {
		t.Fatalf("LastErrorCode %q, want storage_failure", tel.LastErrorCode)
	}

	// Cooldown elapsed: the breaker is half-open — the next request is the
	// probe — and Telemetry must say so before anything is sent.
	clock = clock.Add(61 * time.Second)
	if got := c.Telemetry().BreakerState; got != BreakerHalfOpen {
		t.Fatalf("after cooldown: state %q, want %q", got, BreakerHalfOpen)
	}

	// A successful probe closes the circuit again.
	failing.Store(false)
	if _, err := c.StudyInfo(context.Background()); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if got := c.Telemetry().BreakerState; got != BreakerClosed {
		t.Fatalf("after successful probe: state %q, want %q", got, BreakerClosed)
	}
	// The last error code is a high-water mark, not cleared by success.
	if got := c.Telemetry().LastErrorCode; got != "storage_failure" {
		t.Fatalf("LastErrorCode after recovery %q", got)
	}
}

// TestTelemetryWithoutBreaker pins the no-breaker defaults.
func TestTelemetryWithoutBreaker(t *testing.T) {
	c := New("http://127.0.0.1:0")
	got := c.Telemetry()
	if got.BreakerState != BreakerClosed {
		t.Fatalf("breakerless client state %q, want closed", got.BreakerState)
	}
	if got.BreakerOpens != 0 || got.LastErrorCode != "" {
		t.Fatalf("breakerless client: %+v", got)
	}
}
