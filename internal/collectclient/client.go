// Package collectclient is the participant-side SDK for the collection
// backend: it performs the consent handshake, batches elementary
// fingerprints, and submits them with bounded exponential-backoff retries —
// the role the study site's in-browser TypeScript played.
package collectclient

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/collectserver"
	"repro/internal/obs"
	"repro/internal/verify"
)

// Client talks to one collection server. Safe for concurrent use.
type Client struct {
	base        string
	hc          *http.Client
	retries     int
	backoff     time.Duration
	idempotency bool
	brk         *breaker

	mu    sync.Mutex // guards rng
	rng   *rand.Rand
	stats clientStats
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets the per-request retry budget (default 3).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the initial backoff delay (default 100ms, doubling).
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithBreaker adds a circuit breaker that opens after `threshold`
// consecutive failed attempts and fails fast for `cooldown` before letting
// a single half-open probe through. Disabled by default.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Client) {
		c.brk = &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
	}
}

// WithIdempotency toggles per-batch idempotency keys on submissions
// (default on). With keys attached, a retry whose original attempt did
// reach the server replays the ack instead of storing duplicates.
func WithIdempotency(enabled bool) Option { return func(c *Client) { c.idempotency = enabled } }

// New creates a client for the server at baseURL (e.g. "http://host:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:        baseURL,
		hc:          &http.Client{Timeout: 30 * time.Second},
		retries:     3,
		backoff:     100 * time.Millisecond,
		idempotency: true,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// contentKey derives an idempotency key from a scope (session token, user
// ID) and a payload's JSON content. Content-derived keys mean ANY
// resubmission of the same payload in the same scope — the in-request
// retry loop, but also an agent-level retry after a garbled ack — carries
// the same key, so the server can replay the original outcome instead of
// acting twice.
func contentKey(scope string, payload any) string {
	h := sha256.New()
	h.Write([]byte(scope))
	h.Write([]byte{0})
	b, _ := json.Marshal(payload)
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// idempotencyKey is the submission batch key. (Fingerprint records are
// content-identified, so two identical batches in one session are by
// definition the same batch.)
func idempotencyKey(token string, records []collectserver.FPRecord) string {
	return contentKey(token, records)
}

// Session is an authorized collection session.
type Session struct {
	ID    string
	Token string
	c     *Client
}

// StudyInfo fetches the study's consent metadata.
func (c *Client) StudyInfo(ctx context.Context) (*collectserver.StudyInfo, error) {
	var info collectserver.StudyInfo
	if err := c.do(ctx, http.MethodGet, "/api/v1/study", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// StartSession performs the consent handshake for userID.
func (c *Client) StartSession(ctx context.Context, userID, userAgent string) (*Session, error) {
	req := collectserver.NewSessionRequest{UserID: userID, UserAgent: userAgent, Consent: true}
	var resp collectserver.NewSessionResponse
	if err := c.do(ctx, http.MethodPost, "/api/v1/sessions", req, &resp); err != nil {
		return nil, fmt.Errorf("collectclient: start session: %w", err)
	}
	return &Session{ID: resp.SessionID, Token: resp.Token, c: c}, nil
}

// Submit sends one batch of fingerprints under the session.
func (s *Session) Submit(ctx context.Context, records []collectserver.FPRecord) error {
	if len(records) == 0 {
		return nil
	}
	req := collectserver.SubmitRequest{Token: s.Token, Records: records}
	if s.c.idempotency {
		req.IdempotencyKey = idempotencyKey(s.Token, records)
	}
	var resp collectserver.SubmitResponse
	if err := s.c.do(ctx, http.MethodPost, "/api/v1/fingerprints", req, &resp); err != nil {
		return fmt.Errorf("collectclient: submit: %w", err)
	}
	if resp.Accepted != len(records) {
		return fmt.Errorf("collectclient: server accepted %d of %d records", resp.Accepted, len(records))
	}
	return nil
}

// SubmitChunked splits records into server-friendly batches.
func (s *Session) SubmitChunked(ctx context.Context, records []collectserver.FPRecord, chunk int) error {
	if chunk <= 0 {
		chunk = 128
	}
	for len(records) > 0 {
		n := min(chunk, len(records))
		if err := s.Submit(ctx, records[:n]); err != nil {
			return err
		}
		records = records[n:]
	}
	return nil
}

// httpStatusError reports a non-2xx response. apiCode carries the stable
// v1 error code when the server spoke the envelope, "" against a legacy
// (pre-envelope) server.
type httpStatusError struct {
	code       int
	apiCode    string
	body       string
	retryAfter time.Duration // parsed Retry-After hint, 0 if absent
}

func (e *httpStatusError) Error() string {
	if e.apiCode != "" {
		return fmt.Sprintf("server returned %d (%s): %s", e.code, e.apiCode, e.body)
	}
	return fmt.Sprintf("server returned %d: %s", e.code, e.body)
}

// retryable reports whether the request should be retried: transport
// errors, 5xx, and 429 (the server shed us and told us when to come back)
// are; other 4xx are not.
func retryable(err error) bool {
	if se, ok := err.(*httpStatusError); ok {
		return se.code >= 500 || se.code == http.StatusTooManyRequests
	}
	return err != nil
}

// do issues one JSON request with retries and decodes the response.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("collectclient: marshal request: %w", err)
		}
	}
	delay := c.backoff
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			c.stats.retries.Add(1)
			mRetries.Inc()
			c.mu.Lock()
			jitter := time.Duration(c.rng.Int63n(int64(delay)/2 + 1))
			c.mu.Unlock()
			sleep := delay + jitter
			select {
			case <-time.After(sleep):
				c.stats.backoffNanos.Add(int64(sleep))
			case <-ctx.Done():
				c.stats.failures.Add(1)
				mFailures.Inc()
				return ctx.Err()
			}
			delay *= 2
		}
		if ok, wait := c.brk.allow(); !ok {
			// Fail fast: the whole point of an open breaker is not to
			// queue up behind a struggling server. The caller decides
			// whether to come back after `wait`.
			c.stats.failures.Add(1)
			mFailures.Inc()
			return fmt.Errorf("%w (server failing, retry in %v)", ErrCircuitOpen, wait)
		}
		lastErr = c.once(ctx, method, path, body, out)
		if lastErr == nil {
			c.brk.success()
			return nil
		}
		c.brk.failure()
		if code := ErrorCode(lastErr); code != "" {
			c.stats.lastErrCode.Store(code)
		}
		if !retryable(lastErr) {
			c.stats.failures.Add(1)
			mFailures.Inc()
			return lastErr
		}
		// A shed server's Retry-After is authoritative: never come back
		// sooner than it asked.
		if se, ok := lastErr.(*httpStatusError); ok && se.retryAfter > delay {
			delay = se.retryAfter
		}
	}
	c.stats.failures.Add(1)
	mFailures.Inc()
	return fmt.Errorf("collectclient: %s %s failed after %d attempts: %w",
		method, path, c.retries+1, lastErr)
}

// ErrCircuitOpen reports that the client's circuit breaker is open and the
// request was not sent. Callers detect it with errors.Is and back off.
var ErrCircuitOpen = errors.New("collectclient: circuit breaker open")

// StatusCode extracts the HTTP status behind a client error, or 0 when the
// error did not carry one (transport failure, breaker open, cancellation).
// Agents use it to tell an expired/garbled session (401 → re-handshake)
// from transient trouble.
func StatusCode(err error) int {
	var se *httpStatusError
	if errors.As(err, &se) {
		return se.code
	}
	return 0
}

// ErrorCode extracts the stable v1 error code (e.g. "rate_limited",
// "unauthorized") behind a client error, or "" when the server did not
// send an envelope or the error carried no HTTP response at all. Unlike
// messages, codes are part of the API contract and safe to branch on.
func ErrorCode(err error) string {
	var se *httpStatusError
	if errors.As(err, &se) {
		return se.apiCode
	}
	return ""
}

func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	c.stats.requests.Add(1)
	mRequests.Inc()
	c.stats.bytesSent.Add(int64(len(body)))
	start := time.Now()
	defer func() { mLatency.Observe(time.Since(start).Seconds()) }()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Distributed tracing: a caller whose context carries an obs span gets
	// its identity stamped onto the wire, so the server's ingest spans
	// join the same trace (DESIGN.md §11).
	obs.Inject(ctx, req.Header)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		var ra time.Duration
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			ra = time.Duration(secs) * time.Second
		}
		se := &httpStatusError{
			code:       resp.StatusCode,
			body:       string(bytes.TrimSpace(msg)),
			retryAfter: ra,
		}
		// v1 envelope failure: lift out the stable code and human message.
		if env, ok := decodeEnvelope(msg); ok && env.Error != nil {
			se.apiCode = env.Error.Code
			se.body = env.Error.Message
		}
		return se
	}
	if out == nil {
		return nil
	}
	return decodeBody(resp.Body, out)
}

// decodeEnvelope parses raw as a v1 envelope. ok is false when the body is
// not an envelope at all — non-JSON error text, or a legacy (pre-envelope)
// server's bare payload. Both the error path (once) and the success path
// (decodeBody) branch on this one decoder, so envelope handling cannot
// drift between them.
func decodeEnvelope(raw []byte) (env collectserver.Envelope, ok bool) {
	if json.Unmarshal(raw, &env) != nil {
		return collectserver.Envelope{}, false
	}
	return env, env.Error != nil || env.Data != nil
}

// decodeBody unwraps a v1 success envelope {"data": ...} into out, falling
// back to decoding the whole body for legacy (pre-envelope) servers. The
// fallback is deliberate: during a rollout the fleet's agents upgrade
// before every server does. TestLegacyResponseShapes pins this behavior;
// remove both together once no legacy server remains.
func decodeBody(r io.Reader, out any) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	if env, ok := decodeEnvelope(raw); ok {
		if env.Error != nil {
			// A 2xx with an error envelope is a server bug, but don't
			// silently decode garbage into out.
			return fmt.Errorf("collectclient: error envelope on success status: %s: %s",
				env.Error.Code, env.Error.Message)
		}
		return json.Unmarshal(env.Data, out)
	}
	return json.Unmarshal(raw, out)
}

// Verify asks the server for an authentication decision: does this set of
// elementary fingerprints vouch for the claimed user? Stable failure codes
// surface through ErrorCode — "unknown_user" for a claim with no stored
// history, "verify_disabled" against a server running without -verify.
// The idempotency key reuses the submission scheme (content-derived, so a
// retried request carries the same key); verification decisions are pure
// functions of stored history, making the key advisory.
func (c *Client) Verify(ctx context.Context, userID string, samples []collectserver.VerifySample) (*verify.Decision, error) {
	req := collectserver.VerifyRequest{UserID: userID, Samples: samples}
	if c.idempotency {
		req.IdempotencyKey = contentKey(userID, samples)
	}
	var d verify.Decision
	if err := c.do(ctx, http.MethodPost, "/api/v1/verify", req, &d); err != nil {
		return nil, fmt.Errorf("collectclient: verify: %w", err)
	}
	return &d, nil
}

// Stats fetches the server's aggregate counters (/api/v1/stats).
func (c *Client) Stats(ctx context.Context) (records, users int, perVector map[string]int, err error) {
	var out struct {
		Records   int            `json:"records"`
		Users     int            `json:"users"`
		PerVector map[string]int `json:"per_vector"`
	}
	if err := c.do(ctx, http.MethodGet, "/api/v1/stats", nil, &out); err != nil {
		return 0, 0, nil, err
	}
	return out.Records, out.Users, out.PerVector, nil
}

// Export streams the server's NDJSON dataset to w using the admin token.
func (c *Client) Export(ctx context.Context, adminToken string, w io.Writer) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/export", nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Authorization", "Bearer "+adminToken)
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, &httpStatusError{code: resp.StatusCode, body: string(bytes.TrimSpace(msg))}
	}
	return io.Copy(w, resp.Body)
}
