package collectclient

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Process-wide client metrics on the shared registry, so an agent binary
// that also mounts /metrics exposes its submission behaviour.
var (
	mRequests = obs.Default.Counter("fpclient_requests_total",
		"HTTP requests issued by the collection client (including retries).", nil)
	mRetries = obs.Default.Counter("fpclient_retries_total",
		"Retry attempts after transient failures.", nil)
	mFailures = obs.Default.Counter("fpclient_failures_total",
		"Requests that exhausted the retry budget or failed terminally.", nil)
	mLatency = obs.Default.Histogram("fpclient_request_duration_seconds",
		"Per-attempt request latency.", obs.LatencyBuckets(), nil)
	mBreakerOpens = obs.Default.Counter("fpclient_breaker_open_total",
		"Times the client circuit breaker tripped open.", nil)
)

// Telemetry is a point-in-time snapshot of one Client's counters,
// letting callers (e.g. fpagent's exit report) attribute traffic to a
// specific client rather than the process-wide registry totals.
type Telemetry struct {
	// Requests counts HTTP attempts, retries included.
	Requests int64
	// Retries counts attempts after the first, per logical request.
	Retries int64
	// Failures counts logical requests that ultimately failed.
	Failures int64
	// BackoffTotal is cumulative time slept between retry attempts.
	BackoffTotal time.Duration
	// BytesSent is the total request-body bytes written.
	BytesSent int64
	// BreakerOpens counts how many times the circuit breaker tripped.
	BreakerOpens int64
	// BreakerState is the circuit breaker's current position — "closed",
	// "open", or "half-open" ("closed" when no breaker is configured), so
	// an operator reading an agent's exit report can tell "the server was
	// refused traffic" from "the server never answered".
	BreakerState string
	// LastErrorCode is the stable v1 error code of the most recent failed
	// attempt ("" when no enveloped failure has been seen).
	LastErrorCode string
}

// clientStats is the Client-embedded counter block behind Telemetry.
type clientStats struct {
	requests     atomic.Int64
	retries      atomic.Int64
	failures     atomic.Int64
	backoffNanos atomic.Int64
	bytesSent    atomic.Int64
	lastErrCode  atomic.Value // string: most recent v1 error code
}

// Telemetry returns a snapshot of the client's own counters.
func (c *Client) Telemetry() Telemetry {
	t := Telemetry{
		Requests:     c.stats.requests.Load(),
		Retries:      c.stats.retries.Load(),
		Failures:     c.stats.failures.Load(),
		BackoffTotal: time.Duration(c.stats.backoffNanos.Load()),
		BytesSent:    c.stats.bytesSent.Load(),
		BreakerOpens: c.brk.openCount(),
		BreakerState: c.brk.state(),
	}
	if code, ok := c.stats.lastErrCode.Load().(string); ok {
		t.LastErrorCode = code
	}
	return t
}
