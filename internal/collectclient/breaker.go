package collectclient

import (
	"sync"
	"time"
)

// breaker is a consecutive-failure circuit breaker. Closed it passes every
// request; after `threshold` consecutive failures it opens for `cooldown`,
// failing fast so a struggling server is not hammered by retries; after the
// cooldown a single half-open probe decides whether to close again.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive failures that open the circuit; <=0 disables
	cooldown  time.Duration // how long the circuit stays open
	now       func() time.Time

	failures  int
	openUntil time.Time
	probing   bool // a half-open probe is in flight
	opens     int64
}

// allow reports whether a request may proceed, and when not, how long to
// wait before asking again.
func (b *breaker) allow() (bool, time.Duration) {
	if b == nil || b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	switch {
	case b.failures < b.threshold:
		return true, 0
	case now.Before(b.openUntil):
		return false, b.openUntil.Sub(now)
	case b.probing:
		// Another goroutine holds the half-open probe; retry shortly.
		return false, b.cooldown / 4
	default:
		b.probing = true
		return true, 0
	}
}

// success closes the circuit.
func (b *breaker) success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records one failed request, (re)opening the circuit at the
// threshold.
func (b *breaker) failure() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.failures++
	b.probing = false
	if b.failures >= b.threshold {
		b.openUntil = b.now().Add(b.cooldown)
		b.opens++
		mBreakerOpens.Inc()
	}
	b.mu.Unlock()
}

// Breaker states as reported by Telemetry.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// state reports the breaker's current position: "closed" while under the
// failure threshold (or when no breaker is configured), "open" while the
// cooldown clock runs, "half-open" once the cooldown has elapsed and the
// next request is the probe.
func (b *breaker) state() string {
	if b == nil || b.threshold <= 0 {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.failures < b.threshold:
		return BreakerClosed
	case b.now().Before(b.openUntil):
		return BreakerOpen
	default:
		return BreakerHalfOpen
	}
}

// openCount returns how many times the circuit has opened.
func (b *breaker) openCount() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
