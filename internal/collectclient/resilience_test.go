package collectclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collectserver"
	"repro/internal/obs"
)

// fakeClock drives a breaker through time without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_600_000_000, 0)}
	b := &breaker{threshold: 3, cooldown: time.Minute, now: clk.now}

	// Closed: everything passes.
	for i := 0; i < 5; i++ {
		if ok, _ := b.allow(); !ok {
			t.Fatalf("closed breaker blocked request %d", i)
		}
	}
	// Two failures keep it closed; the third opens it.
	b.failure()
	b.failure()
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker opened below threshold")
	}
	b.failure()
	ok, wait := b.allow()
	if ok {
		t.Fatal("breaker stayed closed at threshold")
	}
	if wait <= 0 || wait > time.Minute {
		t.Fatalf("open breaker wait = %v", wait)
	}
	if b.openCount() != 1 {
		t.Fatalf("openCount = %d, want 1", b.openCount())
	}

	// After the cooldown a single half-open probe is admitted; a second
	// caller is told to wait while the probe is in flight.
	clk.advance(time.Minute + time.Second)
	if ok, _ := b.allow(); !ok {
		t.Fatal("half-open breaker refused the probe")
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("breaker admitted a second concurrent probe")
	}

	// A failed probe re-opens for another full cooldown.
	b.failure()
	if ok, _ := b.allow(); ok {
		t.Fatal("breaker closed after failed probe")
	}
	if b.openCount() != 2 {
		t.Fatalf("openCount = %d, want 2", b.openCount())
	}

	// A successful probe closes it fully.
	clk.advance(time.Minute + time.Second)
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker refused probe after second cooldown")
	}
	b.success()
	for i := 0; i < 5; i++ {
		if ok, _ := b.allow(); !ok {
			t.Fatalf("recovered breaker blocked request %d", i)
		}
	}
}

func TestBreakerDisabledIsTransparent(t *testing.T) {
	var b *breaker // the Client default: no breaker at all
	if ok, _ := b.allow(); !ok {
		t.Fatal("nil breaker blocked")
	}
	b.failure()
	b.success()
	if b.openCount() != 0 {
		t.Fatal("nil breaker counted opens")
	}
}

func TestClientBreakerFailsFast(t *testing.T) {
	var served atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	// Threshold 2 with a long cooldown: the first logical request's two
	// failed attempts trip the breaker, the third attempt fails fast, and
	// every later request fails fast too — without touching the server.
	c := New(ts.URL,
		WithRetries(2),
		WithBackoff(time.Millisecond),
		WithBreaker(2, time.Hour))
	err := c.do(context.Background(), http.MethodGet, "/api/v1/study", nil, nil)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen once the breaker trips mid-retry, got %v", err)
	}
	if got := c.Telemetry().BreakerOpens; got < 1 {
		t.Fatalf("BreakerOpens = %d, want ≥ 1", got)
	}
	if served.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2 (third blocked by breaker)", served.Load())
	}

	err = c.do(context.Background(), http.MethodGet, "/api/v1/study", nil, nil)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker let the request run: %v", err)
	}
	if served.Load() != 2 {
		t.Errorf("open breaker still reached the server (%d attempts)", served.Load())
	}

	// The trip must also be visible on the /metrics exposition, parsed with
	// the strict obs parser (counter is process-global, so assert ≥ 1).
	rec := httptest.NewRecorder()
	obs.Default.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	exp, err := obs.ParseExposition(rec.Body)
	if err != nil {
		t.Fatalf("parse exposition: %v", err)
	}
	found := false
	for _, s := range exp.Samples {
		if s.Name == "fpclient_breaker_open_total" && s.Value >= 1 {
			found = true
		}
	}
	if !found {
		t.Error("fpclient_breaker_open_total ≥ 1 missing from /metrics")
	}
}

func TestClientBreakerRecovers(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(collectserver.StudyInfo{Name: "ok"})
	}))
	defer ts.Close()

	c := New(ts.URL,
		WithRetries(1),
		WithBackoff(time.Millisecond),
		WithBreaker(2, 20*time.Millisecond))
	if err := c.do(context.Background(), http.MethodGet, "/api/v1/study", nil, nil); err == nil {
		t.Fatal("expected failure while server is down")
	}
	fail.Store(false)

	// Requests fail fast until the cooldown elapses; then the half-open
	// probe succeeds and the breaker closes again.
	deadline := time.Now().Add(5 * time.Second)
	var info collectserver.StudyInfo
	var lastErr error
	for time.Now().Before(deadline) {
		info = collectserver.StudyInfo{}
		lastErr = c.do(context.Background(), http.MethodGet, "/api/v1/study", nil, &info)
		if lastErr == nil {
			break
		}
		if !errors.Is(lastErr, ErrCircuitOpen) {
			t.Fatalf("unexpected error during cooldown: %v", lastErr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if lastErr != nil {
		t.Fatalf("breaker never recovered: %v", lastErr)
	}
	if info.Name != "ok" {
		t.Errorf("decoded %+v", info)
	}
}

func TestRetryAfterHonored(t *testing.T) {
	var hits atomic.Int64
	var gap atomic.Int64
	var last atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(collectserver.StudyInfo{Name: "ok"})
	}))
	defer ts.Close()

	// Backoff of 1ms would normally retry almost instantly; the server's
	// Retry-After: 1 must stretch the wait to at least a second.
	c := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond))
	start := time.Now()
	if err := c.do(context.Background(), http.MethodGet, "/api/v1/study", nil, nil); err != nil {
		t.Fatalf("request failed: %v", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2 (429 then success)", hits.Load())
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Errorf("retry came back after %v, Retry-After demanded ≥ 1s", elapsed)
	}
	if g := time.Duration(gap.Load()); g < time.Second {
		t.Errorf("inter-request gap %v < Retry-After", g)
	}
}

func TestIdempotencyKeyStableAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/sessions" {
			json.NewEncoder(w).Encode(collectserver.NewSessionResponse{
				SessionID: "s1", Token: "tok",
			})
			return
		}
		var req collectserver.SubmitRequest
		json.NewDecoder(r.Body).Decode(&req)
		mu.Lock()
		keys = append(keys, req.IdempotencyKey)
		hits++
		n := hits
		mu.Unlock()
		if n < 3 {
			http.Error(w, "flaky", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(collectserver.SubmitResponse{
			Accepted: len(req.Records), Total: len(req.Records),
		})
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(3), WithBackoff(time.Millisecond))
	sess, err := c.StartSession(context.Background(), "u1", "test-agent")
	if err != nil {
		t.Fatal(err)
	}
	recs := []collectserver.FPRecord{{
		Vector: "DC", Iteration: 0, Hash: "aa",
	}}
	if err := sess.Submit(context.Background(), recs); err != nil {
		t.Fatalf("submit: %v", err)
	}
	recs2 := []collectserver.FPRecord{{
		Vector: "DC", Iteration: 1, Hash: "bb",
	}}
	if err := sess.Submit(context.Background(), recs2); err != nil {
		t.Fatalf("second submit: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(keys) < 4 {
		t.Fatalf("server saw %d submissions, want ≥ 4 (2 failures + retry + fresh batch)", len(keys))
	}
	if keys[0] == "" {
		t.Fatal("no idempotency key attached")
	}
	// All retries of batch one share a key; batch two gets a fresh one.
	for i := 1; i < len(keys)-1; i++ {
		if keys[i] != keys[0] {
			t.Errorf("retry %d changed idempotency key: %q vs %q", i, keys[i], keys[0])
		}
	}
	if lastKey := keys[len(keys)-1]; lastKey == keys[0] {
		t.Error("second batch reused the first batch's idempotency key")
	}
}

func TestIdempotencyDisabled(t *testing.T) {
	var key atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/sessions" {
			json.NewEncoder(w).Encode(collectserver.NewSessionResponse{
				SessionID: "s1", Token: "tok",
			})
			return
		}
		var req collectserver.SubmitRequest
		json.NewDecoder(r.Body).Decode(&req)
		key.Store(req.IdempotencyKey)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(collectserver.SubmitResponse{Accepted: len(req.Records)})
	}))
	defer ts.Close()

	c := New(ts.URL, WithIdempotency(false))
	sess, err := c.StartSession(context.Background(), "u1", "test-agent")
	if err != nil {
		t.Fatal(err)
	}
	err = sess.Submit(context.Background(), []collectserver.FPRecord{{
		Vector: "DC", Iteration: 0, Hash: "aa",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := key.Load().(string); got != "" {
		t.Errorf("idempotency disabled but key %q was sent", got)
	}
}
