package collectclient

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/collectserver"
	"repro/internal/storage"
	"repro/internal/verify"
)

// realServer spins up a genuine collectserver for end-to-end client tests.
func realServer(t *testing.T) (*httptest.Server, *storage.Store) {
	t.Helper()
	st, err := storage.Open(filepath.Join(t.TempDir(), "fp.ndjson"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := collectserver.New(collectserver.Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); st.Close() })
	return ts, st
}

func TestEndToEndSubmission(t *testing.T) {
	ts, st := realServer(t)
	c := New(ts.URL)
	ctx := context.Background()

	info, err := c.StudyInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Vectors) != 7 {
		t.Errorf("study vectors = %v", info.Vectors)
	}

	sess, err := c.StartSession(ctx, "participant-1", "UA/1.0")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Token == "" || sess.ID == "" {
		t.Fatalf("session = %+v", sess)
	}

	recs := []collectserver.FPRecord{
		{Vector: "DC", Iteration: 0, Hash: "aa11"},
		{Vector: "FFT", Iteration: 0, Hash: "bb22"},
	}
	if err := sess.Submit(ctx, recs); err != nil {
		t.Fatal(err)
	}
	if st.Count() != 2 {
		t.Errorf("server stored %d records", st.Count())
	}
	// Empty submit is a no-op.
	if err := sess.Submit(ctx, nil); err != nil {
		t.Errorf("empty submit: %v", err)
	}
}

func TestSubmitChunked(t *testing.T) {
	ts, st := realServer(t)
	c := New(ts.URL)
	sess, err := c.StartSession(context.Background(), "p1", "UA")
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]collectserver.FPRecord, 210) // the study's per-user volume
	for i := range recs {
		recs[i] = collectserver.FPRecord{Vector: "DC", Iteration: i % 30, Hash: "cc33"}
	}
	if err := sess.SubmitChunked(context.Background(), recs, 64); err != nil {
		t.Fatal(err)
	}
	if st.Count() != 210 {
		t.Errorf("stored %d records, want 210", st.Count())
	}
}

// TestRetriesOn5xx: transient server errors are retried until success.
func TestRetriesOn5xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "flaky", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"session_id":"s-1","token":"tok"}`))
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(3), WithBackoff(time.Millisecond))
	sess, err := c.StartSession(context.Background(), "u", "ua")
	if err != nil {
		t.Fatalf("expected success after retries: %v", err)
	}
	if sess.Token != "tok" {
		t.Errorf("token = %q", sess.Token)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server called %d times, want 3", got)
	}
}

// TestNoRetryOn4xx: client errors fail immediately.
func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(5), WithBackoff(time.Millisecond))
	if _, err := c.StartSession(context.Background(), "u", "ua"); err == nil {
		t.Fatal("expected error")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("4xx retried: %d calls", got)
	}
}

// TestRetryBudgetExhausted: persistent failures surface after the budget.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(2), WithBackoff(time.Millisecond))
	if _, err := c.StartSession(context.Background(), "u", "ua"); err == nil {
		t.Fatal("expected failure")
	}
	if got := calls.Load(); got != 3 { // initial + 2 retries
		t.Errorf("calls = %d, want 3", got)
	}
}

// TestContextCancellation: a cancelled context aborts during backoff.
func TestContextCancellation(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(10), WithBackoff(time.Hour))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.StartSession(ctx, "u", "ua")
	if err == nil {
		t.Fatal("expected error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v — backoff not interruptible", elapsed)
	}
}

// TestSubmitAcceptanceMismatch: a lying server is detected.
func TestSubmitAcceptanceMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"accepted":1,"total_for_session":1}`))
	}))
	defer ts.Close()

	sess := &Session{ID: "s", Token: "t", c: New(ts.URL, WithRetries(0), WithBackoff(time.Millisecond))}
	err := sess.Submit(context.Background(), []collectserver.FPRecord{
		{Vector: "DC", Iteration: 0, Hash: "aa"},
		{Vector: "DC", Iteration: 1, Hash: "bb"},
	})
	if err == nil {
		t.Error("partial acceptance went unnoticed")
	}
}

func TestStatsAndExport(t *testing.T) {
	st, err := storage.Open(filepath.Join(t.TempDir(), "fp.ndjson"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := collectserver.New(collectserver.Config{Store: st, AdminToken: "adm"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); st.Close() }()

	c := New(ts.URL)
	ctx := context.Background()
	sess, err := c.StartSession(ctx, "p1", "UA")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(ctx, []collectserver.FPRecord{
		{Vector: "DC", Iteration: 0, Hash: "aa"},
		{Vector: "FFT", Iteration: 0, Hash: "bb"},
	}); err != nil {
		t.Fatal(err)
	}

	records, users, perVector, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if records != 2 || users != 1 || perVector["DC"] != 1 {
		t.Errorf("stats = %d/%d/%v", records, users, perVector)
	}

	var buf strings.Builder
	n, err := c.Export(ctx, "adm", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || strings.Count(buf.String(), "\n") != 2 {
		t.Errorf("export = %d bytes, %q", n, buf.String())
	}
	if _, err := c.Export(ctx, "wrong", io.Discard); err == nil {
		t.Error("export with wrong token succeeded")
	}
}

// TestTelemetrySnapshot: the client's own counters track attempts, retries,
// backoff sleep and bytes sent.
func TestTelemetrySnapshot(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "flaky", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"session_id":"s-1","token":"tok"}`))
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(3), WithBackoff(time.Millisecond))
	if _, err := c.StartSession(context.Background(), "u", "ua"); err != nil {
		t.Fatalf("expected success after retries: %v", err)
	}
	tel := c.Telemetry()
	if tel.Requests != 3 {
		t.Errorf("Requests = %d, want 3", tel.Requests)
	}
	if tel.Retries != 2 {
		t.Errorf("Retries = %d, want 2", tel.Retries)
	}
	if tel.Failures != 0 {
		t.Errorf("Failures = %d, want 0", tel.Failures)
	}
	if tel.BackoffTotal <= 0 {
		t.Errorf("BackoffTotal = %v, want > 0", tel.BackoffTotal)
	}
	if tel.BytesSent <= 0 {
		t.Errorf("BytesSent = %d, want > 0", tel.BytesSent)
	}

	// A terminal failure increments Failures exactly once.
	down := httptest.NewServer(http.NotFoundHandler())
	defer down.Close()
	bad := New(down.URL, WithRetries(0), WithBackoff(time.Millisecond))
	if _, err := bad.StartSession(context.Background(), "u", "ua"); err == nil {
		t.Fatal("expected failure")
	}
	if f := bad.Telemetry().Failures; f != 1 {
		t.Errorf("Failures = %d, want 1", f)
	}
}

// TestLegacyResponseShapes is the deprecation test for pre-envelope
// servers: the client must decode both the v1 {"data":...} envelope and
// the legacy flat body, and must lift stable error codes out of v1
// failures while tolerating legacy {"error":"text"} ones. Delete this
// test together with decodeBody's fallback once no legacy server remains.
func TestLegacyResponseShapes(t *testing.T) {
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch r.URL.Path {
		case "/api/v1/sessions":
			w.WriteHeader(http.StatusCreated)
			io.WriteString(w, `{"session_id":"s1","token":"t1"}`)
		case "/api/v1/fingerprints":
			w.WriteHeader(http.StatusUnauthorized)
			io.WriteString(w, `{"error":"unknown or expired session token"}`)
		}
	}))
	defer legacy.Close()

	ctx := context.Background()
	c := New(legacy.URL, WithRetries(0))
	sess, err := c.StartSession(ctx, "u1", "UA/1.0")
	if err != nil {
		t.Fatalf("legacy flat session body: %v", err)
	}
	if sess.Token != "t1" || sess.ID != "s1" {
		t.Errorf("legacy session = %+v", sess)
	}
	err = sess.Submit(ctx, []collectserver.FPRecord{{Vector: "DC", Iteration: 0, Hash: "aa"}})
	if StatusCode(err) != http.StatusUnauthorized {
		t.Fatalf("legacy error: %v", err)
	}
	if ErrorCode(err) != "" {
		t.Errorf("legacy error carried a v1 code: %q", ErrorCode(err))
	}

	// The same calls against a v1 server must surface the stable code.
	ts, _ := realServer(t)
	c = New(ts.URL, WithRetries(0))
	sess, err = c.StartSession(ctx, "u1", "UA/1.0")
	if err != nil {
		t.Fatal(err)
	}
	bad := &Session{ID: sess.ID, Token: "wrong", c: c}
	err = bad.Submit(ctx, []collectserver.FPRecord{{Vector: "DC", Iteration: 0, Hash: "aa"}})
	if StatusCode(err) != http.StatusUnauthorized {
		t.Fatalf("v1 error: %v", err)
	}
	if got := ErrorCode(err); got != collectserver.CodeUnauthorized {
		t.Errorf("v1 error code = %q, want %q", got, collectserver.CodeUnauthorized)
	}
}

// TestVerifyEndToEnd drives the authentication path through the SDK:
// enroll via Submit, then Verify a genuine claim, an impostor claim, and
// the stable failure codes.
func TestVerifyEndToEnd(t *testing.T) {
	st, err := storage.Open(filepath.Join(t.TempDir(), "fp.ndjson"), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := collectserver.New(collectserver.Config{
		Store:    st,
		Verifier: verify.New(verify.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); st.Close() })

	c := New(ts.URL)
	ctx := context.Background()
	sess, err := c.StartSession(ctx, "alice", "UA/1.0")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(ctx, []collectserver.FPRecord{
		{Vector: "DC", Iteration: 0, Hash: "aa11"},
		{Vector: "FFT", Iteration: 0, Hash: "bb22"},
	}); err != nil {
		t.Fatal(err)
	}

	d, err := c.Verify(ctx, "alice", []collectserver.VerifySample{
		{Vector: "DC", Hash: "aa11"}, {Vector: "FFT", Hash: "bb22"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accept || d.Score != 1 {
		t.Errorf("genuine decision = %+v", d)
	}

	d, err = c.Verify(ctx, "alice", []collectserver.VerifySample{
		{Vector: "DC", Hash: "9999"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Accept || d.Score != 0 {
		t.Errorf("impostor decision = %+v", d)
	}

	// Unknown user: a 404 with the stable code, not retried.
	_, err = c.Verify(ctx, "mallory", []collectserver.VerifySample{{Vector: "DC", Hash: "aa11"}})
	if ErrorCode(err) != "unknown_user" || StatusCode(err) != http.StatusNotFound {
		t.Errorf("unknown user: code=%q status=%d err=%v", ErrorCode(err), StatusCode(err), err)
	}
}

// TestVerifyDisabledCode: a server without -verify answers the stable
// verify_disabled code through ErrorCode.
func TestVerifyDisabledCode(t *testing.T) {
	ts, _ := realServer(t)
	c := New(ts.URL, WithRetries(0)) // 503 is retryable; don't wait it out
	_, err := c.Verify(context.Background(), "alice",
		[]collectserver.VerifySample{{Vector: "DC", Hash: "aa11"}})
	if ErrorCode(err) != "verify_disabled" {
		t.Errorf("disabled verify: code=%q err=%v", ErrorCode(err), err)
	}
}
